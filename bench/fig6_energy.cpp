// Figure 6: total energy consumption vs T for all three models. Reads RAPL
// through sysfs powercap when available; otherwise reports the documented
// counter-driven model (see metrics/energy.hpp and DESIGN.md) — either way
// the series shows energy tracking the Θ(T^2) vs O(T log^2 T) work gap.

#include <functional>

#include "amopt/baselines/baselines.hpp"
#include "amopt/metrics/energy.hpp"
#include "amopt/pricing/bopm.hpp"
#include "amopt/pricing/bsm_fdm.hpp"
#include "amopt/pricing/topm.hpp"
#include "bench_common.hpp"

namespace {

using namespace amopt;

double measure_joules(metrics::EnergyMeter& meter,
                      const std::function<void()>& fn) {
  metrics::reset_counters();
  meter.start();
  fn();
  return meter.stop().total();
}

}  // namespace

int main() {
  const auto spec = pricing::paper_spec();
  const auto sweep = bench::sweep_from_env(1 << 11, 1 << 15, 1 << 13);
  metrics::EnergyMeter meter;
  std::printf("# energy source: %s\n",
              meter.hardware_available() ? "RAPL (hardware)"
                                         : "counter model (see DESIGN.md)");

  bench::print_header("Figure 6(a): BOPM total energy", "joules",
                      {"fft-bopm", "ql-bopm", "zb-bopm"});
  for (std::int64_t T = sweep.min_t; T <= sweep.max_t; T *= 2) {
    const double fft = measure_joules(
        meter, [&] { (void)pricing::bopm::american_call_fft(spec, T); });
    double ql = -1.0, zb = -1.0;
    if (T <= sweep.slow_max_t) {
      ql = measure_joules(meter, [&] {
        (void)baselines::quantlib_style_american_call(spec, T);
      });
      zb = measure_joules(
          meter, [&] { (void)baselines::zubair_american_call(spec, T); });
    }
    bench::print_row(T, {fft, ql, zb});
  }

  bench::print_header("Figure 6(b): TOPM total energy", "joules",
                      {"fft-topm", "vanilla-topm"});
  for (std::int64_t T = sweep.min_t; T <= sweep.max_t; T *= 2) {
    const double fft = measure_joules(
        meter, [&] { (void)pricing::topm::american_call_fft(spec, T); });
    double van = -1.0;
    if (T <= sweep.slow_max_t)
      van = measure_joules(meter, [&] {
        (void)pricing::topm::american_call_vanilla_parallel(spec, T);
      });
    bench::print_row(T, {fft, van});
  }

  bench::print_header("Figure 6(c): BSM total energy", "joules",
                      {"fft-bsm", "vanilla-bsm"});
  for (std::int64_t T = sweep.min_t; T <= sweep.max_t; T *= 2) {
    const double fft = measure_joules(
        meter, [&] { (void)pricing::bsm::american_put_fft(spec, T); });
    double van = -1.0;
    if (T <= sweep.slow_max_t)
      van = measure_joules(meter, [&] {
        (void)pricing::bsm::american_put_vanilla_parallel(spec, T);
      });
    bench::print_row(T, {fft, van});
  }
  return 0;
}
