// Table 5: parallel running times (ms) for T = 2^15 as the core count p
// varies — fft-bopm vs ql-bopm. The paper runs p in {1..48} on a 48-core
// node; here p is capped by the machine (document the cap in the output so
// single-core CI runs are self-explanatory).

#include <vector>

#include "amopt/baselines/baselines.hpp"
#include "amopt/common/parallel.hpp"
#include "amopt/pricing/bopm.hpp"
#include "bench_common.hpp"

int main() {
  using namespace amopt;
  const auto spec = pricing::paper_spec();
  const std::int64_t T = env_long("AMOPT_BENCH_T", 1 << 15);
  const int reps = static_cast<int>(env_long("AMOPT_BENCH_REPS", 3));
  const int hw = hardware_threads();
  std::printf("# Table 5: parallel run times (ms) for T = %lld\n",
              static_cast<long long>(T));
  std::printf("# machine exposes %d hardware thread(s); the paper used 48\n",
              hw);
  std::printf("%-8s %16s %16s\n", "p", "fft-bopm", "ql-bopm");

  for (int p : std::vector<int>{1, 2, 4, 8, 16, 32, 48}) {
    if (p > hw && p != 1) {
      std::printf("%-8d %16s %16s   (exceeds hardware)\n", p, "-", "-");
      continue;
    }
    ThreadScope scope(p);
    const double fft = bench::time_best(
        [&] { (void)pricing::bopm::american_call_fft(spec, T); }, reps);
    const double ql = bench::time_best(
        [&] { (void)baselines::quantlib_style_american_call(spec, T); },
        reps);
    std::printf("%-8d %16.3f %16.3f\n", p, fft * 1e3, ql * 1e3);
  }
  return 0;
}
