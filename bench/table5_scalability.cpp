// Table 5: parallel running times (ms) for T = 2^15 as the pool width p
// varies — fft-bopm vs ql-bopm, plus the pricing::price_batch chain path
// (16 strikes sharing one kernel cache, options fanned out across the task
// pool). The paper runs p in {1..48} on a 48-core node; here widths up to
// 8 always run (the pool oversubscribes small boxes — documented in the
// output), wider ones only when the hardware actually has the cores.
//
// Besides the per-width rows, one pivot row keyed by the chain's T carries
// the chain timing at widths 1/2/4/8 as chain-{1,2,4,8}t series, so the CI
// bench-guard can assert an IN-RUN thread-scaling bar with check_bench's
// --pair-speedup (chain-1t vs chain-4t on the same row of the same file —
// load-tolerant in a way baseline comparisons are not).

#include <vector>

#include "amopt/baselines/baselines.hpp"
#include "amopt/common/parallel.hpp"
#include "amopt/pricing/api.hpp"
#include "amopt/pricing/bopm.hpp"
#include "bench_common.hpp"

int main() {
  using namespace amopt;
  const auto spec = pricing::paper_spec();
  const std::int64_t T = env_long("AMOPT_BENCH_T", 1 << 15);
  // The chain re-prices 16 contracts per measurement, so default to a
  // smaller per-option T to keep single-core CI runs quick.
  const std::int64_t chain_T = env_long("AMOPT_BENCH_CHAIN_T", 1 << 12);
  const int reps = static_cast<int>(env_long("AMOPT_BENCH_REPS", 3));
  const int hw = hardware_threads();

  std::vector<pricing::OptionSpec> chain;
  for (int i = 0; i < 16; ++i) {
    pricing::OptionSpec s = spec;
    s.K = 100.0 + 4.0 * i;
    chain.push_back(s);
  }

  std::printf("# Table 5: parallel run times (ms) for T = %lld "
              "(batch-chain: 16 strikes at T = %lld)\n",
              static_cast<long long>(T), static_cast<long long>(chain_T));
  std::printf("# machine exposes %d hardware thread(s); the paper used 48.\n",
              hw);
  if (hw < 8)
    std::printf("# widths up to 8 oversubscribe this machine — the in-run\n"
                "# chain-Nt scaling columns are only meaningful with >= N "
                "cores.\n");
  std::printf("%-8s %16s %16s %16s\n", "p", "fft-bopm", "ql-bopm",
              "batch-chain");

  const std::vector<std::string> series{"fft-bopm", "ql-bopm", "batch-chain",
                                        "chain-1t", "chain-2t", "chain-4t",
                                        "chain-8t"};
  std::vector<std::int64_t> keys;
  std::vector<std::vector<double>> rows;
  // null-padded pivot row: chain-{1,2,4,8}t land in columns 3..6.
  std::vector<double> pivot(series.size(), -1.0);
  for (int p : std::vector<int>{1, 2, 4, 8, 16, 32, 48}) {
    if (p > 8 && p > hw) {
      std::printf("%-8d %16s %16s %16s   (exceeds hardware)\n", p, "-", "-",
                  "-");
      continue;
    }
    ThreadScope scope(p);
    const double fft = bench::time_best(
        [&] { (void)pricing::bopm::american_call_fft(spec, T); }, reps);
    const double ql = bench::time_best(
        [&] { (void)baselines::quantlib_style_american_call(spec, T); },
        reps);
    const double batch = bench::time_best(
        [&] {
          (void)pricing::price_batch(chain, chain_T, pricing::Model::bopm,
                                     pricing::Right::call);
        },
        reps);
    std::printf("%-8d %16.3f %16.3f %16.3f\n", p, fft * 1e3, ql * 1e3,
                batch * 1e3);
    keys.push_back(p);
    rows.push_back({fft * 1e3, ql * 1e3, batch * 1e3, -1.0, -1.0, -1.0,
                    -1.0});
    if (p == 1) pivot[3] = batch * 1e3;
    if (p == 2) pivot[4] = batch * 1e3;
    if (p == 4) pivot[5] = batch * 1e3;
    if (p == 8) pivot[6] = batch * 1e3;
  }
  keys.push_back(chain_T);
  rows.push_back(pivot);
  std::printf("# chain scaling pivot (T=%lld): 1t=%.3f 2t=%.3f 4t=%.3f "
              "8t=%.3f ms\n",
              static_cast<long long>(chain_T), pivot[3], pivot[4], pivot[5],
              pivot[6]);
  // Machine-readable by default, like every other bench binary (override
  // the path with AMOPT_BENCH_JSON, disable with AMOPT_BENCH_JSON=none).
  const std::string json = env_string("AMOPT_BENCH_JSON", "BENCH_table5.json");
  if (!json.empty() && json != "none")
    bench::write_json(json, "table5_scalability", "milliseconds", series,
                      keys, rows);
  return 0;
}
