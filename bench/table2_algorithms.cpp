// Table 2 (empirical): running time of the four algorithm families the
// paper classifies — nested loop, cache-aware tiled, cache-oblivious
// recursive, and the FFT algorithm — on the BOPM American call. The work
// separation (Θ(T^2) vs O(T log^2 T)) shows directly in how each column
// scales when T doubles.

#include "amopt/baselines/baselines.hpp"
#include "amopt/pricing/bopm.hpp"
#include "bench_common.hpp"

int main() {
  using namespace amopt;
  const auto spec = pricing::paper_spec();
  const auto sweep = bench::sweep_from_env(1 << 11, 1 << 14, 1 << 14);

  bench::print_header(
      "Table 2 (empirical): BOPM algorithm families, running time", "seconds",
      {"nested-loop", "tiled(zb)", "cache-obl", "fft"});
  for (std::int64_t T = sweep.min_t; T <= sweep.max_t; T *= 2) {
    const double nested = bench::time_best(
        [&] { (void)pricing::bopm::american_call_vanilla(spec, T); },
        sweep.reps);
    const double tiled = bench::time_best(
        [&] { (void)baselines::zubair_american_call(spec, T); }, sweep.reps);
    const double cobl = bench::time_best(
        [&] { (void)baselines::cache_oblivious_american_call(spec, T); },
        sweep.reps);
    const double fft = bench::time_best(
        [&] { (void)pricing::bopm::american_call_fft(spec, T); }, sweep.reps);
    bench::print_row(T, {nested, tiled, cobl, fft});
  }
  return 0;
}
