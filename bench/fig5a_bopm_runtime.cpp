// Figure 5(a): parallel running time of American call pricing under BOPM —
// fft-bopm vs ql-bopm vs zb-bopm over a T sweep. The paper sweeps
// T = 2^11..2^19 on 48 cores; defaults here finish in seconds on one core
// and AMOPT_BENCH_MAX_T / AMOPT_BENCH_SLOW_MAX_T scale the sweep up.
// Results are also dumped to BENCH_bopm.json (override with
// AMOPT_BENCH_JSON, disable with AMOPT_BENCH_JSON=none) so the perf
// trajectory can be tracked across commits.
//
// Since PR 5 the sweep also times the solver with the pre-arena HEAP memory
// plane (fft-bopm-heapmem: per-level vector allocations + concatenated
// green-extension copies + single-row base sweeps — bit-identical results)
// and reports the in-process ratio as the mem-x series. mem-x isolates the
// memory-plane win from host-speed drift, which is what the CI bench guard
// thresholds; the absolute series capture the full end-to-end trajectory
// against the committed baselines.

#include <string>
#include <vector>

#include "amopt/baselines/baselines.hpp"
#include "amopt/common/parallel.hpp"
#include "amopt/pricing/bopm.hpp"
#include "bench_common.hpp"

int main() {
  using namespace amopt;
  const auto spec = pricing::paper_spec();
  const auto sweep = bench::sweep_from_env(1 << 11, 1 << 17, 1 << 14);

  core::SolverConfig heap_cfg;
  heap_cfg.memory = core::MemoryPlane::heap;

  // fft-bopm runs at the session's inherited pool width; fft-bopm-4t pins
  // width 4 so the task-parallel descent's scaling shows in the same sweep
  // (on a >= 4-core box it tracks the paper's parallel trajectory; on a
  // smaller one it documents oversubscription).
  const std::vector<std::string> series{"fft-bopm", "fft-bopm-4t",
                                        "fft-bopm-heapmem", "mem-x",
                                        "ql-bopm", "zb-bopm"};
  bench::print_header("Figure 5(a): BOPM American call, parallel running time",
                      "seconds", series);
  std::vector<std::int64_t> ts;
  std::vector<std::vector<double>> rows;
  for (std::int64_t T = sweep.min_t; T <= sweep.max_t; T *= 2) {
    const double fft = bench::time_best(
        [&] { (void)pricing::bopm::american_call_fft(spec, T); }, sweep.reps);
    double fft_4t = -1.0;
    {
      ThreadScope scope(4);
      fft_4t = bench::time_best(
          [&] { (void)pricing::bopm::american_call_fft(spec, T); },
          sweep.reps);
    }
    const double fft_heap = bench::time_best(
        [&] { (void)pricing::bopm::american_call_fft(spec, T, heap_cfg); },
        sweep.reps);
    const double memx = fft > 0.0 ? fft_heap / fft : 0.0;
    double ql = -1.0, zb = -1.0;
    if (T <= sweep.slow_max_t) {
      ql = bench::time_best(
          [&] { (void)baselines::quantlib_style_american_call(spec, T); },
          sweep.reps);
      zb = bench::time_best(
          [&] { (void)baselines::zubair_american_call(spec, T); }, sweep.reps);
    }
    bench::print_row(T, {fft, fft_4t, fft_heap, memx, ql, zb});
    ts.push_back(T);
    rows.push_back({fft, fft_4t, fft_heap, memx, ql, zb});
  }
  std::printf("# '-' entries: Theta(T^2) baselines skipped beyond "
              "AMOPT_BENCH_SLOW_MAX_T=%lld\n",
              static_cast<long long>(sweep.slow_max_t));
  const std::string json = env_string("AMOPT_BENCH_JSON", "BENCH_bopm.json");
  if (json != "none")
    bench::write_json(json, "fig5a_bopm_runtime", "seconds", series, ts, rows);
  return 0;
}
