// Ablation: trapezoid base-case size. §5.1 of the paper: "We have found
// empirically that a base case size of 8 steps yields the best running
// times." This sweep regenerates that claim for our implementation.

#include "amopt/pricing/bopm.hpp"
#include "bench_common.hpp"

int main() {
  using namespace amopt;
  const auto spec = pricing::paper_spec();
  const std::int64_t T = env_long("AMOPT_BENCH_T", 1 << 16);
  const int reps = static_cast<int>(env_long("AMOPT_BENCH_REPS", 3));

  std::printf("# Ablation: fft-bopm base-case size at T = %lld\n",
              static_cast<long long>(T));
  std::printf("%-12s %16s\n", "base_case", "seconds");
  for (int base : {2, 4, 8, 16, 32, 64, 128, 256}) {
    core::SolverConfig cfg;
    cfg.base_case = base;
    const double t = bench::time_best(
        [&] { (void)pricing::bopm::american_call_fft(spec, T, cfg); }, reps);
    std::printf("%-12d %16.6f\n", base, t);
  }
  return 0;
}
