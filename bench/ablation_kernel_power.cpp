// Ablation: kernel-power construction methods (S3) — closed-form binomial
// in log space vs FFT repeated squaring — and the conv crossover policy.
// Informs the defaults in poly::power and conv::Policy.

#include "amopt/fft/convolution.hpp"
#include "amopt/poly/poly_power.hpp"
#include "bench_common.hpp"

int main() {
  using namespace amopt;
  const int reps = static_cast<int>(env_long("AMOPT_BENCH_REPS", 3));

  std::printf("# Ablation: kernel power construction (2-tap)\n");
  std::printf("%-10s %16s %16s\n", "h", "closed-form", "fft-squaring");
  const std::vector<double> taps2{0.49, 0.5};
  for (std::int64_t h = 1 << 8; h <= (1 << 16); h *= 4) {
    const double closed = bench::time_best(
        [&] {
          (void)poly::power_binomial(taps2[0], taps2[1],
                                     static_cast<std::uint64_t>(h));
        },
        reps);
    const double fft = bench::time_best(
        [&] { (void)poly::power_fft(taps2, static_cast<std::uint64_t>(h)); },
        reps);
    std::printf("%-10lld %16.6f %16.6f\n", static_cast<long long>(h), closed,
                fft);
  }

  std::printf("# Correlation path crossover (kernel width 65)\n");
  std::printf("%-10s %16s %16s\n", "n", "direct", "fft");
  const std::vector<double> kernel(65, 1.0 / 65.0);
  for (std::size_t n = 1 << 8; n <= (1u << 16); n *= 4) {
    const std::vector<double> in(n + kernel.size(), 1.0);
    std::vector<double> out(n);
    const double d = bench::time_best(
        [&] {
          conv::correlate_valid(in, kernel, out,
                                {conv::Policy::Path::direct});
        },
        reps);
    const double f = bench::time_best(
        [&] {
          conv::correlate_valid(in, kernel, out, {conv::Policy::Path::fft});
        },
        reps);
    std::printf("%-10zu %16.6f %16.6f\n", n, d, f);
  }
  return 0;
}
