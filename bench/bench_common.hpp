#pragma once
// Shared harness for the figure/table reproduction binaries: the paper's
// fixed option parameters, a repeat-and-take-best timing loop, and a
// printer producing the same series the paper plots.
//
// Every binary accepts environment overrides so one build serves both CI
// (small sweeps) and paper-scale runs:
//   AMOPT_BENCH_MIN_T / AMOPT_BENCH_MAX_T  — sweep range (powers of two)
//   AMOPT_BENCH_SLOW_MAX_T                 — cap for Θ(T^2) reference series
//   AMOPT_BENCH_REPS                       — timing repetitions

#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "amopt/common/env.hpp"
#include "amopt/common/timer.hpp"
#include "amopt/pricing/params.hpp"

namespace amopt::bench {

struct Sweep {
  std::int64_t min_t;
  std::int64_t max_t;
  std::int64_t slow_max_t;  ///< largest T at which Θ(T^2) series still run
  int reps;
};

/// The paper sweeps 2^11..2^19 (BOPM) / 2^17 (TOPM, BSM); default to a
/// range that completes in seconds on one laptop core and let env vars
/// scale it up.
[[nodiscard]] inline Sweep sweep_from_env(std::int64_t def_min,
                                          std::int64_t def_max,
                                          std::int64_t def_slow_max) {
  Sweep s;
  s.min_t = env_long("AMOPT_BENCH_MIN_T", def_min);
  s.max_t = env_long("AMOPT_BENCH_MAX_T", def_max);
  s.slow_max_t = env_long("AMOPT_BENCH_SLOW_MAX_T", def_slow_max);
  s.reps = static_cast<int>(env_long("AMOPT_BENCH_REPS", 3));
  return s;
}

/// Best-of-reps wall time of `fn` in seconds (first call warms caches).
[[nodiscard]] inline double time_best(const std::function<void()>& fn,
                                      int reps) {
  double best = 1e300;
  for (int r = 0; r < reps; ++r) {
    WallTimer t;
    fn();
    best = std::min(best, t.seconds());
  }
  return best;
}

inline void print_header(const char* title, const char* ylabel,
                         const std::vector<std::string>& series) {
  std::printf("# %s\n", title);
  std::printf("%-10s", "T");
  for (const auto& s : series) std::printf(" %16s", s.c_str());
  std::printf("   (%s)\n", ylabel);
}

inline void print_row(std::int64_t T, const std::vector<double>& values) {
  std::printf("%-10lld", static_cast<long long>(T));
  for (double v : values) {
    if (v < 0.0)
      std::printf(" %16s", "-");
    else
      std::printf(" %16.6g", v);
  }
  std::printf("\n");
}

/// Machine-readable sweep dump so runs can be diffed across commits
/// (skipped series entries are encoded as null). Layout:
///   {"title": ..., "unit": ..., "series": [...],
///    "rows": [{"T": 2048, "values": [...]}, ...]}
/// Writes nothing if `path` is empty or unopenable.
inline void write_json(const std::string& path, const char* title,
                       const char* unit,
                       const std::vector<std::string>& series,
                       const std::vector<std::int64_t>& ts,
                       const std::vector<std::vector<double>>& rows) {
  if (path.empty()) return;
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "bench: cannot write %s\n", path.c_str());
    return;
  }
  std::fprintf(f, "{\n  \"title\": \"%s\",\n  \"unit\": \"%s\",\n", title,
               unit);
  std::fprintf(f, "  \"series\": [");
  for (std::size_t s = 0; s < series.size(); ++s)
    std::fprintf(f, "%s\"%s\"", s > 0 ? ", " : "", series[s].c_str());
  std::fprintf(f, "],\n  \"rows\": [\n");
  for (std::size_t r = 0; r < rows.size(); ++r) {
    std::fprintf(f, "    {\"T\": %lld, \"values\": [",
                 static_cast<long long>(ts[r]));
    for (std::size_t s = 0; s < rows[r].size(); ++s) {
      if (rows[r][s] < 0.0)
        std::fprintf(f, "%snull", s > 0 ? ", " : "");
      else
        std::fprintf(f, "%s%.9g", s > 0 ? ", " : "", rows[r][s]);
    }
    std::fprintf(f, "]}%s\n", r + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("# wrote %s\n", path.c_str());
}

}  // namespace amopt::bench
