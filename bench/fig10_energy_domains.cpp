// Figure 10 (supplementary): energy consumption split by domain — package
// (pkg) vs RAM — for the BOPM implementations.

#include <functional>

#include "amopt/baselines/baselines.hpp"
#include "amopt/metrics/energy.hpp"
#include "amopt/pricing/bopm.hpp"
#include "bench_common.hpp"

namespace {

using namespace amopt;

metrics::EnergySample measure(metrics::EnergyMeter& meter,
                              const std::function<void()>& fn) {
  metrics::reset_counters();
  meter.start();
  fn();
  return meter.stop();
}

}  // namespace

int main() {
  const auto spec = pricing::paper_spec();
  const auto sweep = bench::sweep_from_env(1 << 11, 1 << 15, 1 << 13);
  metrics::EnergyMeter meter;
  std::printf("# energy source: %s\n",
              meter.hardware_available() ? "RAPL (hardware)"
                                         : "counter model (see DESIGN.md)");

  bench::print_header("Figure 10 (BOPM): energy by domain", "joules",
                      {"fft:pkg", "fft:RAM", "ql:pkg", "ql:RAM", "zb:pkg",
                       "zb:RAM"});
  for (std::int64_t T = sweep.min_t; T <= sweep.max_t; T *= 2) {
    const auto fft = measure(
        meter, [&] { (void)pricing::bopm::american_call_fft(spec, T); });
    std::vector<double> row{fft.pkg_joules, fft.ram_joules, -1, -1, -1, -1};
    if (T <= sweep.slow_max_t) {
      const auto ql = measure(meter, [&] {
        (void)baselines::quantlib_style_american_call(spec, T);
      });
      const auto zb = measure(
          meter, [&] { (void)baselines::zubair_american_call(spec, T); });
      row = {fft.pkg_joules, fft.ram_joules, ql.pkg_joules,
             ql.ram_joules,  zb.pkg_joules,  zb.ram_joules};
    }
    bench::print_row(T, row);
  }
  return 0;
}
