// Figure 5(b): parallel running time of American call pricing under TOPM —
// fft-topm vs vanilla-topm (the paper's own parallel looping reference).

#include "amopt/pricing/topm.hpp"
#include "bench_common.hpp"

int main() {
  using namespace amopt;
  const auto spec = pricing::paper_spec();
  const auto sweep = bench::sweep_from_env(1 << 11, 1 << 16, 1 << 13);

  bench::print_header("Figure 5(b): TOPM American call, parallel running time",
                      "seconds", {"fft-topm", "vanilla-topm"});
  for (std::int64_t T = sweep.min_t; T <= sweep.max_t; T *= 2) {
    const double fft = bench::time_best(
        [&] { (void)pricing::topm::american_call_fft(spec, T); }, sweep.reps);
    double van = -1.0;
    if (T <= sweep.slow_max_t) {
      van = bench::time_best(
          [&] { (void)pricing::topm::american_call_vanilla_parallel(spec, T); },
          sweep.reps);
    }
    bench::print_row(T, {fft, van});
  }
  return 0;
}
