// google-benchmark microbenches for the FFT substrate: transform and
// convolution throughput across sizes, and the packed-real two-for-one
// pipeline the solvers rely on.

#include <benchmark/benchmark.h>

#include <complex>
#include <random>
#include <vector>

#include "amopt/fft/convolution.hpp"
#include "amopt/fft/fft.hpp"

namespace {

using amopt::fft::cplx;

std::vector<cplx> random_complex(std::size_t n) {
  std::mt19937 rng(123);
  std::uniform_real_distribution<double> dist(-1.0, 1.0);
  std::vector<cplx> v(n);
  for (auto& x : v) x = cplx{dist(rng), dist(rng)};
  return v;
}

std::vector<double> random_real(std::size_t n) {
  std::mt19937 rng(321);
  std::uniform_real_distribution<double> dist(-1.0, 1.0);
  std::vector<double> v(n);
  for (auto& x : v) x = dist(rng);
  return v;
}

void BM_FftForward(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  auto data = random_complex(n);
  const auto& plan = amopt::fft::plan_for(n);
  for (auto _ : state) {
    plan.forward(data.data());
    benchmark::DoNotOptimize(data.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_FftForward)->RangeMultiplier(4)->Range(1 << 8, 1 << 20);

void BM_ConvolveFull(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const auto a = random_real(n);
  const auto b = random_real(n);
  for (auto _ : state) {
    auto c = amopt::conv::convolve_full(a, b);
    benchmark::DoNotOptimize(c.data());
  }
}
BENCHMARK(BM_ConvolveFull)->RangeMultiplier(4)->Range(1 << 8, 1 << 18);

void BM_CorrelateValid(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const auto in = random_real(2 * n);
  const auto kernel = random_real(n);
  std::vector<double> out(n + 1);
  for (auto _ : state) {
    amopt::conv::correlate_valid(in, kernel, out);
    benchmark::DoNotOptimize(out.data());
  }
}
BENCHMARK(BM_CorrelateValid)->RangeMultiplier(4)->Range(1 << 8, 1 << 18);

}  // namespace

BENCHMARK_MAIN();
