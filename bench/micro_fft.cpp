// google-benchmark microbenches for the FFT substrate: complex and real
// transform throughput, the three convolution pipelines (direct, packed-
// complex two-for-one, real-input R2C/C2R), and the allocation-free
// Workspace paths the solvers rely on.
//
// On top of the statically registered benches (which run at the ambient
// dispatch level, i.e. the production default), main() registers one copy
// of the transform/convolution benches per SIMD dispatch path available on
// the host — "BM_FftForward<scalar>", "BM_FftForward<avx2>", ... — so
// BENCH_fft.json records per-path numbers and the CI bench guard can check
// the vector paths' speedup over scalar.
//
// The binary writes its results to BENCH_fft.json by default (benchmark's
// own JSON format) so perf can be diffed across commits; set
// AMOPT_BENCH_JSON to change the path or to "none" to disable.

#include <benchmark/benchmark.h>

#include <complex>
#include <cstring>
#include <random>
#include <string>
#include <vector>

#include "amopt/common/env.hpp"
#include "amopt/fft/convolution.hpp"
#include "amopt/fft/fft.hpp"
#include "amopt/simd/simd.hpp"

namespace {

using amopt::fft::cplx;

std::vector<cplx> random_complex(std::size_t n) {
  std::mt19937 rng(123);
  std::uniform_real_distribution<double> dist(-1.0, 1.0);
  std::vector<cplx> v(n);
  for (auto& x : v) x = cplx{dist(rng), dist(rng)};
  return v;
}

std::vector<double> random_real(std::size_t n) {
  std::mt19937 rng(321);
  std::uniform_real_distribution<double> dist(-1.0, 1.0);
  std::vector<double> v(n);
  for (auto& x : v) x = dist(rng);
  return v;
}

void BM_FftForward(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  auto data = random_complex(n);
  const auto& plan = amopt::fft::plan_for(n);
  for (auto _ : state) {
    plan.forward(data.data());
    benchmark::DoNotOptimize(data.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_FftForward)->RangeMultiplier(4)->Range(1 << 8, 1 << 20);

void BM_RealFftForward(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const auto data = random_real(n);
  const auto& plan = amopt::fft::real_plan_for(n);
  std::vector<cplx> spec(plan.spectrum_size());
  for (auto _ : state) {
    plan.forward(data.data(), spec.data());
    benchmark::DoNotOptimize(spec.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_RealFftForward)->RangeMultiplier(4)->Range(1 << 8, 1 << 20);

// The production real-input path (allocating result vector each call).
void BM_ConvolveFull(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const auto a = random_real(n);
  const auto b = random_real(n);
  for (auto _ : state) {
    auto c = amopt::conv::convolve_full(a, b);
    benchmark::DoNotOptimize(c.data());
  }
}
BENCHMARK(BM_ConvolveFull)->RangeMultiplier(4)->Range(1 << 8, 1 << 18);

// The seed's packed-complex pipeline, kept for before/after comparison:
// speedup = BM_ConvolveFullPacked / BM_ConvolveFullWorkspace.
void BM_ConvolveFullPacked(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const auto a = random_real(n);
  const auto b = random_real(n);
  for (auto _ : state) {
    auto c = amopt::conv::convolve_full(
        a, b, {amopt::conv::Policy::Path::fft_packed});
    benchmark::DoNotOptimize(c.data());
  }
}
BENCHMARK(BM_ConvolveFullPacked)->RangeMultiplier(4)->Range(1 << 8, 1 << 18);

// Real-input path through a warm Workspace: zero heap traffic per call.
void BM_ConvolveFullWorkspace(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const auto a = random_real(n);
  const auto b = random_real(n);
  amopt::conv::Workspace ws;
  std::vector<double> out(2 * n - 1);
  const amopt::conv::Policy fft{amopt::conv::Policy::Path::fft};
  amopt::conv::convolve_full(a, b, out, ws, fft);  // warm-up
  for (auto _ : state) {
    amopt::conv::convolve_full(a, b, out, ws, fft);
    benchmark::DoNotOptimize(out.data());
  }
}
BENCHMARK(BM_ConvolveFullWorkspace)->RangeMultiplier(4)->Range(1 << 8, 1 << 18);

void BM_CorrelateValid(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const auto in = random_real(2 * n);
  const auto kernel = random_real(n);
  std::vector<double> out(n + 1);
  for (auto _ : state) {
    amopt::conv::correlate_valid(in, kernel, out);
    benchmark::DoNotOptimize(out.data());
  }
}
BENCHMARK(BM_CorrelateValid)->RangeMultiplier(4)->Range(1 << 8, 1 << 18);

void BM_CorrelateValidWorkspace(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const auto in = random_real(2 * n);
  const auto kernel = random_real(n);
  std::vector<double> out(n + 1);
  amopt::conv::Workspace ws;
  const amopt::conv::Policy fft{amopt::conv::Policy::Path::fft};
  amopt::conv::correlate_valid(in, kernel, out, ws, fft);  // warm-up
  for (auto _ : state) {
    amopt::conv::correlate_valid(in, kernel, out, ws, fft);
    benchmark::DoNotOptimize(out.data());
  }
}
BENCHMARK(BM_CorrelateValidWorkspace)
    ->RangeMultiplier(4)
    ->Range(1 << 8, 1 << 18);

// Chain-style batched convolution: 16 rows against one shared kernel whose
// spectrum is computed once (vs. 16 times through the unbatched call).
void BM_ConvolveMany(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  constexpr std::size_t kItems = 16;
  std::vector<std::vector<double>> storage;
  for (std::size_t i = 0; i < kItems; ++i) storage.push_back(random_real(n));
  std::vector<std::span<const double>> inputs(storage.begin(), storage.end());
  const auto kernel = random_real(n);
  std::vector<std::vector<double>> outs(kItems);
  amopt::conv::Workspace ws;
  const amopt::conv::Policy fft{amopt::conv::Policy::Path::fft};
  amopt::conv::convolve_many(inputs, kernel, outs, ws, fft);  // warm-up
  for (auto _ : state) {
    amopt::conv::convolve_many(inputs, kernel, outs, ws, fft);
    benchmark::DoNotOptimize(outs.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kItems));
}
BENCHMARK(BM_ConvolveMany)->RangeMultiplier(4)->Range(1 << 10, 1 << 16);

// ---------------------------------------------------- per-dispatch-path

// One benchmark body per kernel family; the dispatch level is installed at
// benchmark entry (google-benchmark runs benchmarks sequentially, so the
// override cannot leak into a concurrently running bench).

// Pins the dispatch level for one benchmark body and restores the ambient
// (AMOPT_SIMD-resolved) level on every exit path, so an early return or
// SkipWithError cannot leak the override into later benches.
struct LevelScope {
  explicit LevelScope(amopt::simd::Level lvl)
      : prev(amopt::simd::active()) {
    amopt::simd::set_level(lvl);
  }
  ~LevelScope() { amopt::simd::set_level(prev); }
  amopt::simd::Level prev;
};

// Forward + inverse per iteration: repeated forward-only transforms grow
// the data by ~n per pass until it overflows to inf/NaN, and non-finite
// arithmetic skews per-path timing — the round trip keeps values bounded
// so the scalar/vector ratio is honest.
void BM_FftRoundTripPath(benchmark::State& state, amopt::simd::Level lvl) {
  const LevelScope scope(lvl);
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  auto data = random_complex(n);
  const auto& plan = amopt::fft::plan_for(n);
  for (auto _ : state) {
    plan.forward(data.data());
    plan.inverse(data.data());
    benchmark::DoNotOptimize(data.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}

void BM_RealFftForwardPath(benchmark::State& state, amopt::simd::Level lvl) {
  const LevelScope scope(lvl);
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const auto data = random_real(n);
  const auto& plan = amopt::fft::real_plan_for(n);
  std::vector<cplx> spec(plan.spectrum_size());
  for (auto _ : state) {
    plan.forward(data.data(), spec.data());
    benchmark::DoNotOptimize(spec.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}

void BM_ConvolveWorkspacePath(benchmark::State& state,
                              amopt::simd::Level lvl) {
  const LevelScope scope(lvl);
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const auto a = random_real(n);
  const auto b = random_real(n);
  amopt::conv::Workspace ws;
  std::vector<double> out(2 * n - 1);
  const amopt::conv::Policy fft{amopt::conv::Policy::Path::fft};
  amopt::conv::convolve_full(a, b, out, ws, fft);  // warm-up
  for (auto _ : state) {
    amopt::conv::convolve_full(a, b, out, ws, fft);
    benchmark::DoNotOptimize(out.data());
  }
}

void register_per_path_benches() {
  using amopt::simd::Level;
  for (const Level lvl : {Level::scalar, Level::avx2, Level::avx512}) {
    if (static_cast<int>(lvl) >
        static_cast<int>(amopt::simd::max_supported()))
      continue;
    const std::string tag = std::string("<") + amopt::simd::to_string(lvl) + ">";
    benchmark::RegisterBenchmark(("BM_FftRoundTrip" + tag).c_str(),
                                 BM_FftRoundTripPath, lvl)
        ->RangeMultiplier(4)
        ->Range(1 << 10, 1 << 16);
    benchmark::RegisterBenchmark(("BM_RealFftForward" + tag).c_str(),
                                 BM_RealFftForwardPath, lvl)
        ->RangeMultiplier(4)
        ->Range(1 << 10, 1 << 16);
    benchmark::RegisterBenchmark(("BM_ConvolveFullWorkspace" + tag).c_str(),
                                 BM_ConvolveWorkspacePath, lvl)
        ->RangeMultiplier(4)
        ->Range(1 << 10, 1 << 16);
  }
}

}  // namespace

int main(int argc, char** argv) {
  register_per_path_benches();
  // Default to a JSON dump next to the binary unless the caller already
  // steers the output or opts out with AMOPT_BENCH_JSON=none.
  std::vector<char*> args(argv, argv + argc);
  bool has_out = false;
  for (int i = 1; i < argc; ++i)
    if (std::strncmp(argv[i], "--benchmark_out", 15) == 0) has_out = true;
  const std::string json =
      amopt::env_string("AMOPT_BENCH_JSON", "BENCH_fft.json");
  std::string out_flag, fmt_flag;
  if (!has_out && json != "none") {
    out_flag = "--benchmark_out=" + json;
    fmt_flag = "--benchmark_out_format=json";
    args.push_back(out_flag.data());
    args.push_back(fmt_flag.data());
  }
  int n = static_cast<int>(args.size());
  benchmark::Initialize(&n, args.data());
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
