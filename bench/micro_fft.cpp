// google-benchmark microbenches for the FFT substrate: complex and real
// transform throughput, the three convolution pipelines (direct, packed-
// complex two-for-one, real-input R2C/C2R), and the allocation-free
// Workspace paths the solvers rely on.
//
// On top of the statically registered benches (which run at the ambient
// dispatch level, i.e. the production default), main() registers one copy
// of the transform/convolution benches per SIMD dispatch path available on
// the host — "BM_FftForward<scalar>", "BM_FftForward<avx2>", ... — so
// BENCH_fft.json records per-path numbers and the CI bench guard can check
// the vector paths' speedup over scalar. The spectral kernel engine adds
// per-path pairs the guard holds against each other: BM_CorrelateSpectral
// (cached kernel spectrum) vs BM_CorrelateValidWorkspace (transform per
// call), BM_PolyPowerFft (aliased csquare squarings) vs its two-transform
// reference, and BM_KernelLadderDescent (shared squaring ladder) vs
// BM_KernelPowersUnshared.
//
// The binary writes its results to BENCH_fft.json by default (benchmark's
// own JSON format) so perf can be diffed across commits; set
// AMOPT_BENCH_JSON to change the path or to "none" to disable.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cmath>
#include <complex>
#include <cstring>
#include <random>
#include <span>
#include <string>
#include <vector>

#include "amopt/common/env.hpp"
#include "amopt/fft/convolution.hpp"
#include "amopt/fft/fft.hpp"
#include "amopt/poly/poly_power.hpp"
#include "amopt/pricing/pricer.hpp"
#include "amopt/simd/simd.hpp"
#include "amopt/stencil/kernel_cache.hpp"

namespace {

using amopt::fft::cplx;

std::vector<cplx> random_complex(std::size_t n) {
  std::mt19937 rng(123);
  std::uniform_real_distribution<double> dist(-1.0, 1.0);
  std::vector<cplx> v(n);
  for (auto& x : v) x = cplx{dist(rng), dist(rng)};
  return v;
}

std::vector<double> random_real(std::size_t n) {
  std::mt19937 rng(321);
  std::uniform_real_distribution<double> dist(-1.0, 1.0);
  std::vector<double> v(n);
  for (auto& x : v) x = dist(rng);
  return v;
}

void BM_FftForward(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  auto data = random_complex(n);
  const auto& plan = amopt::fft::plan_for(n);
  for (auto _ : state) {
    plan.forward(data.data());
    benchmark::DoNotOptimize(data.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_FftForward)->RangeMultiplier(4)->Range(1 << 8, 1 << 20);

void BM_RealFftForward(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const auto data = random_real(n);
  const auto& plan = amopt::fft::real_plan_for(n);
  std::vector<cplx> spec(plan.spectrum_size());
  for (auto _ : state) {
    plan.forward(data.data(), spec.data());
    benchmark::DoNotOptimize(spec.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_RealFftForward)->RangeMultiplier(4)->Range(1 << 8, 1 << 20);

// The production real-input path (allocating result vector each call).
void BM_ConvolveFull(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const auto a = random_real(n);
  const auto b = random_real(n);
  for (auto _ : state) {
    auto c = amopt::conv::convolve_full(a, b);
    benchmark::DoNotOptimize(c.data());
  }
}
BENCHMARK(BM_ConvolveFull)->RangeMultiplier(4)->Range(1 << 8, 1 << 18);

// The seed's packed-complex pipeline, kept for before/after comparison:
// speedup = BM_ConvolveFullPacked / BM_ConvolveFullWorkspace.
void BM_ConvolveFullPacked(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const auto a = random_real(n);
  const auto b = random_real(n);
  for (auto _ : state) {
    auto c = amopt::conv::convolve_full(
        a, b, {amopt::conv::Policy::Path::fft_packed});
    benchmark::DoNotOptimize(c.data());
  }
}
BENCHMARK(BM_ConvolveFullPacked)->RangeMultiplier(4)->Range(1 << 8, 1 << 18);

// Real-input path through a warm Workspace: zero heap traffic per call.
void BM_ConvolveFullWorkspace(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const auto a = random_real(n);
  const auto b = random_real(n);
  amopt::conv::Workspace ws;
  std::vector<double> out(2 * n - 1);
  const amopt::conv::Policy fft{amopt::conv::Policy::Path::fft};
  amopt::conv::convolve_full(a, b, out, ws, fft);  // warm-up
  for (auto _ : state) {
    amopt::conv::convolve_full(a, b, out, ws, fft);
    benchmark::DoNotOptimize(out.data());
  }
}
BENCHMARK(BM_ConvolveFullWorkspace)->RangeMultiplier(4)->Range(1 << 8, 1 << 18);

void BM_CorrelateValid(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const auto in = random_real(2 * n);
  const auto kernel = random_real(n);
  std::vector<double> out(n + 1);
  for (auto _ : state) {
    amopt::conv::correlate_valid(in, kernel, out);
    benchmark::DoNotOptimize(out.data());
  }
}
BENCHMARK(BM_CorrelateValid)->RangeMultiplier(4)->Range(1 << 8, 1 << 18);

void BM_CorrelateValidWorkspace(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const auto in = random_real(2 * n);
  const auto kernel = random_real(n);
  std::vector<double> out(n + 1);
  amopt::conv::Workspace ws;
  const amopt::conv::Policy fft{amopt::conv::Policy::Path::fft};
  amopt::conv::correlate_valid(in, kernel, out, ws, fft);  // warm-up
  for (auto _ : state) {
    amopt::conv::correlate_valid(in, kernel, out, ws, fft);
    benchmark::DoNotOptimize(out.data());
  }
}
BENCHMARK(BM_CorrelateValidWorkspace)
    ->RangeMultiplier(4)
    ->Range(1 << 8, 1 << 18);

// Chain-style batched convolution: 16 rows against one shared kernel whose
// spectrum is computed once (vs. 16 times through the unbatched call).
void BM_ConvolveMany(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  constexpr std::size_t kItems = 16;
  std::vector<std::vector<double>> storage;
  for (std::size_t i = 0; i < kItems; ++i) storage.push_back(random_real(n));
  std::vector<std::span<const double>> inputs(storage.begin(), storage.end());
  const auto kernel = random_real(n);
  std::vector<std::vector<double>> outs(kItems);
  amopt::conv::Workspace ws;
  const amopt::conv::Policy fft{amopt::conv::Policy::Path::fft};
  amopt::conv::convolve_many(inputs, kernel, outs, ws, fft);  // warm-up
  for (auto _ : state) {
    amopt::conv::convolve_many(inputs, kernel, outs, ws, fft);
    benchmark::DoNotOptimize(outs.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kItems));
}
BENCHMARK(BM_ConvolveMany)->RangeMultiplier(4)->Range(1 << 10, 1 << 16);

// ---------------------------------------------------- per-dispatch-path

// One benchmark body per kernel family; the dispatch level is installed at
// benchmark entry (google-benchmark runs benchmarks sequentially, so the
// override cannot leak into a concurrently running bench).

// Pins the dispatch level for one benchmark body and restores the ambient
// (AMOPT_SIMD-resolved) level on every exit path, so an early return or
// SkipWithError cannot leak the override into later benches.
struct LevelScope {
  explicit LevelScope(amopt::simd::Level lvl)
      : prev(amopt::simd::active()) {
    amopt::simd::set_level(lvl);
  }
  ~LevelScope() { amopt::simd::set_level(prev); }
  amopt::simd::Level prev;
};

// Forward + inverse per iteration: repeated forward-only transforms grow
// the data by ~n per pass until it overflows to inf/NaN, and non-finite
// arithmetic skews per-path timing — the round trip keeps values bounded
// so the scalar/vector ratio is honest.
void BM_FftRoundTripPath(benchmark::State& state, amopt::simd::Level lvl) {
  const LevelScope scope(lvl);
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  auto data = random_complex(n);
  const auto& plan = amopt::fft::plan_for(n);
  for (auto _ : state) {
    plan.forward(data.data());
    plan.inverse(data.data());
    benchmark::DoNotOptimize(data.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}

void BM_RealFftForwardPath(benchmark::State& state, amopt::simd::Level lvl) {
  const LevelScope scope(lvl);
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const auto data = random_real(n);
  const auto& plan = amopt::fft::real_plan_for(n);
  std::vector<cplx> spec(plan.spectrum_size());
  for (auto _ : state) {
    plan.forward(data.data(), spec.data());
    benchmark::DoNotOptimize(spec.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}

void BM_ConvolveWorkspacePath(benchmark::State& state,
                              amopt::simd::Level lvl) {
  const LevelScope scope(lvl);
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const auto a = random_real(n);
  const auto b = random_real(n);
  amopt::conv::Workspace ws;
  std::vector<double> out(2 * n - 1);
  const amopt::conv::Policy fft{amopt::conv::Policy::Path::fft};
  amopt::conv::convolve_full(a, b, out, ws, fft);  // warm-up
  for (auto _ : state) {
    amopt::conv::convolve_full(a, b, out, ws, fft);
    benchmark::DoNotOptimize(out.data());
  }
}

// Transform-per-call correlation (the pre-spectral kernel path): the
// denominator of the spectral-path speedup check_bench.py enforces.
void BM_CorrelateWorkspacePath(benchmark::State& state,
                               amopt::simd::Level lvl) {
  const LevelScope scope(lvl);
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const auto in = random_real(2 * n);
  const auto kernel = random_real(n);
  std::vector<double> out(n + 1);
  amopt::conv::Workspace ws;
  const amopt::conv::Policy fft{amopt::conv::Policy::Path::fft};
  amopt::conv::correlate_valid(in, kernel, out, ws, fft);  // warm-up
  for (auto _ : state) {
    amopt::conv::correlate_valid(in, kernel, out, ws, fft);
    benchmark::DoNotOptimize(out.data());
  }
}

// Correlation consuming a precomputed kernel spectrum: what the solvers'
// run_conv pays once the KernelCache spectrum tier is warm (2 transforms
// per call instead of 3).
void BM_CorrelateSpectralPath(benchmark::State& state,
                              amopt::simd::Level lvl) {
  const LevelScope scope(lvl);
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const auto in = random_real(2 * n);
  const auto kernel = random_real(n);
  std::vector<double> out(n + 1);
  amopt::conv::Workspace ws;
  const amopt::fft::RealSpectrum kspec = amopt::conv::kernel_spectrum(
      kernel, amopt::conv::correlate_fft_size(out.size(), kernel.size()),
      /*reversed=*/true, ws);
  amopt::conv::correlate_valid(in, kspec, out, ws);  // warm-up
  for (auto _ : state) {
    amopt::conv::correlate_valid(in, kspec, out, ws);
    benchmark::DoNotOptimize(out.data());
  }
}

// Production kernel power: binary exponentiation whose squarings ride the
// aliased one-transform fast path (csquare).
void BM_PolyPowerFftPath(benchmark::State& state, amopt::simd::Level lvl) {
  const LevelScope scope(lvl);
  const std::uint64_t h = static_cast<std::uint64_t>(state.range(0));
  const std::vector<double> taps{0.24, 0.50, 0.25};
  amopt::conv::Workspace ws;
  (void)amopt::poly::power_fft(taps, h, ws);  // warm-up
  for (auto _ : state) {
    auto k = amopt::poly::power_fft(taps, h, ws);
    benchmark::DoNotOptimize(k.data());
  }
}

// Pre-PR reference: the same square-and-multiply walk with every squaring
// forced through the two-operand path (base copied to a second buffer so
// the operands never alias) — the transform count power_fft used to pay.
void BM_PolyPowerFftTwoTransformPath(benchmark::State& state,
                                     amopt::simd::Level lvl) {
  const LevelScope scope(lvl);
  const std::uint64_t h = static_cast<std::uint64_t>(state.range(0));
  const std::vector<double> taps{0.24, 0.50, 0.25};
  amopt::conv::Workspace ws;
  const auto clamp = [](std::span<double> k) {
    double peak = 0.0;
    for (double x : k) peak = std::max(peak, std::abs(x));
    const double floor = 1e-12 * peak;
    for (double& x : k) {
      if (std::abs(x) < floor) x = 0.0;
      if (x < 0.0) x = 0.0;
    }
  };
  std::vector<double> base_copy;
  const auto run = [&] {
    const std::size_t d = taps.size() - 1;
    const std::size_t max_len = d * static_cast<std::size_t>(h) + 1;
    std::span<double> result = ws.acc(max_len);
    std::span<double> base = ws.tmp(max_len);
    std::span<double> stage = ws.aux(max_len);
    base_copy.resize(max_len);
    std::size_t nr = 1, nb = taps.size();
    result[0] = 1.0;
    std::copy(taps.begin(), taps.end(), base.begin());
    std::uint64_t e = h;
    while (e > 0) {
      if (e & 1u) {
        const std::size_t len = nr + nb - 1;
        amopt::conv::convolve_full(result.first(nr), base.first(nb),
                                   stage.first(len), ws);
        std::copy_n(stage.begin(), len, result.begin());
        nr = len;
        clamp(result.first(nr));
      }
      e >>= 1;
      if (e > 0) {
        const std::size_t len = 2 * nb - 1;
        std::copy_n(base.begin(), nb, base_copy.begin());
        amopt::conv::convolve_full(base.first(nb),
                                   std::span<const double>(base_copy).first(nb),
                                   stage.first(len), ws);
        std::copy_n(stage.begin(), len, base.begin());
        nb = len;
        clamp(base.first(nb));
      }
    }
    benchmark::DoNotOptimize(result.data());
  };
  run();  // warm-up
  for (auto _ : state) run();
}

// pad-x numerator: the SAME spectral correlation as BM_CorrelateSpectral,
// but with the kernel spectrum built at the pre-PR-10 double-padded size
// next_pow2(out + 2*(klen-1)) — every linear bin alias-free, including the
// bins no correlation reads. The spectral overload accepts any n above the
// overlap-save minimum, so the legacy sizing stays reproducible for this
// in-run comparison: check_bench holds
// BM_CorrelateSpectralWidePad / BM_CorrelateSpectral >= 1.25x at n >= 2^12.
void BM_CorrelateSpectralWidePadPath(benchmark::State& state,
                                     amopt::simd::Level lvl) {
  const LevelScope scope(lvl);
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const auto in = random_real(2 * n);
  const auto kernel = random_real(n);
  std::vector<double> out(n + 1);
  amopt::conv::Workspace ws;
  const std::size_t wide =
      amopt::next_pow2(out.size() + 2 * (kernel.size() - 1));
  const amopt::fft::RealSpectrum kspec =
      amopt::conv::kernel_spectrum(kernel, wide, /*reversed=*/true, ws);
  amopt::conv::correlate_valid(in, kspec, out, ws);  // warm-up
  for (auto _ : state) {
    amopt::conv::correlate_valid(in, kspec, out, ws);
    benchmark::DoNotOptimize(out.data());
  }
}

// share-quantum-x: a drifting-vol 5-leg batch (one expiry, each leg's vol a
// few e-5 off its neighbours — recalibration-tick traffic) priced by a FRESH
// session per iteration, so the timing is dominated by kernel construction
// (European fft legs are a single kernel power apply; the ladder IS the
// solve). Off: sharing enabled but quantum 0 (exact keys — the drift defeats
// every merge, five kernel ladders). On: share_quantum covers the drift, the
// batch collapses to ONE ladder with no dt rescaling (equal expiries).
// check_bench holds Off/On >= 1.2x.
void BM_ShareQuantumChainPath(benchmark::State& state, amopt::simd::Level lvl,
                              double quantum) {
  const LevelScope scope(lvl);
  const std::int64_t T = state.range(0);
  std::vector<amopt::pricing::PricingRequest> chain;
  for (int i = 0; i < 5; ++i) {
    amopt::pricing::PricingRequest q;
    q.spec = amopt::pricing::paper_spec();
    q.spec.V *= 1.0 + i * 1e-4;
    q.T = T;
    q.style = amopt::pricing::Style::european;
    chain.push_back(q);
  }
  amopt::pricing::PricerConfig cfg;
  cfg.share_kernels_across_expiries = true;
  cfg.share_quantum = quantum;
  for (auto _ : state) {
    amopt::pricing::Pricer session(cfg);
    auto res = session.price_many(chain);
    benchmark::DoNotOptimize(res.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 5);
}

// Kernel-ladder micro: one descent-like height set (h, h/2, ..., 1) served
// by a fresh KernelCache (rungs shared across heights) vs the same heights
// each rebuilt from the raw taps.
void BM_KernelLadderDescentPath(benchmark::State& state,
                                amopt::simd::Level lvl) {
  const LevelScope scope(lvl);
  const std::uint64_t h = static_cast<std::uint64_t>(state.range(0));
  for (auto _ : state) {
    amopt::stencil::KernelCache cache({{0.24, 0.50, 0.25}, 0});
    for (std::uint64_t step = h; step >= 1; step /= 2) {
      const auto k = cache.power(step);
      benchmark::DoNotOptimize(k.data());
    }
  }
}

void BM_KernelPowersUnsharedPath(benchmark::State& state,
                                 amopt::simd::Level lvl) {
  const LevelScope scope(lvl);
  const std::uint64_t h = static_cast<std::uint64_t>(state.range(0));
  const std::vector<double> taps{0.24, 0.50, 0.25};
  amopt::conv::Workspace ws;
  for (auto _ : state) {
    for (std::uint64_t step = h; step >= 1; step /= 2) {
      auto k = amopt::poly::power_fft(taps, step, ws);
      benchmark::DoNotOptimize(k.data());
    }
  }
}

void register_per_path_benches() {
  using amopt::simd::Level;
  for (const Level lvl : {Level::scalar, Level::avx2, Level::avx512}) {
    if (static_cast<int>(lvl) >
        static_cast<int>(amopt::simd::max_supported()))
      continue;
    const std::string tag = std::string("<") + amopt::simd::to_string(lvl) + ">";
    benchmark::RegisterBenchmark(("BM_FftRoundTrip" + tag).c_str(),
                                 BM_FftRoundTripPath, lvl)
        ->RangeMultiplier(4)
        ->Range(1 << 10, 1 << 16);
    benchmark::RegisterBenchmark(("BM_RealFftForward" + tag).c_str(),
                                 BM_RealFftForwardPath, lvl)
        ->RangeMultiplier(4)
        ->Range(1 << 10, 1 << 16);
    benchmark::RegisterBenchmark(("BM_ConvolveFullWorkspace" + tag).c_str(),
                                 BM_ConvolveWorkspacePath, lvl)
        ->RangeMultiplier(4)
        ->Range(1 << 10, 1 << 16);
    benchmark::RegisterBenchmark(("BM_CorrelateValidWorkspace" + tag).c_str(),
                                 BM_CorrelateWorkspacePath, lvl)
        ->RangeMultiplier(4)
        ->Range(1 << 10, 1 << 16);
    benchmark::RegisterBenchmark(("BM_CorrelateSpectral" + tag).c_str(),
                                 BM_CorrelateSpectralPath, lvl)
        ->RangeMultiplier(4)
        ->Range(1 << 10, 1 << 16);
    benchmark::RegisterBenchmark(("BM_CorrelateSpectralWidePad" + tag).c_str(),
                                 BM_CorrelateSpectralWidePadPath, lvl)
        ->RangeMultiplier(4)
        ->Range(1 << 10, 1 << 16);
    benchmark::RegisterBenchmark(("BM_ShareQuantumOff" + tag).c_str(),
                                 BM_ShareQuantumChainPath, lvl, 0.0)
        ->Arg(1 << 13)
        ->Unit(benchmark::kMillisecond);
    benchmark::RegisterBenchmark(("BM_ShareQuantumOn" + tag).c_str(),
                                 BM_ShareQuantumChainPath, lvl, 1e-3)
        ->Arg(1 << 13)
        ->Unit(benchmark::kMillisecond);
    benchmark::RegisterBenchmark(("BM_PolyPowerFft" + tag).c_str(),
                                 BM_PolyPowerFftPath, lvl)
        ->RangeMultiplier(4)
        ->Range(1 << 10, 1 << 14);
    benchmark::RegisterBenchmark(("BM_PolyPowerFftTwoTransform" + tag).c_str(),
                                 BM_PolyPowerFftTwoTransformPath, lvl)
        ->RangeMultiplier(4)
        ->Range(1 << 10, 1 << 14);
    benchmark::RegisterBenchmark(("BM_KernelLadderDescent" + tag).c_str(),
                                 BM_KernelLadderDescentPath, lvl)
        ->RangeMultiplier(4)
        ->Range(1 << 10, 1 << 14);
    benchmark::RegisterBenchmark(("BM_KernelPowersUnshared" + tag).c_str(),
                                 BM_KernelPowersUnsharedPath, lvl)
        ->RangeMultiplier(4)
        ->Range(1 << 10, 1 << 14);
  }
}

}  // namespace

int main(int argc, char** argv) {
  register_per_path_benches();
  // Default to a JSON dump next to the binary unless the caller already
  // steers the output or opts out with AMOPT_BENCH_JSON=none.
  std::vector<char*> args(argv, argv + argc);
  bool has_out = false;
  for (int i = 1; i < argc; ++i)
    if (std::strncmp(argv[i], "--benchmark_out", 15) == 0) has_out = true;
  const std::string json =
      amopt::env_string("AMOPT_BENCH_JSON", "BENCH_fft.json");
  std::string out_flag, fmt_flag;
  if (!has_out && json != "none") {
    out_flag = "--benchmark_out=" + json;
    fmt_flag = "--benchmark_out_format=json";
    args.push_back(out_flag.data());
    args.push_back(fmt_flag.data());
  }
  int n = static_cast<int>(args.size());
  benchmark::Initialize(&n, args.data());
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
