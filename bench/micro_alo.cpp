// Boundary-engine quote/IV microbench: the PR's headline numbers, row-keyed
// by the LATTICE step count T the boundary engine is racing.
//
//   quote-fft      — one warm bsm American-put quote through the stencil
//                    fft engine at T steps (shared kernel cache prebuilt,
//                    so this is the honest marginal descent cost);
//   quote-boundary — the same contract through the ALO boundary engine at
//                    the default preset (13 nodes / 25 quad / 8 sweeps,
//                    ~2e-6 price error — tighter than the lattice anywhere
//                    in this sweep, so every row compares at or above
//                    matched accuracy);
//   quote-x        — fft/boundary ratio (bigger is better); the >= 50x
//                    acceptance bar at T = 2^13 is enforced by
//                    tools/check_bench.py --pair-speedup in CI;
//   iv-lattice     — microseconds per implied-vol inversion of a ticking
//                    8-strike chain routed through the lattice engine
//                    (bopm American call, the lattice IV path);
//   iv-boundary    — the same ticking inversion routed through the
//                    boundary engine (bsm American put); >= 5x bar in CI;
//   allocs-quote   — heap allocations per steady-state boundary quote
//                    (prebuilt NodeTable, warm arena): pinned at ZERO by
//                    --alloc-budget, the DESIGN.md §6 contract. This
//                    binary replaces operator new/delete with counting
//                    versions (counting_new.hpp) to measure it.
//
// The IV ticks drift a few basis points per tick so later Newton iterates
// genuinely differ tick to tick — warm-session reuse, not memoization.
// Emits BENCH_alo.json (AMOPT_BENCH_JSON overrides, "none" disables).

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <vector>

#include "amopt/core/lattice_solver.hpp"
#include "amopt/pricing/alo/alo_engine.hpp"
#include "amopt/pricing/api.hpp"
#include "amopt/pricing/bopm.hpp"
#include "amopt/pricing/bsm_fdm.hpp"
#include "amopt/pricing/params.hpp"
#include "amopt/pricing/pricer.hpp"
#include "amopt/stencil/kernel_cache.hpp"
#include "bench_common.hpp"

#include "counting_new.hpp"

int main() {
  using namespace amopt;
  using namespace amopt::pricing;

  const bench::Sweep sweep = bench::sweep_from_env(1 << 11, 1 << 13, 0);
  const int ticks = static_cast<int>(env_long("AMOPT_BENCH_TICKS", 4));
  const int n_strikes = 8;
  const int kQuoteBatch = 64;  // boundary quotes are us-scale; batch them

  bench::print_header(
      "single American quote and implied-vol tick: stencil lattice vs the "
      "Chebyshev/tanh-sinh boundary engine (us per quote / per inversion), "
      "plus heap allocations per steady-state boundary quote",
      "microseconds",
      {"quote-fft", "quote-boundary", "quote-x", "iv-lattice", "iv-boundary",
       "iv-x", "allocs-quote"});

  const OptionSpec base{100.0, 100.0, 0.05, 0.25, 0.0, 1.0};
  const core::SolverConfig scfg;  // default ALO preset
  const auto table = alo::build_node_table(scfg.alo_nodes, scfg.alo_quad);

  std::vector<std::int64_t> ts;
  std::vector<std::vector<double>> rows;
  for (std::int64_t T = sweep.min_t; T <= sweep.max_t; T *= 2) {
    // --- single quote, fft engine: shared kernel cache prebuilt (a strike
    // ladder shares taps), so the timed region is the per-quote descent.
    const BsmParams prm = derive_bsm(base, T);
    stencil::KernelCache cache({{prm.b, prm.c, prm.a}, -1});
    double fft_sink = 0.0;
    OptionSpec fft_spec = base;
    (void)bsm::american_put_fft(fft_spec, T, scfg, &cache);  // warm kernels
    const double quote_fft =
        1e6 * bench::time_best(
                  [&] {
                    fft_sink += bsm::american_put_fft(fft_spec, T, scfg, &cache);
                  },
                  sweep.reps);

    // --- single quote, boundary engine: prebuilt NodeTable, warm arena;
    // a batch of distinct strikes per timing to rise above timer noise.
    double alo_sink = 0.0;
    OptionSpec alo_spec = base;
    (void)alo::american_price(alo_spec, Right::put, scfg, table.get());
    const double quote_alo =
        1e6 *
        bench::time_best(
            [&] {
              for (int i = 0; i < kQuoteBatch; ++i) {
                alo_spec.K = 90.0 + 0.25 * static_cast<double>(i);
                alo_sink +=
                    alo::american_price(alo_spec, Right::put, scfg, table.get());
              }
            },
            sweep.reps) /
        kQuoteBatch;
    const double quote_x = quote_alo > 0.0 ? quote_fft / quote_alo : 0.0;

    // --- implied-vol tick, lattice-routed: bopm American call at T steps
    // (the lattice IV path), one warm session across all ticks.
    std::vector<PricingRequest> lat_chain;
    for (int i = 0; i < n_strikes; ++i) {
      PricingRequest q;
      q.spec = paper_spec();
      q.spec.K = 100.0 + 4.0 * i;
      q.T = T;
      q.compute = Compute::implied_vol;
      q.target_price = bopm::american_call_fft(q.spec, T);
      lat_chain.push_back(q);
    }
    const auto ticked = [](const PricingRequest& q, int tick) {
      return q.target_price * (1.0 + 2e-4 * static_cast<double>(tick + 1));
    };
    Pricer lat_session;
    {  // un-timed tick 0: cold kernel builds belong to session setup
      std::vector<PricingRequest> warm = lat_chain;
      for (PricingRequest& q : warm) q.target_price = ticked(q, -1);
      (void)lat_session.implied_vol_many(warm);
    }
    double iv_sink = 0.0;
    WallTimer lat_timer;
    for (int tick = 0; tick < ticks; ++tick) {
      std::vector<PricingRequest> quotes = lat_chain;
      for (PricingRequest& q : quotes) q.target_price = ticked(q, tick);
      for (const PricingResult& r : lat_session.implied_vol_many(quotes))
        iv_sink += r.implied_vol.vol;
    }
    const double iv_lattice =
        1e6 * lat_timer.seconds() / (ticks * n_strikes);

    // --- implied-vol tick, boundary-routed: bsm American put, same drift.
    std::vector<PricingRequest> alo_chain;
    Pricer alo_session;
    for (int i = 0; i < n_strikes; ++i) {
      PricingRequest q;
      q.spec = base;
      q.spec.K = 100.0 + 4.0 * i;
      q.T = T;
      q.model = Model::bsm;
      q.right = Right::put;
      q.engine = Engine::boundary;
      alo_chain.push_back(q);
    }
    for (PricingRequest& q : alo_chain) {
      PricingRequest px = q;
      px.compute = Compute::price;
      q.compute = Compute::implied_vol;
      q.target_price = alo_session.price_one(px).price;
    }
    {  // matching un-timed warm tick
      std::vector<PricingRequest> warm = alo_chain;
      for (PricingRequest& q : warm) q.target_price = ticked(q, -1);
      (void)alo_session.implied_vol_many(warm);
    }
    WallTimer alo_timer;
    for (int tick = 0; tick < ticks; ++tick) {
      std::vector<PricingRequest> quotes = alo_chain;
      for (PricingRequest& q : quotes) q.target_price = ticked(q, tick);
      for (const PricingResult& r : alo_session.implied_vol_many(quotes))
        iv_sink += r.implied_vol.vol;
    }
    const double iv_boundary =
        1e6 * alo_timer.seconds() / (ticks * n_strikes);
    const double iv_x = iv_boundary > 0.0 ? iv_lattice / iv_boundary : 0.0;

    // --- steady-state allocation counter for the zero-alloc contract.
    (void)alo::american_price(alo_spec, Right::put, scfg, table.get());
    const std::uint64_t before = counting_new::count();
    for (int i = 0; i < kQuoteBatch; ++i) {
      alo_spec.K = 90.0 + 0.25 * static_cast<double>(i);
      alo_sink += alo::american_price(alo_spec, Right::put, scfg, table.get());
    }
    const double allocs_quote =
        static_cast<double>(counting_new::count() - before) / kQuoteBatch;

    bench::print_row(T, {quote_fft, quote_alo, quote_x, iv_lattice,
                         iv_boundary, iv_x, allocs_quote});
    ts.push_back(T);
    rows.push_back({quote_fft, quote_alo, quote_x, iv_lattice, iv_boundary,
                    iv_x, allocs_quote});
    std::printf("#   checksums: fft %.6f alo %.6f iv %.6f\n", fft_sink,
                alo_sink, iv_sink);
  }

  const std::string json = env_string("AMOPT_BENCH_JSON", "BENCH_alo.json");
  if (!json.empty() && json != "none")
    bench::write_json(json, "micro_alo_boundary_engine", "microseconds",
                      {"quote-fft", "quote-boundary", "quote-x", "iv-lattice",
                       "iv-boundary", "iv-x", "allocs-quote"},
                      ts, rows);
  return 0;
}
