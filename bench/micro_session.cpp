// Warm-session recalibration bench: repeated implied-vol inversion of a
// 16-strike chain as the quotes tick, comparing
//
//   cold-iv  — the legacy free function per quote (every evaluation owns
//              its kernel cache; nothing survives between calls);
//   warm-iv  — one `Pricer` session serving `implied_vol_many` for every
//              tick (bracket endpoints and early Newton iterates share tap
//              groups across the chain AND across ticks, so their kernel
//              powers are computed once for the whole run).
//
// The quotes move a few bp per tick, so later Newton iterates genuinely
// differ run to run — the warm numbers measure honest reuse, not
// memoization of identical requests. Emits BENCH_session.json
// (AMOPT_BENCH_JSON overrides the path, "none" disables).
//
// This binary also replaces global operator new/delete with counting
// versions to emit the allocs-descend series: the number of heap
// allocations one steady-state LatticeSolver::descend performs after
// warm-up. The PR 5 scratch arena makes this exactly zero at every T, and
// tools/check_bench.py --alloc-budget keeps it there in CI.

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <vector>

#include "amopt/common/parallel.hpp"
#include "amopt/core/lattice_solver.hpp"
#include "amopt/pricing/api.hpp"
#include "amopt/pricing/bopm.hpp"
#include "amopt/pricing/implied_vol.hpp"
#include "amopt/pricing/pricer.hpp"
#include "amopt/stencil/kernel_cache.hpp"
#include "bench_common.hpp"

#include "counting_new.hpp"

namespace {

/// Heap allocations of one warm LatticeSolver::descend at T: shared kernel
/// cache, serial solver (deterministic thread placement), one descent to
/// warm every cache/arena, then a counted repeat from the same top row.
[[nodiscard]] double allocs_per_descend(const amopt::pricing::OptionSpec& spec,
                                        std::int64_t T) {
  using namespace amopt;
  const auto prm = pricing::derive_bopm(spec, T);
  const pricing::bopm::CallGreen green(spec, prm);
  core::SolverConfig cfg;
  cfg.parallel = false;
  stencil::KernelCache cache({{prm.s0, prm.s1}, 0});
  core::LatticeSolver solver(&cache, {{prm.s0, prm.s1}, 0}, green, cfg);
  core::LatticeRow row = pricing::bopm::expiry_row(prm, green);
  while (row.i > std::max<std::int64_t>(T - 2, 0))
    row = solver.step_naive(row, /*unbounded_scan=*/true);
  core::LatticeRow warm = row;  // keep a reusable top
  (void)solver.descend(std::move(row), 0);  // warm-up descent
  core::LatticeRow top = warm;              // copy BEFORE counting
  const std::uint64_t before = counting_new::count();
  (void)solver.descend(std::move(top), 0);
  return static_cast<double>(counting_new::count() - before);
}

}  // namespace

int main() {
  using namespace amopt;
  using namespace amopt::pricing;

  const bench::Sweep sweep = bench::sweep_from_env(1 << 10, 1 << 12, 0);
  const int ticks = static_cast<int>(env_long("AMOPT_BENCH_TICKS", 8));
  const int n_strikes = 16;

  bench::print_header("warm-session vs cold implied-vol recalibration "
                      "(16-strike chain, ms per chain inversion), "
                      "cross-expiry kernel sharing (5-expiry TOPM chain, ms "
                      "per cold chain pricing), and heap allocations per "
                      "steady-state descend",
                      "milliseconds",
                      {"cold-iv", "warm-iv", "speedup", "share-off",
                       "share-on", "share-x", "allocs-descend", "batch-1t",
                       "batch-2t", "batch-4t", "batch-8t"});

  std::vector<std::int64_t> ts;
  std::vector<std::vector<double>> rows;
  for (std::int64_t T = sweep.min_t; T <= sweep.max_t; T *= 2) {
    // Quotes: the chain's own prices at the reference vol.
    OptionSpec base = paper_spec();
    std::vector<PricingRequest> chain;
    for (int i = 0; i < n_strikes; ++i) {
      PricingRequest q;
      q.spec = base;
      q.spec.K = 100.0 + 4.0 * i;
      q.T = T;
      chain.push_back(q);
    }
    for (PricingRequest& q : chain)
      q.target_price = bopm::american_call_fft(q.spec, T);
    const auto ticked = [&](const PricingRequest& q, int tick) {
      // A few basis points of drift per tick keeps every inversion fresh.
      return q.target_price * (1.0 + 2e-4 * static_cast<double>(tick + 1));
    };

    // Cold: free function per quote, per tick.
    WallTimer cold_timer;
    double cold_sink = 0.0;
    for (int tick = 0; tick < ticks; ++tick) {
      for (const PricingRequest& q : chain) {
        ImpliedVolConfig cfg;
        cfg.T = T;
        cold_sink +=
            american_call_implied_vol(q.spec, ticked(q, tick), cfg).vol;
      }
    }
    const double cold = cold_timer.seconds() / ticks;

    // Warm: one session across all ticks.
    Pricer session;
    WallTimer warm_timer;
    double warm_sink = 0.0;
    for (int tick = 0; tick < ticks; ++tick) {
      std::vector<PricingRequest> quotes = chain;
      for (PricingRequest& q : quotes) q.target_price = ticked(q, tick);
      for (const PricingResult& res : session.implied_vol_many(quotes))
        warm_sink += res.implied_vol.vol;
    }
    const double warm = warm_timer.seconds() / ticks;

    const double speedup = warm > 0.0 ? cold / warm : 0.0;

    // Cross-expiry kernel sharing: a 5-expiry European TOPM chain — the
    // vol-surface calibration shape, where each leg's cost IS its T-step
    // kernel power (3-tap stencils, so powers run the FFT squaring ladder)
    // — with per-leg step counts targeting a common steps-per-year. The
    // llround below leaves the five dt values unequal in the last bits, so
    // with sharing OFF every leg builds its own kernel cache and squaring
    // ladder; with sharing ON the batch is renormalized to one dt and the
    // whole chain shares ONE group — every leg draws its taps^(2^k) rungs
    // from one chain built once. Fresh sessions per run: this measures
    // cold-chain construction, the cost the sharing flag exists to
    // amortize.
    const double expiries[] = {0.26, 0.51, 0.77, 1.03, 1.28};
    std::vector<PricingRequest> xchain;
    for (const double e : expiries) {
      PricingRequest q;
      q.spec = paper_spec();
      q.spec.expiry_years = e;
      q.model = Model::topm;
      q.style = Style::european;
      q.T = std::llround(e * static_cast<double>(T));
      xchain.push_back(q);
    }
    double share_sink = 0.0;
    const double share_off = bench::time_best(
        [&] {
          Pricer s;
          for (const PricingResult& r : s.price_many(xchain))
            share_sink += r.price;
        },
        sweep.reps);
    PricerConfig shared_cfg;
    shared_cfg.share_kernels_across_expiries = true;
    std::size_t shared_groups = 0;
    const double share_on = bench::time_best(
        [&] {
          Pricer s(shared_cfg);
          for (const PricingResult& r : s.price_many(xchain))
            share_sink += r.price;
          shared_groups = s.stats().base_kernel_caches;
        },
        sweep.reps);
    const double share_x = share_on > 0.0 ? share_off / share_on : 0.0;

    // Steady-state allocation counter for the scratch-arena guarantee.
    const double allocs = allocs_per_descend(base, T);

    // Thread-scaling of the warm batch fan-out: the same 16-strike chain
    // priced through ONE warm session at pool widths 1/2/4/8 (width 1 is
    // the serial library bit for bit; widths beyond the machine's cores
    // oversubscribe and mostly measure scheduling overhead).
    double batch_ms[4] = {0.0, 0.0, 0.0, 0.0};
    {
      Pricer bs;
      double batch_sink = 0.0;
      (void)bs.price_many(chain);  // warm caches and arenas once
      int slot = 0;
      for (const int p : {1, 2, 4, 8}) {
        ThreadScope scope(p);
        batch_ms[slot++] = 1e3 * bench::time_best(
                                     [&] {
                                       for (const PricingResult& r :
                                            bs.price_many(chain))
                                         batch_sink += r.price;
                                     },
                                     sweep.reps);
      }
      volatile double sink = batch_sink;  // keep the measured work observable
      (void)sink;
    }

    bench::print_row(T, {cold * 1e3, warm * 1e3, speedup, share_off * 1e3,
                         share_on * 1e3, share_x, allocs, batch_ms[0],
                         batch_ms[1], batch_ms[2], batch_ms[3]});
    ts.push_back(T);
    rows.push_back({cold * 1e3, warm * 1e3, speedup, share_off * 1e3,
                    share_on * 1e3, share_x, allocs, batch_ms[0],
                    batch_ms[1], batch_ms[2], batch_ms[3]});

    const Pricer::Stats st = session.stats();
    std::printf("#   session: %zu live group(s), %llu hit(s) / %llu "
                "miss(es) across %llu request(s); vol checksums %.6f/%.6f; "
                "shared chain groups: %zu (price checksum %.6f)\n",
                st.kernel_caches,
                static_cast<unsigned long long>(st.cache_hits),
                static_cast<unsigned long long>(st.cache_misses),
                static_cast<unsigned long long>(st.requests), cold_sink,
                warm_sink, shared_groups, share_sink);
  }

  const std::string json = env_string("AMOPT_BENCH_JSON", "BENCH_session.json");
  if (!json.empty() && json != "none")
    bench::write_json(json, "micro_session_warm_iv", "milliseconds",
                      {"cold-iv", "warm-iv", "speedup", "share-off",
                       "share-on", "share-x", "allocs-descend", "batch-1t",
                       "batch-2t", "batch-4t", "batch-8t"},
                      ts, rows);
  return 0;
}
