// Warm-session recalibration bench: repeated implied-vol inversion of a
// 16-strike chain as the quotes tick, comparing
//
//   cold-iv  — the legacy free function per quote (every evaluation owns
//              its kernel cache; nothing survives between calls);
//   warm-iv  — one `Pricer` session serving `implied_vol_many` for every
//              tick (bracket endpoints and early Newton iterates share tap
//              groups across the chain AND across ticks, so their kernel
//              powers are computed once for the whole run).
//
// The quotes move a few bp per tick, so later Newton iterates genuinely
// differ run to run — the warm numbers measure honest reuse, not
// memoization of identical requests. Emits BENCH_session.json
// (AMOPT_BENCH_JSON overrides the path, "none" disables).

#include <cstdio>
#include <vector>

#include "amopt/pricing/api.hpp"
#include "amopt/pricing/bopm.hpp"
#include "amopt/pricing/implied_vol.hpp"
#include "amopt/pricing/pricer.hpp"
#include "bench_common.hpp"

int main() {
  using namespace amopt;
  using namespace amopt::pricing;

  const bench::Sweep sweep = bench::sweep_from_env(1 << 10, 1 << 12, 0);
  const int ticks = static_cast<int>(env_long("AMOPT_BENCH_TICKS", 8));
  const int n_strikes = 16;

  bench::print_header("warm-session vs cold implied-vol recalibration "
                      "(16-strike chain, ms per chain inversion)",
                      "milliseconds",
                      {"cold-iv", "warm-iv", "speedup"});

  std::vector<std::int64_t> ts;
  std::vector<std::vector<double>> rows;
  for (std::int64_t T = sweep.min_t; T <= sweep.max_t; T *= 2) {
    // Quotes: the chain's own prices at the reference vol.
    OptionSpec base = paper_spec();
    std::vector<PricingRequest> chain;
    for (int i = 0; i < n_strikes; ++i) {
      PricingRequest q;
      q.spec = base;
      q.spec.K = 100.0 + 4.0 * i;
      q.T = T;
      chain.push_back(q);
    }
    for (PricingRequest& q : chain)
      q.target_price = bopm::american_call_fft(q.spec, T);
    const auto ticked = [&](const PricingRequest& q, int tick) {
      // A few basis points of drift per tick keeps every inversion fresh.
      return q.target_price * (1.0 + 2e-4 * static_cast<double>(tick + 1));
    };

    // Cold: free function per quote, per tick.
    WallTimer cold_timer;
    double cold_sink = 0.0;
    for (int tick = 0; tick < ticks; ++tick) {
      for (const PricingRequest& q : chain) {
        ImpliedVolConfig cfg;
        cfg.T = T;
        cold_sink +=
            american_call_implied_vol(q.spec, ticked(q, tick), cfg).vol;
      }
    }
    const double cold = cold_timer.seconds() / ticks;

    // Warm: one session across all ticks.
    Pricer session;
    WallTimer warm_timer;
    double warm_sink = 0.0;
    for (int tick = 0; tick < ticks; ++tick) {
      std::vector<PricingRequest> quotes = chain;
      for (PricingRequest& q : quotes) q.target_price = ticked(q, tick);
      for (const PricingResult& res : session.implied_vol_many(quotes))
        warm_sink += res.implied_vol.vol;
    }
    const double warm = warm_timer.seconds() / ticks;

    const double speedup = warm > 0.0 ? cold / warm : 0.0;
    bench::print_row(T, {cold * 1e3, warm * 1e3, speedup});
    ts.push_back(T);
    rows.push_back({cold * 1e3, warm * 1e3, speedup});

    const Pricer::Stats st = session.stats();
    std::printf("#   session: %zu live group(s), %llu hit(s) / %llu "
                "miss(es) across %llu request(s); vol checksums %.6f/%.6f\n",
                st.kernel_caches,
                static_cast<unsigned long long>(st.cache_hits),
                static_cast<unsigned long long>(st.cache_misses),
                static_cast<unsigned long long>(st.requests), cold_sink,
                warm_sink);
  }

  const std::string json = env_string("AMOPT_BENCH_JSON", "BENCH_session.json");
  if (!json.empty() && json != "none")
    bench::write_json(json, "micro_session_warm_iv", "milliseconds",
                      {"cold-iv", "warm-iv", "speedup"}, ts, rows);
  return 0;
}
