// Figure 7: L1 and L2 cache misses vs T for every implementation, via the
// exact two-level LRU simulator (S9b/S9c; paper used PAPI counters — see
// DESIGN.md). Simulation cost is a few hundred million tracked accesses at
// the default cap; raise AMOPT_BENCH_MAX_T to push toward paper scale.

#include "amopt/metrics/sim_kernels.hpp"
#include "bench_common.hpp"

int main() {
  using namespace amopt;
  using metrics::SimAlg;
  const auto spec = pricing::paper_spec();
  const auto sweep = bench::sweep_from_env(1 << 11, 1 << 13, 1 << 13);

  const auto run = [&](const char* title,
                       const std::vector<SimAlg>& algs) {
    std::vector<std::string> names;
    for (auto a : algs) names.emplace_back(metrics::to_string(a));
    std::vector<std::string> both;
    for (const auto& n : names) both.push_back(n + ":L1");
    for (const auto& n : names) both.push_back(n + ":L2");
    bench::print_header(title, "misses", both);
    for (std::int64_t T = sweep.min_t; T <= sweep.max_t; T *= 2) {
      std::vector<double> l1, l2;
      for (auto a : algs) {
        const auto stats = metrics::simulate_kernel(a, spec, T);
        l1.push_back(static_cast<double>(stats.l1_misses));
        l2.push_back(static_cast<double>(stats.l2_misses));
      }
      std::vector<double> row = l1;
      row.insert(row.end(), l2.begin(), l2.end());
      bench::print_row(T, row);
    }
  };

  run("Figure 7(a)/(d): BOPM cache misses",
      {SimAlg::bopm_fft, SimAlg::bopm_quantlib, SimAlg::bopm_zubair});
  run("Figure 7(b)/(e): TOPM cache misses",
      {SimAlg::topm_fft, SimAlg::topm_vanilla});
  run("Figure 7(c)/(f): BSM cache misses",
      {SimAlg::bsm_fft, SimAlg::bsm_vanilla});
  return 0;
}
