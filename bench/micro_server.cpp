// Pricing-daemon load bench (service/server.hpp): a client hammers a
// `Server` with single-quote submissions and chain batches, reporting per
// row (lattice size T):
//
//   p50-us / p99-us  — round-trip latency of a warm single-quote submit
//                      through one shard (enqueue, price, scatter, wake);
//   qps-1shard /     — chain-batch throughput, one shard vs four (on a
//   qps-4shard         1-core box these coincide; with real cores the
//                      shard fan-out shows up here);
//   coalesce-off /   — ms per recalibration tick of a 5-expiry TOPM chain
//   coalesce-on        whose vol drifts every tick (cold kernels), served
//                      item-by-item vs merged by the coalescing window
//                      into ONE shared-kernel price_many;
//   coalesce-x       — off/on: the algorithmic win of coalescing (one
//                      kernel-ladder build per tick instead of five), so
//                      it holds on a single core — CI requires >= 1.2x;
//   allocs-steady    — heap allocations of one warm wire round trip
//                      (decode -> coalesce -> price -> encode) of a
//                      boundary-engine chain over the loopback transport;
//                      the service plane pins this at exactly zero.
//   shed-p99-us      — p99 latency of an admission-SHED submit (the
//                      overload defense of DESIGN.md §11): reject, fill
//                      the fixed hint, complete — no pricing, no heap.
//
// The coalesced results are verified bit-identical against a direct
// `Pricer::price_many` of the same merged batch before timing counts —
// a wrong answer fails the binary, not just the numbers. Emits
// BENCH_server.json (AMOPT_BENCH_JSON overrides, "none" disables).
//
// Replaces global operator new/delete with counting versions for the
// allocs-steady series (include counting_new.hpp from exactly one TU).

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "amopt/common/parallel.hpp"
#include "amopt/pricing/pricer.hpp"
#include "amopt/service/server.hpp"
#include "amopt/service/transport.hpp"
#include "amopt/service/wire.hpp"
#include "bench_common.hpp"

#include "counting_new.hpp"

namespace {

using namespace amopt;
using namespace amopt::pricing;
using namespace amopt::service;

/// 64 quotes: 16 strikes x 4 vols, so a 4-shard server sees work on more
/// than one shard (routing keys on V, never on K).
[[nodiscard]] std::vector<PricingRequest> chain_batch(std::int64_t T) {
  std::vector<PricingRequest> reqs;
  PricingRequest q;
  q.spec = paper_spec();
  q.T = T;
  for (int v = 0; v < 4; ++v) {
    q.spec.V = 0.18 + 0.02 * v;
    for (int k = 0; k < 16; ++k) {
      q.spec.K = 100.0 + 4.0 * k;
      reqs.push_back(q);
    }
  }
  return reqs;
}

/// The recalibration-tick chain for the coalescing experiment: 5 expiries
/// of one TOPM European contract with per-leg step counts targeting a
/// common steps-per-year (the llround leaves the five dt unequal in the
/// last bits) — exactly the shape `share_kernels_across_expiries`
/// collapses to one kernel ladder without inflating any leg's step count.
[[nodiscard]] std::vector<PricingRequest> expiry_chain(std::int64_t T,
                                                       double vol) {
  std::vector<PricingRequest> reqs;
  PricingRequest q;
  q.spec = paper_spec();
  q.spec.V = vol;
  q.model = Model::topm;
  q.style = Style::european;
  for (double e : {0.26, 0.51, 0.77, 1.03, 1.28}) {
    q.spec.expiry_years = e;
    q.T = std::llround(e * static_cast<double>(T));
    reqs.push_back(q);
  }
  return reqs;
}

struct Latency {
  double p50_us = 0.0;
  double p99_us = 0.0;
};

[[nodiscard]] Latency measure_latency(std::int64_t T, int samples) {
  ServerConfig cfg;
  cfg.coalesce_window_us = 0;  // latency path: never linger for stragglers
  Server server(cfg);
  PricingRequest q;
  q.spec = paper_spec();
  q.T = T;
  PricingResult out;
  Server::Batch done;
  for (int i = 0; i < 8; ++i) {  // warm kernels, arena, queue ring
    server.submit({&q, 1}, &out, done);
    done.wait();
  }
  std::vector<double> us(static_cast<std::size_t>(samples));
  for (int i = 0; i < samples; ++i) {
    q.spec.K = 100.0 + 4.0 * (i % 16);  // tick across a strike chain
    WallTimer t;
    server.submit({&q, 1}, &out, done);
    done.wait();
    us[static_cast<std::size_t>(i)] = t.seconds() * 1e6;
  }
  std::sort(us.begin(), us.end());
  Latency l;
  l.p50_us = us[us.size() / 2];
  l.p99_us = us[us.size() - 1 - us.size() / 100];
  return l;
}

[[nodiscard]] double measure_qps(std::int64_t T, std::size_t shards,
                                 int reps) {
  ServerConfig cfg;
  cfg.shards = shards;
  Server server(cfg);
  const std::vector<PricingRequest> reqs = chain_batch(T);
  std::vector<PricingResult> out;
  server.price_into(reqs, out);  // warm every shard the batch touches
  const double secs = bench::time_best(
      [&] { server.price_into(reqs, out); }, reps);
  return static_cast<double>(reqs.size()) / secs;
}

/// ms per tick serving the drifting-vol expiry chain. `coalesce` picks the
/// merged (window waits for the full chain) or item-by-item server shape;
/// `tick` keeps advancing across calls so no rep ever re-prices a vol the
/// session's kernel registry already holds.
[[nodiscard]] double measure_tick_ms(std::int64_t T, bool coalesce,
                                     int ticks, int& tick) {
  ServerConfig cfg;
  cfg.pricer.share_kernels_across_expiries = true;
  cfg.max_coalesced_items = coalesce ? 5 : 1;
  cfg.coalesce_window_us = coalesce ? 100000 : 0;  // cap, not a cost: the
  // linger exits as soon as all 5 items of the tick are queued.
  Server server(cfg);
  std::vector<PricingResult> out(5);
  Server::Batch done;
  {  // warm-up tick (arena + queue + result capacities)
    const std::vector<PricingRequest> reqs =
        expiry_chain(T, 0.2 + 1e-4 * tick++);
    for (std::size_t i = 0; i < reqs.size(); ++i)
      server.submit({&reqs[i], 1}, &out[i], done);
    done.wait();
  }
  WallTimer t;
  for (int k = 0; k < ticks; ++k) {
    const std::vector<PricingRequest> reqs =
        expiry_chain(T, 0.2 + 1e-4 * tick++);
    for (std::size_t i = 0; i < reqs.size(); ++i)
      server.submit({&reqs[i], 1}, &out[i], done);
    done.wait();
  }
  const double ms = t.seconds() * 1e3 / ticks;

  if (coalesce) {
    // Acceptance: the merged batch must price bit-identically to a direct
    // session serving the same 5 requests in one price_many.
    const std::vector<PricingRequest> reqs =
        expiry_chain(T, 0.2 + 1e-4 * tick++);
    for (std::size_t i = 0; i < reqs.size(); ++i)
      server.submit({&reqs[i], 1}, &out[i], done);
    done.wait();
    PricerConfig direct_cfg;
    direct_cfg.share_kernels_across_expiries = true;
    Pricer direct(direct_cfg);
    const std::vector<PricingResult> want = direct.price_many(reqs);
    for (std::size_t i = 0; i < reqs.size(); ++i) {
      if (std::bit_cast<std::uint64_t>(out[i].price) !=
          std::bit_cast<std::uint64_t>(want[i].price)) {
        std::fprintf(stderr,
                     "micro_server: coalesced item %zu diverged from the "
                     "direct session (%.17g vs %.17g)\n",
                     i, out[i].price, want[i].price);
        std::exit(1);
      }
    }
  }
  return ms;
}

/// p99 latency of a SHED request (the failure plane, DESIGN.md §11): with
/// the scratch admission ceiling set below any real footprint, every
/// submit after the first is rejected at admission with `overloaded` and a
/// fixed hint literal. Shedding is the daemon's defense under overload —
/// it must stay orders of magnitude cheaper than pricing, and CI holds its
/// p99 under a fixed budget (check_bench --latency-budget).
[[nodiscard]] double measure_shed_p99(std::int64_t T, int samples) {
  ServerConfig cfg;
  cfg.coalesce_window_us = 0;
  cfg.admit_scratch_bytes = 1;  // below any published footprint: all shed
  Server server(cfg);
  PricingRequest q;
  q.spec = paper_spec();
  q.T = T;
  PricingResult out;
  Server::Batch done;
  // The first submit is admitted (the ceiling compares against the shard's
  // last-published snapshot, initially zero) and publishes a real scratch
  // figure; everything after is rejected before it touches a queue.
  server.submit({&q, 1}, &out, done);
  done.wait();
  for (int i = 0; i < 8; ++i) {  // warm the rejection path
    server.submit({&q, 1}, &out, done);
    done.wait();
  }
  if (out.status != Status::overloaded) {
    std::fprintf(stderr, "micro_server: shed warm-up was not rejected\n");
    std::exit(1);
  }
  std::vector<double> us(static_cast<std::size_t>(samples));
  for (int i = 0; i < samples; ++i) {
    WallTimer t;
    server.submit({&q, 1}, &out, done);
    done.wait();
    us[static_cast<std::size_t>(i)] = t.seconds() * 1e6;
  }
  std::sort(us.begin(), us.end());
  return us[us.size() - 1 - us.size() / 100];
}

/// Heap allocations of one steady-state wire round trip (boundary-engine
/// chain over the loopback): mirrors tests/test_server_alloc.cpp so CI can
/// guard allocs-steady=0 from the bench artifact too.
[[nodiscard]] double measure_allocs_steady() {
  // Shard drains execute on pool workers now; width 1 pins every drain to
  // the single housekeeping worker so one warm-up warms the one arena that
  // serves every counted round trip.
  ThreadScope width(1);
  ServerConfig cfg;
  cfg.pricer.parallel = false;
  cfg.coalesce_window_us = 0;
  Server server(cfg);
  auto pair = loopback_pair();
  Transport& client = *pair.first;
  std::thread conn([&server, t = pair.second.get()] { server.serve(*t); });

  std::vector<PricingRequest> reqs;
  PricingRequest q;
  q.spec = paper_spec();
  q.model = Model::bsm;
  q.engine = Engine::boundary;
  for (Right r : {Right::put, Right::call}) {
    q.right = r;
    reqs.push_back(q);
  }
  std::vector<std::byte> frame;
  std::vector<std::byte> inbuf(std::size_t{1} << 16);
  std::vector<PricingResult> results;
  const auto round_trip = [&] {
    frame.clear();
    wire::encode_request_batch(reqs, frame);
    if (!client.write_all(frame)) std::exit(1);
    std::size_t have = 0;
    for (;;) {
      std::size_t consumed = 0;
      if (wire::decode_result_batch({inbuf.data(), have}, results,
                                    consumed) == wire::DecodeError::ok)
        break;
      const std::size_t n =
          client.read_some({inbuf.data() + have, inbuf.size() - have});
      if (n == 0) std::exit(1);
      have += n;
    }
  };
  constexpr int kReps = 32;
  for (int i = 0; i < 8; ++i) round_trip();  // warm-up
  const std::uint64_t before = counting_new::count();
  for (int i = 0; i < kReps; ++i) round_trip();
  const double per_trip =
      static_cast<double>(counting_new::count() - before) / kReps;
  client.close();
  conn.join();
  return per_trip;
}

}  // namespace

int main() {
  using namespace amopt;

  const bench::Sweep sweep = bench::sweep_from_env(1 << 9, 1 << 11, 0);
  const int ticks = static_cast<int>(env_long("AMOPT_BENCH_TICKS", 8));
  const int samples =
      static_cast<int>(env_long("AMOPT_BENCH_LATENCY_SAMPLES", 100));

  bench::print_header(
      "pricing-daemon load bench: single-quote latency, chain throughput "
      "1 vs 4 shards, coalescing on/off on a drifting 5-expiry TOPM chain "
      "(ms/tick), and heap allocations per steady wire round trip",
      "microseconds / quotes-per-second / ms / allocations",
      {"p50-us", "p99-us", "qps-1shard", "qps-4shard", "coalesce-off",
       "coalesce-on", "coalesce-x", "allocs-steady", "shed-p99-us"});

  std::vector<std::int64_t> ts;
  std::vector<std::vector<double>> rows;
  int tick = 0;  // advances monotonically: no vol is ever re-priced warm
  for (std::int64_t T = sweep.min_t; T <= sweep.max_t; T *= 2) {
    const Latency lat = measure_latency(T, samples);
    const double qps1 = measure_qps(T, 1, sweep.reps);
    const double qps4 = measure_qps(T, 4, sweep.reps);
    const double off_ms = measure_tick_ms(T, /*coalesce=*/false, ticks, tick);
    const double on_ms = measure_tick_ms(T, /*coalesce=*/true, ticks, tick);
    const double allocs = measure_allocs_steady();
    const double shed_p99 = measure_shed_p99(T, samples);
    ts.push_back(T);
    rows.push_back({lat.p50_us, lat.p99_us, qps1, qps4, off_ms, on_ms,
                    off_ms / on_ms, allocs, shed_p99});
    bench::print_row(T, rows.back());
  }

  const std::string json = env_string("AMOPT_BENCH_JSON", "BENCH_server.json");
  if (json != "none") {
    bench::write_json(json, "micro_server_daemon",
                      "us/qps/ms/allocs (see series)",
                      {"p50-us", "p99-us", "qps-1shard", "qps-4shard",
                       "coalesce-off", "coalesce-on", "coalesce-x",
                       "allocs-steady", "shed-p99-us"},
                      ts, rows);
  }
  return 0;
}
