// Figure 5(c): parallel running time of American put pricing under the
// Black-Scholes-Merton explicit FDM — fft-bsm vs vanilla-bsm.

#include "amopt/pricing/bsm_fdm.hpp"
#include "bench_common.hpp"

int main() {
  using namespace amopt;
  const auto spec = pricing::paper_spec();
  const auto sweep = bench::sweep_from_env(1 << 11, 1 << 16, 1 << 13);

  bench::print_header("Figure 5(c): BSM American put, parallel running time",
                      "seconds", {"fft-bsm", "vanilla-bsm"});
  for (std::int64_t T = sweep.min_t; T <= sweep.max_t; T *= 2) {
    const double fft = bench::time_best(
        [&] { (void)pricing::bsm::american_put_fft(spec, T); }, sweep.reps);
    double van = -1.0;
    if (T <= sweep.slow_max_t) {
      van = bench::time_best(
          [&] { (void)pricing::bsm::american_put_vanilla_parallel(spec, T); },
          sweep.reps);
    }
    bench::print_row(T, {fft, van});
  }
  return 0;
}
