// Figure 5(c): parallel running time of American put pricing under the
// Black-Scholes-Merton explicit FDM — fft-bsm vs vanilla-bsm, plus (PR 5)
// the pre-arena heap memory plane as fft-bsm-heapmem and the in-process
// mem-x ratio (see fig5a's header comment for the rationale). Also dumps
// BENCH_bsm.json for the CI bench guard.

#include <string>
#include <vector>

#include "amopt/pricing/bsm_fdm.hpp"
#include "bench_common.hpp"

int main() {
  using namespace amopt;
  const auto spec = pricing::paper_spec();
  const auto sweep = bench::sweep_from_env(1 << 11, 1 << 16, 1 << 13);

  core::SolverConfig heap_cfg;
  heap_cfg.memory = core::MemoryPlane::heap;

  const std::vector<std::string> series{"fft-bsm", "fft-bsm-heapmem", "mem-x",
                                        "vanilla-bsm"};
  bench::print_header("Figure 5(c): BSM American put, parallel running time",
                      "seconds", series);
  std::vector<std::int64_t> ts;
  std::vector<std::vector<double>> rows;
  for (std::int64_t T = sweep.min_t; T <= sweep.max_t; T *= 2) {
    const double fft = bench::time_best(
        [&] { (void)pricing::bsm::american_put_fft(spec, T); }, sweep.reps);
    const double fft_heap = bench::time_best(
        [&] { (void)pricing::bsm::american_put_fft(spec, T, heap_cfg); },
        sweep.reps);
    const double memx = fft > 0.0 ? fft_heap / fft : 0.0;
    double van = -1.0;
    if (T <= sweep.slow_max_t) {
      van = bench::time_best(
          [&] { (void)pricing::bsm::american_put_vanilla_parallel(spec, T); },
          sweep.reps);
    }
    bench::print_row(T, {fft, fft_heap, memx, van});
    ts.push_back(T);
    rows.push_back({fft, fft_heap, memx, van});
  }
  const std::string json = env_string("AMOPT_BENCH_JSON", "BENCH_bsm.json");
  if (json != "none")
    bench::write_json(json, "fig5c_bsm_runtime", "seconds", series, ts, rows);
  return 0;
}
