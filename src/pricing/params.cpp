#include "amopt/pricing/params.hpp"

#include <cmath>
#include <stdexcept>

#include "amopt/common/assert.hpp"

namespace amopt::pricing {

OptionSpec paper_spec() {
  OptionSpec s;
  s.S = 127.62;
  s.K = 130.0;
  s.R = 0.00163;
  s.V = 0.2;
  s.Y = 0.0163;
  s.expiry_years = 1.0;  // E = 252 trading days
  return s;
}

BopmParams derive_bopm(const OptionSpec& spec, std::int64_t T) {
  AMOPT_EXPECTS(T >= 0);
  AMOPT_EXPECTS(spec.V > 0.0 && spec.expiry_years > 0.0 && spec.S > 0.0 &&
                spec.K > 0.0);
  BopmParams p;
  p.T = T;
  if (T == 0) return p;
  p.dt = spec.expiry_years / static_cast<double>(T);
  p.u = std::exp(spec.V * std::sqrt(p.dt));
  p.d = 1.0 / p.u;
  p.log_u = spec.V * std::sqrt(p.dt);
  p.p = (std::exp((spec.R - spec.Y) * p.dt) - p.d) / (p.u - p.d);
  if (!(p.p > 0.0 && p.p < 1.0))
    throw std::invalid_argument(
        "BOPM: risk-neutral probability outside (0,1); increase T or reduce "
        "|R-Y|*dt relative to V*sqrt(dt)");
  const double m = std::exp(-spec.R * p.dt);
  p.s0 = m * (1.0 - p.p);  // down child (i+1, j)
  p.s1 = m * p.p;          // up child (i+1, j+1)
  return p;
}

TopmParams derive_topm(const OptionSpec& spec, std::int64_t T) {
  AMOPT_EXPECTS(T >= 0);
  AMOPT_EXPECTS(spec.V > 0.0 && spec.expiry_years > 0.0 && spec.S > 0.0 &&
                spec.K > 0.0);
  TopmParams p;
  p.T = T;
  if (T == 0) return p;
  p.dt = spec.expiry_years / static_cast<double>(T);
  p.log_u = spec.V * std::sqrt(2.0 * p.dt);
  p.u = std::exp(p.log_u);
  p.d = 1.0 / p.u;
  const double sqrt_u = std::exp(0.5 * p.log_u);
  const double sqrt_d = 1.0 / sqrt_u;
  const double drift = std::exp((spec.R - spec.Y) * p.dt / 2.0);
  const double den = sqrt_u - sqrt_d;
  p.pu = ((drift - sqrt_d) / den) * ((drift - sqrt_d) / den);
  p.pd = ((sqrt_u - drift) / den) * ((sqrt_u - drift) / den);
  p.po = 1.0 - p.pu - p.pd;
  if (!(p.pu > 0.0 && p.pd > 0.0 && p.po > 0.0))
    throw std::invalid_argument(
        "TOPM: transition probabilities outside (0,1); adjust T");
  const double m = std::exp(-spec.R * p.dt);
  p.s0 = m * p.pd;  // down child (i+1, j)
  p.s1 = m * p.po;  // flat child (i+1, j+1)
  p.s2 = m * p.pu;  // up child (i+1, j+2)
  return p;
}

BsmParams derive_bsm(const OptionSpec& spec, std::int64_t T) {
  AMOPT_EXPECTS(T >= 1);
  AMOPT_EXPECTS(spec.V > 0.0 && spec.expiry_years > 0.0 && spec.S > 0.0 &&
                spec.K > 0.0);
  BsmParams p;
  p.T = T;
  p.omega = 2.0 * spec.R / (spec.V * spec.V);
  p.omega_drift = 2.0 * (spec.R - spec.Y) / (spec.V * spec.V);
  p.tau_max = 0.5 * spec.V * spec.V * spec.expiry_years;
  p.dtau = p.tau_max / static_cast<double>(T);
  // lambda = dtau/ds^2 <= 0.4 keeps the scheme monotone with slack for the
  // first-order term; shrink lambda further if |omega_drift-1|*ds/2 would
  // push a tap negative (only possible for extreme rates).
  double lambda = 0.4;
  double ds = std::sqrt(p.dtau / lambda);
  const double drift_ratio = 0.5 * std::abs(p.omega_drift - 1.0) * ds;
  if (drift_ratio >= 1.0) {
    ds = 1.0 / std::abs(p.omega_drift - 1.0);  // forces |mu| <= lambda/2
    lambda = p.dtau / (ds * ds);
  }
  p.lambda = lambda;
  p.ds = ds;
  const double mu = 0.5 * (p.omega_drift - 1.0) * p.dtau / p.ds;
  p.a = lambda + mu;               // tap on v[k+1]
  p.b = lambda - mu;               // tap on v[k-1]
  p.c = 1.0 - p.omega * p.dtau - 2.0 * lambda;  // tap on v[k]
  if (!(p.a >= 0.0 && p.b >= 0.0 && p.c >= 0.0))
    throw std::invalid_argument(
        "BSM FDM: non-monotone scheme (a,b,c must be >= 0); increase T");
  p.s_target = std::log(spec.S / spec.K);
  return p;
}

PowerTable::PowerTable(double log_u, std::int64_t T, std::int64_t pad)
    : pow_(static_cast<std::size_t>(2 * (T + pad) + 1)), off_(T + pad) {
  AMOPT_EXPECTS(T >= 0 && pad >= 0);
  // Filling by repeated multiplication drifts (O(T*eps) relative error at
  // the ends); exp(e*log_u) keeps every entry at full precision.
  for (std::int64_t e = -off_; e <= off_; ++e)
    pow_[static_cast<std::size_t>(e + off_)] =
        std::exp(static_cast<double>(e) * log_u);
}

}  // namespace amopt::pricing
