#include "amopt/pricing/greeks.hpp"

#include <cmath>

#include "amopt/common/assert.hpp"
#include "amopt/pricing/bopm.hpp"

namespace amopt::pricing {

namespace {

/// Relative bump for the finite-difference Greeks; h ~ cbrt(eps) balances
/// truncation against cancellation for central differences.
constexpr double kBump = 6e-5;

}  // namespace

Greeks american_call_greeks_bopm(const OptionSpec& spec, std::int64_t T,
                                 core::SolverConfig cfg,
                                 const RepriceFn& reprice,
                                 stencil::KernelCache* kernels) {
  AMOPT_EXPECTS(T >= 2);
  const auto price = [&](const OptionSpec& s) {
    return reprice ? reprice(s) : bopm::american_call_fft(s, T, cfg);
  };
  const bopm::LowNodes n = bopm::american_call_nodes_fft(spec, T, cfg, kernels);
  const double u = n.prm.u, d = n.prm.d, dt = n.prm.dt;
  Greeks g;
  g.price = n.g00;
  g.delta = (n.g11 - n.g10) / (spec.S * (u - d));
  const double h_up = spec.S * (u * u - 1.0);
  const double h_dn = spec.S * (1.0 - d * d);
  g.gamma = ((n.g22 - n.g21) / h_up - (n.g21 - n.g20) / h_dn) /
            (0.5 * spec.S * (u * u - d * d));
  // Node (2,1) carries the same asset price as the root, two steps later.
  g.theta = (n.g21 - n.g00) / (2.0 * dt);

  OptionSpec up_v = spec, dn_v = spec;
  up_v.V = spec.V * (1.0 + kBump);
  dn_v.V = spec.V * (1.0 - kBump);
  g.vega = (price(up_v) - price(dn_v)) / (2.0 * kBump * spec.V);

  const double r_step = std::max(std::abs(spec.R) * kBump, 1e-7);
  OptionSpec up_r = spec, dn_r = spec;
  up_r.R = spec.R + r_step;
  dn_r.R = spec.R - r_step;
  g.rho = (price(up_r) - price(dn_r)) / (2.0 * r_step);
  return g;
}

Greeks american_call_greeks_bopm(const OptionSpec& spec, std::int64_t T,
                                 core::SolverConfig cfg) {
  return american_call_greeks_bopm(spec, T, cfg, {}, nullptr);
}

Greeks american_put_greeks_bopm(const OptionSpec& spec, std::int64_t T,
                                core::SolverConfig cfg,
                                const RepriceFn& reprice) {
  AMOPT_EXPECTS(T >= 2);
  const auto price = [&](const OptionSpec& s) {
    return reprice ? reprice(s) : bopm::american_put_fft(s, T, cfg);
  };
  Greeks g;
  g.price = price(spec);

  // Second derivatives need a wider stencil than first derivatives to beat
  // cancellation noise (price is accurate to ~1e-10 relative).
  const double s_step = spec.S * 5e-3;
  OptionSpec up_s = spec, dn_s = spec;
  up_s.S = spec.S + s_step;
  dn_s.S = spec.S - s_step;
  const double p_up = price(up_s), p_dn = price(dn_s);
  g.delta = (p_up - p_dn) / (2.0 * s_step);
  g.gamma = (p_up - 2.0 * g.price + p_dn) / (s_step * s_step);

  const double t_step = spec.expiry_years * kBump;
  OptionSpec shorter = spec;
  shorter.expiry_years = spec.expiry_years - t_step;
  g.theta = (price(shorter) - g.price) / t_step;  // decay as time passes

  OptionSpec up_v = spec, dn_v = spec;
  up_v.V = spec.V * (1.0 + kBump);
  dn_v.V = spec.V * (1.0 - kBump);
  g.vega = (price(up_v) - price(dn_v)) / (2.0 * kBump * spec.V);

  const double r_step = std::max(std::abs(spec.R) * kBump, 1e-7);
  OptionSpec up_r = spec, dn_r = spec;
  up_r.R = spec.R + r_step;
  dn_r.R = spec.R - r_step;
  g.rho = (price(up_r) - price(dn_r)) / (2.0 * r_step);
  return g;
}

Greeks american_put_greeks_bopm(const OptionSpec& spec, std::int64_t T,
                                core::SolverConfig cfg) {
  return american_put_greeks_bopm(spec, T, cfg, {});
}

}  // namespace amopt::pricing
