#include "amopt/pricing/implied_vol.hpp"

#include <cmath>
#include <functional>

#include "amopt/common/assert.hpp"
#include "amopt/pricing/bopm.hpp"

namespace amopt::pricing {

namespace detail {

ImpliedVolResult invert_implied_vol(
    const std::function<double(double)>& price_of_vol, double target,
    const ImpliedVolConfig& cfg) {
  ImpliedVolResult res;
  double lo = cfg.vol_lo, hi = cfg.vol_hi;
  double f_lo = price_of_vol(lo) - target;
  double f_hi = price_of_vol(hi) - target;
  res.iterations = 2;
  if (f_lo > 0.0 || f_hi < 0.0) return res;  // target out of attainable range

  double v = 0.5 * (lo + hi);
  double f_prev = f_lo, v_prev = lo;
  for (; res.iterations < cfg.max_iterations; ++res.iterations) {
    const double f = price_of_vol(v) - target;
    if (std::abs(f) <= cfg.tol) {
      res.vol = v;
      res.converged = true;
      return res;
    }
    (f < 0.0 ? lo : hi) = v;
    (f < 0.0 ? f_lo : f_hi) = f;
    // Secant proposal; fall back to bisection when degenerate or outside.
    double next = v - f * (v - v_prev) / (f - f_prev);
    if (!(next > lo && next < hi) || !std::isfinite(next))
      next = 0.5 * (lo + hi);
    v_prev = v;
    f_prev = f;
    v = next;
    if (hi - lo < 1e-12) break;
  }
  res.vol = v;
  res.converged = std::abs(price_of_vol(v) - target) <= 10 * cfg.tol;
  return res;
}

void clamp_vol_bracket(const OptionSpec& spec, ImpliedVolConfig& cfg) {
  const double dt = spec.expiry_years / static_cast<double>(cfg.T);
  const double floor_vol = 2.0 * std::abs(spec.R - spec.Y) * std::sqrt(dt);
  cfg.vol_lo = std::max(cfg.vol_lo, floor_vol);
}

ImpliedVolResult invert_implied_vol_warm(
    const std::function<double(double)>& price_of_vol, double target,
    const ImpliedVolConfig& cfg, double v0, double p0, double v1, double p1) {
  ImpliedVolResult res;
  double lo = cfg.vol_lo, hi = cfg.vol_hi;
  double va = v1, fa = p1 - target;
  double vb = v0, fb = p0 - target;
  // Price is monotone increasing in vol, so every genuine sample tightens
  // the bracket the root must lie in (if it is attainable at all).
  const auto tighten = [&](double v, double f) {
    if (f < 0.0) {
      if (v > lo) lo = v;
    } else if (v < hi) {
      hi = v;
    }
  };
  tighten(va, fa);
  tighten(vb, fb);
  if (std::abs(fb) <= cfg.tol) {
    // The quote has not moved beyond tolerance: zero evaluations.
    res.vol = vb;
    res.converged = true;
    return res;
  }

  const int warm_budget = std::min(8, cfg.max_iterations);
  while (res.iterations < warm_budget) {
    double next = fb != fa ? vb - fb * (vb - va) / (fb - fa) : 0.5 * (lo + hi);
    if (!(next > lo && next < hi) || !std::isfinite(next))
      next = 0.5 * (lo + hi);
    const double f = price_of_vol(next) - target;
    ++res.iterations;  // counted on every path, so `remaining` stays exact
    va = vb;
    fa = fb;
    vb = next;
    fb = f;
    tighten(next, f);
    if (std::abs(f) <= cfg.tol) {
      res.vol = next;
      res.converged = true;
      return res;
    }
    if (hi - lo < 1e-12) break;
  }

  // Hand the REMAINING iteration budget to the cold bracketed path (total
  // evaluations stay within max_iterations, like the free functions); with
  // no budget left, settle for the usual relaxed final acceptance.
  const int remaining = cfg.max_iterations - res.iterations;
  if (remaining >= 3) {
    ImpliedVolConfig rest = cfg;
    // Keep what the genuine evaluations taught us about the bracket
    // (unless rounding noise inverted it, then start over in full).
    if (lo < hi) {
      rest.vol_lo = lo;
      rest.vol_hi = hi;
    }
    rest.max_iterations = remaining;
    ImpliedVolResult cold = invert_implied_vol(price_of_vol, target, rest);
    cold.iterations += res.iterations;
    return cold;
  }
  res.vol = vb;
  res.converged = std::abs(fb) <= 10 * cfg.tol;
  return res;
}

}  // namespace detail

ImpliedVolResult american_call_implied_vol(const OptionSpec& spec,
                                           double target_price,
                                           ImpliedVolConfig cfg) {
  AMOPT_EXPECTS(cfg.vol_lo > 0.0 && cfg.vol_hi > cfg.vol_lo);
  detail::clamp_vol_bracket(spec, cfg);
  return detail::invert_implied_vol(
      [&](double v) {
        OptionSpec s = spec;
        s.V = v;
        return bopm::american_call_fft(s, cfg.T);
      },
      target_price, cfg);
}

ImpliedVolResult american_put_implied_vol(const OptionSpec& spec,
                                          double target_price,
                                          ImpliedVolConfig cfg) {
  AMOPT_EXPECTS(cfg.vol_lo > 0.0 && cfg.vol_hi > cfg.vol_lo);
  detail::clamp_vol_bracket(spec, cfg);
  return detail::invert_implied_vol(
      [&](double v) {
        OptionSpec s = spec;
        s.V = v;
        return bopm::american_put_fft_direct(s, cfg.T);
      },
      target_price, cfg);
}

}  // namespace amopt::pricing
