#include "amopt/pricing/implied_vol.hpp"

#include <cmath>
#include <functional>

#include "amopt/common/assert.hpp"
#include "amopt/pricing/bopm.hpp"

namespace amopt::pricing {

namespace {

/// Safeguarded Newton: secant steps clipped to a maintained bracket, with
/// bisection whenever the step leaves it. Price is monotone increasing in
/// volatility (vega > 0), so the bracket logic is straightforward.
ImpliedVolResult invert(const std::function<double(double)>& price_of_vol,
                        double target, const ImpliedVolConfig& cfg) {
  ImpliedVolResult res;
  double lo = cfg.vol_lo, hi = cfg.vol_hi;
  double f_lo = price_of_vol(lo) - target;
  double f_hi = price_of_vol(hi) - target;
  res.iterations = 2;
  if (f_lo > 0.0 || f_hi < 0.0) return res;  // target out of attainable range

  double v = 0.5 * (lo + hi);
  double f_prev = f_lo, v_prev = lo;
  for (; res.iterations < cfg.max_iterations; ++res.iterations) {
    const double f = price_of_vol(v) - target;
    if (std::abs(f) <= cfg.tol) {
      res.vol = v;
      res.converged = true;
      return res;
    }
    (f < 0.0 ? lo : hi) = v;
    (f < 0.0 ? f_lo : f_hi) = f;
    // Secant proposal; fall back to bisection when degenerate or outside.
    double next = v - f * (v - v_prev) / (f - f_prev);
    if (!(next > lo && next < hi) || !std::isfinite(next))
      next = 0.5 * (lo + hi);
    v_prev = v;
    f_prev = f;
    v = next;
    if (hi - lo < 1e-12) break;
  }
  res.vol = v;
  res.converged = std::abs(price_of_vol(v) - target) <= 10 * cfg.tol;
  return res;
}

}  // namespace

namespace {

/// The CRR lattice needs V*sqrt(dt) > |R-Y|*dt for p in (0,1); lift the
/// lower bracket above that validity floor.
void clamp_bracket(const OptionSpec& spec, ImpliedVolConfig& cfg) {
  const double dt = spec.expiry_years / static_cast<double>(cfg.T);
  const double floor_vol = 2.0 * std::abs(spec.R - spec.Y) * std::sqrt(dt);
  cfg.vol_lo = std::max(cfg.vol_lo, floor_vol);
}

}  // namespace

ImpliedVolResult american_call_implied_vol(const OptionSpec& spec,
                                           double target_price,
                                           ImpliedVolConfig cfg) {
  AMOPT_EXPECTS(cfg.vol_lo > 0.0 && cfg.vol_hi > cfg.vol_lo);
  clamp_bracket(spec, cfg);
  return invert(
      [&](double v) {
        OptionSpec s = spec;
        s.V = v;
        return bopm::american_call_fft(s, cfg.T);
      },
      target_price, cfg);
}

ImpliedVolResult american_put_implied_vol(const OptionSpec& spec,
                                          double target_price,
                                          ImpliedVolConfig cfg) {
  AMOPT_EXPECTS(cfg.vol_lo > 0.0 && cfg.vol_hi > cfg.vol_lo);
  clamp_bracket(spec, cfg);
  return invert(
      [&](double v) {
        OptionSpec s = spec;
        s.V = v;
        return bopm::american_put_fft_direct(s, cfg.T);
      },
      target_price, cfg);
}

}  // namespace amopt::pricing
