#include "amopt/pricing/black_scholes.hpp"

#include <cmath>
#include <numbers>

#include "amopt/common/assert.hpp"

namespace amopt::pricing::bs {

double norm_cdf(double x) { return 0.5 * std::erfc(-x / std::numbers::sqrt2); }

namespace {
struct D12 {
  double d1, d2;
};
[[nodiscard]] D12 d_terms(const OptionSpec& s) {
  const double tau = s.expiry_years;
  const double vs = s.V * std::sqrt(tau);
  const double d1 =
      (std::log(s.S / s.K) + (s.R - s.Y + 0.5 * s.V * s.V) * tau) / vs;
  return {d1, d1 - vs};
}
}  // namespace

double european_call(const OptionSpec& s) {
  AMOPT_EXPECTS(s.S > 0 && s.K > 0 && s.V > 0 && s.expiry_years > 0);
  const auto [d1, d2] = d_terms(s);
  return s.S * std::exp(-s.Y * s.expiry_years) * norm_cdf(d1) -
         s.K * std::exp(-s.R * s.expiry_years) * norm_cdf(d2);
}

double european_put(const OptionSpec& s) {
  AMOPT_EXPECTS(s.S > 0 && s.K > 0 && s.V > 0 && s.expiry_years > 0);
  const auto [d1, d2] = d_terms(s);
  return s.K * std::exp(-s.R * s.expiry_years) * norm_cdf(-d2) -
         s.S * std::exp(-s.Y * s.expiry_years) * norm_cdf(-d1);
}

double perpetual_put_boundary(double K, double R, double V) {
  AMOPT_EXPECTS(K > 0 && R > 0 && V > 0);
  const double gamma = 2.0 * R / (V * V);
  return gamma * K / (1.0 + gamma);
}

double perpetual_put(double S, double K, double R, double V) {
  AMOPT_EXPECTS(S > 0);
  const double b = perpetual_put_boundary(K, R, V);
  if (S <= b) return K - S;
  const double gamma = 2.0 * R / (V * V);
  return (K - b) * std::pow(S / b, -gamma);
}

}  // namespace amopt::pricing::bs
