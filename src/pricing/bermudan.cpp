#include "amopt/pricing/bermudan.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "amopt/common/assert.hpp"
#include "amopt/fft/convolution.hpp"
#include "amopt/pricing/params.hpp"
#include "amopt/stencil/kernel_cache.hpp"

namespace amopt::pricing::bermudan {

namespace {

[[nodiscard]] double payoff_of(Right right, double S, double K, double upow) {
  return right == Right::call ? S * upow - K : K - S * upow;
}

void check_steps(std::span<const std::int64_t> steps, std::int64_t T) {
  std::int64_t prev = -1;
  for (const std::int64_t s : steps) {
    AMOPT_EXPECTS(s > prev && s >= 0 && s <= T);
    prev = s;
  }
}

}  // namespace

double price_fft(const OptionSpec& spec, std::int64_t T,
                 std::span<const std::int64_t> exercise_steps, Right right) {
  AMOPT_EXPECTS(T >= 0);
  check_steps(exercise_steps, T);
  const BopmParams prm = derive_bopm(spec, std::max<std::int64_t>(T, 1));
  const PowerTable up(prm.log_u, std::max<std::int64_t>(T, 1));
  if (T == 0) return std::max(0.0, payoff_of(right, spec.S, spec.K, up(0)));

  stencil::KernelCache kernels({{prm.s0, prm.s1}, 0});

  // Full row at expiry (no red/green compression: between dates everything
  // is linear and we keep all T+1 values).
  std::vector<double> row(static_cast<std::size_t>(T + 1));
  for (std::int64_t j = 0; j <= T; ++j)
    row[static_cast<std::size_t>(j)] =
        std::max(0.0, payoff_of(right, spec.S, spec.K, up(2 * j - T)));

  // Exercise dates strictly below T, processed downward.
  std::vector<std::int64_t> dates(exercise_steps.begin(),
                                  exercise_steps.end());
  std::erase_if(dates, [&](std::int64_t s) { return s >= T; });
  std::sort(dates.rbegin(), dates.rend());

  std::int64_t i = T;
  const auto evolve_to = [&](std::int64_t target) {
    const std::int64_t h = i - target;
    if (h == 0) return;
    std::vector<double> next(static_cast<std::size_t>(target + 1));
    const std::span<const double> kernel =
        kernels.power(static_cast<std::uint64_t>(h));
    // Equal inter-date gaps re-request the same height; consume the cached
    // kernel spectrum on the FFT path like the trapezoid solvers do.
    if (conv::correlate_prefers_fft(next.size(), kernel.size(), {})) {
      const auto spec = kernels.power_spectrum(
          static_cast<std::uint64_t>(h),
          conv::correlate_fft_size(next.size(), kernel.size()));
      conv::correlate_valid(row, *spec, next, conv::thread_workspace());
    } else {
      conv::correlate_valid(row, kernel, next);
    }
    row = std::move(next);
    i = target;
  };
  for (const std::int64_t date : dates) {
    evolve_to(date);
    for (std::int64_t j = 0; j <= i; ++j) {
      const double ex = payoff_of(right, spec.S, spec.K, up(2 * j - i));
      row[static_cast<std::size_t>(j)] =
          std::max(row[static_cast<std::size_t>(j)], ex);
    }
  }
  evolve_to(0);
  return row[0];
}

double price_vanilla(const OptionSpec& spec, std::int64_t T,
                     std::span<const std::int64_t> exercise_steps,
                     Right right) {
  AMOPT_EXPECTS(T >= 0);
  check_steps(exercise_steps, T);
  const BopmParams prm = derive_bopm(spec, std::max<std::int64_t>(T, 1));
  const PowerTable up(prm.log_u, std::max<std::int64_t>(T, 1));
  if (T == 0) return std::max(0.0, payoff_of(right, spec.S, spec.K, up(0)));

  std::vector<bool> exercisable(static_cast<std::size_t>(T + 1), false);
  for (const std::int64_t s : exercise_steps)
    if (s < T) exercisable[static_cast<std::size_t>(s)] = true;

  std::vector<double> row(static_cast<std::size_t>(T + 1));
  for (std::int64_t j = 0; j <= T; ++j)
    row[static_cast<std::size_t>(j)] =
        std::max(0.0, payoff_of(right, spec.S, spec.K, up(2 * j - T)));
  for (std::int64_t i = T - 1; i >= 0; --i) {
    const bool ex = exercisable[static_cast<std::size_t>(i)];
    for (std::int64_t j = 0; j <= i; ++j) {
      double v = prm.s0 * row[static_cast<std::size_t>(j)] +
                 prm.s1 * row[static_cast<std::size_t>(j + 1)];
      if (ex)
        v = std::max(v, payoff_of(right, spec.S, spec.K, up(2 * j - i)));
      row[static_cast<std::size_t>(j)] = v;
    }
  }
  return row[0];
}

}  // namespace amopt::pricing::bermudan
