#include "amopt/pricing/api.hpp"

#include <exception>
#include <memory>
#include <stdexcept>
#include <string>
#include <utility>

#include "amopt/baselines/baselines.hpp"
#include "amopt/pricing/bopm.hpp"
#include "amopt/pricing/bsm_fdm.hpp"
#include "amopt/pricing/topm.hpp"
#include "amopt/stencil/kernel_cache.hpp"

namespace amopt::pricing {

std::string_view to_string(Model m) {
  switch (m) {
    case Model::bopm: return "bopm";
    case Model::topm: return "topm";
    case Model::bsm: return "bsm";
  }
  return "?";
}
std::string_view to_string(Right r) {
  return r == Right::call ? "call" : "put";
}
std::string_view to_string(Style s) {
  return s == Style::american ? "american" : "european";
}
std::string_view to_string(Engine e) {
  switch (e) {
    case Engine::fft: return "fft";
    case Engine::vanilla: return "vanilla";
    case Engine::vanilla_parallel: return "vanilla-parallel";
    case Engine::tiled: return "tiled";
    case Engine::cache_oblivious: return "cache-oblivious";
    case Engine::quantlib: return "quantlib";
  }
  return "?";
}

namespace {

[[noreturn]] void unsupported(Model m, Right r, Style s, Engine e) {
  throw std::invalid_argument(
      std::string("amopt: unsupported combination ") +
      std::string(to_string(m)) + "/" + std::string(to_string(r)) + "/" +
      std::string(to_string(s)) + "/" + std::string(to_string(e)));
}

}  // namespace

double price(const OptionSpec& spec, std::int64_t T, Model model, Right right,
             Style style, Engine engine, core::SolverConfig cfg) {
  if (style == Style::european) {
    if (model == Model::bopm && right == Right::call)
      return engine == Engine::fft ? bopm::european_call_fft(spec, T)
                                   : bopm::european_call_vanilla(spec, T);
    if (model == Model::bopm && right == Right::put)
      return engine == Engine::fft ? bopm::european_put_fft(spec, T)
                                   : bopm::european_put_vanilla(spec, T);
    if (model == Model::topm && right == Right::call)
      return engine == Engine::fft ? topm::european_call_fft(spec, T)
                                   : topm::european_call_vanilla(spec, T);
    if (model == Model::bsm && right == Right::put)
      return bsm::european_put_fdm(spec, T);
    unsupported(model, right, style, engine);
  }

  switch (model) {
    case Model::bopm:
      if (right == Right::call) {
        switch (engine) {
          case Engine::fft: return bopm::american_call_fft(spec, T, cfg);
          case Engine::vanilla: return bopm::american_call_vanilla(spec, T);
          case Engine::vanilla_parallel:
            return bopm::american_call_vanilla_parallel(spec, T);
          case Engine::tiled:
            return baselines::zubair_american_call(spec, T);
          case Engine::cache_oblivious:
            return baselines::cache_oblivious_american_call(spec, T);
          case Engine::quantlib:
            return baselines::quantlib_style_american_call(spec, T);
        }
      } else {
        switch (engine) {
          case Engine::fft: return bopm::american_put_fft_direct(spec, T, cfg);
          case Engine::vanilla: return bopm::american_put_vanilla(spec, T);
          default: unsupported(model, right, style, engine);
        }
      }
      break;
    case Model::topm:
      if (right == Right::call) {
        switch (engine) {
          case Engine::fft: return topm::american_call_fft(spec, T, cfg);
          case Engine::vanilla: return topm::american_call_vanilla(spec, T);
          case Engine::vanilla_parallel:
            return topm::american_call_vanilla_parallel(spec, T);
          default: unsupported(model, right, style, engine);
        }
      } else {
        switch (engine) {
          case Engine::fft: return topm::american_put_fft(spec, T, cfg);
          case Engine::vanilla: return topm::american_put_vanilla(spec, T);
          default: unsupported(model, right, style, engine);
        }
      }
      break;
    case Model::bsm:
      if (right == Right::put) {
        switch (engine) {
          case Engine::fft: return bsm::american_put_fft(spec, T, cfg);
          case Engine::vanilla: return bsm::american_put_vanilla(spec, T);
          case Engine::vanilla_parallel:
            return bsm::american_put_vanilla_parallel(spec, T);
          default: unsupported(model, right, style, engine);
        }
      }
      unsupported(model, right, style, engine);
  }
  unsupported(model, right, style, engine);
}

namespace {

/// Taps of the kernel cache an item of a (model, right, style, fft) chain
/// can share; empty when the combination has no cache-aware path. Must
/// mirror the stencils the pricers build internally (the mirrored put swaps
/// its taps).
[[nodiscard]] std::vector<double> shared_cache_taps(const OptionSpec& spec,
                                                    std::int64_t T,
                                                    Model model, Right right,
                                                    Style style,
                                                    Engine engine) {
  if (engine != Engine::fft || T <= 0) return {};
  switch (model) {
    case Model::bopm: {
      const BopmParams prm = derive_bopm(spec, T);
      if (right == Right::put && style == Style::american)
        return {prm.s1, prm.s0};  // mirrored lattice
      return {prm.s0, prm.s1};
    }
    case Model::topm: {
      if (right != Right::call) return {};
      const TopmParams prm = derive_topm(spec, T);
      return {prm.s0, prm.s1, prm.s2};
    }
    case Model::bsm:
      return {};  // FDM solver has no lattice kernel cache (yet)
  }
  return {};
}

/// Scalar dispatch with an optional shared kernel cache. Combinations
/// without a cache-aware implementation fall back to price().
[[nodiscard]] double price_one(const OptionSpec& spec, std::int64_t T,
                               Model model, Right right, Style style,
                               Engine engine, core::SolverConfig cfg,
                               stencil::KernelCache* kernels) {
  if (kernels == nullptr)
    return price(spec, T, model, right, style, engine, cfg);
  if (model == Model::bopm) {
    if (style == Style::european) {
      return right == Right::call ? bopm::european_call_fft(spec, T, kernels)
                                  : bopm::european_put_fft(spec, T, kernels);
    }
    return right == Right::call
               ? bopm::american_call_fft(spec, T, cfg, kernels)
               : bopm::american_put_fft_direct(spec, T, cfg, kernels);
  }
  if (model == Model::topm && right == Right::call) {
    return style == Style::european
               ? topm::european_call_fft(spec, T, kernels)
               : topm::american_call_fft(spec, T, cfg, kernels);
  }
  return price(spec, T, model, right, style, engine, cfg);
}

}  // namespace

std::vector<double> price_batch(std::span<const OptionSpec> chain,
                                std::int64_t T, Model model, Right right,
                                Style style, Engine engine,
                                core::SolverConfig cfg) {
  std::vector<double> out(chain.size(), 0.0);
  if (chain.empty()) return out;

  // Group items by the tap vector their solver would build; one kernel
  // cache per group. A plain strike ladder collapses to a single group.
  struct Group {
    std::vector<double> taps;
    std::unique_ptr<stencil::KernelCache> cache;
  };
  std::vector<Group> groups;
  std::vector<stencil::KernelCache*> cache_of(chain.size(), nullptr);
  for (std::size_t i = 0; i < chain.size(); ++i) {
    std::vector<double> taps =
        shared_cache_taps(chain[i], T, model, right, style, engine);
    if (taps.empty()) continue;
    Group* found = nullptr;
    for (Group& g : groups) {
      if (g.taps == taps) {
        found = &g;
        break;
      }
    }
    if (found == nullptr) {
      Group g;
      g.taps = taps;
      g.cache = std::make_unique<stencil::KernelCache>(
          stencil::LinearStencil{std::move(taps), 0});
      groups.push_back(std::move(g));
      found = &groups.back();
    }
    cache_of[i] = found->cache.get();
  }

  // Parallelize across options; the inner solvers see the enclosing region
  // and stay serial, so one option never oversubscribes the machine.
  std::exception_ptr error;
#pragma omp parallel for schedule(dynamic, 1)
  for (std::ptrdiff_t i = 0; i < static_cast<std::ptrdiff_t>(chain.size());
       ++i) {
    try {
      out[static_cast<std::size_t>(i)] =
          price_one(chain[static_cast<std::size_t>(i)], T, model, right,
                    style, engine, cfg, cache_of[static_cast<std::size_t>(i)]);
    } catch (...) {
#pragma omp critical(amopt_price_batch_error)
      if (!error) error = std::current_exception();
    }
  }
  if (error) std::rethrow_exception(error);
  return out;
}

}  // namespace amopt::pricing
