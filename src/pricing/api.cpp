#include "amopt/pricing/api.hpp"

#include <stdexcept>
#include <string>

#include "amopt/baselines/baselines.hpp"
#include "amopt/pricing/bopm.hpp"
#include "amopt/pricing/bsm_fdm.hpp"
#include "amopt/pricing/topm.hpp"

namespace amopt::pricing {

std::string_view to_string(Model m) {
  switch (m) {
    case Model::bopm: return "bopm";
    case Model::topm: return "topm";
    case Model::bsm: return "bsm";
  }
  return "?";
}
std::string_view to_string(Right r) {
  return r == Right::call ? "call" : "put";
}
std::string_view to_string(Style s) {
  return s == Style::american ? "american" : "european";
}
std::string_view to_string(Engine e) {
  switch (e) {
    case Engine::fft: return "fft";
    case Engine::vanilla: return "vanilla";
    case Engine::vanilla_parallel: return "vanilla-parallel";
    case Engine::tiled: return "tiled";
    case Engine::cache_oblivious: return "cache-oblivious";
    case Engine::quantlib: return "quantlib";
  }
  return "?";
}

namespace {

[[noreturn]] void unsupported(Model m, Right r, Style s, Engine e) {
  throw std::invalid_argument(
      std::string("amopt: unsupported combination ") +
      std::string(to_string(m)) + "/" + std::string(to_string(r)) + "/" +
      std::string(to_string(s)) + "/" + std::string(to_string(e)));
}

}  // namespace

double price(const OptionSpec& spec, std::int64_t T, Model model, Right right,
             Style style, Engine engine, core::SolverConfig cfg) {
  if (style == Style::european) {
    if (model == Model::bopm && right == Right::call)
      return engine == Engine::fft ? bopm::european_call_fft(spec, T)
                                   : bopm::european_call_vanilla(spec, T);
    if (model == Model::bopm && right == Right::put)
      return engine == Engine::fft ? bopm::european_put_fft(spec, T)
                                   : bopm::european_put_vanilla(spec, T);
    if (model == Model::topm && right == Right::call)
      return engine == Engine::fft ? topm::european_call_fft(spec, T)
                                   : topm::european_call_vanilla(spec, T);
    if (model == Model::bsm && right == Right::put)
      return bsm::european_put_fdm(spec, T);
    unsupported(model, right, style, engine);
  }

  switch (model) {
    case Model::bopm:
      if (right == Right::call) {
        switch (engine) {
          case Engine::fft: return bopm::american_call_fft(spec, T, cfg);
          case Engine::vanilla: return bopm::american_call_vanilla(spec, T);
          case Engine::vanilla_parallel:
            return bopm::american_call_vanilla_parallel(spec, T);
          case Engine::tiled:
            return baselines::zubair_american_call(spec, T);
          case Engine::cache_oblivious:
            return baselines::cache_oblivious_american_call(spec, T);
          case Engine::quantlib:
            return baselines::quantlib_style_american_call(spec, T);
        }
      } else {
        switch (engine) {
          case Engine::fft: return bopm::american_put_fft_direct(spec, T, cfg);
          case Engine::vanilla: return bopm::american_put_vanilla(spec, T);
          default: unsupported(model, right, style, engine);
        }
      }
      break;
    case Model::topm:
      if (right == Right::call) {
        switch (engine) {
          case Engine::fft: return topm::american_call_fft(spec, T, cfg);
          case Engine::vanilla: return topm::american_call_vanilla(spec, T);
          case Engine::vanilla_parallel:
            return topm::american_call_vanilla_parallel(spec, T);
          default: unsupported(model, right, style, engine);
        }
      } else {
        switch (engine) {
          case Engine::fft: return topm::american_put_fft(spec, T, cfg);
          case Engine::vanilla: return topm::american_put_vanilla(spec, T);
          default: unsupported(model, right, style, engine);
        }
      }
      break;
    case Model::bsm:
      if (right == Right::put) {
        switch (engine) {
          case Engine::fft: return bsm::american_put_fft(spec, T, cfg);
          case Engine::vanilla: return bsm::american_put_vanilla(spec, T);
          case Engine::vanilla_parallel:
            return bsm::american_put_vanilla_parallel(spec, T);
          default: unsupported(model, right, style, engine);
        }
      }
      unsupported(model, right, style, engine);
  }
  unsupported(model, right, style, engine);
}

}  // namespace amopt::pricing
