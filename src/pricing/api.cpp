#include "amopt/pricing/api.hpp"

#include <stdexcept>
#include <utility>
#include <vector>

#include "amopt/baselines/baselines.hpp"
#include "amopt/pricing/alo/alo_engine.hpp"
#include "amopt/pricing/bopm.hpp"
#include "amopt/pricing/bsm_fdm.hpp"
#include "amopt/pricing/pricer.hpp"
#include "amopt/pricing/topm.hpp"
#include "amopt/stencil/kernel_cache.hpp"

namespace amopt::pricing {

std::string_view to_string(Model m) {
  switch (m) {
    case Model::bopm: return "bopm";
    case Model::topm: return "topm";
    case Model::bsm: return "bsm";
  }
  return "?";
}
std::string_view to_string(Right r) {
  return r == Right::call ? "call" : "put";
}
std::string_view to_string(Style s) {
  return s == Style::american ? "american" : "european";
}
std::string_view to_string(Engine e) {
  switch (e) {
    case Engine::fft: return "fft";
    case Engine::vanilla: return "vanilla";
    case Engine::vanilla_parallel: return "vanilla-parallel";
    case Engine::tiled: return "tiled";
    case Engine::cache_oblivious: return "cache-oblivious";
    case Engine::quantlib: return "quantlib";
    case Engine::boundary: return "boundary";
  }
  return "?";
}

namespace detail {

std::string unsupported_message(Model m, Right r, Style s, Engine e) {
  return std::string("amopt: unsupported combination ") +
         std::string(to_string(m)) + "/" + std::string(to_string(r)) + "/" +
         std::string(to_string(s)) + "/" + std::string(to_string(e));
}

namespace {

[[noreturn]] void unsupported(Model m, Right r, Style s, Engine e) {
  throw std::invalid_argument(unsupported_message(m, r, s, e));
}

}  // namespace

double price_with_cache(const OptionSpec& spec, std::int64_t T, Model model,
                        Right right, Style style, Engine engine,
                        core::SolverConfig cfg,
                        stencil::KernelCache* kernels) {
  if (style == Style::european) {
    if (model == Model::bopm && right == Right::call)
      return engine == Engine::fft ? bopm::european_call_fft(spec, T, kernels)
                                   : bopm::european_call_vanilla(spec, T);
    if (model == Model::bopm && right == Right::put)
      return engine == Engine::fft ? bopm::european_put_fft(spec, T, kernels)
                                   : bopm::european_put_vanilla(spec, T);
    if (model == Model::topm && right == Right::call)
      return engine == Engine::fft ? topm::european_call_fft(spec, T, kernels)
                                   : topm::european_call_vanilla(spec, T);
    if (model == Model::bsm && right == Right::put)
      return bsm::european_put_fdm(spec, T);
    unsupported(model, right, style, engine);
  }

  switch (model) {
    case Model::bopm:
      if (right == Right::call) {
        switch (engine) {
          case Engine::fft:
            return bopm::american_call_fft(spec, T, cfg, kernels);
          case Engine::vanilla: return bopm::american_call_vanilla(spec, T);
          case Engine::vanilla_parallel:
            return bopm::american_call_vanilla_parallel(spec, T);
          case Engine::tiled:
            return baselines::zubair_american_call(spec, T);
          case Engine::cache_oblivious:
            return baselines::cache_oblivious_american_call(spec, T);
          case Engine::quantlib:
            return baselines::quantlib_style_american_call(spec, T);
          case Engine::boundary: unsupported(model, right, style, engine);
        }
      } else {
        switch (engine) {
          case Engine::fft:
            return bopm::american_put_fft_direct(spec, T, cfg, kernels);
          case Engine::vanilla: return bopm::american_put_vanilla(spec, T);
          default: unsupported(model, right, style, engine);
        }
      }
      break;
    case Model::topm:
      if (right == Right::call) {
        switch (engine) {
          case Engine::fft:
            return topm::american_call_fft(spec, T, cfg, kernels);
          case Engine::vanilla: return topm::american_call_vanilla(spec, T);
          case Engine::vanilla_parallel:
            return topm::american_call_vanilla_parallel(spec, T);
          default: unsupported(model, right, style, engine);
        }
      } else {
        switch (engine) {
          case Engine::fft: return topm::american_put_fft(spec, T, cfg);
          case Engine::vanilla: return topm::american_put_vanilla(spec, T);
          default: unsupported(model, right, style, engine);
        }
      }
      break;
    case Model::bsm:
      // The boundary engine serves BOTH rights (the only American call
      // path under BSM, via put-call symmetry). No kernel cache applies;
      // session callers pass their cached NodeTable through
      // Pricer::price_cached instead of this null-table convenience path.
      if (engine == Engine::boundary)
        return alo::american_price(spec, right, cfg, nullptr);
      if (right == Right::put) {
        switch (engine) {
          case Engine::fft:
            return bsm::american_put_fft(spec, T, cfg, kernels);
          case Engine::vanilla: return bsm::american_put_vanilla(spec, T);
          case Engine::vanilla_parallel:
            return bsm::american_put_vanilla_parallel(spec, T);
          default: unsupported(model, right, style, engine);
        }
      }
      unsupported(model, right, style, engine);
  }
  unsupported(model, right, style, engine);
}

stencil::LinearStencil shared_cache_stencil(const OptionSpec& spec,
                                            std::int64_t T, Model model,
                                            Right right, Style style,
                                            Engine engine) {
  if (engine != Engine::fft || T <= 0) return {};
  switch (model) {
    case Model::bopm: {
      const BopmParams prm = derive_bopm(spec, T);
      if (right == Right::put && style == Style::american)
        return {{prm.s1, prm.s0}, 0};  // mirrored lattice
      return {{prm.s0, prm.s1}, 0};
    }
    case Model::topm: {
      if (right != Right::call) return {};
      const TopmParams prm = derive_topm(spec, T);
      return {{prm.s0, prm.s1, prm.s2}, 0};
    }
    case Model::bsm: {
      if (right != Right::put || style != Style::american) return {};
      const BsmParams prm = derive_bsm(spec, T);
      return {{prm.b, prm.c, prm.a}, -1};  // centered FDM stencil
    }
  }
  return {};
}

}  // namespace detail

namespace {

/// Legacy throwing semantics over a session result: unsupported and
/// invalid-request outcomes -> std::invalid_argument, pricer failure ->
/// the original exception.
double unwrap(const PricingResult& res) {
  if (res.error) std::rethrow_exception(res.error);
  if (!res.ok()) throw std::invalid_argument(res.message);
  return res.price;
}

}  // namespace

double price(const OptionSpec& spec, std::int64_t T, Model model, Right right,
             Style style, Engine engine, core::SolverConfig cfg) {
  Pricer session(PricerConfig{.solver = cfg});
  PricingRequest req;
  req.spec = spec;
  req.T = T;
  req.model = model;
  req.right = right;
  req.style = style;
  req.engine = engine;
  return unwrap(session.price_one(req));
}

std::vector<double> price_batch(std::span<const OptionSpec> chain,
                                std::int64_t T, Model model, Right right,
                                Style style, Engine engine,
                                core::SolverConfig cfg) {
  std::vector<double> out(chain.size(), 0.0);
  if (chain.empty()) return out;

  Pricer session(PricerConfig{.solver = cfg});
  std::vector<PricingRequest> reqs(chain.size());
  for (std::size_t i = 0; i < chain.size(); ++i) {
    reqs[i].spec = chain[i];
    reqs[i].T = T;
    reqs[i].model = model;
    reqs[i].right = right;
    reqs[i].style = style;
    reqs[i].engine = engine;
  }
  const std::vector<PricingResult> results = session.price_many(reqs);
  for (std::size_t i = 0; i < results.size(); ++i) out[i] = unwrap(results[i]);
  return out;
}

}  // namespace amopt::pricing
