#include "amopt/pricing/boundary.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "amopt/common/assert.hpp"

namespace amopt::pricing {

std::vector<std::int64_t> bopm_call_boundary_vanilla(const OptionSpec& spec,
                                                     std::int64_t T) {
  AMOPT_EXPECTS(T >= 1);
  const BopmParams prm = derive_bopm(spec, T);
  const PowerTable up(prm.log_u, T);
  const auto payoff = [&](std::int64_t i, std::int64_t j) {
    return spec.S * up(2 * j - i) - spec.K;
  };
  std::vector<std::int64_t> q(static_cast<std::size_t>(T + 1), -1);
  std::vector<double> row(static_cast<std::size_t>(T + 1));
  for (std::int64_t j = 0; j <= T; ++j) {
    row[static_cast<std::size_t>(j)] = std::max(0.0, payoff(T, j));
    if (payoff(T, j) <= 0.0) q[static_cast<std::size_t>(T)] = j;
  }
  for (std::int64_t i = T - 1; i >= 0; --i) {
    for (std::int64_t j = 0; j <= i; ++j) {
      const double lin = prm.s0 * row[static_cast<std::size_t>(j)] +
                         prm.s1 * row[static_cast<std::size_t>(j + 1)];
      const double pay = payoff(i, j);
      if (lin >= pay) q[static_cast<std::size_t>(i)] = j;
      row[static_cast<std::size_t>(j)] = std::max(lin, pay);
    }
  }
  return q;
}

std::vector<std::int64_t> topm_call_boundary_vanilla(const OptionSpec& spec,
                                                     std::int64_t T) {
  AMOPT_EXPECTS(T >= 1);
  const TopmParams prm = derive_topm(spec, T);
  const PowerTable up(prm.log_u, T);
  const auto payoff = [&](std::int64_t i, std::int64_t j) {
    return spec.S * up(j - i) - spec.K;
  };
  std::vector<std::int64_t> q(static_cast<std::size_t>(T + 1), -1);
  std::vector<double> row(static_cast<std::size_t>(2 * T + 1));
  for (std::int64_t j = 0; j <= 2 * T; ++j) {
    row[static_cast<std::size_t>(j)] = std::max(0.0, payoff(T, j));
    if (payoff(T, j) <= 0.0) q[static_cast<std::size_t>(T)] = j;
  }
  for (std::int64_t i = T - 1; i >= 0; --i) {
    for (std::int64_t j = 0; j <= 2 * i; ++j) {
      const double lin = prm.s0 * row[static_cast<std::size_t>(j)] +
                         prm.s1 * row[static_cast<std::size_t>(j + 1)] +
                         prm.s2 * row[static_cast<std::size_t>(j + 2)];
      const double pay = payoff(i, j);
      if (lin >= pay) q[static_cast<std::size_t>(i)] = j;
      row[static_cast<std::size_t>(j)] = std::max(lin, pay);
    }
  }
  return q;
}

double bopm_cell_price(const OptionSpec& spec, std::int64_t T, std::int64_t i,
                       std::int64_t j) {
  const BopmParams prm = derive_bopm(spec, T);
  return spec.S * std::exp(static_cast<double>(2 * j - i) * prm.log_u);
}

}  // namespace amopt::pricing
