// The boundary-engine core (alo_engine.hpp): QD+ initial guess, Chebyshev
// collocation of the Kim fixed point, tanh-sinh premium integral. The hot
// path works entirely in LOG boundary space (ln B = ln X - sqrt(H)) so the
// per-iteration inner loops are pure Clenshaw arithmetic plus the
// dispatched bs_dpm / norm_cdf kernels — no exp/log, no heap.

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <memory>
#include <numbers>
#include <span>
#include <stdexcept>
#include <vector>

#include "amopt/core/scratch.hpp"
#include "amopt/pricing/alo/alo_engine.hpp"
#include "amopt/pricing/black_scholes.hpp"
#include "amopt/simd/kernels.hpp"
#include "amopt/simd/simd.hpp"

namespace amopt::pricing::alo {

namespace {

/// The put problem the solver actually runs (calls arrive here through
/// put-call symmetry: C(S,K,r,q) = P(K,S,q,r)).
struct PutProblem {
  double S, K, r, q, vol, T;
};

[[nodiscard]] double sq(double x) { return x * x; }

/// p(z) = a[0] + sum_{k>=1} a[k] T_k(z) (coefficients from NodeTable's
/// interpolation matrix, which pre-halves the endpoint terms).
[[nodiscard]] double clenshaw(const double* a, int n, double z) {
  double b1 = 0.0, b2 = 0.0;
  for (int k = n - 1; k >= 1; --k) {
    const double b0 = a[k] + 2.0 * z * b1 - b2;
    b2 = b1;
    b1 = b0;
  }
  return a[0] + z * b1 - b2;
}

/// ln B(tau) from the H interpolant: ln X - sqrt(max(H, 0)); the clamp
/// absorbs the interpolant's sub-ulp wiggle below 0 near tau = 0.
[[nodiscard]] double log_boundary(const double* a, int n, double z,
                                  double log_x) {
  return log_x - std::sqrt(std::max(clenshaw(a, n, z), 0.0));
}

[[nodiscard]] double norm_pdf(double x) {
  return std::exp(-0.5 * x * x) / std::numbers::sqrt2 /
         std::sqrt(std::numbers::pi);
}

/// Everything one request stages in the thread's scratch frame. All spans
/// come from a single Frame in american_put / put_boundary.
struct Work {
  // Collocation state (n each).
  std::span<double> log_b;  ///< ln B at node j (current iterate)
  std::span<double> hval;   ///< H_j samples
  std::span<double> acoef;  ///< Chebyshev coefficients of H
  // Request-constant quadrature geometry (n*q each, node-major).
  std::span<double> zarg;     ///< Clenshaw z of u_{j,i}
  std::span<double> drift_t;  ///< (r-q)(tau_j - u_{j,i})
  std::span<double> inv_vs;   ///< 1 / (vol sqrt(tau_j - u_{j,i}))
  std::span<double> half_vs;  ///< vol sqrt(tau_j - u_{j,i}) / 2
  std::span<double> exp_r;    ///< e^{r u_{j,i}}
  std::span<double> exp_q;    ///< e^{q u_{j,i}}
  // Shared temporaries, sized max(n, q): the QD+ warm start sweeps them
  // node-wise (n-1 wide), the fixed point quad-wise (q wide).
  std::span<double> logz, dp, dm, phi_m, phi_p;
  // QD+ warm-start state: 13 contiguous slices of n (per-node residual
  // constants plus the lockstep bisection brackets), carved in solve().
  std::span<double> qd;
};

[[nodiscard]] Work stage(core::ScratchStack::Frame& frame, std::size_t n,
                         std::size_t q) {
  Work w;
  const std::size_t t = std::max(n, q);
  w.log_b = frame.alloc(n);
  w.hval = frame.alloc(n);
  w.acoef = frame.alloc(n);
  w.zarg = frame.alloc(n * q);
  w.drift_t = frame.alloc(n * q);
  w.inv_vs = frame.alloc(n * q);
  w.half_vs = frame.alloc(n * q);
  w.exp_r = frame.alloc(n * q);
  w.exp_q = frame.alloc(n * q);
  w.logz = frame.alloc(t);
  w.dp = frame.alloc(t);
  w.dm = frame.alloc(t);
  w.phi_m = frame.alloc(t);
  w.phi_p = frame.alloc(t);
  w.qd = frame.alloc(13 * n);
  return w;
}

/// Solve the boundary on the table's nodes: fills w.log_b / w.hval and
/// leaves the final Chebyshev coefficients in w.acoef. Returns ln X.
/// Requires r > 0 (callers shortcut r <= 0 to the European price).
double solve_boundary(const PutProblem& m, const NodeTable& tbl,
                      int iterations, Work& w) {
  const int n = tbl.nodes, q = tbl.quad;
  const double X = m.q > m.r ? m.K * (m.r / m.q) : m.K;
  const double log_x = std::log(X);
  const double log_k = std::log(m.K);

  // Request-constant geometry: for node j and quad point i the integrals
  // read u = tau_j (1+y_i)/2, so tau_j - u = tau_j sm_i^2 and the Clenshaw
  // argument of B(u) is 2 sqrt(u/T) - 1 = 2 xhat_j sp_i - 1. One pass of
  // scalar exp/sqrt here, then the fixed point never calls libm again.
  for (int j = 1; j < n; ++j) {
    const double xh = tbl.xhat[static_cast<std::size_t>(j)];
    const double tau = m.T * xh * xh;
    const double vst = m.vol * std::sqrt(tau);
    double* zz = w.zarg.data() + static_cast<std::size_t>(j) * q;
    double* dr = w.drift_t.data() + static_cast<std::size_t>(j) * q;
    double* iv = w.inv_vs.data() + static_cast<std::size_t>(j) * q;
    double* hv = w.half_vs.data() + static_cast<std::size_t>(j) * q;
    double* er = w.exp_r.data() + static_cast<std::size_t>(j) * q;
    double* eq = w.exp_q.data() + static_cast<std::size_t>(j) * q;
    for (int i = 0; i < q; ++i) {
      const double sp = tbl.sp[static_cast<std::size_t>(i)];
      const double sm = tbl.sm[static_cast<std::size_t>(i)];
      const double u = tau * sp * sp;
      const double vs = vst * sm;  // vol sqrt(tau - u) > 0 (sm > 0)
      zz[i] = 2.0 * xh * sp - 1.0;
      dr[i] = (m.r - m.q) * tau * sm * sm;
      iv[i] = 1.0 / vs;
      hv[i] = 0.5 * vs;
      er[i] = std::exp(m.r * u);
      eq[i] = std::exp(m.q * u);
    }
  }

  const simd::Kernels& kern = simd::kernels();

  // QD+ warm start (Li 2010's refined quadratic approximation: the
  // smooth-pasting condition of the (S/B)^lambda value extension with the
  // c0 curvature correction), bisected in LOCKSTEP across all nodes: each
  // round evaluates every node's residual with ONE bs_dpm sweep and ONE
  // norm_cdf sweep, leaving a single log and exp per node per round as the
  // only scalar libm — this loop is the fixed per-quote overhead, so it
  // rides the same dispatched kernels as the collocation sweeps. Node 0
  // (tau = 0) is pinned at the known limit B = X, H = 0.
  w.log_b[0] = log_x;
  w.hval[0] = 0.0;
  {
    const int nb = n - 1;  // bisected nodes (array index j <-> node j+1)
    const std::size_t nbz = static_cast<std::size_t>(nb);
    const double sig2 = m.vol * m.vol;
    const double M = 2.0 * m.r / sig2;
    const double Nn = 2.0 * (m.r - m.q) / sig2;
    const auto slice = [&](int s) {
      return w.qd.subspan(static_cast<std::size_t>(s) * n, nbz);
    };
    const auto ivs = slice(0), hvs = slice(1), drift = slice(2),
               emr = slice(3), emq = slice(4), lam = slice(5),
               lamp = slice(6), tlam = slice(7), hh = slice(8),
               lo = slice(9), hi = slice(10), flo = slice(11),
               mid = slice(12);
    for (int j = 0; j < nb; ++j) {
      const double xh = tbl.xhat[static_cast<std::size_t>(j + 1)];
      const double tau = m.T * xh * xh;
      const double vs = m.vol * std::sqrt(tau);
      ivs[j] = 1.0 / vs;
      hvs[j] = 0.5 * vs;
      drift[j] = (m.r - m.q) * tau;
      emr[j] = std::exp(-m.r * tau);
      emq[j] = std::exp(-m.q * tau);
      const double h = 1.0 - emr[j];  // r > 0 -> h > 0
      const double root = std::sqrt(sq(Nn - 1.0) + 4.0 * M / h);
      lam[j] = -0.5 * (Nn - 1.0) - 0.5 * root;
      lamp[j] = M / (h * h * root);
      tlam[j] = 2.0 * lam[j] + Nn - 1.0;
      hh[j] = h;
    }
    // Residual f(B_j) of every node at once; w.dm doubles as the output
    // (its Phi is consumed before the store). pdf(dp) survives the in-place
    // negation below because the Gaussian density is even.
    const auto residuals = [&](std::span<const double> B,
                               std::span<double> f_out) {
      for (int j = 0; j < nb; ++j) w.logz[j] = std::log(B[j] / m.K);
      kern.bs_dpm(w.logz.data(), drift.data(), ivs.data(), hvs.data(),
                  w.dp.data(), w.dm.data(), nbz);
      for (int j = 0; j < nb; ++j) w.dp[j] = -w.dp[j];
      for (int j = 0; j < nb; ++j) w.dm[j] = -w.dm[j];
      kern.norm_cdf(w.dm.data(), w.phi_m.data(), nbz);  // Phi(-d-)
      kern.norm_cdf(w.dp.data(), w.phi_p.data(), nbz);  // Phi(-d+)
      for (int j = 0; j < nb; ++j) {
        const double pm = w.phi_m[j], pp = w.phi_p[j];
        const double disc_put = m.K * emr[j] * pm - B[j] * emq[j] * pp;
        const double gap = m.K - B[j] - disc_put;
        // Theta of the European put at S = B; 1/sqrt(tau) = vol * ivs.
        const double theta =
            m.r * m.K * emr[j] * pm - m.q * B[j] * emq[j] * pp -
            0.5 * m.vol * m.vol * B[j] * emq[j] * norm_pdf(w.dp[j]) * ivs[j];
        double c0 = 0.0;
        if (gap > 1e-12 * m.K)
          c0 = -(1.0 - hh[j]) * M / tlam[j] *
               (1.0 / hh[j] - theta / (emr[j] * m.r * gap) +
                lamp[j] / tlam[j]);
        f_out[j] = 1.0 - emq[j] * pp + (lam[j] + c0) * gap / B[j];
      }
    };
    for (int j = 0; j < nb; ++j) lo[j] = 1e-4 * X;
    for (int j = 0; j < nb; ++j) hi[j] = X * (1.0 - 1e-12);
    residuals(lo, flo);
    residuals(hi, mid);  // mid temporarily holds f(hi)
    for (int j = 0; j < nb; ++j) {
      if (!(flo[j] * mid[j] < 0.0) || !std::isfinite(flo[j]) ||
          !std::isfinite(mid[j])) {
        // Non-bracketing pathological case: a one-term exponential guess,
        // crude but inside the region; freeze the bracket on it.
        const double fb = X * std::exp(-2.0 * hvs[j]);
        lo[j] = fb;
        hi[j] = fb;
      }
    }
    // 24 rounds pin each root to ~1e-5 relative; the collocation sweeps
    // contract any leftover warm-start error below the preset's own
    // discretization error.
    for (int round = 0; round < 24; ++round) {
      for (int j = 0; j < nb; ++j) mid[j] = 0.5 * (lo[j] + hi[j]);
      residuals(mid, w.dm);
      for (int j = 0; j < nb; ++j) {
        if (!std::isfinite(w.dm[j])) continue;
        if (flo[j] * w.dm[j] <= 0.0) {
          hi[j] = mid[j];
        } else {
          lo[j] = mid[j];
          flo[j] = w.dm[j];
        }
      }
    }
    for (int j = 0; j < nb; ++j) {
      const double lb =
          std::min(std::log(0.5 * (lo[j] + hi[j])), log_x);
      w.log_b[static_cast<std::size_t>(j + 1)] = lb;
      w.hval[static_cast<std::size_t>(j + 1)] = sq(lb - log_x);
    }
  }
  for (int it = 0; it < iterations; ++it) {
    // Coefficients of the current H iterate (dense n x n multiply — with
    // n <= 64 this is noise next to the Phi sweeps).
    for (int k = 0; k < n; ++k) {
      const double* row =
          tbl.coeff.data() + static_cast<std::size_t>(k) * n;
      double acc = 0.0;
      for (int j = 0; j < n; ++j) acc += row[j] * w.hval[j];
      w.acoef[static_cast<std::size_t>(k)] = acc;
    }
    // Jacobi sweep: every node's update reads the SAME interpolant.
    for (int j = 1; j < n; ++j) {
      const double xh = tbl.xhat[static_cast<std::size_t>(j)];
      const double tau = m.T * xh * xh;
      const double vs = m.vol * std::sqrt(tau);
      const double lb = w.log_b[static_cast<std::size_t>(j)];
      // Boundary terms Phi(d-+(tau, B_j/K)).
      const double base = (lb - log_k + (m.r - m.q) * tau) / vs;
      double n_val = bs::norm_cdf(base - 0.5 * vs);
      double d_val = bs::norm_cdf(base + 0.5 * vs);
      // Integral terms, batched through the dispatched kernels.
      const double* zz = w.zarg.data() + static_cast<std::size_t>(j) * q;
      const double* er = w.exp_r.data() + static_cast<std::size_t>(j) * q;
      const double* eq = w.exp_q.data() + static_cast<std::size_t>(j) * q;
      for (int i = 0; i < q; ++i)
        w.logz[static_cast<std::size_t>(i)] =
            lb - log_boundary(w.acoef.data(), n, zz[i], log_x);
      kern.bs_dpm(w.logz.data(),
                  w.drift_t.data() + static_cast<std::size_t>(j) * q,
                  w.inv_vs.data() + static_cast<std::size_t>(j) * q,
                  w.half_vs.data() + static_cast<std::size_t>(j) * q,
                  w.dp.data(), w.dm.data(), static_cast<std::size_t>(q));
      kern.norm_cdf(w.dm.data(), w.phi_m.data(), static_cast<std::size_t>(q));
      kern.norm_cdf(w.dp.data(), w.phi_p.data(), static_cast<std::size_t>(q));
      double n_int = 0.0, d_int = 0.0;
      for (int i = 0; i < q; ++i) {
        const double wt = tbl.w[static_cast<std::size_t>(i)];
        n_int += wt * er[i] * w.phi_m[static_cast<std::size_t>(i)];
        d_int += wt * eq[i] * w.phi_p[static_cast<std::size_t>(i)];
      }
      n_val += m.r * (0.5 * tau) * n_int;
      d_val += m.q * (0.5 * tau) * d_int;
      // B' = K e^{-(r-q)tau} N/D, folded straight into log space. D >=
      // Phi(d+) > 0, so the ratio is always well-defined.
      const double lb_new =
          log_k - (m.r - m.q) * tau + std::log(n_val / d_val);
      w.hval[static_cast<std::size_t>(j)] =
          lb_new < log_x ? sq(lb_new - log_x) : 0.0;
    }
    for (int j = 1; j < n; ++j)
      w.log_b[static_cast<std::size_t>(j)] =
          log_x - std::sqrt(w.hval[static_cast<std::size_t>(j)]);
  }
  // Final interpolant for the premium / boundary readers.
  for (int k = 0; k < n; ++k) {
    const double* row = tbl.coeff.data() + static_cast<std::size_t>(k) * n;
    double acc = 0.0;
    for (int j = 0; j < n; ++j) acc += row[j] * w.hval[j];
    w.acoef[static_cast<std::size_t>(k)] = acc;
  }
  return log_x;
}

/// Kim early-exercise premium at spot S from the solved boundary:
///   Int_0^T [ rK e^{-r h} Phi(-d-(h, S/B(T-h)))
///           - qS e^{-q h} Phi(-d+(h, S/B(T-h))) ] dh
/// with h = T (1+y)/2, so the boundary argument T-h = T sm^2 reads the
/// interpolant at z = 2 sm - 1. Reuses the iteration temporaries.
double premium(const PutProblem& m, const NodeTable& tbl, const Work& w,
               double log_x, double log_s) {
  const int n = tbl.nodes, q = tbl.quad;
  const double vst = m.vol * std::sqrt(m.T);
  const simd::Kernels& kern = simd::kernels();
  // Geometry into the (request-constant) j = 0 slots, unused by tau_0 = 0.
  double* dr = w.drift_t.data();
  double* iv = w.inv_vs.data();
  double* hv = w.half_vs.data();
  double* er = w.exp_r.data();
  double* eq = w.exp_q.data();
  for (int i = 0; i < q; ++i) {
    const double sp = tbl.sp[static_cast<std::size_t>(i)];
    const double sm = tbl.sm[static_cast<std::size_t>(i)];
    const double hh = m.T * sp * sp;
    const double vs = vst * sp;
    w.logz[static_cast<std::size_t>(i)] =
        log_s - log_boundary(w.acoef.data(), n, 2.0 * sm - 1.0, log_x);
    dr[i] = (m.r - m.q) * hh;
    iv[i] = 1.0 / vs;
    hv[i] = 0.5 * vs;
    er[i] = std::exp(-m.r * hh);
    eq[i] = std::exp(-m.q * hh);
  }
  kern.bs_dpm(w.logz.data(), dr, iv, hv, w.dp.data(), w.dm.data(),
              static_cast<std::size_t>(q));
  // Phi(-d): negate in place, then one kernel sweep per sign.
  for (int i = 0; i < q; ++i) {
    w.dp[static_cast<std::size_t>(i)] = -w.dp[static_cast<std::size_t>(i)];
    w.dm[static_cast<std::size_t>(i)] = -w.dm[static_cast<std::size_t>(i)];
  }
  kern.norm_cdf(w.dm.data(), w.phi_m.data(), static_cast<std::size_t>(q));
  kern.norm_cdf(w.dp.data(), w.phi_p.data(), static_cast<std::size_t>(q));
  double acc = 0.0;
  for (int i = 0; i < q; ++i) {
    const double wt = tbl.w[static_cast<std::size_t>(i)];
    acc += wt * (m.r * m.K * er[i] * w.phi_m[static_cast<std::size_t>(i)] -
                 m.q * m.S * eq[i] * w.phi_p[static_cast<std::size_t>(i)]);
  }
  return 0.5 * m.T * acc;
}

[[nodiscard]] OptionSpec to_spec(const PutProblem& m) {
  OptionSpec s;
  s.S = m.S;
  s.K = m.K;
  s.R = m.r;
  s.V = m.vol;
  s.Y = m.q;
  s.expiry_years = m.T;
  return s;
}

/// The full put pricing path (symmetry-mapped calls included): European
/// shortcut for r <= 0, otherwise boundary solve + premium integral.
double american_put(const PutProblem& m, const NodeTable& tbl,
                    int iterations) {
  if (m.r == 0.0) {
    // No interest on the strike: the put's early-exercise premium is zero
    // and the boundary collapses to 0 (X = K min(1, r/q) -> 0).
    return bs::european_put(to_spec(m));
  }
  core::ScratchStack::Frame frame(core::thread_scratch());
  Work w = stage(frame, static_cast<std::size_t>(tbl.nodes),
                 static_cast<std::size_t>(tbl.quad));
  const double log_x = solve_boundary(m, tbl, iterations, w);
  // Spot at or below today's boundary: exercise now.
  if (std::log(m.S) <=
      w.log_b[static_cast<std::size_t>(tbl.nodes - 1)])
    return m.K - m.S;
  const double v_eur = bs::european_put(to_spec(m));
  const double prem = premium(m, tbl, w, log_x, std::log(m.S));
  // The premium is non-negative by construction of the integrand on the
  // solved boundary; clamp quadrature noise, then enforce intrinsic.
  return std::max(v_eur + std::max(prem, 0.0), m.K - m.S);
}

[[nodiscard]] PutProblem as_put(const OptionSpec& spec, Right right) {
  if (!(spec.R >= 0.0) || !(spec.Y >= 0.0))
    throw std::invalid_argument(
        "amopt: boundary engine requires R >= 0 and Y >= 0");
  if (right == Right::put)
    return {spec.S, spec.K, spec.R, spec.Y, spec.V, spec.expiry_years};
  // Put-call symmetry: C(S, K, r, q, vol, T) = P(K, S, q, r, vol, T).
  return {spec.K, spec.S, spec.Y, spec.R, spec.V, spec.expiry_years};
}

}  // namespace

double american_price(const OptionSpec& spec, Right right,
                      const core::SolverConfig& cfg, const NodeTable* table) {
  const PutProblem m = as_put(spec, right);
  std::shared_ptr<const NodeTable> local;
  if (table == nullptr || table->nodes != std::clamp(cfg.alo_nodes, 3, 64) ||
      table->quad != std::clamp(cfg.alo_quad, 3, 401)) {
    local = build_node_table(cfg.alo_nodes, cfg.alo_quad);
    table = local.get();
  }
  return american_put(m, *table, std::max(cfg.alo_iterations, 1));
}

std::vector<double> put_boundary(const OptionSpec& spec,
                                 const core::SolverConfig& cfg,
                                 std::span<const double> taus) {
  const PutProblem m = as_put(spec, Right::put);
  std::vector<double> out(taus.size(), 0.0);
  if (m.r == 0.0) return out;  // boundary collapses with the premium
  const auto tbl = build_node_table(cfg.alo_nodes, cfg.alo_quad);
  core::ScratchStack::Frame frame(core::thread_scratch());
  Work w = stage(frame, static_cast<std::size_t>(tbl->nodes),
                 static_cast<std::size_t>(tbl->quad));
  const double log_x =
      solve_boundary(m, *tbl, std::max(cfg.alo_iterations, 1), w);
  for (std::size_t i = 0; i < taus.size(); ++i) {
    const double tau = std::clamp(taus[i], 0.0, m.T);
    const double z = 2.0 * std::sqrt(tau / m.T) - 1.0;
    out[i] =
        std::exp(log_boundary(w.acoef.data(), tbl->nodes, z, log_x));
  }
  return out;
}

}  // namespace amopt::pricing::alo
