// NodeTable construction: the dimensionless Chebyshev / tanh-sinh geometry
// of the boundary engine (alo_engine.hpp). Built once per (nodes, quad)
// accuracy setting and cached by Pricer sessions; everything here is setup
// cost, nothing here runs per quote.

#include <algorithm>
#include <cmath>
#include <memory>
#include <numbers>

#include "amopt/pricing/alo/alo_engine.hpp"

namespace amopt::pricing::alo {

namespace {

// Widest tanh-sinh level: t_max = 3 puts the extreme abscissae within
// ~2e-14 of +-1, close enough to kill the integrands' endpoint behaviour
// while keeping 1 -+ y (and so sp/sm) comfortably inside double range.
constexpr double kTMax = 3.0;

}  // namespace

std::shared_ptr<const NodeTable> build_node_table(int nodes, int quad) {
  nodes = std::clamp(nodes, 3, 64);
  quad = std::clamp(quad, 3, 401);
  auto tbl = std::make_shared<NodeTable>();
  tbl->nodes = nodes;
  tbl->quad = quad;

  // Chebyshev-Lobatto points of x = sqrt(tau/T), ascending in tau: node j
  // sits at standard angle (N-j) pi / N, so x_0 = 0 (tau = 0, where
  // H = 0 is pinned) and x_N = 1 (tau = T, where the premium reads).
  const int N = nodes - 1;
  tbl->xhat.resize(static_cast<std::size_t>(nodes));
  for (int j = 0; j <= N; ++j)
    tbl->xhat[static_cast<std::size_t>(j)] =
        0.5 * (1.0 - std::cos(std::numbers::pi * static_cast<double>(j) /
                              static_cast<double>(N)));

  // Interpolation matrix of the first-kind discrete cosine transform:
  // a_k = (2/N) sum''_i H(cos(i pi/N)) cos(pi i k / N), with the primed
  // sum halving i = 0 and i = N, and the k = 0 / k = N coefficients halved
  // once more so the interpolant evaluates as the PLAIN sum
  // p(z) = a_0 + sum_{k>=1} a_k T_k(z) (what the Clenshaw loop computes).
  // Our node j is standard node i = N - j, folded into the matrix here.
  tbl->coeff.assign(static_cast<std::size_t>(nodes) *
                        static_cast<std::size_t>(nodes),
                    0.0);
  for (int k = 0; k <= N; ++k) {
    const double vk = (k == 0 || k == N) ? 0.5 : 1.0;
    for (int j = 0; j <= N; ++j) {
      const int i = N - j;
      const double wi = (i == 0 || i == N) ? 0.5 : 1.0;
      tbl->coeff[static_cast<std::size_t>(k) * static_cast<std::size_t>(nodes) +
                 static_cast<std::size_t>(j)] =
          (2.0 / static_cast<double>(N)) * vk * wi *
          std::cos(std::numbers::pi * static_cast<double>(i) *
                   static_cast<double>(k) / static_cast<double>(N));
    }
  }

  // tanh-sinh rule on (-1, 1): y_i = tanh(pi/2 sinh(t_i)) at equispaced
  // t_i in [-t_max, t_max], weights h * (pi/2 cosh t) / cosh^2(pi/2 sinh t).
  const double h = 2.0 * kTMax / static_cast<double>(quad - 1);
  tbl->y.resize(static_cast<std::size_t>(quad));
  tbl->w.resize(static_cast<std::size_t>(quad));
  tbl->sp.resize(static_cast<std::size_t>(quad));
  tbl->sm.resize(static_cast<std::size_t>(quad));
  constexpr double kHalfPi = std::numbers::pi / 2.0;
  for (int i = 0; i < quad; ++i) {
    const double t = -kTMax + h * static_cast<double>(i);
    const double s = kHalfPi * std::sinh(t);
    const double y = std::tanh(s);
    const double c = std::cosh(s);
    tbl->y[static_cast<std::size_t>(i)] = y;
    tbl->w[static_cast<std::size_t>(i)] =
        h * kHalfPi * std::cosh(t) / (c * c);
    // 1 -+ y via the sech identity (1 - tanh s = sech s e^{-s} etc.) would
    // be more accurate at the extremes, but sqrt of the plain expression
    // already keeps ~7 significant digits at t_max = 3 — far below the
    // quadrature's own truncation error. Clamp against -0 round-off.
    tbl->sp[static_cast<std::size_t>(i)] =
        std::sqrt(std::max(0.5 * (1.0 + y), 0.0));
    tbl->sm[static_cast<std::size_t>(i)] =
        std::sqrt(std::max(0.5 * (1.0 - y), 0.0));
  }
  return tbl;
}

}  // namespace amopt::pricing::alo
