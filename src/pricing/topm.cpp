#include "amopt/pricing/topm.hpp"

#include <algorithm>
#include <cmath>
#include <span>
#include <vector>

#include "amopt/common/assert.hpp"
#include "amopt/common/parallel.hpp"
#include "amopt/metrics/counters.hpp"
#include "amopt/poly/poly_power.hpp"

namespace amopt::pricing::topm {

namespace {

[[nodiscard]] std::int64_t expiry_boundary(const TopmParams& prm,
                                           const core::LatticeGreen& green) {
  const std::int64_t T = prm.T;
  const std::int64_t jmax = 2 * T;
  if (green.value(T, 0) > 0.0) return -1;
  if (green.value(T, jmax) <= 0.0) return jmax;
  std::int64_t lo = 0, hi = jmax;
  while (hi - lo > 1) {
    const std::int64_t mid = lo + (hi - lo) / 2;
    (green.value(T, mid) <= 0.0 ? lo : hi) = mid;
  }
  return lo;
}

template <bool kParallel, class Payoff>
[[nodiscard]] double rollback_vanilla(const TopmParams& prm,
                                      const Payoff& payoff, bool american) {
  const std::int64_t T = prm.T;
  if (T == 0) return std::max(0.0, payoff(0, 0));
  std::vector<double> cur(static_cast<std::size_t>(2 * T + 1));
  for (std::int64_t j = 0; j <= 2 * T; ++j)
    cur[static_cast<std::size_t>(j)] = std::max(0.0, payoff(T, j));
  if constexpr (!kParallel) {
    for (std::int64_t i = T - 1; i >= 0; --i) {
      for (std::int64_t j = 0; j <= 2 * i; ++j) {
        const double lin = prm.s0 * cur[static_cast<std::size_t>(j)] +
                           prm.s1 * cur[static_cast<std::size_t>(j + 1)] +
                           prm.s2 * cur[static_cast<std::size_t>(j + 2)];
        cur[static_cast<std::size_t>(j)] =
            american ? std::max(lin, payoff(i, j)) : lin;
      }
    }
  } else {
    std::vector<double> nxt(cur.size());
    for (std::int64_t i = T - 1; i >= 0; --i) {
      parallel_for_chunks(2 * i + 1, 1024, [&](std::ptrdiff_t lo,
                                               std::ptrdiff_t hi) {
        for (std::ptrdiff_t j = lo; j < hi; ++j) {
          const double lin = prm.s0 * cur[static_cast<std::size_t>(j)] +
                             prm.s1 * cur[static_cast<std::size_t>(j + 1)] +
                             prm.s2 * cur[static_cast<std::size_t>(j + 2)];
          nxt[static_cast<std::size_t>(j)] =
              american ? std::max(lin, payoff(i, j)) : lin;
        }
      });
      cur.swap(nxt);
    }
  }
  metrics::add_flops(5 * static_cast<std::uint64_t>(T) * (T + 1));
  metrics::add_bytes(3 * sizeof(double) * static_cast<std::uint64_t>(T) *
                     (T + 1));
  return cur[0];
}

}  // namespace

core::LatticeRow expiry_row(const TopmParams& prm,
                            const core::LatticeGreen& green) {
  core::LatticeRow row;
  row.i = prm.T;
  row.q = expiry_boundary(prm, green);
  row.red.assign(static_cast<std::size_t>(std::max<std::int64_t>(row.q + 1, 0)),
                 0.0);
  return row;
}

double american_call_fft(const OptionSpec& spec, std::int64_t T,
                         core::SolverConfig cfg,
                         stencil::KernelCache* kernels) {
  if (T == 0) return std::max(0.0, spec.S - spec.K);
  if (spec.Y <= 0.0 && spec.R >= 0.0) return european_call_fft(spec, T, kernels);

  const TopmParams prm = derive_topm(spec, T);
  const CallGreen green(spec, prm);
  core::LatticeSolver solver(kernels, {{prm.s0, prm.s1, prm.s2}, 0}, green,
                             cfg);

  core::LatticeRow row = expiry_row(prm, green);
  // Full scans for the first two rows: Corollary A.6 is proved below the
  // expiry row, and for R > Y the boundary jumps right off it.
  while (row.i > std::max<std::int64_t>(T - 2, 0))
    row = solver.step_naive(row, /*unbounded_scan=*/true);
  row = solver.descend(std::move(row), 0);
  return row.q >= 0 ? row.red[0] : green.value(0, 0);
}

double american_call_fft(const OptionSpec& spec, std::int64_t T,
                         core::SolverConfig cfg) {
  return american_call_fft(spec, T, cfg, nullptr);
}

double american_call_vanilla(const OptionSpec& spec, std::int64_t T) {
  const TopmParams prm = derive_topm(spec, T);
  const PowerTable up(prm.log_u, T);
  const auto payoff = [&](std::int64_t i, std::int64_t j) {
    return spec.S * up(j - i) - spec.K;
  };
  return rollback_vanilla<false>(prm, payoff, /*american=*/true);
}

double american_call_vanilla_parallel(const OptionSpec& spec, std::int64_t T) {
  const TopmParams prm = derive_topm(spec, T);
  const PowerTable up(prm.log_u, T);
  const auto payoff = [&](std::int64_t i, std::int64_t j) {
    return spec.S * up(j - i) - spec.K;
  };
  return rollback_vanilla<true>(prm, payoff, /*american=*/true);
}

double american_put_vanilla(const OptionSpec& spec, std::int64_t T) {
  const TopmParams prm = derive_topm(spec, T);
  const PowerTable up(prm.log_u, T);
  const auto payoff = [&](std::int64_t i, std::int64_t j) {
    return spec.K - spec.S * up(j - i);
  };
  return rollback_vanilla<false>(prm, payoff, /*american=*/true);
}

double american_put_fft(const OptionSpec& spec, std::int64_t T,
                        core::SolverConfig cfg) {
  OptionSpec swapped = spec;
  std::swap(swapped.S, swapped.K);
  std::swap(swapped.R, swapped.Y);
  return american_call_fft(swapped, T, cfg);
}

double european_call_vanilla(const OptionSpec& spec, std::int64_t T) {
  const TopmParams prm = derive_topm(spec, T);
  const PowerTable up(prm.log_u, T);
  const auto payoff = [&](std::int64_t i, std::int64_t j) {
    return spec.S * up(j - i) - spec.K;
  };
  return rollback_vanilla<false>(prm, payoff, /*american=*/false);
}

double european_call_fft(const OptionSpec& spec, std::int64_t T,
                         stencil::KernelCache* kernels) {
  if (T == 0) return std::max(0.0, spec.S - spec.K);
  const TopmParams prm = derive_topm(spec, T);
  const PowerTable up(prm.log_u, T);
  std::vector<double> storage;
  std::span<const double> kernel;
  if (kernels != nullptr) {
    kernel = kernels->power(static_cast<std::uint64_t>(T));
  } else {
    storage = poly::power(std::vector<double>{prm.s0, prm.s1, prm.s2},
                          static_cast<std::uint64_t>(T));
    kernel = storage;
  }
  double acc = 0.0;
  for (std::int64_t j = 0; j <= 2 * T; ++j)
    acc += kernel[static_cast<std::size_t>(j)] *
           std::max(0.0, spec.S * up(j - T) - spec.K);
  return acc;
}

double european_call_fft(const OptionSpec& spec, std::int64_t T) {
  return european_call_fft(spec, T, nullptr);
}

}  // namespace amopt::pricing::topm
