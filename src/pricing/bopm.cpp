#include "amopt/pricing/bopm.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <vector>

#include "amopt/common/assert.hpp"
#include "amopt/common/parallel.hpp"
#include "amopt/fft/convolution.hpp"
#include "amopt/metrics/counters.hpp"
#include "amopt/poly/poly_power.hpp"

namespace amopt::pricing::bopm {

namespace {

[[nodiscard]] double payoff_expiry(const core::LatticeGreen& green,
                                   std::int64_t T, std::int64_t j) {
  return std::max(0.0, green.value(T, j));
}

/// Coefficients of taps^h: from the shared chain cache when available,
/// otherwise computed into `storage`. Both roads run the same poly::power.
[[nodiscard]] std::span<const double> kernel_power(
    stencil::KernelCache* kernels, const std::vector<double>& taps,
    std::int64_t h, std::vector<double>& storage) {
  if (kernels != nullptr) return kernels->power(static_cast<std::uint64_t>(h));
  storage = poly::power(taps, static_cast<std::uint64_t>(h));
  return storage;
}

/// Largest j with S*u^(2j-T) <= K (the last red cell of the expiry row);
/// -1 if even j = 0 is in the money. The green value is strictly increasing
/// in j, so a binary search suffices.
[[nodiscard]] std::int64_t expiry_boundary(const BopmParams& prm,
                                           const core::LatticeGreen& green) {
  const std::int64_t T = prm.T;
  std::int64_t lo = -1, hi = T;  // invariant: green(lo) <= 0 < green(hi+1)
  if (green.value(T, 0) > 0.0) return -1;
  if (green.value(T, T) <= 0.0) return T;
  while (hi - lo > 1) {
    const std::int64_t mid = lo + (hi - lo) / 2;
    (green.value(T, mid) <= 0.0 ? lo : hi) = mid;
  }
  return lo;
}

struct VanillaResult {
  double price = 0.0;
};

template <bool kParallel, class Payoff>
[[nodiscard]] double rollback_vanilla(const OptionSpec& spec, std::int64_t T,
                                      const Payoff& payoff, bool american) {
  if (T == 0) return std::max(0.0, payoff(0, 0));
  const BopmParams prm = derive_bopm(spec, T);
  std::vector<double> cur(static_cast<std::size_t>(T + 1));
  for (std::int64_t j = 0; j <= T; ++j)
    cur[static_cast<std::size_t>(j)] = std::max(0.0, payoff(T, j));
  if constexpr (!kParallel) {
    // In-place forward sweep: writing G[j] uses the old G[j], G[j+1].
    for (std::int64_t i = T - 1; i >= 0; --i) {
      for (std::int64_t j = 0; j <= i; ++j) {
        const double lin = prm.s0 * cur[static_cast<std::size_t>(j)] +
                           prm.s1 * cur[static_cast<std::size_t>(j + 1)];
        cur[static_cast<std::size_t>(j)] =
            american ? std::max(lin, payoff(i, j)) : lin;
      }
    }
  } else {
    std::vector<double> nxt(cur.size());
    for (std::int64_t i = T - 1; i >= 0; --i) {
      parallel_for_chunks(i + 1, 1024, [&](std::ptrdiff_t lo,
                                           std::ptrdiff_t hi) {
        for (std::ptrdiff_t j = lo; j < hi; ++j) {
          const double lin = prm.s0 * cur[static_cast<std::size_t>(j)] +
                             prm.s1 * cur[static_cast<std::size_t>(j + 1)];
          nxt[static_cast<std::size_t>(j)] =
              american ? std::max(lin, payoff(i, j)) : lin;
        }
      });
      cur.swap(nxt);
    }
  }
  metrics::add_flops(3 * static_cast<std::uint64_t>(T) * (T + 1) / 2);
  metrics::add_bytes(2 * sizeof(double) * static_cast<std::uint64_t>(T) *
                     (T + 1) / 2);
  return cur[0];
}

}  // namespace

core::LatticeRow expiry_row(const BopmParams& prm,
                            const core::LatticeGreen& green) {
  core::LatticeRow row;
  row.i = prm.T;
  row.q = expiry_boundary(prm, green);
  row.red.assign(static_cast<std::size_t>(std::max<std::int64_t>(row.q + 1, 0)),
                 0.0);
  return row;
}

double american_call_fft(const OptionSpec& spec, std::int64_t T,
                         core::SolverConfig cfg,
                         stencil::KernelCache* kernels) {
  if (T == 0) return std::max(0.0, spec.S - spec.K);
  // With Y <= 0 (and R >= 0) early exercise of a call is never optimal and
  // the red/green boundary degenerates; the price is the European one,
  // which the linear FFT path computes exactly.
  if (spec.Y <= 0.0 && spec.R >= 0.0) return european_call_fft(spec, T, kernels);

  const BopmParams prm = derive_bopm(spec, T);
  const CallGreen green(spec, prm);
  core::LatticeSolver solver(kernels, {{prm.s0, prm.s1}, 0}, green, cfg);

  core::LatticeRow row = expiry_row(prm, green);
  // Corollary 2.7's <=1-cell motion is proved from row T-2 downward, and
  // when R > Y the discrete boundary can jump RIGHT off the expiry row (the
  // exercise threshold moves from K to ~(R/Y)K in one step): scan the first
  // two rows in full (see DESIGN.md).
  while (row.i > std::max<std::int64_t>(T - 2, 0))
    row = solver.step_naive(row, /*unbounded_scan=*/true);
  row = solver.descend(std::move(row), 0);
  return row.q >= 0 ? row.red[0] : green.value(0, 0);
}

double american_call_fft(const OptionSpec& spec, std::int64_t T,
                         core::SolverConfig cfg) {
  return american_call_fft(spec, T, cfg, nullptr);
}

double american_call_vanilla(const OptionSpec& spec, std::int64_t T) {
  const BopmParams prm = derive_bopm(spec, T);
  const PowerTable up(prm.log_u, T);
  const auto payoff = [&](std::int64_t i, std::int64_t j) {
    return spec.S * up(2 * j - i) - spec.K;
  };
  return rollback_vanilla<false>(spec, T, payoff, /*american=*/true);
}

double american_call_vanilla_parallel(const OptionSpec& spec, std::int64_t T) {
  const BopmParams prm = derive_bopm(spec, T);
  const PowerTable up(prm.log_u, T);
  const auto payoff = [&](std::int64_t i, std::int64_t j) {
    return spec.S * up(2 * j - i) - spec.K;
  };
  return rollback_vanilla<true>(spec, T, payoff, /*american=*/true);
}

double american_put_vanilla(const OptionSpec& spec, std::int64_t T) {
  const BopmParams prm = derive_bopm(spec, T);
  const PowerTable up(prm.log_u, T);
  const auto payoff = [&](std::int64_t i, std::int64_t j) {
    return spec.K - spec.S * up(2 * j - i);
  };
  return rollback_vanilla<false>(spec, T, payoff, /*american=*/true);
}

double american_put_fft(const OptionSpec& spec, std::int64_t T,
                        core::SolverConfig cfg) {
  // McDonald-Schroder symmetry: P(S, K, R, Y) = C(K, S, Y, R) with the same
  // volatility and expiry (exact on the CRR lattice as well: the lattice of
  // the swapped problem mirrors the original one).
  OptionSpec swapped = spec;
  std::swap(swapped.S, swapped.K);
  std::swap(swapped.R, swapped.Y);
  return american_call_fft(swapped, T, cfg);
}

double american_put_fft_direct(const OptionSpec& spec, std::int64_t T,
                               core::SolverConfig cfg,
                               stencil::KernelCache* kernels) {
  if (T == 0) return std::max(0.0, spec.K - spec.S);
  // With R <= 0 early exercise of a put is never optimal (holding the
  // discounted strike cannot lose); the price is the European one. (The
  // shared cache holds MIRRORED taps, which the European path cannot use.)
  if (spec.R <= 0.0 && spec.Y >= 0.0) return european_put_fft(spec, T);

  const BopmParams prm = derive_bopm(spec, T);
  const MirroredPutGreen green(spec, prm);
  // Mirrored children: j' = i - j swaps the up/down taps. The put's
  // boundary GROWS rightward walking down the lattice (the exercise region
  // shrinks backward in time), so the solver runs in growing mode.
  cfg.drift = core::BoundaryDrift::growing;
  core::LatticeSolver solver(kernels, {{prm.s1, prm.s0}, 0}, green, cfg);

  core::LatticeRow row;
  row.i = T;
  {  // expiry boundary: last j with K - S*u^(T-2j) <= 0; increasing in j.
    if (green.value(T, 0) > 0.0) {
      row.q = -1;
    } else if (green.value(T, T) <= 0.0) {
      row.q = T;
    } else {
      std::int64_t lo = 0, hi = T;
      while (hi - lo > 1) {
        const std::int64_t mid = lo + (hi - lo) / 2;
        (green.value(T, mid) <= 0.0 ? lo : hi) = mid;
      }
      row.q = lo;
    }
  }
  row.red.assign(static_cast<std::size_t>(std::max<std::int64_t>(row.q + 1, 0)),
                 0.0);
  // The discrete boundary jumps right on the first step off the expiry row
  // (the same artifact as the call's, mirrored); scan the first two rows in
  // full before trusting the one-cell motion bound.
  while (row.i > std::max<std::int64_t>(T - 2, 0))
    row = solver.step_naive(row, /*unbounded_scan=*/true);
  row = solver.descend(std::move(row), 0);
  return row.q >= 0 ? row.red[0] : green.value(0, 0);
}

double american_put_fft_direct(const OptionSpec& spec, std::int64_t T,
                               core::SolverConfig cfg) {
  return american_put_fft_direct(spec, T, cfg, nullptr);
}

double european_call_vanilla(const OptionSpec& spec, std::int64_t T) {
  const BopmParams prm = derive_bopm(spec, T);
  const PowerTable up(prm.log_u, T);
  const auto payoff = [&](std::int64_t i, std::int64_t j) {
    return spec.S * up(2 * j - i) - spec.K;
  };
  return rollback_vanilla<false>(spec, T, payoff, /*american=*/false);
}

double european_put_vanilla(const OptionSpec& spec, std::int64_t T) {
  const BopmParams prm = derive_bopm(spec, T);
  const PowerTable up(prm.log_u, T);
  const auto payoff = [&](std::int64_t i, std::int64_t j) {
    return spec.K - spec.S * up(2 * j - i);
  };
  return rollback_vanilla<false>(spec, T, payoff, /*american=*/false);
}

namespace {
template <class Payoff>
[[nodiscard]] double european_fft_impl(const OptionSpec& spec, std::int64_t T,
                                       const Payoff& payoff,
                                       stencil::KernelCache* kernels) {
  if (T == 0) return std::max(0.0, payoff(0, 0));
  const BopmParams prm = derive_bopm(spec, T);
  // A shared chain cache (taps {s0, s1}) serves the T-step power directly.
  std::vector<double> storage;
  const std::span<const double> kernel =
      kernel_power(kernels, {prm.s0, prm.s1}, T, storage);
  double acc = 0.0;
  for (std::int64_t j = 0; j <= T; ++j)
    acc += kernel[static_cast<std::size_t>(j)] * std::max(0.0, payoff(T, j));
  return acc;
}
}  // namespace

double european_call_fft(const OptionSpec& spec, std::int64_t T,
                         stencil::KernelCache* kernels) {
  const BopmParams prm = derive_bopm(spec, T);
  const PowerTable up(prm.log_u, std::max<std::int64_t>(T, 1));
  return european_fft_impl(
      spec, T,
      [&](std::int64_t i, std::int64_t j) {
        return spec.S * up(2 * j - i) - spec.K;
      },
      kernels);
}

double european_call_fft(const OptionSpec& spec, std::int64_t T) {
  return european_call_fft(spec, T, nullptr);
}

double european_put_fft(const OptionSpec& spec, std::int64_t T,
                        stencil::KernelCache* kernels) {
  const BopmParams prm = derive_bopm(spec, T);
  const PowerTable up(prm.log_u, std::max<std::int64_t>(T, 1));
  return european_fft_impl(
      spec, T,
      [&](std::int64_t i, std::int64_t j) {
        return spec.K - spec.S * up(2 * j - i);
      },
      kernels);
}

double european_put_fft(const OptionSpec& spec, std::int64_t T) {
  return european_put_fft(spec, T, nullptr);
}

LowNodes american_call_nodes_fft(const OptionSpec& spec, std::int64_t T,
                                 core::SolverConfig cfg,
                                 stencil::KernelCache* kernels) {
  AMOPT_EXPECTS(T >= 2);
  const BopmParams prm = derive_bopm(spec, T);
  const CallGreen green(spec, prm);
  LowNodes nodes;
  nodes.prm = prm;

  if (spec.Y <= 0.0 && spec.R >= 0.0) {
    // Linear everywhere: evaluate rows 0..2 with kernel powers. All nodes of
    // row i share the (T-i)-step kernel, so compute it once per row rather
    // than once per node — or draw it from the shared chain cache. The
    // expiry payoff row is materialized once and shared by all three rows
    // (it was being re-evaluated through the oracle per node and tap).
    const std::vector<double> taps{prm.s0, prm.s1};
    std::vector<double> s0, s1, s2;
    const std::span<const double> kT = kernel_power(kernels, taps, T, s0);
    const std::span<const double> kT1 = kernel_power(kernels, taps, T - 1, s1);
    const std::span<const double> kT2 = kernel_power(kernels, taps, T - 2, s2);
    std::vector<double> payoff(static_cast<std::size_t>(T + 1));
    for (std::int64_t j = 0; j <= T; ++j)
      payoff[static_cast<std::size_t>(j)] = payoff_expiry(green, T, j);

    if (cfg.conv_policy.path == conv::Policy::Path::fft) {
      // Batched spectral route: all three rows correlate against the SAME
      // payoff row, so its spectrum is transformed once and shared via the
      // convolve_many spectral overload — using
      //   corr(payoff, K)[j] = conv(reverse(payoff), K)[T - j].
      // Engaged only when the caller pins the FFT path: with just six
      // output nodes the direct dot products are O(T) total, cheaper than
      // any transform, so `automatic` keeps them.
      conv::Workspace& ws = conv::thread_workspace();
      std::vector<double> rev(payoff.rbegin(), payoff.rend());
      const std::size_t n =
          next_pow2(static_cast<std::size_t>(2 * T + 1));
      const fft::RealSpectrum pspec =
          conv::kernel_spectrum(rev, n, /*reversed=*/false, ws);
      const std::array<std::span<const double>, 3> inputs{kT, kT1, kT2};
      std::array<std::vector<double>, 3> outs;
      conv::convolve_many(inputs, pspec, outs, ws);
      const auto node = [&](std::size_t row, std::int64_t j) {
        return outs[row][static_cast<std::size_t>(T - j)];
      };
      nodes.g00 = node(0, 0);
      nodes.g10 = node(1, 0);
      nodes.g11 = node(1, 1);
      nodes.g20 = node(2, 0);
      nodes.g21 = node(2, 1);
      nodes.g22 = node(2, 2);
      return nodes;
    }

    const auto node_value = [&](std::span<const double> kernel,
                                std::int64_t j) {
      double acc = 0.0;
      for (std::size_t m = 0; m < kernel.size(); ++m)
        acc += kernel[m] * payoff[static_cast<std::size_t>(j) + m];
      return acc;
    };
    nodes.g00 = node_value(kT, 0);
    nodes.g10 = node_value(kT1, 0);
    nodes.g11 = node_value(kT1, 1);
    nodes.g20 = node_value(kT2, 0);
    nodes.g21 = node_value(kT2, 1);
    nodes.g22 = node_value(kT2, 2);
    return nodes;
  }

  core::LatticeSolver solver(kernels, {{prm.s0, prm.s1}, 0}, green, cfg);
  core::LatticeRow row = expiry_row(prm, green);
  while (row.i > std::max<std::int64_t>(T - 2, 2))
    row = solver.step_naive(row, /*unbounded_scan=*/true);
  row = solver.descend(std::move(row), 2);

  const auto value_at = [&](const core::LatticeRow& r, std::int64_t j) {
    return j <= r.q ? r.red[static_cast<std::size_t>(j)]
                    : green.value(r.i, j);
  };
  nodes.g20 = value_at(row, 0);
  nodes.g21 = value_at(row, 1);
  nodes.g22 = value_at(row, 2);
  row = solver.step_naive(row);
  nodes.g10 = value_at(row, 0);
  nodes.g11 = value_at(row, 1);
  row = solver.step_naive(row);
  nodes.g00 = value_at(row, 0);
  return nodes;
}

LowNodes american_call_nodes_fft(const OptionSpec& spec, std::int64_t T,
                                 core::SolverConfig cfg) {
  return american_call_nodes_fft(spec, T, cfg, nullptr);
}

}  // namespace amopt::pricing::bopm
