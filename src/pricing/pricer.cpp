#include "amopt/pricing/pricer.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <exception>
#include <limits>
#include <stdexcept>
#include <string>
#include <utility>

#include "amopt/core/scratch.hpp"
#include "amopt/core/task_pool.hpp"
#include "amopt/pricing/alo/alo_engine.hpp"
#include "amopt/pricing/api.hpp"
#include "amopt/pricing/bopm.hpp"
#include "amopt/pricing/greeks.hpp"
#include "amopt/pricing/implied_vol.hpp"

namespace amopt::pricing {

std::string_view to_string(Status s) {
  switch (s) {
    case Status::ok: return "ok";
    case Status::unsupported: return "unsupported";
    case Status::failed_to_converge: return "failed-to-converge";
    case Status::error: return "error";
    case Status::overloaded: return "overloaded";
    case Status::deadline_exceeded: return "deadline-exceeded";
  }
  return "?";
}

Pricer::Pricer(PricerConfig cfg) : cfg_(cfg) {
  if (cfg_.max_kernel_caches == 0) cfg_.max_kernel_caches = 1;
  if (cfg_.max_transient_kernel_caches == 0)
    cfg_.max_transient_kernel_caches = 1;
  if (cfg_.max_spectrum_bytes > 0)
    spectrum_budget_ =
        std::make_shared<stencil::SpectrumBudget>(cfg_.max_spectrum_bytes);
}

bool Pricer::supports(Model m, Right r, Style s, Engine e) noexcept {
  if (s == Style::european) {
    // The facade maps every non-fft engine to the vanilla reference, so any
    // engine value is accepted where the (model, right) pair has a pricer.
    switch (m) {
      case Model::bopm: return true;
      case Model::topm: return r == Right::call;
      case Model::bsm: return r == Right::put;
    }
    return false;
  }
  switch (m) {
    case Model::bopm:
      if (r == Right::call) return e != Engine::boundary;  // all six lattices
      return e == Engine::fft || e == Engine::vanilla;
    case Model::topm:
      if (r == Right::call)
        return e == Engine::fft || e == Engine::vanilla ||
               e == Engine::vanilla_parallel;
      return e == Engine::fft || e == Engine::vanilla;
    case Model::bsm:
      // The boundary (ALO) engine is the one American BSM path that serves
      // BOTH rights (calls via put-call symmetry).
      if (e == Engine::boundary) return true;
      return r == Right::put &&
             (e == Engine::fft || e == Engine::vanilla ||
              e == Engine::vanilla_parallel);
  }
  return false;
}

bool Pricer::supports(Model m, Right r, Style s, Engine e,
                      unsigned compute) noexcept {
  if (!supports(m, r, s, e)) return false;
  if ((compute & Compute::greeks) != 0u) {
    // Greeks ride on the BOPM American fft pricers (both rights); the
    // other models have no sensitivity path yet.
    if (m != Model::bopm || s != Style::american || e != Engine::fft)
      return false;
  }
  if ((compute & Compute::implied_vol) != 0u) {
    // Implied vol inverts through BOPM American fft (the lattice path) or
    // through the boundary engine for BSM American vanillas, whose
    // microsecond re-quotes are what make per-tick inversion cheap.
    const bool lattice_iv =
        m == Model::bopm && s == Style::american && e == Engine::fft;
    const bool boundary_iv =
        m == Model::bsm && s == Style::american && e == Engine::boundary;
    if (!lattice_iv && !boundary_iv) return false;
  }
  return true;
}

void Pricer::evict_lru(std::vector<Entry>& tier, std::size_t cap) {
  // Evict the least-recently-used group when the tier overflows. Batches in
  // flight hold their own shared_ptr copies, so eviction only drops warm
  // state for FUTURE lookups — it never tears a cache out from under a
  // running pricing.
  if (tier.size() <= cap) return;
  const auto victim = std::min_element(
      tier.begin(), tier.end(),
      [](const Entry& a, const Entry& b) { return a.last_used < b.last_used; });
  tier.erase(victim);
}

Pricer::CachePtr Pricer::cache_for(const stencil::LinearStencil& st,
                                   Tier tier) {
  if (st.taps.empty()) return nullptr;
  std::lock_guard<std::mutex> lock(mu_);
  const auto matches = [&](const Entry& e) {
    const stencil::LinearStencil& key = e.cache->stencil();
    return key.left == st.left && key.taps == st.taps;
  };
  // Base tier first: a trial vol that happens to coincide with a chain's
  // own tap group must refresh (and use) the pinned entry, not duplicate it.
  for (Entry& e : base_caches_) {
    if (matches(e)) {
      e.last_used = ++tick_;
      ++hits_;
      return e.cache;
    }
  }
  for (auto it = transient_caches_.begin(); it != transient_caches_.end();
       ++it) {
    if (matches(*it)) {
      it->last_used = ++tick_;
      ++hits_;
      CachePtr out = it->cache;
      if (tier == Tier::base) {
        // The group graduated from trial-vol churn to a request's own tap
        // group: move it to the protected tier.
        base_caches_.push_back(std::move(*it));
        transient_caches_.erase(it);
        evict_lru(base_caches_, cfg_.max_kernel_caches);
      }
      return out;
    }
  }
  ++misses_;
  Entry entry;
  entry.cache = std::make_shared<stencil::KernelCache>(st);
  if (spectrum_budget_) entry.cache->set_spectrum_budget(spectrum_budget_);
  entry.last_used = ++tick_;
  CachePtr out = entry.cache;
  if (tier == Tier::base) {
    base_caches_.push_back(std::move(entry));
    evict_lru(base_caches_, cfg_.max_kernel_caches);
  } else {
    transient_caches_.push_back(std::move(entry));
    evict_lru(transient_caches_, cfg_.max_transient_kernel_caches);
  }
  return out;
}

namespace {

/// Everything a single price evaluation depends on, serialized: the spec,
/// the discretization, the dispatch selection, and the resolved solver
/// configuration. Two evaluations with equal keys return bit-identical
/// prices (at a fixed SIMD dispatch level), which is what lets the greeks
/// warm-start reuse stored values exactly.
[[nodiscard]] std::string eval_key(const OptionSpec& spec,
                                   const PricingRequest& req,
                                   const core::SolverConfig& cfg) {
  const double fields[] = {spec.S, spec.K, spec.R,
                           spec.V, spec.Y, spec.expiry_years};
  std::string key(reinterpret_cast<const char*>(fields), sizeof(fields));
  const std::int64_t tags[] = {req.T,
                               static_cast<std::int64_t>(req.model),
                               static_cast<std::int64_t>(req.right),
                               static_cast<std::int64_t>(req.style),
                               static_cast<std::int64_t>(req.engine),
                               static_cast<std::int64_t>(cfg.base_case),
                               cfg.task_cutoff,
                               static_cast<std::int64_t>(cfg.parallel),
                               static_cast<std::int64_t>(cfg.drift),
                               static_cast<std::int64_t>(cfg.conv_policy.path),
                               static_cast<std::int64_t>(cfg.alo_nodes),
                               static_cast<std::int64_t>(cfg.alo_quad),
                               static_cast<std::int64_t>(cfg.alo_iterations)};
  key.append(reinterpret_cast<const char*>(tags), sizeof(tags));
  return key;
}

}  // namespace

double Pricer::price_cached_memo(const OptionSpec& spec,
                                 const PricingRequest& req,
                                 const core::SolverConfig& cfg) {
  if (!cfg_.warm_start_greeks) return price_cached(spec, req, cfg);
  const std::string key = eval_key(spec, req, cfg);
  {
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = bump_prices_.find(key);
    if (it != bump_prices_.end()) {
      ++bump_hits_;
      return it->second;
    }
  }
  const double p = price_cached(spec, req, cfg);
  std::lock_guard<std::mutex> lock(mu_);
  // Same bounded one-victim eviction as the IV warm-root store.
  if (bump_prices_.size() >= 65536 && !bump_prices_.contains(key))
    bump_prices_.erase(bump_prices_.begin());
  bump_prices_[key] = p;
  return p;
}

std::shared_ptr<const alo::NodeTable> Pricer::node_table_for(
    const core::SolverConfig& cfg) {
  const std::uint64_t key =
      (static_cast<std::uint64_t>(
           static_cast<std::uint32_t>(std::clamp(cfg.alo_nodes, 3, 64)))
       << 32) |
      static_cast<std::uint32_t>(std::clamp(cfg.alo_quad, 3, 401));
  {
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = node_tables_.find(key);
    if (it != node_tables_.end()) return it->second;
  }
  // Build outside the lock (pure function of the knobs: a racing duplicate
  // build is wasted work, never a wrong table).
  auto tbl = alo::build_node_table(cfg.alo_nodes, cfg.alo_quad);
  std::lock_guard<std::mutex> lock(mu_);
  return node_tables_.try_emplace(key, std::move(tbl)).first->second;
}

double Pricer::price_cached(const OptionSpec& spec, const PricingRequest& req,
                            const core::SolverConfig& cfg) {
  if (req.engine == Engine::boundary && req.model == Model::bsm &&
      req.style == Style::american) {
    // Boundary quotes (and every IV trial riding on them) draw the node
    // table from the session cache: steady state is pure evaluation.
    const auto tbl = node_table_for(cfg);
    return alo::american_price(spec, req.right, cfg, tbl.get());
  }
  stencil::KernelCache* kernels = nullptr;
  CachePtr hold;  // keeps the group alive across a concurrent LRU eviction
  if (req.engine == Engine::fft) {
    // Bumped/trial specs land in the transient tier so recalibration churn
    // cannot evict the chains' own (base-tier) groups.
    hold = cache_for(detail::shared_cache_stencil(spec, req.T, req.model,
                                                  req.right, req.style,
                                                  req.engine),
                     Tier::transient);
    kernels = hold.get();
  }
  return detail::price_with_cache(spec, req.T, req.model, req.right, req.style,
                                  req.engine, cfg, kernels);
}

namespace {

/// The request's compute mask with the empty-mask default applied — the
/// single definition of "what does this request want".
[[nodiscard]] unsigned effective_compute(const PricingRequest& req) {
  return req.compute != 0u ? req.compute : Compute::price;
}

/// Request validation, mirroring the derive_* preconditions: those are
/// enforced with aborting contract checks (a violation inside a solver
/// means corrupted invariants), but a bad QUOTE arriving at the session
/// boundary is an expected input and must become a per-item Status, never
/// a process abort. Returns an error message, empty when valid. NaNs fail
/// the comparisons and are caught too.
[[nodiscard]] std::string validate_request(const PricingRequest& req) {
  const unsigned compute = effective_compute(req);
  if ((compute &
       ~(Compute::price | Compute::greeks | Compute::implied_vol)) != 0u)
    return "amopt: unknown bits in the compute mask";
  // Finiteness first: a NaN or Inf in ANY numeric field must become a
  // per-item error here, at the session boundary, instead of propagating
  // through exp/log into the solvers and coming back out as a NaN price
  // with Status::ok. The positivity comparisons below reject NaN too, but
  // only for the fields they cover — R and Y are sign-free, so without an
  // explicit finiteness check a NaN rate flows straight into the lattice
  // drift.
  if (!std::isfinite(req.spec.S)) return "amopt: non-finite spot S";
  if (!std::isfinite(req.spec.K)) return "amopt: non-finite strike K";
  if (!std::isfinite(req.spec.R)) return "amopt: non-finite rate R";
  if (!std::isfinite(req.spec.V)) return "amopt: non-finite volatility V";
  if (!std::isfinite(req.spec.Y)) return "amopt: non-finite yield Y";
  if (!std::isfinite(req.spec.expiry_years))
    return "amopt: non-finite expiry_years";
  if (!(req.spec.S > 0.0) || !(req.spec.K > 0.0) || !(req.spec.V > 0.0) ||
      !(req.spec.expiry_years > 0.0))
    return "amopt: invalid option spec (need S, K, V, expiry_years > 0)";
  // The lattice models price T == 0 as intrinsic value; the BSM FDM grid
  // needs at least one step (derive_bsm contract).
  if (req.T < 0 || (req.model == Model::bsm && req.T < 1))
    return req.model == Model::bsm ? "amopt: bsm needs T >= 1"
                                   : "amopt: invalid step count T (need T >= 0)";
  if ((compute & Compute::greeks) != 0u && req.T < 2)
    return "amopt: greeks need T >= 2";
  if ((compute & Compute::implied_vol) != 0u) {
    if (req.T < 1) return "amopt: implied vol needs T >= 1";
    if (!std::isfinite(req.target_price))
      return "amopt: non-finite implied-vol target price";
    // Mirrors the free functions' AMOPT_EXPECTS on the bracket; NaNs fail.
    // Infinite vol_hi would feed Inf trial vols into the pricers.
    if (!(req.iv.vol_lo > 0.0) || !(req.iv.vol_hi > req.iv.vol_lo) ||
        !std::isfinite(req.iv.vol_hi))
      return "amopt: invalid implied-vol bracket (need 0 < vol_lo < vol_hi)";
  }
  return {};
}

}  // namespace

void Pricer::run_item(const PricingRequest& req, stencil::KernelCache* kernels,
                      PricingResult& out) {
  const unsigned compute = effective_compute(req);
  if (!supports(req.model, req.right, req.style, req.engine)) {
    out.status = Status::unsupported;
    out.message =
        detail::unsupported_message(req.model, req.right, req.style, req.engine);
    return;
  }
  if (!supports(req.model, req.right, req.style, req.engine, compute)) {
    out.status = Status::unsupported;
    out.message = "amopt: greeks need bopm/american/fft; implied vol needs "
                  "bopm/american/fft or bsm/american/boundary (requested " +
                  std::string(to_string(req.model)) + "/" +
                  std::string(to_string(req.style)) + "/" +
                  std::string(to_string(req.engine)) + ")";
    return;
  }

  const core::SolverConfig cfg = req.solver.value_or(cfg_.solver);
  out.status = Status::ok;

  if ((compute & Compute::greeks) != 0u) {
    // Every finite-difference leg flows through the session's bumped-price
    // store (the greeks warm-start): a repeated greeks request over an
    // unchanged contract replays its legs instead of re-pricing them.
    const RepriceFn reprice = [&](const OptionSpec& s) {
      return price_cached_memo(s, req, cfg);
    };
    out.greeks =
        req.right == Right::call
            ? american_call_greeks_bopm(req.spec, req.T, cfg, reprice, kernels)
            : american_put_greeks_bopm(req.spec, req.T, cfg, reprice);
    out.price = out.greeks.price;
  }

  if ((compute & Compute::price) != 0u) {
    // The put greeks' base evaluation IS price_with_cache of the same spec
    // through the same session caches (bit-identical), so don't pay for it
    // twice. The call's greeks price is the low-node g00 of a different
    // descent split, so the price target keeps its own authoritative run.
    const bool priced_by_greeks =
        (compute & Compute::greeks) != 0u && req.right == Right::put;
    if (!priced_by_greeks) {
      if (req.engine == Engine::boundary && req.model == Model::bsm &&
          req.style == Style::american)
        // Through the session's node-table cache (price_cached routes
        // boundary items there; no kernel cache applies to this engine).
        out.price = price_cached(req.spec, req, cfg);
      else
        out.price = detail::price_with_cache(req.spec, req.T, req.model,
                                             req.right, req.style, req.engine,
                                             cfg, kernels);
    }
  }

  if ((compute & Compute::implied_vol) != 0u) {
    ImpliedVolConfig ivc = req.iv;
    ivc.T = req.T;  // the request's discretization governs every evaluation
    detail::clamp_vol_bracket(req.spec, ivc);
    run_implied_vol(req, ivc, cfg, out);
    if (!out.implied_vol.converged) {
      out.status = Status::failed_to_converge;
      out.message = "amopt: implied vol did not converge (target " +
                    std::to_string(req.target_price) + " after " +
                    std::to_string(out.implied_vol.iterations) +
                    " iterations)";
    }
  }
}

namespace {

/// Contract identity for the warm-root store: everything an implied-vol
/// evaluation depends on except the vol being solved for and the quote.
/// The (clamped) bracket is part of the key — a caller narrowing vol_lo /
/// vol_hi must not inherit a root that was admissible under wider bounds —
/// and so is the resolved solver configuration, because the stored prices
/// were produced under it (different configs agree only to rounding, and
/// the zero-evaluation accept must never lean on a price the current
/// configuration did not produce).
[[nodiscard]] std::string iv_key(const PricingRequest& req,
                                 const ImpliedVolConfig& ivc,
                                 const core::SolverConfig& cfg) {
  const double fields[] = {req.spec.S,          req.spec.K, req.spec.R,
                           req.spec.Y,          req.spec.expiry_years,
                           ivc.vol_lo,          ivc.vol_hi};
  std::string key(reinterpret_cast<const char*>(fields), sizeof(fields));
  const std::int64_t tags[] = {req.T,
                               static_cast<std::int64_t>(req.model),
                               static_cast<std::int64_t>(req.right),
                               static_cast<std::int64_t>(req.style),
                               static_cast<std::int64_t>(req.engine),
                               static_cast<std::int64_t>(cfg.base_case),
                               cfg.task_cutoff,
                               static_cast<std::int64_t>(cfg.parallel),
                               static_cast<std::int64_t>(cfg.drift),
                               static_cast<std::int64_t>(cfg.conv_policy.path),
                               static_cast<std::int64_t>(cfg.alo_nodes),
                               static_cast<std::int64_t>(cfg.alo_quad),
                               static_cast<std::int64_t>(cfg.alo_iterations)};
  key.append(reinterpret_cast<const char*>(tags), sizeof(tags));
  return key;
}

}  // namespace

void Pricer::run_implied_vol(const PricingRequest& req,
                             const ImpliedVolConfig& ivc,
                             const core::SolverConfig& cfg,
                             PricingResult& out) {
  // Record the last two distinct (vol, price) samples of this inversion so
  // a future tick on the same contract can warm-start its secant. Prices
  // are genuine pricer outputs independent of the quote, so reusing them
  // is exact, not an approximation.
  WarmRoot trace;
  int traced = 0;
  const auto price_of_vol = [&](double v) {
    OptionSpec s = req.spec;
    s.V = v;
    const double p = price_cached(s, req, cfg);
    if (traced == 0 || v != trace.v0) {
      trace.v1 = trace.v0;
      trace.p1 = trace.p0;
      trace.v0 = v;
      trace.p0 = p;
      ++traced;
    }
    return p;
  };

  const std::string key = iv_key(req, ivc, cfg);
  WarmRoot warm;
  bool have_warm = false;
  if (cfg_.warm_start_iv) {
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = warm_roots_.find(key);
    if (it != warm_roots_.end()) {
      warm = it->second;
      // Belt and braces on top of the keyed bracket: seeds outside the
      // current bounds would corrupt the tightening logic.
      have_warm = warm.v0 > ivc.vol_lo && warm.v0 < ivc.vol_hi &&
                  warm.v1 > ivc.vol_lo && warm.v1 < ivc.vol_hi;
    }
  }

  if (!have_warm) {
    // Cold path: the exact bracketed Newton of the free functions
    // (bit-identical iterates; asserted in tests/test_pricer.cpp).
    out.implied_vol =
        detail::invert_implied_vol(price_of_vol, req.target_price, ivc);
  } else {
    // Warm path: the seeded secant of implied_vol.cpp — a quote tick
    // typically closes in 1-3 evaluations instead of the cold ~12, and
    // anything the warm budget cannot close falls back to the cold
    // bracketed Newton with its cheap out-of-range early exit.
    out.implied_vol = detail::invert_implied_vol_warm(
        price_of_vol, req.target_price, ivc, warm.v0, warm.p0, warm.v1,
        warm.p1);
  }

  if (out.implied_vol.converged && cfg_.warm_start_iv && traced >= 2) {
    std::lock_guard<std::mutex> lock(mu_);
    // Bounded one-victim-at-a-time eviction (arbitrary hash-order victim):
    // keeps memory flat on a rotating contract universe without ever
    // dropping the whole warm state at once.
    if (warm_roots_.size() >= 65536 && !warm_roots_.contains(key))
      warm_roots_.erase(warm_roots_.begin());
    warm_roots_[key] = trace;
  }
}

namespace {

/// Truncate x to its leading `bits` significand bits (toward zero). The
/// normalized dt is truncated to 32 bits so that dt * T is EXACTLY
/// representable for every T < 2^21 — then expiry' = dt * T divides back to
/// dt bit for bit in derive_bopm/derive_topm/derive_bsm's expiry/T, which
/// is the channel that makes the group's tap vectors coincide. (Nudging
/// the expiry a few ulps instead does NOT work: one ulp of expiry moves
/// fl(expiry/T) by ~2 ulps of dt, so a full-precision dt target is often
/// unreachable.) The truncation perturbs dt by < 2^-32 relative — orders
/// below the lattice's own discretization error.
[[nodiscard]] double truncate_significand(double x, int bits) {
  int exp = 0;
  const double m = std::frexp(x, &exp);  // m in [0.5, 1)
  const double scale = std::ldexp(1.0, bits);
  return std::ldexp(std::floor(m * scale) / scale, exp);
}

constexpr std::int64_t kMaxNormalizedT = std::int64_t{1} << 21;

/// Logarithmic bucket id for one sharing-key field at relative tolerance
/// `quantum`: values share a bucket only when their ratio is below
/// (1 + quantum), sign-separated, with 0 matching only exact 0. floor()
/// semantics make the bucketing conservative — two values straddling a
/// bucket boundary never share even if pairwise closer than the quantum —
/// and order-independent (no pairwise clustering, so the grouping cannot
/// depend on batch order).
[[nodiscard]] std::int64_t quantize_field(double x, double quantum) {
  if (x == 0.0) return std::numeric_limits<std::int64_t>::min();
  const std::int64_t bucket = static_cast<std::int64_t>(
      std::floor(std::log(std::abs(x)) / std::log1p(quantum)));
  // Fold the sign in without colliding adjacent buckets: the bucket index
  // of any finite double is far below 2^61 in magnitude.
  return x > 0.0 ? bucket : (std::int64_t{1} << 62) + bucket;
}

}  // namespace

void Pricer::normalize_expiries(std::vector<PricingRequest>& reqs,
                                double quantum) {
  // Group by everything that shapes the derived taps except the time step:
  // model/right/style (the lattice family) and the spec's rate, vol, and
  // yield. Strike and spot never enter the taps, so an ordinary
  // strikes-by-expiries chain collapses into one group per (model, vol).
  // quantum == 0 keys on the exact field bytes (the historical grouping,
  // byte for byte); quantum > 0 keys on logarithmic buckets so
  // near-identical legs (recalibration-tick vol drift) group together.
  std::unordered_map<std::string, std::vector<std::size_t>> groups;
  for (std::size_t i = 0; i < reqs.size(); ++i) {
    const PricingRequest& q = reqs[i];
    if (q.engine != Engine::fft || q.T < 1) continue;
    if (!(q.spec.expiry_years > 0.0) || !(q.spec.V > 0.0)) continue;
    std::string key;
    if (quantum > 0.0) {
      const std::int64_t buckets[] = {quantize_field(q.spec.R, quantum),
                                      quantize_field(q.spec.V, quantum),
                                      quantize_field(q.spec.Y, quantum)};
      key.assign(reinterpret_cast<const char*>(buckets), sizeof(buckets));
    } else {
      const double fields[] = {q.spec.R, q.spec.V, q.spec.Y};
      key.assign(reinterpret_cast<const char*>(fields), sizeof(fields));
    }
    const std::int64_t tags[] = {static_cast<std::int64_t>(q.model),
                                 static_cast<std::int64_t>(q.right),
                                 static_cast<std::int64_t>(q.style)};
    key.append(reinterpret_cast<const char*>(tags), sizeof(tags));
    groups[key].push_back(i);
  }
  for (auto& [key, members] : groups) {
    if (members.size() < 2) continue;
    if (quantum > 0.0) {
      // Snap the group's (R, V, Y) onto one representative so the derived
      // taps coincide bit for bit — sharing a kernel cache entry requires
      // equal taps, not merely close ones. The representative is the
      // lexicographically smallest member tuple: order-independent, and an
      // actually-requested spec (no synthesized midpoint). Each field moves
      // by at most `quantum` relative (the bucket width); a group of
      // identical tuples snaps onto itself, changing nothing.
      const auto tuple_of = [&reqs](std::size_t i) {
        return std::array<double, 3>{reqs[i].spec.R, reqs[i].spec.V,
                                     reqs[i].spec.Y};
      };
      std::size_t rep = members.front();
      for (const std::size_t i : members)
        if (tuple_of(i) < tuple_of(rep)) rep = i;
      const std::array<double, 3> snap = tuple_of(rep);
      for (const std::size_t i : members) {
        reqs[i].spec.R = snap[0];
        reqs[i].spec.V = snap[1];
        reqs[i].spec.Y = snap[2];
      }
    }
    // The group's finest step: normalization only ever refines (T never
    // decreases), so no item gets a coarser price than it asked for. The
    // 32-bit truncation makes dt* * T exact below kMaxNormalizedT.
    double dt_star = std::numeric_limits<double>::infinity();
    for (const std::size_t i : members)
      dt_star = std::min(dt_star, reqs[i].spec.expiry_years /
                                      static_cast<double>(reqs[i].T));
    dt_star = truncate_significand(dt_star, 32);
    if (!(dt_star > 0.0)) continue;
    for (const std::size_t i : members) {
      PricingRequest& q = reqs[i];
      const std::int64_t Tn =
          std::llround(q.spec.expiry_years / dt_star);
      // Guard against pathological mixes (a 5-year leg normalized to a
      // 1-week leg's dt would inflate its lattice unboundedly): such items
      // keep their own discretization and simply do not share.
      if (Tn < q.T || Tn > 8 * q.T || Tn >= kMaxNormalizedT) continue;
      const double e = dt_star * static_cast<double>(Tn);  // exact product
      if (!(e > 0.0) || e / static_cast<double>(Tn) != dt_star) continue;
      q.T = Tn;
      q.spec.expiry_years = e;  // |e - requested| <= dt*/2 + ulps: sub-step
    }
  }
}

std::vector<PricingResult> Pricer::price_many(
    std::span<const PricingRequest> requests) {
  std::vector<PricingResult> out;
  BatchScratch scratch;
  price_many_into(requests, out, scratch);
  return out;
}

void Pricer::price_many_into(std::span<const PricingRequest> requests,
                             std::vector<PricingResult>& out,
                             BatchScratch& scratch) {
  out.assign(requests.size(), PricingResult{});
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++batches_;
  }
  if (requests.empty()) return;

  // Opt-in cross-expiry kernel sharing: renormalize a copy of the batch so
  // commensurate expiries derive bit-equal taps and the grouping below
  // lands them in ONE registry entry (see PricerConfig).
  if (cfg_.share_kernels_across_expiries) {
    scratch.normalized.assign(requests.begin(), requests.end());
    normalize_expiries(scratch.normalized, cfg_.share_quantum);
    requests = scratch.normalized;
  }

  // Group phase (serial): resolve each item's tap-group cache up front so
  // the fan-out threads share warm groups instead of racing to build them.
  // The CachePtr copies keep every group alive for the whole batch even if
  // the LRU rotates meanwhile. Deriving model parameters can itself reject
  // a bad quote (e.g. a vol too small for a valid CRR lattice) — that must
  // surface as that item's Status, not as a batch-wide throw.
  std::vector<CachePtr>& cache_of = scratch.cache_of;
  cache_of.assign(requests.size(), nullptr);
  for (std::size_t i = 0; i < requests.size(); ++i) {
    const PricingRequest& q = requests[i];
    std::string invalid = validate_request(q);
    if (!invalid.empty()) {
      out[i].status = Status::error;
      // Materialize the exception too: PricingResult documents `error` as
      // set whenever status == error, and callers may rethrow it.
      out[i].error = std::make_exception_ptr(std::invalid_argument(invalid));
      out[i].message = std::move(invalid);
      continue;
    }
    if (q.engine != Engine::fft || q.T < 1) continue;
    const unsigned compute = effective_compute(q);
    // Items run_item will reject must not pollute the LRU with a group.
    if (!supports(q.model, q.right, q.style, q.engine, compute)) continue;
    // Implied-vol-only items never evaluate the request's own spec.V, so a
    // prefetched group would just pollute the LRU; their trial vols fetch
    // their groups through price_cached instead.
    if ((compute & (Compute::price | Compute::greeks)) == 0u) continue;
    try {
      cache_of[i] = cache_for(
          detail::shared_cache_stencil(q.spec, q.T, q.model, q.right, q.style,
                                       q.engine),
          Tier::base);
    } catch (const std::exception& e) {
      out[i].status = Status::error;
      out[i].message = e.what();
      out[i].error = std::current_exception();
    }
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    requests_ += requests.size();
  }

  const auto serve = [&](std::size_t i) {
    if (out[i].status == Status::error) return;  // failed in the group phase
    try {
      run_item(requests[i], cache_of[i].get(), out[i]);
    } catch (const std::exception& e) {
      out[i].status = Status::error;
      out[i].message = e.what();
      out[i].error = std::current_exception();
    } catch (...) {
      out[i].status = Status::error;
      out[i].message = "amopt: unknown error";
      out[i].error = std::current_exception();
    }
  };

  // Per-thread batch epilogue: record the arena footprint this thread
  // reached (max over the session -> Stats::scratch_high_water_bytes), then
  // run the opt-in between-batches decay — no frames are live here, so trim
  // actually releases. Atomics, not mu_: every fan-out thread runs this at
  // the join and must not serialize on the registry lock.
  const auto finish_thread = [&] {
    const std::size_t bytes =
        core::thread_scratch().capacity() * sizeof(double);
    std::size_t seen = scratch_high_water_.load(std::memory_order_relaxed);
    while (bytes > seen && !scratch_high_water_.compare_exchange_weak(
                               seen, bytes, std::memory_order_relaxed)) {
    }
    if (cfg_.scratch_trim_bytes > 0 &&
        core::thread_scratch().trim(cfg_.scratch_trim_bytes))
      trim_events_.fetch_add(1, std::memory_order_relaxed);
  };

  auto& pool = core::TaskPool::instance();
  if (cfg_.parallel && requests.size() > 1 && cfg_.threads != 1 &&
      pool.concurrency() > 1) {
    // Parallelize across items (counter-scheduled, like the old
    // schedule(dynamic,1)); the inner solvers see the enclosing region and
    // stay serial, so one item never oversubscribes the machine. Every
    // executor runs finish_thread at the join, on its own thread.
    pool.for_each(static_cast<std::ptrdiff_t>(requests.size()), serve,
                  finish_thread, cfg_.threads);
  } else {
    // Single item (or serial session): keep the solver's own internal
    // parallelism available, like a legacy scalar price() call.
    for (std::size_t i = 0; i < requests.size(); ++i) serve(i);
    finish_thread();
  }
}

PricingResult Pricer::price_one(const PricingRequest& request) {
  return price_many({&request, 1}).front();
}

namespace {

[[nodiscard]] std::vector<PricingRequest> with_compute(
    std::span<const PricingRequest> requests, unsigned compute) {
  std::vector<PricingRequest> reqs(requests.begin(), requests.end());
  for (PricingRequest& q : reqs) q.compute = compute;
  return reqs;
}

}  // namespace

std::vector<PricingResult> Pricer::greeks_many(
    std::span<const PricingRequest> requests) {
  return price_many(with_compute(requests, Compute::greeks));
}

std::vector<PricingResult> Pricer::implied_vol_many(
    std::span<const PricingRequest> requests) {
  return price_many(with_compute(requests, Compute::implied_vol));
}

Pricer::Stats Pricer::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  Stats s;
  s.base_kernel_caches = base_caches_.size();
  s.transient_kernel_caches = transient_caches_.size();
  s.kernel_caches = s.base_kernel_caches + s.transient_kernel_caches;
  s.node_tables = node_tables_.size();
  s.cache_hits = hits_;
  s.cache_misses = misses_;
  s.requests = requests_;
  s.warm_roots = warm_roots_.size();
  s.warm_bump_prices = bump_prices_.size();
  s.bump_price_hits = bump_hits_;
  s.batches = batches_;
  s.scratch_high_water_bytes =
      scratch_high_water_.load(std::memory_order_relaxed);
  s.scratch_trim_events = trim_events_.load(std::memory_order_relaxed);
  s.scratch_total_bytes = core::aggregate_scratch().total_bytes;
  if (spectrum_budget_) {
    const stencil::SpectrumBudget::Stats b = spectrum_budget_->stats();
    s.spectrum_bytes = b.bytes;
    s.spectrum_entries = b.entries;
    s.spectrum_evictions = b.evictions;
  }
  return s;
}

void Pricer::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  base_caches_.clear();
  transient_caches_.clear();
  node_tables_.clear();
  warm_roots_.clear();
  bump_prices_.clear();
  tick_ = hits_ = misses_ = requests_ = bump_hits_ = batches_ = 0;
  scratch_high_water_.store(0, std::memory_order_relaxed);
  trim_events_.store(0, std::memory_order_relaxed);
}

}  // namespace amopt::pricing
