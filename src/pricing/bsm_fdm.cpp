#include "amopt/pricing/bsm_fdm.hpp"

#include <algorithm>
#include <cmath>

#include "amopt/common/assert.hpp"
#include "amopt/common/parallel.hpp"
#include "amopt/metrics/counters.hpp"
#include "amopt/poly/poly_power.hpp"

namespace amopt::pricing::bsm {

namespace {

constexpr std::int64_t kPad = 4;

/// Naive-projection tail length at the apex of the solution cone.
[[nodiscard]] std::int64_t tail_steps(const core::SolverConfig& cfg) {
  return std::max<std::int64_t>(cfg.base_case, 8);
}

}  // namespace

PutGreen::PutGreen(double ds, std::int64_t span)
    : table_(static_cast<std::size_t>(2 * span + 1)), ds_(ds), span_(span) {
  AMOPT_EXPECTS(span >= 0);
  for (std::int64_t k = -span; k <= span; ++k)
    table_[static_cast<std::size_t>(k + span)] =
        -std::expm1(static_cast<double>(k) * ds);
}

FdmLayout make_layout(const BsmParams& prm) {
  FdmLayout lay;
  const double k_real = prm.s_target / prm.ds;
  lay.k_read = static_cast<std::int64_t>(std::floor(k_real));
  lay.theta = k_real - static_cast<double>(lay.k_read);
  // Need: margin kr0 - f0 >= 2T for the recursion (f0 = 0) and
  // kr0 - T >= k_read + 1 + pad so the read cells survive the cone erosion.
  lay.kr0 = std::max<std::int64_t>(2 * prm.T, lay.k_read + 1 + prm.T + kPad);
  return lay;
}

double american_put_fft(const OptionSpec& spec, std::int64_t T,
                        core::SolverConfig cfg,
                        stencil::KernelCache* kernels) {
  const BsmParams prm = derive_bsm(spec, T);
  const FdmLayout lay = make_layout(prm);
  const PutGreen green(prm.ds, lay.kr0 + kPad);
  core::FdmSolver solver(kernels, {{prm.b, prm.c, prm.a}, -1}, green, cfg);

  core::FdmRow row;
  row.n = 0;
  row.f = 0;  // v0(k) = max(1 - e^{k ds}, 0): green exactly for k <= 0
  row.kr = lay.kr0;
  row.red.assign(static_cast<std::size_t>(row.kr - row.f), 0.0);

  std::int64_t remaining = T;
  // The first rows off the payoff are not yet governed by the free-boundary
  // dynamics: for Y > R the discrete boundary jumps to ~ln(R/Y)/ds in one
  // step. Re-discover it with full scans before trusting Theorem 4.3.
  while (remaining > 0 && T - remaining < 2) {
    row = solver.step_naive(row, /*unbounded_scan=*/true);
    --remaining;
  }
  const std::int64_t tail = tail_steps(cfg);
  while (remaining > tail) {
    std::int64_t L = (remaining + 1) / 2;
    L = std::min(L, (row.kr - row.f) / 2);
    AMOPT_ENSURES(L >= 1);
    row = solver.advance(std::move(row), L);
    remaining -= L;
  }
  while (remaining > 0) {
    row = solver.step_naive(row);
    --remaining;
  }

  const auto value_at = [&](std::int64_t k) {
    AMOPT_EXPECTS(k <= row.kr);
    return k <= row.f ? green.value(row.n, k)
                      : row.red[static_cast<std::size_t>(k - row.f - 1)];
  };
  const double v = (1.0 - lay.theta) * value_at(lay.k_read) +
                   lay.theta * value_at(lay.k_read + 1);
  return spec.K * v;
}

double american_put_fft(const OptionSpec& spec, std::int64_t T,
                        core::SolverConfig cfg) {
  return american_put_fft(spec, T, cfg, nullptr);
}

namespace {

template <bool kParallel>
[[nodiscard]] double vanilla_impl(const OptionSpec& spec, std::int64_t T,
                                  bool american) {
  const BsmParams prm = derive_bsm(spec, T);
  const FdmLayout lay = make_layout(prm);
  // Symmetric cone around the read point; one cell erodes per step/side.
  const std::int64_t klo = lay.k_read - T - kPad;
  const std::int64_t khi = lay.k_read + 1 + T + kPad;
  const std::int64_t width = khi - klo + 1;

  std::vector<double> payoff(static_cast<std::size_t>(width));
  for (std::int64_t k = klo; k <= khi; ++k)
    payoff[static_cast<std::size_t>(k - klo)] =
        -std::expm1(static_cast<double>(k) * prm.ds);
  std::vector<double> cur(static_cast<std::size_t>(width));
  for (std::int64_t t = 0; t < width; ++t)
    cur[static_cast<std::size_t>(t)] =
        std::max(payoff[static_cast<std::size_t>(t)], 0.0);

  const double b = prm.b, c = prm.c, a = prm.a;
  if constexpr (!kParallel) {
    for (std::int64_t n = 1; n <= T; ++n) {
      const std::int64_t lo = n, hi = width - 1 - n;  // cone interior
      double left_old = cur[static_cast<std::size_t>(lo - 1)];
      for (std::int64_t t = lo; t <= hi; ++t) {
        const double old_t = cur[static_cast<std::size_t>(t)];
        const double lin =
            b * left_old + c * old_t + a * cur[static_cast<std::size_t>(t + 1)];
        cur[static_cast<std::size_t>(t)] =
            american ? std::max(lin, payoff[static_cast<std::size_t>(t)]) : lin;
        left_old = old_t;
      }
    }
  } else {
    std::vector<double> nxt(cur.size());
    for (std::int64_t n = 1; n <= T; ++n) {
      const std::int64_t lo = n, hi = width - 1 - n;
      parallel_for_chunks(hi - lo + 1, 1024, [&](std::ptrdiff_t clo,
                                                 std::ptrdiff_t chi) {
        for (std::ptrdiff_t t = lo + clo; t < lo + chi; ++t) {
          const double lin = b * cur[static_cast<std::size_t>(t - 1)] +
                             c * cur[static_cast<std::size_t>(t)] +
                             a * cur[static_cast<std::size_t>(t + 1)];
          nxt[static_cast<std::size_t>(t)] =
              american ? std::max(lin, payoff[static_cast<std::size_t>(t)])
                       : lin;
        }
      });
      cur.swap(nxt);
    }
  }
  metrics::add_flops(6 * static_cast<std::uint64_t>(T) *
                     static_cast<std::uint64_t>(width));
  metrics::add_bytes(2 * sizeof(double) * static_cast<std::uint64_t>(T) *
                     static_cast<std::uint64_t>(width));

  const double v0 = cur[static_cast<std::size_t>(lay.k_read - klo)];
  const double v1 = cur[static_cast<std::size_t>(lay.k_read + 1 - klo)];
  return spec.K * ((1.0 - lay.theta) * v0 + lay.theta * v1);
}

}  // namespace

double american_put_vanilla(const OptionSpec& spec, std::int64_t T) {
  return vanilla_impl<false>(spec, T, /*american=*/true);
}

double american_put_vanilla_parallel(const OptionSpec& spec, std::int64_t T) {
  return vanilla_impl<true>(spec, T, /*american=*/true);
}

double european_put_fdm(const OptionSpec& spec, std::int64_t T) {
  const BsmParams prm = derive_bsm(spec, T);
  const FdmLayout lay = make_layout(prm);
  // v(T, k) = sum_m kernel[m] * v0(k - T + m): one kernel power + two dots.
  const std::vector<double> kernel =
      poly::power(std::vector<double>{prm.b, prm.c, prm.a},
                  static_cast<std::uint64_t>(T));
  const auto value = [&](std::int64_t k) {
    double acc = 0.0;
    for (std::int64_t m = 0; m <= 2 * T; ++m) {
      const std::int64_t k0 = k - T + m;
      const double v0 =
          std::max(-std::expm1(static_cast<double>(k0) * prm.ds), 0.0);
      acc += kernel[static_cast<std::size_t>(m)] * v0;
    }
    return acc;
  };
  const double v = (1.0 - lay.theta) * value(lay.k_read) +
                   lay.theta * value(lay.k_read + 1);
  return spec.K * v;
}

std::vector<std::int64_t> exercise_boundary_vanilla(const OptionSpec& spec,
                                                    std::int64_t T) {
  const BsmParams prm = derive_bsm(spec, T);
  // The boundary jumps to ~ln(R/Y)/ds off the payoff row (Y > R) and then
  // drifts further left like sqrt(tau); size the window for both, and keep
  // its LEFT edge fixed with the payoff as a Dirichlet value — exact there,
  // since the edge sits deep inside the exercise region where v == payoff.
  std::int64_t jump = 0;
  if (spec.Y > spec.R && spec.R > 0.0)
    jump = static_cast<std::int64_t>(
        std::floor(std::log(spec.R / spec.Y) / prm.ds));
  const std::int64_t klo =
      2 * jump - 4 * static_cast<std::int64_t>(std::sqrt(static_cast<double>(T))) -
      T / 4 - 64;
  const std::int64_t khi = T + kPad;  // right edge erodes with the cone
  const std::int64_t width = khi - klo + 1;
  std::vector<double> payoff(static_cast<std::size_t>(width));
  for (std::int64_t k = klo; k <= khi; ++k)
    payoff[static_cast<std::size_t>(k - klo)] =
        -std::expm1(static_cast<double>(k) * prm.ds);
  std::vector<double> cur(static_cast<std::size_t>(width));
  for (std::int64_t t = 0; t < width; ++t)
    cur[static_cast<std::size_t>(t)] =
        std::max(payoff[static_cast<std::size_t>(t)], 0.0);

  std::vector<std::int64_t> boundary(static_cast<std::size_t>(T + 1));
  boundary[0] = 0;
  const double b = prm.b, c = prm.c, a = prm.a;
  for (std::int64_t n = 1; n <= T; ++n) {
    const std::int64_t lo = 1, hi = width - 1 - n;
    double left_old = cur[0];  // fixed left edge: deep green, v == payoff
    std::int64_t last_green = klo;
    for (std::int64_t t = lo; t <= hi; ++t) {
      const double old_t = cur[static_cast<std::size_t>(t)];
      const double lin =
          b * left_old + c * old_t + a * cur[static_cast<std::size_t>(t + 1)];
      const double pay = payoff[static_cast<std::size_t>(t)];
      if (pay > lin) last_green = klo + t;
      cur[static_cast<std::size_t>(t)] = std::max(lin, pay);
      left_old = old_t;
    }
    AMOPT_ENSURES(last_green > klo + 1);  // boundary stayed interior
    boundary[static_cast<std::size_t>(n)] = last_green;
  }
  return boundary;
}

}  // namespace amopt::pricing::bsm
