#include "amopt/fft/fft.hpp"

#include <cstring>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <memory>
#include <mutex>
#include <numbers>
#include <utility>

#include "amopt/common/assert.hpp"
#include "amopt/common/parallel.hpp"
#include "amopt/simd/kernels.hpp"

namespace amopt::fft {

namespace {

// Below this size the parallel-for overhead of a stage exceeds its work;
// transforms stay serial. Chosen conservatively; see bench/micro_fft.
constexpr std::size_t kParallelThreshold = std::size_t{1} << 15;

// Below this size the SoA pipeline's de/interleave passes cost more than
// the vector butterflies save; stay on the interleaved scalar loops.
constexpr std::size_t kSimdThreshold = 32;

[[nodiscard]] std::size_t ilog2(std::size_t n) {
  std::size_t l = 0;
  while ((std::size_t{1} << l) < n) ++l;
  return l;
}

/// Per-thread split real/imag scratch for the SoA transform pipeline.
/// Grow-only and 64-byte aligned, so every vector load on the fast path is
/// an unmasked aligned load; reused across calls like conv::Workspace.
struct SoaScratch {
  aligned_vector<double> re, im;
};

[[nodiscard]] SoaScratch& soa_scratch(std::size_t n) {
  thread_local SoaScratch s;
  if (s.re.size() < n) {
    s.re.resize(n);
    s.im.resize(n);
  }
  return s;
}

}  // namespace

Plan::Plan(std::size_t n) : n_(n), log2n_(ilog2(n)) {
  AMOPT_EXPECTS(is_pow2(n));
  // Radix-4 twiddle triples (see header). The leading radix-2 stage of
  // odd-log2 sizes uses only w = 1 and needs no table.
  std::size_t total = 0;
  for (std::size_t h = (log2n_ & 1) ? 2 : 1; h < n_; h <<= 2) total += 3 * h;
  twiddle4_.resize(total);
  cplx* w = twiddle4_.data();
  for (std::size_t h = (log2n_ & 1) ? 2 : 1; h < n_; h <<= 2) {
    const double theta = -std::numbers::pi / static_cast<double>(2 * h);
    for (std::size_t j = 0; j < h; ++j) {
      const double a = theta * static_cast<double>(j);
      w[3 * j + 0] = cplx{std::cos(a), std::sin(a)};
      w[3 * j + 1] = cplx{std::cos(2 * a), std::sin(2 * a)};
      w[3 * j + 2] = cplx{std::cos(3 * a), std::sin(3 * a)};
    }
    w += 3 * h;
  }
  // Mirror the triples into the SoA layout the vector kernels consume
  // (same values; only the memory layout differs, so scalar and vector
  // passes see bit-identical twiddles). Skipped entirely when no vector
  // path can ever run — plans are cached for the process lifetime and the
  // mirror would be dead weight.
  if (simd::max_supported() != simd::Level::scalar) {
    twiddle4_soa_.resize(2 * total);
    double* ws = twiddle4_soa_.data();
    const cplx* wt = twiddle4_.data();
    for (std::size_t h = (log2n_ & 1) ? 2 : 1; h < n_; h <<= 2) {
      for (std::size_t j = 0; j < h; ++j) {
        ws[0 * h + j] = wt[3 * j + 0].real();
        ws[1 * h + j] = wt[3 * j + 0].imag();
        ws[2 * h + j] = wt[3 * j + 1].real();
        ws[3 * h + j] = wt[3 * j + 1].imag();
        ws[4 * h + j] = wt[3 * j + 2].real();
        ws[5 * h + j] = wt[3 * j + 2].imag();
      }
      ws += 6 * h;
      wt += 3 * h;
    }
  }
  bitrev_.resize(n_);
  for (std::size_t i = 0; i < n_; ++i) {
    std::size_t r = 0;
    for (std::size_t b = 0; b < log2n_; ++b) r |= ((i >> b) & 1u) << (log2n_ - 1 - b);
    bitrev_[i] = static_cast<std::uint32_t>(r);
  }
}

void Plan::bit_reverse_permute(cplx* data) const {
  for (std::size_t i = 0; i < n_; ++i) {
    const std::size_t r = bitrev_[i];
    if (i < r) std::swap(data[i], data[r]);
  }
}

void Plan::radix2_stage(cplx* data, bool parallel) const {
  // Half-size-1 butterflies carry twiddle w = 1 in both directions.
  if (parallel) {
    // Pool chunks are disjoint and the per-butterfly arithmetic does not
    // depend on the split, so the bits match the serial sweep.
    constexpr std::size_t kChunk = std::size_t{1} << 13;
    core::TaskPool::instance().for_each(
        static_cast<std::ptrdiff_t>(n_ / kChunk), [&](std::size_t c) {
          const std::size_t hi = (c + 1) * kChunk;
          for (std::size_t base = c * kChunk; base < hi; base += 2) {
            const cplx t = data[base + 1];
            data[base + 1] = data[base] - t;
            data[base] += t;
          }
        });
  } else {
    for (std::size_t base = 0; base < n_; base += 2) {
      const cplx t = data[base + 1];
      data[base + 1] = data[base] - t;
      data[base] += t;
    }
  }
}

template <bool kInverse>
void Plan::radix4_pass(cplx* data, std::size_t h, const cplx* w,
                       bool parallel) const {
  // One pass = two fused radix-2 stages (half-sizes h and 2h) on
  // bit-reversed data. With W = e^{-i pi / (2h)}:
  //   bb = b W^2j, cc = c W^j, dd = d W^3j,
  //   a1 = a + bb, b1 = a - bb,
  //   out[j]    = a1 + (cc + dd)      out[j+2h] = a1 - (cc + dd)
  //   out[j+h]  = b1 -+ i (cc - dd)   out[j+3h] = b1 +- i (cc - dd)
  // (upper signs forward, lower inverse; inverse also conjugates W).
  const std::size_t step = 4 * h;
  const auto block = [&](std::size_t base) {
    for (std::size_t j = 0; j < h; ++j) {
      cplx w1 = w[3 * j + 0];
      cplx w2 = w[3 * j + 1];
      cplx w3 = w[3 * j + 2];
      if constexpr (kInverse) {
        w1 = std::conj(w1);
        w2 = std::conj(w2);
        w3 = std::conj(w3);
      }
      cplx& ra = data[base + j];
      cplx& rb = data[base + j + h];
      cplx& rc = data[base + j + 2 * h];
      cplx& rd = data[base + j + 3 * h];
      const cplx bb = rb * w2;
      const cplx cc = rc * w1;
      const cplx dd = rd * w3;
      const cplx a1 = ra + bb;
      const cplx b1 = ra - bb;
      const cplx s = cc + dd;
      const cplx t = cc - dd;
      // -i t forward, +i t inverse
      const cplx it = kInverse ? cplx{-t.imag(), t.real()}
                               : cplx{t.imag(), -t.real()};
      ra = a1 + s;
      rc = a1 - s;
      rb = b1 + it;
      rd = b1 - it;
    }
  };
  if (parallel) {
    // Several blocks per chunk while h is small, one block per chunk once
    // step dominates; block order is irrelevant (disjoint ranges).
    const std::size_t chunk = std::max(step, std::size_t{1} << 13);
    core::TaskPool::instance().for_each(
        static_cast<std::ptrdiff_t>((n_ + chunk - 1) / chunk),
        [&](std::size_t c) {
          const std::size_t hi = std::min((c + 1) * chunk, n_);
          for (std::size_t base = c * chunk; base < hi; base += step)
            block(base);
        });
  } else {
    for (std::size_t base = 0; base < n_; base += step) block(base);
  }
}

void Plan::transform(cplx* data, bool inverse) const {
  if (n_ <= 1) return;
  if (const simd::Level lvl = simd::active();
      lvl != simd::Level::scalar && n_ >= kSimdThreshold) {
    transform_simd(data, inverse, lvl);
    return;
  }
  bit_reverse_permute(data);

  const bool parallel = n_ >= kParallelThreshold && !in_parallel_region() &&
                        hardware_threads() > 1;
  std::size_t h = 1;
  if (log2n_ & 1) {
    radix2_stage(data, parallel);
    h = 2;
  }
  const cplx* w = twiddle4_.data();
  for (; h < n_; h <<= 2) {
    if (inverse) {
      radix4_pass<true>(data, h, w, parallel);
    } else {
      radix4_pass<false>(data, h, w, parallel);
    }
    w += 3 * h;
  }

  if (inverse) {
    const double inv_n = 1.0 / static_cast<double>(n_);
    for (std::size_t i = 0; i < n_; ++i) data[i] *= inv_n;
  }
}

void Plan::transform_simd(cplx* data, bool inverse, simd::Level lvl) const {
  const simd::Kernels& kn = simd::kernels(lvl);
  SoaScratch& scratch = soa_scratch(n_);
  double* re = scratch.re.data();
  double* im = scratch.im.data();
  // Bit-reversal fused into the split: one gathered pass instead of the
  // scalar path's swap pass + copy pass.
  kn.deinterleave_rev(data, bitrev_.data(), re, im, n_);

  const bool parallel = n_ >= kParallelThreshold && !in_parallel_region() &&
                        hardware_threads() > 1;
  std::size_t h = 1;
  if (log2n_ & 1) {
    if (parallel) {
      // Chunks align to butterfly pairs; any power-of-two split works.
      constexpr std::size_t kChunk = std::size_t{1} << 13;
      core::TaskPool::instance().for_each(
          static_cast<std::ptrdiff_t>(n_ / kChunk), [&](std::size_t c) {
            kn.radix2_pass(re + c * kChunk, im + c * kChunk, kChunk);
          });
    } else {
      kn.radix2_pass(re, im, n_);
    }
    h = 2;
  }
  const double* w = twiddle4_soa_.data();
  for (; h < n_; h <<= 2) {
    const std::size_t step = 4 * h;
    // Parallel chunks must be multiples of the block size AND large enough
    // that the early stages still hand the vector kernels whole 16-element
    // groups (the h = 1 transpose kernel needs them) — one block per chunk
    // would feed h = 1 four elements at a time and fall back to scalar.
    const std::size_t chunk = std::max(step, std::size_t{1} << 13);
    if (parallel && n_ > chunk) {
      core::TaskPool::instance().for_each(
          static_cast<std::ptrdiff_t>(n_ / chunk), [&](std::size_t c) {
            kn.radix4_pass(re + c * chunk, im + c * chunk, chunk, h, w,
                           inverse);
          });
    } else {
      kn.radix4_pass(re, im, n_, h, w, inverse);
    }
    w += 6 * h;
  }

  // The 1/n normalization rides the interleave pass (same multiply scale2
  // performed — bit-identical, one fewer sweep over the data).
  if (inverse) {
    kn.interleave_scaled(re, im, data, n_, 1.0 / static_cast<double>(n_));
  } else {
    kn.interleave(re, im, data, n_);
  }
}

RealPlan::RealPlan(std::size_t n) : n_(n), m_(n / 2), half_(nullptr) {
  AMOPT_EXPECTS(is_pow2(n));
  if (n_ >= 4) {
    half_ = &plan_for(m_);
    twiddle_.resize(m_ / 2 + 1);
    const double theta = -2.0 * std::numbers::pi / static_cast<double>(n_);
    for (std::size_t k = 0; k <= m_ / 2; ++k) {
      const double a = theta * static_cast<double>(k);
      twiddle_[k] = cplx{std::cos(a), std::sin(a)};
    }
  }
}

void RealPlan::forward(const double* in, cplx* spec) const {
  if (n_ == 1) {
    spec[0] = cplx{in[0], 0.0};
    return;
  }
  if (n_ == 2) {
    spec[1] = cplx{in[0] - in[1], 0.0};
    spec[0] = cplx{in[0] + in[1], 0.0};
    return;
  }
  // Pack z[k] = x[2k] + i x[2k+1] into the low half of `spec` and transform.
  // The pairwise packing IS the complex memory layout, so the "pack" is one
  // flat copy at memory bandwidth instead of a scalar pair loop.
  cplx* z = spec;
  std::memcpy(static_cast<void*>(z), static_cast<const void*>(in),
              m_ * sizeof(cplx));
  half_->forward(z);

  // Untangle: with Xe/Xo the DFTs of the even/odd samples,
  //   Xe[k] = (Z[k] + conj(Z[m-k]))/2,  Xo[k] = (Z[k] - conj(Z[m-k]))/(2i),
  //   X[k] = Xe[k] + t_k Xo[k],  t_k = e^{-2 pi i k / n},
  // and for the mirror bin t_{m-k} = -conj(t_k) gives
  //   X[m-k] = conj(Xe[k] - t_k Xo[k]).
  const cplx z0 = z[0];
  // Dispatched pair sweep; the scalar table entry is this function's
  // historical loop, so the scalar level stays bit-identical.
  simd::kernels().rfft_untangle(spec, twiddle_.data(), m_);
  spec[m_ / 2] = std::conj(spec[m_ / 2]);  // t = -i bin: X = conj(Z)
  spec[m_] = cplx{z0.real() - z0.imag(), 0.0};
  spec[0] = cplx{z0.real() + z0.imag(), 0.0};
}

void RealPlan::inverse(cplx* spec, double* out) const {
  if (n_ == 1) {
    out[0] = spec[0].real();
    return;
  }
  if (n_ == 2) {
    out[0] = 0.5 * (spec[0].real() + spec[1].real());
    out[1] = 0.5 * (spec[0].real() - spec[1].real());
    return;
  }
  // Re-tangle the packed half-size spectrum: Z[k] = Xe[k] + i Xo[k] with
  //   Xe[k] = (X[k] + conj(X[m-k]))/2,
  //   Xo[k] = (X[k] - conj(X[m-k]))/2 * conj(t_k)   (1/t_k on the unit circle)
  // and Z[m-k] = conj(Xe[k]) + i conj(Xo[k]).
  const double x0 = spec[0].real(), xm = spec[m_].real();
  spec[0] = cplx{0.5 * (x0 + xm), 0.5 * (x0 - xm)};
  simd::kernels().rfft_retangle(spec, twiddle_.data(), m_);
  spec[m_ / 2] = std::conj(spec[m_ / 2]);
  half_->inverse(spec);
  // The unpack is the same layout identity as forward's pack: one flat copy.
  std::memcpy(static_cast<void*>(out), static_cast<const void*>(spec),
              m_ * sizeof(cplx));
}

void RealPlan::spectrum(std::span<const double> signal, bool reversed,
                        std::span<double> pad, RealSpectrum& spec) const {
  AMOPT_EXPECTS(signal.size() <= n_);
  AMOPT_EXPECTS(pad.size() >= n_);
  // Pack exactly like the convolution paths (reversal happens while
  // staging, no reversed copy), so the bins match the in-call transform
  // bit for bit.
  if (reversed) {
    std::copy(signal.rbegin(), signal.rend(), pad.begin());
  } else {
    std::copy(signal.begin(), signal.end(), pad.begin());
  }
  std::fill(pad.begin() + static_cast<std::ptrdiff_t>(signal.size()),
            pad.begin() + static_cast<std::ptrdiff_t>(n_), 0.0);
  spec.n = n_;
  spec.klen = signal.size();
  spec.reversed = reversed;
  spec.bins.resize(spectrum_size());
  forward(pad.data(), spec.bins.data());
}

namespace {

/// Append-only plan cache: readers follow one atomic pointer to an immutable
/// sorted snapshot (wait-free once their size is warm); writers serialize on
/// a mutex, copy the snapshot, and publish the extension. Old snapshots are
/// retained so in-flight readers never race a free; the whole cache is
/// intentionally leaked to outlive detached threads at shutdown.
template <class P>
class PlanCache {
 public:
  const P& get(std::size_t n) {
    if (const Map* m = current_.load(std::memory_order_acquire)) {
      if (const P* p = m->find(n)) return *p;
    }
    std::lock_guard<std::mutex> lock(mu_);
    const Map* cur = current_.load(std::memory_order_relaxed);
    if (cur != nullptr) {
      if (const P* p = cur->find(n)) return *p;
    }
    auto plan = std::make_unique<P>(n);
    const P* raw = plan.get();
    plans_.push_back(std::move(plan));
    auto next = std::make_unique<Map>();
    if (cur != nullptr) next->entries = cur->entries;
    next->entries.emplace_back(n, raw);
    std::sort(next->entries.begin(), next->entries.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    const Map* published = next.get();
    maps_.push_back(std::move(next));
    current_.store(published, std::memory_order_release);
    return *raw;
  }

 private:
  struct Map {
    std::vector<std::pair<std::size_t, const P*>> entries;
    [[nodiscard]] const P* find(std::size_t n) const {
      auto it = std::lower_bound(
          entries.begin(), entries.end(), n,
          [](const auto& e, std::size_t key) { return e.first < key; });
      return (it != entries.end() && it->first == n) ? it->second : nullptr;
    }
  };

  std::atomic<const Map*> current_{nullptr};
  std::mutex mu_;
  std::vector<std::unique_ptr<P>> plans_;
  std::vector<std::unique_ptr<Map>> maps_;
};

}  // namespace

const Plan& plan_for(std::size_t n) {
  AMOPT_EXPECTS(is_pow2(n));
  static PlanCache<Plan>& cache = *new PlanCache<Plan>();
  return cache.get(n);
}

const RealPlan& real_plan_for(std::size_t n) {
  AMOPT_EXPECTS(is_pow2(n));
  static PlanCache<RealPlan>& cache = *new PlanCache<RealPlan>();
  return cache.get(n);
}

void forward(std::span<cplx> data) { plan_for(data.size()).forward(data.data()); }
void inverse(std::span<cplx> data) { plan_for(data.size()).inverse(data.data()); }

}  // namespace amopt::fft
