#include "amopt/fft/fft.hpp"

#include <cmath>
#include <memory>
#include <mutex>
#include <numbers>
#include <unordered_map>
#include <utility>

#include "amopt/common/assert.hpp"
#include "amopt/common/parallel.hpp"

namespace amopt::fft {

namespace {

// Below this size the parallel-for overhead of a stage exceeds its work;
// transforms stay serial. Chosen conservatively; see bench/micro_fft.
constexpr std::size_t kParallelThreshold = std::size_t{1} << 15;

[[nodiscard]] std::size_t ilog2(std::size_t n) {
  std::size_t l = 0;
  while ((std::size_t{1} << l) < n) ++l;
  return l;
}

}  // namespace

Plan::Plan(std::size_t n) : n_(n), log2n_(ilog2(n)) {
  AMOPT_EXPECTS(is_pow2(n));
  // Twiddle layout: for each stage with half-size h, the h factors
  // w_h^j = e^{-i pi j / h}, j in [0, h). Total: sum over stages = n-1.
  twiddle_.resize(n_ > 1 ? n_ - 1 : 0);
  for (std::size_t h = 1; h < n_; h <<= 1) {
    const double theta = -std::numbers::pi / static_cast<double>(h);
    cplx* w = twiddle_.data() + (h - 1);
    for (std::size_t j = 0; j < h; ++j) {
      const double a = theta * static_cast<double>(j);
      w[j] = cplx{std::cos(a), std::sin(a)};
    }
  }
  bitrev_.resize(n_);
  for (std::size_t i = 0; i < n_; ++i) {
    std::size_t r = 0;
    for (std::size_t b = 0; b < log2n_; ++b) r |= ((i >> b) & 1u) << (log2n_ - 1 - b);
    bitrev_[i] = static_cast<std::uint32_t>(r);
  }
}

void Plan::bit_reverse_permute(cplx* data) const {
  for (std::size_t i = 0; i < n_; ++i) {
    const std::size_t r = bitrev_[i];
    if (i < r) std::swap(data[i], data[r]);
  }
}

void Plan::transform(cplx* data, bool inverse) const {
  if (n_ <= 1) return;
  bit_reverse_permute(data);

  const bool parallel = n_ >= kParallelThreshold && !in_parallel_region() &&
                        hardware_threads() > 1;
  for (std::size_t h = 1; h < n_; h <<= 1) {
    const cplx* w = twiddle_.data() + (h - 1);
    const std::size_t step = h << 1;
    const auto butterfly_block = [&](std::size_t base) {
      for (std::size_t j = 0; j < h; ++j) {
        const cplx tw = inverse ? std::conj(w[j]) : w[j];
        cplx& lo = data[base + j];
        cplx& hi = data[base + j + h];
        const cplx t = hi * tw;
        hi = lo - t;
        lo += t;
      }
    };
    if (parallel) {
#pragma omp parallel for schedule(static)
      for (std::ptrdiff_t base = 0; base < static_cast<std::ptrdiff_t>(n_);
           base += static_cast<std::ptrdiff_t>(step)) {
        butterfly_block(static_cast<std::size_t>(base));
      }
    } else {
      for (std::size_t base = 0; base < n_; base += step) butterfly_block(base);
    }
  }

  if (inverse) {
    const double inv_n = 1.0 / static_cast<double>(n_);
    for (std::size_t i = 0; i < n_; ++i) data[i] *= inv_n;
  }
}

const Plan& plan_for(std::size_t n) {
  AMOPT_EXPECTS(is_pow2(n));
  static std::mutex mu;
  static std::unordered_map<std::size_t, std::unique_ptr<Plan>> cache;
  std::lock_guard<std::mutex> lock(mu);
  auto it = cache.find(n);
  if (it == cache.end()) {
    it = cache.emplace(n, std::make_unique<Plan>(n)).first;
  }
  return *it->second;
}

void forward(std::span<cplx> data) { plan_for(data.size()).forward(data.data()); }
void inverse(std::span<cplx> data) { plan_for(data.size()).inverse(data.data()); }

}  // namespace amopt::fft
