#include "amopt/fft/convolution.hpp"

#include <algorithm>
#include <bit>
#include <complex>

#include "amopt/common/aligned.hpp"
#include "amopt/common/assert.hpp"
#include "amopt/fft/fft.hpp"
#include "amopt/metrics/counters.hpp"

namespace amopt::conv {

namespace {

using fft::cplx;

// Below this cost product the direct loop beats FFT setup (measured with
// bench/micro_fft on the build machine; the exact value is uncritical).
constexpr std::size_t kDirectCostThreshold = 1u << 14;

[[nodiscard]] bool use_direct(std::size_t na, std::size_t nb, Policy policy) {
  switch (policy.path) {
    case Policy::Path::direct:
      return true;
    case Policy::Path::fft:
      return false;
    case Policy::Path::automatic:
      break;
  }
  const std::size_t k = std::min(na, nb);
  const std::size_t n = std::max(na, nb);
  return k * n <= kDirectCostThreshold || k <= 8;
}

/// Cyclic convolution of a and b (zero-padded into size-n buffers, n a power
/// of two >= na+nb-1) using one forward FFT: pack z = a + i*b, split the
/// spectrum with conjugate symmetry, multiply, invert.
void fft_convolve_into(std::span<const double> a, std::span<const double> b,
                       double* out, std::size_t out_len) {
  const std::size_t full = a.size() + b.size() - 1;
  const std::size_t n = next_pow2(full);
  aligned_vector<cplx> z(n, cplx{0.0, 0.0});
  for (std::size_t i = 0; i < a.size(); ++i) z[i].real(a[i]);
  for (std::size_t i = 0; i < b.size(); ++i) z[i].imag(b[i]);

  const fft::Plan& plan = fft::plan_for(n);
  plan.forward(z.data());

  // Spectra: A[k] = (Z[k] + conj(Z[n-k]))/2, B[k] = (Z[k] - conj(Z[n-k]))/(2i)
  // so C[k] = A[k]*B[k]; we overwrite z with C, handling the paired indices
  // (k, n-k) together.
  const auto product = [](cplx zk, cplx znk) {
    const cplx ak = 0.5 * (zk + std::conj(znk));
    const cplx bk = cplx{0.0, -0.5} * (zk - std::conj(znk));
    return ak * bk;
  };
  const cplx z0 = z[0];
  z[0] = cplx{z0.real() * z0.imag(), 0.0};
  for (std::size_t k = 1, j = n - 1; k < j; ++k, --j) {
    const cplx zk = z[k], zj = z[j];
    const cplx ck = product(zk, zj);
    const cplx cj = product(zj, zk);
    z[k] = ck;
    z[j] = cj;
  }
  if (n > 1) {
    const cplx zm = z[n / 2];  // self-paired Nyquist bin
    z[n / 2] = cplx{zm.real() * zm.imag(), 0.0};
  }

  plan.inverse(z.data());
  for (std::size_t i = 0; i < out_len; ++i) out[i] = z[i].real();

  // 2 complex FFTs' worth of work (one forward, one inverse) + pointwise.
  const auto logn = static_cast<std::uint64_t>(
      std::max<std::size_t>(1, static_cast<std::size_t>(std::bit_width(n)) - 1));
  metrics::add_flops(2 * 5 * static_cast<std::uint64_t>(n) * logn + 6 * n);
  metrics::add_bytes(2 * static_cast<std::uint64_t>(n) * sizeof(cplx) * logn);
}

}  // namespace

std::vector<double> convolve_full_direct(std::span<const double> a,
                                         std::span<const double> b) {
  if (a.empty() || b.empty()) return {};
  std::vector<double> c(a.size() + b.size() - 1, 0.0);
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double ai = a[i];
    for (std::size_t j = 0; j < b.size(); ++j) c[i + j] += ai * b[j];
  }
  metrics::add_flops(2 * static_cast<std::uint64_t>(a.size()) * b.size());
  metrics::add_bytes(static_cast<std::uint64_t>(c.size()) * sizeof(double));
  return c;
}

void correlate_valid_direct(std::span<const double> in,
                            std::span<const double> kernel,
                            std::span<double> out) {
  AMOPT_EXPECTS(!kernel.empty());
  AMOPT_EXPECTS(in.size() >= out.size() + kernel.size() - 1);
  for (std::size_t j = 0; j < out.size(); ++j) {
    double acc = 0.0;
    for (std::size_t m = 0; m < kernel.size(); ++m) acc += kernel[m] * in[j + m];
    out[j] = acc;
  }
  metrics::add_flops(2 * static_cast<std::uint64_t>(out.size()) *
                     kernel.size());
  metrics::add_bytes(static_cast<std::uint64_t>(out.size()) * sizeof(double));
}

std::vector<double> convolve_full(std::span<const double> a,
                                  std::span<const double> b, Policy policy) {
  if (a.empty() || b.empty()) return {};
  if (use_direct(a.size(), b.size(), policy)) return convolve_full_direct(a, b);
  std::vector<double> c(a.size() + b.size() - 1);
  fft_convolve_into(a, b, c.data(), c.size());
  return c;
}

void correlate_valid(std::span<const double> in,
                     std::span<const double> kernel, std::span<double> out,
                     Policy policy) {
  AMOPT_EXPECTS(!kernel.empty());
  if (out.empty()) return;
  AMOPT_EXPECTS(in.size() >= out.size() + kernel.size() - 1);
  if (use_direct(in.size(), kernel.size(), policy)) {
    correlate_valid_direct(in, kernel, out);
    return;
  }
  // Correlation = convolution with the reversed kernel, shifted so that
  // output index 0 lands on full-convolution index kernel.size()-1. Trim the
  // input to the prefix actually referenced to keep the transform small.
  std::vector<double> rev(kernel.rbegin(), kernel.rend());
  const std::size_t needed_in = out.size() + kernel.size() - 1;
  std::span<const double> in_used = in.subspan(0, needed_in);
  const std::size_t full = in_used.size() + rev.size() - 1;
  std::vector<double> c(full);
  fft_convolve_into(in_used, rev, c.data(), c.size());
  const std::size_t offset = kernel.size() - 1;
  for (std::size_t j = 0; j < out.size(); ++j) out[j] = c[offset + j];
}

}  // namespace amopt::conv
