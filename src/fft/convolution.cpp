#include "amopt/fft/convolution.hpp"

#include <algorithm>
#include <bit>
#include <complex>

#include "amopt/common/assert.hpp"
#include "amopt/metrics/counters.hpp"
#include "amopt/simd/kernels.hpp"

namespace amopt::conv {

namespace {

using fft::cplx;

// Below this cost product the direct loop beats FFT setup (measured with
// bench/micro_fft on the build machine; the exact value is uncritical).
constexpr std::size_t kDirectCostThreshold = 1u << 14;

// Break-even multiplier for the size-aware crossover below: the direct
// sweep costs ~k*n fused multiply-adds, the (kernel-spectrum-warm) FFT
// path ~2 half-size transforms of m = next_pow2(n) plus the spectrum
// product, i.e. O(m log m) with this constant folding in the transform's
// real cost per point. Calibrated on the build box against warm-spectrum
// correlate_valid at out in [240, 9700] and klen in [9, 1025]: measured
// break-even klen tracks 3*m*log2(m)/out within ~25% across that whole
// range (PR 10; before that the flat kDirectCostThreshold product sent
// wide-row/short-kernel correlations — out ~ 10^4, klen <= 129, the top
// of every FDM descent — down an FFT path costing 5-12x the direct sweep).
constexpr std::size_t kFftCostPerPointLog = 3;

[[nodiscard]] bool use_direct(std::size_t na, std::size_t nb, Policy policy) {
  switch (policy.path) {
    case Policy::Path::direct:
      return true;
    case Policy::Path::fft:
    case Policy::Path::fft_packed:
      return false;
    case Policy::Path::automatic:
      break;
  }
  const std::size_t k = std::min(na, nb);
  const std::size_t n = std::max(na, nb);
  if (k * n <= kDirectCostThreshold || k <= 8) return true;
  const std::size_t m = next_pow2(n);
  const auto logm = static_cast<std::size_t>(std::bit_width(m) - 1);
  return k * n <= kFftCostPerPointLog * m * logm;
}

void count_fft_ops(std::size_t n, std::uint64_t transforms_of_half,
                   bool pointwise = true) {
  // `transforms_of_half` complex FFTs of size n/2, plus (unless the caller
  // accounts it elsewhere) the O(n) pointwise spectrum product; same
  // accounting granularity as the direct path.
  const std::size_t m = std::max<std::size_t>(n / 2, 1);
  const auto logm = static_cast<std::uint64_t>(
      std::max<std::size_t>(1, static_cast<std::size_t>(std::bit_width(m)) - 1));
  metrics::add_flops(transforms_of_half * 5 * static_cast<std::uint64_t>(m) *
                         logm +
                     (pointwise ? 6 * static_cast<std::uint64_t>(n) : 0));
  metrics::add_bytes(transforms_of_half * static_cast<std::uint64_t>(m) *
                     sizeof(cplx) * logm);
}

/// Minimal cyclic transform size for reading window [skip, skip + out_len)
/// of the full linear convolution (length `full`) of operands of length
/// `na` and `nb`. Cyclic convolution at size n < full aliases linear bin
/// j + n onto bin j, corrupting exactly the cyclic bins [0, full - 1 - n];
/// the window survives iff skip >= full - n (overlap-save: the wrapped tail
/// lands strictly below the first bin we read). The window and both
/// operands must also fit in the buffer, so
///   n = next_pow2(max(full - skip, skip + out_len, na, nb)).
/// For a trimmed correlation (na = out_len + klen - 1, skip = klen - 1) the
/// first three terms coincide at out_len + klen - 1 — the rule
/// correlate_fft_size() exposes; for a full convolution (skip = 0,
/// out_len = full) it degenerates to next_pow2(full), the classical sizing.
[[nodiscard]] std::size_t cyclic_size(std::size_t na, std::size_t nb,
                                      std::size_t skip, std::size_t out_len) {
  const std::size_t full = na + nb - 1;
  AMOPT_EXPECTS(skip + out_len <= full);
  return next_pow2(std::max({full - skip, skip + out_len, na, nb}));
}

/// Real-input cyclic convolution via R2C/C2R: both operands are zero-padded
/// into size-n real buffers (n the minimal power of two that keeps the
/// requested window alias-free, see cyclic_size()), transformed with two
/// half-size complex FFTs, multiplied over the n/2+1 non-redundant bins,
/// and brought back with one C2R. Writes out[j] = c[skip + j] for j in
/// [0, out.size()), where c is the full convolution — `skip` folds the
/// correlation shift into the copy-out. `reverse_b` packs b back-to-front
/// (correlation = convolution with the reversed kernel) without
/// materializing a reversed copy. The first operand is the logical
/// concatenation of `a` and `a_tail` (the solvers' green-extension cells) —
/// staging both pieces here yields the same padded buffer, hence the same
/// bits, as a concatenated call.
void real_convolve_into(std::span<const double> a,
                        std::span<const double> a_tail,
                        std::span<const double> b, bool reverse_b,
                        std::size_t skip, std::span<double> out,
                        Workspace& ws) {
  const std::size_t na = a.size() + a_tail.size();
  const std::size_t full = na + b.size() - 1;
  const std::size_t n = cyclic_size(na, b.size(), skip, out.size());
  const fft::RealPlan& plan = fft::real_plan_for(n);
  const std::size_t nspec = plan.spectrum_size();

  std::span<double> ra = ws.real_a(n);
  std::copy(a.begin(), a.end(), ra.begin());
  std::copy(a_tail.begin(), a_tail.end(),
            ra.begin() + static_cast<std::ptrdiff_t>(a.size()));
  std::fill(ra.begin() + static_cast<std::ptrdiff_t>(na), ra.end(), 0.0);

  std::span<cplx> sa = ws.spec_a(nspec);
  // Aliased-operand fast path: convolving a signal with itself (the
  // squaring rungs of poly::power_fft) needs only ONE forward transform —
  // the spectrum is squared in place. A second transform of the identical
  // input would reproduce these bins bit for bit, and csquare evaluates
  // cmul(sa, sa) on them (exactly at the scalar level, to the documented
  // last-ulp FMA tolerance on AVX-512), so the fast path is work elision,
  // not a numerical shortcut.
  if (!reverse_b && a_tail.empty() && a.data() == b.data() &&
      a.size() == b.size()) {
    plan.forward(ra.data(), sa.data());
    simd::kernels().csquare(sa.data(), nspec);
    plan.inverse(sa.data(), ra.data());
    AMOPT_EXPECTS(skip + out.size() <= full);
    std::copy_n(ra.begin() + static_cast<std::ptrdiff_t>(skip), out.size(),
                out.begin());
    count_fft_ops(n, 2);
    return;
  }

  std::span<double> rb = ws.real_b(n);
  if (reverse_b) {
    std::copy(b.rbegin(), b.rend(), rb.begin());
  } else {
    std::copy(b.begin(), b.end(), rb.begin());
  }
  std::fill(rb.begin() + static_cast<std::ptrdiff_t>(b.size()), rb.end(), 0.0);

  std::span<cplx> sb = ws.spec_b(nspec);
  plan.forward(ra.data(), sa.data());
  plan.forward(rb.data(), sb.data());
  simd::kernels().cmul(sa.data(), sb.data(), nspec);
  plan.inverse(sa.data(), ra.data());

  AMOPT_EXPECTS(skip + out.size() <= full);
  std::copy_n(ra.begin() + static_cast<std::ptrdiff_t>(skip), out.size(),
              out.begin());
  count_fft_ops(n, 3);
}

/// The consumer half of the spectral overloads: transform concat(a, a_tail)
/// zero-padded to `kspec.n`, multiply by the precomputed kernel bins,
/// invert, copy out from `skip`. Identical arithmetic to real_convolve_into
/// with the kernel transform hoisted out.
void real_convolve_spec_into(std::span<const double> a,
                             std::span<const double> a_tail,
                             const fft::RealSpectrum& kspec, std::size_t skip,
                             std::span<double> out, Workspace& ws) {
  const std::size_t na = a.size() + a_tail.size();
  const std::size_t full = na + kspec.klen - 1;
  const std::size_t n = kspec.n;
  // The spectrum's size is the caller's choice; any n that keeps the read
  // window alias-free is accepted (n >= full remains valid over-padding).
  AMOPT_EXPECTS(n >= na && n >= kspec.klen);
  AMOPT_EXPECTS(skip + out.size() <= n);
  AMOPT_EXPECTS(full <= n + skip);
  const fft::RealPlan& plan = fft::real_plan_for(n);
  const std::size_t nspec = plan.spectrum_size();
  AMOPT_EXPECTS(kspec.bins.size() >= nspec);

  std::span<double> ra = ws.real_a(n);
  std::copy(a.begin(), a.end(), ra.begin());
  std::copy(a_tail.begin(), a_tail.end(),
            ra.begin() + static_cast<std::ptrdiff_t>(a.size()));
  std::fill(ra.begin() + static_cast<std::ptrdiff_t>(na), ra.end(), 0.0);
  std::span<cplx> sa = ws.spec_a(nspec);
  plan.forward(ra.data(), sa.data());
  simd::kernels().cmul(sa.data(), kspec.bins.data(), nspec);
  plan.inverse(sa.data(), ra.data());

  AMOPT_EXPECTS(skip + out.size() <= full);
  std::copy_n(ra.begin() + static_cast<std::ptrdiff_t>(skip), out.size(),
              out.begin());
  count_fft_ops(n, 2);
}

/// Legacy packed-complex cyclic convolution (the seed implementation): pack
/// z = a + i*b, one forward FFT, split the spectrum with conjugate symmetry,
/// multiply, invert. Kept as Policy::Path::fft_packed so benches can measure
/// the real-input path against it.
void packed_convolve_into(std::span<const double> a,
                          std::span<const double> a_tail,
                          std::span<const double> b, bool reverse_b,
                          std::size_t skip, std::span<double> out,
                          Workspace& ws) {
  const std::size_t na = a.size() + a_tail.size();
  const std::size_t full = na + b.size() - 1;
  const std::size_t n = cyclic_size(na, b.size(), skip, out.size());
  std::span<cplx> z = ws.spec_a(n);
  std::fill(z.begin(), z.end(), cplx{0.0, 0.0});
  for (std::size_t i = 0; i < a.size(); ++i) z[i].real(a[i]);
  for (std::size_t i = 0; i < a_tail.size(); ++i)
    z[a.size() + i].real(a_tail[i]);
  if (reverse_b) {
    const std::size_t nb = b.size();
    for (std::size_t i = 0; i < nb; ++i) z[i].imag(b[nb - 1 - i]);
  } else {
    for (std::size_t i = 0; i < b.size(); ++i) z[i].imag(b[i]);
  }

  const fft::Plan& plan = fft::plan_for(n);
  plan.forward(z.data());

  // Spectra: A[k] = (Z[k] + conj(Z[n-k]))/2, B[k] = (Z[k] - conj(Z[n-k]))/(2i)
  // so C[k] = A[k]*B[k]; we overwrite z with C, handling the paired indices
  // (k, n-k) together.
  const auto product = [](cplx zk, cplx znk) {
    const cplx ak = 0.5 * (zk + std::conj(znk));
    const cplx bk = cplx{0.0, -0.5} * (zk - std::conj(znk));
    return ak * bk;
  };
  const cplx z0 = z[0];
  z[0] = cplx{z0.real() * z0.imag(), 0.0};
  for (std::size_t k = 1, j = n - 1; k < j; ++k, --j) {
    const cplx zk = z[k], zj = z[j];
    const cplx ck = product(zk, zj);
    const cplx cj = product(zj, zk);
    z[k] = ck;
    z[j] = cj;
  }
  if (n > 1) {
    const cplx zm = z[n / 2];  // self-paired Nyquist bin
    z[n / 2] = cplx{zm.real() * zm.imag(), 0.0};
  }

  plan.inverse(z.data());
  AMOPT_EXPECTS(skip + out.size() <= full);
  for (std::size_t i = 0; i < out.size(); ++i) out[i] = z[skip + i].real();
  count_fft_ops(n, 4);  // two full-size transforms = four half-size
}

void fft_convolve_into(std::span<const double> a,
                       std::span<const double> a_tail,
                       std::span<const double> b, bool reverse_b,
                       std::size_t skip, std::span<double> out, Workspace& ws,
                       Policy policy) {
  if (policy.path == Policy::Path::fft_packed) {
    packed_convolve_into(a, a_tail, b, reverse_b, skip, out, ws);
  } else {
    real_convolve_into(a, a_tail, b, reverse_b, skip, out, ws);
  }
}

/// Trim the logical input concat(main, tail) to its first `needed` elements
/// (the prefix a correlation actually references).
void trim_split(std::span<const double>& main, std::span<const double>& tail,
                std::size_t needed) {
  if (main.size() >= needed) {
    main = main.subspan(0, needed);
    tail = {};
    return;
  }
  tail = tail.subspan(0, needed - main.size());
}

void convolve_full_direct_into(std::span<const double> a,
                               std::span<const double> b,
                               std::span<double> out) {
  std::fill(out.begin(), out.end(), 0.0);
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double ai = a[i];
    for (std::size_t j = 0; j < b.size(); ++j) out[i + j] += ai * b[j];
  }
  metrics::add_flops(2 * static_cast<std::uint64_t>(a.size()) * b.size());
  metrics::add_bytes(static_cast<std::uint64_t>(out.size()) * sizeof(double));
}

}  // namespace

Workspace& thread_workspace() {
  thread_local Workspace ws;
  return ws;
}

std::vector<double> convolve_full_direct(std::span<const double> a,
                                         std::span<const double> b) {
  if (a.empty() || b.empty()) return {};
  std::vector<double> c(a.size() + b.size() - 1);
  convolve_full_direct_into(a, b, c);
  return c;
}

void correlate_valid_direct(std::span<const double> in,
                            std::span<const double> kernel,
                            std::span<double> out) {
  AMOPT_EXPECTS(!kernel.empty());
  AMOPT_EXPECTS(in.size() >= out.size() + kernel.size() - 1);
  // Dispatched tap sweep (the scalar table entry is this function's
  // historical accumulation loop, so the scalar level is unchanged).
  simd::kernels().correlate_taps(in.data(), kernel.data(), kernel.size(),
                                 out.data(), out.size());
  metrics::add_flops(2 * static_cast<std::uint64_t>(out.size()) *
                     kernel.size());
  metrics::add_bytes(static_cast<std::uint64_t>(out.size()) * sizeof(double));
}

void convolve_full(std::span<const double> a, std::span<const double> b,
                   std::span<double> out, Workspace& ws, Policy policy) {
  if (a.empty() || b.empty()) {
    AMOPT_EXPECTS(out.empty());
    return;
  }
  AMOPT_EXPECTS(out.size() == a.size() + b.size() - 1);
  if (use_direct(a.size(), b.size(), policy)) {
    convolve_full_direct_into(a, b, out);
    return;
  }
  fft_convolve_into(a, {}, b, /*reverse_b=*/false, /*skip=*/0, out, ws,
                    policy);
}

std::vector<double> convolve_full(std::span<const double> a,
                                  std::span<const double> b, Policy policy) {
  if (a.empty() || b.empty()) return {};
  std::vector<double> c(a.size() + b.size() - 1);
  convolve_full(a, b, c, thread_workspace(), policy);
  return c;
}

void correlate_valid(std::span<const double> in,
                     std::span<const double> kernel, std::span<double> out,
                     Workspace& ws, Policy policy) {
  AMOPT_EXPECTS(!kernel.empty());
  if (out.empty()) return;
  AMOPT_EXPECTS(in.size() >= out.size() + kernel.size() - 1);
  if (use_direct(in.size(), kernel.size(), policy)) {
    correlate_valid_direct(in, kernel, out);
    return;
  }
  // Correlation = convolution with the reversed kernel, shifted so that
  // output index 0 lands on full-convolution index kernel.size()-1; the
  // reversal happens while packing the transform input (no reversed copy)
  // and the shift while copying out. Trim the input to the prefix actually
  // referenced to keep the transform small.
  const std::size_t needed_in = out.size() + kernel.size() - 1;
  fft_convolve_into(in.subspan(0, needed_in), {}, kernel, /*reverse_b=*/true,
                    /*skip=*/kernel.size() - 1, out, ws, policy);
}

void correlate_valid(std::span<const double> in,
                     std::span<const double> kernel, std::span<double> out,
                     Policy policy) {
  correlate_valid(in, kernel, out, thread_workspace(), policy);
}

void correlate_valid(std::span<const double> main, std::span<const double> tail,
                     std::span<const double> kernel, std::span<double> out,
                     Workspace& ws, Policy policy) {
  if (tail.empty()) {  // degenerate split: exactly the concatenated call
    correlate_valid(main, kernel, out, ws, policy);
    return;
  }
  AMOPT_EXPECTS(!kernel.empty());
  if (out.empty()) return;
  const std::size_t in_len = main.size() + tail.size();
  AMOPT_EXPECTS(in_len >= out.size() + kernel.size() - 1);
  std::span<const double> m = main, t = tail;
  trim_split(m, t, out.size() + kernel.size() - 1);
  if (use_direct(in_len, kernel.size(), policy)) {
    // Small-size crossover: materialize the concatenation in workspace
    // staging and run the ordinary contiguous sweep. The copy is bounded by
    // the direct-path cost cap, and it keeps the sweep's vector/scalar
    // partition — hence every bit on FMA dispatch levels — identical to a
    // contiguous-input call (the zero-copy win belongs to the FFT path,
    // where the operands are large).
    const std::size_t needed = m.size() + t.size();
    std::span<double> cat = ws.cat(needed);
    std::copy(m.begin(), m.end(), cat.begin());
    std::copy(t.begin(), t.end(),
              cat.begin() + static_cast<std::ptrdiff_t>(m.size()));
    correlate_valid_direct(cat, kernel, out);
    return;
  }
  fft_convolve_into(m, t, kernel, /*reverse_b=*/true,
                    /*skip=*/kernel.size() - 1, out, ws, policy);
}

bool correlate_prefers_fft(std::size_t out_len, std::size_t kernel_len,
                           Policy policy) {
  if (out_len == 0 || kernel_len == 0) return false;
  if (policy.path == Policy::Path::fft_packed) return false;
  const std::size_t in_len = out_len + kernel_len - 1;
  return !use_direct(in_len, kernel_len, policy);
}

std::size_t correlate_fft_size(std::size_t out_len, std::size_t kernel_len) {
  // Overlap-save minimal size: the trimmed input prefix is
  // out_len + kernel_len - 1 and the correlation reads full-convolution
  // bins [kernel_len - 1, kernel_len - 1 + out_len). A cyclic transform of
  // size n wraps only the top full - 1 - n linear bins onto [0, full-1-n],
  // i.e. strictly below that window whenever n >= out_len + kernel_len - 1
  // — so the transform only needs to cover the INPUT, not the full linear
  // convolution length out_len + 2*(kernel_len - 1) used before the
  // re-baselining (that double padding kept every linear bin alias-free,
  // including bins no correlation ever reads).
  return next_pow2(out_len + kernel_len - 1);
}

fft::RealSpectrum kernel_spectrum(std::span<const double> kernel,
                                  std::size_t n, bool reversed,
                                  Workspace& ws) {
  AMOPT_EXPECTS(!kernel.empty());
  AMOPT_EXPECTS(n >= kernel.size());
  fft::RealSpectrum spec;
  fft::real_plan_for(n).spectrum(kernel, reversed, ws.real_b(n), spec);
  count_fft_ops(n, 1, /*pointwise=*/false);
  return spec;
}

void correlate_valid(std::span<const double> in,
                     const fft::RealSpectrum& kspec, std::span<double> out,
                     Workspace& ws) {
  AMOPT_EXPECTS(!kspec.empty() && kspec.reversed);
  if (out.empty()) return;
  AMOPT_EXPECTS(in.size() >= out.size() + kspec.klen - 1);
  const std::size_t needed_in = out.size() + kspec.klen - 1;
  real_convolve_spec_into(in.subspan(0, needed_in), {}, kspec,
                          /*skip=*/kspec.klen - 1, out, ws);
}

void correlate_valid(std::span<const double> main, std::span<const double> tail,
                     const fft::RealSpectrum& kspec, std::span<double> out,
                     Workspace& ws) {
  AMOPT_EXPECTS(!kspec.empty() && kspec.reversed);
  if (out.empty()) return;
  AMOPT_EXPECTS(main.size() + tail.size() >= out.size() + kspec.klen - 1);
  std::span<const double> m = main, t = tail;
  trim_split(m, t, out.size() + kspec.klen - 1);
  real_convolve_spec_into(m, t, kspec, /*skip=*/kspec.klen - 1, out, ws);
}

void convolve_full(std::span<const double> a, const fft::RealSpectrum& bspec,
                   std::span<double> out, Workspace& ws) {
  AMOPT_EXPECTS(!bspec.empty() && !bspec.reversed);
  if (a.empty()) {
    AMOPT_EXPECTS(out.empty());
    return;
  }
  AMOPT_EXPECTS(out.size() == a.size() + bspec.klen - 1);
  real_convolve_spec_into(a, {}, bspec, /*skip=*/0, out, ws);
}

void convolve_many(std::span<const std::span<const double>> inputs,
                   const fft::RealSpectrum& kspec,
                   std::span<std::vector<double>> outs, Workspace& ws) {
  AMOPT_EXPECTS(outs.size() == inputs.size());
  AMOPT_EXPECTS(!kspec.empty() && !kspec.reversed);
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    if (inputs[i].empty()) {
      outs[i].clear();
      continue;
    }
    outs[i].resize(inputs[i].size() + kspec.klen - 1);
    real_convolve_spec_into(inputs[i], {}, kspec, /*skip=*/0, outs[i], ws);
  }
}

void convolve_many(std::span<const std::span<const double>> inputs,
                   std::span<const double> kernel,
                   std::span<std::vector<double>> outs, Workspace& ws,
                   Policy policy) {
  AMOPT_EXPECTS(outs.size() == inputs.size());
  AMOPT_EXPECTS(!kernel.empty());
  if (inputs.empty()) return;

  std::size_t max_na = 0;
  for (const auto& a : inputs) max_na = std::max(max_na, a.size());
  if (max_na == 0) {
    for (auto& o : outs) o.clear();
    return;
  }

  if (use_direct(max_na, kernel.size(), policy) ||
      policy.path == Policy::Path::fft_packed) {
    // The packed pipeline transforms both operands together, so there is no
    // kernel spectrum to share; fall back to per-item calls.
    for (std::size_t i = 0; i < inputs.size(); ++i) {
      if (inputs[i].empty()) {
        outs[i].clear();
        continue;
      }
      outs[i].resize(inputs[i].size() + kernel.size() - 1);
      convolve_full(inputs[i], kernel, outs[i], ws, policy);
    }
    return;
  }

  // One FFT size covers every item: the cyclic length n exceeds the largest
  // full linear length, so shorter items simply see extra zero padding.
  const std::size_t n = next_pow2(max_na + kernel.size() - 1);
  const fft::RealPlan& plan = fft::real_plan_for(n);
  const std::size_t nspec = plan.spectrum_size();

  std::span<double> rb = ws.real_b(n);
  std::copy(kernel.begin(), kernel.end(), rb.begin());
  std::fill(rb.begin() + static_cast<std::ptrdiff_t>(kernel.size()), rb.end(),
            0.0);
  std::span<cplx> sb = ws.spec_b(nspec);
  plan.forward(rb.data(), sb.data());  // shared kernel spectrum

  std::span<double> ra = ws.real_a(n);
  std::span<cplx> sa = ws.spec_a(nspec);
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    const std::span<const double> a = inputs[i];
    if (a.empty()) {
      outs[i].clear();
      continue;
    }
    std::copy(a.begin(), a.end(), ra.begin());
    std::fill(ra.begin() + static_cast<std::ptrdiff_t>(a.size()), ra.end(),
              0.0);
    plan.forward(ra.data(), sa.data());
    simd::kernels().cmul(sa.data(), sb.data(), nspec);
    plan.inverse(sa.data(), ra.data());
    outs[i].resize(a.size() + kernel.size() - 1);
    std::copy_n(ra.begin(), outs[i].size(), outs[i].begin());
    count_fft_ops(n, 2);  // per-item transforms + pointwise product
  }
  count_fft_ops(n, 1, /*pointwise=*/false);  // the one shared kernel transform
}

}  // namespace amopt::conv
