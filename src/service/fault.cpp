#include "amopt/service/fault.hpp"

#include <algorithm>
#include <cstring>
#include <thread>
#include <vector>

namespace amopt::service {

namespace {

// splitmix64 (Steele/Lea/Flood): tiny, fast, and — unlike std::mt19937 —
// bit-identical across standard libraries, which the fixed-seed soak
// assertions depend on.
std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9E3779B97F4A7C15ull);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

}  // namespace

FaultInjectingTransport::FaultInjectingTransport(
    std::unique_ptr<Transport> inner, FaultConfig cfg)
    : inner_(std::move(inner)), cfg_(cfg), state_(cfg.seed) {}

FaultInjectingTransport::~FaultInjectingTransport() { close(); }

std::uint64_t FaultInjectingTransport::next_u64() {
  return splitmix64(state_);
}

double FaultInjectingTransport::next_unit() {
  // 53 random bits -> [0, 1): every double in the range is reachable and
  // the mapping is the same on every platform.
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

void FaultInjectingTransport::maybe_delay() {
  // The PRNG draw happens unconditionally so the fault schedule depends
  // only on the operation sequence, never on whether delays are enabled.
  const bool fire = next_unit() < cfg_.delay;
  if (fire && cfg_.delay_us.count() > 0) {
    ++counters_.delayed;
    std::this_thread::sleep_for(cfg_.delay_us);
  }
}

std::size_t FaultInjectingTransport::read_some(std::span<std::byte> dst) {
  ++counters_.reads;
  if (dead_) return 0;
  // Fixed draw order per read: drop?, delay?.
  const bool drop = next_unit() < cfg_.drop_close;
  maybe_delay();
  if (drop) {
    ++counters_.dropped;
    close();
    return 0;
  }
  return inner_->read_some(dst);
}

std::size_t FaultInjectingTransport::read_some_for(
    std::span<std::byte> dst, std::chrono::microseconds timeout,
    bool& timed_out) {
  timed_out = false;
  ++counters_.reads;
  if (dead_) return 0;
  const bool drop = next_unit() < cfg_.drop_close;
  maybe_delay();
  if (drop) {
    ++counters_.dropped;
    close();
    return 0;
  }
  return inner_->read_some_for(dst, timeout, timed_out);
}

bool FaultInjectingTransport::write_all(std::span<const std::byte> src) {
  ++counters_.writes;
  if (dead_) return false;
  return write_with_faults(src);
}

bool FaultInjectingTransport::write_with_faults(
    std::span<const std::byte> src) {
  // Fixed draw order per write: corrupt?, truncate?, shred?, delay?, then
  // any fault-parameter draws. Drawing everything up front keeps the
  // schedule a pure function of (seed, op index).
  const bool corrupt = next_unit() < cfg_.corrupt_byte && !src.empty();
  const bool truncate = next_unit() < cfg_.truncate_write && !src.empty();
  const bool shred = next_unit() < cfg_.shred_write && src.size() > 1;
  maybe_delay();

  std::vector<std::byte> scratch;
  std::span<const std::byte> payload = src;
  if (corrupt) {
    ++counters_.corrupted;
    scratch.assign(src.begin(), src.end());
    const std::size_t at = next_u64() % scratch.size();
    // XOR with a nonzero byte guarantees the value actually changes.
    const auto flip = static_cast<unsigned char>(1 + next_u64() % 255);
    scratch[at] = static_cast<std::byte>(
        static_cast<unsigned char>(scratch[at]) ^ flip);
    payload = scratch;
  }
  if (truncate) {
    ++counters_.truncated;
    // Deliver a strict prefix (possibly empty), then die mid-message.
    const std::size_t keep = next_u64() % payload.size();
    const bool sent = keep == 0 || inner_->write_all(payload.first(keep));
    (void)sent;  // the peer is getting a broken stream either way
    close();
    return false;
  }
  if (!shred) return inner_->write_all(payload);

  ++counters_.shredded;
  // Segment sizes 1..7 bytes: the peer's framing layer must reassemble a
  // header/record from many short reads.
  std::size_t off = 0;
  while (off < payload.size()) {
    const std::size_t n =
        std::min<std::size_t>(1 + next_u64() % 7, payload.size() - off);
    if (!inner_->write_all(payload.subspan(off, n))) return false;
    off += n;
  }
  return true;
}

void FaultInjectingTransport::close() {
  dead_ = true;
  if (inner_) inner_->close();
}

}  // namespace amopt::service
