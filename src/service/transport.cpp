#include "amopt/service/transport.hpp"

#include "amopt/service/wire.hpp"

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <cstring>
#include <mutex>
#include <stdexcept>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#define AMOPT_HAVE_SOCKETS 1
#include <arpa/inet.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>
#else
#define AMOPT_HAVE_SOCKETS 0
#endif

namespace amopt::service {

namespace {

// ------------------------------------------------------------- loopback
// One direction of the in-process pipe: a fixed-capacity ring. The buffer
// is allocated once at construction, so steady-state traffic through a
// loopback pair never touches the heap — a requirement of the shard
// hot-path allocation guard (tests/test_server_alloc.cpp).
class Ring {
 public:
  explicit Ring(std::size_t capacity) : buf_(capacity) {}

  std::size_t read_some(std::span<std::byte> dst) {
    std::unique_lock<std::mutex> lock(m_);
    cv_readable_.wait(lock, [&] { return size_ > 0 || closed_; });
    return drain_locked(dst);
  }

  std::size_t read_some_for(std::span<std::byte> dst,
                            std::chrono::microseconds timeout,
                            bool& timed_out) {
    std::unique_lock<std::mutex> lock(m_);
    timed_out = !cv_readable_.wait_for(lock, timeout,
                                       [&] { return size_ > 0 || closed_; });
    if (timed_out) return 0;
    return drain_locked(dst);
  }
  bool write_all(std::span<const std::byte> src) {
    std::size_t off = 0;
    while (off < src.size()) {
      std::unique_lock<std::mutex> lock(m_);
      cv_writable_.wait(lock, [&] { return size_ < buf_.size() || closed_; });
      if (closed_) return false;
      const std::size_t n = std::min(src.size() - off, buf_.size() - size_);
      std::size_t tail = head_ + size_ >= buf_.size()
                             ? head_ + size_ - buf_.size()
                             : head_ + size_;
      for (std::size_t i = 0; i < n; ++i) {
        buf_[tail] = src[off + i];
        tail = tail + 1 == buf_.size() ? 0 : tail + 1;
      }
      size_ += n;
      off += n;
      cv_readable_.notify_one();
    }
    return true;
  }

  void close() {
    std::lock_guard<std::mutex> lock(m_);
    closed_ = true;
    cv_readable_.notify_all();
    cv_writable_.notify_all();
  }

 private:
  // Copies out up to dst.size() buffered bytes; caller holds m_ and has
  // already waited for data-or-close.
  std::size_t drain_locked(std::span<std::byte> dst) {
    if (size_ == 0) return 0;  // closed and drained: clean EOF
    const std::size_t n = std::min(dst.size(), size_);
    for (std::size_t i = 0; i < n; ++i) {
      dst[i] = buf_[head_];
      head_ = head_ + 1 == buf_.size() ? 0 : head_ + 1;
    }
    size_ -= n;
    cv_writable_.notify_one();
    return n;
  }

  std::mutex m_;
  std::condition_variable cv_readable_;
  std::condition_variable cv_writable_;
  std::vector<std::byte> buf_;
  std::size_t head_ = 0;
  std::size_t size_ = 0;
  bool closed_ = false;
};

/// Both directions, shared by the two endpoints via shared_ptr so either
/// end may outlive the other.
struct LoopbackState {
  LoopbackState(std::size_t cap) : a_to_b(cap), b_to_a(cap) {}
  Ring a_to_b;
  Ring b_to_a;
};

class LoopbackTransport final : public Transport {
 public:
  LoopbackTransport(std::shared_ptr<LoopbackState> st, bool is_a)
      : st_(std::move(st)), is_a_(is_a) {}
  ~LoopbackTransport() override { close(); }

  std::size_t read_some(std::span<std::byte> dst) override {
    return (is_a_ ? st_->b_to_a : st_->a_to_b).read_some(dst);
  }
  std::size_t read_some_for(std::span<std::byte> dst,
                            std::chrono::microseconds timeout,
                            bool& timed_out) override {
    return (is_a_ ? st_->b_to_a : st_->a_to_b)
        .read_some_for(dst, timeout, timed_out);
  }
  bool write_all(std::span<const std::byte> src) override {
    return (is_a_ ? st_->a_to_b : st_->b_to_a).write_all(src);
  }
  void close() override {
    st_->a_to_b.close();
    st_->b_to_a.close();
  }

 private:
  std::shared_ptr<LoopbackState> st_;
  bool is_a_;
};

// ------------------------------------------------------------------ TCP
#if AMOPT_HAVE_SOCKETS
class TcpTransport final : public Transport {
 public:
  explicit TcpTransport(int fd) : fd_(fd) {
    // Request/response framing sends small frames; waiting for Nagle
    // coalescing just adds latency to every quote.
    int one = 1;
    ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
#if defined(__APPLE__)
    // macOS has no MSG_NOSIGNAL; suppress SIGPIPE at the socket instead so
    // a write to a dead peer fails with EPIPE rather than killing the
    // daemon.
    ::setsockopt(fd_, SOL_SOCKET, SO_NOSIGPIPE, &one, sizeof(one));
#endif
  }
  ~TcpTransport() override { close(); }

  std::size_t read_some(std::span<std::byte> dst) override {
    for (;;) {
      const ssize_t n = ::recv(fd_, dst.data(), dst.size(), 0);
      if (n > 0) return static_cast<std::size_t>(n);
      if (n < 0 && errno == EINTR) continue;
      return 0;  // peer closed or hard error: EOF either way
    }
  }

  std::size_t read_some_for(std::span<std::byte> dst,
                            std::chrono::microseconds timeout,
                            bool& timed_out) override {
    timed_out = false;
    auto deadline = std::chrono::steady_clock::now() + timeout;
    for (;;) {
      const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
          deadline - std::chrono::steady_clock::now());
      // Round up so a sub-millisecond budget still polls once rather than
      // spinning with timeout 0.
      const int ms = left.count() <= 0 ? 0
                                       : static_cast<int>(std::min<long long>(
                                             left.count() + 1, 1 << 30));
      pollfd pfd{fd_, POLLIN, 0};
      const int rc = ::poll(&pfd, 1, ms);
      if (rc < 0) {
        if (errno == EINTR) continue;  // re-derive the remaining budget
        return 0;                      // hard poll failure reads as EOF
      }
      if (rc == 0) {
        timed_out = true;
        return 0;
      }
      return read_some(dst);  // readable (or HUP/ERR: recv reports EOF)
    }
  }

  bool write_all(std::span<const std::byte> src) override {
    std::size_t off = 0;
    while (off < src.size()) {
#if defined(MSG_NOSIGNAL)
      constexpr int kSendFlags = MSG_NOSIGNAL;
#else
      constexpr int kSendFlags = 0;  // Apple: SO_NOSIGPIPE set in the ctor
#endif
      const ssize_t n =
          ::send(fd_, src.data() + off, src.size() - off, kSendFlags);
      if (n < 0) {
        if (errno == EINTR) continue;
        return false;
      }
      off += static_cast<std::size_t>(n);
    }
    return true;
  }

  void close() override {
    if (fd_ >= 0) {
      ::shutdown(fd_, SHUT_RDWR);
      ::close(fd_);
      fd_ = -1;
    }
  }

 private:
  int fd_ = -1;
};
#endif  // AMOPT_HAVE_SOCKETS

}  // namespace

std::pair<std::unique_ptr<Transport>, std::unique_ptr<Transport>>
loopback_pair(std::size_t buffer_bytes) {
  auto st = std::make_shared<LoopbackState>(std::max<std::size_t>(
      buffer_bytes, wire::kHeaderBytes));
  return {std::make_unique<LoopbackTransport>(st, true),
          std::make_unique<LoopbackTransport>(st, false)};
}

#if AMOPT_HAVE_SOCKETS

TcpListener::TcpListener(std::uint16_t port, bool any_interface) {
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) throw std::runtime_error("amopt: cannot create TCP socket");
  int one = 1;
  ::setsockopt(fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(any_interface ? INADDR_ANY : INADDR_LOOPBACK);
  if (::bind(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0 ||
      ::listen(fd_, 64) != 0) {
    ::close(fd_);
    fd_ = -1;
    throw std::runtime_error("amopt: cannot bind/listen TCP socket");
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(fd_, reinterpret_cast<sockaddr*>(&addr), &len) == 0)
    port_ = ntohs(addr.sin_port);
}

TcpListener::~TcpListener() { close(); }

std::unique_ptr<Transport> TcpListener::accept() {
  const int fd = fd_.load(std::memory_order_acquire);
  if (fd < 0) return nullptr;
  for (;;) {
    const int client = ::accept(fd, nullptr, nullptr);
    if (client >= 0) return std::make_unique<TcpTransport>(client);
    // EINTR: a signal; ECONNABORTED: the peer hung up while queued —
    // neither says anything about the NEXT connection, so keep accepting.
    if (errno == EINTR || errno == ECONNABORTED) continue;
    return nullptr;  // closed under us, or a hard accept failure
  }
}

void TcpListener::close() {
  // exchange() makes close() idempotent under concurrency: exactly one
  // caller wins the fd and shuts it down, which unblocks accept().
  const int fd = fd_.exchange(-1, std::memory_order_acq_rel);
  if (fd >= 0) {
    ::shutdown(fd, SHUT_RDWR);
    ::close(fd);
  }
}

std::unique_ptr<Transport> tcp_connect(const std::string& host,
                                       std::uint16_t port) {
  addrinfo hints{};
  hints.ai_family = AF_INET;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* res = nullptr;
  if (::getaddrinfo(host.c_str(), nullptr, &hints, &res) != 0 || res == nullptr)
    return nullptr;
  sockaddr_in addr{};
  std::memcpy(&addr, res->ai_addr,
              std::min(sizeof(addr), static_cast<std::size_t>(res->ai_addrlen)));
  ::freeaddrinfo(res);
  addr.sin_port = htons(port);
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return nullptr;
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return nullptr;
  }
  return std::make_unique<TcpTransport>(fd);
}

#else  // !AMOPT_HAVE_SOCKETS — stubbed so non-POSIX builds still link; the
       // loopback transport (and therefore the daemon, tests and bench)
       // works everywhere.

TcpListener::TcpListener(std::uint16_t, bool) {
  throw std::runtime_error("amopt: TCP transport not available on this platform");
}
TcpListener::~TcpListener() = default;
std::unique_ptr<Transport> TcpListener::accept() { return nullptr; }
void TcpListener::close() {}
std::unique_ptr<Transport> tcp_connect(const std::string&, std::uint16_t) {
  return nullptr;
}

#endif  // AMOPT_HAVE_SOCKETS

}  // namespace amopt::service
