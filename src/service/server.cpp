#include "amopt/service/server.hpp"

#include <atomic>
#include <bit>
#include <chrono>
#include <cstring>
#include <limits>
#include <string>
#include <string_view>
#include <thread>

#include "amopt/core/task_pool.hpp"
#include "amopt/service/wire.hpp"

namespace amopt::service {

using pricing::PricingRequest;
using pricing::PricingResult;

namespace {

// Static shed diagnostics: load shedding is exactly when the daemon must
// not mint strings, so every message on these paths is a fixed literal and
// the fill below reuses the result's message capacity. (The legacy
// `out[i] = PricingResult{};` idiom would free that capacity and put an
// allocation back on the path — tests/test_server_alloc.cpp pins this.)
constexpr std::string_view kShedStopping =
    "overloaded: server stopping; retry after a backoff";
constexpr std::string_view kShedQueueFull =
    "overloaded: shard queue full; retry after a backoff";
constexpr std::string_view kShedScratch =
    "overloaded: shard scratch footprint over ceiling; retry after a backoff";
constexpr std::string_view kShedSpectrum =
    "overloaded: shard spectrum bytes over ceiling; retry after a backoff";
constexpr std::string_view kShedDrain =
    "overloaded: server draining; retry against another instance";
constexpr std::string_view kShedDeadline =
    "deadline exceeded: request went stale in the shard queue; "
    "nothing was computed";

void fill_shed(PricingResult& r, pricing::Status s, std::string_view msg) {
  r.status = s;
  r.message.assign(msg.data(), msg.size());
  r.price = std::numeric_limits<double>::quiet_NaN();
  r.greeks = {};
  r.implied_vol = {};
  r.error = nullptr;
}

}  // namespace

/// One shard: a bounded MPSC item ring, a long-lived Pricer session, and
/// the reusable buffers that keep the hot loop allocation-free. Since the
/// execution-plane rework a shard owns no thread of its own: the first
/// submission to an idle shard arms a detached drain task on the shared
/// `core::TaskPool`, and that task loops until the queue is empty.
struct Server::Shard {
  struct Item {
    const PricingRequest* req = nullptr;
    PricingResult* out = nullptr;
    Batch* done = nullptr;
    /// Absolute cutoff; max() = no deadline. Checked by the drain right
    /// before the item would join a pricing batch.
    std::chrono::steady_clock::time_point deadline =
        std::chrono::steady_clock::time_point::max();
  };

  explicit Shard(const ServerConfig& c)
      : pricer(c.pricer), cfg(&c), ring(c.queue_capacity) {
    drain_task.fn = &drain_entry;
    drain_task.arg = this;
    drain_task.join = nullptr;
  }

  pricing::Pricer pricer;
  const ServerConfig* cfg;  ///< the owning Server's config (stable address)

  // Queue state, under `m`. `cv` wakes a lingering drain ("item arrived"
  // or "stopping") — submitters never wait, they reject instead. `armed`
  // is true while a drain task is scheduled or running for this shard;
  // it guarantees exactly one drain executor at a time, so the reused
  // batch buffers below need no further synchronization.
  std::mutex m;
  std::condition_variable cv;
  std::vector<Item> ring;
  std::size_t head = 0;
  std::size_t size = 0;
  bool stopping = false;
  bool armed = false;
  core::TaskPool::Task drain_task;  ///< reusable: re-pushed on each arm
  /// stop(grace) sets this once the grace expires: the drain stops
  /// pricing queued items and sheds them with `overloaded` instead.
  std::atomic<bool> shed_pending{false};

  // Drain-owned, reused across batches (capacities converge, then stay).
  // Exclusive ownership follows from the `armed` protocol above.
  std::vector<Item> items;
  std::vector<std::size_t> live;  ///< indices of items that survive shedding
  std::vector<PricingRequest> batch;
  std::vector<PricingResult> results;
  pricing::Pricer::BatchScratch scratch;

  // Published after every batch for lock-free admission checks and stats.
  // `scratch_bytes` is the process-wide arena footprint (the sum over
  // every pool worker's arena), not one thread's high-water mark — with
  // pooled execution that is the figure admission must compare against.
  std::atomic<std::size_t> scratch_bytes{0};
  std::atomic<std::size_t> spectrum_bytes{0};
  std::atomic<std::uint64_t> accepted{0};
  std::atomic<std::uint64_t> rejected{0};
  std::atomic<std::uint64_t> served{0};
  std::atomic<std::uint64_t> batches{0};
  std::atomic<std::uint64_t> deadline_shed{0};
  std::atomic<std::uint64_t> drain_shed{0};

  static void drain_entry(void* p) { static_cast<Shard*>(p)->drain(); }

  void drain() {
    for (;;) {
      items.clear();
      {
        std::unique_lock<std::mutex> lock(m);
        if (size == 0) {
          // Fully drained: disarm under the same lock submitters check,
          // so either they see the queue empty-and-disarmed and schedule
          // a fresh drain, or this loop sees their item. No lost wakeups.
          armed = false;
          return;
        }
        if (cfg->coalesce_window_us > 0 && size < cfg->max_coalesced_items &&
            !stopping) {
          // First item of the batch is in hand; linger for stragglers so a
          // burst of single-quote submissions merges into one price_many.
          const auto deadline =
              std::chrono::steady_clock::now() +
              std::chrono::microseconds(cfg->coalesce_window_us);
          while (size < cfg->max_coalesced_items && !stopping &&
                 cv.wait_until(lock, deadline) != std::cv_status::timeout) {
          }
        }
        const std::size_t n = std::min(size, cfg->max_coalesced_items);
        for (std::size_t i = 0; i < n; ++i) {
          items.push_back(ring[head]);
          head = head + 1 == ring.size() ? 0 : head + 1;
        }
        size -= n;
      }

      // Shed BEFORE pricing: a bounded-grace drain sheds everything still
      // queued, and an expired deadline means nobody wants the quote any
      // more — either way the pricing batch is built only from items
      // someone is still waiting on. Shed fills are static-message and
      // capacity-reusing, so shedding under overload is allocation-free.
      const bool shed_all = shed_pending.load(std::memory_order_relaxed);
      const auto now = std::chrono::steady_clock::now();
      batch.clear();
      live.clear();
      std::uint64_t n_deadline = 0, n_drain = 0;
      for (std::size_t i = 0; i < items.size(); ++i) {
        if (shed_all) {
          fill_shed(*items[i].out, pricing::Status::overloaded, kShedDrain);
          ++n_drain;
        } else if (items[i].deadline <= now) {
          fill_shed(*items[i].out, pricing::Status::deadline_exceeded,
                    kShedDeadline);
          ++n_deadline;
        } else {
          live.push_back(i);
          batch.push_back(*items[i].req);
        }
      }
      if (!batch.empty()) {
        pricer.price_many_into(batch, results, scratch);
        for (std::size_t k = 0; k < live.size(); ++k)
          *items[live[k]].out = std::move(results[k]);
      }

      // Publish the admission/stats snapshot BEFORE signalling completion,
      // so a caller that waits on its batch and then submits again is
      // admitted against figures at least as fresh as its own work.
      if (!batch.empty()) {
        const pricing::Pricer::Stats st = pricer.stats();
        scratch_bytes.store(st.scratch_total_bytes, std::memory_order_relaxed);
        spectrum_bytes.store(st.spectrum_bytes, std::memory_order_relaxed);
        served.fetch_add(batch.size(), std::memory_order_relaxed);
        batches.fetch_add(1, std::memory_order_relaxed);
      }
      if (n_deadline != 0)
        deadline_shed.fetch_add(n_deadline, std::memory_order_relaxed);
      if (n_drain != 0)
        drain_shed.fetch_add(n_drain, std::memory_order_relaxed);

      // Complete each run of items sharing a Batch handle with one lock.
      // The handle's mutex also sequences the result writes above before
      // any wait() that observes pending == 0.
      for (std::size_t i = 0; i < items.size();) {
        Batch* b = items[i].done;
        std::size_t n = 1;
        while (i + n < items.size() && items[i + n].done == b) ++n;
        {
          std::lock_guard<std::mutex> lock(b->m_);
          b->pending_ -= n;
          if (b->pending_ == 0) b->cv_.notify_all();
        }
        i += n;
      }
    }
  }
};

Server::Server(ServerConfig cfg) : cfg_(cfg) {
  if (cfg_.shards == 0) cfg_.shards = 1;
  if (cfg_.queue_capacity == 0) cfg_.queue_capacity = 1;
  if (cfg_.max_coalesced_items == 0) cfg_.max_coalesced_items = 1;
  shards_.reserve(cfg_.shards);
  for (std::size_t i = 0; i < cfg_.shards; ++i)
    shards_.push_back(std::make_unique<Shard>(cfg_));
}

Server::~Server() { stop(); }

void Server::stop() { stop_impl(nullptr); }

void Server::stop(std::chrono::microseconds grace) { stop_impl(&grace); }

void Server::stop_impl(const std::chrono::microseconds* grace) {
  for (auto& sp : shards_) {
    std::lock_guard<std::mutex> lock(sp->m);
    sp->stopping = true;
    sp->cv.notify_all();  // cut any in-flight coalescing linger short
  }
  // Quiesce: an armed drain keeps popping until its queue is empty, then
  // disarms — wait for that, item by shard. The pool guarantees at least
  // one worker thread, so a scheduled drain task always executes.
  const auto cutoff = grace == nullptr
                          ? std::chrono::steady_clock::time_point::max()
                          : std::chrono::steady_clock::now() + *grace;
  bool shedding = false;
  for (auto& sp : shards_) {
    for (;;) {
      {
        std::lock_guard<std::mutex> lock(sp->m);
        if (sp->size == 0 && !sp->armed) break;
      }
      if (!shedding && std::chrono::steady_clock::now() >= cutoff) {
        // Grace expired: flip every shard to shed mode. The drains finish
        // whatever price_many is in flight, then complete the rest of
        // their queues with `overloaded` — bounded by compute already
        // started, not by queue depth.
        shedding = true;
        for (auto& other : shards_) {
          other->shed_pending.store(true, std::memory_order_relaxed);
          std::lock_guard<std::mutex> lock(other->m);
          other->cv.notify_all();
        }
      }
      std::this_thread::yield();
    }
  }
}

std::size_t Server::shard_of(const PricingRequest& q) const noexcept {
  if (shards_.size() <= 1) return 0;
  // FNV-1a over the kernel-identity axes: requests that can share a
  // kernel cache (and, under cross-expiry sharing, a whole chain) must
  // hash identically, so they meet in one session's warm state. Spot,
  // strike, expiry and T deliberately do NOT contribute.
  std::uint64_t h = 1469598103934665603ull;
  const auto mix = [&h](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= v >> (8 * i) & 0xffu;
      h *= 1099511628211ull;
    }
  };
  mix(static_cast<std::uint64_t>(q.model) |
      static_cast<std::uint64_t>(q.right) << 8 |
      static_cast<std::uint64_t>(q.style) << 16 |
      static_cast<std::uint64_t>(q.engine) << 24);
  mix(std::bit_cast<std::uint64_t>(q.spec.R));
  mix(std::bit_cast<std::uint64_t>(q.spec.V));
  mix(std::bit_cast<std::uint64_t>(q.spec.Y));
  return static_cast<std::size_t>(h % shards_.size());
}

void Server::submit(std::span<const PricingRequest> requests,
                    PricingResult* out, Batch& done) {
  submit(requests, nullptr, out, done);
}

void Server::submit(std::span<const PricingRequest> requests,
                    const std::chrono::steady_clock::time_point* deadlines,
                    PricingResult* out, Batch& done) {
  if (requests.empty()) return;
  {
    // The full count goes pending before any item is enqueued, so `done`
    // cannot ring empty while later items of this span are still in
    // flight through this loop.
    std::lock_guard<std::mutex> lock(done.m_);
    done.pending_ += requests.size();
  }
  for (std::size_t i = 0; i < requests.size(); ++i) {
    Shard& s = *shards_[shard_of(requests[i])];
    const std::size_t depth_cap =
        cfg_.admit_queue_depth == 0
            ? s.ring.size()
            : std::min(cfg_.admit_queue_depth, s.ring.size());
    // Whole hint messages are fixed literals (not assembled per item), so
    // shedding under overload stays off the heap — see fill_shed above.
    std::string_view why{};
    bool needs_schedule = false;
    {
      std::lock_guard<std::mutex> lock(s.m);
      if (s.stopping) {
        why = kShedStopping;
      } else if (s.size >= depth_cap) {
        why = kShedQueueFull;
      } else if (cfg_.admit_scratch_bytes != 0 &&
                 s.scratch_bytes.load(std::memory_order_relaxed) >
                     cfg_.admit_scratch_bytes) {
        why = kShedScratch;
      } else if (cfg_.admit_spectrum_bytes != 0 &&
                 s.spectrum_bytes.load(std::memory_order_relaxed) >
                     cfg_.admit_spectrum_bytes) {
        why = kShedSpectrum;
      } else {
        std::size_t tail = s.head + s.size;
        if (tail >= s.ring.size()) tail -= s.ring.size();
        s.ring[tail] = Shard::Item{
            &requests[i], &out[i], &done,
            deadlines == nullptr
                ? std::chrono::steady_clock::time_point::max()
                : deadlines[i]};
        ++s.size;
        needs_schedule = !s.armed;
        s.armed = true;
        s.cv.notify_one();  // a lingering drain picks this item up
      }
    }
    if (why.empty()) {
      s.accepted.fetch_add(1, std::memory_order_relaxed);
      // First item into an idle shard: schedule its drain on the shared
      // pool. If the pool's injection ring is momentarily full, drain on
      // this thread instead — the item must not strand.
      if (needs_schedule &&
          !core::TaskPool::instance().submit_detached(&s.drain_task))
        s.drain();
    } else {
      // Shed load instead of queueing: the item completes right here with
      // a retry hint, allocation-free (overload is exactly when the
      // daemon must not grow the heap).
      fill_shed(out[i], pricing::Status::overloaded, why);
      s.rejected.fetch_add(1, std::memory_order_relaxed);
      std::lock_guard<std::mutex> lock(done.m_);
      if (--done.pending_ == 0) done.cv_.notify_all();
    }
  }
}

void Server::price_into(std::span<const PricingRequest> requests,
                        std::vector<PricingResult>& out) {
  out.resize(requests.size());
  Batch done;
  submit(requests, out.data(), done);
  done.wait();
}

std::vector<PricingResult> Server::price(
    std::span<const PricingRequest> requests) {
  std::vector<PricingResult> out;
  price_into(requests, out);
  return out;
}

void Server::serve(Transport& transport) {
  // All connection state lives in these reused buffers: at steady state
  // (stable frame shape) the loop performs no heap allocations.
  std::vector<std::byte> in(std::size_t{1} << 16);
  std::vector<std::byte> reply;
  std::vector<PricingRequest> requests;
  std::vector<std::uint64_t> deadline_us;
  std::vector<std::chrono::steady_clock::time_point> deadlines;
  std::vector<PricingResult> results;
  Batch done;
  std::size_t have = 0;
  for (;;) {
    // Drain every complete frame already buffered.
    for (;;) {
      std::size_t consumed = 0;
      wire::FrameHeader hdr;
      const wire::DecodeError e = wire::decode_request_batch(
          std::span<const std::byte>(in.data(), have), requests, deadline_us,
          hdr, consumed);
      if (e == wire::DecodeError::need_more) break;
      if (e != wire::DecodeError::ok) {
        // Malformed frame: the stream is desynchronized, so answer with a
        // one-record diagnostic and hang up rather than guess at resync.
        // The diagnostic goes out as v1 — `error` is legal in both
        // versions, and a header too corrupt to parse has no version to
        // mirror.
        decode_errors_.fetch_add(1, std::memory_order_relaxed);
        std::vector<PricingResult> diag(1);
        diag[0].status = pricing::Status::error;
        diag[0].message =
            std::string("decode: ") + std::string(wire::to_string(e));
        reply.clear();
        wire::encode_result_batch(diag, reply, wire::kVersion1);
        (void)transport.write_all(reply);
        transport.close();
        return;
      }
      if (hdr.attempt > 0)
        retries_observed_.fetch_add(1, std::memory_order_relaxed);
      // Relative wire budgets become absolute cutoffs NOW — queueing time
      // inside the shard counts against the caller's budget, which is the
      // point: the coalescing drain sheds what went stale waiting.
      const auto now = std::chrono::steady_clock::now();
      deadlines.resize(requests.size());
      for (std::size_t i = 0; i < requests.size(); ++i)
        deadlines[i] =
            deadline_us[i] == 0
                ? std::chrono::steady_clock::time_point::max()
                : now + std::chrono::microseconds(deadline_us[i]);
      results.resize(requests.size());
      submit(requests, deadlines.data(), results.data(), done);
      done.wait();
      reply.clear();
      // Answer in the version the frame arrived with: a v1 peer never
      // sees a v2 status byte (and can never receive deadline_exceeded,
      // because a v1 frame cannot carry a deadline).
      wire::encode_result_batch(results, reply, hdr.version);
      if (!transport.write_all(reply)) return;
      std::memmove(in.data(), in.data() + consumed, have - consumed);
      have -= consumed;
    }
    // Make room for the announced frame (when the header is readable) or
    // one more read chunk, then pull bytes.
    wire::FrameHeader hdr;
    std::size_t want = have + (std::size_t{1} << 16);
    if (wire::peek_header({in.data(), have}, hdr) == wire::DecodeError::ok)
      want = std::max(want, wire::frame_bytes(hdr));
    if (in.size() < want) in.resize(want);
    const std::size_t n = transport.read_some(
        std::span<std::byte>(in.data() + have, in.size() - have));
    if (n == 0) return;  // clean EOF (or transport failure — same exit)
    have += n;
  }
}

Server::Stats Server::stats() const {
  Stats out;
  out.shard.reserve(shards_.size());
  out.shard_counters.reserve(shards_.size());
  for (const auto& sp : shards_) {
    ShardCounters c;
    c.accepted = sp->accepted.load(std::memory_order_relaxed);
    c.rejected = sp->rejected.load(std::memory_order_relaxed);
    c.deadline_shed = sp->deadline_shed.load(std::memory_order_relaxed);
    c.drain_shed = sp->drain_shed.load(std::memory_order_relaxed);
    out.submitted += c.accepted;
    out.rejected += c.rejected;
    out.deadline_shed += c.deadline_shed;
    out.drain_shed += c.drain_shed;
    out.completed += sp->served.load(std::memory_order_relaxed);
    out.batches += sp->batches.load(std::memory_order_relaxed);
    out.shard.push_back(sp->pricer.stats());
    out.shard_counters.push_back(c);
  }
  out.decode_errors = decode_errors_.load(std::memory_order_relaxed);
  out.retries_observed = retries_observed_.load(std::memory_order_relaxed);
  return out;
}

}  // namespace amopt::service
