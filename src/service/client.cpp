#include "amopt/service/client.hpp"

#include <algorithm>
#include <limits>
#include <string_view>
#include <thread>
#include <utility>

#include "amopt/service/wire.hpp"

namespace amopt::service {

namespace detail {

namespace {
std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9E3779B97F4A7C15ull);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}
}  // namespace

std::uint64_t backoff_us(std::uint64_t initial_us, std::uint64_t max_us,
                         unsigned attempt, std::uint64_t& prng_state) {
  if (initial_us == 0 || attempt == 0) return 0;
  // Saturating doubling: initial << (attempt-1), capped at max_us.
  std::uint64_t base = initial_us;
  for (unsigned i = 1; i < attempt && base < max_us; ++i) base *= 2;
  base = std::min(base, max_us);
  // Jitter to [50%, 100%]: desynchronizes a fleet of clients retrying
  // against the same overloaded shard without ever collapsing to zero.
  const double u =
      static_cast<double>(splitmix64(prng_state) >> 11) * 0x1.0p-53;
  return static_cast<std::uint64_t>(static_cast<double>(base) *
                                    (0.5 + 0.5 * u));
}

}  // namespace detail

namespace {

using pricing::PricingRequest;
using pricing::PricingResult;
using pricing::Status;

// Static terminal diagnostics: the failure paths must not mint strings.
constexpr std::string_view kMsgTransport =
    "amopt: client: transport failed and retry budget is exhausted";
constexpr std::string_view kMsgDeadline =
    "amopt: client: deadline expired before a terminal reply";

// Terminal fill that reuses the result's message capacity (never
// `r = PricingResult{}`, which would free it).
void fill_terminal(PricingResult& r, Status s, std::string_view msg) {
  r.status = s;
  r.message.assign(msg.data(), msg.size());
  r.price = std::numeric_limits<double>::quiet_NaN();
  r.greeks = {};
  r.implied_vol = {};
  r.error = nullptr;
}

}  // namespace

Client::Client(ClientConfig cfg)
    : cfg_(std::move(cfg)), prng_state_(cfg_.jitter_seed) {}

Client::~Client() { disconnect(); }

void Client::disconnect() {
  if (conn_) {
    conn_->close();
    conn_.reset();
  }
}

bool Client::ensure_connected() {
  if (conn_) return true;
  if (!cfg_.connect) return false;
  conn_ = cfg_.connect();
  return conn_ != nullptr;
}

bool Client::price_many(std::span<const PricingRequest> requests,
                        std::vector<PricingResult>& out) {
  return price_many(requests, out, cfg_.default_deadline);
}

bool Client::price_many(std::span<const PricingRequest> requests,
                        std::vector<PricingResult>& out,
                        std::chrono::microseconds deadline) {
  using clock = std::chrono::steady_clock;
  stats_ = CallStats{};
  out.resize(requests.size());
  if (requests.empty()) return true;

  const bool bounded = deadline.count() > 0;
  const clock::time_point cutoff = clock::now() + deadline;
  // Remaining budget in microseconds; huge when unbounded, 0 once spent.
  const auto remaining_us = [&]() -> std::uint64_t {
    if (!bounded) return 0;  // wire encoding: 0 = no deadline
    const auto left = std::chrono::duration_cast<std::chrono::microseconds>(
        cutoff - clock::now());
    return left.count() > 0 ? static_cast<std::uint64_t>(left.count()) : 0;
  };
  const auto expired = [&] { return bounded && clock::now() >= cutoff; };

  // Until an item is answered it wears the transport diagnostic, so every
  // exit path leaves a terminal status behind.
  for (PricingResult& r : out) fill_terminal(r, Status::error, kMsgTransport);

  pending_.resize(requests.size());
  for (std::size_t i = 0; i < requests.size(); ++i) pending_[i] = i;

  for (unsigned attempt = 0; !pending_.empty(); ++attempt) {
    if (expired()) break;
    if (attempt >= cfg_.max_attempts) break;
    if (attempt > 0) {
      std::uint64_t nap = detail::backoff_us(
          static_cast<std::uint64_t>(cfg_.backoff_initial.count()),
          static_cast<std::uint64_t>(cfg_.backoff_max.count()), attempt,
          prng_state_);
      if (bounded) nap = std::min(nap, remaining_us());
      if (nap > 0) {
        std::this_thread::sleep_for(std::chrono::microseconds(nap));
        stats_.backoff_total_us += nap;
      }
      if (expired()) break;
    }

    if (!ensure_connected()) {
      ++stats_.reconnects;
      continue;  // connect failure spends an attempt via the loop counter
    }

    // One v2 frame carrying exactly the still-pending items, each with
    // its remaining budget so the server can shed stale ones pre-pricing.
    frame_reqs_.clear();
    frame_deadlines_.clear();
    const std::uint64_t budget = remaining_us();
    for (const std::size_t i : pending_) {
      frame_reqs_.push_back(requests[i]);
      frame_deadlines_.push_back(budget);
    }
    out_buf_.clear();
    wire::encode_request_batch_v2(
        frame_reqs_, frame_deadlines_,
        static_cast<std::uint8_t>(std::min(attempt, 255u)), out_buf_);
    ++stats_.attempts;
    if (attempt > 0) stats_.retried_items += pending_.size();

    if (!conn_->write_all(out_buf_)) {
      disconnect();  // never read a stale reply off a broken stream
      ++stats_.reconnects;
      continue;
    }

    // Read until one whole result frame decodes (or the stream fails).
    in_buf_.clear();
    std::size_t have = 0;
    bool frame_ok = false;
    for (;;) {
      std::size_t consumed = 0;
      const wire::DecodeError e = wire::decode_result_batch(
          std::span<const std::byte>(in_buf_.data(), have), frame_results_,
          consumed);
      if (e == wire::DecodeError::ok) {
        frame_ok = frame_results_.size() == frame_reqs_.size();
        break;  // a count mismatch is protocol corruption: reconnect
      }
      if (e != wire::DecodeError::need_more) break;  // corrupt reply
      if (expired()) break;
      if (in_buf_.size() < have + 4096) in_buf_.resize(have + 4096);
      const std::span<std::byte> dst(in_buf_.data() + have,
                                     in_buf_.size() - have);
      std::size_t n = 0;
      if (bounded) {
        bool timed_out = false;
        n = conn_->read_some_for(
            dst, std::chrono::microseconds(remaining_us()), timed_out);
        if (timed_out) break;  // expired() turns true on the next check
      } else {
        n = conn_->read_some(dst);
      }
      if (n == 0) break;  // EOF / transport error
      have += n;
    }
    if (!frame_ok) {
      disconnect();
      ++stats_.reconnects;
      continue;
    }

    // Scatter the replies; only `overloaded` items stay pending (the
    // server's explicit try-again-later — everything else is terminal).
    std::size_t kept = 0;
    for (std::size_t j = 0; j < pending_.size(); ++j) {
      const std::size_t i = pending_[j];
      out[i] = std::move(frame_results_[j]);
      if (out[i].status == Status::overloaded) pending_[kept++] = i;
    }
    pending_.resize(kept);
  }

  // Whatever is still pending gets its terminal status now: the deadline
  // if it ran out, otherwise the server's own overloaded verdict (kept as
  // scattered), otherwise the transport placeholder already in place.
  if (!pending_.empty() && expired())
    for (const std::size_t i : pending_)
      fill_terminal(out[i], Status::deadline_exceeded, kMsgDeadline);

  pending_.clear();
  return std::all_of(out.begin(), out.end(),
                     [](const PricingResult& r) { return r.ok(); });
}

}  // namespace amopt::service
