#include "amopt/service/wire.hpp"

#include <bit>
#include <cstring>
#include <limits>
#include <stdexcept>

namespace amopt::service::wire {

std::string_view to_string(DecodeError e) {
  switch (e) {
    case DecodeError::ok: return "ok";
    case DecodeError::need_more: return "need-more";
    case DecodeError::bad_magic: return "bad-magic";
    case DecodeError::bad_version: return "bad-version";
    case DecodeError::bad_kind: return "bad-kind";
    case DecodeError::bad_length: return "bad-length";
    case DecodeError::bad_enum: return "bad-enum";
    case DecodeError::bad_reserved: return "bad-reserved";
    case DecodeError::oversized: return "oversized";
  }
  return "?";
}

namespace {

using pricing::PricingRequest;
using pricing::PricingResult;

// The enum byte ranges the decoders accept, pinned against the real enums
// so adding a variant without updating the wire layer fails the build here
// instead of silently rejecting valid frames.
static_assert(static_cast<int>(pricing::Model::bsm) == 2);
static_assert(static_cast<int>(pricing::Right::put) == 1);
static_assert(static_cast<int>(pricing::Style::european) == 1);
static_assert(static_cast<int>(pricing::Engine::boundary) == 6);
static_assert(static_cast<int>(pricing::Status::overloaded) == 4);
static_assert(static_cast<int>(pricing::Status::deadline_exceeded) == 5);
static_assert(static_cast<int>(core::BoundaryDrift::growing) == 1);
static_assert(static_cast<int>(core::MemoryPlane::heap) == 1);
static_assert(static_cast<int>(conv::Policy::Path::fft_packed) == 3);

// ---------------------------------------------------------------- raw I/O
// All accessors go through memcpy (defined for any alignment, no aliasing
// violation); on little-endian hosts that IS the wire order and compiles to
// a plain load/store, otherwise the bytes are swapped explicitly.

template <typename U>
[[nodiscard]] U byteswap(U v) {
  U out = 0;
  for (std::size_t i = 0; i < sizeof(U); ++i)
    out = static_cast<U>(out << 8 | (v >> (8 * i) & 0xffu));
  return out;
}

template <typename U>
void store_le(std::byte* p, U v) {
  if constexpr (std::endian::native != std::endian::little) v = byteswap(v);
  std::memcpy(p, &v, sizeof(U));
}

template <typename U>
[[nodiscard]] U load_le(const std::byte* p) {
  U v;
  std::memcpy(&v, p, sizeof(U));
  if constexpr (std::endian::native != std::endian::little) v = byteswap(v);
  return v;
}

void store_f64(std::byte* p, double v) {
  store_le(p, std::bit_cast<std::uint64_t>(v));
}
[[nodiscard]] double load_f64(const std::byte* p) {
  return std::bit_cast<double>(load_le<std::uint64_t>(p));
}
void store_i64(std::byte* p, std::int64_t v) {
  store_le(p, static_cast<std::uint64_t>(v));
}
[[nodiscard]] std::int64_t load_i64(const std::byte* p) {
  return static_cast<std::int64_t>(load_le<std::uint64_t>(p));
}
void store_i32(std::byte* p, std::int32_t v) {
  store_le(p, static_cast<std::uint32_t>(v));
}
[[nodiscard]] std::int32_t load_i32(const std::byte* p) {
  return static_cast<std::int32_t>(load_le<std::uint32_t>(p));
}

void put_header(std::byte* p, std::uint8_t version, Kind kind,
                std::uint8_t attempt, std::uint32_t count,
                std::uint32_t payload_bytes) {
  store_le<std::uint32_t>(p, kMagic);
  p[4] = static_cast<std::byte>(version);
  p[5] = static_cast<std::byte>(kind);
  p[6] = static_cast<std::byte>(attempt);  // v1: reserved (0)
  p[7] = std::byte{0};                     // reserved in both versions
  store_le<std::uint32_t>(p + 8, count);
  store_le<std::uint32_t>(p + 12, payload_bytes);
}

/// Per-version request-record stride (the only layout difference: v2
/// appends a trailing u64 deadline_us at offset 144).
[[nodiscard]] constexpr std::size_t request_stride(std::uint8_t version) {
  return version >= 2 ? kRequestRecordBytesV2 : kRequestRecordBytes;
}

// ----------------------------------------------------------- request recs
// Record layout (offsets in bytes; total kRequestRecordBytes = 144):
//    0  f64 x6   spec S, K, R, V, Y, expiry_years
//   48  i64      T
//   56  u8 x6    model, right, style, engine, compute, has_solver
//   62  u16      reserved (0)
//   64  f64      target_price
//   72  f64 x3   iv.tol, iv.vol_lo, iv.vol_hi
//   96  i32/u32  iv.max_iterations, reserved (0)
//  104  i64      iv.T (carried for exactness; the session ignores it)
//  112  [32]     solver override, all-zero when has_solver == 0:
//       112 i32  base_case        116 i32 alo_nodes
//       120 i64  task_cutoff
//       128 u8x4 parallel, drift, memory, conv_path
//       132 i32  alo_quad         136 i32 alo_iterations
//       140 u32  reserved (0)

void put_request(std::byte* p, const PricingRequest& q) {
  store_f64(p + 0, q.spec.S);
  store_f64(p + 8, q.spec.K);
  store_f64(p + 16, q.spec.R);
  store_f64(p + 24, q.spec.V);
  store_f64(p + 32, q.spec.Y);
  store_f64(p + 40, q.spec.expiry_years);
  store_i64(p + 48, q.T);
  p[56] = static_cast<std::byte>(q.model);
  p[57] = static_cast<std::byte>(q.right);
  p[58] = static_cast<std::byte>(q.style);
  p[59] = static_cast<std::byte>(q.engine);
  p[60] = static_cast<std::byte>(q.compute & 0xffu);
  p[61] = static_cast<std::byte>(q.solver.has_value() ? 1 : 0);
  store_le<std::uint16_t>(p + 62, 0);
  store_f64(p + 64, q.target_price);
  store_f64(p + 72, q.iv.tol);
  store_f64(p + 80, q.iv.vol_lo);
  store_f64(p + 88, q.iv.vol_hi);
  store_i32(p + 96, q.iv.max_iterations);
  store_le<std::uint32_t>(p + 100, 0);
  store_i64(p + 104, q.iv.T);
  if (q.solver.has_value()) {
    const core::SolverConfig& c = *q.solver;
    store_i32(p + 112, c.base_case);
    store_i32(p + 116, c.alo_nodes);
    store_i64(p + 120, c.task_cutoff);
    p[128] = static_cast<std::byte>(c.parallel ? 1 : 0);
    p[129] = static_cast<std::byte>(c.drift);
    p[130] = static_cast<std::byte>(c.memory);
    p[131] = static_cast<std::byte>(c.conv_policy.path);
    store_i32(p + 132, c.alo_quad);
    store_i32(p + 136, c.alo_iterations);
    store_le<std::uint32_t>(p + 140, 0);
  } else {
    std::memset(p + 112, 0, 32);
  }
}

[[nodiscard]] DecodeError get_request(const std::byte* p, PricingRequest& q) {
  const auto u8 = [&](std::size_t off) {
    return static_cast<std::uint8_t>(p[off]);
  };
  if (u8(56) > 2 || u8(57) > 1 || u8(58) > 1 || u8(59) > 6 || u8(61) > 1)
    return DecodeError::bad_enum;
  if (load_le<std::uint16_t>(p + 62) != 0 ||
      load_le<std::uint32_t>(p + 100) != 0)
    return DecodeError::bad_reserved;
  q.spec.S = load_f64(p + 0);
  q.spec.K = load_f64(p + 8);
  q.spec.R = load_f64(p + 16);
  q.spec.V = load_f64(p + 24);
  q.spec.Y = load_f64(p + 32);
  q.spec.expiry_years = load_f64(p + 40);
  q.T = load_i64(p + 48);
  q.model = static_cast<pricing::Model>(u8(56));
  q.right = static_cast<pricing::Right>(u8(57));
  q.style = static_cast<pricing::Style>(u8(58));
  q.engine = static_cast<pricing::Engine>(u8(59));
  q.compute = u8(60);  // unknown bits become a per-item Status, not a
                       // frame error (see wire.hpp versioning rules)
  q.target_price = load_f64(p + 64);
  q.iv.tol = load_f64(p + 72);
  q.iv.vol_lo = load_f64(p + 80);
  q.iv.vol_hi = load_f64(p + 88);
  q.iv.max_iterations = load_i32(p + 96);
  q.iv.T = load_i64(p + 104);
  if (u8(61) == 1) {
    if (u8(129) > 1 || u8(130) > 1 || u8(131) > 3 || u8(128) > 1)
      return DecodeError::bad_enum;
    if (load_le<std::uint32_t>(p + 140) != 0) return DecodeError::bad_reserved;
    core::SolverConfig c;
    c.base_case = load_i32(p + 112);
    c.alo_nodes = load_i32(p + 116);
    c.task_cutoff = load_i64(p + 120);
    c.parallel = u8(128) != 0;
    c.drift = static_cast<core::BoundaryDrift>(u8(129));
    c.memory = static_cast<core::MemoryPlane>(u8(130));
    c.conv_policy.path = static_cast<conv::Policy::Path>(u8(131));
    c.alo_quad = load_i32(p + 132);
    c.alo_iterations = load_i32(p + 136);
    q.solver = c;
  } else {
    // The solver block must be all-zero when absent: free corruption
    // detection over a quarter of the record.
    for (std::size_t off = 112; off < 144; ++off)
      if (u8(off) != 0) return DecodeError::bad_reserved;
    q.solver.reset();
  }
  return DecodeError::ok;
}

// ------------------------------------------------------------ result recs
// Fixed part (kResultRecordBytes = 80), then message_len message bytes:
//    0  u8 status   1 u8 iv.converged   2 u16 reserved   4 u32 message_len
//    8  f64 price
//   16  f64 x6  greeks price, delta, gamma, theta, vega, rho
//   64  f64     implied_vol.vol
//   72  i32/u32 implied_vol.iterations, reserved (0)

void put_result(std::byte* p, const PricingResult& r) {
  p[0] = static_cast<std::byte>(r.status);
  p[1] = static_cast<std::byte>(r.implied_vol.converged ? 1 : 0);
  store_le<std::uint16_t>(p + 2, 0);
  store_le<std::uint32_t>(p + 4,
                          static_cast<std::uint32_t>(r.message.size()));
  store_f64(p + 8, r.price);
  store_f64(p + 16, r.greeks.price);
  store_f64(p + 24, r.greeks.delta);
  store_f64(p + 32, r.greeks.gamma);
  store_f64(p + 40, r.greeks.theta);
  store_f64(p + 48, r.greeks.vega);
  store_f64(p + 56, r.greeks.rho);
  store_f64(p + 64, r.implied_vol.vol);
  store_i32(p + 72, r.implied_vol.iterations);
  store_le<std::uint32_t>(p + 76, 0);
  if (!r.message.empty())
    std::memcpy(p + 80, r.message.data(), r.message.size());
}

[[nodiscard]] DecodeError get_result(const std::byte* p, std::size_t avail,
                                     std::uint8_t version, PricingResult& r,
                                     std::size_t& record_bytes) {
  if (avail < kResultRecordBytes) return DecodeError::bad_length;
  const auto u8 = [&](std::size_t off) {
    return static_cast<std::uint8_t>(p[off]);
  };
  // v1 predates deadline_exceeded: its status byte tops out at overloaded.
  const std::uint8_t status_max = version >= 2 ? 5 : 4;
  if (u8(0) > status_max || u8(1) > 1) return DecodeError::bad_enum;
  if (load_le<std::uint16_t>(p + 2) != 0 ||
      load_le<std::uint32_t>(p + 76) != 0)
    return DecodeError::bad_reserved;
  const std::uint32_t msg_len = load_le<std::uint32_t>(p + 4);
  if (msg_len > avail - kResultRecordBytes) return DecodeError::bad_length;
  r.status = static_cast<pricing::Status>(u8(0));
  r.implied_vol.converged = u8(1) != 0;
  r.price = load_f64(p + 8);
  r.greeks.price = load_f64(p + 16);
  r.greeks.delta = load_f64(p + 24);
  r.greeks.gamma = load_f64(p + 32);
  r.greeks.theta = load_f64(p + 40);
  r.greeks.vega = load_f64(p + 48);
  r.greeks.rho = load_f64(p + 56);
  r.implied_vol.vol = load_f64(p + 64);
  r.implied_vol.iterations = load_i32(p + 72);
  r.message.assign(reinterpret_cast<const char*>(p) + kResultRecordBytes,
                   msg_len);
  r.error = nullptr;  // exception_ptr does not cross the wire
  record_bytes = kResultRecordBytes + msg_len;
  return DecodeError::ok;
}

}  // namespace

// ---------------------------------------------------------------- encode

void encode_request_batch(std::span<const PricingRequest> requests,
                          std::vector<std::byte>& out) {
  const std::size_t payload = requests.size() * kRequestRecordBytes;
  if (requests.size() > std::numeric_limits<std::uint32_t>::max() ||
      kHeaderBytes + payload > kMaxFrameBytes)
    throw std::length_error("amopt: request batch exceeds wire frame limits");
  const std::size_t base = out.size();
  out.resize(base + kHeaderBytes + payload);
  put_header(out.data() + base, kVersion1, Kind::request_batch, 0,
             static_cast<std::uint32_t>(requests.size()),
             static_cast<std::uint32_t>(payload));
  std::byte* p = out.data() + base + kHeaderBytes;
  for (const PricingRequest& q : requests) {
    put_request(p, q);
    p += kRequestRecordBytes;
  }
}

void encode_request_batch_v2(std::span<const PricingRequest> requests,
                             std::span<const std::uint64_t> deadline_us,
                             std::uint8_t attempt,
                             std::vector<std::byte>& out) {
  if (!deadline_us.empty() && deadline_us.size() != requests.size())
    throw std::length_error(
        "amopt: deadline_us must be empty or match the request count");
  const std::size_t payload = requests.size() * kRequestRecordBytesV2;
  if (requests.size() > std::numeric_limits<std::uint32_t>::max() ||
      kHeaderBytes + payload > kMaxFrameBytes)
    throw std::length_error("amopt: request batch exceeds wire frame limits");
  const std::size_t base = out.size();
  out.resize(base + kHeaderBytes + payload);
  put_header(out.data() + base, kVersion, Kind::request_batch, attempt,
             static_cast<std::uint32_t>(requests.size()),
             static_cast<std::uint32_t>(payload));
  std::byte* p = out.data() + base + kHeaderBytes;
  for (std::size_t i = 0; i < requests.size(); ++i) {
    put_request(p, requests[i]);
    store_le<std::uint64_t>(p + kRequestRecordBytes,
                            deadline_us.empty() ? 0 : deadline_us[i]);
    p += kRequestRecordBytesV2;
  }
}

void encode_result_batch(std::span<const PricingResult> results,
                         std::vector<std::byte>& out, std::uint8_t version) {
  if (version != kVersion1 && version != kVersion)
    throw std::length_error("amopt: unknown result frame version");
  std::size_t payload = results.size() * kResultRecordBytes;
  for (const PricingResult& r : results) {
    if (version < 2 && r.status == pricing::Status::deadline_exceeded)
      throw std::length_error(
          "amopt: deadline_exceeded cannot travel in a v1 result frame");
    payload += r.message.size();
  }
  if (results.size() > std::numeric_limits<std::uint32_t>::max() ||
      kHeaderBytes + payload > kMaxFrameBytes)
    throw std::length_error("amopt: result batch exceeds wire frame limits");
  const std::size_t base = out.size();
  out.resize(base + kHeaderBytes + payload);
  put_header(out.data() + base, version, Kind::result_batch, 0,
             static_cast<std::uint32_t>(results.size()),
             static_cast<std::uint32_t>(payload));
  std::byte* p = out.data() + base + kHeaderBytes;
  for (const PricingResult& r : results) {
    put_result(p, r);
    p += kResultRecordBytes + r.message.size();
  }
}

// ---------------------------------------------------------------- decode

DecodeError peek_header(std::span<const std::byte> buf, FrameHeader& hdr) {
  if (buf.size() < kHeaderBytes) return DecodeError::need_more;
  const std::byte* p = buf.data();
  if (load_le<std::uint32_t>(p) != kMagic) return DecodeError::bad_magic;
  const std::uint8_t version = static_cast<std::uint8_t>(p[4]);
  if (version != kVersion1 && version != kVersion)
    return DecodeError::bad_version;
  const std::uint8_t kind = static_cast<std::uint8_t>(p[5]);
  if (kind != static_cast<std::uint8_t>(Kind::request_batch) &&
      kind != static_cast<std::uint8_t>(Kind::result_batch))
    return DecodeError::bad_kind;
  // Byte 6 is reserved-zero in v1, the attempt counter in v2; byte 7 is
  // reserved-zero in both.
  if (version < 2 && static_cast<std::uint8_t>(p[6]) != 0)
    return DecodeError::bad_reserved;
  if (static_cast<std::uint8_t>(p[7]) != 0) return DecodeError::bad_reserved;
  hdr.version = version;
  hdr.attempt = version >= 2 ? static_cast<std::uint8_t>(p[6]) : 0;
  hdr.kind = static_cast<Kind>(kind);
  hdr.count = load_le<std::uint32_t>(p + 8);
  hdr.payload_bytes = load_le<std::uint32_t>(p + 12);
  if (kHeaderBytes + static_cast<std::size_t>(hdr.payload_bytes) >
      kMaxFrameBytes)
    return DecodeError::oversized;
  return DecodeError::ok;
}

namespace {

// Shared body of both decode_request_batch overloads: `deadline_us` and
// `hdr_out` may be null (the deadline-free overload drops them).
[[nodiscard]] DecodeError decode_request_impl(
    std::span<const std::byte> buf, std::vector<PricingRequest>& out,
    std::vector<std::uint64_t>* deadline_us, FrameHeader* hdr_out,
    std::size_t& consumed) {
  consumed = 0;
  FrameHeader hdr;
  if (const DecodeError e = peek_header(buf, hdr); e != DecodeError::ok)
    return e;
  if (hdr.kind != Kind::request_batch) return DecodeError::bad_kind;
  const std::size_t stride = request_stride(hdr.version);
  if (static_cast<std::size_t>(hdr.payload_bytes) !=
      static_cast<std::size_t>(hdr.count) * stride)
    return DecodeError::bad_length;
  if (buf.size() < frame_bytes(hdr)) return DecodeError::need_more;
  out.resize(hdr.count);
  if (deadline_us != nullptr) deadline_us->resize(hdr.count);
  const std::byte* p = buf.data() + kHeaderBytes;
  for (std::uint32_t i = 0; i < hdr.count; ++i) {
    if (const DecodeError e = get_request(p, out[i]); e != DecodeError::ok)
      return e;
    if (deadline_us != nullptr)
      (*deadline_us)[i] = hdr.version >= 2
                              ? load_le<std::uint64_t>(p + kRequestRecordBytes)
                              : 0;
    p += stride;
  }
  if (hdr_out != nullptr) *hdr_out = hdr;
  consumed = frame_bytes(hdr);
  return DecodeError::ok;
}

}  // namespace

DecodeError decode_request_batch(std::span<const std::byte> buf,
                                 std::vector<PricingRequest>& out,
                                 std::size_t& consumed) {
  return decode_request_impl(buf, out, nullptr, nullptr, consumed);
}

DecodeError decode_request_batch(std::span<const std::byte> buf,
                                 std::vector<PricingRequest>& out,
                                 std::vector<std::uint64_t>& deadline_us,
                                 FrameHeader& hdr, std::size_t& consumed) {
  return decode_request_impl(buf, out, &deadline_us, &hdr, consumed);
}

DecodeError decode_result_batch(std::span<const std::byte> buf,
                                std::vector<PricingResult>& out,
                                std::size_t& consumed) {
  consumed = 0;
  FrameHeader hdr;
  if (const DecodeError e = peek_header(buf, hdr); e != DecodeError::ok)
    return e;
  if (hdr.kind != Kind::result_batch) return DecodeError::bad_kind;
  if (buf.size() < frame_bytes(hdr)) return DecodeError::need_more;
  out.resize(hdr.count);
  const std::byte* p = buf.data() + kHeaderBytes;
  std::size_t remaining = hdr.payload_bytes;
  for (std::uint32_t i = 0; i < hdr.count; ++i) {
    std::size_t record_bytes = 0;
    if (const DecodeError e =
            get_result(p, remaining, hdr.version, out[i], record_bytes);
        e != DecodeError::ok)
      return e;
    p += record_bytes;
    remaining -= record_bytes;
  }
  // Every declared payload byte must belong to a record: trailing slack is
  // corruption (or a framing bug), not padding.
  if (remaining != 0) return DecodeError::bad_length;
  consumed = frame_bytes(hdr);
  return DecodeError::ok;
}

}  // namespace amopt::service::wire
