#pragma once
// Request/result object model for the session-based pricing API.
//
// A `PricingRequest` fully describes one unit of work for a `Pricer`
// session: the contract, the discretization, the model/right/style/engine
// selection of the legacy facade, an optional per-request solver override,
// and a `compute` mask selecting which targets (price, greeks, implied
// volatility) to produce. `Pricer::price_many` accepts a heterogeneous span
// of these — mixed models, expiries, engines and targets in one call — and
// returns one `PricingResult` per item with an explicit `Status` instead of
// throw-on-first-error, which is what a pricing server needs to keep a
// whole chain flowing when one quote is bad.

#include <cstdint>
#include <exception>
#include <limits>
#include <optional>
#include <string>
#include <string_view>

#include "amopt/pricing/api.hpp"
#include "amopt/pricing/greeks.hpp"
#include "amopt/pricing/implied_vol.hpp"
#include "amopt/pricing/params.hpp"

namespace amopt::pricing {

/// Per-item outcome of a session request.
enum class Status {
  ok,                  ///< every requested target was produced
  unsupported,         ///< the model/right/style/engine/target combination
                       ///< has no implementation (see Pricer::supports)
  failed_to_converge,  ///< implied-vol Newton exhausted its budget or the
                       ///< target lies outside the attainable range
  error,               ///< the pricer threw; `message`/`error` carry details
  overloaded,          ///< the service plane's admission control rejected the
                       ///< item instead of queueing it unboundedly; `message`
                       ///< carries a retry hint (see service/server.hpp)
  deadline_exceeded,   ///< the request's deadline passed before it was priced
                       ///< (shed by the server's coalescing drain, or given up
                       ///< on by the client) — a stale quote is worse than no
                       ///< quote, so nothing was computed
};

[[nodiscard]] std::string_view to_string(Status s);

/// Bitmask of computation targets for `PricingRequest::compute`.
struct Compute {
  static constexpr unsigned price = 1u << 0;
  static constexpr unsigned greeks = 1u << 1;
  static constexpr unsigned implied_vol = 1u << 2;
};

/// One unit of work for a `Pricer` session.
struct PricingRequest {
  OptionSpec spec{};
  std::int64_t T = 4096;  ///< lattice / grid steps
  Model model = Model::bopm;
  Right right = Right::call;
  Style style = Style::american;
  Engine engine = Engine::fft;
  unsigned compute = Compute::price;  ///< mask of Compute:: targets

  /// Overrides the session's default solver configuration for this item.
  std::optional<core::SolverConfig> solver{};

  /// Implied-vol inputs (used when `compute & Compute::implied_vol`):
  /// the quote to invert, and the Newton/bracket knobs. `iv.T` is ignored —
  /// the request's own `T` governs every evaluation.
  double target_price = 0.0;
  ImpliedVolConfig iv{};
};

/// Per-item result. Fields beyond `status`/`message` are only meaningful
/// for the targets the request asked for (and, for `price`, when the status
/// is `ok`; a `failed_to_converge` implied-vol result still reports the
/// last iterate in `implied_vol`).
struct PricingResult {
  Status status = Status::unsupported;
  std::string message;  ///< empty when ok
  double price = std::numeric_limits<double>::quiet_NaN();
  Greeks greeks{};                ///< valid iff Compute::greeks requested
  ImpliedVolResult implied_vol{};  ///< valid iff Compute::implied_vol requested
  /// Original exception when status == Status::error, so callers that need
  /// the legacy throwing behaviour (or the concrete type) can rethrow.
  std::exception_ptr error;

  [[nodiscard]] bool ok() const noexcept { return status == Status::ok; }
};

}  // namespace amopt::pricing
