#pragma once
// The `Engine::boundary` backend: American BSM vanilla quotes via the
// exercise-boundary integral-equation method (Andersen-Lake-Offengenden
// style; DESIGN.md §6) instead of a lattice/grid rollback.
//
// The put boundary B(tau) (tau = time to expiry) satisfies the Kim
// fixed point
//
//   B(tau) = K e^{-(r-q)tau} N(tau,B) / D(tau,B),
//   N = Phi(d-(tau, B/K)) + r Int_0^tau e^{ru} Phi(d-(tau-u, B(tau)/B(u))) du
//   D = Phi(d+(tau, B/K)) + q Int_0^tau e^{qu} Phi(d+(tau-u, B(tau)/B(u))) du
//
// solved by collocating the transformed boundary H(x) = (ln(B/X))^2,
// x = sqrt(tau/T), on Chebyshev-Lobatto nodes (H is near-polynomial in x;
// X = B(0+) = K min(1, r/q) is the known short-expiry limit), evaluating
// the interpolant with Clenshaw recurrences, and computing the integrals
// with tanh-sinh quadrature (the integrand's sqrt(tau-u) behaviour at the
// u -> tau endpoint is exactly what tanh-sinh damps). The American price
// then follows from the boundary through Kim's early-exercise premium,
// one more tanh-sinh sweep. Calls price through put-call symmetry:
// C(S,K,r,q) = P(K,S,q,r).
//
// Performance plane: every quadrature inner sum runs on the dispatched
// amopt::simd kernels (`bs_dpm` for the d+- geometry, `norm_cdf` for the
// libm-free Phi), the boundary is carried in LOG space so the hot loops
// evaluate no exp/log at all, and every per-request array comes from the
// thread's ScratchStack — with a prebuilt NodeTable a steady-state quote
// performs ZERO heap allocations (asserted in tests/test_alo_alloc.cpp).
// The dimensionless node geometry depends only on (nodes, quad), so
// `Pricer` sessions cache NodeTables next to the kernel-cache registry
// and hand them to every quote/IV trial.
//
// Accuracy contract (DESIGN.md §6): prices are NOT bit-comparable to the
// stencil engines — they agree with the fft engine to the documented
// convergence tolerance (tests/test_alo.cpp), and scalar/avx2 dispatch
// levels are bit-identical to each other while avx512 may differ in the
// last ulps (the §4 FMA rule).

#include <memory>
#include <span>
#include <vector>

#include "amopt/core/lattice_solver.hpp"
#include "amopt/pricing/api.hpp"
#include "amopt/pricing/params.hpp"

namespace amopt::pricing::alo {

/// Dimensionless collocation/quadrature geometry shared by every request
/// with the same (nodes, quad) accuracy setting. Immutable once built;
/// sessions hold it by shared_ptr and hand out raw pointers per quote.
struct NodeTable {
  int nodes = 0;  ///< Chebyshev-Lobatto points over x = sqrt(tau/T)
  int quad = 0;   ///< tanh-sinh points per integral
  /// x of collocation node j, ascending: (1 - cos(j pi / N)) / 2 with
  /// N = nodes-1, so node 0 sits at tau = 0 and node N at tau = T.
  std::vector<double> xhat;
  /// Interpolation matrix, nodes x nodes row-major: Chebyshev coefficient
  /// a_k = sum_j coeff[k*nodes + j] * H_j for samples H_j at xhat order.
  std::vector<double> coeff;
  /// tanh-sinh abscissae y in (-1,1) (ascending) and weights w (both
  /// include the step h; Int_{-1}^{1} f ~= sum w_i f(y_i)).
  std::vector<double> y, w;
  /// sqrt((1 + y_i)/2) and sqrt((1 - y_i)/2): the only square roots the
  /// u-substitutions u = tau (1+y)/2 need, hoisted out of every quote.
  std::vector<double> sp, sm;
};

/// Build the geometry for one accuracy setting. `nodes` is clamped to
/// [3, 64] and `quad` to [3, 401].
[[nodiscard]] std::shared_ptr<const NodeTable> build_node_table(int nodes,
                                                                int quad);

/// American vanilla put/call price under BSM. Accuracy comes from
/// cfg.alo_nodes / cfg.alo_quad / cfg.alo_iterations; `table` may be null
/// (a matching table is then built ad hoc, which allocates) and must
/// otherwise be a build_node_table result for the cfg's clamped knobs.
/// Requires R >= 0 and Y >= 0 (throws std::invalid_argument otherwise).
[[nodiscard]] double american_price(const OptionSpec& spec, Right right,
                                    const core::SolverConfig& cfg,
                                    const NodeTable* table);

/// The solved put exercise boundary B(tau) evaluated at the given times to
/// expiry (each clamped to [0, spec.expiry_years]). Inspection/test path —
/// allocates its result and its own table.
[[nodiscard]] std::vector<double> put_boundary(const OptionSpec& spec,
                                               const core::SolverConfig& cfg,
                                               std::span<const double> taus);

}  // namespace amopt::pricing::alo
