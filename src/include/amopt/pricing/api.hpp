#pragma once
// Convenience facade over the whole library: one `price()` call selecting
// model x right x style x engine. Examples and benches use this; tests
// mostly call the underlying functions directly.

#include <cstdint>
#include <span>
#include <string_view>
#include <vector>

#include "amopt/core/lattice_solver.hpp"
#include "amopt/pricing/params.hpp"

namespace amopt::pricing {

enum class Model { bopm, topm, bsm };
enum class Right { call, put };
enum class Style { american, european };
enum class Engine {
  fft,               ///< the paper's O(T log^2 T) algorithm
  vanilla,           ///< Θ(T^2) serial loop (Figure 1)
  vanilla_parallel,  ///< Θ(T^2) loop, OpenMP row-parallel
  tiled,             ///< zb-bopm: cache-aware split tiling (BOPM call only)
  cache_oblivious,   ///< Frigo-Strumpen recursion (BOPM call only)
  quantlib           ///< ql-bopm: QuantLib-style rollback (BOPM call only)
};

[[nodiscard]] std::string_view to_string(Model m);
[[nodiscard]] std::string_view to_string(Right r);
[[nodiscard]] std::string_view to_string(Style s);
[[nodiscard]] std::string_view to_string(Engine e);

/// Price an option with `T` time steps. Throws std::invalid_argument for
/// combinations without a meaningful implementation (see Engine comments).
[[nodiscard]] double price(const OptionSpec& spec, std::int64_t T, Model model,
                           Right right, Style style = Style::american,
                           Engine engine = Engine::fft,
                           core::SolverConfig cfg = {});

/// Price a whole option chain in one call: result[i] is exactly what
/// price(chain[i], ...) returns (bit-identical — the shared machinery runs
/// the same arithmetic), but the work is shared where the contracts allow:
///
///  * items whose derived stencil taps coincide (same R, V, Y, expiry — an
///    ordinary strike ladder) share ONE kernel cache, so each kernel power
///    of the fft engine is computed once per chain instead of once per
///    option, and the FFT plan/workspace warm-up is amortized;
///  * options are priced in parallel with OpenMP (the per-option solvers
///    detect the enclosing parallel region and stay serial inside).
///
/// Throws std::invalid_argument on the first unsupported combination, like
/// the scalar call.
[[nodiscard]] std::vector<double> price_batch(
    std::span<const OptionSpec> chain, std::int64_t T, Model model,
    Right right, Style style = Style::american, Engine engine = Engine::fft,
    core::SolverConfig cfg = {});

}  // namespace amopt::pricing
