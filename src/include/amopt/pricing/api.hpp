#pragma once
// Convenience facade over the whole library: one `price()` call selecting
// model x right x style x engine. Examples and benches use this; tests
// mostly call the underlying functions directly.

#include <cstdint>
#include <string_view>

#include "amopt/core/lattice_solver.hpp"
#include "amopt/pricing/params.hpp"

namespace amopt::pricing {

enum class Model { bopm, topm, bsm };
enum class Right { call, put };
enum class Style { american, european };
enum class Engine {
  fft,               ///< the paper's O(T log^2 T) algorithm
  vanilla,           ///< Θ(T^2) serial loop (Figure 1)
  vanilla_parallel,  ///< Θ(T^2) loop, OpenMP row-parallel
  tiled,             ///< zb-bopm: cache-aware split tiling (BOPM call only)
  cache_oblivious,   ///< Frigo-Strumpen recursion (BOPM call only)
  quantlib           ///< ql-bopm: QuantLib-style rollback (BOPM call only)
};

[[nodiscard]] std::string_view to_string(Model m);
[[nodiscard]] std::string_view to_string(Right r);
[[nodiscard]] std::string_view to_string(Style s);
[[nodiscard]] std::string_view to_string(Engine e);

/// Price an option with `T` time steps. Throws std::invalid_argument for
/// combinations without a meaningful implementation (see Engine comments).
[[nodiscard]] double price(const OptionSpec& spec, std::int64_t T, Model model,
                           Right right, Style style = Style::american,
                           Engine engine = Engine::fft,
                           core::SolverConfig cfg = {});

}  // namespace amopt::pricing
