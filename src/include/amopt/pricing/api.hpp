#pragma once
// Convenience facade over the whole library: one `price()` call selecting
// model x right x style x engine. Both free functions are thin wrappers
// over a temporary `pricing::Pricer` session (see pricer.hpp) and return
// bit-identical values; long-lived callers should hold a `Pricer` instead
// so kernel caches survive across calls.

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "amopt/core/lattice_solver.hpp"
#include "amopt/pricing/params.hpp"
#include "amopt/stencil/linear_stencil.hpp"

namespace amopt::stencil {
class KernelCache;
}

namespace amopt::pricing {

enum class Model { bopm, topm, bsm };
enum class Right { call, put };
enum class Style { american, european };
enum class Engine {
  fft,               ///< the paper's O(T log^2 T) algorithm
  vanilla,           ///< Θ(T^2) serial loop (Figure 1)
  vanilla_parallel,  ///< Θ(T^2) loop, OpenMP row-parallel
  tiled,             ///< zb-bopm: cache-aware split tiling (BOPM call only)
  cache_oblivious,   ///< Frigo-Strumpen recursion (BOPM call only)
  quantlib,          ///< ql-bopm: QuantLib-style rollback (BOPM call only)
  boundary           ///< Chebyshev/tanh-sinh exercise-boundary engine
                     ///< (BSM American vanilla put AND call; alo_engine.hpp)
};

[[nodiscard]] std::string_view to_string(Model m);
[[nodiscard]] std::string_view to_string(Right r);
[[nodiscard]] std::string_view to_string(Style s);
[[nodiscard]] std::string_view to_string(Engine e);

/// Price an option with `T` time steps. Throws std::invalid_argument for
/// combinations without a meaningful implementation (see Engine comments).
[[nodiscard]] double price(const OptionSpec& spec, std::int64_t T, Model model,
                           Right right, Style style = Style::american,
                           Engine engine = Engine::fft,
                           core::SolverConfig cfg = {});

/// Price a whole option chain in one call: result[i] is exactly what
/// price(chain[i], ...) returns (bit-identical — the shared machinery runs
/// the same arithmetic), but the work is shared where the contracts allow:
///
///  * items whose derived stencil taps coincide (same R, V, Y, expiry — an
///    ordinary strike ladder) share ONE kernel cache, so each kernel power
///    of the fft engine is computed once per chain instead of once per
///    option, and the FFT plan/workspace warm-up is amortized;
///  * options are priced in parallel with OpenMP (the per-option solvers
///    detect the enclosing parallel region and stay serial inside).
///
/// Throws std::invalid_argument on the first unsupported combination, like
/// the scalar call. For heterogeneous chains or per-item error reporting
/// use `Pricer::price_many` (pricer.hpp), which this wraps.
[[nodiscard]] std::vector<double> price_batch(
    std::span<const OptionSpec> chain, std::int64_t T, Model model,
    Right right, Style style = Style::american, Engine engine = Engine::fft,
    core::SolverConfig cfg = {});

namespace detail {

/// The dispatch primitive behind `price()` and the session API: route one
/// contract to its implementation, drawing kernel powers from `kernels`
/// where the combination has a cache-aware path (`kernels` may be null, and
/// must otherwise be built from `shared_cache_stencil` of the same
/// arguments). Throws std::invalid_argument on unsupported combinations.
[[nodiscard]] double price_with_cache(const OptionSpec& spec, std::int64_t T,
                                      Model model, Right right, Style style,
                                      Engine engine, core::SolverConfig cfg,
                                      stencil::KernelCache* kernels);

/// Stencil of the kernel cache an item of a (model, right, style, fft)
/// chain can share; empty taps when the combination has no cache-aware
/// path. Must mirror the stencils the pricers build internally (the
/// mirrored put swaps its taps; the BSM FDM stencil is centered, left=-1).
[[nodiscard]] stencil::LinearStencil shared_cache_stencil(
    const OptionSpec& spec, std::int64_t T, Model model, Right right,
    Style style, Engine engine);

/// The "amopt: unsupported combination m/r/s/e" text shared by the legacy
/// throws and the session's Status::unsupported messages.
[[nodiscard]] std::string unsupported_message(Model m, Right r, Style s,
                                              Engine e);

}  // namespace detail

}  // namespace amopt::pricing
