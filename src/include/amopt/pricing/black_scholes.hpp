#pragma once
// Closed-form Black-Scholes-Merton prices for European options (with
// continuous dividend yield) and the perpetual American put. These are the
// convergence anchors for the lattice/FDM pricers in tests and examples.

#include "amopt/pricing/params.hpp"

namespace amopt::pricing::bs {

/// Standard normal CDF.
[[nodiscard]] double norm_cdf(double x);

[[nodiscard]] double european_call(const OptionSpec& spec);
[[nodiscard]] double european_put(const OptionSpec& spec);

/// Perpetual American put (infinite expiry, R > 0, Y = 0):
/// V(S) = (K - S*) (S/S*)^(-gamma) for S >= S*, K - S below, with
/// gamma = 2R/V^2 and S* = gamma K / (1 + gamma).
[[nodiscard]] double perpetual_put(double S, double K, double R, double V);
/// The perpetual put's optimal exercise boundary S*.
[[nodiscard]] double perpetual_put_boundary(double K, double R, double V);

}  // namespace amopt::pricing::bs
