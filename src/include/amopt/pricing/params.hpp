#pragma once
// Option contract specification and derived model parameters for the three
// pricing models of the paper (BOPM, TOPM, BSM explicit FDM).

#include <cstdint>
#include <vector>

namespace amopt::pricing {

/// Contract + market data (Table 1 of the paper). Rates and volatility are
/// annualized with continuous compounding; `expiry_years` is E expressed in
/// years (the paper's E=252 trading days == 1.0).
struct OptionSpec {
  double S = 100.0;  ///< spot price
  double K = 100.0;  ///< strike price
  double R = 0.05;   ///< risk-free rate
  double V = 0.2;    ///< volatility
  double Y = 0.0;    ///< continuous dividend yield
  double expiry_years = 1.0;  ///< time to expiration E
};

/// The fixed parameter set used throughout the paper's §5 experiments:
/// E=252d, K=130, S=127.62, R=0.00163, V=0.2, Y=0.0163.
[[nodiscard]] OptionSpec paper_spec();

/// Derived binomial-lattice quantities (paper §2.1). Cell (i, j) carries
/// price S*u^(2j-i); the backward step is
///   G[i][j] = max(s0*G[i+1][j] + s1*G[i+1][j+1], S*u^(2j-i) - K)
/// with s0 = e^{-R dt}(1-p) weighting the down child.
struct BopmParams {
  std::int64_t T = 0;
  double dt = 0.0;
  double u = 1.0, d = 1.0;
  double p = 0.5;          ///< risk-neutral up probability
  double s0 = 0.0, s1 = 0.0;
  double log_u = 0.0;
};
[[nodiscard]] BopmParams derive_bopm(const OptionSpec& spec, std::int64_t T);

/// Derived trinomial-lattice quantities (paper §3 / App. A). Cell (i, j),
/// j in [0, 2i], carries price S*u^(j-i); children are (i+1, j) [down, pd],
/// (i+1, j+1) [flat, po], (i+1, j+2) [up, pu]; u = e^{V sqrt(2 dt)}.
struct TopmParams {
  std::int64_t T = 0;
  double dt = 0.0;
  double u = 1.0, d = 1.0;
  double pu = 0.0, po = 0.0, pd = 0.0;
  double s0 = 0.0, s1 = 0.0, s2 = 0.0;  ///< discounted pd, po, pu
  double log_u = 0.0;
};
[[nodiscard]] TopmParams derive_topm(const OptionSpec& spec, std::int64_t T);

/// Derived explicit-FDM quantities for the dimensionless BSM put problem
/// (paper §4.2, Eq. (5)). State s = ln(x/K), tau = sigma^2 (T-t)/2,
/// v = price/K; update taps (b, c, a) act on (k-1, k, k+1). The scheme is
/// monotone (a, b, c >= 0, Theorem 4.3's precondition) by construction.
struct BsmParams {
  std::int64_t T = 0;
  double omega = 0.0;        ///< 2R / V^2 (discounting term)
  double omega_drift = 0.0;  ///< 2(R-Y) / V^2 (drift term; == omega for Y=0,
                             ///< a library extension over the paper's Eq. 5)
  double tau_max = 0.0;      ///< V^2 E / 2
  double dtau = 0.0;
  double ds = 0.0;
  double lambda = 0.0;  ///< dtau/ds^2
  double a = 0.0, b = 0.0, c = 0.0;
  double s_target = 0.0;  ///< ln(S/K): where the price is read at tau_max
};
[[nodiscard]] BsmParams derive_bsm(const OptionSpec& spec, std::int64_t T);

/// Precomputed powers u^e for e in [-(T+pad), T+pad]; shared by the green
/// oracles and the vanilla pricers (this is also what the Zubair baseline
/// calls the "option probability calculation" tables).
class PowerTable {
 public:
  PowerTable(double log_u, std::int64_t T, std::int64_t pad = 4);
  [[nodiscard]] double operator()(std::int64_t e) const {
    return pow_[static_cast<std::size_t>(e + off_)];
  }
  [[nodiscard]] std::int64_t max_exponent() const noexcept { return off_; }

 private:
  std::vector<double> pow_;
  std::int64_t off_;
};

}  // namespace amopt::pricing
