#pragma once
// American (and European) option pricing under the Binomial Option Pricing
// Model. `american_call_fft` is the paper's O(T log^2 T) algorithm (§2.3);
// the vanilla variants are the Θ(T^2) Figure-1 loops used as correctness
// oracles and as the reference series of the benchmarks.

#include <cstdint>

#include "amopt/core/lattice_solver.hpp"
#include "amopt/pricing/params.hpp"

namespace amopt::pricing::bopm {

/// Green (exercise-value) oracle for the call lattice:
/// value(i, j) = S * u^(2j-i) - K, backed by a precomputed power table.
class CallGreen final : public core::LatticeGreen {
 public:
  CallGreen(const OptionSpec& spec, const BopmParams& prm)
      : up_(prm.log_u, prm.T), S_(spec.S), K_(spec.K) {}
  [[nodiscard]] double value(std::int64_t i, std::int64_t j) const override {
    return S_ * up_(2 * j - i) - K_;
  }

 private:
  PowerTable up_;
  double S_, K_;
};

/// Expiry row in boundary-compressed form: red cells are the at/out-of-the-
/// money nodes (value 0 = G^red by Definition 2.1), green cells the in-the-
/// money payoffs.
[[nodiscard]] core::LatticeRow expiry_row(const BopmParams& prm,
                                          const core::LatticeGreen& green);

// --- American call ------------------------------------------------------

[[nodiscard]] double american_call_fft(const OptionSpec& spec, std::int64_t T,
                                       core::SolverConfig cfg = {});
/// Same algorithm with a caller-owned kernel cache shared across pricings
/// (see pricing::price_batch): all strikes of a chain have identical taps
/// {s0, s1}, so each kernel power is computed once for the whole chain.
/// `kernels` may be null (falls back to a private cache) and must otherwise
/// be built from stencil {{s0, s1}, 0} of derive_bopm(spec, T).
[[nodiscard]] double american_call_fft(const OptionSpec& spec, std::int64_t T,
                                       core::SolverConfig cfg,
                                       stencil::KernelCache* kernels);
[[nodiscard]] double american_call_vanilla(const OptionSpec& spec,
                                           std::int64_t T);
[[nodiscard]] double american_call_vanilla_parallel(const OptionSpec& spec,
                                                    std::int64_t T);

// --- American put -------------------------------------------------------

/// Direct Θ(T^2) rollback on the put payoff (oracle).
[[nodiscard]] double american_put_vanilla(const OptionSpec& spec,
                                          std::int64_t T);
/// Fast put via McDonald–Schroder put-call symmetry:
/// P(S, K, R, Y) = C(K, S, Y, R). The symmetry is exact on the CRR lattice
/// (the numeraire change maps path weights one-to-one), so this agrees with
/// the direct rollback to rounding error; `american_put_fft_direct` below
/// prices the put on its own lattice without the swap.
[[nodiscard]] double american_put_fft(const OptionSpec& spec, std::int64_t T,
                                      core::SolverConfig cfg = {});

/// Direct fast put on the mirrored lattice (an extension beyond the paper,
/// which treats calls only): reflecting j -> i - j maps the put grid onto a
/// left-red/right-green lattice with the taps swapped, and the put's
/// exercise region (low prices) becomes the green suffix. Agrees with
/// `american_put_vanilla` to FFT rounding at every T.
[[nodiscard]] double american_put_fft_direct(const OptionSpec& spec,
                                             std::int64_t T,
                                             core::SolverConfig cfg = {});
/// Shared-cache variant; `kernels` must be built from the MIRRORED stencil
/// {{s1, s0}, 0} (the put lattice swaps the up/down taps).
[[nodiscard]] double american_put_fft_direct(const OptionSpec& spec,
                                             std::int64_t T,
                                             core::SolverConfig cfg,
                                             stencil::KernelCache* kernels);

/// Exercise-value oracle of the mirrored put lattice:
/// value(i, j) = K - S * u^(i-2j).
class MirroredPutGreen final : public core::LatticeGreen {
 public:
  MirroredPutGreen(const OptionSpec& spec, const BopmParams& prm)
      : up_(prm.log_u, prm.T), S_(spec.S), K_(spec.K) {}
  [[nodiscard]] double value(std::int64_t i, std::int64_t j) const override {
    return K_ - S_ * up_(i - 2 * j);
  }

 private:
  PowerTable up_;
  double S_, K_;
};

// --- European (the linear special case; the paper's "simpler" problem) ---

[[nodiscard]] double european_call_vanilla(const OptionSpec& spec,
                                           std::int64_t T);
/// One T-step kernel power + one dot product: O(T log T).
[[nodiscard]] double european_call_fft(const OptionSpec& spec, std::int64_t T);
[[nodiscard]] double european_call_fft(const OptionSpec& spec, std::int64_t T,
                                       stencil::KernelCache* kernels);
[[nodiscard]] double european_put_vanilla(const OptionSpec& spec,
                                          std::int64_t T);
[[nodiscard]] double european_put_fft(const OptionSpec& spec, std::int64_t T);
[[nodiscard]] double european_put_fft(const OptionSpec& spec, std::int64_t T,
                                      stencil::KernelCache* kernels);

// --- Low-lattice nodes for Greeks (rows 0..2) -----------------------------

struct LowNodes {
  double g00 = 0, g10 = 0, g11 = 0, g20 = 0, g21 = 0, g22 = 0;
  BopmParams prm;
};
/// Nodes of rows 0..2 of the American call lattice, computed with the FFT
/// descent to row 2 and naive steps below. Requires T >= 2.
[[nodiscard]] LowNodes american_call_nodes_fft(const OptionSpec& spec,
                                               std::int64_t T,
                                               core::SolverConfig cfg = {});
/// Shared-cache variant (see american_call_fft); `kernels` may be null and
/// must otherwise be built from stencil {{s0, s1}, 0} of derive_bopm.
[[nodiscard]] LowNodes american_call_nodes_fft(const OptionSpec& spec,
                                               std::int64_t T,
                                               core::SolverConfig cfg,
                                               stencil::KernelCache* kernels);

}  // namespace amopt::pricing::bopm
