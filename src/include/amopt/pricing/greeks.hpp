#pragma once
// Sensitivities of the American option price. Delta/gamma/theta come from
// the low lattice nodes the FFT descent produces for free (rows 0..2);
// vega/rho are central finite differences of the O(T log^2 T) pricer, so a
// full Greek report still costs only O(T log^2 T).

#include <cstdint>
#include <functional>

#include "amopt/core/lattice_solver.hpp"
#include "amopt/pricing/params.hpp"

namespace amopt::pricing {

struct Greeks {
  double price = 0.0;
  double delta = 0.0;  ///< dV/dS
  double gamma = 0.0;  ///< d2V/dS2
  double theta = 0.0;  ///< dV/dt (per year, calendar decay)
  double vega = 0.0;   ///< dV/dV(vol), per 1.0 of volatility
  double rho = 0.0;    ///< dV/dR, per 1.0 of rate
};

/// Re-pricer injected by the session API for the bumped (vega/rho, and for
/// the put every) evaluations: called with the bumped spec, must return
/// what the corresponding fast pricer returns for it. A default-constructed
/// (empty) function falls back to the plain one-shot pricer; a `Pricer`
/// supplies a kernel-cache-sharing evaluation so repeated greeks over a
/// chain hit warm caches.
using RepriceFn = std::function<double(const OptionSpec&)>;

[[nodiscard]] Greeks american_call_greeks_bopm(const OptionSpec& spec,
                                               std::int64_t T,
                                               core::SolverConfig cfg = {});

/// Session variant: `kernels` (nullable, taps {s0, s1} of derive_bopm)
/// backs the base-spec lattice descent; `reprice` the bumped evaluations.
[[nodiscard]] Greeks american_call_greeks_bopm(const OptionSpec& spec,
                                               std::int64_t T,
                                               core::SolverConfig cfg,
                                               const RepriceFn& reprice,
                                               stencil::KernelCache* kernels);

/// Put Greeks via central finite differences of the fast put pricer
/// (lattice nodes are not reusable across the put-call symmetry swap).
[[nodiscard]] Greeks american_put_greeks_bopm(const OptionSpec& spec,
                                              std::int64_t T,
                                              core::SolverConfig cfg = {});

/// Session variant: every evaluation goes through `reprice` (nullable).
/// Note the default path prices via put-call symmetry while a session
/// reprices with the direct mirrored-lattice pricer (what `price()` uses
/// for bopm/put/fft); the two agree to FFT rounding, so finite-difference
/// greeks agree to the usual cancellation noise.
[[nodiscard]] Greeks american_put_greeks_bopm(const OptionSpec& spec,
                                              std::int64_t T,
                                              core::SolverConfig cfg,
                                              const RepriceFn& reprice);

}  // namespace amopt::pricing
