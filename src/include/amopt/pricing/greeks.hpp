#pragma once
// Sensitivities of the American option price. Delta/gamma/theta come from
// the low lattice nodes the FFT descent produces for free (rows 0..2);
// vega/rho are central finite differences of the O(T log^2 T) pricer, so a
// full Greek report still costs only O(T log^2 T).

#include <cstdint>

#include "amopt/core/lattice_solver.hpp"
#include "amopt/pricing/params.hpp"

namespace amopt::pricing {

struct Greeks {
  double price = 0.0;
  double delta = 0.0;  ///< dV/dS
  double gamma = 0.0;  ///< d2V/dS2
  double theta = 0.0;  ///< dV/dt (per year, calendar decay)
  double vega = 0.0;   ///< dV/dV(vol), per 1.0 of volatility
  double rho = 0.0;    ///< dV/dR, per 1.0 of rate
};

[[nodiscard]] Greeks american_call_greeks_bopm(const OptionSpec& spec,
                                               std::int64_t T,
                                               core::SolverConfig cfg = {});

/// Put Greeks via central finite differences of the fast put pricer
/// (lattice nodes are not reusable across the put-call symmetry swap).
[[nodiscard]] Greeks american_put_greeks_bopm(const OptionSpec& spec,
                                              std::int64_t T,
                                              core::SolverConfig cfg = {});

}  // namespace amopt::pricing
