#pragma once
// American put pricing under the Black-Scholes-Merton model via the
// explicit finite-difference scheme of paper §4. `american_put_fft` is the
// paper's O(T log^2 T) trapezoid algorithm; `american_put_vanilla*` are the
// Θ(T^2) projection loops (`vanilla-bsm` in the paper's plots).

#include <cmath>
#include <cstdint>
#include <vector>

#include "amopt/core/fdm_solver.hpp"
#include "amopt/pricing/params.hpp"

namespace amopt::pricing::bsm {

/// Dimensionless put exercise value 1 - e^{k ds}, cached in a table over the
/// index range the solver can touch and computed exactly outside it.
class PutGreen final : public core::FdmGreen {
 public:
  PutGreen(double ds, std::int64_t span);
  [[nodiscard]] double value(std::int64_t /*n*/, std::int64_t k) const override {
    if (k >= -span_ && k <= span_)
      return table_[static_cast<std::size_t>(k + span_)];
    return -std::expm1(static_cast<double>(k) * ds_);
  }

 private:
  std::vector<double> table_;
  double ds_;
  std::int64_t span_;
};

/// Geometry of the solution cone: the apex sits at k* ~ ln(S/K)/ds and the
/// base row (n = 0, tau = 0) is wide enough for both the cone and the
/// 2L-margin the trapezoid recursion needs.
struct FdmLayout {
  std::int64_t k_read = 0;   ///< floor(s*/ds): price read between k_read, k_read+1
  double theta = 0.0;        ///< interpolation weight toward k_read+1
  std::int64_t kr0 = 0;      ///< right edge of the stored red region at n=0
};
[[nodiscard]] FdmLayout make_layout(const BsmParams& prm);

[[nodiscard]] double american_put_fft(const OptionSpec& spec, std::int64_t T,
                                      core::SolverConfig cfg = {});
/// Shared-cache variant (see pricing::price_batch): all strikes of a BSM
/// chain derive the same (b, c, a), so one cache serves the whole ladder.
/// `kernels` may be null and must otherwise be built from the centered
/// stencil {{b, c, a}, -1} of derive_bsm(spec, T).
[[nodiscard]] double american_put_fft(const OptionSpec& spec, std::int64_t T,
                                      core::SolverConfig cfg,
                                      stencil::KernelCache* kernels);
[[nodiscard]] double american_put_vanilla(const OptionSpec& spec,
                                          std::int64_t T);
[[nodiscard]] double american_put_vanilla_parallel(const OptionSpec& spec,
                                                   std::int64_t T);

/// European put on the same grid (projection disabled): pure linear
/// evolution, one kernel power + correlation. Convergence anchor against
/// bs::european_put.
[[nodiscard]] double european_put_fdm(const OptionSpec& spec, std::int64_t T);

/// Early-exercise boundary k_n for n in [0, T] from the naive grid
/// (test/inspection helper, Θ(T^2)).
[[nodiscard]] std::vector<std::int64_t> exercise_boundary_vanilla(
    const OptionSpec& spec, std::int64_t T);

}  // namespace amopt::pricing::bsm
