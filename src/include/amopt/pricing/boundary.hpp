#pragma once
// Early-exercise (red/green) boundary extraction. These Θ(T^2) routines
// exist for inspection, plotting (examples/exercise_boundary) and for the
// tests that empirically validate the boundary-motion lemmas the fast
// solver relies on (Corollary 2.7, Corollary A.6, Theorem 4.3).

#include <cstdint>
#include <vector>

#include "amopt/pricing/params.hpp"

namespace amopt::pricing {

/// q_i (last red/continuation cell) for every BOPM call row i in [0, T];
/// -1 where a row is entirely green.
[[nodiscard]] std::vector<std::int64_t> bopm_call_boundary_vanilla(
    const OptionSpec& spec, std::int64_t T);

/// Same for the TOPM call lattice (row i spans [0, 2i]).
[[nodiscard]] std::vector<std::int64_t> topm_call_boundary_vanilla(
    const OptionSpec& spec, std::int64_t T);

/// Asset price carried by BOPM cell (i, j): S * u^(2j - i).
[[nodiscard]] double bopm_cell_price(const OptionSpec& spec, std::int64_t T,
                                     std::int64_t i, std::int64_t j);

}  // namespace amopt::pricing
