#pragma once
// Session-based pricing front-end — the object a pricing server sits on.
//
// A `Pricer` is a long-lived session owning the reusable machinery the
// one-shot facade rebuilds on every call: per-tap-group `KernelCache`s
// (keyed by the stencil taps a request derives, exactly the sharing rule of
// the legacy `price_batch`), bounded by an LRU so recalibration loops over
// thousands of distinct vols cannot grow memory without bound. FFT plans
// and conv workspaces are already process/thread-global, so a warm session
// makes the kernel powers — the dominant per-pricing setup cost — the last
// thing left to amortize:
//
//   * `price_many` serves a HETEROGENEOUS batch (mixed models, rights,
//     expiries, engines, compute targets) with per-item `Status` instead of
//     throw-on-first-error; items whose derived taps coincide share one
//     kernel cache and the fan-out runs under OpenMP;
//   * `greeks_many` layers the finite-difference greeks on top, with every
//     bumped re-pricing routed through the session's caches;
//   * `implied_vol_many` runs the safeguarded Newton inversion with every
//     trial-vol evaluation routed through the session's caches, so the
//     bracket endpoints and early iterates (shared across a chain, and
//     across repeated calls as quotes tick) hit warm kernels.
//
// The legacy free functions `price()` / `price_batch()` are thin wrappers
// over a temporary session and return bit-identical values (asserted by
// tests/test_pricer.cpp).

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <unordered_map>
#include <vector>

#include "amopt/pricing/request.hpp"
#include "amopt/stencil/kernel_cache.hpp"
#include "amopt/stencil/linear_stencil.hpp"

namespace amopt::pricing::alo {
struct NodeTable;
}

namespace amopt::pricing {

/// Session-level configuration.
struct PricerConfig {
  core::SolverConfig solver{};  ///< default per-request solver config
  /// The kernel-cache registry is two-tiered. The BASE tier holds the tap
  /// groups of the requests themselves (the chain's own contracts) bounded
  /// by `max_kernel_caches`; the TRANSIENT tier holds the groups minted by
  /// greeks bumps and implied-vol trial evaluations, bounded separately by
  /// `max_transient_kernel_caches`. Each tier runs its own LRU, so a flood
  /// of heterogeneous trial vols can only cycle the (smaller) transient
  /// tier — it can never evict a chain's base groups. Transient groups that
  /// later arrive as base requests are promoted. In-flight pricings keep
  /// evicted caches alive — eviction only forgets warm state, it never
  /// invalidates a running computation. Bracket endpoints and early
  /// iterates still repeat across a chain and across recalibration ticks,
  /// which is where the transient tier's warm-session win comes from; a
  /// miss costs a rebuild, never correctness.
  std::size_t max_kernel_caches = 64;
  std::size_t max_transient_kernel_caches = 16;
  /// Byte cap for the spectrum tier ACROSS the whole registry: every
  /// session cache shares one stencil::SpectrumBudget, which LRU-evicts
  /// (height, fft-size) spectra — whichever cache owns them — once their
  /// total bytes exceed this. Time-domain kernel powers are NOT counted
  /// (they are what the LRU'd caches themselves bound); this cap closes the
  /// one unbounded tier left inside a cache. 0 = unbounded.
  std::size_t max_spectrum_bytes = 32u << 20;
  bool parallel = true;  ///< task-pool fan-out across batch items
  /// Cap on this session's batch fan-out width (number of pool executors a
  /// price_many call may occupy, caller included). 0 = the pool's current
  /// width (AMOPT_THREADS / set_threads); 1 pins the session serial without
  /// narrowing the process-wide pool. The cap bounds only the per-batch
  /// item fan-out — the solvers' intra-solve tasks still use the shared
  /// pool, which is what `SolverConfig::parallel` gates.
  int threads = 0;
  /// Warm-start repeated implied-vol inversions: the session remembers each
  /// contract's last two (vol, price) evaluation points and restarts the
  /// safeguarded secant from them, so a recalibration tick typically costs
  /// 1-3 pricings instead of the ~12 of a cold bracketed Newton. The root
  /// satisfies the same price tolerance but may differ from the cold path
  /// in the last bits (different, fewer iterates); set false to replay the
  /// free-function iteration exactly on every call.
  bool warm_start_iv = true;
  /// Warm-start repeated batch greeks the way implied vol is warm-started:
  /// the session remembers the price of every bumped spec a greeks report
  /// evaluates (keyed by the full spec + discretization + resolved solver
  /// config), so a recalibration tick that re-requests greeks for an
  /// unchanged contract replays its finite-difference legs from the store
  /// instead of re-pricing them. Prices are deterministic in the key, so
  /// reuse is exact — results are bit-identical to a cold call at the same
  /// SIMD dispatch level. Set false to re-price every leg on every call.
  bool warm_start_greeks = true;
  /// Opt-in cross-expiry kernel sharing: requests in one `price_many` batch
  /// whose derived taps differ ONLY through the time step (same model /
  /// right / style / fft engine and same R, V, Y — a chain over expiries)
  /// are renormalized to their group's finest dt: T becomes
  /// round(expiry / dt*) and expiry is snapped onto the step grid
  /// (|change| <= dt*/2, sub-step). Tap vectors across the group then
  /// coincide bit for bit, so the whole chain shares ONE kernel cache —
  /// powers, squaring ladder, and spectra are built once per chain instead
  /// of once per expiry. Prices change by the normalization itself (a
  /// refinement: T never decreases), bounded by the lattice's own O(1/T)
  /// discretization error; see DESIGN.md §5. Items whose renormalized T
  /// would exceed 8x the requested T keep their own discretization.
  bool share_kernels_across_expiries = false;
  /// Relative tolerance widening the sharing group key above from exact
  /// (R, V, Y) equality to quantized equality. 0 (default) keeps the exact
  /// byte-key grouping — byte-for-byte the pre-quantization behavior. A
  /// positive quantum buckets each of R, V, Y by
  /// floor(log|x| / log1p(quantum)) (sign-separated; 0 only matches 0), so
  /// legs land in one group only when every field agrees within a factor of
  /// (1 + quantum); each >= 2-member group then snaps its (R, V, Y) onto
  /// the group's lexicographically smallest member tuple before the dt
  /// renormalization, moving any field by at most `quantum` relative —
  /// that is what makes near-identical vol legs (recalibration-tick drift)
  /// derive bit-equal taps and hit ONE warm kernel group. Bucketing is
  /// conservative: legs straddling a bucket boundary never share, even if
  /// pairwise closer than the quantum. Price perturbation is bounded by the
  /// field snap (first-order: vega * quantum * V etc.) on top of the
  /// sharing refinement below; covered by the DESIGN.md §12 accuracy
  /// contract. Ignored while share_kernels_across_expiries is false.
  double share_quantum = 0.0;
  /// Opt-in scratch-arena high-water-mark decay: after each batch, every
  /// thread that served items trims its ScratchStack down to at most this
  /// many bytes (core::ScratchStack::trim), so a long-lived session mixing
  /// huge and tiny T releases the dead blocks between batches while the
  /// descent itself keeps PR-5's grow-only guarantee (trim is a no-op while
  /// any frame is live). 0 (default) disables trimming — the arena keeps
  /// its high-water mark forever, exactly the pre-trim behavior.
  std::size_t scratch_trim_bytes = 0;
};

class Pricer {
 public:
  explicit Pricer(PricerConfig cfg = {});
  Pricer(const Pricer&) = delete;
  Pricer& operator=(const Pricer&) = delete;

  /// Capability introspection: true iff `price_many` produces Status::ok
  /// for this combination (mirrors the legacy `price()` dispatch; asserted
  /// against it combination-by-combination in tests/test_pricer.cpp).
  [[nodiscard]] static bool supports(Model m, Right r, Style s,
                                     Engine e) noexcept;
  /// Same including the compute targets: greeks and implied-vol are
  /// currently implemented for BOPM American contracts on the fft engine.
  [[nodiscard]] static bool supports(Model m, Right r, Style s, Engine e,
                                     unsigned compute) noexcept;

  /// Serve a heterogeneous batch. results[i] describes requests[i]; no
  /// exception escapes for unsupported combinations or per-item failures
  /// (those are reported in the item's Status/message/error).
  [[nodiscard]] std::vector<PricingResult> price_many(
      std::span<const PricingRequest> requests);

  /// Reusable per-caller workspace for `price_many_into`: the batch-local
  /// vectors `price_many` would otherwise allocate per call. A long-lived
  /// caller (a server shard's hot loop) keeps one and reuses it, so a
  /// steady-state batch of a stable size performs no heap allocations at
  /// the batching layer — the capacities converge to the high-water mark
  /// and stay there.
  struct BatchScratch {
    std::vector<std::shared_ptr<stencil::KernelCache>> cache_of;
    std::vector<PricingRequest> normalized;
  };

  /// `price_many` writing into caller-owned storage: `out` is resized to
  /// requests.size() (capacity reused across calls) and `scratch` supplies
  /// the batch-local buffers. Semantics and per-item results are identical
  /// to `price_many` (which wraps this with fresh vectors).
  void price_many_into(std::span<const PricingRequest> requests,
                       std::vector<PricingResult>& out, BatchScratch& scratch);

  /// Single-request convenience (no OpenMP fan-out, so the solver's own
  /// internal parallelism stays available, like a legacy `price()` call).
  [[nodiscard]] PricingResult price_one(const PricingRequest& request);

  /// Batch greeks: `price_many` with every item's compute mask replaced by
  /// Compute::greeks (the report's own price lands in both `greeks.price`
  /// and `price`).
  [[nodiscard]] std::vector<PricingResult> greeks_many(
      std::span<const PricingRequest> requests);

  /// Batch implied vol: `price_many` with every item's compute mask
  /// replaced by Compute::implied_vol. Each item inverts its
  /// `target_price` with the safeguarded Newton of `implied_vol.hpp`,
  /// every trial-vol evaluation drawing on the session's kernel caches.
  [[nodiscard]] std::vector<PricingResult> implied_vol_many(
      std::span<const PricingRequest> requests);

  struct Stats {
    std::size_t kernel_caches = 0;  ///< live registry entries (both tiers)
    std::size_t base_kernel_caches = 0;       ///< base-tier entries
    std::size_t transient_kernel_caches = 0;  ///< transient-tier entries
    std::size_t spectrum_bytes = 0;     ///< spectra held across all caches
    std::size_t spectrum_entries = 0;   ///< live (h, n) spectrum entries
    std::uint64_t spectrum_evictions = 0;  ///< dropped to honor the cap
    std::uint64_t cache_hits = 0;   ///< tap-group lookups served warm
    std::uint64_t cache_misses = 0; ///< tap-group lookups that built a cache
    std::uint64_t requests = 0;     ///< items served across all batches
    std::size_t node_tables = 0;    ///< cached boundary-engine node tables
    std::size_t warm_roots = 0;     ///< contracts with a remembered IV root
    std::size_t warm_bump_prices = 0;   ///< remembered greeks-leg prices
    std::uint64_t bump_price_hits = 0;  ///< greeks legs served from the store
    /// Admission-control inputs for the service plane (service/server.hpp):
    std::uint64_t batches = 0;  ///< price_many/price_many_into calls served
    /// Largest per-thread ScratchStack footprint observed at the end of any
    /// batch this session served, in bytes and measured BEFORE the opt-in
    /// between-batches trim — the true arena high-water mark, which is what
    /// an admission controller sizing a shard's memory ceiling needs.
    std::size_t scratch_high_water_bytes = 0;
    std::uint64_t scratch_trim_events = 0;  ///< trims that actually released
    /// Current PROCESS-WIDE arena footprint summed over every live thread
    /// arena (core::aggregate_scratch) — once batches fan out across pool
    /// workers, the true multi-thread footprint is this sum, not any single
    /// thread's high-water mark. Snapshot at stats() time (after any
    /// between-batches trim), shared by all sessions in the process.
    std::size_t scratch_total_bytes = 0;
  };
  [[nodiscard]] Stats stats() const;

  /// Drop all warm state (kernel caches and counters).
  void clear();

  [[nodiscard]] const PricerConfig& config() const noexcept { return cfg_; }

 private:
  using CachePtr = std::shared_ptr<stencil::KernelCache>;

  /// Which registry tier a lookup belongs to: `base` for a request's own
  /// tap group (pinned against transient churn), `transient` for groups
  /// minted by greeks bumps / implied-vol trial evaluations.
  enum class Tier { base, transient };

  /// Find-or-create the session cache for a tap group; thread-safe. Base
  /// lookups that hit the transient tier promote the entry. Empty taps (no
  /// cache-aware path) yield null.
  [[nodiscard]] CachePtr cache_for(const stencil::LinearStencil& st,
                                   Tier tier);

  struct Entry;
  /// Drop the least-recently-used entry of `tier` if it exceeds `cap`.
  /// Caller holds mu_.
  static void evict_lru(std::vector<Entry>& tier, std::size_t cap);

  /// Find-or-create the session's boundary-engine node table for the
  /// config's (alo_nodes, alo_quad); thread-safe. Lives next to the kernel
  /// registry so steady-state boundary quotes (and their IV trials) are
  /// pure evaluation — the table build is a once-per-setting setup cost.
  [[nodiscard]] std::shared_ptr<const alo::NodeTable> node_table_for(
      const core::SolverConfig& cfg);

  /// Price `spec` under the request's (model, right, style, engine) with
  /// the session cache for its derived taps — the evaluation primitive the
  /// greeks bumps and implied-vol iterations run on.
  [[nodiscard]] double price_cached(const OptionSpec& spec,
                                    const PricingRequest& req,
                                    const core::SolverConfig& cfg);

  /// price_cached through the session's bumped-price store (the greeks
  /// warm-start): identical value, remembered across calls so repeated
  /// greeks over an unchanged contract skip the re-pricing entirely.
  [[nodiscard]] double price_cached_memo(const OptionSpec& spec,
                                         const PricingRequest& req,
                                         const core::SolverConfig& cfg);

  /// The cross-expiry dt normalization behind
  /// `PricerConfig::share_kernels_across_expiries` (see its comment).
  /// `quantum` is `PricerConfig::share_quantum`: 0 groups on exact (R, V, Y)
  /// bytes; > 0 groups on quantized buckets and snaps each >= 2-member
  /// group's (R, V, Y) onto its lexicographically smallest member tuple
  /// before the dt renormalization.
  static void normalize_expiries(std::vector<PricingRequest>& reqs,
                                 double quantum = 0.0);

  /// Serve one validated item; throws on pricer failure (caught by the
  /// batch loop and converted to Status::error).
  void run_item(const PricingRequest& req, stencil::KernelCache* kernels,
                PricingResult& out);

  /// The implied-vol leg of run_item: cold bracketed Newton on the first
  /// inversion of a contract, warm-started secant afterwards.
  void run_implied_vol(const PricingRequest& req, const ImpliedVolConfig& ivc,
                       const core::SolverConfig& cfg, PricingResult& out);

  /// Two genuine (vol, price-at-vol) samples from a contract's last
  /// converged inversion; prices do not depend on the quote, so they seed
  /// the next tick's secant for free.
  struct WarmRoot {
    double v0 = 0.0, p0 = 0.0;  ///< newest point (the root)
    double v1 = 0.0, p1 = 0.0;  ///< previous distinct iterate
  };

  PricerConfig cfg_;
  mutable std::mutex mu_;
  struct Entry {
    CachePtr cache;             ///< its stencil() is the registry key
    std::uint64_t last_used = 0;
  };
  std::vector<Entry> base_caches_;       ///< requests' own tap groups
  std::vector<Entry> transient_caches_;  ///< bump/trial-vol tap groups
  /// Registry-wide spectrum-tier byte budget (null when the cap is 0);
  /// attached to every cache the registry creates. shared_ptr because
  /// evicted-but-in-flight caches may outlive the registry entry.
  std::shared_ptr<stencil::SpectrumBudget> spectrum_budget_;
  /// Boundary-engine node tables by (alo_nodes << 32) | alo_quad (clamped
  /// values). Unbounded by design: entries are ~O(nodes^2) doubles and the
  /// key space is the handful of accuracy presets a session uses.
  std::unordered_map<std::uint64_t,
                     std::shared_ptr<const alo::NodeTable>>
      node_tables_;
  std::unordered_map<std::string, WarmRoot> warm_roots_;  ///< by contract key
  /// Bumped-spec prices the greeks legs evaluated, by full evaluation key
  /// (spec + T + model/right/style/engine + resolved solver config).
  std::unordered_map<std::string, double> bump_prices_;
  std::uint64_t tick_ = 0;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t requests_ = 0;
  std::uint64_t bump_hits_ = 0;
  std::uint64_t batches_ = 0;
  /// Atomic (not mu_-guarded): updated by every fan-out thread at the end
  /// of a batch, where taking the registry mutex would serialize the join.
  std::atomic<std::size_t> scratch_high_water_{0};
  std::atomic<std::uint64_t> trim_events_{0};
};

}  // namespace amopt::pricing
