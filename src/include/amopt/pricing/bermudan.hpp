#pragma once
// Bermudan options (one of the paper's "future work" items, §6): exercise
// is allowed only at a given subset of the T lattice steps. Between
// exercise dates the stencil is purely linear, so the whole gap collapses
// into ONE kernel correlation; the nonlinearity is a pointwise max applied
// at the m exercise dates. Total cost O(m * T log T) versus Θ(T^2) for the
// rollback loop — the same FFT idea as the American solver but without
// needing any boundary structure.

#include <cstdint>
#include <span>

#include "amopt/pricing/params.hpp"

namespace amopt::pricing::bermudan {

enum class Right { call, put };

/// `exercise_steps`: strictly increasing lattice steps in [0, T] at which
/// early exercise is permitted (step T — expiry — is always exercisable and
/// need not be listed). Empty => European.
[[nodiscard]] double price_fft(const OptionSpec& spec, std::int64_t T,
                               std::span<const std::int64_t> exercise_steps,
                               Right right);

/// Θ(T^2) rollback oracle with the same exercise schedule.
[[nodiscard]] double price_vanilla(const OptionSpec& spec, std::int64_t T,
                                   std::span<const std::int64_t> exercise_steps,
                                   Right right);

}  // namespace amopt::pricing::bermudan
