#pragma once
// Implied volatility for American options: invert price -> V with a
// safeguarded Newton iteration (bisection fallback) on the O(T log^2 T)
// pricer. This is the workload the paper's introduction motivates — rapid
// recalibration as market quotes move — and it multiplies the pricer
// speedup by the ~10 iterations the inversion needs.

#include <cstdint>
#include <functional>

#include "amopt/pricing/params.hpp"

namespace amopt::pricing {

struct ImpliedVolResult {
  double vol = 0.0;
  int iterations = 0;
  bool converged = false;
};

struct ImpliedVolConfig {
  double tol = 1e-8;      ///< absolute price tolerance
  double vol_lo = 1e-4;   ///< search bracket
  double vol_hi = 5.0;
  int max_iterations = 64;
  std::int64_t T = 4096;  ///< lattice steps per evaluation
};

/// Volatility such that the American call under BOPM matches `target_price`.
/// spec.V is ignored. Returns converged=false if the target lies outside
/// the no-arbitrage range attainable on [vol_lo, vol_hi].
[[nodiscard]] ImpliedVolResult american_call_implied_vol(
    const OptionSpec& spec, double target_price, ImpliedVolConfig cfg = {});

/// Same for the American put (direct mirrored-lattice pricer).
[[nodiscard]] ImpliedVolResult american_put_implied_vol(
    const OptionSpec& spec, double target_price, ImpliedVolConfig cfg = {});

namespace detail {

/// The safeguarded Newton behind the free functions: secant steps clipped
/// to a maintained bracket, bisection whenever a step leaves it. Exposed so
/// the session API (`Pricer::implied_vol_many`) can supply a
/// `price_of_vol` that draws on the session's shared kernel caches — same
/// evaluations, same iterates, bit-identical result.
[[nodiscard]] ImpliedVolResult invert_implied_vol(
    const std::function<double(double)>& price_of_vol, double target,
    const ImpliedVolConfig& cfg);

/// Lift `cfg.vol_lo` above the CRR lattice validity floor
/// (V*sqrt(dt) > |R-Y|*dt needs p in (0,1)); uses `cfg.T` for dt.
void clamp_vol_bracket(const OptionSpec& spec, ImpliedVolConfig& cfg);

/// Warm-started variant for sessions: seed the safeguarded secant with two
/// genuine (vol, price) samples from a previous inversion of the same
/// contract — (v0, p0) the newest, (v1, p1) the previous distinct iterate;
/// prices are independent of the quote, so the samples stay exact. A quote
/// that moved a tick typically closes in 1-3 evaluations (0 when it moved
/// less than cfg.tol). Whatever the short warm budget (at most 8
/// evaluations) cannot close falls back to the cold bracketed
/// `invert_implied_vol` with the remaining iteration budget and the
/// bracket the evaluations established — so a target that gapped out of
/// the attainable range costs the warm budget plus the cold path's two
/// endpoint evaluations, and the total evaluation count respects
/// cfg.max_iterations. Both samples must lie strictly inside
/// (cfg.vol_lo, cfg.vol_hi).
[[nodiscard]] ImpliedVolResult invert_implied_vol_warm(
    const std::function<double(double)>& price_of_vol, double target,
    const ImpliedVolConfig& cfg, double v0, double p0, double v1, double p1);

}  // namespace detail

}  // namespace amopt::pricing
