#pragma once
// Implied volatility for American options: invert price -> V with a
// safeguarded Newton iteration (bisection fallback) on the O(T log^2 T)
// pricer. This is the workload the paper's introduction motivates — rapid
// recalibration as market quotes move — and it multiplies the pricer
// speedup by the ~10 iterations the inversion needs.

#include <cstdint>

#include "amopt/pricing/params.hpp"

namespace amopt::pricing {

struct ImpliedVolResult {
  double vol = 0.0;
  int iterations = 0;
  bool converged = false;
};

struct ImpliedVolConfig {
  double tol = 1e-8;      ///< absolute price tolerance
  double vol_lo = 1e-4;   ///< search bracket
  double vol_hi = 5.0;
  int max_iterations = 64;
  std::int64_t T = 4096;  ///< lattice steps per evaluation
};

/// Volatility such that the American call under BOPM matches `target_price`.
/// spec.V is ignored. Returns converged=false if the target lies outside
/// the no-arbitrage range attainable on [vol_lo, vol_hi].
[[nodiscard]] ImpliedVolResult american_call_implied_vol(
    const OptionSpec& spec, double target_price, ImpliedVolConfig cfg = {});

/// Same for the American put (direct mirrored-lattice pricer).
[[nodiscard]] ImpliedVolResult american_put_implied_vol(
    const OptionSpec& spec, double target_price, ImpliedVolConfig cfg = {});

}  // namespace amopt::pricing
