#pragma once
// American call pricing under the Trinomial Option Pricing Model (paper §3
// and Appendix A). Same red/green structure as BOPM, but each cell depends
// on three children, so the dependency cone widens 2 cells/step; the
// lattice solver handles this through its cone-growth parameter.

#include <cstdint>

#include "amopt/core/lattice_solver.hpp"
#include "amopt/pricing/params.hpp"

namespace amopt::pricing::topm {

/// Exercise-value oracle: value(i, j) = S * u^(j-i) - K, j in [0, 2i].
class CallGreen final : public core::LatticeGreen {
 public:
  CallGreen(const OptionSpec& spec, const TopmParams& prm)
      : up_(prm.log_u, prm.T), S_(spec.S), K_(spec.K) {}
  [[nodiscard]] double value(std::int64_t i, std::int64_t j) const override {
    return S_ * up_(j - i) - K_;
  }

 private:
  PowerTable up_;
  double S_, K_;
};

[[nodiscard]] core::LatticeRow expiry_row(const TopmParams& prm,
                                          const core::LatticeGreen& green);

[[nodiscard]] double american_call_fft(const OptionSpec& spec, std::int64_t T,
                                       core::SolverConfig cfg = {});
/// Shared-cache variant (see pricing::price_batch); `kernels` may be null
/// and must otherwise be built from stencil {{s0, s1, s2}, 0}.
[[nodiscard]] double american_call_fft(const OptionSpec& spec, std::int64_t T,
                                       core::SolverConfig cfg,
                                       stencil::KernelCache* kernels);
/// The paper's `vanilla-topm` reference: Θ(T^2) looping code.
[[nodiscard]] double american_call_vanilla(const OptionSpec& spec,
                                           std::int64_t T);
[[nodiscard]] double american_call_vanilla_parallel(const OptionSpec& spec,
                                                    std::int64_t T);

[[nodiscard]] double american_put_vanilla(const OptionSpec& spec,
                                          std::int64_t T);
/// Fast put via put-call symmetry (see bopm::american_put_fft).
[[nodiscard]] double american_put_fft(const OptionSpec& spec, std::int64_t T,
                                      core::SolverConfig cfg = {});

[[nodiscard]] double european_call_vanilla(const OptionSpec& spec,
                                           std::int64_t T);
[[nodiscard]] double european_call_fft(const OptionSpec& spec, std::int64_t T);
[[nodiscard]] double european_call_fft(const OptionSpec& spec, std::int64_t T,
                                       stencil::KernelCache* kernels);

}  // namespace amopt::pricing::topm
