#pragma once
// S3: coefficients of powers of small polynomials.
//
// Applying `h` steps of a linear stencil with tap polynomial
// P(x) = sum_k taps[k] x^k equals one correlation with the coefficient
// vector of P(x)^h (Ahmad et al., SPAA 2021). This module computes those
// kernels three ways:
//   * power_fft        — binary exponentiation with FFT convolutions,
//                        O(h·deg · log(h·deg)); the production path.
//   * power_binomial   — closed form C(h,m)·a^{h-m}·b^m for 2-tap stencils,
//                        evaluated in log space so nothing under/overflows;
//                        the production fast path for BOPM.
//   * power_recurrence — Euler's O(h·deg) recurrence from Q = P^h,
//                        P·Q' = h·P'·Q. Needs taps[0]^h representable, so it
//                        serves as a cross-check oracle for moderate h.
//   * power_naive      — repeated direct convolution; tiny-h test oracle.
//
// All option-pricing tap vectors are non-negative with sum <= 1 (they are
// discounted transition probabilities), so kernel coefficients live in
// [0, 1] and the FFT path is numerically benign.

#include <cstdint>
#include <span>
#include <vector>

#include "amopt/fft/convolution.hpp"

namespace amopt::poly {

[[nodiscard]] std::vector<double> power_fft(std::span<const double> taps,
                                            std::uint64_t h);

/// Workspace-backed power_fft: the square-and-multiply accumulators ping-
/// pong through `ws` and every convolution draws its FFT scratch from it,
/// so only the returned kernel itself is heap-allocated.
[[nodiscard]] std::vector<double> power_fft(std::span<const double> taps,
                                            std::uint64_t h,
                                            conv::Workspace& ws);

[[nodiscard]] std::vector<double> power_binomial(double a, double b,
                                                 std::uint64_t h);

[[nodiscard]] std::vector<double> power_recurrence(std::span<const double> taps,
                                                   std::uint64_t h);

[[nodiscard]] std::vector<double> power_naive(std::span<const double> taps,
                                              std::uint64_t h);

/// Production dispatch: closed form for 2 taps, FFT squaring otherwise.
[[nodiscard]] std::vector<double> power(std::span<const double> taps,
                                        std::uint64_t h);

/// Production dispatch through an explicit convolution workspace.
[[nodiscard]] std::vector<double> power(std::span<const double> taps,
                                        std::uint64_t h, conv::Workspace& ws);

}  // namespace amopt::poly
