#pragma once
// S3: coefficients of powers of small polynomials.
//
// Applying `h` steps of a linear stencil with tap polynomial
// P(x) = sum_k taps[k] x^k equals one correlation with the coefficient
// vector of P(x)^h (Ahmad et al., SPAA 2021). This module computes those
// kernels three ways:
//   * power_fft        — binary exponentiation with FFT convolutions,
//                        O(h·deg · log(h·deg)); the production path.
//   * power_binomial   — closed form C(h,m)·a^{h-m}·b^m for 2-tap stencils,
//                        evaluated in log space so nothing under/overflows;
//                        the production fast path for BOPM.
//   * power_recurrence — Euler's O(h·deg) recurrence from Q = P^h,
//                        P·Q' = h·P'·Q. Needs taps[0]^h representable, so it
//                        serves as a cross-check oracle for moderate h.
//   * power_naive      — repeated direct convolution; tiny-h test oracle.
//
// All option-pricing tap vectors are non-negative with sum <= 1 (they are
// discounted transition probabilities), so kernel coefficients live in
// [0, 1] and the FFT path is numerically benign.

#include <cstdint>
#include <span>
#include <vector>

#include "amopt/fft/convolution.hpp"

namespace amopt::poly {

[[nodiscard]] std::vector<double> power_fft(std::span<const double> taps,
                                            std::uint64_t h);

/// Workspace-backed power_fft: the square-and-multiply accumulators ping-
/// pong through `ws` and every convolution draws its FFT scratch from it,
/// so only the returned kernel itself is heap-allocated.
[[nodiscard]] std::vector<double> power_fft(std::span<const double> taps,
                                            std::uint64_t h,
                                            conv::Workspace& ws);

/// The shared squaring ladder: ladder[k] holds the coefficients of
/// taps^(2^k), exactly as power_fft's internal repeated-squaring chain
/// produces them (including the probability-kernel noise clamp). A caller
/// that keeps one ladder across calls (stencil::KernelCache) pays each
/// squaring once for ALL requested heights instead of once per height.
/// Rungs are append-only and never mutated after insertion, so spans into
/// a rung's data stay valid across later extensions (vector move steals
/// the heap buffer; it does not relocate it).
using SquaringLadder = std::vector<std::vector<double>>;

/// Grow `ladder` until it holds every rung the h walk needs (indices
/// 0..floor(log2 h)), squaring the top rung exactly the way power_fft's
/// internal chain does. Seeds rung 0 with `taps` on an empty ladder;
/// asserts an existing rung 0 matches `taps` (a ladder reused with
/// different taps would silently return powers of the WRONG stencil).
/// The caller serializes concurrent access to `ladder`.
void extend_ladder(std::span<const double> taps, std::uint64_t h,
                   SquaringLadder& ladder, conv::Workspace& ws);

/// The combine half of the walk: multiply together rungs[k] over the set
/// bits of h, replaying power_fft's accumulation order and clamping. Reads
/// the rung spans only — no ladder mutation — so callers may run it
/// outside whatever lock guards ladder extension. rungs[0] must be the
/// raw taps; rungs must cover every set bit of h.
[[nodiscard]] std::vector<double> power_from_rungs(
    std::uint64_t h, std::span<const std::span<const double>> rungs,
    conv::Workspace& ws);

/// power_fft drawing its repeated-squaring chain from `ladder` (extending
/// it as needed, always from the largest cached rung). Bit-identical to
/// power_fft(taps, h) at a fixed dispatch level: the rungs ARE the squaring
/// sequence power_fft computes internally, and the combine steps replay the
/// same convolutions in the same order — sharing skips recomputation
/// without changing a single multiply. `ladder` must only ever be used with
/// one `taps` vector; the caller serializes concurrent access.
[[nodiscard]] std::vector<double> power_fft_ladder(std::span<const double> taps,
                                                   std::uint64_t h,
                                                   SquaringLadder& ladder,
                                                   conv::Workspace& ws);

[[nodiscard]] std::vector<double> power_binomial(double a, double b,
                                                 std::uint64_t h);

[[nodiscard]] std::vector<double> power_recurrence(std::span<const double> taps,
                                                   std::uint64_t h);

[[nodiscard]] std::vector<double> power_naive(std::span<const double> taps,
                                              std::uint64_t h);

/// Production dispatch: closed form for 2 taps, FFT squaring otherwise.
[[nodiscard]] std::vector<double> power(std::span<const double> taps,
                                        std::uint64_t h);

/// Production dispatch through an explicit convolution workspace.
[[nodiscard]] std::vector<double> power(std::span<const double> taps,
                                        std::uint64_t h, conv::Workspace& ws);

}  // namespace amopt::poly
