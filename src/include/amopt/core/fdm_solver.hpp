#pragma once
// S6: the paper's nonlinear-stencil solver for the Black-Scholes-Merton
// explicit finite-difference grid (§4.3).
//
// Dimensionless put problem: time index n in [0, T] (n = 0 at expiry,
// tau = n*dtau), space index k (s = k*ds, s = ln(x/K)). Row n is a green
// prefix (exercise region, v = 1 - e^{k ds}) for k <= f_n and a red suffix
// (continuation, centered 3-tap linear stencil) for k > f_n. The early
// exercise boundary f_n starts at 0 and moves LEFT by at most one cell per
// step (Theorem 4.3, requiring the monotone scheme a, b, c >= 0).
//
// A trapezoid of height L (paper Fig. 4a) from a row whose red values are
// known on (f, kr]:
//   * strip around the boundary -> recursive sub-trapezoid on the window
//     [f-2h, f+2h] (green side extended by the closed-form payoff);
//   * cells k in [f+h+1, kr-h] are provably red with provably-red cones ->
//     one correlation with the h-step kernel (FFT);
//   * repeat for the second half. Base case: naive projection loop.
// Margin requirement kr - f >= 2L; the right edge erodes by one cell per
// step (the solution cone), which the top-level driver pre-pads for.

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "amopt/core/lattice_solver.hpp"  // SolverConfig
#include "amopt/stencil/kernel_cache.hpp"

namespace amopt::core {

/// Exercise-value oracle for FDM cells; for the paper's put this is
/// 1 - e^{k ds}, independent of n.
class FdmGreen {
 public:
  virtual ~FdmGreen() = default;
  [[nodiscard]] virtual double value(std::int64_t n, std::int64_t k) const = 0;
};

/// One FDM row in boundary-compressed form: green for k <= f (oracle), red
/// values stored for k in (f, kr].
struct FdmRow {
  std::int64_t n = 0;
  std::int64_t f = 0;
  std::int64_t kr = 0;
  std::vector<double> red;  ///< red[t] = value at k = f + 1 + t
};

class FdmSolver {
 public:
  /// `st` must be the centered 3-tap stencil (taps {b, c, a}, left = -1).
  FdmSolver(stencil::LinearStencil st, const FdmGreen& green,
            SolverConfig cfg = {});

  /// Share a kernel cache owned by the caller (same contract as the
  /// LatticeSolver overload): concurrent pricings with the same taps — a
  /// BSM strike ladder — request the same kernel heights, so each power is
  /// computed once per chain. `shared` may be null (then a private cache is
  /// built from `fallback`) and must otherwise outlive the solver and be
  /// built from a stencil equal to `fallback` (the centered one above).
  FdmSolver(stencil::KernelCache* shared, stencil::LinearStencil fallback,
            const FdmGreen& green, SolverConfig cfg = {});

  FdmSolver(const FdmSolver&) = delete;
  FdmSolver& operator=(const FdmSolver&) = delete;

  /// Advance `L` time steps with the trapezoid decomposition.
  /// Requires row.kr - row.f >= 2L. The result spans (f', row.kr - L].
  [[nodiscard]] FdmRow advance(FdmRow row, std::int64_t L);

  /// One naive projection step (row n -> n+1); kr shrinks by one. With
  /// `unbounded_scan` the boundary is re-discovered by scanning left from
  /// f until the first green cell instead of trusting the one-cell bound of
  /// Theorem 4.3 — required for the first steps off the initial condition
  /// when Y > R, where the discrete boundary jumps to ~ln(R/Y)/ds at once
  /// (the payoff row is not yet governed by the free-boundary dynamics).
  [[nodiscard]] FdmRow step_naive(const FdmRow& row,
                                  bool unbounded_scan = false) const;

  [[nodiscard]] const SolverConfig& config() const noexcept { return cfg_; }

 private:
  /// Trapezoid over the window (f0, kr] of row n0. `in[t]` = value at
  /// k = f0+1+t (size kr-f0). `out` is indexed from base f0-L:
  /// out[t] = value at k = (f0-L)+1+t; on return cells (f_new, kr-L] are
  /// filled. Returns f_new. out.size() >= kr-f0; no aliasing with `in`.
  std::int64_t solve(std::int64_t n0, std::int64_t f0, std::int64_t kr,
                     std::int64_t L, std::span<const double> in,
                     std::span<double> out);

  std::int64_t solve_base(std::int64_t n0, std::int64_t f0, std::int64_t kr,
                          std::int64_t L, std::span<const double> in,
                          std::span<double> out) const;

  std::unique_ptr<stencil::KernelCache> owned_kernels_;  ///< null when shared
  stencil::KernelCache* kernels_;
  const FdmGreen& green_;
  SolverConfig cfg_;
};

}  // namespace amopt::core
