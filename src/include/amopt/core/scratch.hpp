#pragma once
// S5b: the solvers' scratch arena.
//
// Every level of the trapezoid recursion needs a handful of short-lived row
// buffers (`mid`, the base case's ping-pong rows, the FDM assembly row).
// Allocating them from the heap makes the descent allocation-bound: the
// recursion performs O(T) vector constructions per pricing, each paying
// malloc/free plus a cold-page zero-fill, and the buffers land wherever the
// allocator happens to put them. `ScratchStack` replaces that with the
// allocation pattern the recursion actually has — strict LIFO — over
// grow-only, 64-byte-aligned storage: a `Frame` marks the stack on entry to
// a recursion level and pops everything that level allocated on exit, so a
// warmed-up stack serves an entire descent without touching the heap, from
// memory that stays cache-resident across trapezoids.
//
// Growth never invalidates outstanding spans: storage is a chain of blocks
// and growing appends a block at least as large as everything allocated so
// far, so the stack converges to (at most) one live block per power-of-two
// high-water mark and every earlier span stays where it was.
//
// Threading: one ScratchStack serves one thread (no locking). The library
// keeps one per thread via `thread_scratch()` — OpenMP task legs of the
// recursion allocate from their executing thread's stack, which is safe
// because tied tasks nest stack-like on a thread (a thread that suspends a
// task at a scheduling point finishes the intervening task before resuming,
// so frames pushed by the intervening task pop before the suspended frame
// does). Thread-local rather than per-solver so the warm blocks survive the
// short-lived solver instances the pricers construct per call — the same
// lifetime rule as conv::thread_workspace().

#include <cstddef>
#include <span>
#include <vector>

#include "amopt/common/aligned.hpp"

namespace amopt::core {

class ScratchStack {
 public:
  ScratchStack() = default;
  ScratchStack(const ScratchStack&) = delete;
  ScratchStack& operator=(const ScratchStack&) = delete;

  /// One recursion level's allocations. Frames must be destroyed in reverse
  /// construction order on their stack (automatic with scoped locals);
  /// destruction releases every span alloc()'d through this frame.
  class Frame {
   public:
    explicit Frame(ScratchStack& s) noexcept
        : s_(s), block_(s.block_), off_(s.off_) {
      ++s_.frames_;
    }
    ~Frame() {
      --s_.frames_;
      s_.block_ = block_;
      s_.off_ = off_;
    }
    Frame(const Frame&) = delete;
    Frame& operator=(const Frame&) = delete;

    /// A 64-byte-aligned span of n doubles, valid until this frame is
    /// destroyed. Contents are uninitialized (NaN-poisoned under
    /// AMOPT_DEBUG_CHECKS, so Debug/sanitize builds catch any read of a
    /// cell the algorithms were supposed to have written).
    [[nodiscard]] std::span<double> alloc(std::size_t n) {
      return s_.alloc(n);
    }

   private:
    ScratchStack& s_;
    std::size_t block_;
    std::size_t off_;
  };

  /// Total doubles of backing storage currently held (grow-only between
  /// trim() calls).
  [[nodiscard]] std::size_t capacity() const noexcept {
    std::size_t c = 0;
    for (const auto& b : blocks_) c += b.size();
    return c;
  }

  /// Opt-in high-water-mark decay for long-lived sessions mixing huge and
  /// tiny problem sizes: releases backing blocks, largest (most recent)
  /// first to keep, until at most `retain_bytes` of storage remain. A call
  /// while any Frame is outstanding is ignored — outstanding spans stay
  /// valid and the descent keeps its grow-only guarantee; only a between-
  /// batches caller (no live frames) actually shrinks storage. Returns
  /// whether a shrink happened.
  bool trim(std::size_t retain_bytes) noexcept;

 private:
  friend class Frame;
  [[nodiscard]] std::span<double> alloc(std::size_t n);

  std::vector<aligned_vector<double>> blocks_;
  std::size_t block_ = 0;   ///< block currently being bumped
  std::size_t off_ = 0;     ///< next free double inside it
  std::size_t frames_ = 0;  ///< live Frame count (trim() guard)
};

/// The calling thread's scratch stack (created on first use, never freed
/// while the thread lives).
[[nodiscard]] ScratchStack& thread_scratch();

}  // namespace amopt::core
