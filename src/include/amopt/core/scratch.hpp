#pragma once
// S5b: the solvers' scratch arena — per-task frames over per-thread blocks.
//
// Every level of the trapezoid recursion needs a handful of short-lived row
// buffers (`mid`, the base case's ping-pong rows, the FDM assembly row).
// Allocating them from the heap makes the descent allocation-bound: the
// recursion performs O(T) vector constructions per pricing, each paying
// malloc/free plus a cold-page zero-fill. `ScratchStack` replaces that with
// grow-only, 64-byte-aligned storage: a `Frame` leases blocks from its
// thread's arena on entry to a recursion level and returns them on exit, so
// a warmed-up arena serves an entire descent without touching the heap,
// from memory that stays cache-resident across trapezoids.
//
// The arena was originally a single strictly-LIFO bump stack, which was
// correct while the recursion ran on one thread (frames nest stack-like).
// Task-parallel descent breaks that discipline: a worker that steals the
// sibling leg of a fork holds a frame whose lifetime is NOT nested inside
// the frames already live on the victim's thread. Frames are therefore
// independent block *leases* now — each frame owns a private chain of
// blocks checked out from the arena's per-size-class free lists (blocks are
// power-of-two sized, so class-fit IS best-fit and warm reuse is exact
// across repeated identical descents) and bump-allocates inside its chain.
// Growth never invalidates outstanding spans: blocks are immovable once
// created, and a frame that outgrows its head block leases another.
//
// Threading: one ScratchStack serves one thread's frames (the library keeps
// one per thread via `thread_scratch()` — pool tasks allocate from their
// executing worker's arena, and the TaskPool's join rules confine each
// worker's live frames to one solve's nesting, which is what keeps the
// per-worker footprint — and the zero-steady-state-allocation counter tests
// — deterministic). Every *mutation* (frames, lease/release, trim) happens
// on the owning thread, so the whole hot path is synchronization-free — a
// frame costs two plain increments and a pointer pop, which is what keeps
// the task-parallel descent as cheap per level as the old single-stack
// bump arena. Cross-thread readers (`capacity()`, the process-wide
// `aggregate_scratch()` behind the server's admission control) see the
// footprint through one atomic counter instead of walking the block list.

#include <atomic>
#include <cstddef>
#include <memory>
#include <span>
#include <vector>

#include "amopt/common/aligned.hpp"

namespace amopt::core {

class ScratchStack {
 public:
  ScratchStack();
  ~ScratchStack();
  ScratchStack(const ScratchStack&) = delete;
  ScratchStack& operator=(const ScratchStack&) = delete;

  /// One task's (or recursion level's) allocations: a private lease of
  /// arena blocks, released wholesale on destruction. Frames on one thread
  /// may be destroyed in any order relative to sibling tasks' frames; a
  /// frame must simply outlive the spans alloc()'d through it.
  class Frame {
   public:
    explicit Frame(ScratchStack& s) noexcept : s_(s) { ++s_.frames_; }
    ~Frame() {
      if (head_) s_.release(head_);
      --s_.frames_;
    }
    Frame(const Frame&) = delete;
    Frame& operator=(const Frame&) = delete;

    /// A 64-byte-aligned span of n doubles, valid until this frame is
    /// destroyed. Contents are uninitialized (NaN-poisoned under
    /// AMOPT_DEBUG_CHECKS, so Debug/sanitize builds catch any read of a
    /// cell the algorithms were supposed to have written).
    [[nodiscard]] std::span<double> alloc(std::size_t n);

   private:
    ScratchStack& s_;
    struct Block* head_ = nullptr;  ///< lease chain, newest first
    std::size_t used_ = 0;          ///< doubles bumped in *head_
  };

  /// Total doubles of backing storage currently held, leased or free
  /// (grow-only between trim() calls).
  [[nodiscard]] std::size_t capacity() const noexcept;

  /// Opt-in high-water-mark decay for long-lived sessions mixing huge and
  /// tiny problem sizes: releases free backing blocks, keeping the largest
  /// set that fits in `retain_bytes`. A call while any Frame is outstanding
  /// is ignored — outstanding spans stay valid and the descent keeps its
  /// grow-only guarantee; only a between-batches caller (no live frames)
  /// actually shrinks storage. Returns whether a shrink happened.
  bool trim(std::size_t retain_bytes) noexcept;

 private:
  friend class Frame;
  /// Free blocks segregated by power-of-two size class; kClass0Doubles is
  /// the minting floor, the last class additionally holds every oversized
  /// block.
  static constexpr std::size_t kClass0Doubles = 1024;  ///< 8 KiB
  static constexpr int kNumClasses = 24;               ///< up to 64 GiB

  /// Class of a power-of-two block size (or the class a need mints into).
  [[nodiscard]] static int size_class(std::size_t pow2_doubles) noexcept;

  [[nodiscard]] struct Block* lease(std::size_t need_doubles,
                                    struct Block* chain);
  void release(struct Block* chain) noexcept;

  std::vector<std::unique_ptr<struct Block>> blocks_;  ///< all owned blocks
  struct Block* free_[kNumClasses] = {};  ///< unleased blocks, per class
  std::size_t frames_ = 0;  ///< live Frame count (trim() guard, owner-only)
  std::atomic<std::size_t> capacity_{0};  ///< doubles held, for readers
};

/// The calling thread's scratch arena (created on first use, never freed
/// while the thread lives).
[[nodiscard]] ScratchStack& thread_scratch();

/// Process-wide snapshot over every live arena (all threads' thread_scratch
/// instances plus any standalone stacks): the true multi-thread scratch
/// footprint, which is what the server's admission control must compare
/// against its byte ceiling once solves fan out across pool workers.
struct ScratchAggregate {
  std::size_t total_bytes = 0;  ///< sum of capacities across arenas
  std::size_t max_bytes = 0;    ///< largest single arena
  std::size_t arenas = 0;
};
[[nodiscard]] ScratchAggregate aggregate_scratch();

}  // namespace amopt::core
