#pragma once
// S5: the paper's nonlinear-stencil solver for lattice models (BOPM §2.3,
// TOPM §3/A.3).
//
// Grid convention (paper Fig. 2b): row i in [0, T] holds cells j in
// [0, g*i], where g = taps-1 is the cone growth rate (1 for binomial, 2 for
// trinomial). Row T is expiry; backward induction computes row i from row
// i+1. Every row is a contiguous *red* prefix [0, q_i] (continuation value,
// the linear stencil applies) followed by a *green* suffix (exercise value,
// a closed form of (i, j)). Corollary 2.7 / A.6: going down one row the
// boundary q_i stays or moves one cell left.
//
// A trapezoid of height L is solved by (paper Fig. 3b):
//   1. cells that are provably red at depth h = ceil(L/2) with their whole
//      dependency cone red -> one correlation with the stencil's h-step
//      kernel (FFT);
//   2. the O(g*h)-wide strip around the boundary -> recursion;
//   3. repeat both for the second half. Base case: naive loop with `max`,
//      which *discovers* the boundary location.
// Work O(L log^2 L), span O(L); the conv and the strip run as OpenMP tasks.
//
// Boundary-motion caveat (see DESIGN.md): the <=1-cell-per-step guarantee is
// proved from row T-2 downward, so pricers naive-step the first two rows
// before calling descend(). descend() itself only assumes the property holds
// from `top.i` downward.

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "amopt/core/scratch.hpp"
#include "amopt/fft/convolution.hpp"
#include "amopt/stencil/kernel_cache.hpp"
#include "amopt/stencil/linear_stencil.hpp"

namespace amopt::core {

/// Exercise-value oracle ("green" value) for lattice cells. Implementations
/// must be callable for any 0 <= i <= T, 0 <= j <= g*i + g (the solver reads
/// at most g-1 cells of green extension past a row's red prefix).
class LatticeGreen {
 public:
  virtual ~LatticeGreen() = default;
  [[nodiscard]] virtual double value(std::int64_t i, std::int64_t j) const = 0;
};

/// One grid row in boundary-compressed form: red values for j in [0, q],
/// green cells implied by the oracle. q == -1 means the row is entirely
/// green (then every row below it is too, by Lemma 2.4/A.2).
struct LatticeRow {
  std::int64_t i = 0;
  std::int64_t q = -1;
  std::vector<double> red;
};

/// Direction the red/green boundary moves as the backward induction walks
/// DOWN the lattice (decreasing i):
///  * shrinking — the call case (Corollary 2.7): q_i in [q_{i+1}-1, q_{i+1}];
///  * growing   — the mirrored-put case (library extension, validated
///    empirically in tests): q_i in [q_{i+1}, q_{i+1}+1].
enum class BoundaryDrift { shrinking, growing };

/// Where the solvers draw their transient row buffers from:
///  * arena — the thread's grow-only `core::ScratchStack` (zero heap
///    allocations once warm, rows reused while cache-hot, green-extension
///    cells staged split-operand so the red prefix is never copied);
///  * heap  — the pre-arena discipline (a fresh std::vector per recursion
///    level and a concatenated extension copy per convolution), kept as a
///    measurable reference for the fig5 memory-plane bars. Both planes
///    produce bit-identical results at a fixed dispatch level.
enum class MemoryPlane { arena, heap };

struct SolverConfig {
  int base_case = 8;               ///< trapezoid height switch to naive
  std::int64_t task_cutoff = 512;  ///< min height to spawn OpenMP tasks
  bool parallel = true;
  BoundaryDrift drift = BoundaryDrift::shrinking;
  conv::Policy conv_policy{};
  MemoryPlane memory = MemoryPlane::arena;
  /// Accuracy knobs of the pricing::Engine::boundary (ALO) engine — the
  /// lattice/FDM solvers ignore them. Defaults are the "accurate" preset
  /// (~1e-8 relative price error, DESIGN.md §6); sessions key their cached
  /// node tables on (alo_nodes, alo_quad), so batches sharing one setting
  /// share one table.
  int alo_nodes = 13;      ///< Chebyshev collocation nodes over sqrt(tau)
  int alo_quad = 25;       ///< tanh-sinh quadrature points per integral
  int alo_iterations = 8;  ///< fixed-point sweeps over the boundary
};

class LatticeSolver {
 public:
  LatticeSolver(stencil::LinearStencil st, const LatticeGreen& green,
                SolverConfig cfg = {});

  /// Share a kernel cache owned by the caller: concurrent pricings with the
  /// same taps (an option chain over strikes) request the same kernel
  /// heights, so computing each power once amortizes the dominant setup
  /// cost across the whole batch. `shared` may be null (then a private
  /// cache is built from `fallback`) and must otherwise outlive the solver
  /// and be built from a stencil equal to `fallback`.
  LatticeSolver(stencil::KernelCache* shared, stencil::LinearStencil fallback,
                const LatticeGreen& green, SolverConfig cfg = {});

  LatticeSolver(const LatticeSolver&) = delete;
  LatticeSolver& operator=(const LatticeSolver&) = delete;

  /// Full trapezoid descent from `top` to row `i_stop` (inclusive result).
  /// Requires the boundary-motion property from row top.i downward.
  [[nodiscard]] LatticeRow descend(LatticeRow top, std::int64_t i_stop);

  /// One naive backward-induction step (row i -> row i-1), discovering the
  /// new boundary. Used for the rows adjacent to expiry and as the
  /// trapezoid base case. `unbounded_scan` evaluates every cell of the new
  /// row instead of trusting the one-cell boundary-motion bound — required
  /// for the first step off the expiry row in growing mode, where the
  /// discrete boundary jumps (see DESIGN.md).
  [[nodiscard]] LatticeRow step_naive(const LatticeRow& row,
                                      bool unbounded_scan = false) const;

  /// `step_naive` writing into caller-provided row storage (`next.red`'s
  /// capacity is reused), so the descend loop can ping-pong two rows with
  /// no steady-state allocation. `next` must not alias `row`.
  void step_naive_into(const LatticeRow& row, bool unbounded_scan,
                       LatticeRow& next) const;

  [[nodiscard]] std::int64_t cone_growth() const noexcept { return g_; }
  [[nodiscard]] const SolverConfig& config() const noexcept { return cfg_; }

 private:
  /// Solve one trapezoid of height L over the column window [jL, q0]:
  /// given red values of row i0 (in[k] = value at j = jL + k, k in
  /// [0, q0-jL]), fill `out` with red values of row i0-L for j in
  /// [jL, q_new] (same indexing) and return q_new (jL-1 if the window is
  /// all green at that row). `in` and `out` must not alias;
  /// out.size() >= in.size().
  std::int64_t solve(std::int64_t i0, std::int64_t jL, std::int64_t q0,
                     std::int64_t L, std::span<const double> in,
                     std::span<double> out);

  std::int64_t solve_base(std::int64_t i0, std::int64_t jL, std::int64_t q0,
                          std::int64_t L, std::span<const double> in,
                          std::span<double> out) const;

  /// Correlate the h-step kernel over the logical input concat(main, tail)
  /// (a row's red prefix plus its g-1 green-extension cells, staged
  /// split-operand) writing `n_out` provably-red cells.
  void run_conv(std::span<const double> main, std::span<const double> tail,
                std::int64_t h, std::span<double> out);

  [[nodiscard]] std::int64_t row_width(std::int64_t i) const noexcept {
    return g_ * i;
  }

  std::unique_ptr<stencil::KernelCache> owned_kernels_;  ///< null when shared
  stencil::KernelCache* kernels_;
  const LatticeGreen& green_;
  SolverConfig cfg_;
  std::int64_t g_;
  /// Warm row storage handed back and forth with descend()'s ping-pong
  /// buffer, so repeated descents over one solver stay allocation-free.
  std::vector<double> spare_red_;
};

}  // namespace amopt::core
