#pragma once
// The execution plane: a small work-stealing task pool shared process-wide
// by the solvers (task-parallel trapezoid descent), the Pricer's batch
// fan-out, the FFT stage splits, and the service shards' drain tasks —
// replacing both the OpenMP runtime and the server's one-thread-per-shard
// workers with a single set of workers sized by AMOPT_THREADS.
//
// Determinism contract: the pool changes WHERE work runs, never what it
// computes. Every fork in the library is a pair of legs writing disjoint
// output ranges (or a counter-driven sweep over disjoint indices) with no
// reductions, so results are bit-identical at any concurrency — and at
// concurrency <= 1 invoke2()/for_each() degrade to plain inline calls in
// the historical serial order, so a 1-thread pooled build IS the
// sequential library, bit for bit and allocation for allocation.
//
// Scheduling rules (they are what keeps per-worker scratch arenas bounded
// and the nested joins deadlock-free):
//   * Tasks run to completion on whichever thread picks them up; they
//     never migrate or suspend.
//   * A WORKER blocked in a join helps only with tasks from its own deque
//     pushed at or above the join's fork point — i.e. strictly nested
//     descendants of the task it is already running. Anything shallower
//     (or another item's tree) stays for the thieves. This confines a
//     worker's scratch footprint to one item's serial footprint, which is
//     what makes the per-worker zero-steady-state-allocation guarantee
//     deterministic rather than scheduling-dependent.
//   * An EXTERNAL thread (not a pool worker) blocked in a top-level join
//     helps from the injection queue and steals from workers; nested
//     external joins just yield (their legs are visible to the workers,
//     so progress is guaranteed as long as one worker exists — and the
//     pool always keeps at least one).
//   * Idle workers take: own deque (LIFO, cache-warm), then the injection
//     queue (FIFO, latency-fair to the service plane), then steal the
//     oldest task of a sibling.

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>

namespace amopt::core {

class TaskPool {
 public:
  /// Hard ceiling on workers (and on a for_each fan-out width). The helper
  /// node array for a fan-out lives on the caller's stack, so this stays
  /// small; the paper's largest evaluation machine had 48 cores.
  static constexpr int kMaxThreads = 64;

  struct Join;
  struct Worker;  ///< opaque; defined in task_pool.cpp

  /// One schedulable unit. Callers own the node's storage (stack or a
  /// long-lived struct); it must stay alive until the task has run — for
  /// joined tasks that is until the join's pending count hits zero, for
  /// detached tasks until `fn` returns.
  struct Task {
    void (*fn)(void*) = nullptr;
    void* arg = nullptr;
    Join* join = nullptr;  ///< null for detached tasks
  };

  /// Fork/join completion state. Lives on the forking caller's stack.
  struct Join {
    std::atomic<int> pending{0};
    std::exception_ptr err;  ///< first helper exception (under `mu`)
    std::mutex mu;
  };

  /// The process-wide pool, sized by AMOPT_THREADS (default: the hardware
  /// concurrency, minimum 1). Constructed on first use.
  [[nodiscard]] static TaskPool& instance();

  explicit TaskPool(int threads);
  ~TaskPool();
  TaskPool(const TaskPool&) = delete;
  TaskPool& operator=(const TaskPool&) = delete;

  /// The current execution width: the caller plus concurrency()-1 workers.
  /// 1 means strictly serial library execution (the lone housekeeping
  /// worker then only ever runs detached tasks, e.g. server shard drains).
  [[nodiscard]] int concurrency() const noexcept {
    return limit_.load(std::memory_order_relaxed);
  }

  /// Retarget the execution width, spawning workers on demand (never
  /// joining them — excess workers park). Clamped to [1, kMaxThreads].
  /// Widths beyond the hardware concurrency genuinely oversubscribe, which
  /// the thread-scaling benches and the determinism stress test rely on.
  void set_concurrency(int n);

  /// True on a pool worker thread (the successor of omp_in_parallel()).
  [[nodiscard]] static bool on_worker() noexcept;

  /// Run `f` and `g` as potentially-parallel legs: `g` is offered to the
  /// pool, `f` runs inline, then the caller joins (helping per the rules
  /// above). At concurrency <= 1 — or if the queues are full — this is
  /// exactly `f(); g();`. Exceptions from either leg propagate (first one
  /// wins when both throw).
  ///
  /// Never inlined: the join machinery (mutex-bearing Join, EH landing
  /// pads, submit/wait) would otherwise bloat the caller's frame and
  /// pessimize its serial branch — every caller pairs this with an inline
  /// `f(); g();` else-path, so the fork path can afford a call.
  template <class F, class G>
#if defined(__GNUC__) || defined(__clang__)
  __attribute__((noinline))
#endif
  void invoke2(F&& f, G&& g) {
    if (concurrency() <= 1) {
      f();
      g();
      return;
    }
    using Gv = std::remove_reference_t<G>;
    Join join;
    join.pending.store(1, std::memory_order_relaxed);
    Task t;
    t.fn = [](void* p) { (*static_cast<Gv*>(p))(); };
    t.arg = const_cast<void*>(static_cast<const void*>(std::addressof(g)));
    t.join = &join;
    const std::uint64_t floor = submit_floor();
    if (!submit(&t)) {
      f();
      g();
      return;
    }
    try {
      f();
    } catch (...) {
      wait(join, floor);  // g still references this stack frame
      throw;
    }
    wait(join, floor);
    if (join.err) std::rethrow_exception(join.err);
  }

  /// Counter-scheduled parallel map: `body(i)` for every i in [0, n), with
  /// up to min(concurrency, max_width, n) executors (0 = no cap) pulling
  /// indices from a shared atomic counter (the successor of
  /// `omp for schedule(dynamic,1)`). After an executor exhausts the
  /// counter it runs `epilogue()` once on its own thread — the hook the
  /// Pricer uses to record/trim each executor's scratch arena at the join,
  /// exactly where the OpenMP version ran its end-of-region code. The
  /// caller always participates; with one executor everything runs inline
  /// in index order.
  template <class Body, class Epilogue>
  void for_each(std::ptrdiff_t n, Body&& body, Epilogue&& epilogue,
                int max_width = 0) {
    if (n <= 0) return;
    int width = concurrency();
    if (max_width > 0 && max_width < width) width = max_width;
    if (static_cast<std::ptrdiff_t>(width) > n) width = static_cast<int>(n);
    if (width > kMaxThreads) width = kMaxThreads;
    using Ctx = ForEachCtx<std::remove_reference_t<Body>,
                           std::remove_reference_t<Epilogue>>;
    Ctx ctx;
    ctx.n = n;
    ctx.body = std::addressof(body);
    ctx.epilogue = std::addressof(epilogue);
    if (width <= 1) {
      run_inline(&Ctx::drain, &ctx);
      return;
    }
    Join join;
    join.pending.store(width - 1, std::memory_order_relaxed);
    Task nodes[kMaxThreads];
    const std::uint64_t floor = submit_floor();
    for (int k = 0; k + 1 < width; ++k) {
      nodes[k].fn = &Ctx::drain;
      nodes[k].arg = &ctx;
      nodes[k].join = &join;
      if (!submit(&nodes[k]))  // queues full: this helper simply never runs
        join.pending.fetch_sub(1, std::memory_order_relaxed);
    }
    try {
      run_inline(&Ctx::drain, &ctx);
    } catch (...) {
      wait(join, floor);
      throw;
    }
    wait(join, floor);
    if (join.err) std::rethrow_exception(join.err);
  }

  template <class Body>
  void for_each(std::ptrdiff_t n, Body&& body, int max_width = 0) {
    for_each(
        n, std::forward<Body>(body), [] {}, max_width);
  }

  /// Offer a detached task (join == nullptr, `fn` must not throw) to the
  /// workers. Returns false when the queue is full — the caller must then
  /// run the task inline. The node is reusable as soon as `fn` returns.
  bool submit_detached(Task* t);

  /// Run `fn(arg)` once on every active worker thread (callers excluded),
  /// blocking until all have finished. Must NOT be called from a worker.
  /// Test/maintenance hook: deterministic per-worker arena warm-up and
  /// trims — not a fast path.
  void run_on_workers(void (*fn)(void*), void* arg);

 private:
  /// Bounded MPMC ring of task pointers under one mutex. Owner pushes and
  /// pops at the tail (LIFO); thieves and the injection path pop at the
  /// head (FIFO). Head/tail are monotone, so a tail position doubles as
  /// the "fork floor" a nested join must not pop below.
  struct Ring {
    explicit Ring(std::size_t cap);
    bool push(Task* t);
    Task* pop_front();
    Task* pop_back_above(std::uint64_t floor);
    [[nodiscard]] std::uint64_t tail_position();

    std::mutex m;
    std::unique_ptr<Task*[]> buf;
    std::uint64_t mask;
    std::uint64_t head = 0;
    std::uint64_t tail = 0;
  };

  template <class Body, class Epilogue>
  struct ForEachCtx {
    std::atomic<std::ptrdiff_t> next{0};
    std::ptrdiff_t n = 0;
    Body* body = nullptr;
    Epilogue* epilogue = nullptr;

    static void drain(void* p) {
      auto& c = *static_cast<ForEachCtx*>(p);
      for (;;) {
        const std::ptrdiff_t i = c.next.fetch_add(1, std::memory_order_relaxed);
        if (i >= c.n) break;
        (*c.body)(static_cast<std::size_t>(i));
      }
      (*c.epilogue)();
    }
  };

  [[nodiscard]] int active_workers() const noexcept {
    const int lim = limit_.load(std::memory_order_acquire);
    return lim <= 1 ? 1 : lim - 1;
  }

  bool submit(Task* t);
  [[nodiscard]] std::uint64_t submit_floor();
  void wait(Join& join, std::uint64_t floor);
  void run_inline(void (*fn)(void*), void* arg);
  void run_task(Task* t);
  Task* find_task(Worker* w);
  Task* steal_external();
  void worker_main(Worker* w);
  void spawn_workers_locked(int target);
  void wake_sleepers();

  std::atomic<int> limit_{1};
  std::atomic<bool> stop_{false};

  // Worker slots are fixed-address (unique_ptr in a fixed array) so the
  // steal scan can walk them lock-free up to spawned_.
  std::unique_ptr<Worker> workers_[kMaxThreads];
  std::atomic<int> spawned_{0};
  std::mutex spawn_mu_;

  Ring inject_;

  // Sleep protocol: submitters bump ready_ (seq_cst) then read sleepers_
  // (seq_cst); sleepers bump sleepers_ (seq_cst) then read ready_ (seq_cst)
  // inside the cv predicate — the Dekker pairing that makes a lost wakeup
  // impossible without locking on every submit.
  std::atomic<int> ready_{0};
  std::atomic<int> sleepers_{0};
  std::mutex sleep_mu_;
  std::condition_variable sleep_cv_;

  // run_on_workers state: fields written under bcast_mu_, published by the
  // generation counter's release store, consumed by workers between tasks.
  std::mutex bcast_mu_;
  std::atomic<std::uint64_t> bcast_gen_{0};
  std::atomic<int> bcast_remaining_{0};
  std::atomic<int> bcast_limit_{0};
  void (*bcast_fn_)(void*) = nullptr;
  void* bcast_arg_ = nullptr;
};

}  // namespace amopt::core
