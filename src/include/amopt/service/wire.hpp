#pragma once
// W1: the service plane's wire format (DESIGN.md §8).
//
// A versioned, endian-explicit binary serialization of
// `pricing::PricingRequest` / `pricing::PricingResult` batches, framed as a
// length-prefixed stream so any byte transport (the in-process loopback,
// plain TCP — see transport.hpp) can carry pricing traffic. Design rules:
//
//  * **Exact round trip.** Doubles travel as raw IEEE-754 binary64 bit
//    patterns (little-endian on the wire), so every representable value —
//    including NaN payloads, infinities and signed zeros — decodes to the
//    bit-identical double. What the daemon prices is exactly what the
//    client asked for; there is no text formatting anywhere on this path.
//  * **Little-endian wire, any-endian host.** All integers are fixed-width
//    little-endian. On little-endian hosts (every production target) the
//    field accessors compile to plain unaligned loads/stores via memcpy —
//    no staging buffer, no byte shuffling; big-endian hosts pay an explicit
//    per-field byteswap. Decoding never aliases the input buffer with a
//    typed pointer, so alignment and strict-aliasing rules hold on every
//    path.
//  * **Malformed input is an error value, never UB.** Every header field,
//    record count, enum byte and length is validated against the payload
//    actually present; truncated or corrupted frames yield a `DecodeError`
//    (`need_more` for a clean prefix of a valid frame, a specific error
//    otherwise) and leave the output vector contents unspecified but valid.
//    The decoders are fuzzed and run under the ASan/UBSan CI legs
//    (tests/test_wire.cpp).
//  * **Zero steady-state allocations.** Encoders append to a caller-owned
//    byte vector and decoders fill caller-owned request/result vectors;
//    capacities converge to the high-water mark, after which a stable
//    traffic shape touches the heap only for non-empty result messages
//    (error paths). This is what lets the shard hot path keep the PR-5/6
//    allocation-free discipline end to end.
//
// Versioning rules: `kVersion` bumps whenever a frame laid out by an older
// writer would decode differently (field moved/resized/reinterpreted).
// Appending new trailing record fields requires a bump too — records are
// fixed-size, so readers key their stride off the version. Decoders reject
// unknown versions with `bad_version` rather than guessing; reserved bytes
// must be zero on the wire so they can later become fields without
// ambiguity. The `compute` mask is deliberately NOT validated here: unknown
// bits are a per-item semantic error (`Status::error` from request
// validation), not a frame-level one, so one forward-compat request cannot
// poison the rest of its frame.
//
// Version 2 (the failure plane, DESIGN.md §11) exercises those rules:
//  * request records grow a trailing `deadline_us` field (u64, record
//    stride 144 -> 152) — the caller's REMAINING budget in microseconds
//    (relative, so no clock synchronization across machines; 0 = none).
//    The server converts it to an absolute steady_clock deadline the
//    moment the frame decodes and sheds items whose deadline passed
//    before pricing them (`Status::deadline_exceeded`).
//  * header byte 6 (reserved-zero in v1) becomes `attempt`: the retrying
//    client's resubmission counter for this frame, 0 on the first try.
//    Purely observability — the server counts attempt > 0 frames as
//    `retries_observed`; it never changes pricing.
//  * result records are laid out identically in both versions; v2 merely
//    widens the valid status range to include `deadline_exceeded`.
// Both versions decode everywhere: v1 frames yield deadline 0 / attempt 0,
// and the server answers each frame in the version it arrived with, so a
// v1 client never sees a status byte or stride it does not speak.
//
// Not on the wire: `PricingRequest::iv.T` is carried for exactness but the
// session ignores it (the request's own T governs); `PricingResult::error`
// (an exception_ptr) cannot cross a process boundary — the `message` text
// carries the diagnostic and decoded error results have a null pointer.

#include <cstddef>
#include <cstdint>
#include <span>
#include <string_view>
#include <vector>

#include "amopt/pricing/request.hpp"

namespace amopt::service::wire {

/// "AMQW" as little-endian bytes 'A','M','Q','W'.
inline constexpr std::uint32_t kMagic = 0x57514D41u;
inline constexpr std::uint8_t kVersion1 = 1;  ///< legacy, still decoded
inline constexpr std::uint8_t kVersion = 2;   ///< newest the codecs speak

/// Frame payload discriminator.
enum class Kind : std::uint8_t {
  request_batch = 1,  ///< `count` fixed-size PricingRequest records
  result_batch = 2,   ///< `count` PricingResult records (+ message bytes)
};

enum class DecodeError : std::uint8_t {
  ok = 0,
  need_more,     ///< buffer is a proper prefix of a valid frame — read more
  bad_magic,     ///< not an amopt wire frame (or stream desynchronized)
  bad_version,   ///< version this decoder does not speak
  bad_kind,      ///< unknown frame kind
  bad_length,    ///< header/count/payload/message lengths inconsistent
  bad_enum,      ///< out-of-range model/right/style/engine/status/... byte
  bad_reserved,  ///< reserved bytes nonzero (corruption or future version)
  oversized,     ///< declared frame exceeds kMaxFrameBytes
};

[[nodiscard]] std::string_view to_string(DecodeError e);

/// Parsed frame prefix.
struct FrameHeader {
  Kind kind = Kind::request_batch;
  std::uint8_t version = kVersion1;  ///< wire version of this frame (1 or 2)
  std::uint8_t attempt = 0;          ///< v2: client resubmission count
  std::uint32_t count = 0;          ///< records in the payload
  std::uint32_t payload_bytes = 0;  ///< bytes following the header
};

inline constexpr std::size_t kHeaderBytes = 16;
inline constexpr std::size_t kRequestRecordBytes = 144;     ///< v1 stride
inline constexpr std::size_t kRequestRecordBytesV2 = 152;   ///< + deadline_us
inline constexpr std::size_t kResultRecordBytes = 80;  ///< + message bytes
/// Hard cap on one frame (header + payload): bounds decoder memory against
/// a corrupted/hostile length field. 64 MiB ~ 450k requests per frame.
inline constexpr std::size_t kMaxFrameBytes = std::size_t{1} << 26;

/// Total stream bytes of the frame `hdr` announces.
[[nodiscard]] constexpr std::size_t frame_bytes(const FrameHeader& hdr) {
  return kHeaderBytes + hdr.payload_bytes;
}

/// Append one v1 request-batch frame to `out` (existing contents are kept,
/// so a caller can pack several frames into one write). Throws
/// std::length_error if the batch cannot fit the wire limits — a caller
/// bug, unlike decode errors, which are data. Deadline-free callers keep
/// emitting v1 on purpose: it proves the cross-version decode path on
/// every steady-state round trip.
void encode_request_batch(std::span<const pricing::PricingRequest> requests,
                          std::vector<std::byte>& out);

/// Append one v2 request-batch frame carrying per-item deadlines.
/// `deadline_us[i]` is requests[i]'s REMAINING budget in microseconds
/// (0 = no deadline); `deadline_us` may be empty (all items unbounded) but
/// must otherwise match `requests` in size. `attempt` is the retrying
/// client's resubmission counter for this frame (0 = first try).
void encode_request_batch_v2(std::span<const pricing::PricingRequest> requests,
                             std::span<const std::uint64_t> deadline_us,
                             std::uint8_t attempt, std::vector<std::byte>& out);

/// Append one result-batch frame to `out`. `PricingResult::error` is not
/// serialized (see header comment). `version` selects the frame version —
/// a server answers in the version the request frame arrived with, so v1
/// peers never see a v2 status byte. Encoding `Status::deadline_exceeded`
/// into a v1 frame is a caller bug (throws std::length_error like the
/// other encode-side contract violations).
void encode_result_batch(std::span<const pricing::PricingResult> results,
                         std::vector<std::byte>& out,
                         std::uint8_t version = kVersion);

/// Validate and parse the 16-byte frame header at the front of `buf`.
/// Returns `need_more` when fewer than kHeaderBytes are present. On `ok`
/// the caller knows the full frame spans `frame_bytes(hdr)` bytes.
[[nodiscard]] DecodeError peek_header(std::span<const std::byte> buf,
                                      FrameHeader& hdr);

/// Decode the request-batch frame at the front of `buf` into `out`
/// (resized to the record count; capacity reused across calls). Accepts
/// BOTH wire versions; a v2 frame's deadlines are dropped. On `ok`,
/// `consumed` is the frame's total size — the stream caller drops exactly
/// that many bytes. `need_more` when `buf` holds only a frame prefix.
/// Never reads past `buf`, never writes past `out`'s records.
[[nodiscard]] DecodeError decode_request_batch(
    std::span<const std::byte> buf, std::vector<pricing::PricingRequest>& out,
    std::size_t& consumed);

/// Deadline-aware overload (the server's): additionally fills
/// `deadline_us` (resized to the record count, 0 = no deadline — always 0
/// for a v1 frame) and `hdr` with the parsed header, whose `version` and
/// `attempt` the caller uses to mirror the reply version and count retries.
[[nodiscard]] DecodeError decode_request_batch(
    std::span<const std::byte> buf, std::vector<pricing::PricingRequest>& out,
    std::vector<std::uint64_t>& deadline_us, FrameHeader& hdr,
    std::size_t& consumed);

/// Same for a result-batch frame.
[[nodiscard]] DecodeError decode_result_batch(
    std::span<const std::byte> buf, std::vector<pricing::PricingResult>& out,
    std::size_t& consumed);

}  // namespace amopt::service::wire
