#pragma once
// W5: deterministic fault injection for the failure plane (DESIGN.md §11).
//
// `FaultInjectingTransport` decorates any `Transport` (loopback or TCP)
// and injects the failure modes a pricing daemon actually meets in the
// wild — corrupted bytes, truncated frames, writes shredded into short
// reads, delivery delays, and hard mid-message closes — on a schedule
// driven ONLY by a seeded splitmix64 PRNG. The same seed over the same
// operation sequence reproduces the same faults on every run and every
// machine; nothing consults the clock to decide WHETHER to misbehave
// (delays change timing, never the fault schedule), which is what lets
// the chaos soak (tests/test_chaos.cpp) assert exact outcomes under TSan.
//
// The decorator models the NETWORK, not the peer: a corrupted byte is
// what a broken middlebox or flipped bit produces, a truncate+close is a
// peer dying mid-send, shredded writes are TCP segmentation. The layers
// above must cope — the wire decoders by returning a `DecodeError`, the
// server's serve() loop by answering a diagnostic and dropping the
// connection, the client by reconnecting and resubmitting.

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>

#include "amopt/service/transport.hpp"

namespace amopt::service {

/// Per-operation fault probabilities, each in [0, 1]. All default to 0, so
/// a default FaultConfig is a transparent pass-through decorator.
struct FaultConfig {
  std::uint64_t seed = 1;     ///< PRNG seed; same seed => same schedule
  double corrupt_byte = 0.0;  ///< per write: flip one payload byte
  double truncate_write = 0.0;  ///< per write: deliver a prefix, hard-close
  double shred_write = 0.0;   ///< per write: split into tiny segments so
                              ///< the peer sees many short reads
  double drop_close = 0.0;    ///< per read: hard-close instead of reading
  double delay = 0.0;         ///< per read/write: sleep `delay_us` first
  std::chrono::microseconds delay_us{200};
};

/// Counts of faults actually injected (for test assertions and for
/// logging what a soak run did).
struct FaultCounters {
  std::uint64_t writes = 0;
  std::uint64_t reads = 0;
  std::uint64_t corrupted = 0;
  std::uint64_t truncated = 0;
  std::uint64_t shredded = 0;
  std::uint64_t dropped = 0;
  std::uint64_t delayed = 0;
};

/// Not thread-safe across concurrent read/write (one PRNG stream feeds
/// both): drive each decorated end from a single thread at a time, which
/// is how the daemon and the client use transports anyway.
class FaultInjectingTransport final : public Transport {
 public:
  FaultInjectingTransport(std::unique_ptr<Transport> inner, FaultConfig cfg);
  ~FaultInjectingTransport() override;

  [[nodiscard]] std::size_t read_some(std::span<std::byte> dst) override;
  [[nodiscard]] std::size_t read_some_for(std::span<std::byte> dst,
                                          std::chrono::microseconds timeout,
                                          bool& timed_out) override;
  [[nodiscard]] bool write_all(std::span<const std::byte> src) override;
  void close() override;

  [[nodiscard]] const FaultCounters& counters() const noexcept {
    return counters_;
  }

 private:
  [[nodiscard]] double next_unit();  ///< uniform in [0, 1)
  [[nodiscard]] std::uint64_t next_u64();
  void maybe_delay();
  /// Draws the write-fault plan (in fixed PRNG order) and applies it.
  [[nodiscard]] bool write_with_faults(std::span<const std::byte> src);

  std::unique_ptr<Transport> inner_;
  FaultConfig cfg_;
  std::uint64_t state_;
  FaultCounters counters_;
  bool dead_ = false;  ///< a hard-close fault was injected
};

}  // namespace amopt::service
