#pragma once
// W3: the pricing daemon — an async request router over `pricing::Pricer`
// (DESIGN.md §8).
//
// A `Server` owns N shards, each a long-lived `Pricer` session fed
// through a bounded MPSC queue. Shards own no threads: the first
// submission to an idle shard arms a detached drain task on the shared
// `core::TaskPool` (DESIGN.md §10), so daemon housekeeping and
// intra-solve parallelism draw from one set of workers instead of
// oversubscribing the machine. Items are routed by
// `shard_of` — a hash of the request's kernel identity (model, right,
// style, engine, R, V, Y), the same axes `PricerConfig::
// share_kernels_across_expiries` groups by — so every quote for one
// option chain lands on the shard whose caches are warm for it, and a
// coalesced batch is mergeable into a single shared-kernel `price_many`.
//
// The shard hot loop is allocation-free at steady state: it pops into a
// preallocated item ring, copies requests into a reused batch vector,
// prices through `Pricer::price_many_into` with a persistent
// `BatchScratch`, and scatters results straight into caller-owned storage
// (tests/test_server_alloc.cpp pins this with a counting allocator; the CI
// server-smoke job guards `allocs-steady=0`).
//
// Three ways in:
//   * `submit()` — async; results land in caller storage, a reusable
//     `Batch` handle signals completion. The caller's requests/results
//     must stay alive (and unmoved) until the batch completes.
//   * `price()` / `price_into()` — synchronous convenience (submit+wait).
//   * `serve(Transport&)` — speak the framed wire format of wire.hpp over
//     a byte stream until EOF: decode request frames, price, answer with
//     result frames. Malformed frames answer with a one-record error
//     frame, then close (the stream is desynchronized — recovery would be
//     guesswork). One thread per connection.
//
// Admission control instead of unbounded queueing: `submit` consults the
// shard's queue depth and the memory figures its `Pricer::stats()`
// published after the last batch (total scratch-arena footprint across
// every pool worker, spectrum-tier bytes). An item that would exceed the
// configured ceilings completes
// immediately with `Status::overloaded` and a retry hint in `message` —
// the caller sheds load; the daemon never grows without bound.

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <vector>

#include "amopt/pricing/pricer.hpp"
#include "amopt/pricing/request.hpp"
#include "amopt/service/transport.hpp"

namespace amopt::service {

struct ServerConfig {
  /// Per-shard session configuration. `scratch_trim_bytes` composes: each
  /// shard's Pricer trims its arena between batches exactly as a direct
  /// session would.
  pricing::PricerConfig pricer{};
  std::size_t shards = 1;  ///< pricing shards (pool-drained), one Pricer each
  std::size_t queue_capacity = 4096;  ///< per-shard item ring (hard bound)
  /// After the first item of a batch arrives, wait up to this long for
  /// more before pricing, so a burst of single-quote submissions merges
  /// into one `price_many` call (and, with cross-expiry sharing, one
  /// kernel build). 0 = drain only what is already queued — no waiting.
  std::uint32_t coalesce_window_us = 50;
  std::size_t max_coalesced_items = 1024;  ///< cap on one merged batch
  /// Admission ceilings (0 = disabled). `admit_queue_depth` rejects once a
  /// shard's queue holds this many items (it additionally never exceeds
  /// `queue_capacity`); the byte ceilings reject while the shard session's
  /// last-published `scratch_total_bytes` (every pool worker's arena, the
  /// true multi-thread footprint) / `spectrum_bytes` exceed them —
  /// backpressure keyed on real memory, not guesses.
  std::size_t admit_queue_depth = 0;
  std::size_t admit_scratch_bytes = 0;
  std::size_t admit_spectrum_bytes = 0;
};

class Server {
  struct Shard;  ///< worker thread + queue + Pricer (defined in server.cpp)

 public:
  /// Completion handle for `submit`. Reusable: pending counts accumulate
  /// across submits, `wait()` returns when ALL of them completed. Not
  /// copyable/movable — workers hold its address.
  class Batch {
   public:
    Batch() = default;
    Batch(const Batch&) = delete;
    Batch& operator=(const Batch&) = delete;

    void wait() {
      std::unique_lock<std::mutex> lock(m_);
      cv_.wait(lock, [&] { return pending_ == 0; });
    }
    [[nodiscard]] bool done() const {
      std::lock_guard<std::mutex> lock(m_);
      return pending_ == 0;
    }

   private:
    friend class Server;
    friend struct Shard;  ///< the worker completes items
    mutable std::mutex m_;
    std::condition_variable cv_;
    std::size_t pending_ = 0;
  };

  explicit Server(ServerConfig cfg = {});
  ~Server();  ///< stop()
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Route each request to its shard; `out[i]` receives requests[i]'s
  /// result. Returns immediately — `done` completes once every item is
  /// priced (or rejected; rejected items are finished with
  /// `Status::overloaded` before return). `requests` and `out` must stay
  /// valid and unmoved until then.
  void submit(std::span<const pricing::PricingRequest> requests,
              pricing::PricingResult* out, Batch& done);

  /// Deadline-aware submit (the failure plane, DESIGN.md §11):
  /// `deadlines[i]` is requests[i]'s absolute cutoff (`time_point::max()`
  /// = none; `deadlines` may be null = all unbounded). An item whose
  /// deadline passes while it sits in a shard queue is SHED by the drain
  /// before pricing — it completes with `Status::deadline_exceeded` and
  /// counts toward `Stats::deadline_shed`. Stale quotes are worse than no
  /// quotes: the cycles go to requests someone still wants.
  void submit(std::span<const pricing::PricingRequest> requests,
              const std::chrono::steady_clock::time_point* deadlines,
              pricing::PricingResult* out, Batch& done);

  /// Synchronous submit: resizes `out` (capacity reused) and waits.
  void price_into(std::span<const pricing::PricingRequest> requests,
                  std::vector<pricing::PricingResult>& out);
  [[nodiscard]] std::vector<pricing::PricingResult> price(
      std::span<const pricing::PricingRequest> requests);

  /// Serve one framed connection until EOF / transport close (blocking;
  /// run on its own thread). See the header comment for protocol errors.
  void serve(Transport& transport);

  /// The shard index this request routes to (stable for the server's
  /// lifetime; exposed so tests and benches can build shard-aligned load).
  [[nodiscard]] std::size_t shard_of(
      const pricing::PricingRequest& request) const noexcept;

  /// Per-shard failure/admission counters (the failure plane's
  /// observability surface — what the chaos soak asserts against).
  struct ShardCounters {
    std::uint64_t accepted = 0;
    std::uint64_t rejected = 0;       ///< admission-control sheds
    std::uint64_t deadline_shed = 0;  ///< expired in queue, shed pre-pricing
    std::uint64_t drain_shed = 0;     ///< shed by stop(grace) after the grace
  };

  struct Stats {
    std::uint64_t submitted = 0;  ///< items accepted into a shard queue
    std::uint64_t rejected = 0;   ///< items refused by admission control
    /// Items priced and scattered, and the price_many_into calls that
    /// served them; `completed / batches` is the realized merge factor.
    std::uint64_t completed = 0;
    std::uint64_t batches = 0;
    std::uint64_t deadline_shed = 0;  ///< sum of ShardCounters::deadline_shed
    std::uint64_t drain_shed = 0;     ///< sum of ShardCounters::drain_shed
    /// Connection-level counters from `serve()`: malformed frames
    /// answered-and-dropped, and request frames that arrived with a
    /// nonzero v2 `attempt` header (a client retrying).
    std::uint64_t decode_errors = 0;
    std::uint64_t retries_observed = 0;
    std::vector<pricing::Pricer::Stats> shard;  ///< per-shard sessions
    std::vector<ShardCounters> shard_counters;  ///< per-shard failure plane
  };
  [[nodiscard]] Stats stats() const;

  /// Stop accepting, drain every queued item, and wait until every
  /// shard's drain task has disarmed. Idempotent; the destructor calls it.
  void stop();

  /// Bounded-grace stop: like stop(), but if the shards are not quiet
  /// once `grace` elapses, the remaining QUEUED items are shed with
  /// `Status::overloaded` (counted as `drain_shed`) instead of priced.
  /// A `price_many` already in flight always completes — the bound is on
  /// queue drain, not on interrupting compute. Every submitted item still
  /// reaches exactly one terminal status before this returns.
  void stop(std::chrono::microseconds grace);

  [[nodiscard]] const ServerConfig& config() const noexcept { return cfg_; }

 private:
  void stop_impl(const std::chrono::microseconds* grace);

  ServerConfig cfg_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::atomic<std::uint64_t> decode_errors_{0};
  std::atomic<std::uint64_t> retries_observed_{0};
};

}  // namespace amopt::service
