#pragma once
// W6: the retrying pricing client (DESIGN.md §11).
//
// `Client` is the caller-side half of the failure plane: it speaks the
// framed wire format over any `Transport` factory and turns a flaky
// connection into per-item TERMINAL outcomes. The contract:
//
//  * **Callers never hang.** Every `price_many` call accepts a deadline
//    (per call, or the config default); reads are bounded by the remaining
//    budget via `Transport::read_some_for`, and when the budget is gone
//    every unresolved item completes with `Status::deadline_exceeded`.
//  * **Every item ends exactly once**, with one of: `ok` (or a per-item
//    pricing status from the server — `error`, `unsupported`,
//    `failed_to_converge`), `overloaded` (the server's retry hints were
//    honored and still exhausted), `deadline_exceeded`, or `error` with a
//    transport diagnostic when the connection could not be made to work.
//  * **Retries honor the server's hints.** `overloaded` items are re-sent
//    after bounded exponential backoff with deterministic jitter
//    (splitmix64 off `jitter_seed` — reproducible in tests); other
//    statuses are never retried (pricing is deterministic: resubmitting a
//    `Status::error` request would return the same error).
//  * **Reconnect resubmits whole frames.** On any transport failure,
//    timeout, or decode error the connection is DROPPED (a late reply to
//    an abandoned frame must never be mistaken for the answer to a new
//    one) and the still-pending items are re-encoded as a fresh v2 frame
//    with a bumped `attempt` header. Pricing is idempotent — a request
//    the server already priced before the connection died is simply
//    priced again — so resubmission needs no sequence numbers.
//
// Frames go out as wire v2: each item carries its remaining deadline
// budget (microseconds, relative — no clock sync with the server) so the
// server's coalescing drain can shed items that went stale in its queue.

#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <vector>

#include "amopt/pricing/request.hpp"
#include "amopt/service/transport.hpp"

namespace amopt::service {

namespace detail {
/// Backoff before resubmission `attempt` (1-based): min(max_us,
/// initial_us << (attempt-1)), jittered to [50%, 100%] of that by one
/// splitmix64 draw from `prng_state`. Exposed for direct unit testing.
[[nodiscard]] std::uint64_t backoff_us(std::uint64_t initial_us,
                                       std::uint64_t max_us, unsigned attempt,
                                       std::uint64_t& prng_state);
}  // namespace detail

struct ClientConfig {
  /// Returns a fresh connected transport, or null on failure (the client
  /// backs off and tries again within the attempt/deadline budget). E.g.
  /// `[&] { return tcp_connect("127.0.0.1", port); }`.
  std::function<std::unique_ptr<Transport>()> connect;
  /// Total frame transmissions per call, first try included. Attempts are
  /// spent by overloaded-retries and by reconnects alike.
  unsigned max_attempts = 4;
  std::chrono::microseconds backoff_initial{500};
  std::chrono::microseconds backoff_max{100000};
  std::uint64_t jitter_seed = 1;
  /// Applied when `price_many` is called without an explicit deadline;
  /// zero means no deadline (the call may block until the server answers
  /// or the transport fails).
  std::chrono::microseconds default_deadline{0};
};

/// What the last `price_many` call did (observability + test assertions).
struct CallStats {
  std::uint64_t attempts = 0;       ///< frames transmitted
  std::uint64_t reconnects = 0;     ///< fresh transports dialed after the first
  std::uint64_t retried_items = 0;  ///< item transmissions beyond the first
  std::uint64_t backoff_total_us = 0;  ///< time slept between attempts
};

/// One connection at a time, reused across calls while it stays healthy.
/// Not thread-safe: one `Client` per calling thread (cheap — state is a
/// transport and some reused buffers).
class Client {
 public:
  explicit Client(ClientConfig cfg);
  ~Client();
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Price `requests`, resizing `out` (capacity reused across calls) so
  /// `out[i]` is requests[i]'s terminal outcome. Never throws on
  /// transport trouble — failures land in per-item statuses. Returns true
  /// iff every item ended `ok`.
  bool price_many(std::span<const pricing::PricingRequest> requests,
                  std::vector<pricing::PricingResult>& out);
  bool price_many(std::span<const pricing::PricingRequest> requests,
                  std::vector<pricing::PricingResult>& out,
                  std::chrono::microseconds deadline);

  [[nodiscard]] const CallStats& last_call() const noexcept { return stats_; }

  /// Drop the current connection (the next call dials a fresh one).
  void disconnect();

 private:
  [[nodiscard]] bool ensure_connected();

  ClientConfig cfg_;
  std::uint64_t prng_state_;
  std::unique_ptr<Transport> conn_;
  CallStats stats_;
  // Reused per-call buffers (steady-state calls allocate only for result
  // messages, matching the daemon-side discipline).
  std::vector<std::byte> out_buf_;
  std::vector<std::byte> in_buf_;
  std::vector<pricing::PricingRequest> frame_reqs_;
  std::vector<std::uint64_t> frame_deadlines_;
  std::vector<pricing::PricingResult> frame_results_;
  std::vector<std::size_t> pending_;
};

}  // namespace amopt::service
