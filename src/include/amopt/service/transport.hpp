#pragma once
// W2: byte transports for the pricing daemon (DESIGN.md §8).
//
// The daemon speaks the framed wire format of wire.hpp over a minimal
// blocking byte-stream interface, so the request router is testable without
// a network: `loopback_pair()` returns two ends of an in-process duplex
// pipe (preallocated ring buffers, condvar-signalled, zero steady-state
// allocations) that tests, the example client, and the allocation guard
// drive exactly like a socket; `TcpListener`/`tcp_connect` provide the
// plain-TCP production transport over the same interface.

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <utility>

namespace amopt::service {

/// A blocking, bidirectional byte stream. One reader and one writer thread
/// per end at a time (the daemon serves one connection per thread; the
/// loopback enforces nothing but is only exercised that way).
class Transport {
 public:
  virtual ~Transport() = default;

  /// Block until at least one byte is available, then read up to
  /// `dst.size()` bytes. Returns the count read; 0 means the peer closed
  /// (clean EOF) — a transport error reads as EOF too, the framing layer
  /// treats both as end-of-stream.
  [[nodiscard]] virtual std::size_t read_some(std::span<std::byte> dst) = 0;

  /// read_some with an upper bound on the wait: returns 0 with
  /// `timed_out == true` when `timeout` elapses before any byte arrives
  /// (the stream is still usable), otherwise behaves exactly like
  /// read_some with `timed_out == false`. The retrying client uses this to
  /// honor per-call deadlines instead of hanging on a silent peer. The
  /// base implementation ignores the timeout (plain blocking read) so
  /// decorators without a native timeout remain correct, merely unbounded.
  [[nodiscard]] virtual std::size_t read_some_for(
      std::span<std::byte> dst, std::chrono::microseconds timeout,
      bool& timed_out) {
    (void)timeout;
    timed_out = false;
    return read_some(dst);
  }

  /// Write the whole span (blocking). False when the peer is gone.
  [[nodiscard]] virtual bool write_all(std::span<const std::byte> src) = 0;

  /// Shut the stream down; wakes any blocked reader/writer on BOTH ends.
  /// Idempotent.
  virtual void close() = 0;
};

/// Two connected in-process endpoints: bytes written to `first` are read
/// from `second` and vice versa. Each direction buffers up to
/// `buffer_bytes` before writers block (backpressure, like a socket's
/// kernel buffer). Destroying either end closes the pair.
[[nodiscard]] std::pair<std::unique_ptr<Transport>, std::unique_ptr<Transport>>
loopback_pair(std::size_t buffer_bytes = std::size_t{1} << 20);

/// Plain-TCP acceptor (IPv4, loopback-or-any binding). Throws
/// std::runtime_error when the socket cannot be created/bound.
class TcpListener {
 public:
  /// Binds 127.0.0.1:`port` (`port` 0 picks an ephemeral port — read it
  /// back with `port()`); `any_interface` binds 0.0.0.0 instead.
  explicit TcpListener(std::uint16_t port, bool any_interface = false);
  ~TcpListener();
  TcpListener(const TcpListener&) = delete;
  TcpListener& operator=(const TcpListener&) = delete;

  [[nodiscard]] std::uint16_t port() const noexcept { return port_; }

  /// Block for the next connection; null once close() was called (or on
  /// accept failure).
  [[nodiscard]] std::unique_ptr<Transport> accept();

  /// Unblock accept() and refuse further connections. Idempotent.
  void close();

 private:
  // Atomic: close() runs on a controller thread while accept() blocks on
  // an acceptor thread (the shutdown() call is what unblocks it).
  std::atomic<int> fd_{-1};
  std::uint16_t port_ = 0;
};

/// Connect to `host`:`port` (numeric IPv4 or a resolvable name). Null on
/// failure.
[[nodiscard]] std::unique_ptr<Transport> tcp_connect(const std::string& host,
                                                     std::uint16_t port);

}  // namespace amopt::service
