#pragma once
// Lightweight operation counters. The energy model (metrics/energy.hpp)
// converts these into joules when hardware RAPL counters are unavailable
// (the usual case inside containers). Counting happens at block granularity
// (one atomic add per convolution / per row sweep), so the overhead is
// unmeasurable next to the work being counted.

#include <atomic>
#include <cstdint>

namespace amopt::metrics {

struct OpSnapshot {
  std::uint64_t flops = 0;
  std::uint64_t bytes = 0;  ///< estimated data movement to/from memory
};

namespace detail {
struct OpCounters {
  std::atomic<std::uint64_t> flops{0};
  std::atomic<std::uint64_t> bytes{0};
};
OpCounters& instance();
}  // namespace detail

inline void add_flops(std::uint64_t n) {
  detail::instance().flops.fetch_add(n, std::memory_order_relaxed);
}
inline void add_bytes(std::uint64_t n) {
  detail::instance().bytes.fetch_add(n, std::memory_order_relaxed);
}

[[nodiscard]] OpSnapshot snapshot();
void reset_counters();

/// Difference helper: ops performed between two snapshots.
[[nodiscard]] inline OpSnapshot delta(const OpSnapshot& before,
                                      const OpSnapshot& after) {
  return {after.flops - before.flops, after.bytes - before.bytes};
}

}  // namespace amopt::metrics
