#pragma once
// S9b: two-level set-associative LRU cache simulator for the Fig. 7
// reproduction (the paper used PAPI hardware counters; see DESIGN.md).
// Geometry defaults to the paper's Skylake-SP node: L1D 32 KiB / 8-way,
// L2 1 MiB / 16-way, 64-byte lines. An L1 miss counts as an L2 access
// (exactly how the paper describes its Fig. 7 data).

#include <cstddef>
#include <cstdint>
#include <vector>

namespace amopt::metrics {

struct CacheLevelConfig {
  std::size_t size_bytes = 32 * 1024;
  std::size_t line_bytes = 64;
  std::size_t ways = 8;
};

struct CacheStats {
  std::uint64_t accesses = 0;
  std::uint64_t l1_misses = 0;
  std::uint64_t l2_misses = 0;
};

/// One set-associative LRU level.
class CacheLevel {
 public:
  explicit CacheLevel(CacheLevelConfig cfg);
  /// Returns true on hit; on miss the line is installed (LRU eviction).
  bool access_line(std::uint64_t line_addr);
  void clear();
  [[nodiscard]] std::size_t sets() const noexcept { return n_sets_; }

 private:
  std::size_t n_sets_;
  std::size_t ways_;
  // tags_[set * ways + w], most-recently-used first; kEmpty = invalid.
  std::vector<std::uint64_t> tags_;
  static constexpr std::uint64_t kEmpty = ~std::uint64_t{0};
};

class CacheSim {
 public:
  CacheSim(CacheLevelConfig l1 = {},
           CacheLevelConfig l2 = {1024 * 1024, 64, 16});

  /// Touch `bytes` bytes starting at `addr` (every covered line counts as
  /// one access per call).
  void access(std::uint64_t addr, std::size_t bytes);

  [[nodiscard]] const CacheStats& stats() const noexcept { return stats_; }
  void reset_stats() { stats_ = {}; }
  void clear();

 private:
  CacheLevel l1_;
  CacheLevel l2_;
  std::size_t line_bytes_;
  CacheStats stats_;
};

/// std::vector wrapper whose element accesses drive a CacheSim with the
/// element's real heap address (so buffer-to-buffer conflicts are modeled).
template <class T>
class SimVec {
 public:
  SimVec(CacheSim& sim, std::size_t n, T init = T{})
      : sim_(&sim), data_(n, init) {}

  T& operator[](std::size_t i) {
    sim_->access(addr_of(i), sizeof(T));
    return data_[i];
  }
  const T& operator[](std::size_t i) const {
    sim_->access(addr_of(i), sizeof(T));
    return data_[i];
  }
  [[nodiscard]] std::size_t size() const noexcept { return data_.size(); }
  /// Raw (untracked) access for initialization code outside the measured
  /// region.
  T& raw(std::size_t i) { return data_[i]; }

 private:
  [[nodiscard]] std::uint64_t addr_of(std::size_t i) const {
    return reinterpret_cast<std::uint64_t>(data_.data() + i);
  }
  CacheSim* sim_;
  std::vector<T> data_;
};

}  // namespace amopt::metrics
