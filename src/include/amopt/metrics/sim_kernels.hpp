#pragma once
// S9c: cache-simulated versions of every algorithm that appears in the
// paper's Fig. 7 (L1/L2 miss counts vs T).
//
// The loop algorithms (vanilla, ql-bopm, zb-bopm) are re-executed verbatim
// with their arrays wrapped in SimVec, so their miss counts are exact for
// the modeled hierarchy. The FFT algorithms are *trace replays*: the
// exercise boundary is precomputed (it determines every segment size the
// trapezoid recursion touches) and the solver's memory behaviour — row
// buffers, kernel tables, bit-reversal and butterfly passes of each
// convolution — is re-driven access by access through the simulator. See
// DESIGN.md "Faithfulness notes" for why this substitution preserves the
// figure's claim.

#include <cstdint>

#include "amopt/metrics/cachesim.hpp"
#include "amopt/pricing/params.hpp"

namespace amopt::metrics {

enum class SimAlg {
  bopm_vanilla,
  bopm_quantlib,
  bopm_zubair,
  bopm_fft,
  topm_vanilla,
  topm_fft,
  bsm_vanilla,
  bsm_fft,
};

[[nodiscard]] const char* to_string(SimAlg alg);

[[nodiscard]] CacheStats simulate_kernel(SimAlg alg,
                                         const pricing::OptionSpec& spec,
                                         std::int64_t T);

/// Replay ONE FFT convolution (operand sizes as conv::correlate_valid sees
/// them) through the cache simulator: the production R2C/C2R pipeline by
/// default, the seed's packed-complex pipeline with `packed = true`.
/// Exposed so tests can hold the model against the real pipeline's traffic
/// counters and against the legacy model it replaced.
[[nodiscard]] CacheStats simulate_fft_convolution(std::size_t n_in,
                                                  std::size_t n_kernel,
                                                  std::size_t n_out,
                                                  bool packed = false);

}  // namespace amopt::metrics
