#pragma once
// S9a: energy measurement for the Fig. 6 / Fig. 10 reproductions.
//
// The paper reads RAPL MSRs through `perf`. Inside containers RAPL is
// usually not readable, so EnergyMeter tries the powercap sysfs interface
// first and otherwise falls back to a documented linear model driven by the
// library's operation counters:
//
//     E_pkg = e_flop * flops + P_pkg_static * t
//     E_ram = e_byte * bytes + P_ram_static * t
//
// The model's purpose is to preserve the figure's *shape* (energy tracks
// work, so the Θ(T^2) vs O(T log^2 T) gap appears); absolute joules are not
// claims. Coefficients are order-of-magnitude values for a Skylake-class
// server part (~0.5 nJ per double-precision op including core overheads,
// ~30 pJ per DRAM byte, plus static power shares).

#include <cstdint>
#include <string>
#include <vector>

#include "amopt/metrics/counters.hpp"

namespace amopt::metrics {

struct EnergySample {
  double pkg_joules = 0.0;
  double ram_joules = 0.0;
  bool hardware = false;  ///< true if read from RAPL, false if modeled
  [[nodiscard]] double total() const { return pkg_joules + ram_joules; }
};

struct EnergyModel {
  double joules_per_flop = 0.5e-9;
  double joules_per_byte = 30e-12;
  double pkg_static_watts = 20.0;
  double ram_static_watts = 3.0;
};

class EnergyMeter {
 public:
  explicit EnergyMeter(EnergyModel model = {});

  [[nodiscard]] bool hardware_available() const noexcept {
    return !domains_.empty();
  }

  void start();
  [[nodiscard]] EnergySample stop();

 private:
  struct Domain {
    std::string energy_path;
    double max_range_uj = 0.0;
    double start_uj = 0.0;
    bool is_ram = false;
  };
  std::vector<Domain> domains_;
  EnergyModel model_;
  OpSnapshot ops_start_{};
  double wall_start_ = 0.0;
};

}  // namespace amopt::metrics
