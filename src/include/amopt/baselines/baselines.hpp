#pragma once
// S8: the competitor algorithms of Table 2 / §5, re-implemented from their
// published descriptions (Par-bin-ops is not vendorable offline; see
// DESIGN.md "Faithfulness notes").
//
//  * quantlib_style_* ("ql-bopm"): QuantLib's CRR binomial engine structure
//    — a lattice object queried per node through virtual calls, the
//    underlying recomputed with pow() at every node, one-row-at-a-time
//    rollback through a discretized-asset abstraction. Θ(T^2) work with the
//    large constants the paper's Fig. 5(a) shows.
//  * zubair_* ("zb-bopm"): Zubair & Mukkamala's cache-optimized scheme —
//    precomputed power tables plus split tiling (parallelogram pass +
//    gap-triangle pass per band) so each band's working set stays in cache.
//    Θ(T^2) work, Table 2's "Tiled Loop (cache-aware)" row.
//  * cache_oblivious_*: Frigo–Strumpen recursive space-time trapezoid
//    decomposition, applied verbatim to the *nonlinear* stencil (legal: the
//    max() update is still local). Table 2's "Recursive Tiling" row.
//
// All three price the American call under BOPM and agree with
// pricing::bopm::american_call_vanilla to rounding error.

#include <cstdint>

#include "amopt/pricing/params.hpp"

namespace amopt::baselines {

[[nodiscard]] double quantlib_style_american_call(
    const pricing::OptionSpec& spec, std::int64_t T, bool parallel = true);

struct ZubairConfig {
  std::int64_t tile_width = 1024;  ///< columns per L1-resident tile
  bool parallel = true;
};
[[nodiscard]] double zubair_american_call(const pricing::OptionSpec& spec,
                                          std::int64_t T,
                                          ZubairConfig cfg = {});

[[nodiscard]] double cache_oblivious_american_call(
    const pricing::OptionSpec& spec, std::int64_t T);

}  // namespace amopt::baselines
