#pragma once
// S1: iterative radix-2 complex FFT with cached twiddle/bit-reversal plans.
//
// This is the computational substrate of the FFT-based linear-stencil
// algorithm (Ahmad et al., SPAA 2021) that the paper's pricers call on every
// trapezoid. Sizes are always powers of two here; the convolution layer
// zero-pads. Stages of large transforms are parallelized with OpenMP
// `parallel for` (span O(log n) stages), matching the
// O(log l * log log l)-span FFT the paper assumes.

#include <complex>
#include <cstddef>
#include <span>
#include <vector>

#include "amopt/common/aligned.hpp"

namespace amopt::fft {

using cplx = std::complex<double>;

/// Precomputed tables for one transform size. Plans are immutable after
/// construction and safe to share across threads.
class Plan {
 public:
  explicit Plan(std::size_t n);

  [[nodiscard]] std::size_t size() const noexcept { return n_; }

  /// In-place forward transform (engineering sign convention, e^{-2pi i}).
  void forward(cplx* data) const { transform(data, /*inverse=*/false); }
  /// In-place inverse transform, including the 1/n normalization.
  void inverse(cplx* data) const { transform(data, /*inverse=*/true); }

 private:
  void transform(cplx* data, bool inverse) const;
  void bit_reverse_permute(cplx* data) const;

  std::size_t n_;
  std::size_t log2n_;
  // Twiddles for the forward direction, one contiguous block per stage:
  // stage s (half-size h = 1<<s) starts at offset h-1 and holds h factors.
  aligned_vector<cplx> twiddle_;
  std::vector<std::uint32_t> bitrev_;
};

/// Process-wide plan cache keyed by size (n must be a power of two).
/// Thread-safe; plans are created once and reused.
[[nodiscard]] const Plan& plan_for(std::size_t n);

/// Convenience wrappers over the cached plans. `data.size()` must be a
/// power of two.
void forward(std::span<cplx> data);
void inverse(std::span<cplx> data);

}  // namespace amopt::fft
