#pragma once
// S1: iterative complex FFT with radix-4 butterflies plus real-input (R2C /
// C2R) transforms, both backed by cached, immutable plans.
//
// This is the computational substrate of the FFT-based linear-stencil
// algorithm (Ahmad et al., SPAA 2021) that the paper's pricers call on every
// trapezoid. Sizes are always powers of two here; the convolution layer
// zero-pads. Two stages of the complex transform are fused into one radix-4
// pass (same multiply count, half the sweeps over the data), and every
// signal the pricers transform is real, so `RealPlan` computes a size-n real
// DFT through a size-n/2 complex transform with an O(n) post-twiddle —
// 1.5 half-size transforms per convolution instead of 2 full-size ones.
// Stages of large transforms are parallelized with OpenMP `parallel for`
// (span O(log n) stages), matching the O(log l * log log l)-span FFT the
// paper assumes.
//
// Plan lookups (`plan_for` / `real_plan_for`) are wait-free for readers:
// the cache publishes immutable snapshots through an atomic pointer, so
// concurrent option pricings never contend once their sizes are warm.

#include <complex>
#include <cstddef>
#include <span>
#include <vector>

#include "amopt/common/aligned.hpp"
#include "amopt/simd/simd.hpp"

namespace amopt::fft {

using cplx = std::complex<double>;

/// Precomputed tables for one complex transform size. Plans are immutable
/// after construction and safe to share across threads.
class Plan {
 public:
  explicit Plan(std::size_t n);

  [[nodiscard]] std::size_t size() const noexcept { return n_; }

  /// In-place forward transform (engineering sign convention, e^{-2pi i}).
  void forward(cplx* data) const { transform(data, /*inverse=*/false); }
  /// In-place inverse transform, including the 1/n normalization.
  void inverse(cplx* data) const { transform(data, /*inverse=*/true); }

 private:
  void transform(cplx* data, bool inverse) const;
  /// Split real/imag (SoA) pipeline driving the dispatched vector kernels;
  /// taken whenever the active SIMD level is above scalar (the scalar level
  /// keeps the historical interleaved loops below, bit-for-bit).
  void transform_simd(cplx* data, bool inverse, simd::Level lvl) const;
  void bit_reverse_permute(cplx* data) const;
  void radix2_stage(cplx* data, bool parallel) const;
  template <bool kInverse>
  void radix4_pass(cplx* data, std::size_t h, const cplx* w,
                   bool parallel) const;

  std::size_t n_;
  std::size_t log2n_;
  // Radix-4 twiddles, one contiguous block per fused stage pair: the pair
  // combining half-sizes (h, 2h) stores, for j in [0, h), the triple
  // (W^j, W^2j, W^3j) with W = e^{-i pi / (2h)} — interleaved so one
  // butterfly reads 48 adjacent bytes. Blocks are laid out in pass order.
  aligned_vector<cplx> twiddle4_;
  // The same twiddles in the SoA layout the vector kernels consume: per
  // stage, six consecutive h-element arrays (w1re, w1im, w2re, w2im, w3re,
  // w3im), blocks in pass order — every vector load of twiddles is then a
  // contiguous unit-stride load.
  aligned_vector<double> twiddle4_soa_;
  std::vector<std::uint32_t> bitrev_;
};

/// A first-class, reusable R2C spectrum: the n/2+1 non-redundant bins of one
/// real signal zero-padded to a transform size n. This is the currency of
/// the spectral convolution overloads (conv::correlate_valid /
/// convolve_full / convolve_many with a precomputed kernel spectrum) and of
/// the stencil::KernelCache spectrum tier — transform a kernel once, reuse
/// its bins for every convolution at that padded size. Bins live in 64-byte
/// aligned storage so the dispatched spectrum products take their fast path.
struct RealSpectrum {
  std::size_t n = 0;     ///< padded transform size (power of two; 0 = empty)
  std::size_t klen = 0;  ///< time-domain signal length the bins encode
  bool reversed = false; ///< signal was packed back-to-front (the
                         ///< correlation layout of conv::correlate_valid)
  aligned_vector<cplx> bins;  ///< the n/2+1 non-redundant bins

  [[nodiscard]] bool empty() const noexcept { return n == 0; }
  [[nodiscard]] std::size_t spectrum_size() const noexcept {
    return n / 2 + 1;
  }
};

/// Real-input transform of size n (power of two): forward packs the even/odd
/// samples into a size-n/2 complex signal, runs the half-size complex plan,
/// and untangles the spectrum with one O(n) twiddle pass. The spectrum is
/// stored as the n/2+1 non-redundant bins X[0..n/2] (X[0] and X[n/2] have
/// zero imaginary part); the remaining bins are implied by conjugate
/// symmetry. Immutable and thread-safe, like `Plan`.
class RealPlan {
 public:
  explicit RealPlan(std::size_t n);

  [[nodiscard]] std::size_t size() const noexcept { return n_; }
  [[nodiscard]] std::size_t spectrum_size() const noexcept {
    return n_ / 2 + 1;
  }

  /// Forward R2C: `in` holds n reals, `spec` receives the n/2+1 bins of the
  /// DFT. `spec` must not alias `in` and needs spectrum_size() slots.
  void forward(const double* in, cplx* spec) const;

  /// Inverse C2R: `spec` holds n/2+1 bins (imaginary parts of bins 0 and
  /// n/2 are ignored), `out` receives n reals, including the 1/n
  /// normalization. Destroys `spec` (it doubles as the transform scratch).
  void inverse(cplx* spec, double* out) const;

  /// Produce a reusable `RealSpectrum`: `signal` (its length must not
  /// exceed size()) is zero-padded to size() — packed back-to-front when
  /// `reversed`, the correlation layout — and forward-transformed into
  /// `spec.bins`. `pad` is caller scratch of at least size() doubles (the
  /// padded time-domain staging buffer; conv::Workspace::real_b works).
  /// The result is bit-identical to what the convolution paths compute
  /// in-call for the same operand, so consuming a cached spectrum never
  /// changes a result, only skips its transform.
  void spectrum(std::span<const double> signal, bool reversed,
                std::span<double> pad, RealSpectrum& spec) const;

 private:
  std::size_t n_;
  std::size_t m_;       ///< n/2 (0 when n == 1)
  const Plan* half_;    ///< cached plan for size m (nullptr when n <= 2)
  // t_k = e^{-2 pi i k / n} for k in [0, m/2]; the pair loops touch only
  // the first half of the twiddle circle.
  aligned_vector<cplx> twiddle_;
};

/// Process-wide plan caches keyed by size (n must be a power of two).
/// Lock-free for readers; plans are created once and never evicted.
[[nodiscard]] const Plan& plan_for(std::size_t n);
[[nodiscard]] const RealPlan& real_plan_for(std::size_t n);

/// Convenience wrappers over the cached plans. `data.size()` must be a
/// power of two.
void forward(std::span<cplx> data);
void inverse(std::span<cplx> data);

}  // namespace amopt::fft
