#pragma once
// S2: linear convolution / correlation of real sequences.
//
// The nonlinear-stencil solvers need exactly one primitive from this file:
// `correlate_valid`, which evaluates
//
//     out[j] = sum_m kernel[m] * in[j + m],   j in [0, out.size())
//
// i.e. the application of `h` pre-combined stencil steps (kernel = taps^h)
// to a row segment whose dependency cones are fully inside the linear (red)
// region. Small products are evaluated directly; large ones go through the
// real-input FFT (two R2C transforms of the zero-padded operands, a
// pointwise product over the n/2+1 non-redundant bins, one C2R back —
// 3 half-size complex transforms instead of the 2 full-size ones of the
// packed-complex trick, which survives as `Policy::Path::fft_packed` for
// benchmarking).
//
// All FFT paths draw their zero-padded buffers and spectra from a
// `Workspace` arena: buffers grow monotonically and are reused, so repeated
// convolutions of bounded size perform no heap allocation after warm-up.
// Every entry point has a span-based overload taking an explicit Workspace
// (fully allocation-free) and a convenience overload that uses a
// thread-local arena.
//
// Two transform-count reductions on top of that (both bit-identical to the
// baseline path at a fixed dispatch level):
//   * aliased operands — `convolve_full(a, a, ...)` runs one forward
//     transform and squares the spectrum in place (`simd csquare`), the
//     path poly::power_fft's squaring loop rides;
//   * precomputed kernel spectra — the `fft::RealSpectrum` overloads below
//     skip the kernel transform entirely (2 transforms per call instead
//     of 3); stencil::KernelCache hands the solvers ready spectra.

#include <cstddef>
#include <span>
#include <vector>

#include "amopt/common/aligned.hpp"
#include "amopt/fft/fft.hpp"

namespace amopt::conv {

/// Crossover between the O(n*k) direct loop and the O(n log n) FFT path.
/// Exposed so tests/benches can pin one path; `automatic` restores the
/// default behaviour.
struct Policy {
  enum class Path {
    automatic,   ///< cost-based crossover (direct below, fft above)
    direct,      ///< always the O(n*k) loop
    fft,         ///< real-input R2C/C2R pipeline (production FFT path)
    fft_packed,  ///< legacy packed-complex two-for-one pipeline
  };
  Path path = Path::automatic;
};

/// Grow-only scratch arena for the FFT convolution paths. One Workspace
/// serves one thread at a time (no internal locking); the library keeps one
/// per thread via `thread_workspace()`. Buffers never shrink, so a warmed-up
/// workspace makes every conv call below its high-water mark allocation-free.
class Workspace {
 public:
  /// Zero-padded real operand buffers and their spectra. Callers outside
  /// the conv layer should not need these directly.
  [[nodiscard]] std::span<double> real_a(std::size_t n) { return grow(ra_, n); }
  [[nodiscard]] std::span<double> real_b(std::size_t n) { return grow(rb_, n); }
  /// Staging for the split-operand correlation's DIRECT path (the small-
  /// size crossover), where the concatenation is materialized so the sweep
  /// partition — and therefore every bit on FMA dispatch levels — matches
  /// a contiguous-input call exactly.
  [[nodiscard]] std::span<double> cat(std::size_t n) { return grow(cat_, n); }
  [[nodiscard]] std::span<fft::cplx> spec_a(std::size_t n) {
    return grow(sa_, n);
  }
  [[nodiscard]] std::span<fft::cplx> spec_b(std::size_t n) {
    return grow(sb_, n);
  }
  /// Caller-level staging buffers (used by poly::power for the square-and-
  /// multiply accumulators); never touched by the conv entry points.
  [[nodiscard]] std::span<double> acc(std::size_t n) { return grow(acc_, n); }
  [[nodiscard]] std::span<double> tmp(std::size_t n) { return grow(tmp_, n); }
  [[nodiscard]] std::span<double> aux(std::size_t n) { return grow(aux_, n); }

 private:
  template <class V>
  [[nodiscard]] std::span<typename V::value_type> grow(V& v, std::size_t n) {
    if (v.size() < n) v.resize(n);
    return {v.data(), n};
  }

  aligned_vector<double> ra_, rb_, cat_, acc_, tmp_, aux_;
  aligned_vector<fft::cplx> sa_, sb_;
};

/// The calling thread's workspace (created on first use, never freed while
/// the thread lives). The vector/legacy overloads below draw from it.
[[nodiscard]] Workspace& thread_workspace();

/// Full linear convolution, c[k] = sum_i a[i]*b[k-i]; result size
/// a.size()+b.size()-1 (empty if either input is empty).
[[nodiscard]] std::vector<double> convolve_full(std::span<const double> a,
                                                std::span<const double> b,
                                                Policy policy = {});

/// Allocation-free variant: writes the full convolution into `out`, which
/// must hold exactly a.size()+b.size()-1 elements and alias neither input.
void convolve_full(std::span<const double> a, std::span<const double> b,
                   std::span<double> out, Workspace& ws, Policy policy = {});

/// Valid correlation (see file comment). Requires
/// in.size() >= out.size() + kernel.size() - 1 and a non-empty kernel.
void correlate_valid(std::span<const double> in,
                     std::span<const double> kernel, std::span<double> out,
                     Policy policy = {});

/// Allocation-free variant of `correlate_valid` with an explicit arena.
void correlate_valid(std::span<const double> in,
                     std::span<const double> kernel, std::span<double> out,
                     Workspace& ws, Policy policy = {});

// ---------------------------------------------------- split-operand input
//
// The trapezoid solvers correlate a row's red prefix EXTENDED by up to g-1
// green cells. Materializing that concatenation costs an O(row) copy per
// convolution just to append a couple of cells. The overloads below take
// the input as (main, tail): the FFT paths stage both pieces directly into
// the zero-padded transform buffer — the staged bytes are identical to the
// concatenated call's, so results match it bit for bit at a fixed dispatch
// level. The DIRECT path (small sizes, where the copy is cheap anyway)
// materializes the concatenation into workspace staging so its sweep
// partition matches a contiguous-input call exactly — split and
// concatenated calls are bit-identical on EVERY path at every level.

/// `correlate_valid` over the logical input concat(main, tail). Requires
/// main.size() + tail.size() >= out.size() + kernel.size() - 1.
void correlate_valid(std::span<const double> main, std::span<const double> tail,
                     std::span<const double> kernel, std::span<double> out,
                     Workspace& ws, Policy policy = {});

/// Split-operand form of the spectral `correlate_valid` below.
void correlate_valid(std::span<const double> main, std::span<const double> tail,
                     const fft::RealSpectrum& kspec, std::span<double> out,
                     Workspace& ws);

// ------------------------------------------------------- spectral overloads
//
// The FFT paths above transform their kernel from the time domain on every
// call (3 half-size transforms per convolution). When the same kernel is
// applied repeatedly at one padded size — every trapezoid of a descent at
// the same recursion depth, every squaring rung of a kernel ladder — the
// kernel's spectrum can be computed once (`kernel_spectrum`, or the
// stencil::KernelCache spectrum tier) and passed to the overloads below,
// which then cost 2 transforms per call. Results are bit-identical to the
// transform-per-call path at the same dispatch level: the cached bins are
// the same bins the in-call transform would produce.

/// Whether `correlate_valid` with these lengths would take the real-input
/// FFT path (false for the direct crossover and for the legacy packed
/// pipeline, which transforms both operands together).
[[nodiscard]] bool correlate_prefers_fft(std::size_t out_len,
                                         std::size_t kernel_len,
                                         Policy policy);

/// The padded transform size the FFT correlation path uses for these
/// lengths — the `n` to build a reusable kernel spectrum at:
/// next_pow2(out_len + kernel_len - 1), the overlap-save minimum. A cyclic
/// transform of that size wraps the top linear bins onto cyclic bins
/// strictly below the correlation's read window [kernel_len - 1,
/// kernel_len - 1 + out_len), so the window is alias-free even though the
/// transform is smaller than the full linear length
/// out_len + 2*(kernel_len - 1). (The library padded to that full length
/// before the PR-10 re-baselining, which kept EVERY linear bin alias-free
/// — including bins no correlation reads — at up to 2x the transform
/// size; the smaller size perturbs FFT rounding, covered by the DESIGN.md
/// accuracy contract.)
[[nodiscard]] std::size_t correlate_fft_size(std::size_t out_len,
                                             std::size_t kernel_len);

/// Build a reusable kernel spectrum at padded size n (a power of two >= the
/// full linear length of the intended products). `reversed` selects the
/// correlation layout consumed by the spectral `correlate_valid`.
[[nodiscard]] fft::RealSpectrum kernel_spectrum(std::span<const double> kernel,
                                                std::size_t n, bool reversed,
                                                Workspace& ws);

/// Valid correlation against a precomputed kernel spectrum (`kspec` built
/// with reversed = true). Requires in.size() >= out.size() + kspec.klen - 1
/// and kspec.n >= out.size() + kspec.klen - 1 (i.e. at least
/// correlate_fft_size of the lengths; larger sizes just carry more padding
/// — and different sizes produce differently-rounded, not different,
/// results). Always the FFT path — callers gate on `correlate_prefers_fft`.
void correlate_valid(std::span<const double> in,
                     const fft::RealSpectrum& kspec, std::span<double> out,
                     Workspace& ws);

/// Full convolution against a precomputed kernel spectrum (`bspec` built
/// with reversed = false). `out` must hold a.size() + bspec.klen - 1
/// elements and bspec.n must cover that full length.
void convolve_full(std::span<const double> a, const fft::RealSpectrum& bspec,
                   std::span<double> out, Workspace& ws);

/// `convolve_many` against a precomputed kernel spectrum (reversed = false;
/// kspec.n must cover the largest item's full linear length).
void convolve_many(std::span<const std::span<const double>> inputs,
                   const fft::RealSpectrum& kspec,
                   std::span<std::vector<double>> outs, Workspace& ws);

/// Batched full convolutions against one shared kernel: outs[i] receives
/// inputs[i] (*) kernel, resized to inputs[i].size()+kernel.size()-1. On the
/// FFT path the kernel is transformed ONCE at the padded size of the largest
/// input and its spectrum reused for every item; the longer cyclic length
/// still covers every item's full linear length, so results are exact up to
/// the usual FFT roundoff. Requires outs.size() == inputs.size().
void convolve_many(std::span<const std::span<const double>> inputs,
                   std::span<const double> kernel,
                   std::span<std::vector<double>> outs, Workspace& ws,
                   Policy policy = {});

/// Reference implementations (always direct); used as test oracles.
[[nodiscard]] std::vector<double> convolve_full_direct(
    std::span<const double> a, std::span<const double> b);
void correlate_valid_direct(std::span<const double> in,
                            std::span<const double> kernel,
                            std::span<double> out);

}  // namespace amopt::conv
