#pragma once
// S2: linear convolution / correlation of real sequences.
//
// The nonlinear-stencil solvers need exactly one primitive from this file:
// `correlate_valid`, which evaluates
//
//     out[j] = sum_m kernel[m] * in[j + m],   j in [0, out.size())
//
// i.e. the application of `h` pre-combined stencil steps (kernel = taps^h)
// to a row segment whose dependency cones are fully inside the linear (red)
// region. Small products are evaluated directly; large ones go through the
// real-input FFT (two R2C transforms of the zero-padded operands, a
// pointwise product over the n/2+1 non-redundant bins, one C2R back —
// 3 half-size complex transforms instead of the 2 full-size ones of the
// packed-complex trick, which survives as `Policy::Path::fft_packed` for
// benchmarking).
//
// All FFT paths draw their zero-padded buffers and spectra from a
// `Workspace` arena: buffers grow monotonically and are reused, so repeated
// convolutions of bounded size perform no heap allocation after warm-up.
// Every entry point has a span-based overload taking an explicit Workspace
// (fully allocation-free) and a convenience overload that uses a
// thread-local arena.

#include <cstddef>
#include <span>
#include <vector>

#include "amopt/common/aligned.hpp"
#include "amopt/fft/fft.hpp"

namespace amopt::conv {

/// Crossover between the O(n*k) direct loop and the O(n log n) FFT path.
/// Exposed so tests/benches can pin one path; `automatic` restores the
/// default behaviour.
struct Policy {
  enum class Path {
    automatic,   ///< cost-based crossover (direct below, fft above)
    direct,      ///< always the O(n*k) loop
    fft,         ///< real-input R2C/C2R pipeline (production FFT path)
    fft_packed,  ///< legacy packed-complex two-for-one pipeline
  };
  Path path = Path::automatic;
};

/// Grow-only scratch arena for the FFT convolution paths. One Workspace
/// serves one thread at a time (no internal locking); the library keeps one
/// per thread via `thread_workspace()`. Buffers never shrink, so a warmed-up
/// workspace makes every conv call below its high-water mark allocation-free.
class Workspace {
 public:
  /// Zero-padded real operand buffers and their spectra. Callers outside
  /// the conv layer should not need these directly.
  [[nodiscard]] std::span<double> real_a(std::size_t n) { return grow(ra_, n); }
  [[nodiscard]] std::span<double> real_b(std::size_t n) { return grow(rb_, n); }
  [[nodiscard]] std::span<fft::cplx> spec_a(std::size_t n) {
    return grow(sa_, n);
  }
  [[nodiscard]] std::span<fft::cplx> spec_b(std::size_t n) {
    return grow(sb_, n);
  }
  /// Caller-level staging buffers (used by poly::power for the square-and-
  /// multiply accumulators); never touched by the conv entry points.
  [[nodiscard]] std::span<double> acc(std::size_t n) { return grow(acc_, n); }
  [[nodiscard]] std::span<double> tmp(std::size_t n) { return grow(tmp_, n); }
  [[nodiscard]] std::span<double> aux(std::size_t n) { return grow(aux_, n); }

 private:
  template <class V>
  [[nodiscard]] std::span<typename V::value_type> grow(V& v, std::size_t n) {
    if (v.size() < n) v.resize(n);
    return {v.data(), n};
  }

  aligned_vector<double> ra_, rb_, acc_, tmp_, aux_;
  aligned_vector<fft::cplx> sa_, sb_;
};

/// The calling thread's workspace (created on first use, never freed while
/// the thread lives). The vector/legacy overloads below draw from it.
[[nodiscard]] Workspace& thread_workspace();

/// Full linear convolution, c[k] = sum_i a[i]*b[k-i]; result size
/// a.size()+b.size()-1 (empty if either input is empty).
[[nodiscard]] std::vector<double> convolve_full(std::span<const double> a,
                                                std::span<const double> b,
                                                Policy policy = {});

/// Allocation-free variant: writes the full convolution into `out`, which
/// must hold exactly a.size()+b.size()-1 elements and alias neither input.
void convolve_full(std::span<const double> a, std::span<const double> b,
                   std::span<double> out, Workspace& ws, Policy policy = {});

/// Valid correlation (see file comment). Requires
/// in.size() >= out.size() + kernel.size() - 1 and a non-empty kernel.
void correlate_valid(std::span<const double> in,
                     std::span<const double> kernel, std::span<double> out,
                     Policy policy = {});

/// Allocation-free variant of `correlate_valid` with an explicit arena.
void correlate_valid(std::span<const double> in,
                     std::span<const double> kernel, std::span<double> out,
                     Workspace& ws, Policy policy = {});

/// Batched full convolutions against one shared kernel: outs[i] receives
/// inputs[i] (*) kernel, resized to inputs[i].size()+kernel.size()-1. On the
/// FFT path the kernel is transformed ONCE at the padded size of the largest
/// input and its spectrum reused for every item; the longer cyclic length
/// still covers every item's full linear length, so results are exact up to
/// the usual FFT roundoff. Requires outs.size() == inputs.size().
void convolve_many(std::span<const std::span<const double>> inputs,
                   std::span<const double> kernel,
                   std::span<std::vector<double>> outs, Workspace& ws,
                   Policy policy = {});

/// Reference implementations (always direct); used as test oracles.
[[nodiscard]] std::vector<double> convolve_full_direct(
    std::span<const double> a, std::span<const double> b);
void correlate_valid_direct(std::span<const double> in,
                            std::span<const double> kernel,
                            std::span<double> out);

}  // namespace amopt::conv
