#pragma once
// S2: linear convolution / correlation of real sequences.
//
// The nonlinear-stencil solvers need exactly one primitive from this file:
// `correlate_valid`, which evaluates
//
//     out[j] = sum_m kernel[m] * in[j + m],   j in [0, out.size())
//
// i.e. the application of `h` pre-combined stencil steps (kernel = taps^h)
// to a row segment whose dependency cones are fully inside the linear (red)
// region. Small products are evaluated directly; large ones go through a
// two-for-one packed real FFT (both operands transformed with a single
// complex FFT).

#include <cstddef>
#include <span>
#include <vector>

namespace amopt::conv {

/// Crossover between the O(n*k) direct loop and the O(n log n) FFT path.
/// Exposed so tests/benches can pin one path; `auto_threshold` restores the
/// default behaviour.
struct Policy {
  enum class Path { automatic, direct, fft };
  Path path = Path::automatic;
};

/// Full linear convolution, c[k] = sum_i a[i]*b[k-i]; result size
/// a.size()+b.size()-1 (empty if either input is empty).
[[nodiscard]] std::vector<double> convolve_full(std::span<const double> a,
                                                std::span<const double> b,
                                                Policy policy = {});

/// Valid correlation (see file comment). Requires
/// in.size() >= out.size() + kernel.size() - 1 and a non-empty kernel.
void correlate_valid(std::span<const double> in,
                     std::span<const double> kernel, std::span<double> out,
                     Policy policy = {});

/// Reference implementations (always direct); used as test oracles.
[[nodiscard]] std::vector<double> convolve_full_direct(
    std::span<const double> a, std::span<const double> b);
void correlate_valid_direct(std::span<const double> in,
                            std::span<const double> kernel,
                            std::span<double> out);

}  // namespace amopt::conv
