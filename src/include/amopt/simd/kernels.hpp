#pragma once
// The dispatched kernel table behind amopt::simd::Level.
//
// Every member is one hot loop from the FFT engine, the convolution layer,
// or the nonlinear-stencil solvers, lifted out so each instruction-set
// level can provide its own implementation. The scalar table entries are
// the verbatim loops their call sites used to inline (bit-compatible with
// the pre-SIMD library); the AVX2/AVX-512 entries process 4/8 doubles per
// lane and fall back to unaligned loads (or scalar tails) when operands are
// not 64-byte aligned or shorter than a vector — so every entry accepts
// arbitrary pointers and sizes.
//
// FFT kernels use a split real/imaginary (SoA) layout: `re[i]`/`im[i]` hold
// the parts of element i. Stage twiddles arrive as one contiguous SoA block
// per fused radix-4 stage (see fft.cpp for the layout).

#include <complex>
#include <cstddef>
#include <cstdint>

#include "amopt/simd/simd.hpp"

namespace amopt::simd {

using cplx = std::complex<double>;

/// One dispatch level's kernel set. All pointers are non-null for every
/// level returned by `kernels()`.
struct Kernels {
  /// Pointwise spectrum product a[k] *= b[k] (interleaved complex).
  void (*cmul)(cplx* a, const cplx* b, std::size_t n);

  /// Pointwise spectrum square a[k] *= a[k] — the aliased-operand fast path
  /// of `convolve_full(a, a, ...)` (one forward transform instead of two).
  /// The scalar entry IS cmul(a, a) bit for bit; the vector entries run the
  /// same shuffle/multiply sequence as their cmul with both factors taken
  /// from one load (the AVX-512 scalar tail may contract its multiply-adds
  /// differently — last-ulp territory, inside the documented cross-path
  /// tolerance).
  void (*csquare)(cplx* a, std::size_t n);

  /// Small-tap correlation out[j] = sum_m taps[m] * in[j + m], j < n.
  /// The accumulation order is m ascending from a 0.0 seed (the lattice
  /// solver's historical order).
  void (*correlate_taps)(const double* in, const double* taps,
                         std::size_t ntaps, double* out, std::size_t n);

  /// Fused two-step tap sweep: mid[j] = sum_m taps[m] * in[j + m] for
  /// j < n_mid, then out[j] = sum_m taps[m] * mid[j + m] for j < n_out
  /// (requires n_out + ntaps - 1 <= n_mid; in must alias neither output).
  /// Both rows are materialized — the fusion is temporal: the second row is
  /// computed block-by-block right behind the first, while the first row's
  /// cells are still in L1, instead of in a second full pass. Per element
  /// the arithmetic is exactly `correlate_taps`'s, so the scalar entry is
  /// bit-identical to two single-row sweeps (asserted in test_simd).
  void (*correlate_taps_2row)(const double* in, const double* taps,
                              std::size_t ntaps, double* mid, double* out,
                              std::size_t n_mid, std::size_t n_out);

  /// Centered 3-tap sweep out[j] = b*in[j] + c*in[j+1] + a*in[j+2], j < n —
  /// the BSM FDM solver's historical expression (association order
  /// (b*x + c*y) + a*z).
  void (*stencil3)(const double* in, double b, double c, double a, double* out,
                   std::size_t n);

  /// Fused two-step 3-tap stencil sweep: mid[j] = b*in[j] + c*in[j+1] +
  /// a*in[j+2] for j < n_mid, then out[j] = b*mid[j] + c*mid[j+1] +
  /// a*mid[j+2] for j < n_out (requires n_out + 2 <= n_mid; in must alias
  /// neither output). The `correlate_taps_2row` temporal fusion applied to
  /// the stencil3 expression: the second row chases the first block-by-block
  /// while its cells are still in L1. Per element the arithmetic is exactly
  /// stencil3's — unseeded (b*x + c*y) + a*z, which preserves the -0.0 bits
  /// a 0.0-seeded accumulation would flush — so the scalar entry is
  /// bit-identical to two single-row stencil3 sweeps (asserted in
  /// test_simd), and the vector entries keep the single-sweep vector/scalar
  /// partition via the shared aligned-chunk driver.
  void (*stencil3_2row)(const double* in, double b, double c, double a,
                        double* mid, double* out, std::size_t n_mid,
                        std::size_t n_out);

  /// Split interleaved complex into SoA halves and back.
  void (*deinterleave)(const cplx* z, double* re, double* im, std::size_t n);
  void (*interleave)(const double* re, const double* im, cplx* z,
                     std::size_t n);

  /// `interleave` with the inverse transform's 1/n normalization fused in:
  /// z[i] = {re[i] * s, im[i] * s}. One pass over the data instead of
  /// scale2 followed by interleave; the multiply is the same one scale2
  /// performed, so the fusion is bit-identical.
  void (*interleave_scaled)(const double* re, const double* im, cplx* z,
                            std::size_t n, double s);

  /// Fused bit-reversal + split: re[i] = z[rev[i]].real(), im[i] =
  /// z[rev[i]].imag(). One gathered pass instead of an in-place swap pass
  /// followed by a split pass — the permutation is the FFT's only
  /// cache-hostile access pattern, so halving its traffic matters.
  void (*deinterleave_rev)(const cplx* z, const std::uint32_t* rev,
                           double* re, double* im, std::size_t n);

  /// re[i] *= s; im[i] *= s (the inverse transform's 1/n normalization).
  void (*scale2)(double* re, double* im, std::size_t n, double s);

  /// Radix-2 stage with unit twiddles over [0, n): butterflies on element
  /// pairs (2i, 2i+1).
  void (*radix2_pass)(double* re, double* im, std::size_t n);

  /// One fused radix-4 stage of half-size h over [0, n) (n a multiple of
  /// 4h): for each block base (step 4h) and j in [0, h), the butterfly of
  /// fft.cpp's radix4_pass. `wsoa` is the stage's twiddle block laid out as
  /// six consecutive h-element arrays: w1re, w1im, w2re, w2im, w3re, w3im.
  /// `inverse` conjugates the twiddles and flips the +/- i rotation.
  void (*radix4_pass)(double* re, double* im, std::size_t n, std::size_t h,
                      const double* wsoa, bool inverse);

  /// The R2C untangle pair loop of RealPlan::forward for k in [1, m/2)
  /// (mirror bin j = m - k), reading/writing the interleaved `spec` in
  /// place. `tw` is the n/4+1-entry quarter-circle twiddle table t_k.
  void (*rfft_untangle)(cplx* spec, const cplx* tw, std::size_t m);

  /// The C2R retangle pair loop of RealPlan::inverse (same index ranges).
  void (*rfft_retangle)(cplx* spec, const cplx* tw, std::size_t m);

  /// Black-Scholes d± over node arrays — the boundary engine's quadrature
  /// inner loop. base = (logz[i] + drift_t[i]) * inv_vs[i];
  /// dp[i] = base + half_vs[i]; dm[i] = base - half_vs[i]. The caller
  /// precomputes the per-node geometry (drift*dt, 1/(vol*sqrt(dt)),
  /// vol*sqrt(dt)/2) once per quote, so the kernel is pure mul/add over
  /// contiguous arrays.
  void (*bs_dpm)(const double* logz, const double* drift_t,
                 const double* inv_vs, const double* half_vs, double* dp,
                 double* dm, std::size_t n);

  /// Standard normal CDF over an array, libm-free: Phi(x) = 0.5*erfc(z),
  /// z = |x|/sqrt(2), with erfc via the Abramowitz–Stegun 7.1.26 rational
  /// polynomial and an in-house range-reduced exp(-z^2) (|error| <= 7.5e-8
  /// absolute — the boundary engine's documented accuracy floor, DESIGN.md
  /// §6). Every level evaluates the same operation sequence; the AVX2 lanes
  /// reproduce the scalar bits exactly (no FMA), the AVX-512 entry contracts
  /// its Horner chains to FMA and may differ in the last ulps.
  void (*norm_cdf)(const double* x, double* out, std::size_t n);
};

/// Kernel table for one explicit level (clamped to max_supported()).
[[nodiscard]] const Kernels& kernels(Level lvl) noexcept;

/// Kernel table for the active level.
[[nodiscard]] inline const Kernels& kernels() noexcept {
  return kernels(active());
}

// Per-level tables, exposed for direct unit testing of each path. `scalar`
// always exists; the vector tables exist only when compiled in (guard with
// max_supported()).
namespace tables {
extern const Kernels scalar;
#if defined(AMOPT_HAVE_AVX2)
extern const Kernels avx2;
#endif
#if defined(AMOPT_HAVE_AVX512)
extern const Kernels avx512;
#endif
}  // namespace tables

}  // namespace amopt::simd
