#pragma once
// S10: runtime SIMD dispatch for the hot pointwise/stencil/FFT kernels.
//
// Three code paths are compiled into the library (when the compiler supports
// them): a restrict-qualified scalar fallback, AVX2, and AVX-512F. The
// active path is chosen once at startup from CPUID, clamped to what the
// build produced, and can be overridden:
//
//   * environment: AMOPT_SIMD=scalar|avx2|avx512 (read through
//     common/env.hpp at first use; an unsupported request clamps DOWN to
//     the best supported level, never up);
//   * programmatically: `set_level()` (used by tests and bench harnesses to
//     measure every path on one host).
//
// Contract: the scalar level reproduces the pre-SIMD implementation
// bit-for-bit (the hot loops it dispatches to are the verbatim expressions
// the call sites used to inline — asserted by tests/test_simd.cpp). The
// vector levels evaluate the same formulas with the same per-element
// association order but may differ from scalar in the last ulps where the
// compiler contracts multiply-add chains differently; parity across levels
// is bounded by the usual FFT round-off (see DESIGN.md §4) and enforced by
// the CI dispatch-parity job.

#include <cstddef>
#include <string_view>

namespace amopt::simd {

/// Dispatchable instruction-set levels, ordered: a level implies all the
/// levels below it.
enum class Level : int {
  scalar = 0,  ///< portable fallback (always available)
  avx2 = 1,    ///< 4-wide double lanes (x86-64 AVX2)
  avx512 = 2,  ///< 8-wide double lanes (x86-64 AVX-512F)
};

[[nodiscard]] const char* to_string(Level lvl) noexcept;

/// Parse "scalar" / "avx2" / "avx512" (also accepts "avx512f").
/// Returns false (leaving `out` untouched) on anything else.
[[nodiscard]] bool parse_level(std::string_view name, Level& out) noexcept;

/// Best level this binary can run here: compiled-in kernels ∩ host CPUID.
[[nodiscard]] Level max_supported() noexcept;

/// The level the dispatched kernels currently run at. Resolved on first use
/// from AMOPT_SIMD (clamped to max_supported()); later reads are one relaxed
/// atomic load.
[[nodiscard]] Level active() noexcept;

/// Override the active level (clamped to max_supported()); returns the level
/// actually installed. Not intended for concurrent use with in-flight
/// pricings — levels agree to round-off, but a transform that switches paths
/// mid-batch would make results run-to-run unstable.
Level set_level(Level lvl) noexcept;

}  // namespace amopt::simd
