#pragma once
// Memoized stencil-kernel powers.
//
// The trapezoid recursion requests kernels for heights L/2, L/4, ... and the
// top-level descent re-requests many of the same heights, so each pricing
// call owns a KernelCache — or, for chain pricing, many concurrent pricings
// SHARE one (all strikes of a chain have the same taps, so they request the
// same kernel powers). Lookups of warm heights take a shared lock only, so
// readers never serialize against each other; the cache is safe to use from
// the solver's parallel OpenMP tasks and from `pricing::price_batch`'s
// per-option threads.

#include <cstdint>
#include <memory>
#include <shared_mutex>
#include <span>
#include <unordered_map>
#include <vector>

#include "amopt/stencil/linear_stencil.hpp"

namespace amopt::stencil {

class KernelCache {
 public:
  explicit KernelCache(LinearStencil st) : stencil_(std::move(st)) {}

  KernelCache(const KernelCache&) = delete;
  KernelCache& operator=(const KernelCache&) = delete;

  [[nodiscard]] const LinearStencil& stencil() const noexcept {
    return stencil_;
  }

  /// Coefficients of taps(x)^h. The returned span stays valid for the
  /// lifetime of the cache (entries are never evicted).
  [[nodiscard]] std::span<const double> power(std::uint64_t h);

 private:
  LinearStencil stencil_;
  std::shared_mutex mu_;
  std::unordered_map<std::uint64_t, std::unique_ptr<std::vector<double>>>
      cache_;
};

}  // namespace amopt::stencil
