#pragma once
// Memoized stencil-kernel powers, cached in BOTH domains.
//
// The trapezoid recursion requests kernels for heights L/2, L/4, ... and the
// top-level descent re-requests many of the same heights, so each pricing
// call owns a KernelCache — or, for chain pricing, many concurrent pricings
// SHARE one (all strikes of a chain have the same taps, so they request the
// same kernel powers). Lookups of warm heights take a shared lock only, so
// readers never serialize against each other; the cache is safe to use from
// the solver's parallel OpenMP tasks and from `pricing::price_batch`'s
// per-option threads.
//
// Two tiers per height:
//   * TIME DOMAIN — `power(h)`: the coefficients of taps^h. Unchanged
//     contract (spans stay valid for the cache's lifetime) and unchanged
//     bits: FFT-built powers replay poly::power_fft's square-and-multiply
//     walk, drawing the squaring chain taps^(2^k) from one shared ladder so
//     each squaring is paid once per cache instead of once per height.
//   * SPECTRAL — `power_spectrum(h, n)`: the reversed (correlation-layout)
//     R2C spectrum of taps^h at padded size n, materialized lazily on first
//     use and keyed by (h, n). Repeated convolutions at the same recursion
//     depth then skip the kernel transform entirely (the conv spectral
//     overloads run 2 transforms per call instead of 3).

#include <cstdint>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <span>
#include <unordered_map>
#include <vector>

#include "amopt/fft/fft.hpp"
#include "amopt/poly/poly_power.hpp"
#include "amopt/stencil/linear_stencil.hpp"

namespace amopt::stencil {

class KernelCache {
 public:
  explicit KernelCache(LinearStencil st) : stencil_(std::move(st)) {}

  KernelCache(const KernelCache&) = delete;
  KernelCache& operator=(const KernelCache&) = delete;

  [[nodiscard]] const LinearStencil& stencil() const noexcept {
    return stencil_;
  }

  /// Coefficients of taps(x)^h. The returned span stays valid for the
  /// lifetime of the cache (entries are never evicted).
  [[nodiscard]] std::span<const double> power(std::uint64_t h);

  /// The reversed R2C spectrum of taps^h at padded transform size n (a
  /// power of two >= the full linear length of the intended correlation —
  /// conv::correlate_fft_size of the call's dimensions). The reference
  /// stays valid for the lifetime of the cache.
  [[nodiscard]] const fft::RealSpectrum& power_spectrum(std::uint64_t h,
                                                        std::size_t n);

  struct Stats {
    std::size_t powers = 0;        ///< cached time-domain heights
    std::size_t spectra = 0;       ///< cached (h, n) spectra
    std::size_t ladder_rungs = 0;  ///< squaring-ladder entries taps^(2^k)
  };
  [[nodiscard]] Stats stats() const;

 private:
  /// taps^h, computed the way poly::power would, but with FFT-path heights
  /// drawing on the shared squaring ladder. Caller holds no lock.
  [[nodiscard]] std::vector<double> compute_power(std::uint64_t h);

  LinearStencil stencil_;
  mutable std::shared_mutex mu_;
  std::unordered_map<std::uint64_t, std::unique_ptr<std::vector<double>>>
      cache_;
  /// Spectra keyed by (h, log2 n) packed into one word (log2 n < 64).
  std::unordered_map<std::uint64_t, std::unique_ptr<fft::RealSpectrum>>
      spectra_;
  /// Shared repeated-squaring chain taps^(2^k) for the FFT power path; its
  /// own mutex, held only while EXTENDING the chain — the combine steps of
  /// a power build read stable rung snapshots outside it, so concurrent
  /// cold builds at different heights serialize only on missing rungs.
  mutable std::mutex ladder_mu_;
  poly::SquaringLadder ladder_;
};

}  // namespace amopt::stencil
