#pragma once
// Memoized stencil-kernel powers.
//
// The trapezoid recursion requests kernels for heights L/2, L/4, ... and the
// top-level descent re-requests many of the same heights, so each pricing
// call owns a KernelCache. The cache is safe to use from the solver's
// parallel OpenMP tasks.

#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <unordered_map>
#include <vector>

#include "amopt/stencil/linear_stencil.hpp"

namespace amopt::stencil {

class KernelCache {
 public:
  explicit KernelCache(LinearStencil st) : stencil_(std::move(st)) {}

  KernelCache(const KernelCache&) = delete;
  KernelCache& operator=(const KernelCache&) = delete;

  [[nodiscard]] const LinearStencil& stencil() const noexcept {
    return stencil_;
  }

  /// Coefficients of taps(x)^h. The returned span stays valid for the
  /// lifetime of the cache (entries are never evicted).
  [[nodiscard]] std::span<const double> power(std::uint64_t h);

 private:
  LinearStencil stencil_;
  std::mutex mu_;
  std::unordered_map<std::uint64_t, std::unique_ptr<std::vector<double>>>
      cache_;
};

}  // namespace amopt::stencil
