#pragma once
// Memoized stencil-kernel powers, cached in BOTH domains.
//
// The trapezoid recursion requests kernels for heights L/2, L/4, ... and the
// top-level descent re-requests many of the same heights, so each pricing
// call owns a KernelCache — or, for chain pricing, many concurrent pricings
// SHARE one (all strikes of a chain have the same taps, so they request the
// same kernel powers). Lookups of warm heights take a shared lock only, so
// readers never serialize against each other; the cache is safe to use from
// the solver's parallel OpenMP tasks and from `pricing::price_batch`'s
// per-option threads.
//
// Two tiers per height:
//   * TIME DOMAIN — `power(h)`: the coefficients of taps^h. Unchanged
//     contract (spans stay valid for the cache's lifetime) and unchanged
//     bits: FFT-built powers replay poly::power_fft's square-and-multiply
//     walk, drawing the squaring chain taps^(2^k) from one shared ladder so
//     each squaring is paid once per cache instead of once per height.
//   * SPECTRAL — `power_spectrum(h, n)`: the reversed (correlation-layout)
//     R2C spectrum of taps^h at padded size n, materialized lazily on first
//     use and keyed by (h, n). Repeated convolutions at the same recursion
//     depth then skip the kernel transform entirely (the conv spectral
//     overloads run 2 transforms per call instead of 3). Spectrum entries
//     are returned as shared_ptr so an attached `SpectrumBudget` may evict
//     them under its byte cap without invalidating in-flight convolutions;
//     a cache with no budget attached never evicts.

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <span>
#include <unordered_map>
#include <utility>
#include <vector>

#include "amopt/fft/fft.hpp"
#include "amopt/poly/poly_power.hpp"
#include "amopt/stencil/linear_stencil.hpp"

namespace amopt::stencil {

class KernelCache;

/// Registry-level byte budget for the spectrum tier, shared by every cache
/// it is attached to (the Pricer attaches one per session). Tracks the
/// bytes of all live spectrum entries across those caches and, on
/// overflow, evicts the least-recently-used entry — whichever cache owns
/// it. Eviction only forgets warm state: entries are shared_ptr-held, so a
/// convolution already consuming one finishes safely, and the next request
/// simply re-transforms. Lock order is budget mutex -> owner-cache mutex;
/// caches never call into the budget while holding their own lock.
class SpectrumBudget {
 public:
  explicit SpectrumBudget(std::size_t max_bytes) : max_bytes_(max_bytes) {}
  SpectrumBudget(const SpectrumBudget&) = delete;
  SpectrumBudget& operator=(const SpectrumBudget&) = delete;

  struct Stats {
    std::size_t bytes = 0;        ///< live spectrum bytes across all caches
    std::size_t entries = 0;      ///< live spectrum entries
    std::uint64_t evictions = 0;  ///< entries dropped to stay under the cap
  };
  [[nodiscard]] Stats stats() const;
  [[nodiscard]] std::size_t max_bytes() const noexcept { return max_bytes_; }

 private:
  friend class KernelCache;

  /// Recency stamps live in shared_ptr'd atomics co-owned by the owning
  /// cache's map entry, so a warm hit refreshes its LRU position with ONE
  /// relaxed store — no budget mutex, no entry scan — keeping the hot
  /// spectrum path as lock-free as the power() snapshot beside it. The
  /// mutex guards only the entry list itself (admit / evict / forget /
  /// stats).
  using Tick = std::shared_ptr<std::atomic<std::uint64_t>>;
  [[nodiscard]] std::uint64_t next_tick() noexcept {
    return tick_.fetch_add(1, std::memory_order_relaxed) + 1;
  }

  /// Admit `key` of `owner` at `bytes`; evicts LRU entries of any
  /// registered cache until the total fits the cap again.
  void admit(KernelCache* owner, std::uint64_t key, std::size_t bytes,
             const Tick& tick);
  /// Drop every entry owned by `owner` (cache destruction / clear).
  void forget(KernelCache* owner);

  struct Entry {
    KernelCache* owner;
    std::uint64_t key;
    std::size_t bytes;
    Tick tick;
  };

  mutable std::mutex mu_;
  std::size_t max_bytes_;
  std::size_t bytes_ = 0;
  std::atomic<std::uint64_t> tick_{0};
  std::uint64_t evictions_ = 0;
  std::vector<Entry> entries_;
};

class KernelCache {
 public:
  explicit KernelCache(LinearStencil st) : stencil_(std::move(st)) {}
  ~KernelCache();

  KernelCache(const KernelCache&) = delete;
  KernelCache& operator=(const KernelCache&) = delete;

  [[nodiscard]] const LinearStencil& stencil() const noexcept {
    return stencil_;
  }

  /// Coefficients of taps(x)^h. The returned span stays valid for the
  /// lifetime of the cache (time-domain entries are never evicted).
  [[nodiscard]] std::span<const double> power(std::uint64_t h);

  /// The reversed R2C spectrum of taps^h at padded transform size n (a
  /// power of two >= the full linear length of the intended correlation —
  /// conv::correlate_fft_size of the call's dimensions). The shared_ptr
  /// keeps the spectrum alive across a concurrent budget eviction; without
  /// an attached budget entries live as long as the cache.
  [[nodiscard]] std::shared_ptr<const fft::RealSpectrum> power_spectrum(
      std::uint64_t h, std::size_t n);

  /// Attach a registry-level spectrum budget. Must be called before the
  /// first power_spectrum() lookup (the Pricer attaches at cache creation);
  /// pass nullptr for unbounded (the default).
  void set_spectrum_budget(std::shared_ptr<SpectrumBudget> budget);

  struct Stats {
    std::size_t powers = 0;         ///< cached time-domain heights
    std::size_t spectra = 0;        ///< cached (h, n) spectra
    std::size_t spectrum_bytes = 0; ///< bytes held by the spectrum tier
    std::size_t ladder_rungs = 0;   ///< squaring-ladder entries taps^(2^k)
  };
  [[nodiscard]] Stats stats() const;

 private:
  friend class SpectrumBudget;

  /// taps^h, computed the way poly::power would, but with FFT-path heights
  /// drawing on the shared squaring ladder. Caller holds no lock.
  [[nodiscard]] std::vector<double> compute_power(std::uint64_t h);

  /// Budget callback: drop the (h, n) entry for `key` if still present.
  /// Called with the budget mutex held; takes only this cache's mutex.
  void evict_spectrum(std::uint64_t key);

  LinearStencil stencil_;
  mutable std::shared_mutex mu_;
  std::unordered_map<std::uint64_t, std::unique_ptr<std::vector<double>>>
      cache_;
  /// Wait-free read path for warm heights: an immutable sorted (h -> taps^h)
  /// snapshot published through an atomic pointer, the plan-cache idiom.
  /// The recursion looks a height up per convolution, so the shared-lock
  /// acquisition on every hit was measurable; snapshots make warm lookups a
  /// load + binary search. Old snapshots are retired (kept alive) until the
  /// cache dies so in-flight readers never race a free.
  struct PowerSnapshot {
    std::vector<std::pair<std::uint64_t, const std::vector<double>*>> entries;
  };
  std::atomic<const PowerSnapshot*> power_snap_{nullptr};
  std::vector<std::unique_ptr<const PowerSnapshot>> retired_snaps_;
  /// Spectra keyed by (h, log2 n) packed into one word (log2 n < 64). The
  /// recency stamp is co-owned with the budget's entry list (see
  /// SpectrumBudget::Tick); null when no budget is attached.
  struct SpectrumEntry {
    std::shared_ptr<const fft::RealSpectrum> spec;
    SpectrumBudget::Tick tick;
  };
  std::unordered_map<std::uint64_t, SpectrumEntry> spectra_;
  std::shared_ptr<SpectrumBudget> budget_;  ///< null = unbounded
  /// Shared repeated-squaring chain taps^(2^k) for the FFT power path; its
  /// own mutex, held only while EXTENDING the chain — the combine steps of
  /// a power build read stable rung snapshots outside it, so concurrent
  /// cold builds at different heights serialize only on missing rungs.
  mutable std::mutex ladder_mu_;
  poly::SquaringLadder ladder_;
};

}  // namespace amopt::stencil
