#pragma once
// S4: linear 1D stencils and their multi-step application.
//
// A `LinearStencil` describes one backward-induction step
//
//     out[j] = sum_k taps[k] * in[j + left + k]
//
// (`left = 0` for the lattice models whose dependencies all lie to the
// right; `left = -1` for the centered BSM finite-difference stencil).
// Applying `h` steps over a region where the update stays linear is one
// correlation with `poly::power(taps, h)`; `apply_steps_naive` is the
// step-by-step oracle the tests compare against.

#include <cstdint>
#include <span>
#include <vector>

namespace amopt::stencil {

struct LinearStencil {
  std::vector<double> taps;  ///< at least one tap
  int left = 0;              ///< offset of taps[0] relative to the output cell

  [[nodiscard]] std::size_t width() const noexcept { return taps.size(); }
  /// Cells of spatial support lost per step on each conceptual side.
  [[nodiscard]] std::int64_t cone_growth() const noexcept {
    return static_cast<std::int64_t>(taps.size()) - 1;
  }
};

/// Apply `h` steps of `st` to `in`, shrinking the row by cone_growth() cells
/// per step; returns the surviving centre. For `left = 0`, output index j
/// corresponds to input index j; for centered stencils, output index j
/// corresponds to input index j - h*left (callers track the offset).
[[nodiscard]] std::vector<double> apply_steps_naive(const LinearStencil& st,
                                                    std::span<const double> in,
                                                    std::uint64_t h);

}  // namespace amopt::stencil
