#pragma once
// Contract-checking macros in the spirit of the C++ Core Guidelines'
// Expects/Ensures (I.6, I.8). Precondition checks stay on in release builds
// unless AMOPT_NO_CONTRACTS is defined: the solvers in core/ rely on
// structural invariants (boundary monotonicity, window margins) whose
// violation would silently produce wrong prices.

#include <cstdio>
#include <cstdlib>

namespace amopt::detail {

[[noreturn]] inline void contract_failure(const char* kind, const char* expr,
                                          const char* file, int line) {
  std::fprintf(stderr, "amopt: %s violated: %s at %s:%d\n", kind, expr, file,
               line);
  std::abort();
}

}  // namespace amopt::detail

#if defined(AMOPT_NO_CONTRACTS)
#define AMOPT_EXPECTS(cond) ((void)0)
#define AMOPT_ENSURES(cond) ((void)0)
#else
#define AMOPT_EXPECTS(cond)                                                 \
  ((cond) ? (void)0                                                         \
          : ::amopt::detail::contract_failure("precondition", #cond,        \
                                              __FILE__, __LINE__))
#define AMOPT_ENSURES(cond)                                                 \
  ((cond) ? (void)0                                                         \
          : ::amopt::detail::contract_failure("postcondition", #cond,       \
                                              __FILE__, __LINE__))
#endif

// Heavier checks (full-grid cross validation, O(n) scans inside hot loops)
// compile away outside debug builds.
#if defined(AMOPT_DEBUG_CHECKS)
#define AMOPT_DEBUG_ASSERT(cond) AMOPT_EXPECTS(cond)
#else
#define AMOPT_DEBUG_ASSERT(cond) ((void)0)
#endif
