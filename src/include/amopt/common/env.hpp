#pragma once
// Environment-variable knobs used by the bench harness so that CI-scale and
// paper-scale runs share one binary (e.g. AMOPT_BENCH_MAX_T=524288).

#include <cstdlib>
#include <string>

namespace amopt {

[[nodiscard]] inline long env_long(const char* name, long fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  char* end = nullptr;
  const long parsed = std::strtol(v, &end, 10);
  return (end != nullptr && *end == '\0') ? parsed : fallback;
}

[[nodiscard]] inline double env_double(const char* name, double fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  char* end = nullptr;
  const double parsed = std::strtod(v, &end);
  return (end != nullptr && *end == '\0') ? parsed : fallback;
}

[[nodiscard]] inline std::string env_string(const char* name,
                                            const std::string& fallback) {
  const char* v = std::getenv(name);
  return (v == nullptr || *v == '\0') ? fallback : std::string(v);
}

}  // namespace amopt
