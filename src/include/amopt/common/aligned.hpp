#pragma once
// Cache-line / SIMD aligned storage. FFT butterflies and the row buffers of
// the pricers are the bandwidth-critical data structures; aligning them to
// 64 bytes keeps them vectorizable and avoids split lines.

#include <cstddef>
#include <cstdlib>
#include <limits>
#include <new>
#include <vector>

namespace amopt {

inline constexpr std::size_t kCacheLine = 64;

/// Minimal allocator meeting the Cpp17Allocator requirements that hands out
/// 64-byte aligned memory. Used through the `aligned_vector` alias below.
template <class T, std::size_t Align = kCacheLine>
struct AlignedAllocator {
  using value_type = T;
  static_assert(Align >= alignof(T));
  static_assert((Align & (Align - 1)) == 0, "alignment must be a power of 2");

  AlignedAllocator() noexcept = default;
  template <class U>
  AlignedAllocator(const AlignedAllocator<U, Align>&) noexcept {}

  [[nodiscard]] T* allocate(std::size_t n) {
    if (n > std::numeric_limits<std::size_t>::max() / sizeof(T))
      throw std::bad_alloc();
    void* p = ::operator new(n * sizeof(T), std::align_val_t{Align});
    return static_cast<T*>(p);
  }
  void deallocate(T* p, std::size_t) noexcept {
    ::operator delete(p, std::align_val_t{Align});
  }

  template <class U>
  struct rebind {
    using other = AlignedAllocator<U, Align>;
  };
  friend bool operator==(const AlignedAllocator&,
                         const AlignedAllocator&) noexcept {
    return true;
  }
};

template <class T>
using aligned_vector = std::vector<T, AlignedAllocator<T>>;

/// Round `n` up to the next power of two (n >= 1).
[[nodiscard]] constexpr std::size_t next_pow2(std::size_t n) noexcept {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

[[nodiscard]] constexpr bool is_pow2(std::size_t n) noexcept {
  return n != 0 && (n & (n - 1)) == 0;
}

}  // namespace amopt
