#pragma once
// Wall-clock timing used by the bench harness and examples.

#include <chrono>

namespace amopt {

class WallTimer {
 public:
  WallTimer() : start_(clock::now()) {}
  void reset() { start_ = clock::now(); }
  /// Seconds elapsed since construction or the last reset().
  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }
  [[nodiscard]] double millis() const { return seconds() * 1e3; }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

}  // namespace amopt
