#pragma once
// Thin veneer over the process-wide core::TaskPool (which replaced the
// OpenMP runtime): the width/region queries the solvers and FFT gate on,
// the RAII width pin the benches use, and a chunked parallel-for for the
// embarrassingly-parallel row sweeps of the vanilla pricers and baselines.

#include <algorithm>
#include <cstddef>

#include "amopt/core/task_pool.hpp"

namespace amopt {

/// The pool's current execution width (1 = strictly serial library).
[[nodiscard]] inline int hardware_threads() {
  return core::TaskPool::instance().concurrency();
}

/// Retarget the pool width used by subsequent parallel work.
inline void set_threads(int n) {
  if (n > 0) core::TaskPool::instance().set_concurrency(n);
}

/// True on a pool worker thread — i.e. inside task execution, where the
/// FFT must not fan out again (nested transforms stay serial, exactly as
/// the omp_in_parallel() gate behaved).
[[nodiscard]] inline bool in_parallel_region() {
  return core::TaskPool::on_worker();
}

/// RAII guard that pins the pool width for a scope (used by the Table 5
/// scalability bench and the determinism stress test) and restores the
/// previous value on exit.
class ThreadScope {
 public:
  explicit ThreadScope(int n) : saved_(hardware_threads()) { set_threads(n); }
  ~ThreadScope() { set_threads(saved_); }
  ThreadScope(const ThreadScope&) = delete;
  ThreadScope& operator=(const ThreadScope&) = delete;

 private:
  int saved_;
};

/// Run `fn(lo, hi)` over a static split of [0, n) into at most width
/// contiguous chunks of at least `min_chunk` elements — the successor of
/// `omp parallel for schedule(static)` for pure disjoint maps. The chunk
/// boundaries depend only on (n, width), and the legs write disjoint
/// ranges, so for the library's split-invariant sweeps the bits match
/// serial execution at any width. Runs serially (one call, [0, n)) when
/// the pool is at width 1, on a worker already, or n < 2 * min_chunk.
template <class Fn>
void parallel_for_chunks(std::ptrdiff_t n, std::ptrdiff_t min_chunk,
                         Fn&& fn) {
  if (n <= 0) return;
  auto& pool = core::TaskPool::instance();
  std::ptrdiff_t width = pool.concurrency();
  if (min_chunk > 0) width = std::min(width, n / min_chunk);
  if (width <= 1 || core::TaskPool::on_worker()) {
    fn(std::ptrdiff_t{0}, n);
    return;
  }
  const std::ptrdiff_t chunk = (n + width - 1) / width;
  pool.for_each(
      (n + chunk - 1) / chunk,
      [&](std::size_t k) {
        const std::ptrdiff_t lo = static_cast<std::ptrdiff_t>(k) * chunk;
        fn(lo, std::min(lo + chunk, n));
      },
      static_cast<int>(width));
}

}  // namespace amopt
