#pragma once
// Thin OpenMP helpers. All parallelism in the library goes through OpenMP:
// `parallel for` for the row sweeps of the vanilla pricers and the FFT
// stages, tasks for the trapezoid recursion (matching the paper's work-span
// analysis under a greedy scheduler).

#if defined(_OPENMP)
#include <omp.h>
#endif

namespace amopt {

[[nodiscard]] inline int hardware_threads() {
#if defined(_OPENMP)
  return omp_get_max_threads();
#else
  return 1;
#endif
}

/// Set the number of OpenMP threads used by subsequent parallel regions.
inline void set_threads(int n) {
#if defined(_OPENMP)
  if (n > 0) omp_set_num_threads(n);
#else
  (void)n;
#endif
}

[[nodiscard]] inline bool in_parallel_region() {
#if defined(_OPENMP)
  return omp_in_parallel() != 0;
#else
  return false;
#endif
}

/// RAII guard that pins the OpenMP thread count for a scope (used by the
/// Table 5 scalability bench) and restores the previous value on exit.
class ThreadScope {
 public:
  explicit ThreadScope(int n) : saved_(hardware_threads()) { set_threads(n); }
  ~ThreadScope() { set_threads(saved_); }
  ThreadScope(const ThreadScope&) = delete;
  ThreadScope& operator=(const ThreadScope&) = delete;

 private:
  int saved_;
};

}  // namespace amopt
