#pragma once
// Umbrella header for the amopt library — a from-scratch reproduction of
// "Fast American Option Pricing using Nonlinear Stencils" (PPoPP 2024).
//
// Quick start:
//
//   #include <amopt/amopt.hpp>
//   amopt::pricing::OptionSpec spec;          // S, K, R, V, Y, expiry
//   double v = amopt::pricing::bopm::american_call_fft(spec, /*T=*/100000);
//
// See README.md for the architecture overview and DESIGN.md for the
// paper-to-module map.

#include "amopt/common/aligned.hpp"
#include "amopt/common/parallel.hpp"
#include "amopt/common/timer.hpp"
#include "amopt/core/fdm_solver.hpp"
#include "amopt/core/lattice_solver.hpp"
#include "amopt/fft/convolution.hpp"
#include "amopt/fft/fft.hpp"
#include "amopt/poly/poly_power.hpp"
#include "amopt/pricing/api.hpp"
#include "amopt/pricing/bermudan.hpp"
#include "amopt/pricing/black_scholes.hpp"
#include "amopt/pricing/bopm.hpp"
#include "amopt/pricing/boundary.hpp"
#include "amopt/pricing/bsm_fdm.hpp"
#include "amopt/pricing/greeks.hpp"
#include "amopt/pricing/implied_vol.hpp"
#include "amopt/pricing/params.hpp"
#include "amopt/pricing/pricer.hpp"
#include "amopt/pricing/request.hpp"
#include "amopt/pricing/topm.hpp"
#include "amopt/baselines/baselines.hpp"
#include "amopt/service/client.hpp"
#include "amopt/service/fault.hpp"
#include "amopt/service/server.hpp"
#include "amopt/service/transport.hpp"
#include "amopt/service/wire.hpp"
#include "amopt/stencil/kernel_cache.hpp"
#include "amopt/stencil/linear_stencil.hpp"
