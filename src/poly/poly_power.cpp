#include "amopt/poly/poly_power.hpp"

#include <algorithm>
#include <cmath>

#include "amopt/common/assert.hpp"
#include "amopt/fft/convolution.hpp"

namespace amopt::poly {

namespace {

/// log(k!) for k in [0, n] with compensated (Kahan) summation; the absolute
/// error stays O(sqrt(n)·eps), i.e. ~1e-12 relative on the exponentiated
/// value even at h = 2^20. Cached per thread and grown by continuing the
/// SAME recurrence from its saved (sum, comp) state, so every prefix is
/// bit-identical to a fresh computation — a descent requests ~log T
/// binomial heights whose log chains summed to O(T) transcendentals per
/// pricing before the cache.
[[nodiscard]] std::span<const double> log_factorials(std::uint64_t n) {
  struct State {
    std::vector<double> lf{0.0};  // lf[0] = log(0!) = 0
    double sum = 0.0, comp = 0.0;
  };
  thread_local State st;
  if (st.lf.size() <= n) {
    st.lf.reserve(static_cast<std::size_t>(n + 1));
    for (std::uint64_t k = st.lf.size(); k <= n; ++k) {
      const double term = std::log(static_cast<double>(k)) - st.comp;
      const double next = st.sum + term;
      st.comp = (next - st.sum) - term;
      st.sum = next;
      st.lf.push_back(st.sum);
    }
  }
  return {st.lf.data(), static_cast<std::size_t>(n + 1)};
}

}  // namespace

std::vector<double> power_naive(std::span<const double> taps,
                                std::uint64_t h) {
  AMOPT_EXPECTS(!taps.empty());
  std::vector<double> result{1.0};
  for (std::uint64_t s = 0; s < h; ++s)
    result = conv::convolve_full_direct(result, taps);
  return result;
}

namespace {

/// FFT products leave ~eps absolute noise on coefficients whose true value
/// underflowed. For probability kernels (non-negative taps, mass <= 1) any
/// coefficient below eps-scale relative to the peak is provably noise-or-
/// negligible — but left in place it gets multiplied by exponentially large
/// deep-in-the-money payoffs downstream. Clamp it to zero after every
/// product, exactly like the closed-form binomial path underflows its tails.
void clamp_kernel_noise(std::span<double> k) {
  double peak = 0.0;
  for (double x : k) peak = std::max(peak, std::abs(x));
  const double floor = 1e-12 * peak;
  for (double& x : k) {
    if (std::abs(x) < floor) x = 0.0;
    if (x < 0.0) x = 0.0;  // true coefficients are non-negative
  }
}

}  // namespace

std::vector<double> power_fft(std::span<const double> taps, std::uint64_t h,
                              conv::Workspace& ws) {
  // extend_ladder/power_from_rungs below replay this walk rung for rung;
  // any change to the clamp or the convolution order must be mirrored
  // there, or KernelCache::power loses its bit-identity with poly::power
  // (asserted in tests/test_stencil.cpp).
  AMOPT_EXPECTS(!taps.empty());
  if (h == 0) return {1.0};
  bool probability_kernel = true;
  for (double t : taps) probability_kernel &= (t >= 0.0);
  const std::size_t d = taps.size() - 1;
  // Degree bounds: the accumulator never exceeds d*h, the repeated-squaring
  // base never exceeds d*2^floor(log2 h) <= d*h. Growing all three staging
  // buffers to the bound up front keeps the spans valid for the whole run.
  const std::size_t max_len = d * static_cast<std::size_t>(h) + 1;
  std::span<double> result = ws.acc(max_len);
  std::span<double> base = ws.tmp(max_len);
  std::span<double> stage = ws.aux(max_len);
  std::size_t nr = 1, nb = taps.size();
  result[0] = 1.0;
  std::copy(taps.begin(), taps.end(), base.begin());
  std::uint64_t e = h;
  while (e > 0) {
    if (e & 1u) {
      const std::size_t len = nr + nb - 1;
      conv::convolve_full(result.first(nr), base.first(nb), stage.first(len),
                          ws);
      std::copy_n(stage.begin(), len, result.begin());
      nr = len;
      if (probability_kernel) clamp_kernel_noise(result.first(nr));
    }
    e >>= 1;
    if (e > 0) {
      const std::size_t len = 2 * nb - 1;
      conv::convolve_full(base.first(nb), base.first(nb), stage.first(len),
                          ws);
      std::copy_n(stage.begin(), len, base.begin());
      nb = len;
      if (probability_kernel) clamp_kernel_noise(base.first(nb));
    }
  }
  return std::vector<double>(result.begin(),
                             result.begin() + static_cast<std::ptrdiff_t>(nr));
}

std::vector<double> power_fft(std::span<const double> taps, std::uint64_t h) {
  return power_fft(taps, h, conv::thread_workspace());
}

// The two halves below replay power_fft's square-and-multiply walk — same
// convolutions on the same values in the same order, same clamp placement —
// which is what makes KernelCache::power bit-identical to poly::power (the
// contract tests/test_stencil.cpp asserts). Any change to power_fft's clamp
// threshold, accumulation order, or policy MUST be mirrored here.

void extend_ladder(std::span<const double> taps, std::uint64_t h,
                   SquaringLadder& ladder, conv::Workspace& ws) {
  AMOPT_EXPECTS(!taps.empty());
  if (h == 0) return;
  bool probability_kernel = true;
  for (double t : taps) probability_kernel &= (t >= 0.0);
  if (ladder.empty()) ladder.emplace_back(taps.begin(), taps.end());
  AMOPT_EXPECTS(ladder[0].size() == taps.size());
  AMOPT_EXPECTS(std::equal(ladder[0].begin(), ladder[0].end(), taps.begin()));
  std::size_t kmax = 0;
  for (std::uint64_t e = h; e >>= 1;) ++kmax;
  while (ladder.size() <= kmax) {
    // Rung k+1 = rung k squared: the self-convolution rides the aliased
    // one-transform fast path, and the clamp matches power_fft's internal
    // base clamp — a rung built for one height is, bit for bit, the rung
    // every other height would have recomputed.
    const std::vector<double>& top = ladder.back();
    std::vector<double> next(2 * top.size() - 1);
    conv::convolve_full(top, top, next, ws);
    if (probability_kernel) clamp_kernel_noise(next);
    ladder.push_back(std::move(next));
  }
}

std::vector<double> power_from_rungs(
    std::uint64_t h, std::span<const std::span<const double>> rungs,
    conv::Workspace& ws) {
  if (h == 0) return {1.0};
  AMOPT_EXPECTS(!rungs.empty() && !rungs[0].empty());
  bool probability_kernel = true;
  for (double t : rungs[0]) probability_kernel &= (t >= 0.0);
  const std::size_t d = rungs[0].size() - 1;
  const std::size_t max_len = d * static_cast<std::size_t>(h) + 1;
  std::span<double> result = ws.acc(max_len);
  std::span<double> stage = ws.aux(max_len);
  std::size_t nr = 1;
  result[0] = 1.0;
  std::uint64_t e = h;
  for (std::size_t k = 0; e > 0; ++k, e >>= 1) {
    if (e & 1u) {
      AMOPT_EXPECTS(k < rungs.size());
      const std::span<const double> base = rungs[k];
      const std::size_t len = nr + base.size() - 1;
      conv::convolve_full(result.first(nr), base, stage.first(len), ws);
      std::copy_n(stage.begin(), len, result.begin());
      nr = len;
      if (probability_kernel) clamp_kernel_noise(result.first(nr));
    }
  }
  return std::vector<double>(result.begin(),
                             result.begin() + static_cast<std::ptrdiff_t>(nr));
}

std::vector<double> power_fft_ladder(std::span<const double> taps,
                                     std::uint64_t h, SquaringLadder& ladder,
                                     conv::Workspace& ws) {
  AMOPT_EXPECTS(!taps.empty());
  if (h == 0) return {1.0};
  extend_ladder(taps, h, ladder, ws);
  std::size_t kmax = 0;
  for (std::uint64_t e = h; e >>= 1;) ++kmax;
  std::vector<std::span<const double>> rungs;
  rungs.reserve(kmax + 1);
  for (std::size_t k = 0; k <= kmax; ++k) rungs.emplace_back(ladder[k]);
  return power_from_rungs(h, rungs, ws);
}

std::vector<double> power_binomial(double a, double b, std::uint64_t h) {
  if (h == 0) return {1.0};
  std::vector<double> k(h + 1);
  if (a == 0.0 && b == 0.0) return std::vector<double>(h + 1, 0.0);
  if (a == 0.0) {
    std::vector<double> only(h + 1, 0.0);
    only[h] = std::pow(b, static_cast<double>(h));
    return only;
  }
  if (b == 0.0) {
    std::vector<double> only(h + 1, 0.0);
    only[0] = std::pow(a, static_cast<double>(h));
    return only;
  }
  AMOPT_EXPECTS(a > 0.0 && b > 0.0);
  const std::span<const double> lf = log_factorials(h);
  const double la = std::log(a), lb = std::log(b);
  const double hd = static_cast<double>(h);
  for (std::uint64_t m = 0; m <= h; ++m) {
    const double md = static_cast<double>(m);
    const double logc = lf[h] - lf[m] - lf[h - m];
    k[m] = std::exp(logc + (hd - md) * la + md * lb);
  }
  return k;
}

std::vector<double> power_recurrence(std::span<const double> taps,
                                     std::uint64_t h) {
  AMOPT_EXPECTS(!taps.empty());
  AMOPT_EXPECTS(taps[0] != 0.0);
  const std::size_t d = taps.size() - 1;
  if (h == 0) return {1.0};
  const double n = static_cast<double>(h);
  std::vector<double> q(d * h + 1, 0.0);
  q[0] = std::pow(taps[0], n);
  AMOPT_EXPECTS(q[0] != 0.0);  // caller must keep h small enough
  // From P*Q' = n*P'*Q with Q = P^n:
  //   k*q_k*p_0 = sum_{i=1..min(k,d)} ((n+1)*i - k) * p_i * q_{k-i}.
  for (std::size_t k = 1; k < q.size(); ++k) {
    double acc = 0.0;
    const std::size_t imax = std::min(k, d);
    for (std::size_t i = 1; i <= imax; ++i) {
      acc += ((n + 1.0) * static_cast<double>(i) - static_cast<double>(k)) *
             taps[i] * q[k - i];
    }
    q[k] = acc / (static_cast<double>(k) * taps[0]);
  }
  return q;
}

std::vector<double> power(std::span<const double> taps, std::uint64_t h,
                          conv::Workspace& ws) {
  AMOPT_EXPECTS(!taps.empty());
  if (h == 0) return {1.0};
  if (taps.size() == 1)
    return {std::pow(taps[0], static_cast<double>(h))};
  if (taps.size() == 2 && taps[0] >= 0.0 && taps[1] >= 0.0)
    return power_binomial(taps[0], taps[1], h);
  return power_fft(taps, h, ws);
}

std::vector<double> power(std::span<const double> taps, std::uint64_t h) {
  return power(taps, h, conv::thread_workspace());
}

}  // namespace amopt::poly
