#pragma once
// Cross-TU declarations for the per-level kernel implementations. The
// AVX-512 table borrows the AVX2 implementations for the shuffle-heavy
// interleave/untangle helpers (widening those is all permute traffic for
// little arithmetic), so those symbols must be linkable across the kernel
// translation units. Not installed; include only from src/simd/*.cpp.

#include <algorithm>
#include <cstddef>

#include "amopt/simd/kernels.hpp"

namespace amopt::simd {

/// Shared block-interleave driver behind every level's correlate_taps_2row:
/// each kBlock stripe of the first row is produced and immediately consumed
/// by the second row while still in L1. `sweep(in, out, j0, j1)` evaluates
/// the level's correlate_taps body over [j0, j1). EVERY chunk boundary is
/// aligned down to kSweepAlign so the vector/scalar partition inside each
/// sweep is exactly the partition one monolithic sweep would use — which
/// makes the fused result bit-identical to two single-row sweeps at every
/// dispatch level (FMA levels round vector and scalar lanes differently,
/// so partition identity is what the solvers' plane-parity rests on).
template <class Sweep>
inline void two_row_sweep_driver(const double* in, const double* taps,
                                 std::size_t ntaps, double* mid, double* out,
                                 std::size_t n_mid, std::size_t n_out,
                                 Sweep&& sweep) {
  constexpr std::size_t kBlock = 512;     // multiple of every vector width
  constexpr std::size_t kSweepAlign = 8;  // widest vector lane count
  (void)taps;
  const std::size_t lag = ntaps - 1;
  std::size_t done_out = 0;
  for (std::size_t j0 = 0; j0 < n_mid; j0 += kBlock) {
    const std::size_t j1 = std::min(j0 + kBlock, n_mid);
    sweep(in, mid, j0, j1);
    // Second-row cells whose whole window [j, j + lag] is now available,
    // clipped DOWN to the alignment grid (the final flush below completes
    // the row, so clipping costs at most one stripe of locality).
    std::size_t ready = j1 > lag ? std::min(j1 - lag, n_out) : 0;
    if (ready < n_out) ready &= ~(kSweepAlign - 1);
    if (ready > done_out) {
      sweep(mid, out, done_out, ready);
      done_out = ready;
    }
  }
  sweep(mid, out, done_out, n_out);
}

namespace scalar_impl {
// The scalar table itself is the fallback surface; vector TUs reach it
// through tables::scalar (constant-initialized, so safe to read from any
// other TU's kernels at call time).
}

#if defined(AMOPT_HAVE_AVX2)
namespace avx2_impl {
void cmul(cplx* a, const cplx* b, std::size_t n);
void csquare(cplx* a, std::size_t n);
void correlate_taps(const double* in, const double* taps, std::size_t ntaps,
                    double* out, std::size_t n);
void correlate_taps_2row(const double* in, const double* taps,
                         std::size_t ntaps, double* mid, double* out,
                         std::size_t n_mid, std::size_t n_out);
void stencil3(const double* in, double b, double c, double a, double* out,
              std::size_t n);
void deinterleave(const cplx* z, double* re, double* im, std::size_t n);
void interleave(const double* re, const double* im, cplx* z, std::size_t n);
void interleave_scaled(const double* re, const double* im, cplx* z,
                       std::size_t n, double s);
void deinterleave_rev(const cplx* z, const std::uint32_t* rev, double* re,
                      double* im, std::size_t n);
void scale2(double* re, double* im, std::size_t n, double s);
void radix2_pass(double* re, double* im, std::size_t n);
void radix4_pass(double* re, double* im, std::size_t n, std::size_t h,
                 const double* wsoa, bool inverse);
void rfft_untangle(cplx* spec, const cplx* tw, std::size_t m);
void rfft_retangle(cplx* spec, const cplx* tw, std::size_t m);
}  // namespace avx2_impl
#endif

}  // namespace amopt::simd
