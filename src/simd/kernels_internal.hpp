#pragma once
// Cross-TU declarations for the per-level kernel implementations. The
// AVX-512 table borrows the AVX2 implementations for the shuffle-heavy
// interleave/untangle helpers (widening those is all permute traffic for
// little arithmetic), so those symbols must be linkable across the kernel
// translation units. Not installed; include only from src/simd/*.cpp.

#include <cstddef>

#include "amopt/simd/kernels.hpp"

namespace amopt::simd {

namespace scalar_impl {
// The scalar table itself is the fallback surface; vector TUs reach it
// through tables::scalar (constant-initialized, so safe to read from any
// other TU's kernels at call time).
}

#if defined(AMOPT_HAVE_AVX2)
namespace avx2_impl {
void cmul(cplx* a, const cplx* b, std::size_t n);
void csquare(cplx* a, std::size_t n);
void correlate_taps(const double* in, const double* taps, std::size_t ntaps,
                    double* out, std::size_t n);
void stencil3(const double* in, double b, double c, double a, double* out,
              std::size_t n);
void deinterleave(const cplx* z, double* re, double* im, std::size_t n);
void interleave(const double* re, const double* im, cplx* z, std::size_t n);
void deinterleave_rev(const cplx* z, const std::uint32_t* rev, double* re,
                      double* im, std::size_t n);
void scale2(double* re, double* im, std::size_t n, double s);
void radix2_pass(double* re, double* im, std::size_t n);
void radix4_pass(double* re, double* im, std::size_t n, std::size_t h,
                 const double* wsoa, bool inverse);
void rfft_untangle(cplx* spec, const cplx* tw, std::size_t m);
void rfft_retangle(cplx* spec, const cplx* tw, std::size_t m);
}  // namespace avx2_impl
#endif

}  // namespace amopt::simd
