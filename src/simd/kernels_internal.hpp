#pragma once
// Cross-TU declarations for the per-level kernel implementations. The
// AVX-512 table borrows the AVX2 implementations for the shuffle-heavy
// interleave/untangle helpers (widening those is all permute traffic for
// little arithmetic), so those symbols must be linkable across the kernel
// translation units. Not installed; include only from src/simd/*.cpp.

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <cstring>

#include "amopt/simd/kernels.hpp"

namespace amopt::simd {

/// Shared block-interleave driver behind every level's correlate_taps_2row:
/// each kBlock stripe of the first row is produced and immediately consumed
/// by the second row while still in L1. `sweep(in, out, j0, j1)` evaluates
/// the level's correlate_taps body over [j0, j1). EVERY chunk boundary is
/// aligned down to kSweepAlign so the vector/scalar partition inside each
/// sweep is exactly the partition one monolithic sweep would use — which
/// makes the fused result bit-identical to two single-row sweeps at every
/// dispatch level (FMA levels round vector and scalar lanes differently,
/// so partition identity is what the solvers' plane-parity rests on).
template <class Sweep>
inline void two_row_sweep_driver(const double* in, const double* taps,
                                 std::size_t ntaps, double* mid, double* out,
                                 std::size_t n_mid, std::size_t n_out,
                                 Sweep&& sweep) {
  constexpr std::size_t kBlock = 512;     // multiple of every vector width
  constexpr std::size_t kSweepAlign = 8;  // widest vector lane count
  (void)taps;
  const std::size_t lag = ntaps - 1;
  std::size_t done_out = 0;
  for (std::size_t j0 = 0; j0 < n_mid; j0 += kBlock) {
    const std::size_t j1 = std::min(j0 + kBlock, n_mid);
    sweep(in, mid, j0, j1);
    // Second-row cells whose whole window [j, j + lag] is now available,
    // clipped DOWN to the alignment grid (the final flush below completes
    // the row, so clipping costs at most one stripe of locality).
    std::size_t ready = j1 > lag ? std::min(j1 - lag, n_out) : 0;
    if (ready < n_out) ready &= ~(kSweepAlign - 1);
    if (ready > done_out) {
      sweep(mid, out, done_out, ready);
      done_out = ready;
    }
  }
  sweep(mid, out, done_out, n_out);
}

namespace scalar_impl {
// The scalar table itself is the fallback surface; vector TUs reach it
// through tables::scalar (constant-initialized, so safe to read from any
// other TU's kernels at call time).
}

// Shared constants and the scalar reference evaluation of the libm-free
// normal CDF (Kernels::norm_cdf). Every level follows this exact operation
// sequence; the scalar table loops over phi_reference, the vector TUs map
// each step 1:1 onto lanes (the AVX2 TU builds without FMA, so its lanes
// reproduce these bits exactly) and use phi_reference for their scalar
// tails. Accuracy: the A&S 7.1.26 erf rational bounds the absolute error by
// 7.5e-8 on Phi; the in-house exp is accurate to ~1 ulp over its reduced
// range.
namespace phi_detail {
inline constexpr double kInvSqrt2 = 0.70710678118654752440;
// A&S 7.1.26 erfc(z) = t*(a1 + t*(a2 + ...)) * exp(-z^2), t = 1/(1 + p z).
inline constexpr double kP = 0.3275911;
inline constexpr double kA1 = 0.254829592;
inline constexpr double kA2 = -0.284496736;
inline constexpr double kA3 = 1.421413741;
inline constexpr double kA4 = -1.453152027;
inline constexpr double kA5 = 1.061405429;
// exp(y) for y in [-708, 0]: y = k ln2 + r, e^y = 2^k P(r).
inline constexpr double kLog2E = 1.4426950408889634074;
inline constexpr double kLn2Hi = 6.93147180369123816490e-01;
inline constexpr double kLn2Lo = 1.90821492927058770002e-10;
inline constexpr double kExpFloor = -708.0;  // below this, 2^k denormalizes
// Reciprocal factorials for the degree-11 Taylor P(r) (|r| <= ln2/2, so the
// truncation error sits below 1e-14 — far under the rational's 7.5e-8).
inline constexpr double kC[12] = {
    1.0,
    1.0,
    1.0 / 2,
    1.0 / 6,
    1.0 / 24,
    1.0 / 120,
    1.0 / 720,
    1.0 / 5040,
    1.0 / 40320,
    1.0 / 362880,
    1.0 / 3628800,
    1.0 / 39916800,
};

/// exp(y) for y <= 0 (clamped at kExpFloor; callers only feed -z^2).
[[nodiscard]] inline double exp_neg(double y) noexcept {
  y = y > kExpFloor ? y : kExpFloor;
  const double k = std::nearbyint(y * kLog2E);
  const double r = (y - k * kLn2Hi) - k * kLn2Lo;
  double p = kC[11];
  for (int i = 10; i >= 0; --i) p = p * r + kC[i];
  std::uint64_t bits =
      static_cast<std::uint64_t>(static_cast<std::int64_t>(k) + 1023) << 52;
  double scale;
  std::memcpy(&scale, &bits, sizeof scale);
  return p * scale;
}

[[nodiscard]] inline double phi_reference(double x) noexcept {
  const double z = std::fabs(x) * kInvSqrt2;
  const double t = 1.0 / (1.0 + kP * z);
  const double poly =
      ((((kA5 * t + kA4) * t + kA3) * t + kA2) * t + kA1) * t;
  const double tail = 0.5 * poly * exp_neg(-(z * z));
  return x >= 0.0 ? 1.0 - tail : tail;
}
}  // namespace phi_detail

#if defined(AMOPT_HAVE_AVX2)
namespace avx2_impl {
void cmul(cplx* a, const cplx* b, std::size_t n);
void csquare(cplx* a, std::size_t n);
void correlate_taps(const double* in, const double* taps, std::size_t ntaps,
                    double* out, std::size_t n);
void correlate_taps_2row(const double* in, const double* taps,
                         std::size_t ntaps, double* mid, double* out,
                         std::size_t n_mid, std::size_t n_out);
void stencil3(const double* in, double b, double c, double a, double* out,
              std::size_t n);
void stencil3_2row(const double* in, double b, double c, double a, double* mid,
                   double* out, std::size_t n_mid, std::size_t n_out);
void bs_dpm(const double* logz, const double* drift_t, const double* inv_vs,
            const double* half_vs, double* dp, double* dm, std::size_t n);
void norm_cdf(const double* x, double* out, std::size_t n);
void deinterleave(const cplx* z, double* re, double* im, std::size_t n);
void interleave(const double* re, const double* im, cplx* z, std::size_t n);
void interleave_scaled(const double* re, const double* im, cplx* z,
                       std::size_t n, double s);
void deinterleave_rev(const cplx* z, const std::uint32_t* rev, double* re,
                      double* im, std::size_t n);
void scale2(double* re, double* im, std::size_t n, double s);
void radix2_pass(double* re, double* im, std::size_t n);
void radix4_pass(double* re, double* im, std::size_t n, std::size_t h,
                 const double* wsoa, bool inverse);
void rfft_untangle(cplx* spec, const cplx* tw, std::size_t m);
void rfft_retangle(cplx* spec, const cplx* tw, std::size_t m);
}  // namespace avx2_impl
#endif

}  // namespace amopt::simd
