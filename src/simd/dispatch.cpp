#include "amopt/simd/simd.hpp"

#include <atomic>

#include "amopt/common/env.hpp"
#include "amopt/simd/kernels.hpp"

namespace amopt::simd {

namespace {

/// What the host CPU can execute (ignoring what this build compiled in).
[[nodiscard]] Level host_level() noexcept {
#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
  // OS support for the zmm state is included in these checks on gcc/clang
  // (they test the relevant XCR0 bits). The avx512 kernel TU is compiled
  // with -mavx512dq as well (vxorpd zmm is a DQ instruction), so both
  // features must be present — plain-AVX512F hardware (Xeon Phi) clamps
  // to avx2.
  if (__builtin_cpu_supports("avx512f") &&
      __builtin_cpu_supports("avx512dq"))
    return Level::avx512;
  if (__builtin_cpu_supports("avx2")) return Level::avx2;
#endif
  return Level::scalar;
}

[[nodiscard]] constexpr Level compiled_level() noexcept {
#if defined(AMOPT_HAVE_AVX512)
  return Level::avx512;
#elif defined(AMOPT_HAVE_AVX2)
  return Level::avx2;
#else
  return Level::scalar;
#endif
}

[[nodiscard]] Level clamp(Level lvl) noexcept {
  const Level cap = max_supported();
  return static_cast<int>(lvl) < static_cast<int>(cap) ? lvl : cap;
}

/// First-use resolution: AMOPT_SIMD override if present and parseable,
/// otherwise the best supported level. Unknown strings fall back to auto
/// (the library must keep pricing even with a typo'd env).
[[nodiscard]] Level resolve_initial() noexcept {
  const std::string req = env_string("AMOPT_SIMD", "");
  Level parsed;
  if (!req.empty() && parse_level(req, parsed)) return clamp(parsed);
  return max_supported();
}

std::atomic<int>& active_slot() noexcept {
  static std::atomic<int> slot{-1};
  return slot;
}

}  // namespace

const char* to_string(Level lvl) noexcept {
  switch (lvl) {
    case Level::scalar: return "scalar";
    case Level::avx2: return "avx2";
    case Level::avx512: return "avx512";
  }
  return "?";
}

bool parse_level(std::string_view name, Level& out) noexcept {
  if (name == "scalar") {
    out = Level::scalar;
  } else if (name == "avx2") {
    out = Level::avx2;
  } else if (name == "avx512" || name == "avx512f") {
    out = Level::avx512;
  } else {
    return false;
  }
  return true;
}

Level max_supported() noexcept {
  static const Level cap = [] {
    const Level host = host_level();
    const Level built = compiled_level();
    return static_cast<int>(host) < static_cast<int>(built) ? host : built;
  }();
  return cap;
}

Level active() noexcept {
  std::atomic<int>& slot = active_slot();
  int cur = slot.load(std::memory_order_relaxed);
  if (cur < 0) {
    const Level lvl = resolve_initial();
    // Benign race: every thread resolves the same value.
    slot.store(static_cast<int>(lvl), std::memory_order_relaxed);
    return lvl;
  }
  return static_cast<Level>(cur);
}

Level set_level(Level lvl) noexcept {
  const Level eff = clamp(lvl);
  active_slot().store(static_cast<int>(eff), std::memory_order_relaxed);
  return eff;
}

const Kernels& kernels(Level lvl) noexcept {
  switch (clamp(lvl)) {
#if defined(AMOPT_HAVE_AVX512)
    case Level::avx512: return tables::avx512;
#endif
#if defined(AMOPT_HAVE_AVX2)
    case Level::avx2: return tables::avx2;
#endif
    default: return tables::scalar;
  }
}

}  // namespace amopt::simd
