// Scalar (portable) kernel table. These are the verbatim hot loops their
// call sites inlined before the SIMD layer existed — the expressions, the
// association order, and the iteration order are kept identical so the
// scalar dispatch level stays bit-compatible with the pre-SIMD library
// (asserted by tests/test_simd.cpp). Pointer parameters are
// restrict-qualified: no caller aliases them, and the qualifier lets the
// autovectorizer do what it can without changing the arithmetic.

#include <algorithm>
#include <cstddef>

#include "kernels_internal.hpp"

namespace amopt::simd {

namespace scalar_impl {

namespace {

void cmul(cplx* __restrict a, const cplx* __restrict b, std::size_t n) {
  for (std::size_t k = 0; k < n; ++k) a[k] *= b[k];
}

void csquare(cplx* __restrict a, std::size_t n) {
  // Exactly cmul(a, a): operator*= reads both factors before writing, so
  // squaring in place evaluates the same expression on the same bits.
  for (std::size_t k = 0; k < n; ++k) a[k] *= a[k];
}

void correlate_taps(const double* __restrict in, const double* __restrict taps,
                    std::size_t ntaps, double* __restrict out, std::size_t n) {
  for (std::size_t j = 0; j < n; ++j) {
    double acc = 0.0;
    for (std::size_t m = 0; m < ntaps; ++m) acc += taps[m] * in[j + m];
    out[j] = acc;
  }
}

void correlate_taps_2row(const double* __restrict in,
                         const double* __restrict taps, std::size_t ntaps,
                         double* __restrict mid, double* __restrict out,
                         std::size_t n_mid, std::size_t n_out) {
  // Shared block-interleave driver (kernels_internal.hpp); per element the
  // expression and accumulation order are exactly correlate_taps's, so any
  // interleaving is bit-identical to two separate sweeps.
  two_row_sweep_driver(
      in, taps, ntaps, mid, out, n_mid, n_out,
      [&](const double* src, double* dst, std::size_t j0, std::size_t j1) {
        for (std::size_t j = j0; j < j1; ++j) {
          double acc = 0.0;
          for (std::size_t m = 0; m < ntaps; ++m) acc += taps[m] * src[j + m];
          dst[j] = acc;
        }
      });
}

void stencil3(const double* __restrict in, double b, double c, double a,
              double* __restrict out, std::size_t n) {
  for (std::size_t j = 0; j < n; ++j)
    out[j] = b * in[j] + c * in[j + 1] + a * in[j + 2];
}

void stencil3_2row(const double* __restrict in, double b, double c, double a,
                   double* __restrict mid, double* __restrict out,
                   std::size_t n_mid, std::size_t n_out) {
  // Same block-interleave driver as correlate_taps_2row, with stencil3's
  // unseeded expression as the sweep body — any interleaving is
  // bit-identical to two separate stencil3 sweeps (including the -0.0 cells
  // a seeded accumulation would flush to +0.0).
  two_row_sweep_driver(
      in, nullptr, 3, mid, out, n_mid, n_out,
      [&](const double* src, double* dst, std::size_t j0, std::size_t j1) {
        for (std::size_t j = j0; j < j1; ++j)
          dst[j] = b * src[j] + c * src[j + 1] + a * src[j + 2];
      });
}

void bs_dpm(const double* __restrict logz, const double* __restrict drift_t,
            const double* __restrict inv_vs, const double* __restrict half_vs,
            double* __restrict dp, double* __restrict dm, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    const double base = (logz[i] + drift_t[i]) * inv_vs[i];
    dp[i] = base + half_vs[i];
    dm[i] = base - half_vs[i];
  }
}

void norm_cdf(const double* __restrict x, double* __restrict out,
              std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) out[i] = phi_detail::phi_reference(x[i]);
}

void deinterleave(const cplx* __restrict z, double* __restrict re,
                  double* __restrict im, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    re[i] = z[i].real();
    im[i] = z[i].imag();
  }
}

void interleave(const double* __restrict re, const double* __restrict im,
                cplx* __restrict z, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) z[i] = cplx{re[i], im[i]};
}

void interleave_scaled(const double* __restrict re,
                       const double* __restrict im, cplx* __restrict z,
                       std::size_t n, double s) {
  for (std::size_t i = 0; i < n; ++i) z[i] = cplx{re[i] * s, im[i] * s};
}

void deinterleave_rev(const cplx* __restrict z,
                      const std::uint32_t* __restrict rev,
                      double* __restrict re, double* __restrict im,
                      std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    const cplx v = z[rev[i]];
    re[i] = v.real();
    im[i] = v.imag();
  }
}

void scale2(double* __restrict re, double* __restrict im, std::size_t n,
            double s) {
  for (std::size_t i = 0; i < n; ++i) re[i] *= s;
  for (std::size_t i = 0; i < n; ++i) im[i] *= s;
}

void radix2_pass(double* __restrict re, double* __restrict im, std::size_t n) {
  for (std::size_t base = 0; base < n; base += 2) {
    const double tr = re[base + 1];
    const double ti = im[base + 1];
    re[base + 1] = re[base] - tr;
    im[base + 1] = im[base] - ti;
    re[base] += tr;
    im[base] += ti;
  }
}

void radix4_pass(double* __restrict re, double* __restrict im, std::size_t n,
                 std::size_t h, const double* __restrict wsoa, bool inverse) {
  const double* w1re = wsoa;
  const double* w1im = wsoa + h;
  const double* w2re = wsoa + 2 * h;
  const double* w2im = wsoa + 3 * h;
  const double* w3re = wsoa + 4 * h;
  const double* w3im = wsoa + 5 * h;
  const double conj_sign = inverse ? -1.0 : 1.0;
  const std::size_t step = 4 * h;
  for (std::size_t base = 0; base < n; base += step) {
    for (std::size_t j = 0; j < h; ++j) {
      const double w1r = w1re[j], w1i = conj_sign * w1im[j];
      const double w2r = w2re[j], w2i = conj_sign * w2im[j];
      const double w3r = w3re[j], w3i = conj_sign * w3im[j];
      const std::size_t ia = base + j;
      const std::size_t ib = ia + h;
      const std::size_t ic = ia + 2 * h;
      const std::size_t id = ia + 3 * h;
      const double ar = re[ia], ai = im[ia];
      const double br = re[ib], bi = im[ib];
      const double cr = re[ic], ci = im[ic];
      const double dr = re[id], di = im[id];
      // bb = b * W^2j, cc = c * W^j, dd = d * W^3j
      const double bbr = br * w2r - bi * w2i, bbi = br * w2i + bi * w2r;
      const double ccr = cr * w1r - ci * w1i, cci = cr * w1i + ci * w1r;
      const double ddr = dr * w3r - di * w3i, ddi = dr * w3i + di * w3r;
      const double a1r = ar + bbr, a1i = ai + bbi;
      const double b1r = ar - bbr, b1i = ai - bbi;
      const double sr = ccr + ddr, si = cci + ddi;
      const double tr = ccr - ddr, ti = cci - ddi;
      // -i t forward, +i t inverse
      const double itr = inverse ? -ti : ti;
      const double iti = inverse ? tr : -tr;
      re[ia] = a1r + sr;
      im[ia] = a1i + si;
      re[ic] = a1r - sr;
      im[ic] = a1i - si;
      re[ib] = b1r + itr;
      im[ib] = b1i + iti;
      re[id] = b1r - itr;
      im[id] = b1i - iti;
    }
  }
}

void rfft_untangle(cplx* __restrict spec, const cplx* __restrict tw,
                   std::size_t m) {
  for (std::size_t k = 1, j = m - 1; k < j; ++k, --j) {
    const cplx zk = spec[k], zj = spec[j];
    const cplx xe = 0.5 * (zk + std::conj(zj));
    const cplx xo = cplx{0.0, -0.5} * (zk - std::conj(zj));
    const cplx txo = tw[k] * xo;
    spec[k] = xe + txo;
    spec[j] = std::conj(xe - txo);
  }
}

void rfft_retangle(cplx* __restrict spec, const cplx* __restrict tw,
                   std::size_t m) {
  for (std::size_t k = 1, j = m - 1; k < j; ++k, --j) {
    const cplx xk = spec[k], xj = spec[j];
    const cplx xe = 0.5 * (xk + std::conj(xj));
    const cplx xo = 0.5 * (xk - std::conj(xj)) * std::conj(tw[k]);
    spec[k] = xe + cplx{0.0, 1.0} * xo;
    spec[j] = std::conj(xe) + cplx{0.0, 1.0} * std::conj(xo);
  }
}

}  // namespace

}  // namespace scalar_impl

namespace tables {

const Kernels scalar = {
    scalar_impl::cmul,           scalar_impl::csquare,
    scalar_impl::correlate_taps, scalar_impl::correlate_taps_2row,
    scalar_impl::stencil3,       scalar_impl::stencil3_2row,
    scalar_impl::deinterleave,   scalar_impl::interleave,
    scalar_impl::interleave_scaled,
    scalar_impl::deinterleave_rev,
    scalar_impl::scale2,         scalar_impl::radix2_pass,
    scalar_impl::radix4_pass,    scalar_impl::rfft_untangle,
    scalar_impl::rfft_retangle,
    scalar_impl::bs_dpm,         scalar_impl::norm_cdf,
};

}  // namespace tables

}  // namespace amopt::simd
