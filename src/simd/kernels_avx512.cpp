// AVX-512F kernel table: 8 doubles (4 complex) per 512-bit lane. The
// arithmetic-dense kernels (radix-4 butterflies, pointwise products, tap
// sweeps) are widened to 512 bits, and since PR 5 so are the shuffle-bound
// layout helpers (de/interleave, R2C/C2R pair twiddles, radix-2): vpermt2pd
// crosses all 128-bit lanes in one instruction, which halves their shuffle
// and load/store counts — profiling the end-to-end pricers showed those
// helpers carrying ~15% of a descent. This TU is compiled with
// -mavx512f -mavx512dq (and AVX2 implied), so multiply-add chains may be
// contracted to FMA here: the AVX-512 path can differ from scalar/AVX2 in
// the last ulps (it is the more accurate rounding), bounded by the
// documented cross-path tolerance (DESIGN.md §4).

#include <immintrin.h>

#include <cstdint>

#include "kernels_internal.hpp"

namespace amopt::simd {

namespace avx512_impl {

[[nodiscard]] inline bool aligned64(const void* p) noexcept {
  return (reinterpret_cast<std::uintptr_t>(p) & 63u) == 0;
}

struct IoAligned {
  static __m512d load(const double* p) noexcept { return _mm512_load_pd(p); }
  static void store(double* p, __m512d v) noexcept { _mm512_store_pd(p, v); }
};
struct IoUnaligned {
  static __m512d load(const double* p) noexcept { return _mm512_loadu_pd(p); }
  static void store(double* p, __m512d v) noexcept { _mm512_storeu_pd(p, v); }
};

// ------------------------------------------------------------------ cmul

template <class Io>
void cmul_vec(double* a, const double* b, std::size_t pairs) {
  for (std::size_t k = 0; k + 4 <= pairs; k += 4) {
    const __m512d va = Io::load(a + 2 * k);
    const __m512d vb = Io::load(b + 2 * k);
    const __m512d bre = _mm512_movedup_pd(vb);
    const __m512d bim = _mm512_permute_pd(vb, 0xFF);
    const __m512d asw = _mm512_permute_pd(va, 0x55);
    // fmaddsub: even lanes a*b - c, odd lanes a*b + c (one rounding).
    const __m512d t2 = _mm512_mul_pd(asw, bim);
    Io::store(a + 2 * k, _mm512_fmaddsub_pd(va, bre, t2));
  }
}

void cmul(cplx* a, const cplx* b, std::size_t n) {
  auto* ad = reinterpret_cast<double*>(a);
  const auto* bd = reinterpret_cast<const double*>(b);
  const std::size_t nv = n & ~std::size_t{3};
  if (aligned64(ad) && aligned64(bd)) {
    cmul_vec<IoAligned>(ad, bd, nv);
  } else {
    cmul_vec<IoUnaligned>(ad, bd, nv);
  }
  for (std::size_t k = nv; k < n; ++k) a[k] *= b[k];
}

template <class Io>
void csquare_vec(double* a, std::size_t pairs) {
  // cmul_vec with both factors taken from the single load: identical
  // shuffle/fmaddsub sequence, so it matches cmul(a, a) lane for lane.
  for (std::size_t k = 0; k + 4 <= pairs; k += 4) {
    const __m512d va = Io::load(a + 2 * k);
    const __m512d bre = _mm512_movedup_pd(va);
    const __m512d bim = _mm512_permute_pd(va, 0xFF);
    const __m512d asw = _mm512_permute_pd(va, 0x55);
    const __m512d t2 = _mm512_mul_pd(asw, bim);
    Io::store(a + 2 * k, _mm512_fmaddsub_pd(va, bre, t2));
  }
}

void csquare(cplx* a, std::size_t n) {
  auto* ad = reinterpret_cast<double*>(a);
  const std::size_t nv = n & ~std::size_t{3};
  if (aligned64(ad)) {
    csquare_vec<IoAligned>(ad, nv);
  } else {
    csquare_vec<IoUnaligned>(ad, nv);
  }
  for (std::size_t k = nv; k < n; ++k) a[k] *= a[k];
}

// ------------------------------------------- small-tap correlation sweeps

void correlate_taps(const double* in, const double* taps, std::size_t ntaps,
                    double* out, std::size_t n) {
  std::size_t j = 0;
  for (; j + 8 <= n; j += 8) {
    __m512d acc = _mm512_setzero_pd();
    for (std::size_t m = 0; m < ntaps; ++m)
      acc = _mm512_fmadd_pd(_mm512_set1_pd(taps[m]),
                            _mm512_loadu_pd(in + j + m), acc);
    _mm512_storeu_pd(out + j, acc);
  }
  for (; j < n; ++j) {
    double acc = 0.0;
    for (std::size_t m = 0; m < ntaps; ++m) acc += taps[m] * in[j + m];
    out[j] = acc;
  }
}

namespace {
/// The 8-wide fmadd body of `correlate_taps` over [j0, j1).
inline void taps_sweep_range(const double* in, const double* taps,
                             std::size_t ntaps, double* out, std::size_t j0,
                             std::size_t j1) {
  std::size_t j = j0;
  for (; j + 8 <= j1; j += 8) {
    __m512d acc = _mm512_setzero_pd();
    for (std::size_t m = 0; m < ntaps; ++m)
      acc = _mm512_fmadd_pd(_mm512_set1_pd(taps[m]),
                            _mm512_loadu_pd(in + j + m), acc);
    _mm512_storeu_pd(out + j, acc);
  }
  for (; j < j1; ++j) {
    double acc = 0.0;
    for (std::size_t m = 0; m < ntaps; ++m) acc += taps[m] * in[j + m];
    out[j] = acc;
  }
}
}  // namespace

void correlate_taps_2row(const double* in, const double* taps,
                         std::size_t ntaps, double* mid, double* out,
                         std::size_t n_mid, std::size_t n_out) {
  two_row_sweep_driver(
      in, taps, ntaps, mid, out, n_mid, n_out,
      [&](const double* src, double* dst, std::size_t j0, std::size_t j1) {
        taps_sweep_range(src, taps, ntaps, dst, j0, j1);
      });
}

void stencil3(const double* in, double b, double c, double a, double* out,
              std::size_t n) {
  const __m512d vb = _mm512_set1_pd(b);
  const __m512d vc = _mm512_set1_pd(c);
  const __m512d va = _mm512_set1_pd(a);
  std::size_t j = 0;
  for (; j + 8 <= n; j += 8) {
    __m512d acc = _mm512_mul_pd(vb, _mm512_loadu_pd(in + j));
    acc = _mm512_fmadd_pd(vc, _mm512_loadu_pd(in + j + 1), acc);
    acc = _mm512_fmadd_pd(va, _mm512_loadu_pd(in + j + 2), acc);
    _mm512_storeu_pd(out + j, acc);
  }
  for (; j < n; ++j) out[j] = b * in[j] + c * in[j + 1] + a * in[j + 2];
}

namespace {
/// The 8-wide fmadd body of `stencil3` over [j0, j1); aligned chunk starts
/// keep the fused sweep on the monolithic vector/scalar partition.
inline void stencil3_range(const double* in, double b, double c, double a,
                           double* out, std::size_t j0, std::size_t j1) {
  const __m512d vb = _mm512_set1_pd(b);
  const __m512d vc = _mm512_set1_pd(c);
  const __m512d va = _mm512_set1_pd(a);
  std::size_t j = j0;
  for (; j + 8 <= j1; j += 8) {
    __m512d acc = _mm512_mul_pd(vb, _mm512_loadu_pd(in + j));
    acc = _mm512_fmadd_pd(vc, _mm512_loadu_pd(in + j + 1), acc);
    acc = _mm512_fmadd_pd(va, _mm512_loadu_pd(in + j + 2), acc);
    _mm512_storeu_pd(out + j, acc);
  }
  for (; j < j1; ++j) out[j] = b * in[j] + c * in[j + 1] + a * in[j + 2];
}
}  // namespace

void stencil3_2row(const double* in, double b, double c, double a, double* mid,
                   double* out, std::size_t n_mid, std::size_t n_out) {
  two_row_sweep_driver(
      in, nullptr, 3, mid, out, n_mid, n_out,
      [&](const double* src, double* dst, std::size_t j0, std::size_t j1) {
        stencil3_range(src, b, c, a, dst, j0, j1);
      });
}

// --------------------------------------- boundary-engine quadrature loops

void bs_dpm(const double* logz, const double* drift_t, const double* inv_vs,
            const double* half_vs, double* dp, double* dm, std::size_t n) {
  // base feeds the following add/sub, and in this TU the compiler is free
  // to contract that into FMA — like the other AVX-512 kernels this entry
  // is last-ulp from scalar, within the DESIGN.md §4 cross-path tolerance.
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m512d base =
        _mm512_mul_pd(_mm512_add_pd(_mm512_loadu_pd(logz + i),
                                    _mm512_loadu_pd(drift_t + i)),
                      _mm512_loadu_pd(inv_vs + i));
    const __m512d h = _mm512_loadu_pd(half_vs + i);
    _mm512_storeu_pd(dp + i, _mm512_add_pd(base, h));
    _mm512_storeu_pd(dm + i, _mm512_sub_pd(base, h));
  }
  for (; i < n; ++i) {
    const double base = (logz[i] + drift_t[i]) * inv_vs[i];
    dp[i] = base + half_vs[i];
    dm[i] = base - half_vs[i];
  }
}

void norm_cdf(const double* x, double* out, std::size_t n) {
  namespace pd = phi_detail;
  const __m512d sign_mask = _mm512_set1_pd(-0.0);
  const __m512d one = _mm512_set1_pd(1.0);
  const __m512d half = _mm512_set1_pd(0.5);
  std::size_t i = 0;
  // Same operation sequence as phi_detail::phi_reference with the Horner
  // chains contracted to FMA — last-ulp divergence from scalar/AVX2,
  // inside the documented cross-path tolerance.
  for (; i + 8 <= n; i += 8) {
    const __m512d vx = _mm512_loadu_pd(x + i);
    const __m512d z = _mm512_mul_pd(_mm512_abs_pd(vx),
                                    _mm512_set1_pd(pd::kInvSqrt2));
    const __m512d t = _mm512_div_pd(
        one, _mm512_fmadd_pd(_mm512_set1_pd(pd::kP), z, one));
    __m512d poly = _mm512_set1_pd(pd::kA5);
    poly = _mm512_fmadd_pd(poly, t, _mm512_set1_pd(pd::kA4));
    poly = _mm512_fmadd_pd(poly, t, _mm512_set1_pd(pd::kA3));
    poly = _mm512_fmadd_pd(poly, t, _mm512_set1_pd(pd::kA2));
    poly = _mm512_fmadd_pd(poly, t, _mm512_set1_pd(pd::kA1));
    poly = _mm512_mul_pd(poly, t);
    const __m512d y = _mm512_max_pd(
        _mm512_xor_pd(_mm512_mul_pd(z, z), sign_mask),
        _mm512_set1_pd(pd::kExpFloor));
    const __m512d k = _mm512_roundscale_pd(
        _mm512_mul_pd(y, _mm512_set1_pd(pd::kLog2E)),
        _MM_FROUND_TO_NEAREST_INT | _MM_FROUND_NO_EXC);
    const __m512d r = _mm512_sub_pd(
        _mm512_sub_pd(y, _mm512_mul_pd(k, _mm512_set1_pd(pd::kLn2Hi))),
        _mm512_mul_pd(k, _mm512_set1_pd(pd::kLn2Lo)));
    __m512d p = _mm512_set1_pd(pd::kC[11]);
    for (int c = 10; c >= 0; --c)
      p = _mm512_fmadd_pd(p, r, _mm512_set1_pd(pd::kC[c]));
    const __m512i bits = _mm512_slli_epi64(
        _mm512_add_epi64(_mm512_cvtpd_epi64(k), _mm512_set1_epi64(1023)),
        52);
    const __m512d e = _mm512_mul_pd(p, _mm512_castsi512_pd(bits));
    const __m512d tail = _mm512_mul_pd(_mm512_mul_pd(half, poly), e);
    const __mmask8 ge =
        _mm512_cmp_pd_mask(vx, _mm512_setzero_pd(), _CMP_GE_OQ);
    _mm512_storeu_pd(out + i,
                     _mm512_mask_blend_pd(ge, tail, _mm512_sub_pd(one, tail)));
  }
  for (; i < n; ++i) out[i] = pd::phi_reference(x[i]);
}

void deinterleave_rev(const cplx* z, const std::uint32_t* rev, double* re,
                      double* im, std::size_t n) {
  const auto* zd = reinterpret_cast<const double*>(z);
  std::size_t i = 0;
  // Same cache-residency crossover as the AVX2 kernel: past L2, gathers
  // lose to the prefetch-friendly scalar loop.
  if (n > (std::size_t{1} << 14)) {
    avx2_impl::deinterleave_rev(z, rev, re, im, n);
    return;
  }
  for (; i + 8 <= n; i += 8) {
    __m256i idx =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(rev + i));
    idx = _mm256_slli_epi32(idx, 1);
    _mm512_storeu_pd(re + i, _mm512_i32gather_pd(idx, zd, 8));
    _mm512_storeu_pd(im + i, _mm512_i32gather_pd(idx, zd + 1, 8));
  }
  for (; i < n; ++i) {
    const cplx v = z[rev[i]];
    re[i] = v.real();
    im[i] = v.imag();
  }
}

void scale2(double* re, double* im, std::size_t n, double s) {
  const __m512d vs = _mm512_set1_pd(s);
  for (double* p : {re, im}) {
    std::size_t i = 0;
    if (aligned64(p)) {
      for (; i + 8 <= n; i += 8)
        _mm512_store_pd(p + i, _mm512_mul_pd(_mm512_load_pd(p + i), vs));
    } else {
      for (; i + 8 <= n; i += 8)
        _mm512_storeu_pd(p + i, _mm512_mul_pd(_mm512_loadu_pd(p + i), vs));
    }
    for (; i < n; ++i) p[i] *= s;
  }
}

// ---------------------------------------------- 512-bit layout conversions
//
// PR 3 left the shuffle-bound layout helpers on their AVX2 implementations;
// profiling the end-to-end pricers showed they carry ~15% of a descent, so
// they are widened here after all. vpermt2pd crosses all 128-bit lanes in
// one instruction, so the 512-bit versions halve both the shuffle and the
// load/store counts. Arithmetic (where any) is the same mul/add per
// element, inside the documented AVX-512 tolerance.

namespace {
inline __m512i idx8(long long a, long long b, long long c, long long d,
                    long long e, long long f, long long g, long long h) {
  return _mm512_setr_epi64(a, b, c, d, e, f, g, h);
}

/// Load 8 interleaved complex (unaligned) and split into re/im registers.
inline void load_split8(const double* p, __m512d& re, __m512d& im) {
  const __m512d z0 = _mm512_loadu_pd(p);
  const __m512d z1 = _mm512_loadu_pd(p + 8);
  re = _mm512_permutex2var_pd(z0, idx8(0, 2, 4, 6, 8, 10, 12, 14), z1);
  im = _mm512_permutex2var_pd(z0, idx8(1, 3, 5, 7, 9, 11, 13, 15), z1);
}

inline void store_join8(double* p, __m512d re, __m512d im) {
  _mm512_storeu_pd(
      p, _mm512_permutex2var_pd(re, idx8(0, 8, 1, 9, 2, 10, 3, 11), im));
  _mm512_storeu_pd(
      p + 8, _mm512_permutex2var_pd(re, idx8(4, 12, 5, 13, 6, 14, 7, 15), im));
}

inline __m512d reverse8(__m512d v) {
  return _mm512_permutexvar_pd(idx8(7, 6, 5, 4, 3, 2, 1, 0), v);
}
}  // namespace

void deinterleave(const cplx* z, double* re, double* im, std::size_t n) {
  const auto* zd = reinterpret_cast<const double*>(z);
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    __m512d vr, vi;
    load_split8(zd + 2 * i, vr, vi);
    _mm512_storeu_pd(re + i, vr);
    _mm512_storeu_pd(im + i, vi);
  }
  for (; i < n; ++i) {
    re[i] = z[i].real();
    im[i] = z[i].imag();
  }
}

void interleave(const double* re, const double* im, cplx* z, std::size_t n) {
  auto* zd = reinterpret_cast<double*>(z);
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8)
    store_join8(zd + 2 * i, _mm512_loadu_pd(re + i), _mm512_loadu_pd(im + i));
  for (; i < n; ++i) z[i] = cplx{re[i], im[i]};
}

void interleave_scaled(const double* re, const double* im, cplx* z,
                       std::size_t n, double s) {
  auto* zd = reinterpret_cast<double*>(z);
  const __m512d vs = _mm512_set1_pd(s);
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8)
    store_join8(zd + 2 * i, _mm512_mul_pd(_mm512_loadu_pd(re + i), vs),
                _mm512_mul_pd(_mm512_loadu_pd(im + i), vs));
  for (; i < n; ++i) z[i] = cplx{re[i] * s, im[i] * s};
}

void radix2_pass(double* re, double* im, std::size_t n) {
  const std::size_t nv = n & ~std::size_t{7};
  for (double* p : {re, im}) {
    std::size_t base = 0;
    for (; base + 8 <= nv; base += 8) {
      const __m512d v = _mm512_loadu_pd(p + base);
      const __m512d sw = _mm512_permute_pd(v, 0x55);  // swap within pairs
      const __m512d sum = _mm512_add_pd(v, sw);
      const __m512d dif = _mm512_sub_pd(sw, v);
      _mm512_storeu_pd(p + base, _mm512_mask_blend_pd(0xAA, sum, dif));
    }
    for (; base < n; base += 2) {
      const double t = p[base + 1];
      p[base + 1] = p[base] - t;
      p[base] += t;
    }
  }
}

// ----------------------------------------------- R2C / C2R pair twiddles

void rfft_untangle(cplx* spec, const cplx* tw, std::size_t m) {
  auto* sd = reinterpret_cast<double*>(spec);
  const auto* td = reinterpret_cast<const double*>(tw);
  const __m512d half = _mm512_set1_pd(0.5);
  std::size_t k = 1, j = m - 1;
  for (; k + 15 <= j; k += 8, j -= 8) {
    __m512d kr, ki, jr, ji, twr, twi;
    load_split8(sd + 2 * k, kr, ki);
    load_split8(sd + 2 * (j - 7), jr, ji);
    jr = reverse8(jr);  // lane l now holds index j - l
    ji = reverse8(ji);
    load_split8(td + 2 * k, twr, twi);
    // xe = (Z[k] + conj(Z[j]))/2, xo = (Z[k] - conj(Z[j]))/(2i)
    const __m512d xer = _mm512_mul_pd(half, _mm512_add_pd(kr, jr));
    const __m512d xei = _mm512_mul_pd(half, _mm512_sub_pd(ki, ji));
    const __m512d xor_ = _mm512_mul_pd(half, _mm512_add_pd(ki, ji));
    const __m512d xoi = _mm512_mul_pd(half, _mm512_sub_pd(jr, kr));
    // txo = t_k * xo
    const __m512d txr = _mm512_sub_pd(_mm512_mul_pd(twr, xor_),
                                      _mm512_mul_pd(twi, xoi));
    const __m512d txi = _mm512_add_pd(_mm512_mul_pd(twr, xoi),
                                      _mm512_mul_pd(twi, xor_));
    // spec[k] = xe + txo, spec[j] = conj(xe - txo)
    store_join8(sd + 2 * k, _mm512_add_pd(xer, txr), _mm512_add_pd(xei, txi));
    const __m512d ojr = reverse8(_mm512_sub_pd(xer, txr));
    const __m512d oji = reverse8(_mm512_sub_pd(txi, xei));  // -(xei-txi)
    store_join8(sd + 2 * (j - 7), ojr, oji);
  }
  for (; k < j; ++k, --j) {
    const cplx zk = spec[k], zj = spec[j];
    const cplx xe = 0.5 * (zk + std::conj(zj));
    const cplx xo = cplx{0.0, -0.5} * (zk - std::conj(zj));
    const cplx txo = tw[k] * xo;
    spec[k] = xe + txo;
    spec[j] = std::conj(xe - txo);
  }
}

void rfft_retangle(cplx* spec, const cplx* tw, std::size_t m) {
  auto* sd = reinterpret_cast<double*>(spec);
  const auto* td = reinterpret_cast<const double*>(tw);
  const __m512d half = _mm512_set1_pd(0.5);
  std::size_t k = 1, j = m - 1;
  for (; k + 15 <= j; k += 8, j -= 8) {
    __m512d kr, ki, jr, ji, twr, twi;
    load_split8(sd + 2 * k, kr, ki);
    load_split8(sd + 2 * (j - 7), jr, ji);
    jr = reverse8(jr);
    ji = reverse8(ji);
    load_split8(td + 2 * k, twr, twi);
    // xe = (X[k] + conj(X[j]))/2, u = (X[k] - conj(X[j]))/2,
    // xo = u * conj(t_k)
    const __m512d xer = _mm512_mul_pd(half, _mm512_add_pd(kr, jr));
    const __m512d xei = _mm512_mul_pd(half, _mm512_sub_pd(ki, ji));
    const __m512d ur = _mm512_mul_pd(half, _mm512_sub_pd(kr, jr));
    const __m512d ui = _mm512_mul_pd(half, _mm512_add_pd(ki, ji));
    const __m512d xor_ = _mm512_add_pd(_mm512_mul_pd(ur, twr),
                                       _mm512_mul_pd(ui, twi));
    const __m512d xoi = _mm512_sub_pd(_mm512_mul_pd(ui, twr),
                                      _mm512_mul_pd(ur, twi));
    // Z[k] = xe + i xo, Z[j] = conj(xe) + i conj(xo)
    store_join8(sd + 2 * k, _mm512_sub_pd(xer, xoi), _mm512_add_pd(xei, xor_));
    const __m512d ojr = reverse8(_mm512_add_pd(xer, xoi));
    const __m512d oji = reverse8(_mm512_sub_pd(xor_, xei));
    store_join8(sd + 2 * (j - 7), ojr, oji);
  }
  for (; k < j; ++k, --j) {
    const cplx xk = spec[k], xj = spec[j];
    const cplx xe = 0.5 * (xk + std::conj(xj));
    const cplx xo = 0.5 * (xk - std::conj(xj)) * std::conj(tw[k]);
    spec[k] = xe + cplx{0.0, 1.0} * xo;
    spec[j] = std::conj(xe) + cplx{0.0, 1.0} * std::conj(xo);
  }
}

// ------------------------------------------------------------ FFT stages

// Same large-stage twiddle strategy as the AVX2 kernel — past this
// half-size, compute W^2j / W^3j from W^j in registers instead of
// streaming the cold 48h-byte twiddle block — but with a LOWER crossover:
// FMA makes the in-register powers cheap here, and in a real descent (many
// distinct transform sizes, unlike a single-size micro loop) the 48h-byte
// blocks arrive cold, which is where computing wins end-to-end (~5% on the
// fig5 pricers on the PR 5 build box).
constexpr std::size_t kComputeTwiddleH = 512;

template <class Io, bool ComputeW>
void radix4_vec(double* re, double* im, std::size_t n, std::size_t h,
                const double* wsoa, bool inverse) {
  const double* w1re = wsoa;
  const double* w1im = wsoa + h;
  const double* w2re = wsoa + 2 * h;
  const double* w2im = wsoa + 3 * h;
  const double* w3re = wsoa + 4 * h;
  const double* w3im = wsoa + 5 * h;
  const __m512d conj_mask =
      inverse ? _mm512_set1_pd(-0.0) : _mm512_setzero_pd();
  const __m512d rot_mask =
      inverse ? _mm512_setzero_pd() : _mm512_set1_pd(-0.0);
  const std::size_t step = 4 * h;
  for (std::size_t base = 0; base < n; base += step) {
    for (std::size_t j = 0; j < h; j += 8) {
      const std::size_t ia = base + j;
      const std::size_t ib = ia + h;
      const std::size_t ic = ia + 2 * h;
      const std::size_t id = ia + 3 * h;
      const __m512d w1r = _mm512_loadu_pd(w1re + j);
      const __m512d w1i = _mm512_xor_pd(_mm512_loadu_pd(w1im + j), conj_mask);
      __m512d w2r, w2i, w3r, w3i;
      if constexpr (ComputeW) {
        w2r = _mm512_fmsub_pd(w1r, w1r, _mm512_mul_pd(w1i, w1i));
        w2i = _mm512_fmadd_pd(w1r, w1i, _mm512_mul_pd(w1i, w1r));
        w3r = _mm512_fmsub_pd(w2r, w1r, _mm512_mul_pd(w2i, w1i));
        w3i = _mm512_fmadd_pd(w2r, w1i, _mm512_mul_pd(w2i, w1r));
      } else {
        w2r = _mm512_loadu_pd(w2re + j);
        w2i = _mm512_xor_pd(_mm512_loadu_pd(w2im + j), conj_mask);
        w3r = _mm512_loadu_pd(w3re + j);
        w3i = _mm512_xor_pd(_mm512_loadu_pd(w3im + j), conj_mask);
      }
      const __m512d ar = Io::load(re + ia), ai = Io::load(im + ia);
      const __m512d br = Io::load(re + ib), bi = Io::load(im + ib);
      const __m512d cr = Io::load(re + ic), ci = Io::load(im + ic);
      const __m512d dr = Io::load(re + id), di = Io::load(im + id);
      const __m512d bbr =
          _mm512_fmsub_pd(br, w2r, _mm512_mul_pd(bi, w2i));
      const __m512d bbi =
          _mm512_fmadd_pd(br, w2i, _mm512_mul_pd(bi, w2r));
      const __m512d ccr =
          _mm512_fmsub_pd(cr, w1r, _mm512_mul_pd(ci, w1i));
      const __m512d cci =
          _mm512_fmadd_pd(cr, w1i, _mm512_mul_pd(ci, w1r));
      const __m512d ddr =
          _mm512_fmsub_pd(dr, w3r, _mm512_mul_pd(di, w3i));
      const __m512d ddi =
          _mm512_fmadd_pd(dr, w3i, _mm512_mul_pd(di, w3r));
      const __m512d a1r = _mm512_add_pd(ar, bbr);
      const __m512d a1i = _mm512_add_pd(ai, bbi);
      const __m512d b1r = _mm512_sub_pd(ar, bbr);
      const __m512d b1i = _mm512_sub_pd(ai, bbi);
      const __m512d sr = _mm512_add_pd(ccr, ddr);
      const __m512d si = _mm512_add_pd(cci, ddi);
      const __m512d itr = _mm512_xor_pd(_mm512_sub_pd(cci, ddi), conj_mask);
      const __m512d iti = _mm512_xor_pd(_mm512_sub_pd(ccr, ddr), rot_mask);
      Io::store(re + ia, _mm512_add_pd(a1r, sr));
      Io::store(im + ia, _mm512_add_pd(a1i, si));
      Io::store(re + ic, _mm512_sub_pd(a1r, sr));
      Io::store(im + ic, _mm512_sub_pd(a1i, si));
      Io::store(re + ib, _mm512_add_pd(b1r, itr));
      Io::store(im + ib, _mm512_add_pd(b1i, iti));
      Io::store(re + id, _mm512_sub_pd(b1r, itr));
      Io::store(im + id, _mm512_sub_pd(b1i, iti));
    }
  }
}

/// The h = 4 stage widened to 512 bits: two butterfly groups (32 elements
/// per array) per iteration, gathered and scattered with cross-lane
/// vpermt2pd. Multiplies and adds only — no FMA — so every lane evaluates
/// exactly the expression the AVX2/scalar h = 4 stage evaluates and the
/// result is bit-identical to them. The small-transform stages dominate
/// the many narrow convolutions of a descent, which is why this one gets
/// its own kernel.
void radix4_h4(double* re, double* im, std::size_t n, const double* wsoa,
               bool inverse) {
  const __m512d conj_mask =
      inverse ? _mm512_set1_pd(-0.0) : _mm512_setzero_pd();
  const __m512d rot_mask =
      inverse ? _mm512_setzero_pd() : _mm512_set1_pd(-0.0);
  const auto bcast4 = [](const double* p) {
    return _mm512_broadcast_f64x4(_mm256_loadu_pd(p));
  };
  // Six 4-element twiddle arrays, each broadcast to both 256-bit halves.
  const __m512d w1r = bcast4(wsoa);
  const __m512d w1i = _mm512_xor_pd(bcast4(wsoa + 4), conj_mask);
  const __m512d w2r = bcast4(wsoa + 8);
  const __m512d w2i = _mm512_xor_pd(bcast4(wsoa + 12), conj_mask);
  const __m512d w3r = bcast4(wsoa + 16);
  const __m512d w3i = _mm512_xor_pd(bcast4(wsoa + 20), conj_mask);
  const __m512i lo_idx = idx8(0, 1, 2, 3, 8, 9, 10, 11);
  const __m512i hi_idx = idx8(4, 5, 6, 7, 12, 13, 14, 15);
  std::size_t base = 0;
  for (; base + 32 <= n; base += 32) {
    // [a0..3 b0..3 c0..3 d0..3] x 2 groups -> per-operand registers
    // [x(g1) | x(g2)].
    const auto gather = [&](const double* p, __m512d& a, __m512d& b,
                            __m512d& c, __m512d& d) {
      const __m512d v0 = _mm512_loadu_pd(p);
      const __m512d v1 = _mm512_loadu_pd(p + 8);
      const __m512d v2 = _mm512_loadu_pd(p + 16);
      const __m512d v3 = _mm512_loadu_pd(p + 24);
      a = _mm512_permutex2var_pd(v0, lo_idx, v2);
      b = _mm512_permutex2var_pd(v0, hi_idx, v2);
      c = _mm512_permutex2var_pd(v1, lo_idx, v3);
      d = _mm512_permutex2var_pd(v1, hi_idx, v3);
    };
    __m512d ar, br, cr, dr, ai, bi, ci, di;
    gather(re + base, ar, br, cr, dr);
    gather(im + base, ai, bi, ci, di);
    // bb = b W^2j, cc = c W^j, dd = d W^3j — the AVX2 mul/add chain.
    const __m512d bbr = _mm512_sub_pd(_mm512_mul_pd(br, w2r),
                                      _mm512_mul_pd(bi, w2i));
    const __m512d bbi = _mm512_add_pd(_mm512_mul_pd(br, w2i),
                                      _mm512_mul_pd(bi, w2r));
    const __m512d ccr = _mm512_sub_pd(_mm512_mul_pd(cr, w1r),
                                      _mm512_mul_pd(ci, w1i));
    const __m512d cci = _mm512_add_pd(_mm512_mul_pd(cr, w1i),
                                      _mm512_mul_pd(ci, w1r));
    const __m512d ddr = _mm512_sub_pd(_mm512_mul_pd(dr, w3r),
                                      _mm512_mul_pd(di, w3i));
    const __m512d ddi = _mm512_add_pd(_mm512_mul_pd(dr, w3i),
                                      _mm512_mul_pd(di, w3r));
    const __m512d a1r = _mm512_add_pd(ar, bbr);
    const __m512d a1i = _mm512_add_pd(ai, bbi);
    const __m512d b1r = _mm512_sub_pd(ar, bbr);
    const __m512d b1i = _mm512_sub_pd(ai, bbi);
    const __m512d sr = _mm512_add_pd(ccr, ddr);
    const __m512d si = _mm512_add_pd(cci, ddi);
    const __m512d itr = _mm512_xor_pd(_mm512_sub_pd(cci, ddi), conj_mask);
    const __m512d iti = _mm512_xor_pd(_mm512_sub_pd(ccr, ddr), rot_mask);
    const auto scatter = [&](double* p, __m512d oa, __m512d ob, __m512d oc,
                             __m512d od) {
      _mm512_storeu_pd(p, _mm512_permutex2var_pd(oa, lo_idx, ob));
      _mm512_storeu_pd(p + 8, _mm512_permutex2var_pd(oc, lo_idx, od));
      _mm512_storeu_pd(p + 16, _mm512_permutex2var_pd(oa, hi_idx, ob));
      _mm512_storeu_pd(p + 24, _mm512_permutex2var_pd(oc, hi_idx, od));
    };
    scatter(re + base, _mm512_add_pd(a1r, sr), _mm512_add_pd(b1r, itr),
            _mm512_sub_pd(a1r, sr), _mm512_sub_pd(b1r, itr));
    scatter(im + base, _mm512_add_pd(a1i, si), _mm512_add_pd(b1i, iti),
            _mm512_sub_pd(a1i, si), _mm512_sub_pd(b1i, iti));
  }
  if (base < n) {  // odd trailing group (n a multiple of 16, not 32)
    avx2_impl::radix4_pass(re + base, im + base, n - base, 4, wsoa, inverse);
  }
}

/// The h = 2 stage (odd-log2 transforms) widened to 512 bits: four 8-element
/// butterfly groups per iteration. Two vpermt2pd's pack the (a, b) halves of
/// two groups into one register and vshuff64x2 merges four groups into full
/// 8-wide operands; twiddles broadcast as [w(0), w(1)] x 4. Multiplies and
/// adds only (no FMA) — bit-identical to the AVX2/scalar stage.
void radix4_h2(double* re, double* im, std::size_t n, const double* wsoa,
               bool inverse) {
  const __m512d conj_mask =
      inverse ? _mm512_set1_pd(-0.0) : _mm512_setzero_pd();
  const __m512d rot_mask =
      inverse ? _mm512_setzero_pd() : _mm512_set1_pd(-0.0);
  const auto bcast2 = [](const double* p) {
    return _mm512_broadcast_f64x2(_mm_loadu_pd(p));
  };
  const __m512d w1r = bcast2(wsoa);
  const __m512d w1i = _mm512_xor_pd(bcast2(wsoa + 2), conj_mask);
  const __m512d w2r = bcast2(wsoa + 4);
  const __m512d w2i = _mm512_xor_pd(bcast2(wsoa + 6), conj_mask);
  const __m512d w3r = bcast2(wsoa + 8);
  const __m512d w3i = _mm512_xor_pd(bcast2(wsoa + 10), conj_mask);
  // [a0 a1 b0 b1 | a0' a1' b0' b1'] packers for two 8-element groups.
  const __m512i ab_idx = idx8(0, 1, 8, 9, 2, 3, 10, 11);
  const __m512i cd_idx = idx8(4, 5, 12, 13, 6, 7, 14, 15);
  std::size_t base = 0;
  for (; base + 32 <= n; base += 32) {
    const auto gather = [&](const double* p, __m512d& a, __m512d& b,
                            __m512d& c, __m512d& d) {
      const __m512d v0 = _mm512_loadu_pd(p);
      const __m512d v1 = _mm512_loadu_pd(p + 8);
      const __m512d v2 = _mm512_loadu_pd(p + 16);
      const __m512d v3 = _mm512_loadu_pd(p + 24);
      const __m512d ab01 = _mm512_permutex2var_pd(v0, ab_idx, v1);
      const __m512d ab23 = _mm512_permutex2var_pd(v2, ab_idx, v3);
      const __m512d cd01 = _mm512_permutex2var_pd(v0, cd_idx, v1);
      const __m512d cd23 = _mm512_permutex2var_pd(v2, cd_idx, v3);
      a = _mm512_shuffle_f64x2(ab01, ab23, 0x44);  // low 256s: a-halves
      b = _mm512_shuffle_f64x2(ab01, ab23, 0xEE);  // high 256s: b-halves
      c = _mm512_shuffle_f64x2(cd01, cd23, 0x44);
      d = _mm512_shuffle_f64x2(cd01, cd23, 0xEE);
    };
    __m512d ar, br, cr, dr, ai, bi, ci, di;
    gather(re + base, ar, br, cr, dr);
    gather(im + base, ai, bi, ci, di);
    const __m512d bbr = _mm512_sub_pd(_mm512_mul_pd(br, w2r),
                                      _mm512_mul_pd(bi, w2i));
    const __m512d bbi = _mm512_add_pd(_mm512_mul_pd(br, w2i),
                                      _mm512_mul_pd(bi, w2r));
    const __m512d ccr = _mm512_sub_pd(_mm512_mul_pd(cr, w1r),
                                      _mm512_mul_pd(ci, w1i));
    const __m512d cci = _mm512_add_pd(_mm512_mul_pd(cr, w1i),
                                      _mm512_mul_pd(ci, w1r));
    const __m512d ddr = _mm512_sub_pd(_mm512_mul_pd(dr, w3r),
                                      _mm512_mul_pd(di, w3i));
    const __m512d ddi = _mm512_add_pd(_mm512_mul_pd(dr, w3i),
                                      _mm512_mul_pd(di, w3r));
    const __m512d a1r = _mm512_add_pd(ar, bbr);
    const __m512d a1i = _mm512_add_pd(ai, bbi);
    const __m512d b1r = _mm512_sub_pd(ar, bbr);
    const __m512d b1i = _mm512_sub_pd(ai, bbi);
    const __m512d sr = _mm512_add_pd(ccr, ddr);
    const __m512d si = _mm512_add_pd(cci, ddi);
    const __m512d itr = _mm512_xor_pd(_mm512_sub_pd(cci, ddi), conj_mask);
    const __m512d iti = _mm512_xor_pd(_mm512_sub_pd(ccr, ddr), rot_mask);
    const auto scatter = [&](double* p, __m512d oa, __m512d ob, __m512d oc,
                             __m512d od) {
      const __m512d ab01 = _mm512_shuffle_f64x2(oa, ob, 0x44);
      const __m512d ab23 = _mm512_shuffle_f64x2(oa, ob, 0xEE);
      const __m512d cd01 = _mm512_shuffle_f64x2(oc, od, 0x44);
      const __m512d cd23 = _mm512_shuffle_f64x2(oc, od, 0xEE);
      // ab01 = [a(g1) a(g2) b(g1) b(g2)] pairs -> regroup per group.
      const __m512i g0_idx = idx8(0, 1, 4, 5, 8, 9, 12, 13);
      const __m512i g1_idx = idx8(2, 3, 6, 7, 10, 11, 14, 15);
      _mm512_storeu_pd(p, _mm512_permutex2var_pd(ab01, g0_idx, cd01));
      _mm512_storeu_pd(p + 8, _mm512_permutex2var_pd(ab01, g1_idx, cd01));
      _mm512_storeu_pd(p + 16, _mm512_permutex2var_pd(ab23, g0_idx, cd23));
      _mm512_storeu_pd(p + 24, _mm512_permutex2var_pd(ab23, g1_idx, cd23));
    };
    scatter(re + base, _mm512_add_pd(a1r, sr), _mm512_add_pd(b1r, itr),
            _mm512_sub_pd(a1r, sr), _mm512_sub_pd(b1r, itr));
    scatter(im + base, _mm512_add_pd(a1i, si), _mm512_add_pd(b1i, iti),
            _mm512_sub_pd(a1i, si), _mm512_sub_pd(b1i, iti));
  }
  if (base < n) {  // trailing groups (n a multiple of 8, not 32)
    avx2_impl::radix4_pass(re + base, im + base, n - base, 2, wsoa, inverse);
  }
}

void radix4_pass(double* re, double* im, std::size_t n, std::size_t h,
                 const double* wsoa, bool inverse) {
  if (h == 4) {
    radix4_h4(re, im, n, wsoa, inverse);
    return;
  }
  if (h == 2) {
    radix4_h2(re, im, n, wsoa, inverse);
    return;
  }
  if (h < 8) {
    // h < 2 bottoms out in the scalar loop inside the AVX2 entry.
    avx2_impl::radix4_pass(re, im, n, h, wsoa, inverse);
    return;
  }
  const bool aligned = aligned64(re) && aligned64(im);
  if (h >= kComputeTwiddleH) {
    if (aligned) {
      radix4_vec<IoAligned, true>(re, im, n, h, wsoa, inverse);
    } else {
      radix4_vec<IoUnaligned, true>(re, im, n, h, wsoa, inverse);
    }
  } else if (aligned) {
    radix4_vec<IoAligned, false>(re, im, n, h, wsoa, inverse);
  } else {
    radix4_vec<IoUnaligned, false>(re, im, n, h, wsoa, inverse);
  }
}

}  // namespace avx512_impl

namespace tables {

const Kernels avx512 = {
    avx512_impl::cmul,         avx512_impl::csquare,
    avx512_impl::correlate_taps, avx512_impl::correlate_taps_2row,
    avx512_impl::stencil3,     avx512_impl::stencil3_2row,
    avx512_impl::deinterleave, avx512_impl::interleave,
    avx512_impl::interleave_scaled,
    avx512_impl::deinterleave_rev,
    avx512_impl::scale2,       avx512_impl::radix2_pass,
    avx512_impl::radix4_pass,  avx512_impl::rfft_untangle,
    avx512_impl::rfft_retangle,
    avx512_impl::bs_dpm,       avx512_impl::norm_cdf,
};

}  // namespace tables

}  // namespace amopt::simd
