// AVX-512F kernel table: 8 doubles (4 complex) per 512-bit lane. The
// arithmetic-dense kernels (radix-4 butterflies, pointwise products, tap
// sweeps) are widened to 512 bits; the shuffle-bound layout helpers
// (de/interleave, R2C/C2R pair twiddles, radix-2) reuse the AVX2
// implementations — at 512 bits those are almost pure permute traffic and
// gain nothing from the wider lanes. This TU is compiled with
// -mavx512f -mavx512dq (and AVX2 implied), so multiply-add chains may be
// contracted to FMA here: the AVX-512 path can differ from scalar/AVX2 in
// the last ulps (it is the more accurate rounding), bounded by the
// documented cross-path tolerance (DESIGN.md §4).

#include <immintrin.h>

#include <cstdint>

#include "kernels_internal.hpp"

namespace amopt::simd {

namespace avx512_impl {

[[nodiscard]] inline bool aligned64(const void* p) noexcept {
  return (reinterpret_cast<std::uintptr_t>(p) & 63u) == 0;
}

struct IoAligned {
  static __m512d load(const double* p) noexcept { return _mm512_load_pd(p); }
  static void store(double* p, __m512d v) noexcept { _mm512_store_pd(p, v); }
};
struct IoUnaligned {
  static __m512d load(const double* p) noexcept { return _mm512_loadu_pd(p); }
  static void store(double* p, __m512d v) noexcept { _mm512_storeu_pd(p, v); }
};

// ------------------------------------------------------------------ cmul

template <class Io>
void cmul_vec(double* a, const double* b, std::size_t pairs) {
  for (std::size_t k = 0; k + 4 <= pairs; k += 4) {
    const __m512d va = Io::load(a + 2 * k);
    const __m512d vb = Io::load(b + 2 * k);
    const __m512d bre = _mm512_movedup_pd(vb);
    const __m512d bim = _mm512_permute_pd(vb, 0xFF);
    const __m512d asw = _mm512_permute_pd(va, 0x55);
    // fmaddsub: even lanes a*b - c, odd lanes a*b + c (one rounding).
    const __m512d t2 = _mm512_mul_pd(asw, bim);
    Io::store(a + 2 * k, _mm512_fmaddsub_pd(va, bre, t2));
  }
}

void cmul(cplx* a, const cplx* b, std::size_t n) {
  auto* ad = reinterpret_cast<double*>(a);
  const auto* bd = reinterpret_cast<const double*>(b);
  const std::size_t nv = n & ~std::size_t{3};
  if (aligned64(ad) && aligned64(bd)) {
    cmul_vec<IoAligned>(ad, bd, nv);
  } else {
    cmul_vec<IoUnaligned>(ad, bd, nv);
  }
  for (std::size_t k = nv; k < n; ++k) a[k] *= b[k];
}

template <class Io>
void csquare_vec(double* a, std::size_t pairs) {
  // cmul_vec with both factors taken from the single load: identical
  // shuffle/fmaddsub sequence, so it matches cmul(a, a) lane for lane.
  for (std::size_t k = 0; k + 4 <= pairs; k += 4) {
    const __m512d va = Io::load(a + 2 * k);
    const __m512d bre = _mm512_movedup_pd(va);
    const __m512d bim = _mm512_permute_pd(va, 0xFF);
    const __m512d asw = _mm512_permute_pd(va, 0x55);
    const __m512d t2 = _mm512_mul_pd(asw, bim);
    Io::store(a + 2 * k, _mm512_fmaddsub_pd(va, bre, t2));
  }
}

void csquare(cplx* a, std::size_t n) {
  auto* ad = reinterpret_cast<double*>(a);
  const std::size_t nv = n & ~std::size_t{3};
  if (aligned64(ad)) {
    csquare_vec<IoAligned>(ad, nv);
  } else {
    csquare_vec<IoUnaligned>(ad, nv);
  }
  for (std::size_t k = nv; k < n; ++k) a[k] *= a[k];
}

// ------------------------------------------- small-tap correlation sweeps

void correlate_taps(const double* in, const double* taps, std::size_t ntaps,
                    double* out, std::size_t n) {
  std::size_t j = 0;
  for (; j + 8 <= n; j += 8) {
    __m512d acc = _mm512_setzero_pd();
    for (std::size_t m = 0; m < ntaps; ++m)
      acc = _mm512_fmadd_pd(_mm512_set1_pd(taps[m]),
                            _mm512_loadu_pd(in + j + m), acc);
    _mm512_storeu_pd(out + j, acc);
  }
  for (; j < n; ++j) {
    double acc = 0.0;
    for (std::size_t m = 0; m < ntaps; ++m) acc += taps[m] * in[j + m];
    out[j] = acc;
  }
}

void stencil3(const double* in, double b, double c, double a, double* out,
              std::size_t n) {
  const __m512d vb = _mm512_set1_pd(b);
  const __m512d vc = _mm512_set1_pd(c);
  const __m512d va = _mm512_set1_pd(a);
  std::size_t j = 0;
  for (; j + 8 <= n; j += 8) {
    __m512d acc = _mm512_mul_pd(vb, _mm512_loadu_pd(in + j));
    acc = _mm512_fmadd_pd(vc, _mm512_loadu_pd(in + j + 1), acc);
    acc = _mm512_fmadd_pd(va, _mm512_loadu_pd(in + j + 2), acc);
    _mm512_storeu_pd(out + j, acc);
  }
  for (; j < n; ++j) out[j] = b * in[j] + c * in[j + 1] + a * in[j + 2];
}

void deinterleave_rev(const cplx* z, const std::uint32_t* rev, double* re,
                      double* im, std::size_t n) {
  const auto* zd = reinterpret_cast<const double*>(z);
  std::size_t i = 0;
  // Same cache-residency crossover as the AVX2 kernel: past L2, gathers
  // lose to the prefetch-friendly scalar loop.
  if (n > (std::size_t{1} << 14)) {
    avx2_impl::deinterleave_rev(z, rev, re, im, n);
    return;
  }
  for (; i + 8 <= n; i += 8) {
    __m256i idx =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(rev + i));
    idx = _mm256_slli_epi32(idx, 1);
    _mm512_storeu_pd(re + i, _mm512_i32gather_pd(idx, zd, 8));
    _mm512_storeu_pd(im + i, _mm512_i32gather_pd(idx, zd + 1, 8));
  }
  for (; i < n; ++i) {
    const cplx v = z[rev[i]];
    re[i] = v.real();
    im[i] = v.imag();
  }
}

void scale2(double* re, double* im, std::size_t n, double s) {
  const __m512d vs = _mm512_set1_pd(s);
  for (double* p : {re, im}) {
    std::size_t i = 0;
    if (aligned64(p)) {
      for (; i + 8 <= n; i += 8)
        _mm512_store_pd(p + i, _mm512_mul_pd(_mm512_load_pd(p + i), vs));
    } else {
      for (; i + 8 <= n; i += 8)
        _mm512_storeu_pd(p + i, _mm512_mul_pd(_mm512_loadu_pd(p + i), vs));
    }
    for (; i < n; ++i) p[i] *= s;
  }
}

// ------------------------------------------------------------ FFT stages

// Same large-stage twiddle strategy as the AVX2 kernel: past this
// half-size, compute W^2j / W^3j from W^j in registers instead of
// streaming the cold 48h-byte twiddle block.
constexpr std::size_t kComputeTwiddleH = 2048;

template <class Io, bool ComputeW>
void radix4_vec(double* re, double* im, std::size_t n, std::size_t h,
                const double* wsoa, bool inverse) {
  const double* w1re = wsoa;
  const double* w1im = wsoa + h;
  const double* w2re = wsoa + 2 * h;
  const double* w2im = wsoa + 3 * h;
  const double* w3re = wsoa + 4 * h;
  const double* w3im = wsoa + 5 * h;
  const __m512d conj_mask =
      inverse ? _mm512_set1_pd(-0.0) : _mm512_setzero_pd();
  const __m512d rot_mask =
      inverse ? _mm512_setzero_pd() : _mm512_set1_pd(-0.0);
  const std::size_t step = 4 * h;
  for (std::size_t base = 0; base < n; base += step) {
    for (std::size_t j = 0; j < h; j += 8) {
      const std::size_t ia = base + j;
      const std::size_t ib = ia + h;
      const std::size_t ic = ia + 2 * h;
      const std::size_t id = ia + 3 * h;
      const __m512d w1r = _mm512_loadu_pd(w1re + j);
      const __m512d w1i = _mm512_xor_pd(_mm512_loadu_pd(w1im + j), conj_mask);
      __m512d w2r, w2i, w3r, w3i;
      if constexpr (ComputeW) {
        w2r = _mm512_fmsub_pd(w1r, w1r, _mm512_mul_pd(w1i, w1i));
        w2i = _mm512_fmadd_pd(w1r, w1i, _mm512_mul_pd(w1i, w1r));
        w3r = _mm512_fmsub_pd(w2r, w1r, _mm512_mul_pd(w2i, w1i));
        w3i = _mm512_fmadd_pd(w2r, w1i, _mm512_mul_pd(w2i, w1r));
      } else {
        w2r = _mm512_loadu_pd(w2re + j);
        w2i = _mm512_xor_pd(_mm512_loadu_pd(w2im + j), conj_mask);
        w3r = _mm512_loadu_pd(w3re + j);
        w3i = _mm512_xor_pd(_mm512_loadu_pd(w3im + j), conj_mask);
      }
      const __m512d ar = Io::load(re + ia), ai = Io::load(im + ia);
      const __m512d br = Io::load(re + ib), bi = Io::load(im + ib);
      const __m512d cr = Io::load(re + ic), ci = Io::load(im + ic);
      const __m512d dr = Io::load(re + id), di = Io::load(im + id);
      const __m512d bbr =
          _mm512_fmsub_pd(br, w2r, _mm512_mul_pd(bi, w2i));
      const __m512d bbi =
          _mm512_fmadd_pd(br, w2i, _mm512_mul_pd(bi, w2r));
      const __m512d ccr =
          _mm512_fmsub_pd(cr, w1r, _mm512_mul_pd(ci, w1i));
      const __m512d cci =
          _mm512_fmadd_pd(cr, w1i, _mm512_mul_pd(ci, w1r));
      const __m512d ddr =
          _mm512_fmsub_pd(dr, w3r, _mm512_mul_pd(di, w3i));
      const __m512d ddi =
          _mm512_fmadd_pd(dr, w3i, _mm512_mul_pd(di, w3r));
      const __m512d a1r = _mm512_add_pd(ar, bbr);
      const __m512d a1i = _mm512_add_pd(ai, bbi);
      const __m512d b1r = _mm512_sub_pd(ar, bbr);
      const __m512d b1i = _mm512_sub_pd(ai, bbi);
      const __m512d sr = _mm512_add_pd(ccr, ddr);
      const __m512d si = _mm512_add_pd(cci, ddi);
      const __m512d itr = _mm512_xor_pd(_mm512_sub_pd(cci, ddi), conj_mask);
      const __m512d iti = _mm512_xor_pd(_mm512_sub_pd(ccr, ddr), rot_mask);
      Io::store(re + ia, _mm512_add_pd(a1r, sr));
      Io::store(im + ia, _mm512_add_pd(a1i, si));
      Io::store(re + ic, _mm512_sub_pd(a1r, sr));
      Io::store(im + ic, _mm512_sub_pd(a1i, si));
      Io::store(re + ib, _mm512_add_pd(b1r, itr));
      Io::store(im + ib, _mm512_add_pd(b1i, iti));
      Io::store(re + id, _mm512_sub_pd(b1r, itr));
      Io::store(im + id, _mm512_sub_pd(b1i, iti));
    }
  }
}

void radix4_pass(double* re, double* im, std::size_t n, std::size_t h,
                 const double* wsoa, bool inverse) {
  if (h < 8) {
    // h = 4 keeps 256-bit butterflies; h < 4 bottoms out in the scalar
    // loop inside the AVX2 entry.
    avx2_impl::radix4_pass(re, im, n, h, wsoa, inverse);
    return;
  }
  const bool aligned = aligned64(re) && aligned64(im);
  if (h >= kComputeTwiddleH) {
    if (aligned) {
      radix4_vec<IoAligned, true>(re, im, n, h, wsoa, inverse);
    } else {
      radix4_vec<IoUnaligned, true>(re, im, n, h, wsoa, inverse);
    }
  } else if (aligned) {
    radix4_vec<IoAligned, false>(re, im, n, h, wsoa, inverse);
  } else {
    radix4_vec<IoUnaligned, false>(re, im, n, h, wsoa, inverse);
  }
}

}  // namespace avx512_impl

namespace tables {

const Kernels avx512 = {
    avx512_impl::cmul,         avx512_impl::csquare,
    avx512_impl::correlate_taps, avx512_impl::stencil3,
    avx2_impl::deinterleave,   avx2_impl::interleave,
    avx512_impl::deinterleave_rev,
    avx512_impl::scale2,       avx2_impl::radix2_pass,
    avx512_impl::radix4_pass,  avx2_impl::rfft_untangle,
    avx2_impl::rfft_retangle,
};

}  // namespace tables

}  // namespace amopt::simd
