// AVX2 kernel table: 4 doubles (2 complex) per 256-bit lane. Compiled with
// -mavx2 only (no -mfma), so the compiler cannot contract the multiply-add
// chains — every lane evaluates exactly the scalar table's expression, and
// divergence from the scalar level stays at the level of reassociation the
// scalar compiler itself may apply (see DESIGN.md §4 for the documented
// cross-path tolerance).
//
// Each kernel picks aligned (unmasked) loads when its operands sit on their
// natural 32-byte boundary — true for everything reached through the
// aligned_vector-backed FFT scratch and conv::Workspace — and transparently
// falls back to unaligned loads otherwise, so callers may pass arbitrary
// pointers (exercised by tests/test_simd.cpp).

#include <immintrin.h>

#include <cstdint>

#include "kernels_internal.hpp"

namespace amopt::simd {

namespace avx2_impl {

// Everything here lives at avx2_impl scope (not an anonymous namespace):
// the kernel entry points are declared in kernels_internal.hpp so the
// AVX-512 table can share the shuffle-bound ones.

[[nodiscard]] inline bool aligned32(const void* p) noexcept {
  return (reinterpret_cast<std::uintptr_t>(p) & 31u) == 0;
}

struct IoAligned {
  static __m256d load(const double* p) noexcept { return _mm256_load_pd(p); }
  static void store(double* p, __m256d v) noexcept { _mm256_store_pd(p, v); }
};
struct IoUnaligned {
  static __m256d load(const double* p) noexcept { return _mm256_loadu_pd(p); }
  static void store(double* p, __m256d v) noexcept { _mm256_storeu_pd(p, v); }
};

// ------------------------------------------------------------------ cmul

template <class Io>
void cmul_vec(double* a, const double* b, std::size_t pairs) {
  // Two complex per register: a = [ar0, ai0, ar1, ai1].
  for (std::size_t k = 0; k + 2 <= pairs; k += 2) {
    const __m256d va = Io::load(a + 2 * k);
    const __m256d vb = Io::load(b + 2 * k);
    const __m256d bre = _mm256_movedup_pd(vb);       // [br, br, ...]
    const __m256d bim = _mm256_permute_pd(vb, 0xF);  // [bi, bi, ...]
    const __m256d asw = _mm256_permute_pd(va, 0x5);  // [ai, ar, ...]
    const __m256d t1 = _mm256_mul_pd(va, bre);       // [ar*br, ai*br]
    const __m256d t2 = _mm256_mul_pd(asw, bim);      // [ai*bi, ar*bi]
    Io::store(a + 2 * k, _mm256_addsub_pd(t1, t2));
  }
}

void cmul(cplx* a, const cplx* b, std::size_t n) {
  auto* ad = reinterpret_cast<double*>(a);
  const auto* bd = reinterpret_cast<const double*>(b);
  if (aligned32(ad) && aligned32(bd)) {
    cmul_vec<IoAligned>(ad, bd, n & ~std::size_t{1});
  } else {
    cmul_vec<IoUnaligned>(ad, bd, n & ~std::size_t{1});
  }
  for (std::size_t k = n & ~std::size_t{1}; k < n; ++k) a[k] *= b[k];
}

template <class Io>
void csquare_vec(double* a, std::size_t pairs) {
  // cmul_vec with both factors read from the one load: same shuffles, same
  // multiply/addsub sequence, so the result matches cmul(a, a) lane for lane.
  for (std::size_t k = 0; k + 2 <= pairs; k += 2) {
    const __m256d va = Io::load(a + 2 * k);
    const __m256d bre = _mm256_movedup_pd(va);
    const __m256d bim = _mm256_permute_pd(va, 0xF);
    const __m256d asw = _mm256_permute_pd(va, 0x5);
    const __m256d t1 = _mm256_mul_pd(va, bre);
    const __m256d t2 = _mm256_mul_pd(asw, bim);
    Io::store(a + 2 * k, _mm256_addsub_pd(t1, t2));
  }
}

void csquare(cplx* a, std::size_t n) {
  auto* ad = reinterpret_cast<double*>(a);
  if (aligned32(ad)) {
    csquare_vec<IoAligned>(ad, n & ~std::size_t{1});
  } else {
    csquare_vec<IoUnaligned>(ad, n & ~std::size_t{1});
  }
  for (std::size_t k = n & ~std::size_t{1}; k < n; ++k) a[k] *= a[k];
}

// ------------------------------------------- small-tap correlation sweeps

void correlate_taps(const double* in, const double* taps, std::size_t ntaps,
                    double* out, std::size_t n) {
  std::size_t j = 0;
  // The shifted input loads are unaligned by construction (offset m), so
  // this kernel is uniformly unaligned; only the store could ever be
  // aligned and splitting that case is not worth a second loop.
  for (; j + 4 <= n; j += 4) {
    __m256d acc = _mm256_setzero_pd();
    for (std::size_t m = 0; m < ntaps; ++m) {
      const __m256d t = _mm256_set1_pd(taps[m]);
      acc = _mm256_add_pd(acc, _mm256_mul_pd(t, _mm256_loadu_pd(in + j + m)));
    }
    _mm256_storeu_pd(out + j, acc);
  }
  for (; j < n; ++j) {
    double acc = 0.0;
    for (std::size_t m = 0; m < ntaps; ++m) acc += taps[m] * in[j + m];
    out[j] = acc;
  }
}

namespace {
/// The 4-wide body of `correlate_taps` over [j0, j1) (same mul/add chain —
/// this TU builds without FMA, so each lane is the scalar expression).
inline void taps_sweep_range(const double* in, const double* taps,
                             std::size_t ntaps, double* out, std::size_t j0,
                             std::size_t j1) {
  std::size_t j = j0;
  for (; j + 4 <= j1; j += 4) {
    __m256d acc = _mm256_setzero_pd();
    for (std::size_t m = 0; m < ntaps; ++m) {
      const __m256d t = _mm256_set1_pd(taps[m]);
      acc = _mm256_add_pd(acc, _mm256_mul_pd(t, _mm256_loadu_pd(in + j + m)));
    }
    _mm256_storeu_pd(out + j, acc);
  }
  for (; j < j1; ++j) {
    double acc = 0.0;
    for (std::size_t m = 0; m < ntaps; ++m) acc += taps[m] * in[j + m];
    out[j] = acc;
  }
}
}  // namespace

void correlate_taps_2row(const double* in, const double* taps,
                         std::size_t ntaps, double* mid, double* out,
                         std::size_t n_mid, std::size_t n_out) {
  two_row_sweep_driver(
      in, taps, ntaps, mid, out, n_mid, n_out,
      [&](const double* src, double* dst, std::size_t j0, std::size_t j1) {
        taps_sweep_range(src, taps, ntaps, dst, j0, j1);
      });
}

void stencil3(const double* in, double b, double c, double a, double* out,
              std::size_t n) {
  const __m256d vb = _mm256_set1_pd(b);
  const __m256d vc = _mm256_set1_pd(c);
  const __m256d va = _mm256_set1_pd(a);
  std::size_t j = 0;
  for (; j + 4 <= n; j += 4) {
    const __m256d lo = _mm256_mul_pd(vb, _mm256_loadu_pd(in + j));
    const __m256d mid = _mm256_mul_pd(vc, _mm256_loadu_pd(in + j + 1));
    const __m256d hi = _mm256_mul_pd(va, _mm256_loadu_pd(in + j + 2));
    _mm256_storeu_pd(out + j, _mm256_add_pd(_mm256_add_pd(lo, mid), hi));
  }
  for (; j < n; ++j) out[j] = b * in[j] + c * in[j + 1] + a * in[j + 2];
}

namespace {
/// The 4-wide body of `stencil3` over [j0, j1): greedy vectors from j0 plus
/// a scalar tail, so chunks that start on the alignment grid reproduce the
/// monolithic sweep's vector/scalar partition exactly.
inline void stencil3_range(const double* in, double b, double c, double a,
                           double* out, std::size_t j0, std::size_t j1) {
  const __m256d vb = _mm256_set1_pd(b);
  const __m256d vc = _mm256_set1_pd(c);
  const __m256d va = _mm256_set1_pd(a);
  std::size_t j = j0;
  for (; j + 4 <= j1; j += 4) {
    const __m256d lo = _mm256_mul_pd(vb, _mm256_loadu_pd(in + j));
    const __m256d mid = _mm256_mul_pd(vc, _mm256_loadu_pd(in + j + 1));
    const __m256d hi = _mm256_mul_pd(va, _mm256_loadu_pd(in + j + 2));
    _mm256_storeu_pd(out + j, _mm256_add_pd(_mm256_add_pd(lo, mid), hi));
  }
  for (; j < j1; ++j) out[j] = b * in[j] + c * in[j + 1] + a * in[j + 2];
}
}  // namespace

void stencil3_2row(const double* in, double b, double c, double a, double* mid,
                   double* out, std::size_t n_mid, std::size_t n_out) {
  two_row_sweep_driver(
      in, nullptr, 3, mid, out, n_mid, n_out,
      [&](const double* src, double* dst, std::size_t j0, std::size_t j1) {
        stencil3_range(src, b, c, a, dst, j0, j1);
      });
}

// --------------------------------------- boundary-engine quadrature loops

void bs_dpm(const double* logz, const double* drift_t, const double* inv_vs,
            const double* half_vs, double* dp, double* dm, std::size_t n) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d base =
        _mm256_mul_pd(_mm256_add_pd(_mm256_loadu_pd(logz + i),
                                    _mm256_loadu_pd(drift_t + i)),
                      _mm256_loadu_pd(inv_vs + i));
    const __m256d h = _mm256_loadu_pd(half_vs + i);
    _mm256_storeu_pd(dp + i, _mm256_add_pd(base, h));
    _mm256_storeu_pd(dm + i, _mm256_sub_pd(base, h));
  }
  for (; i < n; ++i) {
    const double base = (logz[i] + drift_t[i]) * inv_vs[i];
    dp[i] = base + half_vs[i];
    dm[i] = base - half_vs[i];
  }
}

void norm_cdf(const double* x, double* out, std::size_t n) {
  namespace pd = phi_detail;
  const __m256d sign_mask = _mm256_set1_pd(-0.0);
  const __m256d one = _mm256_set1_pd(1.0);
  const __m256d half = _mm256_set1_pd(0.5);
  std::size_t i = 0;
  // Each step is the mul/add/div sequence of phi_detail::phi_reference; no
  // FMA in this TU, so every lane carries the scalar bits.
  for (; i + 4 <= n; i += 4) {
    const __m256d vx = _mm256_loadu_pd(x + i);
    const __m256d z = _mm256_mul_pd(_mm256_andnot_pd(sign_mask, vx),
                                    _mm256_set1_pd(pd::kInvSqrt2));
    const __m256d t = _mm256_div_pd(
        one, _mm256_add_pd(one, _mm256_mul_pd(_mm256_set1_pd(pd::kP), z)));
    __m256d poly = _mm256_set1_pd(pd::kA5);
    poly = _mm256_add_pd(_mm256_mul_pd(poly, t), _mm256_set1_pd(pd::kA4));
    poly = _mm256_add_pd(_mm256_mul_pd(poly, t), _mm256_set1_pd(pd::kA3));
    poly = _mm256_add_pd(_mm256_mul_pd(poly, t), _mm256_set1_pd(pd::kA2));
    poly = _mm256_add_pd(_mm256_mul_pd(poly, t), _mm256_set1_pd(pd::kA1));
    poly = _mm256_mul_pd(poly, t);
    // exp(-z^2), range-reduced: y = k ln2 + r, e^y = 2^k P(r).
    const __m256d y = _mm256_max_pd(
        _mm256_xor_pd(_mm256_mul_pd(z, z), sign_mask),
        _mm256_set1_pd(pd::kExpFloor));
    const __m256d k = _mm256_round_pd(
        _mm256_mul_pd(y, _mm256_set1_pd(pd::kLog2E)),
        _MM_FROUND_TO_NEAREST_INT | _MM_FROUND_NO_EXC);
    const __m256d r = _mm256_sub_pd(
        _mm256_sub_pd(y, _mm256_mul_pd(k, _mm256_set1_pd(pd::kLn2Hi))),
        _mm256_mul_pd(k, _mm256_set1_pd(pd::kLn2Lo)));
    __m256d p = _mm256_set1_pd(pd::kC[11]);
    for (int c = 10; c >= 0; --c)
      p = _mm256_add_pd(_mm256_mul_pd(p, r), _mm256_set1_pd(pd::kC[c]));
    const __m256i kq = _mm256_cvtepi32_epi64(_mm256_cvtpd_epi32(k));
    const __m256i bits = _mm256_slli_epi64(
        _mm256_add_epi64(kq, _mm256_set1_epi64x(1023)), 52);
    const __m256d e = _mm256_mul_pd(p, _mm256_castsi256_pd(bits));
    const __m256d tail = _mm256_mul_pd(_mm256_mul_pd(half, poly), e);
    const __m256d ge = _mm256_cmp_pd(vx, _mm256_setzero_pd(), _CMP_GE_OQ);
    _mm256_storeu_pd(out + i,
                     _mm256_blendv_pd(tail, _mm256_sub_pd(one, tail), ge));
  }
  for (; i < n; ++i) out[i] = pd::phi_reference(x[i]);
}

// ------------------------------------------------- SoA layout conversions

template <class Io>
void deinterleave_vec(const double* z, double* re, double* im,
                      std::size_t quads) {
  for (std::size_t i = 0; i + 4 <= quads * 4; i += 4) {
    const __m256d z0 = Io::load(z + 2 * i);      // [r0, i0, r1, i1]
    const __m256d z1 = Io::load(z + 2 * i + 4);  // [r2, i2, r3, i3]
    const __m256d t0 = _mm256_permute2f128_pd(z0, z1, 0x20);  // [r0,i0,r2,i2]
    const __m256d t1 = _mm256_permute2f128_pd(z0, z1, 0x31);  // [r1,i1,r3,i3]
    Io::store(re + i, _mm256_unpacklo_pd(t0, t1));
    Io::store(im + i, _mm256_unpackhi_pd(t0, t1));
  }
}

void deinterleave(const cplx* z, double* re, double* im, std::size_t n) {
  const auto* zd = reinterpret_cast<const double*>(z);
  const std::size_t nv = n & ~std::size_t{3};
  if (aligned32(zd) && aligned32(re) && aligned32(im)) {
    deinterleave_vec<IoAligned>(zd, re, im, nv / 4);
  } else {
    deinterleave_vec<IoUnaligned>(zd, re, im, nv / 4);
  }
  for (std::size_t i = nv; i < n; ++i) {
    re[i] = z[i].real();
    im[i] = z[i].imag();
  }
}

template <class Io>
void interleave_vec(const double* re, const double* im, double* z,
                    std::size_t quads) {
  for (std::size_t i = 0; i + 4 <= quads * 4; i += 4) {
    const __m256d vr = Io::load(re + i);
    const __m256d vi = Io::load(im + i);
    const __m256d t0 = _mm256_unpacklo_pd(vr, vi);  // [r0, i0, r2, i2]
    const __m256d t1 = _mm256_unpackhi_pd(vr, vi);  // [r1, i1, r3, i3]
    Io::store(z + 2 * i, _mm256_permute2f128_pd(t0, t1, 0x20));
    Io::store(z + 2 * i + 4, _mm256_permute2f128_pd(t0, t1, 0x31));
  }
}

void interleave(const double* re, const double* im, cplx* z, std::size_t n) {
  auto* zd = reinterpret_cast<double*>(z);
  const std::size_t nv = n & ~std::size_t{3};
  if (aligned32(zd) && aligned32(re) && aligned32(im)) {
    interleave_vec<IoAligned>(re, im, zd, nv / 4);
  } else {
    interleave_vec<IoUnaligned>(re, im, zd, nv / 4);
  }
  for (std::size_t i = nv; i < n; ++i) z[i] = cplx{re[i], im[i]};
}

template <class Io>
void interleave_scaled_vec(const double* re, const double* im, double* z,
                           std::size_t quads, double s) {
  const __m256d vs = _mm256_set1_pd(s);
  for (std::size_t i = 0; i + 4 <= quads * 4; i += 4) {
    const __m256d vr = _mm256_mul_pd(Io::load(re + i), vs);
    const __m256d vi = _mm256_mul_pd(Io::load(im + i), vs);
    const __m256d t0 = _mm256_unpacklo_pd(vr, vi);
    const __m256d t1 = _mm256_unpackhi_pd(vr, vi);
    Io::store(z + 2 * i, _mm256_permute2f128_pd(t0, t1, 0x20));
    Io::store(z + 2 * i + 4, _mm256_permute2f128_pd(t0, t1, 0x31));
  }
}

void interleave_scaled(const double* re, const double* im, cplx* z,
                       std::size_t n, double s) {
  auto* zd = reinterpret_cast<double*>(z);
  const std::size_t nv = n & ~std::size_t{3};
  if (aligned32(zd) && aligned32(re) && aligned32(im)) {
    interleave_scaled_vec<IoAligned>(re, im, zd, nv / 4, s);
  } else {
    interleave_scaled_vec<IoUnaligned>(re, im, zd, nv / 4, s);
  }
  for (std::size_t i = nv; i < n; ++i) z[i] = cplx{re[i] * s, im[i] * s};
}

void deinterleave_rev(const cplx* z, const std::uint32_t* rev, double* re,
                      double* im, std::size_t n) {
  const auto* zd = reinterpret_cast<const double*>(z);
  std::size_t i = 0;
  // Hardware gathers win while the permuted source stays cache-resident;
  // once it spills past L2 every gathered lane is an independent miss and
  // the plain scalar loop (which the prefetcher can at least overlap) is
  // faster — measured crossover around 2^14 complex on AVX2 hosts.
  if (n > (std::size_t{1} << 14)) {
    for (; i < n; ++i) {
      const cplx v = z[rev[i]];
      re[i] = v.real();
      im[i] = v.imag();
    }
    return;
  }
  // Gathered loads turn the bit-reversal's random reads into 4-wide
  // hardware gathers; the sequential stores are plain vector stores.
  for (; i + 4 <= n; i += 4) {
    __m128i idx =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(rev + i));
    idx = _mm_slli_epi32(idx, 1);  // element r lives at double offset 2r
    _mm256_storeu_pd(re + i, _mm256_i32gather_pd(zd, idx, 8));
    _mm256_storeu_pd(im + i, _mm256_i32gather_pd(zd + 1, idx, 8));
  }
  for (; i < n; ++i) {
    const cplx v = z[rev[i]];
    re[i] = v.real();
    im[i] = v.imag();
  }
}

void scale2(double* re, double* im, std::size_t n, double s) {
  const __m256d vs = _mm256_set1_pd(s);
  for (double* p : {re, im}) {
    std::size_t i = 0;
    if (aligned32(p)) {
      for (; i + 4 <= n; i += 4)
        _mm256_store_pd(p + i, _mm256_mul_pd(_mm256_load_pd(p + i), vs));
    } else {
      for (; i + 4 <= n; i += 4)
        _mm256_storeu_pd(p + i, _mm256_mul_pd(_mm256_loadu_pd(p + i), vs));
    }
    for (; i < n; ++i) p[i] *= s;
  }
}

// ------------------------------------------------------------ FFT stages

template <class Io>
void radix2_vec(double* p, std::size_t n) {
  // Butterflies live on (even, odd) element pairs inside one array.
  for (std::size_t base = 0; base + 4 <= n; base += 4) {
    const __m256d v = Io::load(p + base);            // [x0, x1, x2, x3]
    const __m256d sw = _mm256_permute_pd(v, 0x5);    // [x1, x0, x3, x2]
    const __m256d sum = _mm256_add_pd(v, sw);        // [.., x0+x1, ..]
    const __m256d dif = _mm256_sub_pd(sw, v);        // [.., x0-x1, ..]
    Io::store(p + base, _mm256_blend_pd(sum, dif, 0xA));
  }
}

void radix2_pass(double* re, double* im, std::size_t n) {
  const std::size_t nv = n & ~std::size_t{3};
  for (double* p : {re, im}) {
    if (aligned32(p)) {
      radix2_vec<IoAligned>(p, nv);
    } else {
      radix2_vec<IoUnaligned>(p, nv);
    }
    for (std::size_t base = nv; base < n; base += 2) {
      const double t = p[base + 1];
      p[base + 1] = p[base] - t;
      p[base] += t;
    }
  }
}

// Above this half-size one stage's SoA twiddle block (48h bytes) no longer
// sits in L1/L2, so streaming it costs as much as the data itself; compute
// W^2j, W^3j from W^j in registers instead (ComputeW) — a few extra
// multiplies against four cold-memory loads per butterfly. This TU has no
// FMA, so the in-register powers cost 16 multiplies per lane group and the
// crossover stays high; the AVX-512 table (FMA) switches earlier.
constexpr std::size_t kComputeTwiddleH = 2048;

template <class Io, bool ComputeW>
void radix4_vec(double* re, double* im, std::size_t n, std::size_t h,
                const double* wsoa, bool inverse) {
  const double* w1re = wsoa;
  const double* w1im = wsoa + h;
  const double* w2re = wsoa + 2 * h;
  const double* w2im = wsoa + 3 * h;
  const double* w3re = wsoa + 4 * h;
  const double* w3im = wsoa + 5 * h;
  // Twiddle conjugation (inverse) = sign flip on the imaginary halves; the
  // same mask also selects the +/- i rotation direction below.
  const __m256d conj_mask =
      inverse ? _mm256_set1_pd(-0.0) : _mm256_setzero_pd();
  const __m256d rot_mask =
      inverse ? _mm256_setzero_pd() : _mm256_set1_pd(-0.0);
  const std::size_t step = 4 * h;
  for (std::size_t base = 0; base < n; base += step) {
    for (std::size_t j = 0; j < h; j += 4) {
      const std::size_t ia = base + j;
      const std::size_t ib = ia + h;
      const std::size_t ic = ia + 2 * h;
      const std::size_t id = ia + 3 * h;
      const __m256d w1r = _mm256_loadu_pd(w1re + j);
      const __m256d w1i = _mm256_xor_pd(_mm256_loadu_pd(w1im + j), conj_mask);
      __m256d w2r, w2i, w3r, w3i;
      if constexpr (ComputeW) {
        // W^2 = W*W, W^3 = W^2*W (conjugation is multiplicative, so the
        // already-conjugated w1 yields conjugated powers on the inverse).
        w2r = _mm256_sub_pd(_mm256_mul_pd(w1r, w1r),
                            _mm256_mul_pd(w1i, w1i));
        w2i = _mm256_add_pd(_mm256_mul_pd(w1r, w1i),
                            _mm256_mul_pd(w1i, w1r));
        w3r = _mm256_sub_pd(_mm256_mul_pd(w2r, w1r),
                            _mm256_mul_pd(w2i, w1i));
        w3i = _mm256_add_pd(_mm256_mul_pd(w2r, w1i),
                            _mm256_mul_pd(w2i, w1r));
      } else {
        w2r = _mm256_loadu_pd(w2re + j);
        w2i = _mm256_xor_pd(_mm256_loadu_pd(w2im + j), conj_mask);
        w3r = _mm256_loadu_pd(w3re + j);
        w3i = _mm256_xor_pd(_mm256_loadu_pd(w3im + j), conj_mask);
      }
      const __m256d ar = Io::load(re + ia), ai = Io::load(im + ia);
      const __m256d br = Io::load(re + ib), bi = Io::load(im + ib);
      const __m256d cr = Io::load(re + ic), ci = Io::load(im + ic);
      const __m256d dr = Io::load(re + id), di = Io::load(im + id);
      // bb = b W^2j, cc = c W^j, dd = d W^3j
      const __m256d bbr = _mm256_sub_pd(_mm256_mul_pd(br, w2r),
                                        _mm256_mul_pd(bi, w2i));
      const __m256d bbi = _mm256_add_pd(_mm256_mul_pd(br, w2i),
                                        _mm256_mul_pd(bi, w2r));
      const __m256d ccr = _mm256_sub_pd(_mm256_mul_pd(cr, w1r),
                                        _mm256_mul_pd(ci, w1i));
      const __m256d cci = _mm256_add_pd(_mm256_mul_pd(cr, w1i),
                                        _mm256_mul_pd(ci, w1r));
      const __m256d ddr = _mm256_sub_pd(_mm256_mul_pd(dr, w3r),
                                        _mm256_mul_pd(di, w3i));
      const __m256d ddi = _mm256_add_pd(_mm256_mul_pd(dr, w3i),
                                        _mm256_mul_pd(di, w3r));
      const __m256d a1r = _mm256_add_pd(ar, bbr);
      const __m256d a1i = _mm256_add_pd(ai, bbi);
      const __m256d b1r = _mm256_sub_pd(ar, bbr);
      const __m256d b1i = _mm256_sub_pd(ai, bbi);
      const __m256d sr = _mm256_add_pd(ccr, ddr);
      const __m256d si = _mm256_add_pd(cci, ddi);
      // it = -i(cc - dd) forward, +i(cc - dd) inverse
      const __m256d itr = _mm256_xor_pd(_mm256_sub_pd(cci, ddi), conj_mask);
      const __m256d iti = _mm256_xor_pd(_mm256_sub_pd(ccr, ddr), rot_mask);
      Io::store(re + ia, _mm256_add_pd(a1r, sr));
      Io::store(im + ia, _mm256_add_pd(a1i, si));
      Io::store(re + ic, _mm256_sub_pd(a1r, sr));
      Io::store(im + ic, _mm256_sub_pd(a1i, si));
      Io::store(re + ib, _mm256_add_pd(b1r, itr));
      Io::store(im + ib, _mm256_add_pd(b1i, iti));
      Io::store(re + id, _mm256_sub_pd(b1r, itr));
      Io::store(im + id, _mm256_sub_pd(b1i, iti));
    }
  }
}

/// 4x4 in-register transpose: rows r0..r3 -> columns c0..c3.
inline void transpose4(__m256d r0, __m256d r1, __m256d r2, __m256d r3,
                       __m256d& c0, __m256d& c1, __m256d& c2, __m256d& c3) {
  const __m256d t0 = _mm256_unpacklo_pd(r0, r1);
  const __m256d t1 = _mm256_unpackhi_pd(r0, r1);
  const __m256d t2 = _mm256_unpacklo_pd(r2, r3);
  const __m256d t3 = _mm256_unpackhi_pd(r2, r3);
  c0 = _mm256_permute2f128_pd(t0, t2, 0x20);
  c1 = _mm256_permute2f128_pd(t1, t3, 0x20);
  c2 = _mm256_permute2f128_pd(t0, t2, 0x31);
  c3 = _mm256_permute2f128_pd(t1, t3, 0x31);
}

/// The h = 1 stage (unit twiddles, butterflies on 4 consecutive elements):
/// transpose four blocks into SoA-of-blocks registers, butterfly
/// vertically, transpose back. This stage touches every element, so
/// leaving it scalar would cap the whole transform's speedup.
template <class Io>
void radix4_h1(double* re, double* im, std::size_t n, bool inverse) {
  const __m256d conj_mask =
      inverse ? _mm256_set1_pd(-0.0) : _mm256_setzero_pd();
  const __m256d rot_mask =
      inverse ? _mm256_setzero_pd() : _mm256_set1_pd(-0.0);
  std::size_t base = 0;
  for (; base + 16 <= n; base += 16) {
    __m256d ar, br, cr, dr, ai, bi, ci, di;
    transpose4(Io::load(re + base), Io::load(re + base + 4),
               Io::load(re + base + 8), Io::load(re + base + 12), ar, br, cr,
               dr);
    transpose4(Io::load(im + base), Io::load(im + base + 4),
               Io::load(im + base + 8), Io::load(im + base + 12), ai, bi, ci,
               di);
    const __m256d a1r = _mm256_add_pd(ar, br);
    const __m256d a1i = _mm256_add_pd(ai, bi);
    const __m256d b1r = _mm256_sub_pd(ar, br);
    const __m256d b1i = _mm256_sub_pd(ai, bi);
    const __m256d sr = _mm256_add_pd(cr, dr);
    const __m256d si = _mm256_add_pd(ci, di);
    const __m256d itr = _mm256_xor_pd(_mm256_sub_pd(ci, di), conj_mask);
    const __m256d iti = _mm256_xor_pd(_mm256_sub_pd(cr, dr), rot_mask);
    __m256d o0, o1, o2, o3;
    transpose4(_mm256_add_pd(a1r, sr), _mm256_add_pd(b1r, itr),
               _mm256_sub_pd(a1r, sr), _mm256_sub_pd(b1r, itr), o0, o1, o2,
               o3);
    Io::store(re + base, o0);
    Io::store(re + base + 4, o1);
    Io::store(re + base + 8, o2);
    Io::store(re + base + 12, o3);
    transpose4(_mm256_add_pd(a1i, si), _mm256_add_pd(b1i, iti),
               _mm256_sub_pd(a1i, si), _mm256_sub_pd(b1i, iti), o0, o1, o2,
               o3);
    Io::store(im + base, o0);
    Io::store(im + base + 4, o1);
    Io::store(im + base + 8, o2);
    Io::store(im + base + 12, o3);
  }
  if (base < n) {
    const double w_unit[6] = {1.0, 0.0, 1.0, 0.0, 1.0, 0.0};
    tables::scalar.radix4_pass(re + base, im + base, n - base, 1, w_unit,
                               inverse);
  }
}

/// The h = 2 stage (only present in odd-log2 transforms, after the leading
/// radix-2 stage): butterflies live on 8-element blocks with j in {0, 1}.
/// Two blocks are processed per iteration through a 2x4 half-transpose —
/// 128-bit lane permutes gather the j-pairs of both blocks into one
/// register, so the whole stage runs the ordinary 4-wide butterfly with a
/// [w(0), w(1), w(0), w(1)] twiddle broadcast and no unpack traffic.
template <class Io>
void radix4_h2(double* re, double* im, std::size_t n, const double* wsoa,
               bool inverse) {
  const __m256d conj_mask =
      inverse ? _mm256_set1_pd(-0.0) : _mm256_setzero_pd();
  const __m256d rot_mask =
      inverse ? _mm256_setzero_pd() : _mm256_set1_pd(-0.0);
  // Six 2-element twiddle arrays; each broadcasts to both 128-bit lanes.
  const auto bcast2 = [](const double* p) {
    return _mm256_broadcast_pd(reinterpret_cast<const __m128d*>(p));
  };
  const __m256d w1r = bcast2(wsoa);
  const __m256d w1i = _mm256_xor_pd(bcast2(wsoa + 2), conj_mask);
  const __m256d w2r = bcast2(wsoa + 4);
  const __m256d w2i = _mm256_xor_pd(bcast2(wsoa + 6), conj_mask);
  const __m256d w3r = bcast2(wsoa + 8);
  const __m256d w3i = _mm256_xor_pd(bcast2(wsoa + 10), conj_mask);
  std::size_t base = 0;
  for (; base + 16 <= n; base += 16) {
    // Half-transpose: [a0 a1 b0 b1 | c0 c1 d0 d1] x 2 blocks into
    // per-operand registers [x0 x1 x0' x1'].
    const auto gather = [&](const double* p, __m256d& va, __m256d& vb,
                            __m256d& vc, __m256d& vd) {
      const __m256d r0 = Io::load(p);
      const __m256d r1 = Io::load(p + 4);
      const __m256d r2 = Io::load(p + 8);
      const __m256d r3 = Io::load(p + 12);
      va = _mm256_permute2f128_pd(r0, r2, 0x20);
      vb = _mm256_permute2f128_pd(r0, r2, 0x31);
      vc = _mm256_permute2f128_pd(r1, r3, 0x20);
      vd = _mm256_permute2f128_pd(r1, r3, 0x31);
    };
    __m256d ar, br, cr, dr, ai, bi, ci, di;
    gather(re + base, ar, br, cr, dr);
    gather(im + base, ai, bi, ci, di);
    const __m256d bbr = _mm256_sub_pd(_mm256_mul_pd(br, w2r),
                                      _mm256_mul_pd(bi, w2i));
    const __m256d bbi = _mm256_add_pd(_mm256_mul_pd(br, w2i),
                                      _mm256_mul_pd(bi, w2r));
    const __m256d ccr = _mm256_sub_pd(_mm256_mul_pd(cr, w1r),
                                      _mm256_mul_pd(ci, w1i));
    const __m256d cci = _mm256_add_pd(_mm256_mul_pd(cr, w1i),
                                      _mm256_mul_pd(ci, w1r));
    const __m256d ddr = _mm256_sub_pd(_mm256_mul_pd(dr, w3r),
                                      _mm256_mul_pd(di, w3i));
    const __m256d ddi = _mm256_add_pd(_mm256_mul_pd(dr, w3i),
                                      _mm256_mul_pd(di, w3r));
    const __m256d a1r = _mm256_add_pd(ar, bbr);
    const __m256d a1i = _mm256_add_pd(ai, bbi);
    const __m256d b1r = _mm256_sub_pd(ar, bbr);
    const __m256d b1i = _mm256_sub_pd(ai, bbi);
    const __m256d sr = _mm256_add_pd(ccr, ddr);
    const __m256d si = _mm256_add_pd(cci, ddi);
    const __m256d itr = _mm256_xor_pd(_mm256_sub_pd(cci, ddi), conj_mask);
    const __m256d iti = _mm256_xor_pd(_mm256_sub_pd(ccr, ddr), rot_mask);
    const auto scatter = [&](double* p, __m256d oa, __m256d ob, __m256d oc,
                             __m256d od) {
      Io::store(p, _mm256_permute2f128_pd(oa, ob, 0x20));
      Io::store(p + 4, _mm256_permute2f128_pd(oc, od, 0x20));
      Io::store(p + 8, _mm256_permute2f128_pd(oa, ob, 0x31));
      Io::store(p + 12, _mm256_permute2f128_pd(oc, od, 0x31));
    };
    scatter(re + base, _mm256_add_pd(a1r, sr), _mm256_add_pd(b1r, itr),
            _mm256_sub_pd(a1r, sr), _mm256_sub_pd(b1r, itr));
    scatter(im + base, _mm256_add_pd(a1i, si), _mm256_add_pd(b1i, iti),
            _mm256_sub_pd(a1i, si), _mm256_sub_pd(b1i, iti));
  }
  if (base < n) {  // odd trailing block (n a multiple of 8, not 16)
    tables::scalar.radix4_pass(re + base, im + base, n - base, 2, wsoa,
                               inverse);
  }
}

void radix4_pass(double* re, double* im, std::size_t n, std::size_t h,
                 const double* wsoa, bool inverse) {
  if (h == 1) {
    if (aligned32(re) && aligned32(im)) {
      radix4_h1<IoAligned>(re, im, n, inverse);
    } else {
      radix4_h1<IoUnaligned>(re, im, n, inverse);
    }
    return;
  }
  if (h == 2) {
    if (aligned32(re) && aligned32(im)) {
      radix4_h2<IoAligned>(re, im, n, wsoa, inverse);
    } else {
      radix4_h2<IoUnaligned>(re, im, n, wsoa, inverse);
    }
    return;
  }
  if (h < 4) {
    // h = 3 never occurs (half-sizes are powers of two); keep the scalar
    // fallback so the kernel stays total over its argument space.
    tables::scalar.radix4_pass(re, im, n, h, wsoa, inverse);
    return;
  }
  const bool aligned = aligned32(re) && aligned32(im);
  if (h >= kComputeTwiddleH) {
    if (aligned) {
      radix4_vec<IoAligned, true>(re, im, n, h, wsoa, inverse);
    } else {
      radix4_vec<IoUnaligned, true>(re, im, n, h, wsoa, inverse);
    }
  } else if (aligned) {
    radix4_vec<IoAligned, false>(re, im, n, h, wsoa, inverse);
  } else {
    radix4_vec<IoUnaligned, false>(re, im, n, h, wsoa, inverse);
  }
}

// ----------------------------------------------- R2C / C2R pair twiddles

/// Load 4 interleaved complex (unaligned) and split.
inline void load_split(const double* p, __m256d& re, __m256d& im) {
  const __m256d z0 = _mm256_loadu_pd(p);
  const __m256d z1 = _mm256_loadu_pd(p + 4);
  const __m256d t0 = _mm256_permute2f128_pd(z0, z1, 0x20);
  const __m256d t1 = _mm256_permute2f128_pd(z0, z1, 0x31);
  re = _mm256_unpacklo_pd(t0, t1);
  im = _mm256_unpackhi_pd(t0, t1);
}

inline void store_join(double* p, __m256d re, __m256d im) {
  const __m256d t0 = _mm256_unpacklo_pd(re, im);
  const __m256d t1 = _mm256_unpackhi_pd(re, im);
  _mm256_storeu_pd(p, _mm256_permute2f128_pd(t0, t1, 0x20));
  _mm256_storeu_pd(p + 4, _mm256_permute2f128_pd(t0, t1, 0x31));
}

inline __m256d reverse_lanes(__m256d v) {
  return _mm256_permute4x64_pd(v, _MM_SHUFFLE(0, 1, 2, 3));
}

void rfft_untangle(cplx* spec, const cplx* tw, std::size_t m) {
  auto* sd = reinterpret_cast<double*>(spec);
  const auto* td = reinterpret_cast<const double*>(tw);
  const __m256d half = _mm256_set1_pd(0.5);
  std::size_t k = 1, j = m - 1;
  for (; k + 7 <= j; k += 4, j -= 4) {
    __m256d kr, ki, jr, ji, twr, twi;
    load_split(sd + 2 * k, kr, ki);
    load_split(sd + 2 * (j - 3), jr, ji);
    jr = reverse_lanes(jr);  // lane l now holds index j - l
    ji = reverse_lanes(ji);
    load_split(td + 2 * k, twr, twi);
    // xe = (Z[k] + conj(Z[j]))/2, xo = (Z[k] - conj(Z[j]))/(2i)
    const __m256d xer = _mm256_mul_pd(half, _mm256_add_pd(kr, jr));
    const __m256d xei = _mm256_mul_pd(half, _mm256_sub_pd(ki, ji));
    const __m256d xor_ = _mm256_mul_pd(half, _mm256_add_pd(ki, ji));
    const __m256d xoi = _mm256_mul_pd(half, _mm256_sub_pd(jr, kr));
    // txo = t_k * xo
    const __m256d txr = _mm256_sub_pd(_mm256_mul_pd(twr, xor_),
                                      _mm256_mul_pd(twi, xoi));
    const __m256d txi = _mm256_add_pd(_mm256_mul_pd(twr, xoi),
                                      _mm256_mul_pd(twi, xor_));
    // spec[k] = xe + txo, spec[j] = conj(xe - txo)
    store_join(sd + 2 * k, _mm256_add_pd(xer, txr), _mm256_add_pd(xei, txi));
    const __m256d ojr = reverse_lanes(_mm256_sub_pd(xer, txr));
    const __m256d oji = reverse_lanes(_mm256_sub_pd(txi, xei));  // -(xei-txi)
    store_join(sd + 2 * (j - 3), ojr, oji);
  }
  for (; k < j; ++k, --j) {
    const cplx zk = spec[k], zj = spec[j];
    const cplx xe = 0.5 * (zk + std::conj(zj));
    const cplx xo = cplx{0.0, -0.5} * (zk - std::conj(zj));
    const cplx txo = tw[k] * xo;
    spec[k] = xe + txo;
    spec[j] = std::conj(xe - txo);
  }
}

void rfft_retangle(cplx* spec, const cplx* tw, std::size_t m) {
  auto* sd = reinterpret_cast<double*>(spec);
  const auto* td = reinterpret_cast<const double*>(tw);
  const __m256d half = _mm256_set1_pd(0.5);
  std::size_t k = 1, j = m - 1;
  for (; k + 7 <= j; k += 4, j -= 4) {
    __m256d kr, ki, jr, ji, twr, twi;
    load_split(sd + 2 * k, kr, ki);
    load_split(sd + 2 * (j - 3), jr, ji);
    jr = reverse_lanes(jr);
    ji = reverse_lanes(ji);
    load_split(td + 2 * k, twr, twi);
    // xe = (X[k] + conj(X[j]))/2, u = (X[k] - conj(X[j]))/2,
    // xo = u * conj(t_k)
    const __m256d xer = _mm256_mul_pd(half, _mm256_add_pd(kr, jr));
    const __m256d xei = _mm256_mul_pd(half, _mm256_sub_pd(ki, ji));
    const __m256d ur = _mm256_mul_pd(half, _mm256_sub_pd(kr, jr));
    const __m256d ui = _mm256_mul_pd(half, _mm256_add_pd(ki, ji));
    const __m256d xor_ = _mm256_add_pd(_mm256_mul_pd(ur, twr),
                                       _mm256_mul_pd(ui, twi));
    const __m256d xoi = _mm256_sub_pd(_mm256_mul_pd(ui, twr),
                                      _mm256_mul_pd(ur, twi));
    // Z[k] = xe + i xo, Z[j] = conj(xe) + i conj(xo)
    store_join(sd + 2 * k, _mm256_sub_pd(xer, xoi), _mm256_add_pd(xei, xor_));
    const __m256d ojr = reverse_lanes(_mm256_add_pd(xer, xoi));
    const __m256d oji = reverse_lanes(_mm256_sub_pd(xor_, xei));
    store_join(sd + 2 * (j - 3), ojr, oji);
  }
  for (; k < j; ++k, --j) {
    const cplx xk = spec[k], xj = spec[j];
    const cplx xe = 0.5 * (xk + std::conj(xj));
    const cplx xo = 0.5 * (xk - std::conj(xj)) * std::conj(tw[k]);
    spec[k] = xe + cplx{0.0, 1.0} * xo;
    spec[j] = std::conj(xe) + cplx{0.0, 1.0} * std::conj(xo);
  }
}

}  // namespace avx2_impl

namespace tables {

const Kernels avx2 = {
    avx2_impl::cmul,           avx2_impl::csquare,
    avx2_impl::correlate_taps, avx2_impl::correlate_taps_2row,
    avx2_impl::stencil3,       avx2_impl::stencil3_2row,
    avx2_impl::deinterleave,   avx2_impl::interleave,
    avx2_impl::interleave_scaled,
    avx2_impl::deinterleave_rev,
    avx2_impl::scale2,         avx2_impl::radix2_pass,
    avx2_impl::radix4_pass,    avx2_impl::rfft_untangle,
    avx2_impl::rfft_retangle,
    avx2_impl::bs_dpm,         avx2_impl::norm_cdf,
};

}  // namespace tables

}  // namespace amopt::simd
