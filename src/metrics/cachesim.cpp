#include "amopt/metrics/cachesim.hpp"

#include "amopt/common/assert.hpp"

namespace amopt::metrics {

CacheLevel::CacheLevel(CacheLevelConfig cfg)
    : n_sets_(cfg.size_bytes / (cfg.line_bytes * cfg.ways)), ways_(cfg.ways),
      tags_(n_sets_ * cfg.ways, kEmpty) {
  AMOPT_EXPECTS(n_sets_ >= 1 && ways_ >= 1);
  AMOPT_EXPECTS(cfg.size_bytes % (cfg.line_bytes * cfg.ways) == 0);
}

bool CacheLevel::access_line(std::uint64_t line_addr) {
  const std::size_t set = static_cast<std::size_t>(line_addr) % n_sets_;
  std::uint64_t* way = tags_.data() + set * ways_;
  // MRU-first linear scan; associativities are 8/16 so this is fast.
  for (std::size_t w = 0; w < ways_; ++w) {
    if (way[w] == line_addr) {
      // Move to front (LRU update).
      for (std::size_t k = w; k > 0; --k) way[k] = way[k - 1];
      way[0] = line_addr;
      return true;
    }
  }
  for (std::size_t k = ways_ - 1; k > 0; --k) way[k] = way[k - 1];
  way[0] = line_addr;
  return false;
}

void CacheLevel::clear() { tags_.assign(tags_.size(), kEmpty); }

CacheSim::CacheSim(CacheLevelConfig l1, CacheLevelConfig l2)
    : l1_(l1), l2_(l2), line_bytes_(l1.line_bytes) {
  AMOPT_EXPECTS(l1.line_bytes == l2.line_bytes);
}

void CacheSim::access(std::uint64_t addr, std::size_t bytes) {
  const std::uint64_t first = addr / line_bytes_;
  const std::uint64_t last = (addr + (bytes == 0 ? 0 : bytes - 1)) / line_bytes_;
  for (std::uint64_t line = first; line <= last; ++line) {
    ++stats_.accesses;
    if (!l1_.access_line(line)) {
      ++stats_.l1_misses;
      if (!l2_.access_line(line)) ++stats_.l2_misses;
    }
  }
}

void CacheSim::clear() {
  l1_.clear();
  l2_.clear();
}

}  // namespace amopt::metrics
