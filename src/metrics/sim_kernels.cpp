#include "amopt/metrics/sim_kernels.hpp"

#include <algorithm>
#include <complex>
#include <map>
#include <memory>
#include <set>
#include <vector>

#include "amopt/common/aligned.hpp"
#include "amopt/common/assert.hpp"
#include "amopt/pricing/boundary.hpp"
#include "amopt/pricing/bsm_fdm.hpp"

namespace amopt::metrics {

namespace {

using pricing::OptionSpec;

// ---------------------------------------------------------------------
// Exact re-executions of the loop algorithms over SimVec.
// ---------------------------------------------------------------------

/// Nested-loop lattice rollback, in place (Figure 1 pattern). `g` = 1 for
/// BOPM, 2 for TOPM (row width g*i, g+1 taps).
void sim_lattice_vanilla(CacheSim& sim, std::int64_t T, std::int64_t g) {
  SimVec<double> row(sim, static_cast<std::size_t>(g * T + g + 1), 1.0);
  for (std::int64_t i = T - 1; i >= 0; --i) {
    for (std::int64_t j = 0; j <= g * i; ++j) {
      double lin = 0.0;
      for (std::int64_t k = 0; k <= g; ++k)
        lin += row[static_cast<std::size_t>(j + k)];
      row[static_cast<std::size_t>(j)] = lin;  // payoff compare: no memory
    }
  }
}

/// QuantLib-style rollback: a fresh values vector per step (modeled as
/// alternating buffers, which is what the allocator effectively yields).
void sim_bopm_quantlib(CacheSim& sim, std::int64_t T) {
  SimVec<double> a(sim, static_cast<std::size_t>(T + 1), 1.0);
  SimVec<double> b(sim, static_cast<std::size_t>(T + 1), 1.0);
  bool flip = false;
  for (std::int64_t i = T - 1; i >= 0; --i) {
    auto& cur = flip ? b : a;
    auto& nxt = flip ? a : b;
    for (std::int64_t j = 0; j <= i; ++j)
      nxt[static_cast<std::size_t>(j)] = cur[static_cast<std::size_t>(j)] +
                                         cur[static_cast<std::size_t>(j + 1)];
    flip = !flip;
  }
}

/// Zubair split tiling (pass 1 trapezoids + pass 2 gap triangles) with the
/// power table tracked as memory traffic.
void sim_bopm_zubair(CacheSim& sim, std::int64_t T, std::int64_t W) {
  SimVec<double> G(sim, static_cast<std::size_t>(T + 2), 1.0);
  SimVec<double> up(sim, static_cast<std::size_t>(2 * T + 9), 1.0);
  const auto pay = [&](std::int64_t i, std::int64_t j) {
    return up[static_cast<std::size_t>(2 * j - i + T + 4)];
  };
  const std::int64_t n_tiles = (T + W) / W;
  std::vector<std::vector<double>> halo(static_cast<std::size_t>(n_tiles));
  std::int64_t i0 = T;
  while (i0 > 0) {
    const std::int64_t H = std::min<std::int64_t>(W - 1, i0);
    for (std::int64_t k = 0; k < n_tiles; ++k) {
      const std::int64_t lo = k * W;
      const std::int64_t hi = std::min((k + 1) * W - 1, T);
      auto& h = halo[static_cast<std::size_t>(k)];
      h.assign(static_cast<std::size_t>(H + 1), G[static_cast<std::size_t>(lo)]);
      if (lo > i0 - 1) continue;
      for (std::int64_t t = 1; t <= H; ++t) {
        const std::int64_t i = i0 - t;
        const std::int64_t jhi = std::min(hi - t, i);
        for (std::int64_t j = lo; j <= jhi; ++j) {
          const double lin = G[static_cast<std::size_t>(j)] +
                             G[static_cast<std::size_t>(j + 1)];
          G[static_cast<std::size_t>(j)] = std::max(lin, pay(i, j));
        }
        h[static_cast<std::size_t>(t)] = G[static_cast<std::size_t>(lo)];
      }
    }
    for (std::int64_t k = 0; k < n_tiles; ++k) {
      const std::int64_t hi = std::min((k + 1) * W - 1, T);
      if (hi >= T) continue;
      const auto& h = halo[static_cast<std::size_t>(k + 1)];
      for (std::int64_t t = 1; t <= H; ++t) {
        const std::int64_t i = i0 - t;
        const std::int64_t jlo = std::max(hi - t + 1, std::int64_t{0});
        const std::int64_t jhi = std::min(hi, i);
        for (std::int64_t j = jlo; j <= jhi; ++j) {
          const double right = (j + 1 <= hi)
                                   ? G[static_cast<std::size_t>(j + 1)]
                                   : h[static_cast<std::size_t>(t - 1)];
          const double lin = G[static_cast<std::size_t>(j)] + right;
          G[static_cast<std::size_t>(j)] = std::max(lin, pay(i, j));
        }
      }
    }
    i0 -= H;
  }
}

/// In-place projection sweep of the BSM grid with the payoff table tracked.
void sim_bsm_vanilla(CacheSim& sim, std::int64_t T) {
  const std::int64_t width = 2 * T + 11;
  SimVec<double> cur(sim, static_cast<std::size_t>(width), 1.0);
  SimVec<double> pay(sim, static_cast<std::size_t>(width), 1.0);
  for (std::int64_t n = 1; n <= T; ++n) {
    for (std::int64_t t = n; t <= width - 1 - n; ++t) {
      const double lin = cur[static_cast<std::size_t>(t - 1)] +
                         cur[static_cast<std::size_t>(t)] +
                         cur[static_cast<std::size_t>(t + 1)];
      cur[static_cast<std::size_t>(t)] =
          std::max(lin, pay[static_cast<std::size_t>(t)]);
    }
  }
}

// ---------------------------------------------------------------------
// FFT trace replay.
// ---------------------------------------------------------------------

/// Replays the memory behaviour of the FFT convolution pipelines over real
/// heap addresses. Since PR 3 the default model is the production R2C/C2R
/// real-input pipeline (conv::real_convolve_into): zero-padded real operand
/// buffers, two half-size complex forward transforms with their O(n)
/// untangle pair sweeps, the pointwise product over the n/2+1 non-redundant
/// bins, and one half-size inverse with its retangle sweep. The legacy
/// packed-complex model survives as `convolution_packed` so tests can
/// assert the retune actually shrank the modeled traffic. Twiddle tables
/// are cached per size exactly like fft::plan_for / real_plan_for, and work
/// buffers are reused per size (the Workspace arena in the real code).
class FftReplayer {
 public:
  explicit FftReplayer(CacheSim& sim) : sim_(sim) {}

  /// One full convolution through the R2C/C2R pipeline.
  void convolution(std::size_t n_in, std::size_t n_kernel,
                   std::size_t n_out) {
    const std::size_t full = n_in + n_kernel - 1;
    const std::size_t n = next_pow2(full);
    if (n < 4) {
      convolution_packed(n_in, n_kernel, n_out);  // degenerate tiny sizes
      return;
    }
    const std::size_t m = n / 2;
    SimVec<double>& ra = cached(real_a_, n);
    SimVec<double>& rb = cached(real_b_, n);
    SimVec<cplx>& sa = cached(spec_a_, m + 1);
    SimVec<cplx>& sb = cached(spec_b_, m + 1);
    SimVec<cplx>& tw = cached(half_tw_, m);      // half-plan stage twiddles
    SimVec<cplx>& rtw = cached(real_tw_, m / 2 + 1);  // RealPlan twiddles

    // Zero-padded operand packing (the writes into the arena buffers; the
    // reads of the caller-owned inputs are accounted by the caller's row
    // buffers, as before).
    for (std::size_t i = 0; i < n; ++i) ra[i] = i < n_in ? 1.0 : 0.0;
    for (std::size_t i = 0; i < n; ++i) rb[i] = i < n_kernel ? 1.0 : 0.0;

    forward_r2c(ra, sa, tw, rtw, m);
    forward_r2c(rb, sb, tw, rtw, m);
    for (std::size_t k = 0; k < m + 1; ++k) {  // pointwise product
      (void)sb[k];
      sa[k] *= cplx{0.5, 0.5};
    }
    inverse_c2r(sa, ra, tw, rtw, m);
    for (std::size_t i = 0; i < n_out; ++i) (void)ra[i];  // copy out
  }

  /// A solver-path correlation against the KernelCache's CACHED kernel
  /// spectrum (PR 4/5 production pipeline): the kernel transform is paid
  /// once per (kernel length, padded size) — modeled by building the cached
  /// bins on first touch — and every later convolution at that key runs
  /// just the input transform, the pointwise product against the cached
  /// bins, and the inverse (2 half-size transforms instead of 3). The input
  /// row is staged split-operand (PR 5), so no concatenated copy of the red
  /// prefix is modeled either.
  void correlation_spectral(std::size_t n_in, std::size_t n_kernel,
                            std::size_t n_out) {
    const std::size_t full = n_in + n_kernel - 1;
    const std::size_t n = next_pow2(full);
    if (n < 4) {
      convolution_packed(n_in, n_kernel, n_out);  // degenerate tiny sizes
      return;
    }
    const std::size_t m = n / 2;
    SimVec<double>& ra = cached(real_a_, n);
    SimVec<cplx>& sa = cached(spec_a_, m + 1);
    SimVec<cplx>& tw = cached(half_tw_, m);
    SimVec<cplx>& rtw = cached(real_tw_, m / 2 + 1);
    // The cached kernel spectrum, keyed like KernelCache's (h, log2 n):
    // first touch builds it (pack + one forward), later touches only read.
    const std::size_t key = (n_kernel << 24) | n;
    auto it = kspec_.find(key);
    if (it == kspec_.end()) {
      SimVec<double>& rb = cached(real_b_, n);
      for (std::size_t i = 0; i < n; ++i) rb[i] = i < n_kernel ? 1.0 : 0.0;
      SimVec<cplx>& sb = cached(spec_b_, m + 1);
      forward_r2c(rb, sb, tw, rtw, m);
      it = kspec_.emplace(key, std::make_unique<SimVec<cplx>>(sim_, m + 1))
               .first;
      for (std::size_t k = 0; k < m + 1; ++k) (*it->second)[k] = sb[k];
    }
    SimVec<cplx>& ks = *it->second;

    for (std::size_t i = 0; i < n; ++i) ra[i] = i < n_in ? 1.0 : 0.0;
    forward_r2c(ra, sa, tw, rtw, m);
    for (std::size_t k = 0; k < m + 1; ++k) {  // pointwise vs cached bins
      (void)ks[k];
      sa[k] *= cplx{0.5, 0.5};
    }
    inverse_c2r(sa, ra, tw, rtw, m);
    for (std::size_t i = 0; i < n_out; ++i) (void)ra[i];  // copy out
  }

  /// The seed's packed-complex two-for-one pipeline
  /// (conv::Policy::Path::fft_packed), kept for model-parity tests.
  void convolution_packed(std::size_t n_in, std::size_t n_kernel,
                          std::size_t n_out) {
    const std::size_t full = n_in + n_kernel - 1;
    const std::size_t n = next_pow2(full);
    SimVec<cplx>& z = cached(z_cache_, n);
    SimVec<cplx>& tw = cached(tw_cache_, n);
    for (std::size_t i = 0; i < n_in; ++i) z[i] = {1.0, 0.0};
    for (std::size_t i = 0; i < n_kernel; ++i) z[i] += cplx{0.0, 1.0};
    fft_pass(z, tw, n);  // forward
    for (std::size_t k = 0; k < n / 2 + 1; ++k) {  // pointwise (paired bins)
      (void)z[k];
      (void)z[n - 1 - k];
    }
    fft_pass(z, tw, n);  // inverse
    for (std::size_t i = 0; i < n_out; ++i) (void)z[i];  // unpack
  }

 private:
  using cplx = std::complex<double>;
  template <class T>
  using Cache = std::map<std::size_t, std::unique_ptr<SimVec<T>>>;

  template <class T>
  SimVec<T>& cached(Cache<T>& cache, std::size_t n) {
    auto it = cache.find(n);
    if (it == cache.end())
      it = cache.emplace(n, std::make_unique<SimVec<T>>(sim_, n)).first;
    return *it->second;
  }

  /// R2C forward: pack the n reals pairwise into the m-bin complex scratch,
  /// run the half-size complex transform, untangle with the RealPlan
  /// twiddles (pair sweep from both ends).
  void forward_r2c(SimVec<double>& r, SimVec<cplx>& s, SimVec<cplx>& tw,
                   SimVec<cplx>& rtw, std::size_t m) {
    for (std::size_t k = 0; k < m; ++k)
      s[k] = cplx{r[2 * k], r[2 * k + 1]};
    fft_pass(s, tw, m);
    for (std::size_t k = 1, j = m - 1; k < j; ++k, --j) {
      const cplx t = rtw[k];
      s[k] += t;
      s[j] -= t;
    }
    (void)s[m / 2];
    s[m] = s[0];
  }

  /// C2R inverse: retangle pair sweep, half-size transform, unpack the m
  /// complex bins into 2m reals.
  void inverse_c2r(SimVec<cplx>& s, SimVec<double>& r, SimVec<cplx>& tw,
                   SimVec<cplx>& rtw, std::size_t m) {
    (void)s[m];
    for (std::size_t k = 1, j = m - 1; k < j; ++k, --j) {
      const cplx t = rtw[k];
      s[k] -= t;
      s[j] += t;
    }
    fft_pass(s, tw, m);
    for (std::size_t k = 0; k < m; ++k) {
      r[2 * k] = s[k].real();
      r[2 * k + 1] = s[k].imag();
    }
  }

  void fft_pass(SimVec<cplx>& z, SimVec<cplx>& tw, std::size_t n) {
    // bit-reversal permutation
    for (std::size_t i = 0; i < n; ++i) {
      std::size_t r = 0, x = i;
      for (std::size_t m = n >> 1; m > 0; m >>= 1, x >>= 1) r = (r << 1) | (x & 1);
      if (i < r) std::swap(z[i], z[r]);
    }
    for (std::size_t h = 1; h < n; h <<= 1) {
      for (std::size_t base = 0; base < n; base += 2 * h) {
        for (std::size_t j = 0; j < h; ++j) {
          const cplx w = tw[h - 1 + j];
          const cplx t = z[base + j + h] * w;
          z[base + j + h] = z[base + j] - t;
          z[base + j] += t;
        }
      }
    }
  }

  CacheSim& sim_;
  Cache<double> real_a_;
  Cache<double> real_b_;
  Cache<cplx> spec_a_;
  Cache<cplx> spec_b_;
  Cache<cplx> half_tw_;
  Cache<cplx> real_tw_;
  Cache<cplx> z_cache_;
  Cache<cplx> tw_cache_;
  /// Cached kernel spectra keyed by (kernel length, padded size) — the
  /// replay mirror of the KernelCache spectrum tier.
  std::map<std::size_t, std::unique_ptr<SimVec<cplx>>> kspec_;
};

/// Kernel-power construction traffic: closed form (table write) for 2-tap,
/// FFT squaring chain for wider stencils. Heights are memoized per run,
/// mirroring the solver's KernelCache.
void replay_kernel_power(FftReplayer& fr, CacheSim& sim, std::int64_t taps,
                         std::int64_t h, std::set<std::int64_t>& seen) {
  if (!seen.insert(h).second) return;
  const std::size_t len = static_cast<std::size_t>((taps - 1) * h + 1);
  if (taps == 2) {
    SimVec<double> kernel(sim, len);
    for (std::size_t m = 0; m < len; ++m) kernel[m] = 1.0;
    return;
  }
  // binary exponentiation: squarings of geometrically growing kernels
  std::size_t cur = static_cast<std::size_t>(taps);
  std::int64_t e = h;
  while (e > 1) {
    fr.convolution(cur, cur, 2 * cur - 1);
    cur = 2 * cur - 1;
    e >>= 1;
  }
}

/// Trace replay of LatticeSolver::solve using the precomputed boundary.
struct LatticeReplay {
  CacheSim& sim;
  FftReplayer& fr;
  const std::vector<std::int64_t>& q;  // boundary per row
  std::int64_t g;                      // cone growth
  std::int64_t base_case;
  std::set<std::int64_t> kernel_heights;
  // Row buffers in the real solver come from an allocator that immediately
  // reuses freed blocks; model that with one persistent scratch vector.
  std::shared_ptr<SimVec<double>> scratch;

  SimVec<double>& scratch_of(std::int64_t n) {
    if (!scratch || scratch->size() < static_cast<std::size_t>(n))
      scratch = std::make_shared<SimVec<double>>(
          sim, static_cast<std::size_t>(n));
    return *scratch;
  }

  void row_sweep(std::int64_t width) {
    if (width <= 0) return;
    SimVec<double>& cur = scratch_of(width + g);
    for (std::int64_t j = 0; j < width; ++j) {
      double acc = 0.0;
      for (std::int64_t k = 0; k <= g; ++k)
        acc += cur[static_cast<std::size_t>(j + k)];
      cur[static_cast<std::size_t>(j)] = acc;
    }
  }

  void solve(std::int64_t i0, std::int64_t jL, std::int64_t q0,
             std::int64_t L) {
    if (q0 < jL) return;
    if (L <= base_case || q0 - jL + 1 <= 4) {
      for (std::int64_t s = 0; s < L; ++s) row_sweep(q0 - jL + 1);
      return;
    }
    const std::int64_t h = (L + 1) / 2;
    const std::int64_t h2 = L - h;
    const std::int64_t jC = q0 - h - (g - 1) * (h - 1);
    if (jC >= jL) {
      replay_kernel_power(fr, sim, g + 1, h, kernel_heights);
      fr.correlation_spectral(static_cast<std::size_t>(q0 - jL + g),
                              static_cast<std::size_t>(g * h + 1),
                              static_cast<std::size_t>(jC - jL + 1));
      solve(i0, jC + 1, q0, h);
    } else {
      solve(i0, jL, q0, h);
    }
    const std::int64_t q_mid = std::min(q[static_cast<std::size_t>(i0 - h)], q0);
    if (q_mid < jL) return;
    const std::int64_t jC2 = q_mid - h2 - (g - 1) * (h2 - 1);
    if (jC2 >= jL) {
      replay_kernel_power(fr, sim, g + 1, h2, kernel_heights);
      fr.correlation_spectral(static_cast<std::size_t>(q_mid - jL + g),
                              static_cast<std::size_t>(g * h2 + 1),
                              static_cast<std::size_t>(jC2 - jL + 1));
      solve(i0 - h, jC2 + 1, q_mid, h2);
    } else {
      solve(i0 - h, jL, q_mid, h2);
    }
  }

  void descend() {
    std::int64_t T = static_cast<std::int64_t>(q.size()) - 1;
    row_sweep(g * T + 1);  // expiry payoff row
    std::int64_t i = T;
    while (i > std::max<std::int64_t>(T - 2, 0)) {  // pre-trapezoid rows
      row_sweep(g * i + 1);
      --i;
    }
    while (i > 0) {
      const std::int64_t qi = q[static_cast<std::size_t>(i)];
      if (qi < 0) return;
      const std::int64_t L =
          std::min(std::max<std::int64_t>((qi + 1) / g, 1), i);
      if (L <= base_case) {
        row_sweep(qi + 1);
        i -= 1;
        continue;
      }
      solve(i, 0, qi, L);
      i -= L;
    }
  }
};

/// Trace replay of FdmSolver::advance using the precomputed boundary f[n].
struct FdmReplay {
  CacheSim& sim;
  FftReplayer& fr;
  const std::vector<std::int64_t>& f;
  std::int64_t base_case;
  std::set<std::int64_t> kernel_heights;
  std::shared_ptr<SimVec<double>> scratch;

  SimVec<double>& scratch_of(std::int64_t n) {
    if (!scratch || scratch->size() < static_cast<std::size_t>(n))
      scratch = std::make_shared<SimVec<double>>(
          sim, static_cast<std::size_t>(n));
    return *scratch;
  }

  void row_sweep(std::int64_t width) {
    if (width <= 0) return;
    SimVec<double>& cur = scratch_of(width + 2);
    for (std::int64_t j = 0; j < width; ++j) {
      cur[static_cast<std::size_t>(j)] = cur[static_cast<std::size_t>(j)] +
                                         cur[static_cast<std::size_t>(j + 1)] +
                                         cur[static_cast<std::size_t>(j + 2)];
    }
  }

  void solve(std::int64_t n0, std::int64_t f0, std::int64_t kr,
             std::int64_t L) {
    if (L <= base_case) {
      for (std::int64_t s = 0; s < L; ++s) row_sweep(kr - f0);
      return;
    }
    const std::int64_t h = (L + 1) / 2;
    const std::int64_t h2 = L - h;
    solve(n0, f0, f0 + 2 * h, h);
    replay_kernel_power(fr, sim, 3, h, kernel_heights);
    if (kr - f0 - 2 * h > 0)
      fr.correlation_spectral(static_cast<std::size_t>(kr - f0),
                              static_cast<std::size_t>(2 * h + 1),
                              static_cast<std::size_t>(kr - f0 - 2 * h));
    const std::int64_t f_mid =
        std::max(f[static_cast<std::size_t>(n0 + h)], f0 - h);
    solve(n0 + h, f_mid, kr - h, h2);
  }

  void run(std::int64_t T, std::int64_t kr0) {
    row_sweep(kr0);  // initial condition
    std::int64_t n = 0, kr = kr0, remaining = T;
    const std::int64_t tail = std::max<std::int64_t>(base_case, 8);
    while (remaining > tail) {
      std::int64_t L = (remaining + 1) / 2;
      L = std::min(L, (kr - f[static_cast<std::size_t>(n)]) / 2);
      solve(n, f[static_cast<std::size_t>(n)], kr, L);
      n += L;
      kr -= L;
      remaining -= L;
    }
    while (remaining > 0) {
      row_sweep(kr - f[static_cast<std::size_t>(n)]);
      ++n;
      --kr;
      --remaining;
    }
  }
};

}  // namespace

const char* to_string(SimAlg alg) {
  switch (alg) {
    case SimAlg::bopm_vanilla: return "bopm-vanilla";
    case SimAlg::bopm_quantlib: return "ql-bopm";
    case SimAlg::bopm_zubair: return "zb-bopm";
    case SimAlg::bopm_fft: return "fft-bopm";
    case SimAlg::topm_vanilla: return "vanilla-topm";
    case SimAlg::topm_fft: return "fft-topm";
    case SimAlg::bsm_vanilla: return "vanilla-bsm";
    case SimAlg::bsm_fft: return "fft-bsm";
  }
  return "?";
}

CacheStats simulate_fft_convolution(std::size_t n_in, std::size_t n_kernel,
                                    std::size_t n_out, bool packed) {
  CacheSim sim;
  FftReplayer fr(sim);
  if (packed) {
    fr.convolution_packed(n_in, n_kernel, n_out);
  } else {
    fr.convolution(n_in, n_kernel, n_out);
  }
  return sim.stats();
}

CacheStats simulate_kernel(SimAlg alg, const OptionSpec& spec,
                           std::int64_t T) {
  AMOPT_EXPECTS(T >= 2);
  CacheSim sim;
  FftReplayer fr(sim);
  switch (alg) {
    case SimAlg::bopm_vanilla:
      sim_lattice_vanilla(sim, T, 1);
      break;
    case SimAlg::bopm_quantlib:
      sim_bopm_quantlib(sim, T);
      break;
    case SimAlg::bopm_zubair:
      sim_bopm_zubair(sim, T, 1024);
      break;
    case SimAlg::bopm_fft: {
      const auto q = pricing::bopm_call_boundary_vanilla(spec, T);
      LatticeReplay{sim, fr, q, 1, 8, {}, {}}.descend();
      break;
    }
    case SimAlg::topm_vanilla:
      sim_lattice_vanilla(sim, T, 2);
      break;
    case SimAlg::topm_fft: {
      const auto q = pricing::topm_call_boundary_vanilla(spec, T);
      LatticeReplay{sim, fr, q, 2, 8, {}, {}}.descend();
      break;
    }
    case SimAlg::bsm_vanilla:
      sim_bsm_vanilla(sim, T);
      break;
    case SimAlg::bsm_fft: {
      const auto f = pricing::bsm::exercise_boundary_vanilla(spec, T);
      FdmReplay{sim, fr, f, 10, {}, {}}.run(T, 2 * T);
      break;
    }
  }
  return sim.stats();
}

}  // namespace amopt::metrics
