#include "amopt/metrics/counters.hpp"

namespace amopt::metrics {

detail::OpCounters& detail::instance() {
  static OpCounters counters;
  return counters;
}

OpSnapshot snapshot() {
  auto& c = detail::instance();
  return {c.flops.load(std::memory_order_relaxed),
          c.bytes.load(std::memory_order_relaxed)};
}

void reset_counters() {
  auto& c = detail::instance();
  c.flops.store(0, std::memory_order_relaxed);
  c.bytes.store(0, std::memory_order_relaxed);
}

}  // namespace amopt::metrics
