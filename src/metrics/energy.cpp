#include "amopt/metrics/energy.hpp"

#include <chrono>
#include <filesystem>
#include <fstream>

namespace amopt::metrics {

namespace {

namespace fs = std::filesystem;

[[nodiscard]] double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

[[nodiscard]] bool read_file(const fs::path& p, std::string& out) {
  std::ifstream in(p);
  if (!in) return false;
  std::getline(in, out);
  return !out.empty();
}

[[nodiscard]] bool read_double(const fs::path& p, double& out) {
  std::string s;
  if (!read_file(p, s)) return false;
  try {
    out = std::stod(s);
  } catch (...) {
    return false;
  }
  return true;
}

}  // namespace

EnergyMeter::EnergyMeter(EnergyModel model) : model_(model) {
  const fs::path root("/sys/class/powercap");
  std::error_code ec;
  if (!fs::exists(root, ec)) return;
  for (const auto& entry : fs::directory_iterator(root, ec)) {
    const std::string name = entry.path().filename().string();
    if (name.rfind("intel-rapl:", 0) != 0) continue;
    Domain d;
    d.energy_path = (entry.path() / "energy_uj").string();
    double probe = 0.0;
    if (!read_double(d.energy_path, probe)) continue;  // not readable
    (void)read_double(entry.path() / "max_energy_range_uj", d.max_range_uj);
    std::string dom_name;
    (void)read_file(entry.path() / "name", dom_name);
    d.is_ram = dom_name.find("dram") != std::string::npos ||
               dom_name.find("ram") != std::string::npos;
    domains_.push_back(std::move(d));
  }
}

void EnergyMeter::start() {
  ops_start_ = snapshot();
  wall_start_ = now_seconds();
  for (auto& d : domains_) (void)read_double(d.energy_path, d.start_uj);
}

EnergySample EnergyMeter::stop() {
  const double dt = now_seconds() - wall_start_;
  EnergySample sample;
  if (hardware_available()) {
    sample.hardware = true;
    for (auto& d : domains_) {
      double end_uj = d.start_uj;
      if (!read_double(d.energy_path, end_uj)) continue;
      double delta = end_uj - d.start_uj;
      if (delta < 0.0 && d.max_range_uj > 0.0) delta += d.max_range_uj;
      (d.is_ram ? sample.ram_joules : sample.pkg_joules) += delta * 1e-6;
    }
    return sample;
  }
  const OpSnapshot ops = delta(ops_start_, snapshot());
  sample.hardware = false;
  sample.pkg_joules = model_.joules_per_flop * static_cast<double>(ops.flops) +
                      model_.pkg_static_watts * dt;
  sample.ram_joules = model_.joules_per_byte * static_cast<double>(ops.bytes) +
                      model_.ram_static_watts * dt;
  return sample;
}

}  // namespace amopt::metrics
