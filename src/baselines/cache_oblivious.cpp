#include <algorithm>
#include <cmath>
#include <vector>

#include "amopt/baselines/baselines.hpp"
#include "amopt/common/assert.hpp"
#include "amopt/metrics/counters.hpp"

namespace amopt::baselines {

namespace {

using pricing::BopmParams;
using pricing::PowerTable;

/// Frigo-Strumpen recursive trapezoid walk over the in-place array G, where
/// slot j always holds the newest computed row of column j. "Time" t runs
/// 1..T downward from expiry (row i = T - t). The nonlinear max() update is
/// applied per point — the decomposition only needs locality, not
/// linearity. Symmetric unit slopes over-approximate the actual {0,+1}
/// dependency footprint, which is safe.
struct Walker {
  double s0, s1, S, K;
  std::int64_t T;
  const PowerTable* up;
  std::vector<double>* G;

  void point(std::int64_t t, std::int64_t x) const {
    const std::int64_t i = T - t;
    if (x < 0 || x > i) return;  // outside the lattice triangle
    auto& g = *G;
    const double lin = s0 * g[static_cast<std::size_t>(x)] +
                       s1 * g[static_cast<std::size_t>(x + 1)];
    const double pay = S * (*up)(2 * x - i) - K;
    g[static_cast<std::size_t>(x)] = std::max(lin, pay);
  }

  // Classic walk1(t0, t1, x0, dx0, x1, dx1): the trapezoid
  // { (t, x) : t0 <= t < t1, x0 + dx0*(t-t0) <= x < x1 + dx1*(t-t0) }.
  void walk(std::int64_t t0, std::int64_t t1, std::int64_t x0,
            std::int64_t dx0, std::int64_t x1, std::int64_t dx1) const {
    const std::int64_t dt = t1 - t0;
    if (dt == 1) {
      for (std::int64_t x = x0; x < x1; ++x) point(t0, x);
      return;
    }
    if (dt <= 0) return;
    if (2 * (x1 - x0) + (dx1 - dx0) * dt >= 4 * dt) {
      // Wide: space cut through the centre with slope -1.
      const std::int64_t xm = (2 * (x0 + x1) + (2 + dx0 + dx1) * dt) / 4;
      walk(t0, t1, x0, dx0, xm, -1);
      walk(t0, t1, xm, -1, x1, dx1);
    } else {
      // Tall: time cut.
      const std::int64_t s = dt / 2;
      walk(t0, t0 + s, x0, dx0, x1, dx1);
      walk(t0 + s, t1, x0 + dx0 * s, dx0, x1 + dx1 * s, dx1);
    }
  }
};

}  // namespace

double cache_oblivious_american_call(const pricing::OptionSpec& spec,
                                     std::int64_t T) {
  AMOPT_EXPECTS(T >= 1);
  const BopmParams prm = pricing::derive_bopm(spec, T);
  const PowerTable up(prm.log_u, T);
  std::vector<double> G(static_cast<std::size_t>(T + 2), 0.0);
  for (std::int64_t j = 0; j <= T; ++j)
    G[static_cast<std::size_t>(j)] =
        std::max(0.0, spec.S * up(2 * j - T) - spec.K);

  const Walker w{prm.s0, prm.s1, spec.S, spec.K, T, &up, &G};
  w.walk(1, T + 1, 0, 0, T + 1, -1);

  metrics::add_flops(3 * static_cast<std::uint64_t>(T) * (T + 1) / 2);
  metrics::add_bytes(sizeof(double) * static_cast<std::uint64_t>(T) * (T + 1) /
                     2);
  return G[0];
}

}  // namespace amopt::baselines
