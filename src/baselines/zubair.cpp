#include <algorithm>
#include <cmath>
#include <vector>

#include "amopt/baselines/baselines.hpp"
#include "amopt/common/assert.hpp"
#include "amopt/common/parallel.hpp"
#include "amopt/metrics/counters.hpp"

namespace amopt::baselines {

namespace {

using pricing::BopmParams;
using pricing::OptionSpec;
using pricing::PowerTable;

// Split tiling for the right-leaning 2-point stencil, processed in-place in
// one array where slot j always holds the newest computed row of column j.
//
// Per band of H rows [i0-1 .. i0-H]:
//   pass 1 (parallel over tiles): left-aligned trapezoids — tile [lo, hi]
//     computes at depth t the columns [lo, hi - t]; every read of column
//     j+1 <= hi-t+1 sees exactly the one-row-newer value. The tile records
//     the history of its leftmost column into a halo so the gap pass of the
//     tile to its LEFT can read it.
//   pass 2 (parallel over gaps): the inverted triangles [hi-t+1, hi] at
//     depth t; reads of column hi+1 come from the halo recorded in pass 1.
//
// The per-tile working set is O(tile_width) and each band makes one pass
// over the row, giving the Θ(T*M + (T^2/M) log ...) cache behaviour of
// Table 2's cache-aware row.

struct Band {
  std::int64_t i0 = 0;  ///< top row (already computed)
  std::int64_t H = 0;   ///< rows to produce: i0-1 .. i0-H
};

}  // namespace

double zubair_american_call(const pricing::OptionSpec& spec, std::int64_t T,
                            ZubairConfig cfg) {
  AMOPT_EXPECTS(T >= 1);
  AMOPT_EXPECTS(cfg.tile_width >= 2);
  const BopmParams prm = pricing::derive_bopm(spec, T);
  const PowerTable up(prm.log_u, T);  // the precomputed "probability" tables
  const double s0 = prm.s0, s1 = prm.s1;
  const auto payoff = [&](std::int64_t i, std::int64_t j) {
    return spec.S * up(2 * j - i) - spec.K;
  };

  std::vector<double> G(static_cast<std::size_t>(T + 1));
  for (std::int64_t j = 0; j <= T; ++j)
    G[static_cast<std::size_t>(j)] = std::max(0.0, payoff(T, j));

  const std::int64_t W = cfg.tile_width;
  const std::int64_t n_tiles = (T + W) / W;  // tiles cover columns [0, T]
  std::vector<std::vector<double>> halo(
      static_cast<std::size_t>(n_tiles));  // halo[k][t] = col k*W at row i0-t

  std::int64_t i0 = T;
  while (i0 > 0) {
    const std::int64_t H = std::min<std::int64_t>(W - 1, i0);

    // ---- pass 1: left-aligned trapezoid per tile ----------------------
    const auto pass1 = [&](std::int64_t k) {
      const std::int64_t lo = k * W;
      const std::int64_t hi = std::min((k + 1) * W - 1, T);
      auto& h = halo[static_cast<std::size_t>(k)];
      // halo[k][t] = value of column lo at row i0-t. When the column is not
      // updated at some depth (tile clipped by the triangle diagonal) its
      // newest value simply persists — and the gap pass provably only reads
      // entries from depths at which the update did run.
      h.assign(static_cast<std::size_t>(H + 1),
               G[static_cast<std::size_t>(lo)]);
      if (lo > i0 - 1) return;  // whole tile above the triangle diagonal
      for (std::int64_t t = 1; t <= H; ++t) {
        const std::int64_t i = i0 - t;
        const std::int64_t jhi = std::min(hi - t, i);
        for (std::int64_t j = lo; j <= jhi; ++j) {
          const double lin = s0 * G[static_cast<std::size_t>(j)] +
                             s1 * G[static_cast<std::size_t>(j + 1)];
          G[static_cast<std::size_t>(j)] = std::max(lin, payoff(i, j));
        }
        h[static_cast<std::size_t>(t)] = G[static_cast<std::size_t>(lo)];
      }
    };

    // ---- pass 2: gap triangles between consecutive tiles ---------------
    const auto pass2 = [&](std::int64_t k) {
      const std::int64_t hi = std::min((k + 1) * W - 1, T);
      if (hi >= T) return;  // no tile to the right of the last one
      const auto& h = halo[static_cast<std::size_t>(k + 1)];
      for (std::int64_t t = 1; t <= H; ++t) {
        const std::int64_t i = i0 - t;
        const std::int64_t jlo = std::max(hi - t + 1, std::int64_t{0});
        const std::int64_t jhi = std::min(hi, i);
        for (std::int64_t j = jlo; j <= jhi; ++j) {
          const double right =
              (j + 1 <= hi) ? G[static_cast<std::size_t>(j + 1)]
                            : h[static_cast<std::size_t>(t - 1)];
          const double lin =
              s0 * G[static_cast<std::size_t>(j)] + s1 * right;
          G[static_cast<std::size_t>(j)] = std::max(lin, payoff(i, j));
        }
      }
    };

    // Tiles write disjoint column ranges in both passes (the halo carries
    // the one cross-tile read), so the pool fan-out is bit-stable.
    auto& pool = core::TaskPool::instance();
    if (cfg.parallel && pool.concurrency() > 1) {
      pool.for_each(n_tiles, [&](std::size_t k) {
        pass1(static_cast<std::int64_t>(k));
      });
      pool.for_each(n_tiles, [&](std::size_t k) {
        pass2(static_cast<std::int64_t>(k));
      });
    } else {
      for (std::int64_t k = 0; k < n_tiles; ++k) pass1(k);
      for (std::int64_t k = 0; k < n_tiles; ++k) pass2(k);
    }

    i0 -= H;
  }
  metrics::add_flops(3 * static_cast<std::uint64_t>(T) * (T + 1) / 2);
  metrics::add_bytes(sizeof(double) * static_cast<std::uint64_t>(T) * (T + 1) /
                     2);
  return G[0];
}

}  // namespace amopt::baselines
