#include <cmath>
#include <memory>
#include <vector>

#include "amopt/baselines/baselines.hpp"
#include "amopt/common/assert.hpp"
#include "amopt/common/parallel.hpp"
#include "amopt/metrics/counters.hpp"

namespace amopt::baselines {

namespace {

using pricing::OptionSpec;

/// Abstract binomial lattice in the style of QuantLib's BinomialTree_:
/// per-node queries go through virtual dispatch and recompute the
/// underlying price with pow() (QuantLib's CRR tree does
/// x0 * down^(i-index) * up^index per call).
class BinomialLattice {
 public:
  virtual ~BinomialLattice() = default;
  [[nodiscard]] virtual double underlying(std::int64_t i,
                                          std::int64_t index) const = 0;
  [[nodiscard]] virtual double probability_up() const = 0;
  [[nodiscard]] virtual double discount() const = 0;
  [[nodiscard]] virtual std::int64_t steps() const = 0;
};

class CoxRossRubinsteinLattice final : public BinomialLattice {
 public:
  CoxRossRubinsteinLattice(const OptionSpec& spec, std::int64_t T)
      : T_(T) {
    const double dt = spec.expiry_years / static_cast<double>(T);
    up_ = std::exp(spec.V * std::sqrt(dt));
    down_ = 1.0 / up_;
    x0_ = spec.S;
    p_up_ = (std::exp((spec.R - spec.Y) * dt) - down_) / (up_ - down_);
    discount_ = std::exp(-spec.R * dt);
  }
  [[nodiscard]] double underlying(std::int64_t i,
                                  std::int64_t index) const override {
    return x0_ * std::pow(down_, static_cast<double>(i - index)) *
           std::pow(up_, static_cast<double>(index));
  }
  [[nodiscard]] double probability_up() const override { return p_up_; }
  [[nodiscard]] double discount() const override { return discount_; }
  [[nodiscard]] std::int64_t steps() const override { return T_; }

 private:
  std::int64_t T_;
  double up_ = 1.0, down_ = 1.0, x0_ = 0.0, p_up_ = 0.5, discount_ = 1.0;
};

/// DiscretizedAsset-style rollback: one time layer at a time, with a
/// post-rollback "adjustment" hook applying the American exercise.
class DiscretizedAmericanCall {
 public:
  DiscretizedAmericanCall(const BinomialLattice& lattice, double strike,
                          bool parallel)
      : lattice_(lattice), strike_(strike), parallel_(parallel) {}

  void initialize() {
    const std::int64_t T = lattice_.steps();
    values_.resize(static_cast<std::size_t>(T + 1));
    for (std::int64_t j = 0; j <= T; ++j)
      values_[static_cast<std::size_t>(j)] =
          std::max(0.0, lattice_.underlying(T, j) - strike_);
  }

  void rollback_to(std::int64_t target) {
    const double p = lattice_.probability_up();
    const double disc = lattice_.discount();
    for (std::int64_t i = lattice_.steps() - 1; i >= target; --i) {
      std::vector<double> next(static_cast<std::size_t>(i + 1));
      if (parallel_) {
        parallel_for_chunks(i + 1, 256, [&](std::ptrdiff_t lo,
                                            std::ptrdiff_t hi) {
          for (std::ptrdiff_t j = lo; j < hi; ++j)
            next[static_cast<std::size_t>(j)] = step_node(i, j, p, disc);
        });
      } else {
        for (std::int64_t j = 0; j <= i; ++j)
          next[static_cast<std::size_t>(j)] = step_node(i, j, p, disc);
      }
      values_ = std::move(next);
      metrics::add_flops(
          static_cast<std::uint64_t>(i + 1) * 8);  // 2 pow ~ counted as flops
      metrics::add_bytes(static_cast<std::uint64_t>(i + 1) * 2 *
                         sizeof(double));
    }
  }

  [[nodiscard]] double present_value() const { return values_.front(); }

 private:
  [[nodiscard]] double step_node(std::int64_t i, std::int64_t j, double p,
                                 double disc) const {
    const double continuation =
        disc * ((1.0 - p) * values_[static_cast<std::size_t>(j)] +
                p * values_[static_cast<std::size_t>(j + 1)]);
    // American adjustment, underlying recomputed per node as in QuantLib.
    return std::max(continuation, lattice_.underlying(i, j) - strike_);
  }

  const BinomialLattice& lattice_;
  double strike_;
  bool parallel_;
  std::vector<double> values_;
};

}  // namespace

double quantlib_style_american_call(const pricing::OptionSpec& spec,
                                    std::int64_t T, bool parallel) {
  AMOPT_EXPECTS(T >= 1);
  const std::unique_ptr<BinomialLattice> lattice =
      std::make_unique<CoxRossRubinsteinLattice>(spec, T);
  DiscretizedAmericanCall option(*lattice, spec.K, parallel);
  option.initialize();
  option.rollback_to(0);
  return option.present_value();
}

}  // namespace amopt::baselines
