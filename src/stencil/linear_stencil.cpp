#include "amopt/stencil/linear_stencil.hpp"

#include "amopt/common/assert.hpp"

namespace amopt::stencil {

std::vector<double> apply_steps_naive(const LinearStencil& st,
                                      std::span<const double> in,
                                      std::uint64_t h) {
  AMOPT_EXPECTS(!st.taps.empty());
  const std::size_t g = st.taps.size() - 1;
  AMOPT_EXPECTS(in.size() >= g * h + 1);
  std::vector<double> cur(in.begin(), in.end());
  for (std::uint64_t s = 0; s < h; ++s) {
    const std::size_t n_out = cur.size() - g;
    std::vector<double> next(n_out);
    for (std::size_t j = 0; j < n_out; ++j) {
      double acc = 0.0;
      for (std::size_t k = 0; k < st.taps.size(); ++k)
        acc += st.taps[k] * cur[j + k];
      next[j] = acc;
    }
    cur = std::move(next);
  }
  return cur;
}

}  // namespace amopt::stencil
