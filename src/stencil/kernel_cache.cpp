#include "amopt/stencil/kernel_cache.hpp"

#include "amopt/poly/poly_power.hpp"

namespace amopt::stencil {

std::span<const double> KernelCache::power(std::uint64_t h) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = cache_.find(h);
    if (it != cache_.end()) return *it->second;
  }
  // Compute outside the lock; a racing duplicate computation is harmless and
  // the first inserted entry wins.
  auto kernel =
      std::make_unique<std::vector<double>>(poly::power(stencil_.taps, h));
  std::lock_guard<std::mutex> lock(mu_);
  auto [it, inserted] = cache_.emplace(h, std::move(kernel));
  return *it->second;
}

}  // namespace amopt::stencil
