#include "amopt/stencil/kernel_cache.hpp"

#include <algorithm>
#include <mutex>
#include <utility>

#include "amopt/common/aligned.hpp"
#include "amopt/common/assert.hpp"
#include "amopt/fft/convolution.hpp"

namespace amopt::stencil {

namespace {

/// Pack a spectrum key: heights fit far below 2^57 and padded sizes are
/// powers of two, so (h, log2 n) shares one 64-bit word.
[[nodiscard]] std::uint64_t spectrum_key(std::uint64_t h, std::size_t n) {
  std::uint64_t log2n = 0;
  while ((std::size_t{1} << log2n) < n) ++log2n;
  return (h << 6) | log2n;
}

[[nodiscard]] std::size_t spectrum_bytes_of(const fft::RealSpectrum& s) {
  return s.bins.size() * sizeof(fft::cplx);
}

}  // namespace

// ------------------------------------------------------------ SpectrumBudget

void SpectrumBudget::admit(KernelCache* owner, std::uint64_t key,
                           std::size_t bytes, const Tick& tick) {
  std::lock_guard<std::mutex> lock(mu_);
  for (Entry& e : entries_) {
    if (e.owner == owner && e.key == key) return;  // lost an insert race
  }
  entries_.push_back({owner, key, bytes, tick});
  bytes_ += bytes;
  while (bytes_ > max_bytes_ && entries_.size() > 1) {
    const auto victim = std::min_element(
        entries_.begin(), entries_.end(), [](const Entry& a, const Entry& b) {
          return a.tick->load(std::memory_order_relaxed) <
                 b.tick->load(std::memory_order_relaxed);
        });
    // Never evict what we just admitted — the caller is about to use it.
    if (victim->owner == owner && victim->key == key) break;
    victim->owner->evict_spectrum(victim->key);
    bytes_ -= victim->bytes;
    ++evictions_;
    entries_.erase(victim);
  }
}

void SpectrumBudget::forget(KernelCache* owner) {
  std::lock_guard<std::mutex> lock(mu_);
  std::erase_if(entries_, [&](const Entry& e) {
    if (e.owner != owner) return false;
    bytes_ -= e.bytes;
    return true;
  });
}

SpectrumBudget::Stats SpectrumBudget::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  Stats s;
  s.bytes = bytes_;
  s.entries = entries_.size();
  s.evictions = evictions_;
  return s;
}

// --------------------------------------------------------------- KernelCache

KernelCache::~KernelCache() {
  // Unregister before the spectra die. forget() serializes with any
  // in-flight eviction pass (budget mutex), so no evictor can reach this
  // cache afterwards.
  if (budget_) budget_->forget(this);
}

void KernelCache::set_spectrum_budget(std::shared_ptr<SpectrumBudget> budget) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  AMOPT_EXPECTS(spectra_.empty());  // attach before the first lookup
  budget_ = std::move(budget);
}

std::vector<double> KernelCache::compute_power(std::uint64_t h) {
  const std::span<const double> taps = stencil_.taps;
  // The closed-form dispatch of poly::power needs no ladder (and must keep
  // producing the identical closed-form bits); only the FFT square-and-
  // multiply path shares its squaring chain across heights.
  const bool closed_form =
      h == 0 || taps.size() == 1 ||
      (taps.size() == 2 && taps[0] >= 0.0 && taps[1] >= 0.0);
  if (closed_form) return poly::power(taps, h);
  // Extend the shared ladder under its mutex, then combine OUTSIDE it:
  // rungs are append-only and their heap buffers survive later extensions
  // (SquaringLadder's documented invariant), so the snapshot spans stay
  // valid while other threads grow the chain — concurrent cold builds at
  // different heights serialize only on the squarings themselves.
  std::size_t kmax = 0;
  for (std::uint64_t e = h; e >>= 1;) ++kmax;
  std::vector<std::span<const double>> rungs;
  rungs.reserve(kmax + 1);
  {
    std::lock_guard<std::mutex> lock(ladder_mu_);
    poly::extend_ladder(taps, h, ladder_, conv::thread_workspace());
    for (std::size_t k = 0; k <= kmax; ++k) rungs.emplace_back(ladder_[k]);
  }
  return poly::power_from_rungs(h, rungs, conv::thread_workspace());
}

std::span<const double> KernelCache::power(std::uint64_t h) {
  // Warm path: one acquire load + binary search over the published
  // snapshot; no lock. Entries are never evicted, so a snapshot hit is
  // always safe to return.
  if (const PowerSnapshot* snap =
          power_snap_.load(std::memory_order_acquire)) {
    const auto it = std::lower_bound(
        snap->entries.begin(), snap->entries.end(), h,
        [](const auto& e, std::uint64_t key) { return e.first < key; });
    if (it != snap->entries.end() && it->first == h) return *it->second;
  }
  {
    std::shared_lock<std::shared_mutex> lock(mu_);
    auto it = cache_.find(h);
    if (it != cache_.end()) return *it->second;
  }
  // Compute outside the map lock (scratch comes from the calling thread's
  // convolution workspace); a racing duplicate computation is harmless and
  // the first inserted entry wins. FFT-path heights serialize on the ladder
  // mutex so the shared squaring chain extends consistently.
  auto kernel = std::make_unique<std::vector<double>>(compute_power(h));
  std::unique_lock<std::shared_mutex> lock(mu_);
  auto [it, inserted] = cache_.emplace(h, std::move(kernel));
  // Publish a fresh snapshot; the old one is retired, not freed, because a
  // concurrent reader may still be walking it.
  auto snap = std::make_unique<PowerSnapshot>();
  snap->entries.reserve(cache_.size());
  for (const auto& [hk, vec] : cache_) snap->entries.emplace_back(hk, vec.get());
  std::sort(snap->entries.begin(), snap->entries.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  const PowerSnapshot* published = snap.get();
  retired_snaps_.push_back(std::move(snap));
  power_snap_.store(published, std::memory_order_release);
  return *it->second;
}

std::shared_ptr<const fft::RealSpectrum> KernelCache::power_spectrum(
    std::uint64_t h, std::size_t n) {
  AMOPT_EXPECTS(is_pow2(n));
  const std::uint64_t key = spectrum_key(h, n);
  {
    std::shared_lock<std::shared_mutex> lock(mu_);
    auto it = spectra_.find(key);
    if (it != spectra_.end()) {
      // Refresh the LRU stamp with one relaxed store — the hot warm path
      // never touches the budget mutex.
      if (it->second.tick)
        it->second.tick->store(budget_->next_tick(),
                               std::memory_order_relaxed);
      return it->second.spec;
    }
  }
  // Materialize outside the lock: time-domain taps first (warm after the
  // first call at this height), then one reversed R2C transform at n.
  const std::span<const double> taps_h = power(h);
  auto spec = std::make_shared<fft::RealSpectrum>(conv::kernel_spectrum(
      taps_h, n, /*reversed=*/true, conv::thread_workspace()));
  SpectrumEntry entry{std::move(spec), nullptr};
  if (budget_) {
    entry.tick = std::make_shared<std::atomic<std::uint64_t>>(
        budget_->next_tick());
  }
  std::shared_ptr<const fft::RealSpectrum> out;
  SpectrumBudget::Tick tick;
  {
    std::unique_lock<std::shared_mutex> lock(mu_);
    auto [it, inserted] = spectra_.emplace(key, std::move(entry));
    out = it->second.spec;
    tick = it->second.tick;
  }
  if (budget_ && tick) budget_->admit(this, key, spectrum_bytes_of(*out), tick);
  return out;
}

void KernelCache::evict_spectrum(std::uint64_t key) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  spectra_.erase(key);  // shared_ptr keeps in-flight consumers alive
}

KernelCache::Stats KernelCache::stats() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  std::lock_guard<std::mutex> ladder_lock(ladder_mu_);
  Stats s;
  s.powers = cache_.size();
  s.spectra = spectra_.size();
  for (const auto& [key, entry] : spectra_)
    s.spectrum_bytes += spectrum_bytes_of(*entry.spec);
  s.ladder_rungs = ladder_.size();
  return s;
}

}  // namespace amopt::stencil
