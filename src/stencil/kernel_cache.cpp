#include "amopt/stencil/kernel_cache.hpp"

#include <mutex>
#include <utility>

#include "amopt/common/aligned.hpp"
#include "amopt/common/assert.hpp"
#include "amopt/fft/convolution.hpp"

namespace amopt::stencil {

namespace {

/// Pack a spectrum key: heights fit far below 2^57 and padded sizes are
/// powers of two, so (h, log2 n) shares one 64-bit word.
[[nodiscard]] std::uint64_t spectrum_key(std::uint64_t h, std::size_t n) {
  std::uint64_t log2n = 0;
  while ((std::size_t{1} << log2n) < n) ++log2n;
  return (h << 6) | log2n;
}

}  // namespace

std::vector<double> KernelCache::compute_power(std::uint64_t h) {
  const std::span<const double> taps = stencil_.taps;
  // The closed-form dispatch of poly::power needs no ladder (and must keep
  // producing the identical closed-form bits); only the FFT square-and-
  // multiply path shares its squaring chain across heights.
  const bool closed_form =
      h == 0 || taps.size() == 1 ||
      (taps.size() == 2 && taps[0] >= 0.0 && taps[1] >= 0.0);
  if (closed_form) return poly::power(taps, h);
  // Extend the shared ladder under its mutex, then combine OUTSIDE it:
  // rungs are append-only and their heap buffers survive later extensions
  // (SquaringLadder's documented invariant), so the snapshot spans stay
  // valid while other threads grow the chain — concurrent cold builds at
  // different heights serialize only on the squarings themselves.
  std::size_t kmax = 0;
  for (std::uint64_t e = h; e >>= 1;) ++kmax;
  std::vector<std::span<const double>> rungs;
  rungs.reserve(kmax + 1);
  {
    std::lock_guard<std::mutex> lock(ladder_mu_);
    poly::extend_ladder(taps, h, ladder_, conv::thread_workspace());
    for (std::size_t k = 0; k <= kmax; ++k) rungs.emplace_back(ladder_[k]);
  }
  return poly::power_from_rungs(h, rungs, conv::thread_workspace());
}

std::span<const double> KernelCache::power(std::uint64_t h) {
  {
    std::shared_lock<std::shared_mutex> lock(mu_);
    auto it = cache_.find(h);
    if (it != cache_.end()) return *it->second;
  }
  // Compute outside the map lock (scratch comes from the calling thread's
  // convolution workspace); a racing duplicate computation is harmless and
  // the first inserted entry wins. FFT-path heights serialize on the ladder
  // mutex so the shared squaring chain extends consistently.
  auto kernel = std::make_unique<std::vector<double>>(compute_power(h));
  std::unique_lock<std::shared_mutex> lock(mu_);
  auto [it, inserted] = cache_.emplace(h, std::move(kernel));
  return *it->second;
}

const fft::RealSpectrum& KernelCache::power_spectrum(std::uint64_t h,
                                                     std::size_t n) {
  AMOPT_EXPECTS(is_pow2(n));
  const std::uint64_t key = spectrum_key(h, n);
  {
    std::shared_lock<std::shared_mutex> lock(mu_);
    auto it = spectra_.find(key);
    if (it != spectra_.end()) return *it->second;
  }
  // Materialize outside the lock: time-domain taps first (warm after the
  // first call at this height), then one reversed R2C transform at n.
  const std::span<const double> taps_h = power(h);
  auto spec = std::make_unique<fft::RealSpectrum>(conv::kernel_spectrum(
      taps_h, n, /*reversed=*/true, conv::thread_workspace()));
  std::unique_lock<std::shared_mutex> lock(mu_);
  auto [it, inserted] = spectra_.emplace(key, std::move(spec));
  return *it->second;
}

KernelCache::Stats KernelCache::stats() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  std::lock_guard<std::mutex> ladder_lock(ladder_mu_);
  Stats s;
  s.powers = cache_.size();
  s.spectra = spectra_.size();
  s.ladder_rungs = ladder_.size();
  return s;
}

}  // namespace amopt::stencil
