#include "amopt/stencil/kernel_cache.hpp"

#include <mutex>

#include "amopt/poly/poly_power.hpp"

namespace amopt::stencil {

std::span<const double> KernelCache::power(std::uint64_t h) {
  {
    std::shared_lock<std::shared_mutex> lock(mu_);
    auto it = cache_.find(h);
    if (it != cache_.end()) return *it->second;
  }
  // Compute outside the lock (scratch comes from the calling thread's
  // convolution workspace); a racing duplicate computation is harmless and
  // the first inserted entry wins.
  auto kernel =
      std::make_unique<std::vector<double>>(poly::power(stencil_.taps, h));
  std::unique_lock<std::shared_mutex> lock(mu_);
  auto [it, inserted] = cache_.emplace(h, std::move(kernel));
  return *it->second;
}

}  // namespace amopt::stencil
