#include "amopt/core/fdm_solver.hpp"

#include <algorithm>

#include "amopt/common/assert.hpp"
#include "amopt/core/scratch.hpp"
#include "amopt/core/task_pool.hpp"
#include "amopt/fft/convolution.hpp"
#include "amopt/metrics/counters.hpp"
#include "amopt/simd/kernels.hpp"

namespace amopt::core {

FdmSolver::FdmSolver(stencil::LinearStencil st, const FdmGreen& green,
                     SolverConfig cfg)
    : FdmSolver(nullptr, std::move(st), green, cfg) {}

FdmSolver::FdmSolver(stencil::KernelCache* shared,
                     stencil::LinearStencil fallback, const FdmGreen& green,
                     SolverConfig cfg)
    : owned_kernels_(shared != nullptr ? nullptr
                                       : std::make_unique<stencil::KernelCache>(
                                             std::move(fallback))),
      kernels_(shared != nullptr ? shared : owned_kernels_.get()),
      green_(green), cfg_(cfg) {
  // See the LatticeSolver counterpart: a mismatched shared cache would
  // silently produce wrong prices.
  AMOPT_EXPECTS(shared == nullptr ||
                (shared->stencil().taps == fallback.taps &&
                 shared->stencil().left == fallback.left));
  AMOPT_EXPECTS(kernels_->stencil().taps.size() == 3);
  AMOPT_EXPECTS(kernels_->stencil().left == -1);
  AMOPT_EXPECTS(cfg_.base_case >= 1);
}

FdmRow FdmSolver::step_naive(const FdmRow& row, bool unbounded_scan) const {
  AMOPT_EXPECTS(row.kr - row.f >= 2);
  AMOPT_EXPECTS(static_cast<std::int64_t>(row.red.size()) == row.kr - row.f);
  const std::span<const double> taps = kernels_->stencil().taps;
  const double b = taps[0], c = taps[1], a = taps[2];
  const auto value_at = [&](std::int64_t k) {
    return k <= row.f ? green_.value(row.n, k)
                      : row.red[static_cast<std::size_t>(k - row.f - 1)];
  };
  const auto linear_at = [&](std::int64_t k) {
    return b * value_at(k - 1) + c * value_at(k) + a * value_at(k + 1);
  };

  FdmRow next;
  next.n = row.n + 1;
  next.kr = row.kr - 1;
  // Discover the new boundary: scan left from f until the first cell where
  // exercise still beats continuation (one probe suffices under Theorem
  // 4.3's one-cell bound; unbounded_scan keeps going for the jump rows).
  std::int64_t f_next = row.f;
  std::vector<double> newly_red;  // values at k = f_next+1 .. row.f, reversed
  // Safety floor: the scan provably terminates (deep ITM, continuation
  // loses to exercise), but guard against pathological parameters anyway.
  const std::int64_t floor_k =
      unbounded_scan ? row.f - 8 * (row.kr - row.f) - 64 : row.f - 1;
  while (f_next >= floor_k) {
    const double lin = linear_at(f_next);
    if (lin < green_.value(next.n, f_next)) break;  // still green: stop
    newly_red.push_back(lin);
    --f_next;
  }
  next.f = f_next;
  next.red.resize(static_cast<std::size_t>(next.kr - next.f));
  std::size_t t = 0;
  for (auto it = newly_red.rbegin(); it != newly_red.rend(); ++it)
    next.red[t++] = *it;
  // k = row.f + 1 reads one green cell; the rest of the row is contiguous
  // red and runs as one dispatched sweep.
  if (row.f + 1 <= next.kr) {
    const double lin = linear_at(row.f + 1);
    AMOPT_DEBUG_ASSERT(lin >= green_.value(next.n, row.f + 1) - 1e-9);
    next.red[t++] = lin;
  }
  if (row.f + 2 <= next.kr) {
    const std::size_t count = static_cast<std::size_t>(next.kr - row.f - 1);
    simd::kernels().stencil3(row.red.data(), b, c, a, next.red.data() + t,
                             count);
#if defined(AMOPT_DEBUG_CHECKS)
    for (std::int64_t k = row.f + 2; k <= next.kr; ++k)
      AMOPT_DEBUG_ASSERT(next.red[t + static_cast<std::size_t>(k - row.f - 2)] >=
                         green_.value(next.n, k) - 1e-9);
#endif
    t += count;
  }
  metrics::add_flops(5 * static_cast<std::uint64_t>(next.kr - next.f));
  metrics::add_bytes(static_cast<std::uint64_t>(next.kr - next.f) *
                     sizeof(double));
  return next;
}

std::int64_t FdmSolver::solve_base(std::int64_t n0, std::int64_t f0,
                                   std::int64_t kr, std::int64_t L,
                                   std::span<const double> in,
                                   std::span<double> out) const {
  const std::span<const double> taps = kernels_->stencil().taps;
  const double b = taps[0], c = taps[1], a = taps[2];
  const simd::Kernels& kern = simd::kernels();  // one dispatch per call
  // Rows live at slots relative to the max-descent line: after s steps,
  // cell k sits at index k - (f0 - s) - 1. The boundary can drop at most
  // one cell per step (Theorem 4.3), so slots only grow rightward and two
  // consecutive rows land at fixed, known offsets — which is what lets a
  // step PAIR run as one fused stencil3_2row call (the second row chases
  // the first through L1) with only the boundary-adjacent cells of the
  // second row done by scalar probes. The fused sweeps use the shared
  // aligned-chunk driver, so each row's bulk carries exactly the bits of a
  // single monolithic stencil3 sweep; the step-0 layout equals `in`'s and
  // the step-L layout equals `out`'s, so the repack below is a straight
  // copy. Rows come from the active memory plane (see LatticeSolver): arena
  // frames make the base case allocation-free once warm; the heap plane
  // keeps the historical per-call vectors. Identical bits either way.
  ScratchStack::Frame frame(thread_scratch());
  const bool arena = cfg_.memory == MemoryPlane::arena;
  std::vector<double> cur_own, mid_own, nxt_own;
  std::span<double> cur, mid, nxt;
  if (arena) {
    cur = frame.alloc(in.size());
    mid = frame.alloc(in.size());
    nxt = frame.alloc(in.size());
  } else {
    cur_own.assign(in.size(), 0.0);
    mid_own.assign(in.size(), 0.0);
    nxt_own.assign(in.size(), 0.0);
    cur = cur_own;
    mid = mid_own;
    nxt = nxt_own;
  }
  std::copy(in.begin(), in.end(), cur.begin());
  std::int64_t f = f0;
  std::int64_t kright = kr;
  std::int64_t step = 0;
  while (step < L) {
    const std::int64_t n = n0 + step;
    const std::int64_t lag = f - (f0 - step);  // slot of cell f+1 in `cur`
    const auto value_at = [&](std::int64_t k) {
      return k <= f ? green_.value(n, k)
                    : cur[static_cast<std::size_t>(lag + k - f - 1)];
    };
    const std::int64_t kr1 = kright - 1;
    const double lin_f =
        b * value_at(f - 1) + c * value_at(f) + a * value_at(f + 1);
    const bool f_goes_red = lin_f >= green_.value(n + 1, f);
    const std::int64_t f1 = f_goes_red ? f - 1 : f;
    const std::int64_t bulk = kr1 - f - 1;  // cells f+2..kr1 of row s+1
    if (step + 1 < L && bulk >= 2) {
      // ---- fused step pair: rows s+1 (mid) and s+2 (nxt) ---------------
      // Row s+1 boundary cells first (the kernel never reads them).
      if (f_goes_red) mid[static_cast<std::size_t>(lag)] = lin_f;
      {
        const double lin =
            b * value_at(f) + c * value_at(f + 1) + a * value_at(f + 2);
        AMOPT_DEBUG_ASSERT(lin >= green_.value(n + 1, f + 1) - 1e-9);
        mid[static_cast<std::size_t>(lag + 1)] = lin;
      }
      // Both bulks in one temporally fused call: row s+1 cells f+2..kr1,
      // row s+2 cells f+3..kr1-1 (every stencil input of those is a row
      // s+1 bulk cell, so they are independent of the boundary probes).
      kern.stencil3_2row(cur.data() + lag, b, c, a, mid.data() + lag + 2,
                         nxt.data() + lag + 4,
                         static_cast<std::size_t>(bulk),
                         static_cast<std::size_t>(bulk - 2));
      // Row s+2 boundary: the probe at f1 reads greens and the two scalar
      // cells above; cells f1+1..f+2 read at most one fused bulk cell.
      const auto value_at1 = [&](std::int64_t k) {
        return k <= f1 ? green_.value(n + 1, k)
                       : mid[static_cast<std::size_t>(k - f0 + step)];
      };
      const double lin_f1 = b * value_at1(f1 - 1) + c * value_at1(f1) +
                            a * value_at1(f1 + 1);
      const bool f1_goes_red = lin_f1 >= green_.value(n + 2, f1);
      const std::int64_t f2 = f1_goes_red ? f1 - 1 : f1;
      if (f1_goes_red)
        nxt[static_cast<std::size_t>(f1 - f0 + step + 1)] = lin_f1;
      for (std::int64_t k = f1 + 1; k <= std::min(f + 2, kr1 - 1); ++k) {
        const double lin = b * value_at1(k - 1) + c * value_at1(k) +
                           a * value_at1(k + 1);
        AMOPT_DEBUG_ASSERT(lin >= green_.value(n + 2, k) - 1e-9);
        nxt[static_cast<std::size_t>(k - f0 + step + 1)] = lin;
      }
#if defined(AMOPT_DEBUG_CHECKS)
      for (std::int64_t k = f + 2; k <= kr1; ++k)
        AMOPT_DEBUG_ASSERT(mid[static_cast<std::size_t>(k - f0 + step)] >=
                           green_.value(n + 1, k) - 1e-9);
      for (std::int64_t k = f + 3; k <= kr1 - 1; ++k)
        AMOPT_DEBUG_ASSERT(nxt[static_cast<std::size_t>(k - f0 + step + 1)] >=
                           green_.value(n + 2, k) - 1e-9);
#endif
      std::swap(cur, nxt);  // row s+2 becomes current; mid is spare again
      f = f2;
      kright = kright - 2;
      step += 2;
      continue;
    }
    // ---- single step (odd tail, or a row too narrow to pair) -----------
    if (f_goes_red) mid[static_cast<std::size_t>(lag)] = lin_f;
    // Cell k = f+1 reads one green value (at k-1 = f); every cell beyond it
    // has its whole 3-cell stencil inside `cur`, so the bulk of the row is
    // one contiguous dispatched sweep (the scalar level's kernel is the
    // historical inline expression, bit-for-bit).
    if (f + 1 <= kr1) {
      const double lin =
          b * value_at(f) + c * value_at(f + 1) + a * value_at(f + 2);
      AMOPT_DEBUG_ASSERT(lin >= green_.value(n + 1, f + 1) - 1e-9);
      mid[static_cast<std::size_t>(lag + 1)] = lin;
    }
    if (f + 2 <= kr1) {
      kern.stencil3(cur.data() + lag, b, c, a, mid.data() + lag + 2,
                    static_cast<std::size_t>(bulk));
#if defined(AMOPT_DEBUG_CHECKS)
      for (std::int64_t k = f + 2; k <= kr1; ++k)
        AMOPT_DEBUG_ASSERT(mid[static_cast<std::size_t>(k - f0 + step)] >=
                           green_.value(n + 1, k) - 1e-9);
#endif
    }
    std::swap(cur, mid);
    f = f1;
    kright = kr1;
    step += 1;
  }
  // Repack into the caller's base (f0 - L): the step-L slot layout already
  // matches `out`'s, so the occupied range copies straight across.
  const std::int64_t base = f0 - L;
  const std::int64_t count = kright - f;
  std::copy_n(cur.begin() + static_cast<std::ptrdiff_t>(f - base),
              static_cast<std::size_t>(count),
              out.begin() + static_cast<std::ptrdiff_t>(f - base));
  metrics::add_flops(5 * static_cast<std::uint64_t>(L) *
                     static_cast<std::uint64_t>(kr - f0));
  return f;
}

std::int64_t FdmSolver::solve(std::int64_t n0, std::int64_t f0,
                              std::int64_t kr, std::int64_t L,
                              std::span<const double> in,
                              std::span<double> out) {
  AMOPT_EXPECTS(L >= 1);
  AMOPT_EXPECTS(kr - f0 >= 2 * L);
  AMOPT_EXPECTS(static_cast<std::int64_t>(in.size()) == kr - f0);
  AMOPT_EXPECTS(in.size() <= out.size());

  if (L <= cfg_.base_case) return solve_base(n0, f0, kr, L, in, out);

  const std::int64_t h = (L + 1) / 2;
  const std::int64_t h2 = L - h;
  AMOPT_ENSURES(h >= 1 && h2 >= 1);
  const bool spawn = cfg_.parallel && h >= cfg_.task_cutoff;

  // The h-step correlation over the provably-red cells, shared by both
  // memory planes. Same spectral routing as LatticeSolver::run_conv:
  // FFT-path sweeps consume the cache's reversed kernel spectrum and skip
  // its transform.
  const auto correlate_into = [&](std::span<double> conv_out) {
    if (conv_out.empty()) return;
    const std::span<const double> kernel =
        kernels_->power(static_cast<std::uint64_t>(h));
    if (conv::correlate_prefers_fft(conv_out.size(), kernel.size(),
                                    cfg_.conv_policy)) {
      const auto spec = kernels_->power_spectrum(
          static_cast<std::uint64_t>(h),
          conv::correlate_fft_size(conv_out.size(), kernel.size()));
      conv::correlate_valid(in, *spec, conv_out, conv::thread_workspace());
      return;
    }
    conv::correlate_valid(in, kernel, conv_out, cfg_.conv_policy);
  };

  if (cfg_.memory == MemoryPlane::arena) {
    // One arena row with base f0 - h (the lowest reachable f_mid) covering
    // k in (f0-h, kr-h]: the strip writes its (f_mid, f0+h] cells into the
    // first 2h slots and the convolution lands on [f0+h+1, kr-h] DIRECTLY
    // behind them — the mid row is assembled in place, no copies. The two
    // regions are disjoint, so the task legs never touch the same cell.
    ScratchStack::Frame frame(thread_scratch());
    std::span<double> midbuf =
        frame.alloc(static_cast<std::size_t>(kr - f0));
    std::int64_t f_mid = f0;
    const auto run_strip = [&] {
      f_mid = solve(n0, f0, f0 + 2 * h, h,
                    in.subspan(0, static_cast<std::size_t>(2 * h)),
                    midbuf.subspan(0, static_cast<std::size_t>(2 * h)));
    };
    const auto run_conv = [&] {
      correlate_into(midbuf.subspan(
          static_cast<std::size_t>(2 * h),
          static_cast<std::size_t>(std::max<std::int64_t>(kr - f0 - 2 * h,
                                                          0))));
    };
    // The legs write disjoint regions of the mid row; at pool width 1
    // invoke2 degrades to exactly the serial order below.
    if (spawn) {
      TaskPool::instance().invoke2(run_strip, run_conv);
    } else {
      run_strip();
      run_conv();
    }

    // ---- second half: row n0 + h -> n0 + L ----------------------------
    const std::int64_t mid_size = (kr - h) - f_mid;
    const std::span<const double> mid =
        midbuf.subspan(static_cast<std::size_t>(f_mid - (f0 - h)),
                       static_cast<std::size_t>(mid_size));
    const std::int64_t shift = (f_mid - h2) - (f0 - L);
    AMOPT_ENSURES(shift >= 0);
    return solve(n0 + h, f_mid, kr - h, h2, mid,
                 out.subspan(static_cast<std::size_t>(shift)));
  }

  // Heap plane (the pre-arena discipline, kept as the fig5 memory-plane
  // reference): separate strip/conv vectors assembled into a fresh mid row.
  // Strip sub-trapezoid on (f0, f0+2h]; conv on [f0+h+1, kr-h].
  std::vector<double> strip_out(static_cast<std::size_t>(2 * h), 0.0);
  std::vector<double> conv_out(
      static_cast<std::size_t>(std::max<std::int64_t>(kr - f0 - 2 * h, 0)));
  std::int64_t f_mid = f0;
  const auto run_strip = [&] {
    f_mid = solve(n0, f0, f0 + 2 * h, h,
                  in.subspan(0, static_cast<std::size_t>(2 * h)), strip_out);
  };
  const auto run_conv = [&] { correlate_into(conv_out); };
  if (spawn) {
    TaskPool::instance().invoke2(run_strip, run_conv);
  } else {
    run_strip();
    run_conv();
  }

  // Assemble the mid row over (f_mid, kr-h].
  const std::int64_t mid_size = (kr - h) - f_mid;
  std::vector<double> mid(static_cast<std::size_t>(mid_size));
  {
    // Strip buffer base is f0 - h; its cells (f_mid, f0+h] are valid.
    const std::int64_t strip_base = f0 - h;
    const std::int64_t n_strip = (f0 + h) - f_mid;
    std::copy_n(strip_out.begin() +
                    static_cast<std::ptrdiff_t>(f_mid - strip_base),
                static_cast<std::size_t>(n_strip), mid.begin());
    std::copy_n(conv_out.begin(), conv_out.size(),
                mid.begin() + static_cast<std::ptrdiff_t>(n_strip));
  }

  // ---- second half: row n0 + h -> n0 + L ------------------------------
  // Callee out base is f_mid - h2 >= f0 - L; shift into our out buffer.
  const std::int64_t shift = (f_mid - h2) - (f0 - L);
  AMOPT_ENSURES(shift >= 0);
  return solve(n0 + h, f_mid, kr - h, h2, mid,
               out.subspan(static_cast<std::size_t>(shift)));
}

FdmRow FdmSolver::advance(FdmRow row, std::int64_t L) {
  AMOPT_EXPECTS(L >= 1);
  AMOPT_EXPECTS(row.kr - row.f >= 2 * L);
  AMOPT_EXPECTS(static_cast<std::int64_t>(row.red.size()) == row.kr - row.f);

  FdmRow next;
  next.n = row.n + L;
  next.kr = row.kr - L;
  ScratchStack::Frame frame(thread_scratch());
  std::vector<double> out_own;
  std::span<double> out;
  if (cfg_.memory == MemoryPlane::arena) {
    out = frame.alloc(row.red.size());
  } else {
    out_own.assign(row.red.size(), 0.0);
    out = out_own;
  }
  // No parallel-region wrapper anymore: solve() forks its own pool tasks
  // at every level whose height clears the cutoff.
  const std::int64_t f_new = solve(row.n, row.f, row.kr, L, row.red, out);
  next.f = f_new;
  const std::int64_t base = row.f - L;
  next.red.assign(out.begin() + static_cast<std::ptrdiff_t>(f_new - base),
                  out.begin() +
                      static_cast<std::ptrdiff_t>(next.kr - base));
  return next;
}

}  // namespace amopt::core
