#include "amopt/core/task_pool.hpp"

#include <algorithm>
#include <utility>

#include "amopt/common/env.hpp"

namespace amopt::core {

namespace {

// Worker identity for on_worker() / the own-deque fast path, plus the
// nesting depth that gates an external thread's helping (an external
// thread mid-item must not pick up unrelated work — see the scheduling
// rules in the header).
thread_local int tls_depth = 0;

}  // namespace

struct TaskPool::Worker {
  Worker(TaskPool* p, int idx) : pool(p), index(idx), deque(256) {}

  TaskPool* pool;
  int index;
  Ring deque;
  std::uint64_t bcast_seen = 0;
  std::thread thread;  ///< started last, joined by ~TaskPool
};

namespace {
thread_local TaskPool::Worker* tls_worker = nullptr;
}  // namespace

// ---------------------------------------------------------------------------
// Ring

TaskPool::Ring::Ring(std::size_t cap) {
  std::size_t p2 = 1;
  while (p2 < cap) p2 <<= 1;
  buf = std::make_unique<Task*[]>(p2);
  mask = p2 - 1;
}

bool TaskPool::Ring::push(Task* t) {
  std::lock_guard<std::mutex> lk(m);
  if (tail - head > mask) return false;
  buf[tail & mask] = t;
  ++tail;
  return true;
}

TaskPool::Task* TaskPool::Ring::pop_front() {
  std::lock_guard<std::mutex> lk(m);
  if (head == tail) return nullptr;
  Task* t = buf[head & mask];
  ++head;
  return t;
}

TaskPool::Task* TaskPool::Ring::pop_back_above(std::uint64_t floor) {
  std::lock_guard<std::mutex> lk(m);
  const std::uint64_t lo = std::max(head, floor);
  if (tail <= lo) return nullptr;
  --tail;
  return buf[tail & mask];
}

std::uint64_t TaskPool::Ring::tail_position() {
  std::lock_guard<std::mutex> lk(m);
  return tail;
}

// ---------------------------------------------------------------------------
// Pool lifecycle

TaskPool& TaskPool::instance() {
  static TaskPool pool(static_cast<int>(env_long("AMOPT_THREADS", 0)));
  return pool;
}

TaskPool::TaskPool(int threads) : inject_(2048) {
  if (threads <= 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    threads = hw > 0 ? static_cast<int>(hw) : 1;
  }
  set_concurrency(threads);
}

TaskPool::~TaskPool() {
  stop_.store(true, std::memory_order_seq_cst);
  {
    std::lock_guard<std::mutex> lk(sleep_mu_);
    sleep_cv_.notify_all();
  }
  const int n = spawned_.load(std::memory_order_acquire);
  for (int i = 0; i < n; ++i)
    if (workers_[i]->thread.joinable()) workers_[i]->thread.join();
}

void TaskPool::set_concurrency(int n) {
  n = std::clamp(n, 1, kMaxThreads);
  std::lock_guard<std::mutex> lk(spawn_mu_);
  limit_.store(n, std::memory_order_release);
  spawn_workers_locked(n <= 1 ? 1 : n - 1);
  // Wake everyone: parked workers may now be active, active workers may
  // now need to park; both re-evaluate their predicates.
  std::lock_guard<std::mutex> slk(sleep_mu_);
  sleep_cv_.notify_all();
}

void TaskPool::spawn_workers_locked(int target) {
  int n = spawned_.load(std::memory_order_acquire);
  while (n < target) {
    workers_[n] = std::make_unique<Worker>(this, n);
    Worker* w = workers_[n].get();
    spawned_.store(n + 1, std::memory_order_release);
    w->thread = std::thread([this, w] { worker_main(w); });
    ++n;
  }
}

bool TaskPool::on_worker() noexcept { return tls_worker != nullptr; }

// ---------------------------------------------------------------------------
// Submission

std::uint64_t TaskPool::submit_floor() {
  Worker* w = tls_worker;
  return w ? w->deque.tail_position() : 0;
}

bool TaskPool::submit(Task* t) {
  Worker* w = tls_worker;
  const bool ok = w ? w->deque.push(t) : inject_.push(t);
  if (!ok) return false;
  ready_.fetch_add(1, std::memory_order_seq_cst);
  if (sleepers_.load(std::memory_order_seq_cst) > 0) wake_sleepers();
  return true;
}

bool TaskPool::submit_detached(Task* t) { return submit(t); }

void TaskPool::wake_sleepers() {
  // Taking the mutex orders this notify after any in-flight waiter's
  // registration; notify_all because active and parked workers share the
  // cv and notify_one could land on a parked worker whose predicate is
  // still false.
  std::lock_guard<std::mutex> lk(sleep_mu_);
  sleep_cv_.notify_all();
}

// ---------------------------------------------------------------------------
// Execution

void TaskPool::run_inline(void (*fn)(void*), void* arg) {
  ++tls_depth;
  try {
    fn(arg);
  } catch (...) {
    --tls_depth;
    throw;
  }
  --tls_depth;
}

void TaskPool::run_task(Task* t) {
  // Copy out before running: a joined task's node lives on the forking
  // caller's stack and is dead the instant pending hits zero.
  void (*fn)(void*) = t->fn;
  void* arg = t->arg;
  Join* join = t->join;
  ready_.fetch_sub(1, std::memory_order_relaxed);
  ++tls_depth;
  if (join) {
    try {
      fn(arg);
    } catch (...) {
      std::lock_guard<std::mutex> lk(join->mu);
      if (!join->err) join->err = std::current_exception();
    }
    --tls_depth;
    // err must be visible before the joiner can observe pending == 0.
    join->pending.fetch_sub(1, std::memory_order_release);
  } else {
    fn(arg);  // detached tasks must not throw
    --tls_depth;
  }
}

TaskPool::Task* TaskPool::find_task(Worker* w) {
  if (Task* t = w->deque.pop_back_above(0)) return t;
  if (Task* t = inject_.pop_front()) return t;
  const int n = spawned_.load(std::memory_order_acquire);
  for (int k = 1; k < n; ++k) {
    Worker* v = workers_[(w->index + k) % n].get();
    if (Task* t = v->deque.pop_front()) return t;
  }
  return nullptr;
}

TaskPool::Task* TaskPool::steal_external() {
  if (Task* t = inject_.pop_front()) return t;
  const int n = spawned_.load(std::memory_order_acquire);
  for (int k = 0; k < n; ++k)
    if (Task* t = workers_[k]->deque.pop_front()) return t;
  return nullptr;
}

void TaskPool::wait(Join& join, std::uint64_t floor) {
  Worker* w = tls_worker;
  while (join.pending.load(std::memory_order_acquire) > 0) {
    Task* t = nullptr;
    if (w) {
      // Only descendants of the current task (pushed at/above the fork
      // floor) — shallower entries belong to an enclosing fork and would
      // blow the per-worker scratch confinement if nested here.
      t = w->deque.pop_back_above(floor);
    } else if (tls_depth == 0) {
      t = steal_external();
    }
    if (t)
      run_task(t);
    else
      std::this_thread::yield();
  }
}

// ---------------------------------------------------------------------------
// Worker main loop

void TaskPool::worker_main(Worker* w) {
  tls_worker = w;
  std::uint64_t idle_spins = 0;
  while (!stop_.load(std::memory_order_seq_cst)) {
    // Broadcast check (run_on_workers).
    const std::uint64_t gen = bcast_gen_.load(std::memory_order_acquire);
    if (gen != w->bcast_seen) {
      w->bcast_seen = gen;
      if (w->index < bcast_limit_.load(std::memory_order_acquire)) {
        bcast_fn_(bcast_arg_);
        bcast_remaining_.fetch_sub(1, std::memory_order_release);
      } else {
        bcast_remaining_.fetch_sub(1, std::memory_order_release);
      }
      continue;
    }
    if (w->index >= active_workers()) {
      // Parked: beyond the current width. Sleep until reconfigured,
      // stopped, or broadcast to. Does not register in sleepers_ — the
      // events it waits for all notify unconditionally.
      std::unique_lock<std::mutex> lk(sleep_mu_);
      sleep_cv_.wait(lk, [&] {
        return stop_.load(std::memory_order_seq_cst) ||
               w->index < active_workers() ||
               bcast_gen_.load(std::memory_order_acquire) != w->bcast_seen;
      });
      continue;
    }
    if (Task* t = find_task(w)) {
      run_task(t);
      idle_spins = 0;
      continue;
    }
    if (++idle_spins < 64) {
      std::this_thread::yield();
      continue;
    }
    idle_spins = 0;
    // Dekker handshake with submit(): register as a sleeper, then
    // re-check ready_ inside the predicate.
    std::unique_lock<std::mutex> lk(sleep_mu_);
    sleepers_.fetch_add(1, std::memory_order_seq_cst);
    sleep_cv_.wait(lk, [&] {
      return stop_.load(std::memory_order_seq_cst) ||
             ready_.load(std::memory_order_seq_cst) > 0 ||
             w->index >= active_workers() ||
             bcast_gen_.load(std::memory_order_acquire) != w->bcast_seen;
    });
    sleepers_.fetch_sub(1, std::memory_order_seq_cst);
  }
  tls_worker = nullptr;
}

// ---------------------------------------------------------------------------
// Broadcast

void TaskPool::run_on_workers(void (*fn)(void*), void* arg) {
  std::lock_guard<std::mutex> lk(bcast_mu_);
  std::lock_guard<std::mutex> slk(spawn_mu_);
  const int n = spawned_.load(std::memory_order_acquire);
  if (n == 0) return;
  bcast_fn_ = fn;
  bcast_arg_ = arg;
  bcast_limit_.store(active_workers(), std::memory_order_release);
  bcast_remaining_.store(n, std::memory_order_release);
  bcast_gen_.fetch_add(1, std::memory_order_release);
  {
    std::lock_guard<std::mutex> wlk(sleep_mu_);
    sleep_cv_.notify_all();
  }
  while (bcast_remaining_.load(std::memory_order_acquire) > 0)
    std::this_thread::yield();
}

}  // namespace amopt::core
