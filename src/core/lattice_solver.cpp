#include "amopt/core/lattice_solver.hpp"

#include <algorithm>
#include <array>

#include "amopt/common/assert.hpp"
#include "amopt/core/task_pool.hpp"
#include "amopt/metrics/counters.hpp"
#include "amopt/simd/kernels.hpp"

namespace amopt::core {

namespace {

constexpr std::int64_t kMinWindowForRecursion = 4;

/// Below this red-interior width the fused two-row base-case sweep is not
/// worth its bookkeeping; the plain single-row step runs instead. Purely a
/// performance switch — both paths produce identical bits. The recursion's
/// leaf strips are only O(g * base_case) wide, so this must stay small for
/// the fusion to engage at all.
constexpr std::int64_t kFuseMinInterior = 8;

/// Green-extension cells per convolution (g - 1) fit here for every
/// production stencil (g <= 2); wider stencils spill to a heap vector.
constexpr std::size_t kInlineTailCap = 8;

/// A row buffer from the active memory plane: a frame span on the arena, a
/// zero-initialized heap vector (the pre-arena discipline) otherwise.
[[nodiscard]] std::span<double> take_row(ScratchStack::Frame& frame,
                                         std::vector<double>& own,
                                         std::size_t n, bool arena) {
  if (arena) return frame.alloc(n);
  own.assign(n, 0.0);
  return own;
}

}  // namespace

LatticeSolver::LatticeSolver(stencil::LinearStencil st,
                             const LatticeGreen& green, SolverConfig cfg)
    : LatticeSolver(nullptr, std::move(st), green, cfg) {}

LatticeSolver::LatticeSolver(stencil::KernelCache* shared,
                             stencil::LinearStencil fallback,
                             const LatticeGreen& green, SolverConfig cfg)
    : owned_kernels_(shared != nullptr ? nullptr
                                       : std::make_unique<stencil::KernelCache>(
                                             std::move(fallback))),
      kernels_(shared != nullptr ? shared : owned_kernels_.get()),
      green_(green), cfg_(cfg), g_(kernels_->stencil().cone_growth()) {
  // A shared cache with the WRONG taps would silently convolve with wrong
  // kernel powers (a plausible but wrong price); fallback is still intact
  // here when shared was passed, so the match is nearly free to check.
  AMOPT_EXPECTS(shared == nullptr ||
                (shared->stencil().taps == fallback.taps &&
                 shared->stencil().left == fallback.left));
  AMOPT_EXPECTS(g_ >= 1);
  AMOPT_EXPECTS(kernels_->stencil().left == 0);
  AMOPT_EXPECTS(cfg_.base_case >= 1);
}

void LatticeSolver::step_naive_into(const LatticeRow& row, bool unbounded_scan,
                                    LatticeRow& next) const {
  AMOPT_EXPECTS(row.i >= 1);
  AMOPT_EXPECTS(row.q < 0 ||
                row.q == static_cast<std::int64_t>(row.red.size()) - 1);
  const bool growing = cfg_.drift == BoundaryDrift::growing;
  next.i = row.i - 1;
  next.q = -1;
  if (row.q < 0 && !growing && !unbounded_scan) {  // stays green
    next.red.clear();
    return;
  }

  const std::span<const double> taps = kernels_->stencil().taps;
  const std::int64_t cap =
      unbounded_scan ? row_width(next.i) : row.q + (growing ? 1 : 0);
  const std::int64_t jmax = std::min(cap, row_width(next.i));
  next.red.resize(
      static_cast<std::size_t>(std::max<std::int64_t>(jmax + 1, 0)));
  // Same split as solve_base: dispatched sweep over the cells whose tap
  // windows stay red, scalar tail over the green-extension cells, then the
  // exercise-comparison scan that discovers the new boundary.
  const std::int64_t g = static_cast<std::int64_t>(taps.size()) - 1;
  const std::int64_t jv = std::min(jmax, row.q - g);
  if (jv >= 0) {
    simd::kernels().correlate_taps(row.red.data(), taps.data(), taps.size(),
                                   next.red.data(),
                                   static_cast<std::size_t>(jv + 1));
  }
  const std::int64_t j0 = std::max<std::int64_t>(0, jv + 1);
  if (j0 <= jmax) {
    // Hoist the green values the tail cells read into one buffer: adjacent
    // tap windows overlap, so the oracle (often a transcendental) was being
    // evaluated up to taps.size() times per index. Same values, same
    // accumulation order — bit-identical, just fewer oracle calls.
    const std::int64_t glo = row.q + 1;  // first green index a tail cell reads
    const std::int64_t ghi = jmax + g;
    ScratchStack::Frame frame(thread_scratch());
    std::vector<double> gown;
    std::span<double> gbuf =
        take_row(frame, gown, static_cast<std::size_t>(ghi - glo + 1),
                 cfg_.memory == MemoryPlane::arena);
    for (std::int64_t idx = glo; idx <= ghi; ++idx)
      gbuf[static_cast<std::size_t>(idx - glo)] = green_.value(row.i, idx);
    const auto value_at = [&](std::int64_t j) {
      return j <= row.q ? row.red[static_cast<std::size_t>(j)]
                        : gbuf[static_cast<std::size_t>(j - glo)];
    };
    for (std::int64_t j = j0; j <= jmax; ++j) {
      double lin = 0.0;
      for (std::size_t k = 0; k < taps.size(); ++k)
        lin += taps[k] * value_at(j + static_cast<std::int64_t>(k));
      next.red[static_cast<std::size_t>(j)] = lin;
    }
  }
  // Downward early-exit discovery: identical q to the historical upward
  // full scan (see solve_base), O(jmax - q) instead of O(jmax) oracle calls.
  for (std::int64_t j = jmax; j >= 0; --j) {
    if (next.red[static_cast<std::size_t>(j)] >= green_.value(next.i, j)) {
      next.q = j;
      break;
    }
  }
  metrics::add_flops(2 * static_cast<std::uint64_t>(jmax + 1) * taps.size());
  metrics::add_bytes(static_cast<std::uint64_t>(jmax + 1) * sizeof(double));
  next.red.resize(
      static_cast<std::size_t>(std::max<std::int64_t>(next.q + 1, 0)));
}

LatticeRow LatticeSolver::step_naive(const LatticeRow& row,
                                     bool unbounded_scan) const {
  LatticeRow next;
  step_naive_into(row, unbounded_scan, next);
  return next;
}

void LatticeSolver::run_conv(std::span<const double> main,
                             std::span<const double> tail, std::int64_t h,
                             std::span<double> out) {
  // The kernel length is known without materializing the kernel
  // (taps^h has g*h + 1 coefficients), so the FFT path never touches the
  // time-domain tier at all. FFT-path convolutions consume the cache's
  // ready-made kernel spectrum (2 transforms per call instead of 3);
  // repeated trapezoids at the same (height, padded size) — within this
  // pricing and across every pricing sharing the cache — pay the kernel
  // transform once. Same bits as the transform-per-call path, so this is
  // pure work elision.
  const std::size_t klen = static_cast<std::size_t>(g_ * h + 1);
  if (conv::correlate_prefers_fft(out.size(), klen, cfg_.conv_policy)) {
    const auto spec = kernels_->power_spectrum(
        static_cast<std::uint64_t>(h),
        conv::correlate_fft_size(out.size(), klen));
    conv::correlate_valid(main, tail, *spec, out, conv::thread_workspace());
    return;
  }
  const std::span<const double> kernel =
      kernels_->power(static_cast<std::uint64_t>(h));
  conv::correlate_valid(main, tail, kernel, out, conv::thread_workspace(),
                        cfg_.conv_policy);
}

std::int64_t LatticeSolver::solve_base(std::int64_t i0, std::int64_t jL,
                                       std::int64_t q0, std::int64_t L,
                                       std::span<const double> in,
                                       std::span<double> out) const {
  const bool growing = cfg_.drift == BoundaryDrift::growing;
  const bool arena = cfg_.memory == MemoryPlane::arena;
  const std::span<const double> taps = kernels_->stencil().taps;
  const simd::Kernels& kern = simd::kernels();  // one dispatch per call
  const std::int64_t g = static_cast<std::int64_t>(taps.size()) - 1;
  const std::size_t W =
      in.size() + (growing ? static_cast<std::size_t>(L) : 0);

  ScratchStack::Frame frame(thread_scratch());
  std::vector<double> cur_own, b1_own, b2_own;
  std::span<double> cur = take_row(frame, cur_own, W, arena);
  std::span<double> buf1 = take_row(frame, b1_own, W, arena);
  // The third row only exists on the arena plane, where the fused two-step
  // sweep rotates (cur, buf1, buf2); the heap plane keeps the historical
  // two-buffer single-step shape.
  std::span<double> buf2 = arena ? frame.alloc(W) : std::span<double>{};
  std::copy(in.begin(), in.end(), cur.begin());

  // Scalar green-extension tail + boundary-discovery scan for the row that
  // `src` (boundary q_src, consumed row index i_src) steps into `dst`,
  // whose red interior [jL, jv] is already in place. Returns the new
  // boundary. This is the historical per-row epilogue, shared verbatim by
  // the single-step and fused paths so both produce identical bits.
  const auto finish_row = [&](std::int64_t i_src, std::int64_t q_src,
                              std::span<const double> src,
                              std::span<double> dst, std::int64_t jv,
                              std::int64_t jmax) -> std::int64_t {
    const auto value_at = [&](std::int64_t j) {
      return (j <= q_src && j >= jL) ? src[static_cast<std::size_t>(j - jL)]
                                     : green_.value(i_src, j);
    };
    for (std::int64_t j = std::max(jL, jv + 1); j <= jmax; ++j) {
      double lin = 0.0;
      for (std::size_t k = 0; k < taps.size(); ++k)
        lin += taps[k] * value_at(j + static_cast<std::int64_t>(k));
      dst[static_cast<std::size_t>(j - jL)] = lin;
    }
    // Boundary discovery sweep (the nonlinear exercise-max). The historical
    // loop swept upward and kept the LAST j where continuation still beats
    // exercise; sweeping DOWNWARD and stopping at the first such j yields
    // the identical q (the predicate has no side effects) while touching
    // O(1) cells per row instead of the whole window — under the one-cell
    // motion bound the boundary sits within a couple of cells of the top.
    std::int64_t qnext = jL - 1;
    for (std::int64_t j = jmax; j >= jL; --j) {
      if (dst[static_cast<std::size_t>(j - jL)] >= green_.value(i_src - 1, j)) {
        qnext = j;
        break;
      }
    }
    metrics::add_flops(
        2 *
        static_cast<std::uint64_t>(std::max<std::int64_t>(jmax - jL + 1, 0)) *
        taps.size());
    return qnext;
  };

  // One-cell boundary motion, window-local: the boundary moves at most one
  // cell per step (right for growing, left for shrinking), clipped to the
  // observable window top jmax (near the lattice tip the row width g*i
  // clips it below q), with ONE extra cell of slack for numerical ties —
  // the boundary cell sits exactly where lin == green, and a last-ulp
  // difference (e.g. the AVX-512 FMA path) can flip that comparison.
  const auto check_motion = [&](std::int64_t q_src, std::int64_t cap,
                                std::int64_t jmax, std::int64_t qnext) {
    AMOPT_DEBUG_ASSERT(
        growing ? (qnext <= cap && qnext >= std::min(q_src, jmax) - 1)
                : (qnext <= q_src && qnext >= std::min(q_src - 1, jmax) - 1));
    (void)q_src, (void)cap, (void)jmax, (void)qnext;
  };

  std::int64_t qcur = q0;
  std::int64_t step = 0;
  while (step < L) {
    const std::int64_t i = i0 - step;  // row being consumed
    if (qcur < jL && !growing) return jL - 1;  // all green from here down
    const std::int64_t cap1 = growing ? std::max(qcur, jL - 1) + 1 : qcur;
    const std::int64_t jmax1 = std::min(cap1, row_width(i - 1));
    const std::int64_t jv1 = std::min(jmax1, qcur - g);
    const std::int64_t interior1 = jv1 - jL + 1;

    if (arena && step + 1 < L && interior1 >= kFuseMinInterior) {
      // Fused two-step sweep: advance rows i -> i-1 -> i-2 in one pass over
      // `cur` while it is still in L1. Second-row cells are computed
      // speculatively only where their whole tap window is provably red for
      // both steps under the one-cell boundary-motion bound WITH its tie
      // slack (q1 >= qcur - 2); everything nearer the boundary is finished
      // after q1 is actually discovered, so q evolution — and every cell —
      // is bit-identical to two single-row steps.
      // Speculation clipped DOWN to the widest vector width: the top-up
      // sweep below then starts on the same lane grid a single monolithic
      // sweep would use, so the fused second row is bit-identical to an
      // unfused one even on FMA dispatch levels (vector and scalar lanes
      // round differently there — partition identity is what keeps the
      // arena and heap memory planes bit-equal).
      const std::int64_t n2 = std::max<std::int64_t>(
          0, std::min(qcur - 2, jv1) - g - jL + 1) &
          ~std::int64_t{7};
      kern.correlate_taps_2row(
          cur.data(), taps.data(), taps.size(), buf1.data(), buf2.data(),
          static_cast<std::size_t>(interior1), static_cast<std::size_t>(n2));
      const std::int64_t q1 = finish_row(i, qcur, cur, buf1, jv1, jmax1);
      check_motion(qcur, cap1, jmax1, q1);
      if (q1 < jL && !growing) return jL - 1;
      const std::int64_t cap2 = growing ? std::max(q1, jL - 1) + 1 : q1;
      const std::int64_t jmax2 = std::min(cap2, row_width(i - 2));
      const std::int64_t jv2 = std::min(jmax2, q1 - g);
      if (jv2 >= jL + n2) {
        // Interior cells the speculation could not prove red in advance.
        // n2 is 8-aligned, so this sweep's vector blocks and scalar tail
        // land exactly where a single full-interior sweep's would.
        kern.correlate_taps(buf1.data() + n2, taps.data(), taps.size(),
                            buf2.data() + n2,
                            static_cast<std::size_t>(jv2 - (jL + n2) + 1));
      }
      const std::int64_t q2 = finish_row(i - 1, q1, buf1, buf2, jv2, jmax2);
      check_motion(q1, cap2, jmax2, q2);
      std::swap(cur, buf2);  // rows rotate; old cur becomes scratch
      qcur = q2;
      step += 2;
      continue;
    }

    // Cells whose whole tap window stays inside the red prefix are one
    // contiguous dispatched sweep over `cur`; the trailing cells that read
    // green extension values stay scalar. The scalar table's kernel is this
    // loop's historical accumulation, so the scalar level is bit-identical.
    if (jv1 >= jL) {
      kern.correlate_taps(cur.data(), taps.data(), taps.size(), buf1.data(),
                          static_cast<std::size_t>(interior1));
    }
    const std::int64_t q1 = finish_row(i, qcur, cur, buf1, jv1, jmax1);
    check_motion(qcur, cap1, jmax1, q1);
    std::swap(cur, buf1);
    qcur = q1;
    step += 1;
  }
  if (qcur >= jL) {
    std::copy_n(cur.begin(), static_cast<std::size_t>(qcur - jL + 1),
                out.begin());
  }
  return qcur;
}

std::int64_t LatticeSolver::solve(std::int64_t i0, std::int64_t jL,
                                  std::int64_t q0, std::int64_t L,
                                  std::span<const double> in,
                                  std::span<double> out) {
  const bool growing = cfg_.drift == BoundaryDrift::growing;
  AMOPT_EXPECTS(L >= 1 && i0 - L >= 0);
  AMOPT_EXPECTS(growing ? q0 >= jL - 1 : q0 >= jL);
  AMOPT_EXPECTS(static_cast<std::int64_t>(in.size()) == q0 - jL + 1);
  AMOPT_EXPECTS(static_cast<std::int64_t>(out.size()) >=
                q0 - jL + 1 + (growing ? L : 0));

  if (L <= cfg_.base_case || q0 - jL + 1 <= kMinWindowForRecursion)
    return solve_base(i0, jL, q0, L, in, out);

  const std::int64_t h = (L + 1) / 2;
  const std::int64_t h2 = L - h;
  AMOPT_ENSURES(h >= 1 && h2 >= 1);
  const bool arena = cfg_.memory == MemoryPlane::arena;

  // Last provably-convolvable column at depth d below a row with boundary
  // q: every cell of the cone must stay red while the boundary drifts.
  const auto conv_safe = [&](std::int64_t q, std::int64_t d) {
    return growing ? q - g_ * d : q - d - (g_ - 1) * (d - 1);
  };

  // Builds the g-1 green-extension cells of row `i_row` past boundary `q`
  // into `buf` (heap spill for exotic stencils) and returns them as the
  // correlation's split tail — the red prefix itself is never copied.
  std::array<double, kInlineTailCap> tail1_buf, tail2_buf;
  std::vector<double> tail_spill;
  const auto green_tail = [&](std::int64_t i_row, std::int64_t q,
                              std::array<double, kInlineTailCap>& buf)
      -> std::span<const double> {
    const std::int64_t n_ext = growing ? 0 : g_ - 1;
    std::span<double> t;
    if (n_ext <= static_cast<std::int64_t>(kInlineTailCap)) {
      t = std::span<double>(buf.data(), static_cast<std::size_t>(n_ext));
    } else {
      tail_spill.resize(static_cast<std::size_t>(n_ext));
      t = tail_spill;
    }
    for (std::int64_t e = 1; e <= n_ext; ++e)
      t[static_cast<std::size_t>(e - 1)] = green_.value(i_row, q + e);
    return t;
  };

  ScratchStack::Frame frame(thread_scratch());
  std::vector<double> mid_own;
  std::span<double> mid = take_row(
      frame, mid_own,
      in.size() + (growing ? static_cast<std::size_t>(h) : 0), arena);

  // ---- first half: row i0 -> row i0 - h --------------------------------
  std::int64_t q_mid = jL - 1;
  const std::int64_t jC = conv_safe(q0, h);
  if (jC >= jL) {
    // Shrinking cones read g-1 green cells past the red prefix; growing
    // cones stay inside it. On the arena plane the green cells ride as the
    // correlation's split tail; the heap plane keeps the historical
    // concatenated copy (same staged bytes, so same bits either way).
    std::span<const double> conv_in = in;
    std::span<const double> tail{};
    std::vector<double> ext;
    if (arena) {
      tail = green_tail(i0, q0, tail1_buf);
    } else {
      const std::int64_t n_ext = growing ? 0 : g_ - 1;
      ext.reserve(in.size() + static_cast<std::size_t>(n_ext));
      ext.assign(in.begin(), in.end());
      for (std::int64_t e = 1; e <= n_ext; ++e)
        ext.push_back(green_.value(i0, q0 + e));
      conv_in = ext;
    }

    std::int64_t q_strip = jL - 1;
    const bool spawn = cfg_.parallel && h >= cfg_.task_cutoff;
    const auto conv_part = [&] {
      run_conv(conv_in, tail, h,
               mid.subspan(0, static_cast<std::size_t>(jC - jL + 1)));
    };
    const auto strip_part = [&] {
      q_strip = solve(i0, jC + 1, q0, h,
                      in.subspan(static_cast<std::size_t>(jC + 1 - jL)),
                      mid.subspan(static_cast<std::size_t>(jC + 1 - jL)));
    };
    // The legs write disjoint regions of `mid`; at pool width 1 invoke2
    // degrades to exactly the serial order below.
    if (spawn) {
      TaskPool::instance().invoke2(conv_part, strip_part);
    } else {
      conv_part();
      strip_part();
    }
    q_mid = std::max(q_strip, jC);  // conv cells are red by construction
  } else if (arena) {
    // Window too narrow to convolve: recurse straight into `mid`.
    q_mid = solve(i0, jL, q0, h, in, mid);
  } else {
    q_mid = solve(i0, jL, q0, h, in, out);  // historical: out as scratch
    if (q_mid >= jL)
      std::copy_n(out.begin(), static_cast<std::size_t>(q_mid - jL + 1),
                  mid.begin());
  }
  if (q_mid < jL && !growing) return jL - 1;  // all green below (Lemma 2.4)

  // ---- second half: row i0 - h -> row i0 - L ---------------------------
  const std::int64_t im = i0 - h;
  const std::int64_t jC2 = conv_safe(q_mid, h2);
  const std::span<const double> mid_in(
      mid.data(),
      static_cast<std::size_t>(std::max<std::int64_t>(q_mid - jL + 1, 0)));
  if (jC2 >= jL) {
    std::span<const double> conv_in = mid_in;
    std::span<const double> tail{};
    std::vector<double> ext;
    if (arena) {
      tail = green_tail(im, q_mid, tail2_buf);
    } else {
      const std::int64_t n_ext = growing ? 0 : g_ - 1;
      ext.reserve(mid_in.size() + static_cast<std::size_t>(n_ext));
      ext.assign(mid_in.begin(), mid_in.end());
      for (std::int64_t e = 1; e <= n_ext; ++e)
        ext.push_back(green_.value(im, q_mid + e));
      conv_in = ext;
    }

    std::int64_t q_strip = jL - 1;
    const bool spawn = cfg_.parallel && h2 >= cfg_.task_cutoff;
    const auto conv_part = [&] {
      run_conv(conv_in, tail, h2,
               out.subspan(0, static_cast<std::size_t>(jC2 - jL + 1)));
    };
    const auto strip_part = [&] {
      q_strip = solve(im, jC2 + 1, q_mid, h2,
                      mid_in.subspan(static_cast<std::size_t>(jC2 + 1 - jL)),
                      out.subspan(static_cast<std::size_t>(jC2 + 1 - jL)));
    };
    if (spawn) {
      TaskPool::instance().invoke2(conv_part, strip_part);
    } else {
      conv_part();
      strip_part();
    }
    return std::max(q_strip, jC2);
  }
  return solve(im, jL, q_mid, h2, mid_in, out);
}

LatticeRow LatticeSolver::descend(LatticeRow top, std::int64_t i_stop) {
  AMOPT_EXPECTS(i_stop >= 0 && top.i >= i_stop);
  const bool growing = cfg_.drift == BoundaryDrift::growing;
  const bool arena = cfg_.memory == MemoryPlane::arena;
  LatticeRow row = std::move(top);
  // Ping-pong row: `next`'s storage shuttles between descend() calls via
  // spare_red_, so a warm solver repeats a descent with zero allocations.
  LatticeRow next;
  next.red = std::move(spare_red_);
  while (row.i > i_stop) {
    if (row.q < 0) {
      if (!growing) {
        // Entirely green: stays green all the way down (Lemma 2.4 / A.2).
        row.i = i_stop;
        row.red.clear();
        break;
      }
      step_naive_into(row, false, next);  // red can reappear; probe one row
      std::swap(row, next);
      continue;
    }
    const std::int64_t L_red = std::max<std::int64_t>((row.q + 1) / g_, 1);
    const std::int64_t L = std::min(L_red, row.i - i_stop);
    if (L <= cfg_.base_case) {
      step_naive_into(row, false, next);
      std::swap(row, next);
      continue;
    }
    next.i = row.i - L;
    const std::size_t n =
        row.red.size() + (growing ? static_cast<std::size_t>(L) : 0);
    if (arena) {
      // resize, not assign: solve() fills every cell up to the returned
      // boundary, so the old contents need no zeroing pass.
      next.red.resize(n);
    } else {
      std::vector<double>(n, 0.0).swap(next.red);  // the pre-arena discipline
    }
    // No parallel-region wrapper anymore: solve() forks its own pool tasks
    // at every level whose height clears the cutoff.
    next.q = solve(row.i, 0, row.q, L, row.red, next.red);
    next.red.resize(
        static_cast<std::size_t>(std::max<std::int64_t>(next.q + 1, 0)));
    std::swap(row, next);
  }
  spare_red_ = std::move(next.red);
  return row;
}

}  // namespace core
