#include "amopt/core/lattice_solver.hpp"

#include <algorithm>

#include "amopt/common/assert.hpp"
#include "amopt/common/parallel.hpp"
#include "amopt/metrics/counters.hpp"
#include "amopt/simd/kernels.hpp"

namespace amopt::core {

namespace {
constexpr std::int64_t kMinWindowForRecursion = 4;
}

LatticeSolver::LatticeSolver(stencil::LinearStencil st,
                             const LatticeGreen& green, SolverConfig cfg)
    : LatticeSolver(nullptr, std::move(st), green, cfg) {}

LatticeSolver::LatticeSolver(stencil::KernelCache* shared,
                             stencil::LinearStencil fallback,
                             const LatticeGreen& green, SolverConfig cfg)
    : owned_kernels_(shared != nullptr ? nullptr
                                       : std::make_unique<stencil::KernelCache>(
                                             std::move(fallback))),
      kernels_(shared != nullptr ? shared : owned_kernels_.get()),
      green_(green), cfg_(cfg), g_(kernels_->stencil().cone_growth()) {
  // A shared cache with the WRONG taps would silently convolve with wrong
  // kernel powers (a plausible but wrong price); fallback is still intact
  // here when shared was passed, so the match is nearly free to check.
  AMOPT_EXPECTS(shared == nullptr ||
                (shared->stencil().taps == fallback.taps &&
                 shared->stencil().left == fallback.left));
  AMOPT_EXPECTS(g_ >= 1);
  AMOPT_EXPECTS(kernels_->stencil().left == 0);
  AMOPT_EXPECTS(cfg_.base_case >= 1);
}

LatticeRow LatticeSolver::step_naive(const LatticeRow& row,
                                     bool unbounded_scan) const {
  AMOPT_EXPECTS(row.i >= 1);
  AMOPT_EXPECTS(row.q < 0 ||
                row.q == static_cast<std::int64_t>(row.red.size()) - 1);
  const bool growing = cfg_.drift == BoundaryDrift::growing;
  LatticeRow next;
  next.i = row.i - 1;
  next.q = -1;
  if (row.q < 0 && !growing && !unbounded_scan) return next;  // stays green

  const std::span<const double> taps = kernels_->stencil().taps;
  const std::int64_t cap =
      unbounded_scan ? row_width(next.i) : row.q + (growing ? 1 : 0);
  const std::int64_t jmax = std::min(cap, row_width(next.i));
  next.red.resize(
      static_cast<std::size_t>(std::max<std::int64_t>(jmax + 1, 0)));
  const auto value_at = [&](std::int64_t j) {
    return j <= row.q ? row.red[static_cast<std::size_t>(j)]
                      : green_.value(row.i, j);
  };
  // Same split as solve_base: dispatched sweep over the cells whose tap
  // windows stay red, scalar tail over the green-extension cells, then the
  // exercise-comparison scan that discovers the new boundary.
  const std::int64_t g = static_cast<std::int64_t>(taps.size()) - 1;
  const std::int64_t jv = std::min(jmax, row.q - g);
  if (jv >= 0) {
    simd::kernels().correlate_taps(row.red.data(), taps.data(), taps.size(),
                                   next.red.data(),
                                   static_cast<std::size_t>(jv + 1));
  }
  for (std::int64_t j = std::max<std::int64_t>(0, jv + 1); j <= jmax; ++j) {
    double lin = 0.0;
    for (std::size_t k = 0; k < taps.size(); ++k)
      lin += taps[k] * value_at(j + static_cast<std::int64_t>(k));
    next.red[static_cast<std::size_t>(j)] = lin;
  }
  for (std::int64_t j = 0; j <= jmax; ++j) {
    if (next.red[static_cast<std::size_t>(j)] >= green_.value(next.i, j))
      next.q = j;
  }
  metrics::add_flops(2 * static_cast<std::uint64_t>(jmax + 1) * taps.size());
  metrics::add_bytes(static_cast<std::uint64_t>(jmax + 1) * sizeof(double));
  next.red.resize(static_cast<std::size_t>(next.q + 1));
  return next;
}

void LatticeSolver::run_conv(std::span<const double> ext, std::int64_t h,
                             std::span<double> out) {
  const std::span<const double> kernel =
      kernels_->power(static_cast<std::uint64_t>(h));
  // FFT-path convolutions consume the cache's ready-made kernel spectrum
  // (2 transforms per call instead of 3); repeated trapezoids at the same
  // (height, padded size) — within this pricing and across every pricing
  // sharing the cache — pay the kernel transform once. Same bits as the
  // transform-per-call path, so this is pure work elision.
  if (conv::correlate_prefers_fft(out.size(), kernel.size(),
                                  cfg_.conv_policy)) {
    const fft::RealSpectrum& spec = kernels_->power_spectrum(
        static_cast<std::uint64_t>(h),
        conv::correlate_fft_size(out.size(), kernel.size()));
    conv::correlate_valid(ext, spec, out, conv::thread_workspace());
    return;
  }
  conv::correlate_valid(ext, kernel, out, cfg_.conv_policy);
}

std::int64_t LatticeSolver::solve_base(std::int64_t i0, std::int64_t jL,
                                       std::int64_t q0, std::int64_t L,
                                       std::span<const double> in,
                                       std::span<double> out) const {
  const bool growing = cfg_.drift == BoundaryDrift::growing;
  const std::span<const double> taps = kernels_->stencil().taps;
  std::vector<double> cur(in.begin(), in.end());
  std::vector<double> nxt(in.size() + (growing ? static_cast<std::size_t>(L) : 0));
  cur.resize(nxt.size());
  std::int64_t qcur = q0;
  for (std::int64_t step = 0; step < L; ++step) {
    const std::int64_t i = i0 - step;   // row being consumed
    const std::int64_t inext = i - 1;   // row being produced
    if (qcur < jL && !growing) return jL - 1;  // all green from here down
    const std::int64_t cap = growing ? std::max(qcur, jL - 1) + 1 : qcur;
    const std::int64_t jmax = std::min(cap, row_width(inext));
    std::int64_t qnext = jL - 1;
    const auto value_at = [&](std::int64_t j) {
      return (j <= qcur && j >= jL) ? cur[static_cast<std::size_t>(j - jL)]
                                    : green_.value(i, j);
    };
    // Cells whose whole tap window stays inside the red prefix are one
    // contiguous dispatched sweep over `cur`; the trailing cells that read
    // green extension values stay scalar. The scalar table's kernel is this
    // loop's historical accumulation, so the scalar level is bit-identical.
    const std::int64_t g = static_cast<std::int64_t>(taps.size()) - 1;
    const std::int64_t jv = std::min(jmax, qcur - g);
    if (jv >= jL) {
      simd::kernels().correlate_taps(cur.data(), taps.data(), taps.size(),
                                     nxt.data(),
                                     static_cast<std::size_t>(jv - jL + 1));
    }
    for (std::int64_t j = std::max(jL, jv + 1); j <= jmax; ++j) {
      double lin = 0.0;
      for (std::size_t k = 0; k < taps.size(); ++k)
        lin += taps[k] * value_at(j + static_cast<std::int64_t>(k));
      nxt[static_cast<std::size_t>(j - jL)] = lin;
    }
    // Boundary discovery sweep (the nonlinear exercise-max): same
    // comparison order as the fused historical loop.
    for (std::int64_t j = jL; j <= jmax; ++j) {
      if (nxt[static_cast<std::size_t>(j - jL)] >= green_.value(inext, j))
        qnext = j;
    }
    // One-cell boundary motion, window-local: the boundary moves at most
    // one cell per step (right for growing, left for shrinking), clipped to
    // the observable window top jmax (near the lattice tip the row width
    // g*inext clips it below qcur), with ONE extra cell of slack for
    // numerical ties — the boundary cell sits exactly where lin == green,
    // and a last-ulp difference (e.g. the AVX-512 FMA path) can flip that
    // comparison. (The pre-PR form of this check asserted qnext >= qcur
    // unclipped and failed on small-T puts; it was dead code until Debug
    // builds started defining AMOPT_DEBUG_CHECKS.)
    AMOPT_DEBUG_ASSERT(
        growing ? (qnext <= cap && qnext >= std::min(qcur, jmax) - 1)
                : (qnext <= qcur && qnext >= std::min(qcur - 1, jmax) - 1));
    metrics::add_flops(
        2 *
        static_cast<std::uint64_t>(std::max<std::int64_t>(jmax - jL + 1, 0)) *
        taps.size());
    cur.swap(nxt);
    qcur = qnext;
  }
  if (qcur >= jL) {
    std::copy_n(cur.begin(), static_cast<std::size_t>(qcur - jL + 1),
                out.begin());
  }
  return qcur;
}

std::int64_t LatticeSolver::solve(std::int64_t i0, std::int64_t jL,
                                  std::int64_t q0, std::int64_t L,
                                  std::span<const double> in,
                                  std::span<double> out) {
  const bool growing = cfg_.drift == BoundaryDrift::growing;
  AMOPT_EXPECTS(L >= 1 && i0 - L >= 0);
  AMOPT_EXPECTS(growing ? q0 >= jL - 1 : q0 >= jL);
  AMOPT_EXPECTS(static_cast<std::int64_t>(in.size()) == q0 - jL + 1);
  AMOPT_EXPECTS(static_cast<std::int64_t>(out.size()) >=
                q0 - jL + 1 + (growing ? L : 0));

  if (L <= cfg_.base_case || q0 - jL + 1 <= kMinWindowForRecursion)
    return solve_base(i0, jL, q0, L, in, out);

  const std::int64_t h = (L + 1) / 2;
  const std::int64_t h2 = L - h;
  AMOPT_ENSURES(h >= 1 && h2 >= 1);

  // Last provably-convolvable column at depth d below a row with boundary
  // q: every cell of the cone must stay red while the boundary drifts.
  const auto conv_safe = [&](std::int64_t q, std::int64_t d) {
    return growing ? q - g_ * d : q - d - (g_ - 1) * (d - 1);
  };

  // ---- first half: row i0 -> row i0 - h --------------------------------
  std::vector<double> mid(in.size() + (growing ? static_cast<std::size_t>(h) : 0));
  std::int64_t q_mid = jL - 1;
  const std::int64_t jC = conv_safe(q0, h);
  if (jC >= jL) {
    // Shrinking cones read g-1 green cells past the red prefix; growing
    // cones stay inside it.
    std::vector<double> ext;
    const std::int64_t n_ext = growing ? 0 : g_ - 1;
    ext.reserve(in.size() + static_cast<std::size_t>(n_ext));
    ext.assign(in.begin(), in.end());
    for (std::int64_t e = 1; e <= n_ext; ++e)
      ext.push_back(green_.value(i0, q0 + e));

    std::int64_t q_strip = jL - 1;
    const bool spawn = cfg_.parallel && h >= cfg_.task_cutoff;
    const auto conv_part = [&] {
      run_conv(ext, h,
               std::span<double>(mid).subspan(
                   0, static_cast<std::size_t>(jC - jL + 1)));
    };
    const auto strip_part = [&] {
      q_strip = solve(i0, jC + 1, q0, h,
                      in.subspan(static_cast<std::size_t>(jC + 1 - jL)),
                      std::span<double>(mid).subspan(
                          static_cast<std::size_t>(jC + 1 - jL)));
    };
    if (spawn) {
#pragma omp taskgroup
      {
#pragma omp task default(shared)
        conv_part();
#pragma omp task default(shared)
        strip_part();
      }
    } else {
      conv_part();
      strip_part();
    }
    q_mid = std::max(q_strip, jC);  // conv cells are red by construction
  } else {
    q_mid = solve(i0, jL, q0, h, in, out);  // window too narrow: out=scratch
    if (q_mid >= jL)
      std::copy_n(out.begin(), static_cast<std::size_t>(q_mid - jL + 1),
                  mid.begin());
  }
  if (q_mid < jL && !growing) return jL - 1;  // all green below (Lemma 2.4)

  // ---- second half: row i0 - h -> row i0 - L ---------------------------
  const std::int64_t im = i0 - h;
  const std::int64_t jC2 = conv_safe(q_mid, h2);
  const std::span<const double> mid_in(
      mid.data(),
      static_cast<std::size_t>(std::max<std::int64_t>(q_mid - jL + 1, 0)));
  if (jC2 >= jL) {
    std::vector<double> ext;
    const std::int64_t n_ext = growing ? 0 : g_ - 1;
    ext.reserve(mid_in.size() + static_cast<std::size_t>(n_ext));
    ext.assign(mid_in.begin(), mid_in.end());
    for (std::int64_t e = 1; e <= n_ext; ++e)
      ext.push_back(green_.value(im, q_mid + e));

    std::int64_t q_strip = jL - 1;
    const bool spawn = cfg_.parallel && h2 >= cfg_.task_cutoff;
    const auto conv_part = [&] {
      run_conv(ext, h2,
               out.subspan(0, static_cast<std::size_t>(jC2 - jL + 1)));
    };
    const auto strip_part = [&] {
      q_strip = solve(im, jC2 + 1, q_mid, h2,
                      mid_in.subspan(static_cast<std::size_t>(jC2 + 1 - jL)),
                      out.subspan(static_cast<std::size_t>(jC2 + 1 - jL)));
    };
    if (spawn) {
#pragma omp taskgroup
      {
#pragma omp task default(shared)
        conv_part();
#pragma omp task default(shared)
        strip_part();
      }
    } else {
      conv_part();
      strip_part();
    }
    return std::max(q_strip, jC2);
  }
  return solve(im, jL, q_mid, h2, mid_in, out);
}

LatticeRow LatticeSolver::descend(LatticeRow top, std::int64_t i_stop) {
  AMOPT_EXPECTS(i_stop >= 0 && top.i >= i_stop);
  const bool growing = cfg_.drift == BoundaryDrift::growing;
  LatticeRow row = std::move(top);
  while (row.i > i_stop) {
    if (row.q < 0) {
      if (!growing) {
        // Entirely green: stays green all the way down (Lemma 2.4 / A.2).
        row.i = i_stop;
        row.red.clear();
        return row;
      }
      row = step_naive(row);  // red can reappear; probe one row at a time
      continue;
    }
    const std::int64_t L_red = std::max<std::int64_t>((row.q + 1) / g_, 1);
    const std::int64_t L = std::min(L_red, row.i - i_stop);
    if (L <= cfg_.base_case) {
      row = step_naive(row);
      continue;
    }
    LatticeRow next;
    next.i = row.i - L;
    next.red.assign(row.red.size() + (growing ? static_cast<std::size_t>(L) : 0),
                    0.0);
    const auto run = [&] {
      next.q = solve(row.i, 0, row.q, L, row.red, next.red);
    };
    if (cfg_.parallel && !in_parallel_region() && hardware_threads() > 1 &&
        L >= cfg_.task_cutoff) {
#pragma omp parallel
#pragma omp single
      run();
    } else {
      run();
    }
    next.red.resize(
        static_cast<std::size_t>(std::max<std::int64_t>(next.q + 1, 0)));
    row = std::move(next);
  }
  return row;
}

}  // namespace core
