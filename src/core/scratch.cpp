#include "amopt/core/scratch.hpp"

#include <algorithm>

#if defined(AMOPT_DEBUG_CHECKS)
#include <limits>
#endif

namespace amopt::core {

namespace {
// 8 KiB floor keeps tiny first frames from minting a chain of micro-blocks.
constexpr std::size_t kMinBlockDoubles = 1024;
constexpr std::size_t kAlignDoubles = kCacheLine / sizeof(double);
}  // namespace

std::span<double> ScratchStack::alloc(std::size_t n) {
  if (n == 0) return {};
  // Round every allocation to a cache line so each span starts 64B-aligned
  // (block bases are aligned_vector allocations).
  const std::size_t need = (n + kAlignDoubles - 1) & ~(kAlignDoubles - 1);
  while (block_ < blocks_.size() &&
         blocks_[block_].size() - off_ < need) {
    ++block_;
    off_ = 0;
  }
  if (block_ == blocks_.size()) {
    // Append a block covering at least everything held so far: outstanding
    // spans in earlier blocks stay valid, and the next warm pass falls
    // through to this block alone (the earlier ones only cost address
    // space until then).
    const std::size_t sz =
        std::max({kMinBlockDoubles, need, 2 * capacity()});
    blocks_.emplace_back(sz);
    off_ = 0;
  }
  double* p = blocks_[block_].data() + off_;
  off_ += need;
#if defined(AMOPT_DEBUG_CHECKS)
  // Poison so Debug builds turn any read-before-write into a NaN price.
  std::fill_n(p, n, std::numeric_limits<double>::quiet_NaN());
#endif
  return {p, n};
}

bool ScratchStack::trim(std::size_t retain_bytes) noexcept {
  if (frames_ != 0) return false;  // mid-descent: stay grow-only
  // Blocks grow toward the back (each append covers everything before it),
  // so the suffix holds the most storage per block: keep the longest suffix
  // fitting the budget and drop the dead prefix.
  const std::size_t retain_doubles = retain_bytes / sizeof(double);
  std::size_t keep = blocks_.size(), held = 0;
  while (keep > 0 && held + blocks_[keep - 1].size() <= retain_doubles)
    held += blocks_[--keep].size();
  if (keep == 0) return false;
  blocks_.erase(blocks_.begin(),
                blocks_.begin() + static_cast<std::ptrdiff_t>(keep));
  block_ = 0;
  off_ = 0;
  return true;
}

ScratchStack& thread_scratch() {
  thread_local ScratchStack s;
  return s;
}

}  // namespace amopt::core
