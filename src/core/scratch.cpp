#include "amopt/core/scratch.hpp"

#include <algorithm>
#include <bit>
#include <mutex>

#if defined(AMOPT_DEBUG_CHECKS)
#include <limits>
#endif

namespace amopt::core {

namespace {
constexpr std::size_t kAlignDoubles = kCacheLine / sizeof(double);

// Every live arena, so aggregate_scratch() can report the process-wide
// footprint. Leaked rather than a static object: pool workers' thread-local
// arenas unregister during thread exit, which can run after static
// destruction has begun.
struct Registry {
  std::mutex mu;
  std::vector<ScratchStack*> stacks;
};
Registry& registry() {
  static Registry* r = new Registry;
  return *r;
}

}  // namespace

struct Block {
  explicit Block(std::size_t n) : data(n) {}
  aligned_vector<double> data;
  Block* next = nullptr;  ///< free-list / lease-chain link
  bool keep = false;      ///< trim() scratch mark
};

int ScratchStack::size_class(std::size_t pow2_doubles) noexcept {
  const int c =
      std::bit_width(pow2_doubles) - std::bit_width(kClass0Doubles);
  return std::clamp(c, 0, kNumClasses - 1);
}

ScratchStack::ScratchStack() {
  auto& r = registry();
  std::lock_guard<std::mutex> lk(r.mu);
  r.stacks.push_back(this);
}

ScratchStack::~ScratchStack() {
  auto& r = registry();
  std::lock_guard<std::mutex> lk(r.mu);
  std::erase(r.stacks, this);
}

std::span<double> ScratchStack::Frame::alloc(std::size_t n) {
  if (n == 0) return {};
  // Round every allocation to a cache line so each span starts 64B-aligned
  // (block bases are aligned_vector allocations).
  const std::size_t need = (n + kAlignDoubles - 1) & ~(kAlignDoubles - 1);
  if (head_ == nullptr || head_->data.size() - used_ < need) {
    head_ = s_.lease(need, head_);
    used_ = 0;
  }
  double* p = head_->data.data() + used_;
  used_ += need;
#if defined(AMOPT_DEBUG_CHECKS)
  // Poison so Debug builds turn any read-before-write into a NaN price.
  std::fill_n(p, n, std::numeric_limits<double>::quiet_NaN());
#endif
  return {p, n};
}

Block* ScratchStack::lease(std::size_t need, Block* chain) {
  // Power-of-two size classes, smallest adequate class first — with every
  // block pow2-sized, class fit IS best fit, which is what makes warm reuse
  // exact: a small request never strands a later large request by grabbing
  // the one big block, so a steady-state descent re-allocates nothing.
  // Owner-thread only (like all arena mutation), hence no locking.
  const std::size_t sz = std::max(kClass0Doubles, std::bit_ceil(need));
  for (int c = size_class(sz); c < kNumClasses; ++c) {
    for (Block** p = &free_[c]; *p != nullptr; p = &(*p)->next) {
      // Classes below the last hold exactly one size; the last mixes
      // oversized blocks, so re-check the fit there.
      if ((*p)->data.size() < need) continue;
      Block* b = *p;
      *p = b->next;
      b->next = chain;
      return b;
    }
  }
  blocks_.push_back(std::make_unique<Block>(sz));
  capacity_.fetch_add(sz, std::memory_order_relaxed);
  Block* b = blocks_.back().get();
  b->next = chain;
  return b;
}

void ScratchStack::release(Block* chain) noexcept {
  while (chain != nullptr) {
    Block* next = chain->next;
    const int c = size_class(chain->data.size());
    chain->next = free_[c];
    free_[c] = chain;
    chain = next;
  }
}

std::size_t ScratchStack::capacity() const noexcept {
  return capacity_.load(std::memory_order_relaxed);
}

bool ScratchStack::trim(std::size_t retain_bytes) noexcept {
  if (frames_ != 0) return false;  // mid-descent: stay grow-only
  // Greedily keep the largest free blocks that fit the budget (largest
  // first: fewer, bigger blocks serve more shapes than many small ones).
  std::size_t budget = retain_bytes / sizeof(double);
  for (int c = kNumClasses - 1; c >= 0; --c)
    for (Block* b = free_[c]; b != nullptr; b = b->next)
      b->keep = false;
  for (;;) {
    Block* best = nullptr;
    for (int c = kNumClasses - 1; c >= 0; --c)
      for (Block* b = free_[c]; b != nullptr; b = b->next)
        if (!b->keep && b->data.size() <= budget &&
            (best == nullptr || b->data.size() > best->data.size()))
          best = b;
    if (best == nullptr) break;
    best->keep = true;
    budget -= best->data.size();
  }
  const std::size_t before = blocks_.size();
  std::erase_if(blocks_, [](const std::unique_ptr<Block>& b) {
    return !b->keep;
  });
  if (blocks_.size() == before) return false;
  std::fill(std::begin(free_), std::end(free_), nullptr);
  std::size_t doubles = 0;
  for (const auto& b : blocks_) {
    b->keep = false;
    const int c = size_class(b->data.size());
    b->next = free_[c];
    free_[c] = b.get();
    doubles += b->data.size();
  }
  capacity_.store(doubles, std::memory_order_relaxed);
  return true;
}

ScratchStack& thread_scratch() {
  thread_local ScratchStack s;
  return s;
}

ScratchAggregate aggregate_scratch() {
  ScratchAggregate agg;
  auto& r = registry();
  std::lock_guard<std::mutex> lk(r.mu);
  for (const ScratchStack* s : r.stacks) {
    const std::size_t bytes = s->capacity() * sizeof(double);
    agg.total_bytes += bytes;
    agg.max_bytes = std::max(agg.max_bytes, bytes);
  }
  agg.arenas = r.stacks.size();
  return agg;
}

}  // namespace amopt::core
