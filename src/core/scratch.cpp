#include "amopt/core/scratch.hpp"

#include <algorithm>

#if defined(AMOPT_DEBUG_CHECKS)
#include <limits>
#endif

namespace amopt::core {

namespace {
// 8 KiB floor keeps tiny first frames from minting a chain of micro-blocks.
constexpr std::size_t kMinBlockDoubles = 1024;
constexpr std::size_t kAlignDoubles = kCacheLine / sizeof(double);
}  // namespace

std::span<double> ScratchStack::alloc(std::size_t n) {
  if (n == 0) return {};
  // Round every allocation to a cache line so each span starts 64B-aligned
  // (block bases are aligned_vector allocations).
  const std::size_t need = (n + kAlignDoubles - 1) & ~(kAlignDoubles - 1);
  while (block_ < blocks_.size() &&
         blocks_[block_].size() - off_ < need) {
    ++block_;
    off_ = 0;
  }
  if (block_ == blocks_.size()) {
    // Append a block covering at least everything held so far: outstanding
    // spans in earlier blocks stay valid, and the next warm pass falls
    // through to this block alone (the earlier ones only cost address
    // space until then).
    const std::size_t sz =
        std::max({kMinBlockDoubles, need, 2 * capacity()});
    blocks_.emplace_back(sz);
    off_ = 0;
  }
  double* p = blocks_[block_].data() + off_;
  off_ += need;
#if defined(AMOPT_DEBUG_CHECKS)
  // Poison so Debug builds turn any read-before-write into a NaN price.
  std::fill_n(p, n, std::numeric_limits<double>::quiet_NaN());
#endif
  return {p, n};
}

ScratchStack& thread_scratch() {
  thread_local ScratchStack s;
  return s;
}

}  // namespace amopt::core
