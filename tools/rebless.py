#!/usr/bin/env python3
"""Deliberate re-baselining of the committed bench + accuracy references.

The committed BENCH_*.json files are the numbers CI compares every fresh
run against, and ACCURACY.json is the measured-deviation table that
`check_bench.py --tolerance-report` prints headroom from. Neither may
drift silently: a sizing change, a sharing change, or a toolchain bump
that moves them must move them HERE, in a reviewed commit, with the
before/after visible. This tool is the only sanctioned way to do that.

It re-runs every bench with the same canonical environment the committed
baselines were recorded under (the sweep defaults baked into each bench
binary, plus the explicit overrides listed in STEPS), re-runs
tests/test_accuracy with AMOPT_ACCURACY_REPORT to regenerate the measured
deviation table, prints an old-vs-new summary for every shared data point,
and only then copies the fresh files over the committed ones.

    python3 tools/rebless.py                 # everything, then overwrite
    python3 tools/rebless.py --dry-run       # run + summarize, touch nothing
    python3 tools/rebless.py --only fft,accuracy

The frozen pre-PR-5 references (BENCH_*_pre5.json) are history, not
baselines — this tool never rewrites them, and will refuse to be pointed
at them.

Run it on the box that recorded the current baselines (or accept that the
whole file changes meaning, and say so in the commit message). The
summary prints the fft-bopm / fft-bsm end-to-end speedup against the
still-committed rows so an acceptance bar ("new numbers >= 1.15x over the
old committed baseline at T = 2^13") can be checked before anything is
overwritten.
"""

import argparse
import json
import os
import shutil
import subprocess
import sys

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

# name -> (binary, output file, extra environment, kind)
# The env must reproduce the committed sweep exactly: fig5a's default sweep
# tops out at 2^17 but the committed rows stop at 2^14 (the slow direct
# reference would take minutes beyond that), so both fig5 benches pin
# MAX_T, and the committed table5 rows were recorded at T = 2^13 (the
# binary default is 2^15 — at 4x the T its Theta(T^2) reference column
# would read as a 16x "regression"). Everything else records at its
# binary's defaults.
STEPS = {
    "fft": ("micro_fft", "BENCH_fft.json", {}, "gbench"),
    "session": ("micro_session", "BENCH_session.json", {}, "rows"),
    "alo": ("micro_alo", "BENCH_alo.json", {}, "rows"),
    # time_best takes the min over reps, so raising REPS above the binary
    # default (3) only tightens the same estimator — the fig5 rows feed the
    # end-to-end acceptance bar, so record them with the noise squeezed out.
    "bopm": ("fig5a_bopm_runtime", "BENCH_bopm.json",
             {"AMOPT_BENCH_MAX_T": "16384", "AMOPT_BENCH_REPS": "25"}, "rows"),
    "bsm": ("fig5c_bsm_runtime", "BENCH_bsm.json",
            {"AMOPT_BENCH_MAX_T": "16384", "AMOPT_BENCH_REPS": "25"}, "rows"),
    "table5": ("table5_scalability", "BENCH_table5.json",
               {"AMOPT_BENCH_T": "8192"}, "rows"),
    "server": ("micro_server", "BENCH_server.json", {}, "rows"),
    "accuracy": ("test_accuracy", "ACCURACY.json", {}, "accuracy"),
}

# Bigger-is-better columns: a drop, not a rise, is the regression.
RATIO_SERIES = {"mem-x", "share-x", "speedup", "quote-x", "iv-x",
                "coalesce-x", "qps-1shard", "qps-4shard"}


def run_step(name, build_dir, min_time):
    binary, out_name, extra_env, kind = STEPS[name]
    path = os.path.join(build_dir, binary)
    if not os.path.exists(path):
        sys.exit(f"rebless: {path} not found — build first "
                 f"(cmake --build {build_dir} -j)")
    out_path = os.path.join(build_dir, "rebless_" + out_name)
    env = dict(os.environ)
    env.update(extra_env)
    cmd = [path]
    if kind == "accuracy":
        env["AMOPT_ACCURACY_REPORT"] = out_path
    elif kind == "gbench":
        cmd += [f"--benchmark_out={out_path}",
                "--benchmark_out_format=json",
                f"--benchmark_min_time={min_time}s"]
        env["AMOPT_BENCH_JSON"] = "none"
    else:
        env["AMOPT_BENCH_JSON"] = out_path
    print(f"rebless: running {name} ({binary}) ...", flush=True)
    r = subprocess.run(cmd, cwd=build_dir, env=env)
    if r.returncode != 0:
        sys.exit(f"rebless: {binary} exited with {r.returncode} — "
                 f"not re-blessing from a failing run")
    if not os.path.exists(out_path):
        sys.exit(f"rebless: {binary} produced no {out_path}")
    return out_path


def load(path):
    with open(path) as f:
        return json.load(f)


def flat(doc, kind):
    if kind == "gbench":
        return {b["name"]: float(b["real_time"]) for b in doc["benchmarks"]}
    if kind == "accuracy":
        return {c["name"]: float(c["measured"]) for c in doc["cases"]}
    out = {}
    for row in doc["rows"]:
        for s, v in zip(doc["series"], row["values"]):
            if v is not None:
                out[f"{s}@T={row['T']}"] = float(v)
    return out


def summarize(name, old_path, new_path, kind):
    """Print old vs new for every shared point; return the worst slowdown."""
    if not os.path.exists(old_path):
        print(f"rebless: {name}: no committed baseline yet — all points new")
        old = {}
    else:
        old = flat(load(old_path), kind)
    new = flat(load(new_path), kind)
    worst = ("", 1.0)
    for key in sorted(old.keys() | new.keys()):
        if key not in old:
            print(f"  new  {name} {key}: {new[key]:.4g}")
            continue
        if key not in new:
            print(f"  GONE {name} {key} (was {old[key]:.4g}) — a committed "
                  f"data point vanished; make sure that is intentional")
            continue
        o, n = old[key], new[key]
        # 0 -> 0 (e.g. the allocs-steady counters) is "unchanged", not inf.
        ratio = 1.0 if o == n else (n / o if o > 0 else float("inf"))
        series = key.split("@")[0]
        better_is_high = kind == "rows" and series in RATIO_SERIES
        # "slowdown" = the direction that would trip CI: time up, ratio down.
        slow = (1.0 if o == n else
                (o / n if n > 0 else float("inf"))) if better_is_high else ratio
        if slow > worst[1]:
            worst = (key, slow)
        print(f"  {name} {key}: {o:.4g} -> {n:.4g}  ({ratio:.2f}x)")
    return worst


def e2e_bar(build_dir, min_ratio=1.15, t=8192):
    """fft-bopm / fft-bsm against the still-committed rows (pre-overwrite)."""
    ok = True
    for step, series in (("bopm", "fft-bopm"), ("bsm", "fft-bsm")):
        old_path = os.path.join(REPO, STEPS[step][1])
        new_path = os.path.join(build_dir, "rebless_" + STEPS[step][1])
        if not (os.path.exists(old_path) and os.path.exists(new_path)):
            continue
        old = flat(load(old_path), "rows")
        new = flat(load(new_path), "rows")
        key = f"{series}@T={t}"
        if key not in old or key not in new:
            continue
        x = old[key] / new[key]
        status = "ok" if x >= min_ratio else "BELOW BAR"
        print(f"rebless: e2e {series} T={t}: {old[key]:.4g} -> "
              f"{new[key]:.4g} ms = {x:.2f}x over the committed baseline "
              f"[{status}, bar {min_ratio}x]")
        ok = ok and x >= min_ratio
    return ok


def main():
    ap = argparse.ArgumentParser(
        description="re-record the committed BENCH_*.json / ACCURACY.json")
    ap.add_argument("--build-dir", default=os.path.join(REPO, "build"))
    ap.add_argument("--only", default=None,
                    help="comma-separated subset of: " + ",".join(STEPS))
    ap.add_argument("--dry-run", action="store_true",
                    help="run and summarize but do not overwrite anything")
    ap.add_argument("--min-time", default="0.5",
                    help="google-benchmark min time per entry for micro_fft "
                         "(seconds; the committed baseline used 0.5)")
    args = ap.parse_args()

    names = list(STEPS) if args.only is None else args.only.split(",")
    for n in names:
        if n not in STEPS:
            sys.exit(f"rebless: unknown step '{n}' "
                     f"(choose from {', '.join(STEPS)})")
        if "_pre5" in STEPS[n][1]:
            sys.exit("rebless: refusing to touch a frozen pre-PR-5 reference")

    produced = {}
    for n in names:
        produced[n] = run_step(n, args.build_dir, args.min_time)

    print("\nrebless: old -> new summary")
    for n in names:
        _, out_name, _, kind = STEPS[n]
        key, slow = summarize(n, os.path.join(REPO, out_name), produced[n],
                              kind)
        if slow > 1.5 and kind != "accuracy":
            print(f"rebless: NOTE {n}: worst regression vs committed is "
                  f"{slow:.2f}x at {key} — bless only if that is expected")

    bar_ok = True
    if "bopm" in names or "bsm" in names:
        bar_ok = e2e_bar(args.build_dir)

    if args.dry_run:
        print("rebless: dry run — nothing overwritten")
        return
    if not bar_ok:
        sys.exit("rebless: end-to-end bar not met — fix the regression or "
                 "re-run with --dry-run to investigate; nothing overwritten")
    for n in names:
        dst = os.path.join(REPO, STEPS[n][1])
        shutil.copyfile(produced[n], dst)
        print(f"rebless: blessed {dst}")
    print("rebless: done — review `git diff` before committing")


if __name__ == "__main__":
    main()
