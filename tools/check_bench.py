#!/usr/bin/env python3
"""Bench-regression guard for CI.

Validates the shape of a freshly produced benchmark JSON and compares it
against a committed baseline with a generous slowdown threshold (CI runners
and dev boxes differ widely, so the guard only catches gross regressions —
a kernel accidentally knocked off its vector path, an O(n log n) pipeline
degrading to O(n^2) — not single-digit percentages).

Two formats:
  * --kind gbench : google-benchmark JSON (bench/micro_fft.cpp). Entries are
    matched by benchmark name; `cpu_time` is compared.
  * --kind rows   : the bench_common.hpp writer (bench/micro_session.cpp):
    {"title", "unit", "series", "rows": [{"T", "values": [...]}]}. Rows are
    matched by T and compared per series. Only series listed in
    --row-series (default: all) are compared; ratio-like series (e.g. a
    "speedup" column, where bigger is better) can be checked with
    --min-series NAME=VALUE instead.

With --check-simd-speedup (gbench only), additionally asserts the AVX2
dispatch path's round-trip FFT beats the scalar path by the required factor
at n >= 4096 whenever both paths appear in the fresh run — the PR 3
acceptance bar, kept green by CI.

With --pair-speedup SLOW:FAST:FACTOR:MIN_N (repeatable), asserts a
within-run speedup of FAST over SLOW by FACTOR. For gbench, FAST/SLOW are
benchmark-name prefixes and every FAST<level>/n with n >= MIN_N is
compared against its SLOW<level>/n counterpart — the PR 4 spectral-path
bars. For rows, FAST/SLOW are series names of the SAME fresh file and
every shared row with T >= MIN_N is compared — the PR 6 boundary-engine
bars (quote-fft over quote-boundary, iv-lattice over iv-boundary from
bench/micro_alo.cpp). Both compare within one run on one machine, so the
bars are load-tolerant in a way baseline comparisons are not.

With --row-speedup SERIES:FACTOR:MIN_T (rows only, repeatable), asserts the
fresh run's SERIES is at least FACTOR faster than the SAME series in the
baseline file at every shared T >= MIN_T — the PR 5 end-to-end memory-plane
bars, checked against the committed pre-PR fig5 baselines (meaningful on
the machine that recorded them; cross-machine runs should prefer the
in-process mem-x ratio via --min-series).

With --alloc-budget SERIES=MAX (rows only, repeatable), asserts the fresh
SERIES never exceeds MAX on any row — the steady-state
allocations-per-descend counter emitted by bench/micro_session.cpp, which
the PR 5 scratch arena pins at zero.

With --latency-budget SERIES=MAX (rows only, repeatable), asserts the
fresh SERIES stays at or below MAX (a float, typically microseconds) on
every row — the daemon's p50/p99 round-trip columns from
bench/micro_server.cpp. Budgets are absolute per-row ceilings, so CI sets
them generously (they catch a coalescing window accidentally left in the
latency path, not scheduler jitter).

With --tolerance-report, --fresh is an accuracy report produced by
tests/test_accuracy (AMOPT_ACCURACY_REPORT=path) and --baseline is the
committed ACCURACY.json. For every case the fresh measured max price
deviation is printed alongside the committed contract value and the
headroom factor (contract / measured), so CI logs show the headroom
shrinking BEFORE a breach; the check fails on any measured deviation above
its contract, and flags (without failing) cases whose headroom has dropped
below 2x. --kind is not needed in this mode.
"""

import argparse
import json
import sys


def fail(msg: str) -> None:
    print(f"check_bench: FAIL: {msg}")
    sys.exit(1)


def load(path: str):
    try:
        with open(path) as f:
            return json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"cannot load {path}: {e}")


def gbench_times(doc, path):
    if "benchmarks" not in doc or not isinstance(doc["benchmarks"], list):
        fail(f"{path}: missing 'benchmarks' array (not google-benchmark JSON?)")
    out = {}
    for b in doc["benchmarks"]:
        # real_time, not cpu_time: the large-n FFT benches take the OpenMP
        # path, and process CPU time scales with the host's core count —
        # wall time is the machine-comparable quantity.
        if "name" not in b or "real_time" not in b:
            fail(f"{path}: benchmark entry without name/real_time: {b}")
        if not isinstance(b["real_time"], (int, float)) or b["real_time"] <= 0:
            fail(f"{path}: non-positive real_time for {b['name']}")
        out[b["name"]] = float(b["real_time"])
    if not out:
        fail(f"{path}: no benchmarks recorded")
    return out


def rows_values(doc, path):
    for key in ("title", "unit", "series", "rows"):
        if key not in doc:
            fail(f"{path}: missing '{key}' (not a bench_common rows JSON?)")
    series = doc["series"]
    out = {}
    for row in doc["rows"]:
        if "T" not in row or "values" not in row:
            fail(f"{path}: row without T/values: {row}")
        if len(row["values"]) != len(series):
            fail(f"{path}: row T={row['T']} has {len(row['values'])} values "
                 f"for {len(series)} series")
        for name, v in zip(series, row["values"]):
            if v is not None:
                out[(row["T"], name)] = float(v)
    if not out:
        fail(f"{path}: no rows recorded")
    return out


def compare(fresh, base, factor, label):
    compared = 0
    for key, base_v in sorted(base.items()):
        if key not in fresh:
            continue  # smoke runs cover a subset of the committed sweep
        fresh_v = fresh[key]
        compared += 1
        if fresh_v > base_v * factor:
            fail(f"{label} {key}: fresh {fresh_v:.3g} vs baseline "
                 f"{base_v:.3g} exceeds the {factor}x slowdown threshold")
        print(f"check_bench: ok {label} {key}: {fresh_v:.3g} "
              f"(baseline {base_v:.3g})")
    if compared == 0:
        fail(f"{label}: fresh run and baseline share no data points")
    print(f"check_bench: {compared} {label} point(s) within {factor}x")


def check_simd_speedup(times, min_speedup, min_n):
    pairs = 0
    for name, scalar_t in times.items():
        if "<scalar>" not in name:
            continue
        tail = name.split("/")[-1]
        if not tail.isdigit() or int(tail) < min_n:
            continue
        avx2 = name.replace("<scalar>", "<avx2>")
        if avx2 not in times:
            continue
        speedup = scalar_t / times[avx2]
        pairs += 1
        # Only the complex round trip is enforced (the PR 3 acceptance
        # metric); the other families are reported as info — they track the
        # same kernels but are noisier on shared runners.
        enforced = "BM_FftRoundTrip" in name
        if speedup >= min_speedup:
            status = "ok"
        else:
            status = "FAIL" if enforced else "info(low)"
        print(f"check_bench: {status} speedup {name} -> {speedup:.2f}x")
        if enforced and speedup < min_speedup:
            fail(f"{name}: avx2 speedup {speedup:.2f}x below the required "
                 f"{min_speedup}x at n >= {min_n}")
    if pairs == 0:
        print("check_bench: no scalar/avx2 pairs at the required size "
              "(host without AVX2?) — speedup check skipped")


def check_row_speedup(fresh, base, spec):
    parts = spec.split(":")
    if len(parts) != 3:
        fail(f"--row-speedup expects SERIES:FACTOR:MIN_T, got '{spec}'")
    series, factor, min_t = parts[0], float(parts[1]), int(parts[2])
    pairs = 0
    for (t, name), base_v in sorted(base.items()):
        if name != series or t < min_t or (t, name) not in fresh:
            continue
        speedup = base_v / fresh[(t, name)]
        pairs += 1
        status = "ok" if speedup >= factor else "FAIL"
        print(f"check_bench: {status} row-speedup {series} T={t} -> "
              f"{speedup:.2f}x (need {factor}x)")
        if speedup < factor:
            fail(f"{series} at T={t}: {speedup:.2f}x over the baseline, "
                 f"below the required {factor}x")
    if pairs == 0:
        fail(f"--row-speedup {spec}: no shared {series} rows at T >= {min_t}")


def check_alloc_budget(fresh, spec):
    name, _, value = spec.partition("=")
    budget = float(value)
    found = False
    for (t, s), v in sorted(fresh.items()):
        if s != name:
            continue
        found = True
        status = "ok" if v <= budget else "FAIL"
        print(f"check_bench: {status} alloc-budget {name} T={t}: {v:.0f} "
              f"(budget {budget:.0f})")
        if v > budget:
            fail(f"series {name} at T={t}: {v:.0f} allocations exceed the "
                 f"budget of {budget:.0f}")
    if not found:
        fail(f"--alloc-budget: series {name} not present in the fresh run")


def check_latency_budget(fresh, spec):
    name, _, value = spec.partition("=")
    budget = float(value)
    found = False
    for (t, s), v in sorted(fresh.items()):
        if s != name:
            continue
        found = True
        status = "ok" if v <= budget else "FAIL"
        print(f"check_bench: {status} latency-budget {name} T={t}: "
              f"{v:.3g} (budget {budget:.3g})")
        if v > budget:
            fail(f"series {name} at T={t}: {v:.3g} exceeds the latency "
                 f"budget of {budget:.3g}")
    if not found:
        fail(f"--latency-budget: series {name} not present in the fresh run")


def check_rows_pair_speedup(fresh, spec):
    parts = spec.split(":")
    if len(parts) != 4:
        fail(f"--pair-speedup expects SLOW:FAST:FACTOR:MIN_T, got '{spec}'")
    slow, fast = parts[0], parts[1]
    factor, min_t = float(parts[2]), int(parts[3])
    pairs = 0
    for (t, name), slow_v in sorted(fresh.items()):
        if name != slow or t < min_t or (t, fast) not in fresh:
            continue
        speedup = slow_v / fresh[(t, fast)]
        pairs += 1
        status = "ok" if speedup >= factor else "FAIL"
        print(f"check_bench: {status} pair-speedup {fast} vs {slow} T={t} "
              f"-> {speedup:.2f}x (need {factor}x)")
        if speedup < factor:
            fail(f"{fast} at T={t}: {speedup:.2f}x over {slow}, below the "
                 f"required {factor}x")
    if pairs == 0:
        fail(f"--pair-speedup {spec}: no rows with both {slow} and {fast} "
             f"at T >= {min_t}")


def check_pair_speedup(times, spec):
    parts = spec.split(":")
    if len(parts) != 4:
        fail(f"--pair-speedup expects SLOW:FAST:FACTOR:MIN_N, got '{spec}'")
    slow_prefix, fast_prefix = parts[0], parts[1]
    factor, min_n = float(parts[2]), int(parts[3])
    pairs = 0
    for name, fast_t in sorted(times.items()):
        if not name.startswith(fast_prefix + "<"):
            continue
        tail = name.split("/")[-1]
        if not tail.isdigit() or int(tail) < min_n:
            continue
        slow = slow_prefix + name[len(fast_prefix):]
        if slow not in times:
            continue
        speedup = times[slow] / fast_t
        pairs += 1
        status = "ok" if speedup >= factor else "FAIL"
        print(f"check_bench: {status} pair-speedup {name} vs {slow} -> "
              f"{speedup:.2f}x (need {factor}x)")
        if speedup < factor:
            fail(f"{name}: speedup over {slow} is {speedup:.2f}x, below the "
                 f"required {factor}x at n >= {min_n}")
    if pairs == 0:
        print(f"check_bench: no {fast_prefix}/{slow_prefix} pairs at "
              f"n >= {min_n} — pair-speedup check skipped")


def accuracy_cases(doc, path):
    if "cases" not in doc or not isinstance(doc["cases"], list):
        fail(f"{path}: missing 'cases' array (not a test_accuracy report?)")
    out = {}
    for c in doc["cases"]:
        for key in ("name", "contract", "measured"):
            if key not in c:
                fail(f"{path}: case without '{key}': {c}")
        out[c["name"]] = (float(c["contract"]), float(c["measured"]))
    if not out:
        fail(f"{path}: no cases recorded")
    return out


def check_tolerance_report(fresh, base, fresh_path, base_path):
    compared = 0
    for name, (contract, committed) in sorted(base.items()):
        if name not in fresh:
            fail(f"tolerance-report: case '{name}' missing from {fresh_path}")
        fresh_contract, measured = fresh[name]
        if fresh_contract != contract:
            fail(f"tolerance-report {name}: contract changed "
                 f"({fresh_contract:.3g} vs committed {contract:.3g}) — "
                 f"re-bless {base_path} deliberately, not by drift")
        compared += 1
        headroom = contract / measured if measured > 0 else float("inf")
        note = "" if headroom >= 2.0 else "  << headroom below 2x"
        print(f"check_bench: tolerance {name}: measured {measured:.3g} "
              f"(committed {committed:.3g}) vs contract {contract:.3g} "
              f"— headroom {headroom:.1f}x{note}")
        if measured > contract:
            fail(f"{name}: measured deviation {measured:.3g} breaches the "
                 f"contract {contract:.3g}")
    for name in sorted(set(fresh) - set(base)):
        print(f"check_bench: tolerance {name}: new case (not in {base_path})")
    if compared == 0:
        fail("tolerance-report: no shared cases")
    print(f"check_bench: {compared} tolerance case(s) inside contract")


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("--fresh", required=True)
    ap.add_argument("--baseline", required=True)
    ap.add_argument("--kind", choices=["gbench", "rows"])
    ap.add_argument("--tolerance-report", action="store_true",
                    help="treat --fresh/--baseline as test_accuracy reports "
                         "and print measured deviation vs contract headroom")
    ap.add_argument("--factor", type=float, default=2.0)
    ap.add_argument("--row-series", nargs="*", default=None,
                    help="rows kind: series names to threshold-compare "
                         "(default: all)")
    ap.add_argument("--min-series", action="append", default=[],
                    metavar="NAME=VALUE",
                    help="rows kind: require fresh series NAME >= VALUE "
                         "on every row (for bigger-is-better columns)")
    ap.add_argument("--check-simd-speedup", action="store_true")
    ap.add_argument("--min-speedup", type=float, default=1.5)
    ap.add_argument("--min-n", type=int, default=4096)
    ap.add_argument("--pair-speedup", action="append", default=[],
                    metavar="SLOW:FAST:FACTOR:MIN_N",
                    help="require FAST to beat SLOW by FACTOR within the "
                         "fresh run: gbench matches FAST<level>/n names "
                         "(n >= MIN_N), rows matches series at T >= MIN_N")
    ap.add_argument("--row-speedup", action="append", default=[],
                    metavar="SERIES:FACTOR:MIN_T",
                    help="rows kind: require the fresh SERIES to be FACTOR "
                         "faster than the baseline's at every T >= MIN_T")
    ap.add_argument("--alloc-budget", action="append", default=[],
                    metavar="SERIES=MAX",
                    help="rows kind: require fresh SERIES <= MAX on every "
                         "row (allocation counters)")
    ap.add_argument("--latency-budget", action="append", default=[],
                    metavar="SERIES=MAX",
                    help="rows kind: require fresh SERIES <= MAX on every "
                         "row (absolute latency ceilings, e.g. p99-us)")
    args = ap.parse_args()

    fresh_doc = load(args.fresh)
    base_doc = load(args.baseline)
    if args.tolerance_report:
        check_tolerance_report(accuracy_cases(fresh_doc, args.fresh),
                               accuracy_cases(base_doc, args.baseline),
                               args.fresh, args.baseline)
        print("check_bench: PASS")
        return
    if args.kind is None:
        ap.error("--kind is required unless --tolerance-report is given")
    if args.kind == "gbench":
        fresh = gbench_times(fresh_doc, args.fresh)
        base = gbench_times(base_doc, args.baseline)
        compare(fresh, base, args.factor, "bench")
        if args.check_simd_speedup:
            check_simd_speedup(fresh, args.min_speedup, args.min_n)
        for spec in args.pair_speedup:
            check_pair_speedup(fresh, spec)
    else:
        fresh = rows_values(fresh_doc, args.fresh)
        base = rows_values(base_doc, args.baseline)
        if args.row_series is not None:
            keep = set(args.row_series)
            fresh_cmp = {k: v for k, v in fresh.items() if k[1] in keep}
            base_cmp = {k: v for k, v in base.items() if k[1] in keep}
        else:
            fresh_cmp, base_cmp = fresh, base
        compare(fresh_cmp, base_cmp, args.factor, "row")
        for spec in args.pair_speedup:
            check_rows_pair_speedup(fresh, spec)
        for spec in args.row_speedup:
            check_row_speedup(fresh, base, spec)
        for spec in args.alloc_budget:
            check_alloc_budget(fresh, spec)
        for spec in args.latency_budget:
            check_latency_budget(fresh, spec)
        for spec in args.min_series:
            name, _, value = spec.partition("=")
            floor = float(value)
            found = False
            for (t, s), v in sorted(fresh.items()):
                if s != name:
                    continue
                found = True
                if v < floor:
                    fail(f"series {name} at T={t}: {v:.3g} below the "
                         f"required minimum {floor}")
                print(f"check_bench: ok min-series {name} T={t}: {v:.3g}")
            if not found:
                fail(f"series {name} not present in {args.fresh}")
    print("check_bench: PASS")


if __name__ == "__main__":
    main()
