// Quickstart: price one American option with the fast solver and compare
// with the closed-form anchors. Build & run:
//
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart [T]

#include <cstdio>
#include <cstdlib>

#include <amopt/amopt.hpp>

int main(int argc, char** argv) {
  using namespace amopt::pricing;

  // The paper's benchmark contract: S=127.62, K=130, R=0.163%, V=20%,
  // Y=1.63%, one year to expiry.
  const OptionSpec spec = paper_spec();
  const std::int64_t T = argc > 1 ? std::atoll(argv[1]) : 100000;

  amopt::WallTimer timer;
  const double call = bopm::american_call_fft(spec, T);
  const double t_call = timer.seconds();

  timer.reset();
  const double put = bopm::american_put_fft_direct(spec, T);
  const double t_put = timer.seconds();

  std::printf("American option prices, %lld-step binomial lattice\n",
              static_cast<long long>(T));
  std::printf("  spot %.2f  strike %.2f  rate %.3f%%  vol %.0f%%  yield "
              "%.2f%%  expiry %.1fy\n",
              spec.S, spec.K, 100 * spec.R, 100 * spec.V, 100 * spec.Y,
              spec.expiry_years);
  std::printf("  call (fft-bopm):       %10.6f   [%0.3f s]\n", call, t_call);
  std::printf("  put  (fft-bopm):       %10.6f   [%0.3f s]\n", put, t_put);
  std::printf("  European call (exact): %10.6f\n", bs::european_call(spec));
  std::printf("  European put  (exact): %10.6f\n", bs::european_put(spec));
  std::printf("  early exercise premium: call %+.6f, put %+.6f\n",
              call - bs::european_call(spec), put - bs::european_put(spec));

  // Greeks come almost for free from the same descent.
  const Greeks g = american_call_greeks_bopm(spec, std::min<std::int64_t>(T, 65536));
  std::printf("  call greeks: delta %.4f  gamma %.5f  theta %.4f  vega %.3f  "
              "rho %.3f\n",
              g.delta, g.gamma, g.theta, g.vega, g.rho);
  return 0;
}
