// Quickstart: price one American option through a pricing session and
// compare with the closed-form anchors. Build & run:
//
//   cmake -B build -G Ninja && cmake --build build
//   ./build/example_quickstart [T]
//
// The session (`pricing::Pricer`) is the recommended entry point: it owns
// the kernel caches, so the call, the put, and the greeks below all draw on
// warm state instead of rebuilding it per call. The one-shot free functions
// (`pricing::price`, `bopm::american_call_fft`, ...) remain available and
// return bit-identical values.

#include <cstdio>
#include <cstdlib>

#include <amopt/amopt.hpp>

int main(int argc, char** argv) {
  using namespace amopt::pricing;

  // The paper's benchmark contract: S=127.62, K=130, R=0.163%, V=20%,
  // Y=1.63%, one year to expiry.
  const OptionSpec spec = paper_spec();
  const std::int64_t T = argc > 1 ? std::atoll(argv[1]) : 100000;

  Pricer session;
  PricingRequest req;
  req.spec = spec;
  req.T = T;

  amopt::WallTimer timer;
  req.right = Right::call;
  const PricingResult call = session.price_one(req);
  const double t_call = timer.seconds();

  timer.reset();
  req.right = Right::put;
  const PricingResult put = session.price_one(req);
  const double t_put = timer.seconds();
  if (!call.ok() || !put.ok()) {
    std::fprintf(stderr, "pricing failed: %s%s\n", call.message.c_str(),
                 put.message.c_str());
    return 1;
  }

  std::printf("American option prices, %lld-step binomial lattice\n",
              static_cast<long long>(T));
  std::printf("  spot %.2f  strike %.2f  rate %.3f%%  vol %.0f%%  yield "
              "%.2f%%  expiry %.1fy\n",
              spec.S, spec.K, 100 * spec.R, 100 * spec.V, 100 * spec.Y,
              spec.expiry_years);
  std::printf("  call (fft-bopm):       %10.6f   [%0.3f s]\n", call.price,
              t_call);
  std::printf("  put  (fft-bopm):       %10.6f   [%0.3f s]\n", put.price,
              t_put);
  std::printf("  European call (exact): %10.6f\n", bs::european_call(spec));
  std::printf("  European put  (exact): %10.6f\n", bs::european_put(spec));
  std::printf("  early exercise premium: call %+.6f, put %+.6f\n",
              call.price - bs::european_call(spec),
              put.price - bs::european_put(spec));

  // Greeks come almost for free from the same descent — and through the
  // session they reuse the kernel caches the pricings above warmed up.
  req.right = Right::call;
  req.T = std::min<std::int64_t>(T, 65536);
  req.compute = Compute::greeks;
  const PricingResult gr = session.price_one(req);
  if (gr.ok()) {
    const Greeks& g = gr.greeks;
    std::printf("  call greeks: delta %.4f  gamma %.5f  theta %.4f  "
                "vega %.3f  rho %.3f\n",
                g.delta, g.gamma, g.theta, g.vega, g.rho);
  }
  const Pricer::Stats st = session.stats();
  std::printf("  session: %zu kernel-cache group(s), %llu warm lookup(s)\n",
              st.kernel_caches,
              static_cast<unsigned long long>(st.cache_hits));
  return 0;
}
