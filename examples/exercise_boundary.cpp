// Extract and render the early-exercise (red/green) boundary — the object
// the whole paper is about. Prints the boundary in asset-price terms for
// the BOPM call and the BSM put, plus an ASCII sketch of the call's
// space-time grid coloring.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>

#include <amopt/amopt.hpp>

int main(int argc, char** argv) {
  using namespace amopt::pricing;
  const OptionSpec spec = paper_spec();
  const std::int64_t T = argc > 1 ? std::atoll(argv[1]) : 252;

  // --- BOPM call boundary in price terms --------------------------------
  const auto q = bopm_call_boundary_vanilla(spec, T);
  std::printf("BOPM American call exercise boundary (T=%lld)\n",
              static_cast<long long>(T));
  std::printf("%-12s %-12s %s\n", "step i", "q_i", "boundary price");
  for (std::int64_t i = T; i >= 0; i -= std::max<std::int64_t>(T / 16, 1)) {
    const auto qi = q[static_cast<std::size_t>(i)];
    if (qi < 0 || qi >= i) {
      std::printf("%-12lld %-12lld (row %s)\n", static_cast<long long>(i),
                  static_cast<long long>(qi), qi < 0 ? "all green" : "all red");
      continue;
    }
    std::printf("%-12lld %-12lld %.4f\n", static_cast<long long>(i),
                static_cast<long long>(qi),
                bopm_cell_price(spec, T, i, qi + 1));
  }

  // --- ASCII sketch of the red/green grid --------------------------------
  const int rows = 24, cols = 64;
  std::printf("\nred (.) = continuation, green (#) = exercise; expiry at "
              "top\n");
  for (int r = 0; r < rows; ++r) {
    const std::int64_t i = T - static_cast<std::int64_t>(
                                   (static_cast<double>(r) / rows) * T);
    const auto qi = q[static_cast<std::size_t>(std::clamp<std::int64_t>(
        i, 0, T))];
    std::string line(cols, ' ');
    for (int c = 0; c < cols; ++c) {
      const std::int64_t j =
          static_cast<std::int64_t>((static_cast<double>(c) / cols) * (i + 1));
      if (j > i) break;
      line[static_cast<std::size_t>(c)] = (j <= qi) ? '.' : '#';
    }
    std::printf("  %s\n", line.c_str());
  }

  // The value the boundary belongs to, via the session front-end (the call
  // whose red/green grid is sketched above).
  {
    Pricer session;
    PricingRequest req;
    req.spec = spec;
    req.T = T;
    const PricingResult res = session.price_one(req);
    if (res.ok())
      std::printf("\nAmerican call value at spot (T=%lld): %.6f\n",
                  static_cast<long long>(T), res.price);
  }

  // --- BSM put boundary --------------------------------------------------
  const std::int64_t Tb = std::min<std::int64_t>(T, 512);
  const auto prm = derive_bsm(spec, Tb);
  const auto f = bsm::exercise_boundary_vanilla(spec, Tb);
  std::printf("\nBSM American put exercise boundary (T=%lld): price "
              "B(tau) = K*exp(k_n * ds)\n",
              static_cast<long long>(Tb));
  std::printf("%-12s %-10s %s\n", "step n", "k_n", "B");
  for (std::int64_t n = 0; n <= Tb; n += std::max<std::int64_t>(Tb / 8, 1)) {
    const auto kn = f[static_cast<std::size_t>(n)];
    std::printf("%-12lld %-10lld %.4f\n", static_cast<long long>(n),
                static_cast<long long>(kn),
                spec.K * std::exp(static_cast<double>(kn) * prm.ds));
  }
  return 0;
}
