// A minimal daemon client: talk to an in-process pricing `Server` over
// the loopback `Transport` pair using the versioned wire format — the
// exact code an out-of-process client would run against the TCP
// transport, with only `loopback_pair()` swapped for `tcp_connect()`.
//
// The flow is the service plane end to end (DESIGN.md §8): encode a
// request batch into a length-prefixed frame, write it, read the reply
// stream until one complete result frame decodes, and fan the per-item
// Status back out. A second round trip reuses every buffer — at steady
// state neither side of the loopback allocates.

#include <cstdio>
#include <thread>
#include <vector>

#include <amopt/amopt.hpp>

int main(int argc, char** argv) {
  using namespace amopt::pricing;
  using namespace amopt::service;
  const std::int64_t T = argc > 1 ? std::atoll(argv[1]) : 4096;

  // The daemon: two shards, each owning a long-lived Pricer session, with
  // a 50 us coalescing window so bursts merge into one price_many.
  ServerConfig cfg;
  cfg.shards = 2;
  Server server(cfg);
  auto [client, daemon] = loopback_pair();
  std::thread conn([&server, t = daemon.get()] { server.serve(*t); });

  // An 8-strike put chain plus one deliberately unsupported request: the
  // daemon answers it with a per-item Status, never a dropped connection.
  std::vector<PricingRequest> chain;
  for (double k : {100.0, 110.0, 115.0, 120.0, 125.0, 130.0, 140.0, 150.0}) {
    PricingRequest q;
    q.spec = paper_spec();
    q.spec.K = k;
    q.right = Right::put;
    q.T = T;
    chain.push_back(q);
  }
  {
    PricingRequest bad;
    bad.spec = paper_spec();
    bad.model = Model::topm;
    bad.engine = Engine::tiled;  // TOPM has no tiled engine: unsupported
    bad.T = T;
    chain.push_back(bad);
  }

  std::vector<std::byte> frame;
  std::vector<std::byte> inbuf(std::size_t{1} << 16);
  std::vector<PricingResult> results;
  const auto round_trip = [&] {
    frame.clear();
    wire::encode_request_batch(chain, frame);
    if (!client->write_all(frame)) return false;
    std::size_t have = 0;
    for (;;) {
      std::size_t consumed = 0;
      const wire::DecodeError e =
          wire::decode_result_batch({inbuf.data(), have}, results, consumed);
      if (e == wire::DecodeError::ok) return true;
      if (e != wire::DecodeError::need_more) return false;
      const std::size_t n =
          client->read_some({inbuf.data() + have, inbuf.size() - have});
      if (n == 0) return false;
      have += n;
    }
  };

  amopt::WallTimer timer;
  if (!round_trip()) {
    std::fprintf(stderr, "quote_client: round trip failed\n");
    return 1;
  }
  const double cold = timer.seconds();

  std::printf("American put chain over the wire (T=%lld steps/contract)\n",
              static_cast<long long>(T));
  for (std::size_t i = 0; i < results.size(); ++i) {
    const PricingResult& r = results[i];
    if (r.ok()) {
      std::printf("  K=%-7.1f -> %10.4f\n", chain[i].spec.K, r.price);
    } else {
      const std::string_view st = to_string(r.status);
      std::printf("  K=%-7.1f -> %.*s: %s\n", chain[i].spec.K,
                  static_cast<int>(st.size()), st.data(), r.message.c_str());
    }
  }

  timer.reset();
  if (!round_trip()) {
    std::fprintf(stderr, "quote_client: warm round trip failed\n");
    return 1;
  }
  const double warm = timer.seconds();

  const Server::Stats st = server.stats();
  std::printf("cold round trip %.3f ms, warm %.3f ms "
              "(%llu quote(s) over %llu batch(es) across %zu shard(s))\n",
              cold * 1e3, warm * 1e3,
              static_cast<unsigned long long>(st.completed),
              static_cast<unsigned long long>(st.batches), st.shard.size());

  client->close();
  conn.join();
  return 0;
}
