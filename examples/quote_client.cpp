// The daemon client done right: `service::Client` instead of hand-rolled
// framing. The client owns the failure plane (DESIGN.md §11) — per-call
// deadlines, bounded exponential backoff with jitter when the server says
// `overloaded`, automatic reconnect with whole-frame resubmission — so
// application code sees exactly one terminal Status per request and never
// hangs. Swap the `connect` lambda for
// `[&] { return tcp_connect("127.0.0.1", port); }` and the same code runs
// against an out-of-process daemon.

#include <chrono>
#include <cstdio>
#include <thread>
#include <vector>

#include <amopt/amopt.hpp>

int main(int argc, char** argv) {
  using namespace amopt::pricing;
  using namespace amopt::service;
  const std::int64_t T = argc > 1 ? std::atoll(argv[1]) : 4096;

  // The daemon: two shards, each owning a long-lived Pricer session, with
  // a 50 us coalescing window so bursts merge into one price_many.
  ServerConfig cfg;
  cfg.shards = 2;
  Server server(cfg);
  auto [client_end, daemon_end] = loopback_pair();
  std::thread conn([&server, t = daemon_end.get()] { server.serve(*t); });

  // The retry knobs, spelled out. `connect` is called once up front and
  // again after any transport failure; attempts bound how often a frame
  // is (re)sent; the backoff pair bounds how long overloaded items wait
  // between tries; the deadline makes every call terminal.
  ClientConfig ccfg;
  auto endpoint = std::make_shared<std::unique_ptr<Transport>>(
      std::move(client_end));
  ccfg.connect = [endpoint] {
    return std::move(*endpoint);  // loopback: the one pre-connected endpoint
  };
  ccfg.max_attempts = 4;
  ccfg.backoff_initial = std::chrono::microseconds(500);
  ccfg.backoff_max = std::chrono::milliseconds(100);
  ccfg.default_deadline = std::chrono::seconds(30);
  Client client(std::move(ccfg));

  // An 8-strike put chain plus one deliberately unsupported request: the
  // daemon answers it with a per-item Status, never a dropped connection.
  std::vector<PricingRequest> chain;
  for (double k : {100.0, 110.0, 115.0, 120.0, 125.0, 130.0, 140.0, 150.0}) {
    PricingRequest q;
    q.spec = paper_spec();
    q.spec.K = k;
    q.right = Right::put;
    q.T = T;
    chain.push_back(q);
  }
  {
    PricingRequest bad;
    bad.spec = paper_spec();
    bad.model = Model::topm;
    bad.engine = Engine::tiled;  // TOPM has no tiled engine: unsupported
    bad.T = T;
    chain.push_back(bad);
  }

  std::vector<PricingResult> results;
  amopt::WallTimer timer;
  client.price_many(chain, results);
  const double cold = timer.seconds();

  std::printf("American put chain over the wire (T=%lld steps/contract)\n",
              static_cast<long long>(T));
  for (std::size_t i = 0; i < results.size(); ++i) {
    const PricingResult& r = results[i];
    if (r.ok()) {
      std::printf("  K=%-7.1f -> %10.4f\n", chain[i].spec.K, r.price);
    } else {
      const std::string_view st = to_string(r.status);
      std::printf("  K=%-7.1f -> %.*s: %s\n", chain[i].spec.K,
                  static_cast<int>(st.size()), st.data(), r.message.c_str());
    }
  }

  timer.reset();
  client.price_many(chain, results);  // warm: every buffer reused
  const double warm = timer.seconds();

  const CallStats& cs = client.last_call();
  const Server::Stats st = server.stats();
  std::printf("cold round trip %.3f ms, warm %.3f ms "
              "(%llu quote(s) over %llu batch(es) across %zu shard(s); "
              "%llu attempt(s), %llu reconnect(s), %llu us backing off)\n",
              cold * 1e3, warm * 1e3,
              static_cast<unsigned long long>(st.completed),
              static_cast<unsigned long long>(st.batches), st.shard.size(),
              static_cast<unsigned long long>(cs.attempts),
              static_cast<unsigned long long>(cs.reconnects),
              static_cast<unsigned long long>(cs.backoff_total_us));

  client.disconnect();
  conn.join();
  return 0;
}
