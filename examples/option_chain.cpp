// Price a realistic option chain (many strikes x expiries on one
// underlying) through ONE `Pricer::price_many` call, then invert the
// whole chain back to implied vols with the same warm session — the
// "rapidly changing market" recalibration loop the paper's introduction
// motivates.
//
// The chain is heterogeneous (three expiries -> three kernel-cache tap
// groups) and the session reports per-item status instead of throwing, so
// a bad quote cannot take down the rest of the chain.

#include <cstdio>
#include <cstdlib>
#include <vector>

#include <amopt/amopt.hpp>

int main(int argc, char** argv) {
  using namespace amopt::pricing;
  const std::int64_t T = argc > 1 ? std::atoll(argv[1]) : 20000;

  OptionSpec base = paper_spec();
  const std::vector<double> strikes{100, 110, 120, 125, 130, 135, 140, 150};
  const std::vector<double> expiries{0.25, 0.5, 1.0};

  std::vector<PricingRequest> chain;
  for (double k : strikes) {
    for (double e : expiries) {
      PricingRequest req;
      req.spec = base;
      req.spec.K = k;
      req.spec.expiry_years = e;
      req.T = T;
      chain.push_back(req);
    }
  }

  Pricer session;
  amopt::WallTimer timer;
  const std::vector<PricingResult> priced = session.price_many(chain);
  const double fft_time = timer.seconds();

  std::printf("American call chain on S=%.2f (T=%lld steps/contract)\n",
              base.S, static_cast<long long>(T));
  std::printf("%-10s", "K \\ E");
  for (double e : expiries) std::printf(" %9.2fy", e);
  std::printf("\n");
  for (std::size_t r = 0; r < strikes.size(); ++r) {
    std::printf("%-10.1f", strikes[r]);
    for (std::size_t c = 0; c < expiries.size(); ++c) {
      const PricingResult& res = priced[r * expiries.size() + c];
      if (res.ok()) {
        std::printf(" %10.4f", res.price);
      } else {
        const std::string_view st = to_string(res.status);
        std::printf(" %10.*s", static_cast<int>(st.size()), st.data());
      }
    }
    std::printf("\n");
  }
  const Pricer::Stats st = session.stats();
  std::printf("chain of %zu contracts priced in %.3f s "
              "(%zu kernel-cache group(s), %llu warm lookup(s))\n",
              chain.size(), fft_time, st.kernel_caches,
              static_cast<unsigned long long>(st.cache_hits));

  // Recalibration leg: treat the prices we just computed as market quotes
  // and invert the whole chain back to implied vols on the warm session.
  const std::int64_t iv_T = std::min<std::int64_t>(T, 4096);
  std::vector<PricingRequest> quotes = chain;
  for (std::size_t i = 0; i < quotes.size(); ++i) {
    quotes[i].T = iv_T;
    quotes[i].target_price = priced[i].ok() ? priced[i].price : 0.0;
  }
  timer.reset();
  const std::vector<PricingResult> vols = session.implied_vol_many(quotes);
  const double iv_time = timer.seconds();
  std::size_t converged = 0;
  for (const PricingResult& res : vols)
    if (res.ok() && res.implied_vol.converged) ++converged;
  std::printf("implied vols (T=%lld): %zu/%zu converged in %.3f s on the "
              "warm session\n",
              static_cast<long long>(iv_T), converged, vols.size(), iv_time);

  // Reprice a single contract with the quadratic loop for scale.
  timer.reset();
  (void)bopm::american_call_vanilla(base, T);
  const double one_vanilla = timer.seconds();
  std::printf("one contract with the Theta(T^2) loop: %.3f s  (x%zu contracts"
              " ~ %.1f s)\n",
              one_vanilla, chain.size(),
              one_vanilla * static_cast<double>(chain.size()));
  return 0;
}
