// Price a realistic option chain (many strikes x expiries on one
// underlying) and show the throughput difference between the O(T log^2 T)
// solver and the Θ(T^2) loop — the "rapidly changing market" use case the
// paper's introduction motivates.

#include <cstdio>
#include <cstdlib>
#include <vector>

#include <amopt/amopt.hpp>

int main(int argc, char** argv) {
  using namespace amopt::pricing;
  const std::int64_t T = argc > 1 ? std::atoll(argv[1]) : 20000;

  OptionSpec base = paper_spec();
  const std::vector<double> strikes{100, 110, 120, 125, 130, 135, 140, 150};
  const std::vector<double> expiries{0.25, 0.5, 1.0};

  std::printf("American call chain on S=%.2f (T=%lld steps/contract)\n",
              base.S, static_cast<long long>(T));
  std::printf("%-10s", "K \\ E");
  for (double e : expiries) std::printf(" %9.2fy", e);
  std::printf("\n");

  amopt::WallTimer timer;
  for (double k : strikes) {
    std::printf("%-10.1f", k);
    for (double e : expiries) {
      OptionSpec s = base;
      s.K = k;
      s.expiry_years = e;
      std::printf(" %10.4f", bopm::american_call_fft(s, T));
    }
    std::printf("\n");
  }
  const double fft_time = timer.seconds();
  std::printf("chain of %zu contracts priced in %.3f s (fft-bopm)\n",
              strikes.size() * expiries.size(), fft_time);

  // Reprice a single contract with the quadratic loop for scale.
  timer.reset();
  (void)bopm::american_call_vanilla(base, T);
  const double one_vanilla = timer.seconds();
  std::printf("one contract with the Theta(T^2) loop: %.3f s  (x%zu contracts"
              " ~ %.1f s)\n",
              one_vanilla, strikes.size() * expiries.size(),
              one_vanilla * static_cast<double>(strikes.size() * expiries.size()));
  return 0;
}
