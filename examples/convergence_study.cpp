// Convergence study: how the three discrete models approach the continuum.
// European contracts converge to the Black-Scholes closed form (the exact
// anchor); the American contracts from the three independent
// discretizations converge to each other.

#include <cmath>
#include <cstdio>
#include <vector>

#include <amopt/amopt.hpp>

int main() {
  using namespace amopt::pricing;
  const OptionSpec spec = paper_spec();

  const double eur_call = bs::european_call(spec);
  const double eur_put = bs::european_put(spec);
  std::printf("closed-form European: call %.6f  put %.6f\n\n", eur_call,
              eur_put);

  std::printf("%-10s %14s %14s %14s\n", "T", "BOPM err", "TOPM err",
              "BSM-FDM err");
  for (std::int64_t T = 128; T <= 32768; T *= 4) {
    const double e_bopm =
        std::fabs(bopm::european_call_fft(spec, T) - eur_call);
    const double e_topm =
        std::fabs(topm::european_call_fft(spec, T) - eur_call);
    const double e_bsm = std::fabs(bsm::european_put_fdm(spec, T) - eur_put);
    std::printf("%-10lld %14.2e %14.2e %14.2e\n", static_cast<long long>(T),
                e_bopm, e_topm, e_bsm);
  }

  // The three discretizations of the same continuum problem make a natural
  // heterogeneous batch: one price_many call per row, mixed models and
  // mixed T, served in parallel from one session.
  Pricer session;
  std::printf("\nAmerican put across models (same continuum problem):\n");
  std::printf("%-10s %14s %14s %14s\n", "T", "BOPM", "TOPM(T/2)", "BSM-FDM");
  for (std::int64_t T = 512; T <= 32768; T *= 4) {
    std::vector<PricingRequest> row(3);
    for (PricingRequest& q : row) {
      q.spec = spec;
      q.right = Right::put;
    }
    row[0].model = Model::bopm;
    row[0].T = T;
    row[1].model = Model::topm;
    row[1].T = T / 2;
    row[2].model = Model::bsm;
    row[2].T = T;
    const std::vector<PricingResult> res = session.price_many(row);
    for (const PricingResult& r : res)
      if (!r.ok()) {
        std::fprintf(stderr, "pricing failed: %s\n", r.message.c_str());
        return 1;
      }
    std::printf("%-10lld %14.6f %14.6f %14.6f\n", static_cast<long long>(T),
                res[0].price, res[1].price, res[2].price);
  }

  std::printf("\nRichardson extrapolation on the BOPM American call:\n");
  double prev = 0.0;
  for (std::int64_t T = 1024; T <= 16384; T *= 2) {
    const double v = bopm::american_call_fft(spec, T);
    if (prev != 0.0)
      std::printf("T=%-8lld  V=%.8f  2V(T)-V(T/2)=%.8f\n",
                  static_cast<long long>(T), v, 2 * v - prev);
    prev = v;
  }
  return 0;
}
