// Convergence study: how the three discrete models approach the continuum.
// European contracts converge to the Black-Scholes closed form (the exact
// anchor); the American contracts from the three independent
// discretizations converge to each other.

#include <cmath>
#include <cstdio>

#include <amopt/amopt.hpp>

int main() {
  using namespace amopt::pricing;
  const OptionSpec spec = paper_spec();

  const double eur_call = bs::european_call(spec);
  const double eur_put = bs::european_put(spec);
  std::printf("closed-form European: call %.6f  put %.6f\n\n", eur_call,
              eur_put);

  std::printf("%-10s %14s %14s %14s\n", "T", "BOPM err", "TOPM err",
              "BSM-FDM err");
  for (std::int64_t T = 128; T <= 32768; T *= 4) {
    const double e_bopm =
        std::fabs(bopm::european_call_fft(spec, T) - eur_call);
    const double e_topm =
        std::fabs(topm::european_call_fft(spec, T) - eur_call);
    const double e_bsm = std::fabs(bsm::european_put_fdm(spec, T) - eur_put);
    std::printf("%-10lld %14.2e %14.2e %14.2e\n", static_cast<long long>(T),
                e_bopm, e_topm, e_bsm);
  }

  std::printf("\nAmerican put across models (same continuum problem):\n");
  std::printf("%-10s %14s %14s %14s\n", "T", "BOPM", "TOPM(T/2)", "BSM-FDM");
  for (std::int64_t T = 512; T <= 32768; T *= 4) {
    std::printf("%-10lld %14.6f %14.6f %14.6f\n", static_cast<long long>(T),
                bopm::american_put_fft_direct(spec, T),
                topm::american_put_fft(spec, T / 2),
                bsm::american_put_fft(spec, T));
  }

  std::printf("\nRichardson extrapolation on the BOPM American call:\n");
  double prev = 0.0;
  for (std::int64_t T = 1024; T <= 16384; T *= 2) {
    const double v = bopm::american_call_fft(spec, T);
    if (prev != 0.0)
      std::printf("T=%-8lld  V=%.8f  2V(T)-V(T/2)=%.8f\n",
                  static_cast<long long>(T), v, 2 * v - prev);
    prev = v;
  }
  return 0;
}
