// Bermudan exercise ladder: how the option value interpolates between the
// European (no early exercise) and American (continuous exercise) limits as
// the exercise schedule densifies — priced with the O(m T log T)
// gap-collapse pricer (a "future work" item of the paper, §6).

#include <cstdio>
#include <cstdlib>
#include <vector>

#include <amopt/amopt.hpp>

int main(int argc, char** argv) {
  using namespace amopt::pricing;
  // A rate-dominant contract: with R >> Y the put's early-exercise premium
  // is material and the ladder interpolates visibly. (With the paper's
  // Y = 10*R spec the put premium is ~4e-5 and every row would read 100%.)
  OptionSpec spec = paper_spec();
  spec.R = 0.05;
  spec.Y = 0.0;
  const std::int64_t T = argc > 1 ? std::atoll(argv[1]) : 16384;

  // The two limits of the ladder come from one session batch (the European
  // and American puts share the session's machinery).
  Pricer session;
  std::vector<PricingRequest> limits(2);
  for (PricingRequest& q : limits) {
    q.spec = spec;
    q.T = T;
    q.right = Right::put;
  }
  limits[0].style = Style::european;
  limits[1].style = Style::american;
  const std::vector<PricingResult> lim = session.price_many(limits);
  if (!lim[0].ok() || !lim[1].ok()) {
    std::fprintf(stderr, "pricing the ladder limits failed: %s%s\n",
                 lim[0].message.c_str(), lim[1].message.c_str());
    return 1;
  }
  const double eur = lim[0].price;
  const double amer = lim[1].price;
  std::printf("Bermudan put ladder (T=%lld lattice steps, 1y expiry)\n",
              static_cast<long long>(T));
  std::printf("European limit:  %.6f\n", eur);
  std::printf("American limit:  %.6f\n\n", amer);
  std::printf("%-22s %12s %16s %10s\n", "schedule", "dates", "value",
              "premium%");

  amopt::WallTimer timer;
  for (const auto& [name, count] :
       std::vector<std::pair<const char*, std::int64_t>>{
           {"annual", 1},
           {"semiannual", 2},
           {"quarterly", 4},
           {"monthly", 12},
           {"weekly", 52},
           {"daily", 252},
           {"every lattice step", T}}) {
    std::vector<std::int64_t> steps;
    for (std::int64_t d = 1; d <= count; ++d) {
      const std::int64_t s = d * T / count - 1;
      if (s > 0 && s < T) steps.push_back(s);
    }
    const double v =
        bermudan::price_fft(spec, T, steps, bermudan::Right::put);
    const double premium =
        amer > eur ? 100.0 * (v - eur) / (amer - eur) : 100.0;
    std::printf("%-22s %12lld %16.6f %9.2f%%\n", name,
                static_cast<long long>(steps.size()), v, premium);
  }
  std::printf("\nladder priced in %.3f s total\n", timer.seconds());
  return 0;
}
