// Tests for S5, the lattice trapezoid solver: descend() must agree exactly
// with a pure naive descent for both drift modes, across base-case sizes,
// conv policies, and task settings.

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "amopt/core/lattice_solver.hpp"
#include "amopt/pricing/bopm.hpp"
#include "amopt/pricing/params.hpp"
#include "amopt/pricing/topm.hpp"

namespace {

using namespace amopt;
using pricing::OptionSpec;

/// Reference: descend by repeated step_naive only (base_case effectively
/// infinite disables trapezoids without touching the naive code path).
core::LatticeRow naive_descend(core::LatticeSolver& solver,
                               core::LatticeRow row, std::int64_t i_stop) {
  while (row.i > i_stop) row = solver.step_naive(row);
  return row;
}

struct SolverCase {
  int base_case;
  bool parallel;
  conv::Policy::Path path;
};

class BopmSolverConfigs : public ::testing::TestWithParam<SolverCase> {};

TEST_P(BopmSolverConfigs, TrapezoidDescendMatchesNaiveDescend) {
  const auto [base, parallel, path] = GetParam();
  const OptionSpec spec = pricing::paper_spec();
  const std::int64_t T = 700;
  const auto prm = pricing::derive_bopm(spec, T);
  const pricing::bopm::CallGreen green(spec, prm);

  core::SolverConfig cfg;
  cfg.base_case = base;
  cfg.parallel = parallel;
  cfg.task_cutoff = 64;
  cfg.conv_policy.path = path;
  core::LatticeSolver fast({{prm.s0, prm.s1}, 0}, green, cfg);
  core::LatticeSolver slow({{prm.s0, prm.s1}, 0}, green, {});

  core::LatticeRow top = pricing::bopm::expiry_row(prm, green);
  top = fast.step_naive(top);
  top = fast.step_naive(top);

  const core::LatticeRow a = fast.descend(top, 0);
  const core::LatticeRow b = naive_descend(slow, top, 0);
  EXPECT_EQ(a.q, b.q);
  ASSERT_EQ(a.red.size(), b.red.size());
  for (std::size_t j = 0; j < a.red.size(); ++j)
    EXPECT_NEAR(a.red[j], b.red[j], 1e-9) << "j=" << j;
}

INSTANTIATE_TEST_SUITE_P(
    Configs, BopmSolverConfigs,
    ::testing::Values(SolverCase{2, false, conv::Policy::Path::automatic},
                      SolverCase{8, false, conv::Policy::Path::automatic},
                      SolverCase{8, false, conv::Policy::Path::direct},
                      SolverCase{8, false, conv::Policy::Path::fft},
                      SolverCase{8, true, conv::Policy::Path::automatic},
                      SolverCase{32, true, conv::Policy::Path::fft},
                      SolverCase{64, false, conv::Policy::Path::automatic}));

TEST(LatticeSolver, IntermediateStopsAgree) {
  const OptionSpec spec = pricing::paper_spec();
  const std::int64_t T = 500;
  const auto prm = pricing::derive_bopm(spec, T);
  const pricing::bopm::CallGreen green(spec, prm);
  core::LatticeSolver fast({{prm.s0, prm.s1}, 0}, green, {});
  core::LatticeSolver slow({{prm.s0, prm.s1}, 0}, green, {});

  core::LatticeRow top = pricing::bopm::expiry_row(prm, green);
  top = fast.step_naive(top);
  top = fast.step_naive(top);
  for (std::int64_t i_stop : {400L, 250L, 97L, 3L}) {
    const auto a = fast.descend(top, i_stop);
    const auto b = naive_descend(slow, top, i_stop);
    EXPECT_EQ(a.q, b.q) << "i_stop=" << i_stop;
    ASSERT_EQ(a.red.size(), b.red.size());
    for (std::size_t j = 0; j < a.red.size(); ++j)
      EXPECT_NEAR(a.red[j], b.red[j], 1e-9);
  }
}

TEST(LatticeSolver, TrinomialDescendMatchesNaive) {
  const OptionSpec spec = pricing::paper_spec();
  const std::int64_t T = 400;
  const auto prm = pricing::derive_topm(spec, T);
  const pricing::topm::CallGreen green(spec, prm);
  core::LatticeSolver fast({{prm.s0, prm.s1, prm.s2}, 0}, green, {});
  core::LatticeSolver slow({{prm.s0, prm.s1, prm.s2}, 0}, green, {});

  core::LatticeRow top = pricing::topm::expiry_row(prm, green);
  top = fast.step_naive(top);
  top = fast.step_naive(top);
  const auto a = fast.descend(top, 0);
  const auto b = naive_descend(slow, top, 0);
  EXPECT_EQ(a.q, b.q);
  ASSERT_EQ(a.red.size(), b.red.size());
  for (std::size_t j = 0; j < a.red.size(); ++j)
    EXPECT_NEAR(a.red[j], b.red[j], 1e-9);
}

TEST(LatticeSolver, GrowingModeMatchesNaive) {
  const OptionSpec spec = pricing::paper_spec();
  const std::int64_t T = 600;
  const auto prm = pricing::derive_bopm(spec, T);
  const pricing::bopm::MirroredPutGreen green(spec, prm);
  core::SolverConfig cfg;
  cfg.drift = core::BoundaryDrift::growing;
  core::LatticeSolver fast({{prm.s1, prm.s0}, 0}, green, cfg);
  core::LatticeSolver slow({{prm.s1, prm.s0}, 0}, green, cfg);

  core::LatticeRow top;
  top.i = T;
  top.q = -1;
  for (std::int64_t j = 0; j <= T; ++j) {
    if (green.value(T, j) <= 0.0) top.q = j;
  }
  top.red.assign(static_cast<std::size_t>(top.q + 1), 0.0);
  top = fast.step_naive(top, /*unbounded_scan=*/true);
  top = fast.step_naive(top, /*unbounded_scan=*/true);

  const auto a = fast.descend(top, 0);
  const auto b = naive_descend(slow, top, 0);
  EXPECT_EQ(a.q, b.q);
  ASSERT_EQ(a.red.size(), b.red.size());
  for (std::size_t j = 0; j < a.red.size(); ++j)
    EXPECT_NEAR(a.red[j], b.red[j], 1e-9);
}

TEST(LatticeSolver, AllGreenRowShortCircuits) {
  // Huge dividend yield: exercising dominates everywhere, the expiry row is
  // all green, and descend must return an all-green row immediately.
  OptionSpec spec = pricing::paper_spec();
  spec.S = 400.0;  // deep in the money everywhere that matters
  spec.Y = 0.5;
  const std::int64_t T = 64;
  const auto prm = pricing::derive_bopm(spec, T);
  const pricing::bopm::CallGreen green(spec, prm);
  core::LatticeSolver solver({{prm.s0, prm.s1}, 0}, green, {});
  core::LatticeRow row;
  row.i = T;
  row.q = -1;
  const auto out = solver.descend(row, 0);
  EXPECT_EQ(out.i, 0);
  EXPECT_EQ(out.q, -1);
}

TEST(LatticeSolver, StepNaiveShrinksRowWidth) {
  const OptionSpec spec = pricing::paper_spec();
  const std::int64_t T = 16;
  const auto prm = pricing::derive_bopm(spec, T);
  const pricing::bopm::CallGreen green(spec, prm);
  core::LatticeSolver solver({{prm.s0, prm.s1}, 0}, green, {});
  core::LatticeRow row = pricing::bopm::expiry_row(prm, green);
  while (row.i > 0) {
    const auto next = solver.step_naive(row);
    EXPECT_EQ(next.i, row.i - 1);
    EXPECT_LE(next.q, row.q);          // call boundary never moves right
    EXPECT_GE(next.q, -1);
    row = next;
  }
}

}  // namespace
