// The Table-2 baselines (ql-bopm, zb-bopm, cache-oblivious) must price the
// American call identically to the Figure-1 loop across sizes and
// parameters — they are the reference series of Figs. 5-7.

#include <gtest/gtest.h>

#include <cmath>

#include "amopt/baselines/baselines.hpp"
#include "amopt/pricing/bopm.hpp"

namespace {

using namespace amopt;
using namespace amopt::pricing;

class BaselineSizes : public ::testing::TestWithParam<std::int64_t> {};

TEST_P(BaselineSizes, AllBaselinesMatchVanilla) {
  const std::int64_t T = GetParam();
  const OptionSpec spec = paper_spec();
  const double ref = bopm::american_call_vanilla(spec, T);
  EXPECT_NEAR(baselines::quantlib_style_american_call(spec, T, false), ref,
              1e-9 * std::max(1.0, ref));
  EXPECT_NEAR(baselines::zubair_american_call(spec, T), ref, 1e-10);
  EXPECT_NEAR(baselines::cache_oblivious_american_call(spec, T), ref, 1e-10);
}

INSTANTIATE_TEST_SUITE_P(Sizes, BaselineSizes,
                         ::testing::Values(1, 2, 3, 7, 8, 63, 64, 65, 100,
                                           511, 1000, 1024, 2047));

TEST(Zubair, TileWidthDoesNotChangeTheAnswer) {
  const OptionSpec spec = paper_spec();
  const std::int64_t T = 700;
  const double ref = bopm::american_call_vanilla(spec, T);
  for (std::int64_t W : {2L, 3L, 16L, 100L, 512L, 4096L}) {
    baselines::ZubairConfig cfg;
    cfg.tile_width = W;
    cfg.parallel = false;
    EXPECT_NEAR(baselines::zubair_american_call(spec, T, cfg), ref, 1e-10)
        << "W=" << W;
  }
}

TEST(Zubair, ParallelAndSerialAgree) {
  const OptionSpec spec = paper_spec();
  const std::int64_t T = 900;
  baselines::ZubairConfig serial;
  serial.parallel = false;
  baselines::ZubairConfig parallel;
  parallel.parallel = true;
  EXPECT_NEAR(baselines::zubair_american_call(spec, T, serial),
              baselines::zubair_american_call(spec, T, parallel), 0.0);
}

TEST(QuantlibStyle, ParallelAndSerialAgree) {
  const OptionSpec spec = paper_spec();
  const std::int64_t T = 500;
  EXPECT_NEAR(baselines::quantlib_style_american_call(spec, T, false),
              baselines::quantlib_style_american_call(spec, T, true), 1e-12);
}

TEST(Baselines, DifferentMoneyness) {
  for (double S : {60.0, 100.0, 170.0}) {
    OptionSpec spec = paper_spec();
    spec.S = S;
    const std::int64_t T = 256;
    const double ref = bopm::american_call_vanilla(spec, T);
    EXPECT_NEAR(baselines::zubair_american_call(spec, T), ref, 1e-10)
        << "S=" << S;
    EXPECT_NEAR(baselines::cache_oblivious_american_call(spec, T), ref, 1e-10)
        << "S=" << S;
  }
}

TEST(Baselines, AgreeWithFftPricer) {
  const OptionSpec spec = paper_spec();
  const std::int64_t T = 1500;
  const double fft = bopm::american_call_fft(spec, T);
  EXPECT_NEAR(baselines::zubair_american_call(spec, T), fft, 1e-7);
  EXPECT_NEAR(baselines::cache_oblivious_american_call(spec, T), fft, 1e-7);
}

}  // namespace
