// Closed-form Black-Scholes tests: put-call parity, boundary behaviours,
// known values, and the perpetual put's smooth-pasting conditions.

#include <gtest/gtest.h>

#include <cmath>

#include "amopt/pricing/black_scholes.hpp"

namespace {

using namespace amopt::pricing;

TEST(NormCdf, KnownValues) {
  EXPECT_NEAR(bs::norm_cdf(0.0), 0.5, 1e-15);
  EXPECT_NEAR(bs::norm_cdf(1.0), 0.8413447460685429, 1e-12);
  EXPECT_NEAR(bs::norm_cdf(-1.0), 1.0 - 0.8413447460685429, 1e-12);
  EXPECT_NEAR(bs::norm_cdf(10.0), 1.0, 1e-15);
  EXPECT_NEAR(bs::norm_cdf(-10.0), 0.0, 1e-15);
}

TEST(BlackScholes, PutCallParity) {
  // C - P = S e^{-Y tau} - K e^{-R tau}
  for (double S : {80.0, 100.0, 127.62}) {
    for (double Y : {0.0, 0.0163, 0.04}) {
      OptionSpec s;
      s.S = S;
      s.K = 100.0;
      s.R = 0.03;
      s.V = 0.25;
      s.Y = Y;
      s.expiry_years = 0.7;
      const double lhs = bs::european_call(s) - bs::european_put(s);
      const double rhs = S * std::exp(-Y * s.expiry_years) -
                         s.K * std::exp(-s.R * s.expiry_years);
      EXPECT_NEAR(lhs, rhs, 1e-10) << "S=" << S << " Y=" << Y;
    }
  }
}

TEST(BlackScholes, KnownTextbookValue) {
  // Hull's classic example: S=42, K=40, R=10%, V=20%, tau=0.5:
  // C ~ 4.76, P ~ 0.81.
  OptionSpec s;
  s.S = 42.0;
  s.K = 40.0;
  s.R = 0.10;
  s.V = 0.20;
  s.Y = 0.0;
  s.expiry_years = 0.5;
  EXPECT_NEAR(bs::european_call(s), 4.759422, 1e-5);
  EXPECT_NEAR(bs::european_put(s), 0.808599, 1e-5);
}

TEST(BlackScholes, CallBoundsRespected) {
  OptionSpec s;
  s.S = 100.0;
  s.K = 90.0;
  s.R = 0.05;
  s.V = 0.3;
  s.expiry_years = 2.0;
  const double c = bs::european_call(s);
  EXPECT_GT(c, std::max(0.0, s.S * std::exp(-s.Y * 2.0) -
                                 s.K * std::exp(-s.R * 2.0)));
  EXPECT_LT(c, s.S);
}

TEST(BlackScholes, MonotoneInVolatility) {
  OptionSpec s;
  s.S = 100.0;
  s.K = 105.0;
  double prev = -1.0;
  for (double v : {0.05, 0.1, 0.2, 0.4, 0.8}) {
    s.V = v;
    const double c = bs::european_call(s);
    EXPECT_GT(c, prev);
    prev = c;
  }
}

TEST(PerpetualPut, ValueMatchesIntrinsicAtBoundary) {
  const double K = 100.0, R = 0.04, V = 0.3;
  const double b = bs::perpetual_put_boundary(K, R, V);
  EXPECT_GT(b, 0.0);
  EXPECT_LT(b, K);
  EXPECT_NEAR(bs::perpetual_put(b, K, R, V), K - b, 1e-10);
}

TEST(PerpetualPut, SmoothPasting) {
  // dV/dS must equal -1 at the boundary (smooth fit).
  const double K = 100.0, R = 0.04, V = 0.3;
  const double b = bs::perpetual_put_boundary(K, R, V);
  const double h = 1e-5 * b;
  const double deriv =
      (bs::perpetual_put(b + h, K, R, V) - bs::perpetual_put(b, K, R, V)) / h;
  EXPECT_NEAR(deriv, -1.0, 1e-3);
}

TEST(PerpetualPut, DominatesIntrinsicEverywhere) {
  const double K = 100.0, R = 0.04, V = 0.3;
  for (double S : {20.0, 50.0, 80.0, 100.0, 150.0, 300.0}) {
    EXPECT_GE(bs::perpetual_put(S, K, R, V), std::max(0.0, K - S) - 1e-12);
  }
}

}  // namespace
