// Tests for S4: multi-step linear stencil application equals one
// correlation with the kernel power, and the kernel cache is consistent
// (including under concurrent access from OpenMP tasks).

#include <gtest/gtest.h>

#include <atomic>
#include <random>
#include <vector>

#include "amopt/fft/convolution.hpp"
#include "amopt/poly/poly_power.hpp"
#include "amopt/stencil/kernel_cache.hpp"
#include "amopt/stencil/linear_stencil.hpp"

namespace {

using namespace amopt;

std::vector<double> random_vec(std::size_t n, unsigned seed) {
  std::mt19937 rng(seed);
  std::uniform_real_distribution<double> dist(0.0, 100.0);
  std::vector<double> v(n);
  for (auto& x : v) x = dist(rng);
  return v;
}

struct StepCase {
  std::size_t taps;
  std::uint64_t h;
};

class MultiStep : public ::testing::TestWithParam<StepCase> {};

TEST_P(MultiStep, KernelCorrelationEqualsStepByStep) {
  const auto [n_taps, h] = GetParam();
  stencil::LinearStencil st;
  st.taps = n_taps == 2 ? std::vector<double>{0.47, 0.51}
                        : std::vector<double>{0.2, 0.5, 0.28};
  const std::size_t g = n_taps - 1;
  const std::size_t n_in = g * h + 40;
  const auto in = random_vec(n_in, static_cast<unsigned>(h * 3 + n_taps));

  const auto stepwise = stencil::apply_steps_naive(st, in, h);
  const auto kernel = poly::power(st.taps, h);
  std::vector<double> conv_out(n_in - g * h);
  conv::correlate_valid(in, kernel, conv_out);

  ASSERT_EQ(stepwise.size(), conv_out.size());
  for (std::size_t i = 0; i < stepwise.size(); ++i)
    EXPECT_NEAR(conv_out[i], stepwise[i], 1e-8) << "i=" << i;
}

INSTANTIATE_TEST_SUITE_P(
    Cases, MultiStep,
    ::testing::Values(StepCase{2, 1}, StepCase{2, 2}, StepCase{2, 17},
                      StepCase{2, 100}, StepCase{3, 1}, StepCase{3, 13},
                      StepCase{3, 64}, StepCase{3, 200}));

TEST(LinearStencil, ConeGrowth) {
  EXPECT_EQ((stencil::LinearStencil{{0.5, 0.5}, 0}).cone_growth(), 1);
  EXPECT_EQ((stencil::LinearStencil{{0.3, 0.3, 0.3}, -1}).cone_growth(), 2);
}

TEST(KernelCache, ReturnsStableSpans) {
  stencil::KernelCache cache({{0.49, 0.5}, 0});
  const auto k8_first = cache.power(8);
  const auto k4 = cache.power(4);
  const auto k8_second = cache.power(8);
  EXPECT_EQ(k8_first.data(), k8_second.data());  // memoized, stable address
  ASSERT_EQ(k8_first.size(), 9u);
  ASSERT_EQ(k4.size(), 5u);
  const auto ref = poly::power(std::vector<double>{0.49, 0.5}, 8);
  for (std::size_t i = 0; i < ref.size(); ++i)
    EXPECT_DOUBLE_EQ(k8_first[i], ref[i]);
}

TEST(KernelCache, ConcurrentRequestsAgree) {
  stencil::KernelCache cache({{0.2, 0.5, 0.29}, 0});
  std::atomic<int> mismatches{0};
#pragma omp parallel for
  for (int t = 0; t < 64; ++t) {
    const auto k = cache.power(static_cast<std::uint64_t>(16 + t % 4));
    const auto ref = poly::power(std::vector<double>{0.2, 0.5, 0.29},
                                 static_cast<std::uint64_t>(16 + t % 4));
    for (std::size_t i = 0; i < ref.size(); ++i)
      if (std::abs(k[i] - ref[i]) > 1e-12) mismatches.fetch_add(1);
  }
  EXPECT_EQ(mismatches.load(), 0);
}

TEST(LinearStencil, NaiveApplyShrinksCorrectly) {
  stencil::LinearStencil st{{1.0, 1.0}, 0};  // Pascal's triangle
  const std::vector<double> in{1.0, 0.0, 0.0, 0.0, 0.0};
  const auto out = stencil::apply_steps_naive(st, in, 4);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_DOUBLE_EQ(out[0], 1.0);  // only in[0] contributes via C(4,0)
  const std::vector<double> impulse_mid{0.0, 0.0, 1.0, 0.0, 0.0};
  const auto out2 = stencil::apply_steps_naive(st, impulse_mid, 2);
  // (1+x)^2 correlated: out[j] = C(2, 2-j) at the right offsets
  ASSERT_EQ(out2.size(), 3u);
  EXPECT_DOUBLE_EQ(out2[0], 1.0);
  EXPECT_DOUBLE_EQ(out2[1], 2.0);
  EXPECT_DOUBLE_EQ(out2[2], 1.0);
}

}  // namespace
