// Tests for S4: multi-step linear stencil application equals one
// correlation with the kernel power, and the kernel cache is consistent
// (including under concurrent access from OpenMP tasks).

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <random>
#include <vector>

#include "amopt/core/task_pool.hpp"
#include "amopt/fft/convolution.hpp"
#include "amopt/poly/poly_power.hpp"
#include "amopt/stencil/kernel_cache.hpp"
#include "amopt/stencil/linear_stencil.hpp"

namespace {

using namespace amopt;

std::vector<double> random_vec(std::size_t n, unsigned seed) {
  std::mt19937 rng(seed);
  std::uniform_real_distribution<double> dist(0.0, 100.0);
  std::vector<double> v(n);
  for (auto& x : v) x = dist(rng);
  return v;
}

struct StepCase {
  std::size_t taps;
  std::uint64_t h;
};

class MultiStep : public ::testing::TestWithParam<StepCase> {};

TEST_P(MultiStep, KernelCorrelationEqualsStepByStep) {
  const auto [n_taps, h] = GetParam();
  stencil::LinearStencil st;
  st.taps = n_taps == 2 ? std::vector<double>{0.47, 0.51}
                        : std::vector<double>{0.2, 0.5, 0.28};
  const std::size_t g = n_taps - 1;
  const std::size_t n_in = g * h + 40;
  const auto in = random_vec(n_in, static_cast<unsigned>(h * 3 + n_taps));

  const auto stepwise = stencil::apply_steps_naive(st, in, h);
  const auto kernel = poly::power(st.taps, h);
  std::vector<double> conv_out(n_in - g * h);
  conv::correlate_valid(in, kernel, conv_out);

  ASSERT_EQ(stepwise.size(), conv_out.size());
  for (std::size_t i = 0; i < stepwise.size(); ++i)
    EXPECT_NEAR(conv_out[i], stepwise[i], 1e-8) << "i=" << i;
}

INSTANTIATE_TEST_SUITE_P(
    Cases, MultiStep,
    ::testing::Values(StepCase{2, 1}, StepCase{2, 2}, StepCase{2, 17},
                      StepCase{2, 100}, StepCase{3, 1}, StepCase{3, 13},
                      StepCase{3, 64}, StepCase{3, 200}));

TEST(LinearStencil, ConeGrowth) {
  EXPECT_EQ((stencil::LinearStencil{{0.5, 0.5}, 0}).cone_growth(), 1);
  EXPECT_EQ((stencil::LinearStencil{{0.3, 0.3, 0.3}, -1}).cone_growth(), 2);
}

TEST(KernelCache, ReturnsStableSpans) {
  stencil::KernelCache cache({{0.49, 0.5}, 0});
  const auto k8_first = cache.power(8);
  const auto k4 = cache.power(4);
  const auto k8_second = cache.power(8);
  EXPECT_EQ(k8_first.data(), k8_second.data());  // memoized, stable address
  ASSERT_EQ(k8_first.size(), 9u);
  ASSERT_EQ(k4.size(), 5u);
  const auto ref = poly::power(std::vector<double>{0.49, 0.5}, 8);
  for (std::size_t i = 0; i < ref.size(); ++i)
    EXPECT_DOUBLE_EQ(k8_first[i], ref[i]);
}

TEST(KernelCache, ConcurrentRequestsAgree) {
  stencil::KernelCache cache({{0.2, 0.5, 0.29}, 0});
  std::atomic<int> mismatches{0};
  core::TaskPool::instance().for_each(64, [&](std::size_t t) {
    const auto k = cache.power(static_cast<std::uint64_t>(16 + t % 4));
    const auto ref = poly::power(std::vector<double>{0.2, 0.5, 0.29},
                                 static_cast<std::uint64_t>(16 + t % 4));
    for (std::size_t i = 0; i < ref.size(); ++i)
      if (std::abs(k[i] - ref[i]) > 1e-12) mismatches.fetch_add(1);
  });
  EXPECT_EQ(mismatches.load(), 0);
}

TEST(KernelCache, LadderPowersMatchNaiveUpTo4096) {
  // The shared squaring ladder must reproduce the plain repeated-squaring
  // kernels: request a mix of heights (power-of-two rungs, combined-bit
  // heights, and the trapezoid's typical halvings) against the O(h^2)
  // oracle up to h = 2^12. The ladder is also asserted bit-identical to
  // the ladder-free poly::power at every height — sharing rungs across
  // heights must not change a single bit.
  const std::vector<double> taps{0.24, 0.50, 0.25};
  stencil::KernelCache cache({taps, 0});
  for (const std::uint64_t h :
       {1u, 2u, 3u, 5u, 8u, 13u, 64u, 100u, 341u, 1024u, 2048u, 4096u}) {
    const auto k = cache.power(h);
    const auto plain = poly::power(taps, h);
    ASSERT_EQ(k.size(), plain.size()) << "h=" << h;
    for (std::size_t i = 0; i < plain.size(); ++i)
      ASSERT_EQ(k[i], plain[i]) << "h=" << h << " i=" << i;
    if (h > 512) continue;  // the naive oracle is O(h^2)
    const auto naive = poly::power_naive(taps, h);
    ASSERT_EQ(k.size(), naive.size());
    double peak = 0.0;
    for (double x : naive) peak = std::max(peak, std::abs(x));
    for (std::size_t i = 0; i < naive.size(); ++i)
      EXPECT_NEAR(k[i], naive[i], 1e-11 * std::max(peak, 1.0))
          << "h=" << h << " i=" << i;
  }
  const auto naive = poly::power_naive(taps, 4096);
  const auto k = cache.power(4096);
  ASSERT_EQ(k.size(), naive.size());
  double peak = 0.0;
  for (double x : naive) peak = std::max(peak, std::abs(x));
  for (std::size_t i = 0; i < naive.size(); ++i)
    EXPECT_NEAR(k[i], naive[i], 1e-10 * std::max(peak, 1.0)) << "i=" << i;
  // 12 heights <= 2^12 share one 13-rung chain (taps^1 .. taps^4096).
  EXPECT_LE(cache.stats().ladder_rungs, 13u);
}

TEST(KernelCache, SpectraAreCachedPerHeightAndSize) {
  const std::vector<double> taps{0.2, 0.5, 0.29};
  stencil::KernelCache cache({taps, 0});
  const std::size_t n = 256;
  const auto sp1 = cache.power_spectrum(16, n);
  const auto sp2 = cache.power_spectrum(16, n);
  const fft::RealSpectrum& s1 = *sp1;
  EXPECT_EQ(sp1.get(), sp2.get());  // memoized, stable entry
  EXPECT_EQ(s1.n, n);
  EXPECT_TRUE(s1.reversed);
  EXPECT_EQ(s1.klen, cache.power(16).size());
  const auto sp3 = cache.power_spectrum(16, 2 * n);
  EXPECT_NE(sp1.get(), sp3.get());  // same height, different padded size
  EXPECT_EQ(cache.stats().spectra, 2u);

  // The cached bins must be exactly what an in-call transform produces.
  conv::Workspace ws;
  const fft::RealSpectrum fresh =
      conv::kernel_spectrum(cache.power(16), n, /*reversed=*/true, ws);
  ASSERT_EQ(fresh.bins.size(), s1.bins.size());
  for (std::size_t i = 0; i < fresh.bins.size(); ++i)
    ASSERT_EQ(fresh.bins[i], s1.bins[i]) << "bin " << i;
}

TEST(KernelCache, SpectralCorrelationMatchesTimeDomain) {
  const std::vector<double> taps{0.3, 0.45, 0.22};
  stencil::KernelCache cache({taps, 0});
  const std::uint64_t h = 40;
  const auto kernel = cache.power(h);
  const auto in = random_vec(400, 77);
  const std::size_t n_out = in.size() - kernel.size() + 1;
  std::vector<double> want(n_out), got(n_out);
  conv::correlate_valid(in, kernel, want, {conv::Policy::Path::fft});
  conv::Workspace ws;
  conv::correlate_valid(
      in,
      *cache.power_spectrum(h, conv::correlate_fft_size(n_out, kernel.size())),
      got, ws);
  for (std::size_t i = 0; i < n_out; ++i)
    ASSERT_EQ(got[i], want[i]) << "i=" << i;  // same bits, not just close
}

TEST(SpectrumBudget, CapsBytesWithLruEvictionAcrossCaches) {
  // Two caches share one registry-level budget sized for roughly two
  // spectra at n = 256 (a 129-bin spectrum is 2064 bytes): inserting a
  // third evicts the least-recently-used entry, whichever cache owns it.
  const std::vector<double> taps{0.2, 0.5, 0.29};
  auto budget = std::make_shared<stencil::SpectrumBudget>(2 * 2064);
  stencil::KernelCache a({taps, 0}), b({taps, 0});
  a.set_spectrum_budget(budget);
  b.set_spectrum_budget(budget);

  const auto s1 = a.power_spectrum(8, 256);
  const auto s2 = b.power_spectrum(8, 256);
  EXPECT_EQ(budget->stats().entries, 2u);
  EXPECT_LE(budget->stats().bytes, budget->max_bytes());
  // Touch a's entry so b's becomes the LRU victim of the next insert.
  (void)a.power_spectrum(8, 256);
  const auto s3 = a.power_spectrum(16, 256);
  const auto st = budget->stats();
  EXPECT_EQ(st.entries, 2u);
  EXPECT_EQ(st.evictions, 1u);
  EXPECT_LE(st.bytes, budget->max_bytes());
  EXPECT_EQ(a.stats().spectra, 2u);  // both survivors live in cache a
  EXPECT_EQ(b.stats().spectra, 0u);  // b's entry was the victim
  // The evicted shared_ptr is still safe to use (in-flight consumers).
  EXPECT_EQ(s2->n, 256u);
  EXPECT_FALSE(s2->bins.empty());

  // Re-requesting the evicted entry rebuilds the identical bits.
  const auto s2b = b.power_spectrum(8, 256);
  ASSERT_EQ(s2b->bins.size(), s2->bins.size());
  for (std::size_t i = 0; i < s2->bins.size(); ++i)
    ASSERT_EQ(s2b->bins[i], s2->bins[i]) << "bin " << i;
  (void)s1;
  (void)s3;
}

TEST(SpectrumBudget, DyingCacheUnregistersItsEntries) {
  const std::vector<double> taps{0.2, 0.5, 0.29};
  auto budget = std::make_shared<stencil::SpectrumBudget>(1u << 20);
  {
    stencil::KernelCache c({taps, 0});
    c.set_spectrum_budget(budget);
    (void)c.power_spectrum(8, 256);
    (void)c.power_spectrum(16, 512);
    EXPECT_EQ(budget->stats().entries, 2u);
  }
  EXPECT_EQ(budget->stats().entries, 0u);
  EXPECT_EQ(budget->stats().bytes, 0u);
}

TEST(LinearStencil, NaiveApplyShrinksCorrectly) {
  stencil::LinearStencil st{{1.0, 1.0}, 0};  // Pascal's triangle
  const std::vector<double> in{1.0, 0.0, 0.0, 0.0, 0.0};
  const auto out = stencil::apply_steps_naive(st, in, 4);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_DOUBLE_EQ(out[0], 1.0);  // only in[0] contributes via C(4,0)
  const std::vector<double> impulse_mid{0.0, 0.0, 1.0, 0.0, 0.0};
  const auto out2 = stencil::apply_steps_naive(st, impulse_mid, 2);
  // (1+x)^2 correlated: out[j] = C(2, 2-j) at the right offsets
  ASSERT_EQ(out2.size(), 3u);
  EXPECT_DOUBLE_EQ(out2[0], 1.0);
  EXPECT_DOUBLE_EQ(out2[1], 2.0);
  EXPECT_DOUBLE_EQ(out2[2], 1.0);
}

}  // namespace
