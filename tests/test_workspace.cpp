// Allocation-freedom and correctness of the Workspace-backed convolution
// paths. This binary replaces the global operator new/delete with counting
// versions (which is why it is its own test executable): after one warm-up
// call, repeated convolutions through a Workspace must not touch the heap.

#include <gtest/gtest.h>

#include <cstdint>
#include <random>
#include <vector>

#include "amopt/fft/convolution.hpp"
#include "amopt/poly/poly_power.hpp"

#include "counting_new.hpp"

namespace {

using namespace amopt;

std::vector<double> random_vec(std::size_t n, unsigned seed) {
  std::mt19937 rng(seed);
  std::uniform_real_distribution<double> dist(-1.0, 1.0);
  std::vector<double> v(n);
  for (auto& x : v) x = dist(rng);
  return v;
}

[[nodiscard]] std::uint64_t allocs() { return counting_new::count(); }

TEST(Workspace, ConvolveFullMatchesVectorOverloadBitForBit) {
  const auto a = random_vec(1000, 1);
  const auto b = random_vec(777, 2);
  const auto ref = conv::convolve_full(a, b, {conv::Policy::Path::fft});
  conv::Workspace ws;
  std::vector<double> out(a.size() + b.size() - 1);
  conv::convolve_full(a, b, out, ws, {conv::Policy::Path::fft});
  ASSERT_EQ(out.size(), ref.size());
  for (std::size_t i = 0; i < ref.size(); ++i) EXPECT_EQ(out[i], ref[i]);
}

TEST(Workspace, ConvolveFullZeroAllocationsAfterWarmup) {
  const auto a = random_vec(4096, 3);
  const auto b = random_vec(4096, 4);
  conv::Workspace ws;
  std::vector<double> out(a.size() + b.size() - 1);
  const conv::Policy fft{conv::Policy::Path::fft};
  conv::convolve_full(a, b, out, ws, fft);  // warm-up: plans + arena growth
  const std::vector<double> ref = out;

  const std::uint64_t before = allocs();
  for (int r = 0; r < 10; ++r) conv::convolve_full(a, b, out, ws, fft);
  const std::uint64_t after = allocs();
  EXPECT_EQ(after - before, 0u) << "convolve_full allocated after warm-up";
  for (std::size_t i = 0; i < ref.size(); ++i) EXPECT_EQ(out[i], ref[i]);
}

TEST(Workspace, CorrelateValidZeroAllocationsAfterWarmup) {
  const auto in = random_vec(8192, 5);
  const auto kernel = random_vec(2048, 6);
  conv::Workspace ws;
  std::vector<double> out(in.size() - kernel.size() + 1);
  const conv::Policy fft{conv::Policy::Path::fft};
  conv::correlate_valid(in, kernel, out, ws, fft);  // warm-up

  const std::uint64_t before = allocs();
  for (int r = 0; r < 10; ++r) conv::correlate_valid(in, kernel, out, ws, fft);
  const std::uint64_t after = allocs();
  EXPECT_EQ(after - before, 0u) << "correlate_valid allocated after warm-up";

  std::vector<double> ref(out.size());
  conv::correlate_valid_direct(in, kernel, ref);
  const double tol = 1e-10 * static_cast<double>(in.size());
  for (std::size_t i = 0; i < ref.size(); ++i) EXPECT_NEAR(out[i], ref[i], tol);
}

TEST(Workspace, SmallerSizesReuseWarmArena) {
  // Once warmed at the high-water mark, every SMALLER convolution must be
  // allocation-free too (the arena never shrinks; smaller plans were created
  // during the descent of the trapezoid recursion warm-up here).
  conv::Workspace ws;
  const conv::Policy fft{conv::Policy::Path::fft};
  std::vector<std::vector<double>> as, bs;
  for (std::size_t n : {4096u, 1024u, 300u, 64u}) {
    as.push_back(random_vec(n, static_cast<unsigned>(n)));
    bs.push_back(random_vec(n, static_cast<unsigned>(n + 1)));
  }
  std::vector<double> out(2 * 4096 - 1);
  for (std::size_t i = 0; i < as.size(); ++i) {  // warm every size once
    conv::convolve_full(as[i], bs[i],
                        std::span<double>(out).first(2 * as[i].size() - 1), ws,
                        fft);
  }
  const std::uint64_t before = allocs();
  for (int r = 0; r < 5; ++r) {
    for (std::size_t i = 0; i < as.size(); ++i) {
      conv::convolve_full(as[i], bs[i],
                          std::span<double>(out).first(2 * as[i].size() - 1),
                          ws, fft);
    }
  }
  EXPECT_EQ(allocs() - before, 0u);
}

TEST(Workspace, ConvolveManySharesKernelSpectrum) {
  const auto kernel = random_vec(513, 7);
  std::vector<std::vector<double>> inputs_storage;
  for (std::size_t n : {2048u, 2048u, 1024u, 100u})
    inputs_storage.push_back(random_vec(n, static_cast<unsigned>(n + 9)));
  std::vector<std::span<const double>> inputs(inputs_storage.begin(),
                                              inputs_storage.end());
  std::vector<std::vector<double>> outs(inputs.size());
  conv::Workspace ws;
  conv::convolve_many(inputs, kernel, outs, ws, {conv::Policy::Path::fft});
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    const auto ref = conv::convolve_full_direct(inputs_storage[i], kernel);
    ASSERT_EQ(outs[i].size(), ref.size()) << "item " << i;
    const double tol = 1e-10 * static_cast<double>(inputs_storage[i].size());
    for (std::size_t j = 0; j < ref.size(); ++j)
      EXPECT_NEAR(outs[i][j], ref[j], tol) << "item " << i << " j=" << j;
  }
  // Same-length items share the padded size with the unbatched call, so the
  // batched result is bit-identical to it.
  const auto solo =
      conv::convolve_full(inputs_storage[0], kernel, {conv::Policy::Path::fft});
  for (std::size_t j = 0; j < solo.size(); ++j) EXPECT_EQ(outs[0][j], solo[j]);

  // After the warm-up call above, re-running the batch (outs already sized)
  // performs no allocations.
  const std::uint64_t before = allocs();
  conv::convolve_many(inputs, kernel, outs, ws, {conv::Policy::Path::fft});
  EXPECT_EQ(allocs() - before, 0u);
}

TEST(Workspace, PolyPowerThroughWorkspaceMatchesDefault) {
  const std::vector<double> taps{0.2, 0.5, 0.3};
  conv::Workspace ws;
  for (std::uint64_t h : {1u, 7u, 64u, 301u}) {
    const auto ref = poly::power_fft(taps, h);
    const auto got = poly::power_fft(taps, h, ws);
    ASSERT_EQ(ref.size(), got.size()) << "h=" << h;
    for (std::size_t i = 0; i < ref.size(); ++i)
      EXPECT_EQ(got[i], ref[i]) << "h=" << h << " i=" << i;
  }
  // Warmed up, a kernel-power call allocates only the returned vector.
  (void)poly::power_fft(taps, 301, ws);
  const std::uint64_t before = allocs();
  (void)poly::power_fft(taps, 301, ws);
  EXPECT_LE(allocs() - before, 2u);
}

}  // namespace
