// The PR-10 accuracy contract (DESIGN.md §12): every engine's price is
// pinned against an analytic or converged high-T reference with a STATED
// tolerance, across every compiled SIMD dispatch level and pool widths
// {1, 4}. This is the harness that replaced the library's bit-exactness
// clauses when overlap-save minimal FFT padding and quantized kernel
// sharing were allowed to perturb FFT rounding: cross-run/cross-level
// reproducibility is still asserted where it is promised (test_simd,
// test_pricer), but VALUES are promised against references, not against
// yesterday's bits.
//
// Each case records its measured worst deviation next to its contract; with
// AMOPT_ACCURACY_REPORT=<path> the whole table is dumped as JSON, which
// tools/rebless.py commits as ACCURACY.json and CI feeds to
// `check_bench.py --tolerance-report` so the logs show contract headroom
// shrinking before a breach. Contracts are set 4-10x above the deviation
// measured on the reference build box — generous enough for toolchain and
// libm drift, tight enough that a sizing or sharing bug (an aliased
// convolution window, a mis-snapped vol) blows straight through them.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "amopt/common/env.hpp"
#include "amopt/pricing/black_scholes.hpp"
#include "amopt/pricing/pricer.hpp"
#include "amopt/simd/simd.hpp"

namespace {

using namespace amopt;
using namespace amopt::pricing;

struct CaseRecord {
  std::string name;
  std::string reference;  ///< what the deviation is measured against
  double contract = 0.0;  ///< documented max |price - reference|
  double measured = 0.0;  ///< worst deviation over levels x widths
};

std::vector<CaseRecord>& records() {
  static std::vector<CaseRecord> r;
  return r;
}

/// Evaluate `price_at(threads)` at every compiled dispatch level x pool
/// widths {1, 4} and return the worst |price - reference|. The level is
/// restored afterwards so cases do not leak state into each other.
double worst_deviation(double reference,
                       const std::function<double(int)>& price_at) {
  const simd::Level entry = simd::active();
  double worst = 0.0;
  for (int lvl = 0; lvl <= static_cast<int>(simd::max_supported()); ++lvl) {
    simd::set_level(static_cast<simd::Level>(lvl));
    for (const int threads : {1, 4}) {
      const double p = price_at(threads);
      worst = std::max(worst, std::abs(p - reference));
    }
  }
  simd::set_level(entry);
  return worst;
}

/// Record + assert one contract case.
void pin(const std::string& name, const std::string& reference_desc,
         double contract, double reference,
         const std::function<double(int)>& price_at) {
  const double measured = worst_deviation(reference, price_at);
  records().push_back({name, reference_desc, contract, measured});
  EXPECT_LE(measured, contract)
      << name << ": measured deviation " << measured
      << " breaches the documented contract " << contract << " (reference: "
      << reference_desc << ")";
}

[[nodiscard]] double session_price(const PricingRequest& q, int threads) {
  PricerConfig cfg;
  cfg.threads = threads;
  Pricer session(cfg);
  const PricingResult r = session.price_one(q);
  EXPECT_EQ(r.status, Status::ok) << r.message;
  return r.price;
}

[[nodiscard]] PricingRequest make_request(Model m, Right r, Style s, Engine e,
                                          std::int64_t T) {
  PricingRequest q;
  q.spec = paper_spec();
  q.T = T;
  q.model = m;
  q.right = r;
  q.style = s;
  q.engine = e;
  return q;
}

/// Scalar single-threaded evaluation — the fixed configuration references
/// are computed at, so the reference itself is deterministic and the
/// deviations measure engine-vs-reference, not reference jitter.
[[nodiscard]] double reference_price(const PricingRequest& q) {
  const simd::Level entry = simd::active();
  simd::set_level(simd::Level::scalar);
  const double p = session_price(q, 1);
  simd::set_level(entry);
  return p;
}

// Writes the accuracy report on teardown (after every case has recorded).
class ReportWriter : public ::testing::Environment {
 public:
  void TearDown() override {
    const std::string path = env_string("AMOPT_ACCURACY_REPORT", "");
    if (path.empty()) return;
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "test_accuracy: cannot write %s\n", path.c_str());
      return;
    }
    std::fprintf(f, "{\n  \"title\": \"accuracy_contract\",\n  \"cases\": [\n");
    for (std::size_t i = 0; i < records().size(); ++i) {
      const CaseRecord& c = records()[i];
      std::fprintf(f,
                   "    {\"name\": \"%s\", \"contract\": %.3g, "
                   "\"measured\": %.6g, \"reference\": \"%s\"}%s\n",
                   c.name.c_str(), c.contract, c.measured,
                   c.reference.c_str(), i + 1 < records().size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::printf("# wrote %s\n", path.c_str());
  }
};

const auto* const kReportWriter =
    ::testing::AddGlobalTestEnvironment(new ReportWriter);

// ---- analytic anchors ---------------------------------------------------
// European lattice/FDM prices converge to the closed form at O(1/T); the
// contract pins the discretization error at T = 4096 plus all dispatch/
// width perturbation. A transform sized one power of two too small (an
// aliased window) moves these prices by O(1), not O(1e-4).

TEST(Accuracy, EuropeanAnchorsAgainstClosedForm) {
  const OptionSpec spec = paper_spec();
  pin("bopm-eu-call-fft", "BSM closed form, T=4096 lattice", 2e-3,
      bs::european_call(spec), [](int threads) {
        return session_price(make_request(Model::bopm, Right::call,
                                          Style::european, Engine::fft, 4096),
                             threads);
      });
  pin("topm-eu-call-fft", "BSM closed form, T=4096 lattice", 2e-3,
      bs::european_call(spec), [](int threads) {
        return session_price(make_request(Model::topm, Right::call,
                                          Style::european, Engine::fft, 4096),
                             threads);
      });
  pin("bsm-eu-put-fft", "BSM closed form, T=4096 grid", 5e-3,
      bs::european_put(spec), [](int threads) {
        return session_price(make_request(Model::bsm, Right::put,
                                          Style::european, Engine::fft, 4096),
                             threads);
      });
}

// ---- high-T American anchors --------------------------------------------
// No closed form exists, so the reference is the same engine at 8x the
// steps (scalar, single-threaded): first-order lattice convergence puts
// p(T) - p(8T) at ~7/8 of p(T)'s own discretization error.

TEST(Accuracy, AmericanAnchorsAgainstHighT) {
  const auto high_t_case = [](const char* name, Model m, Right r) {
    const PricingRequest ref_req =
        make_request(m, r, Style::american, Engine::fft, 1 << 15);
    const double reference = reference_price(ref_req);
    pin(name, "same engine at T=2^15, scalar 1-thread", 2e-3, reference,
        [m, r](int threads) {
          return session_price(
              make_request(m, r, Style::american, Engine::fft, 1 << 12),
              threads);
        });
  };
  high_t_case("bopm-am-call-fft", Model::bopm, Right::call);
  high_t_case("topm-am-call-fft", Model::topm, Right::call);
  high_t_case("bsm-am-put-fft", Model::bsm, Right::put);
}

// ---- cross-engine parity at one discretization --------------------------
// Every lattice engine prices the SAME backward recursion; only the FFT
// paths carry transform round-off. Reference: the vanilla engine (direct
// arithmetic), scalar 1-thread, at the same T.

TEST(Accuracy, LatticeEnginesAgreeAtFixedT) {
  const std::int64_t T = 512;
  const double reference = reference_price(
      make_request(Model::bopm, Right::call, Style::american, Engine::vanilla,
                   T));
  const auto engine_case = [&](const char* name, Engine e, double contract) {
    pin(name, "vanilla engine, same T=512, scalar 1-thread", contract,
        reference, [e, T](int threads) {
          return session_price(make_request(Model::bopm, Right::call,
                                            Style::american, e, T),
                               threads);
        });
  };
  engine_case("bopm-am-call-fft@512", Engine::fft, 1e-8);
  engine_case("bopm-am-call-vanilla@512", Engine::vanilla, 1e-10);
  engine_case("bopm-am-call-vanilla-parallel@512", Engine::vanilla_parallel,
              1e-10);
  engine_case("bopm-am-call-tiled@512", Engine::tiled, 1e-10);
  engine_case("bopm-am-call-cache-oblivious@512", Engine::cache_oblivious,
              1e-10);
  engine_case("bopm-am-call-quantlib@512", Engine::quantlib, 1e-10);
}

// ---- boundary engine ----------------------------------------------------
// Reference: the engine's own converged preset (41/129/64 — DESIGN.md §6),
// scalar 1-thread. The default preset's documented error is ~2.4e-6.

TEST(Accuracy, BoundaryEngineAgainstConvergedPreset) {
  const auto boundary_case = [](const char* name, Right r) {
    PricingRequest ref_req =
        make_request(Model::bsm, r, Style::american, Engine::boundary, 1);
    core::SolverConfig converged;
    converged.alo_nodes = 41;
    converged.alo_quad = 129;
    converged.alo_iterations = 64;
    ref_req.solver = converged;
    const double reference = reference_price(ref_req);
    pin(name, "converged ALO preset (41/129/64), scalar 1-thread", 1e-4,
        reference, [r](int threads) {
          return session_price(make_request(Model::bsm, r, Style::american,
                                            Engine::boundary, 1),
                               threads);
        });
  };
  boundary_case("bsm-am-put-boundary", Right::put);
  boundary_case("bsm-am-call-boundary", Right::call);
}

// ---- quantized kernel sharing -------------------------------------------
// A drifting-vol chain under share_quantum: the snap moves each leg's vol
// by < quantum relative, so prices move first-order by vega * dV on top of
// the sharing refinement. Reference: the SAME batch priced unshared at the
// SAME level/width — the deviation isolates exactly what the quantized
// grouping changes.

TEST(Accuracy, ShareQuantumPerturbationWithinContract) {
  const double quantum = 1e-3;
  std::vector<PricingRequest> chain;
  const double expiries[] = {0.26, 0.51, 0.77, 1.03, 1.28};
  for (int i = 0; i < 5; ++i) {
    PricingRequest q = make_request(Model::bopm, Right::call, Style::american,
                                    Engine::fft, 1024);
    q.spec.expiry_years = expiries[i];
    q.spec.V = q.spec.V * (1.0 + i * quantum / 8.0);
    chain.push_back(q);
  }
  const auto worst_at = [&](int threads) {
    PricerConfig off_cfg;
    off_cfg.threads = threads;
    Pricer off(off_cfg);
    const auto plain = off.price_many(chain);
    PricerConfig on_cfg = off_cfg;
    on_cfg.share_kernels_across_expiries = true;
    on_cfg.share_quantum = quantum;
    Pricer on(on_cfg);
    const auto shared = on.price_many(chain);
    double worst = 0.0;
    for (std::size_t i = 0; i < chain.size(); ++i) {
      EXPECT_EQ(shared[i].status, Status::ok);
      worst = std::max(worst, std::abs(shared[i].price - plain[i].price));
    }
    return worst;
  };
  // pin() measures |price_at - reference|; here price_at already IS the
  // deviation, so the reference is 0.
  pin("share-quantum-chain", "unshared batch, same level/width", 5e-2, 0.0,
      worst_at);
}

}  // namespace
