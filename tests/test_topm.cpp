// TOPM pricing tests: FFT vs the Θ(T^2) oracle across a parameter grid,
// plus the model-level claims the paper cites (§3): trinomial probabilities
// form a distribution and TOPM converges to Black-Scholes faster than BOPM.

#include <gtest/gtest.h>

#include <cmath>

#include "amopt/pricing/black_scholes.hpp"
#include "amopt/pricing/bopm.hpp"
#include "amopt/pricing/topm.hpp"

namespace {

using namespace amopt;
using namespace amopt::pricing;

struct GridCase {
  double S, K, R, V, Y;
  std::int64_t T;
};

OptionSpec to_spec(const GridCase& c) {
  OptionSpec s;
  s.S = c.S;
  s.K = c.K;
  s.R = c.R;
  s.V = c.V;
  s.Y = c.Y;
  return s;
}

class TopmGrid : public ::testing::TestWithParam<GridCase> {};

TEST_P(TopmGrid, FftCallMatchesVanilla) {
  const GridCase c = GetParam();
  const OptionSpec spec = to_spec(c);
  const double v = topm::american_call_vanilla(spec, c.T);
  const double f = topm::american_call_fft(spec, c.T);
  EXPECT_NEAR(f, v, 1e-8 * std::max(1.0, std::abs(v)));
}

INSTANTIATE_TEST_SUITE_P(
    ParameterGrid, TopmGrid,
    ::testing::Values(GridCase{127.62, 130, 0.00163, 0.2, 0.0163, 1},
                      GridCase{127.62, 130, 0.00163, 0.2, 0.0163, 3},
                      GridCase{127.62, 130, 0.00163, 0.2, 0.0163, 17},
                      GridCase{127.62, 130, 0.00163, 0.2, 0.0163, 128},
                      GridCase{127.62, 130, 0.00163, 0.2, 0.0163, 1000},
                      GridCase{200, 100, 0.03, 0.25, 0.05, 400},
                      GridCase{50, 100, 0.03, 0.25, 0.05, 400},
                      GridCase{100, 100, 0.02, 0.7, 0.03, 400},
                      GridCase{100, 110, 0.01, 0.3, 0.08, 513},
                      GridCase{100, 95, 0.0, 0.3, 0.04, 256}));

TEST(TopmModel, ProbabilitiesFormDistribution) {
  const OptionSpec spec = paper_spec();
  for (std::int64_t T : {4L, 100L, 10000L}) {
    const auto p = derive_topm(spec, T);
    EXPECT_GT(p.pu, 0.0);
    EXPECT_GT(p.po, 0.0);
    EXPECT_GT(p.pd, 0.0);
    EXPECT_NEAR(p.pu + p.po + p.pd, 1.0, 1e-12);
  }
}

TEST(TopmModel, RiskNeutralDriftIsCorrect) {
  // E[price factor] = pd/u + po + pu*u must equal e^{(R-Y) dt}.
  const OptionSpec spec = paper_spec();
  const auto p = derive_topm(spec, 252);
  const double drift = p.pd / p.u + p.po + p.pu * p.u;
  EXPECT_NEAR(drift, std::exp((spec.R - spec.Y) * p.dt), 1e-12);
}

TEST(TopmEuropean, ConvergesToBlackScholes) {
  const OptionSpec spec = paper_spec();
  const double exact = bs::european_call(spec);
  EXPECT_NEAR(topm::european_call_fft(spec, 8192), exact, 2e-3);
}

TEST(TopmEuropean, ConvergesFasterThanBopmAtHalfSteps) {
  // Langat et al. (cited in §3): TOPM reaches the Black-Scholes limit with
  // about half as many steps as BOPM. Verify TOPM at T is at least as
  // accurate as BOPM at T (it has 2T+1 terminal nodes).
  const OptionSpec spec = paper_spec();
  const double exact = bs::european_call(spec);
  for (std::int64_t T : {512L, 2048L}) {
    const double err_topm = std::abs(topm::european_call_fft(spec, T) - exact);
    const double err_bopm = std::abs(bopm::european_call_fft(spec, T) - exact);
    EXPECT_LT(err_topm, err_bopm * 1.1) << "T=" << T;
  }
}

TEST(TopmAmerican, AgreesWithBopmInTheLimit) {
  const OptionSpec spec = paper_spec();
  const double t = topm::american_call_fft(spec, 4096);
  const double b = bopm::american_call_fft(spec, 8192);
  EXPECT_NEAR(t, b, 5e-3);
}

TEST(TopmAmerican, ZeroYieldEqualsEuropean) {
  OptionSpec spec = paper_spec();
  spec.Y = 0.0;
  EXPECT_NEAR(topm::american_call_vanilla(spec, 300),
              topm::european_call_vanilla(spec, 300), 1e-10);
  EXPECT_NEAR(topm::american_call_fft(spec, 300),
              topm::european_call_fft(spec, 300), 1e-12);
}

TEST(TopmAmerican, PutVanillaDominatesIntrinsic) {
  const OptionSpec spec = paper_spec();
  const double p = topm::american_put_vanilla(spec, 500);
  EXPECT_GE(p, std::max(0.0, spec.K - spec.S));
  EXPECT_LE(p, spec.K);
}

TEST(TopmAmerican, SymmetryPutIsExactOnTheLattice) {
  // Put-call symmetry is exact on the trinomial lattice too.
  const OptionSpec spec = paper_spec();
  for (std::int64_t T : {250L, 1000L, 4000L}) {
    const double gap = std::abs(topm::american_put_fft(spec, T) -
                                topm::american_put_vanilla(spec, T));
    EXPECT_LT(gap, 1e-6) << "T=" << T;
  }
}

TEST(TopmEdge, TZeroIsIntrinsic) {
  OptionSpec spec = paper_spec();
  EXPECT_DOUBLE_EQ(topm::american_call_fft(spec, 0),
                   std::max(0.0, spec.S - spec.K));
}

}  // namespace
