#pragma once
// Counting replacements for the global allocation functions, shared by the
// operator-new-counter test binaries (test_workspace, test_alloc). Each
// binary that includes this header gets its own replacement of the global
// operator new/delete set — which is why those tests are one-executable-
// per-file — with every allocation bumping `counting_new::allocations`.
// Include from exactly ONE translation unit per binary.

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <new>

namespace counting_new {
inline std::atomic<std::uint64_t> allocations{0};
[[nodiscard]] inline std::uint64_t count() {
  return allocations.load(std::memory_order_relaxed);
}
}  // namespace counting_new

void* operator new(std::size_t sz) {
  counting_new::allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(sz > 0 ? sz : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t sz) { return ::operator new(sz); }
void* operator new(std::size_t sz, std::align_val_t al) {
  counting_new::allocations.fetch_add(1, std::memory_order_relaxed);
  const std::size_t a = static_cast<std::size_t>(al);
  const std::size_t rounded = (sz + a - 1) / a * a;
  if (void* p = std::aligned_alloc(a, rounded > 0 ? rounded : a)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t sz, std::align_val_t al) {
  return ::operator new(sz, al);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
