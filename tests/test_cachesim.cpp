// Unit tests for the two-level set-associative LRU cache simulator (S9b).

#include <gtest/gtest.h>

#include "amopt/metrics/cachesim.hpp"

namespace {

using namespace amopt::metrics;

TEST(CacheLevel, HitAfterMiss) {
  CacheLevel l({1024, 64, 2});  // 8 sets, 2-way
  EXPECT_FALSE(l.access_line(0));
  EXPECT_TRUE(l.access_line(0));
}

TEST(CacheLevel, LruEvictionOrder) {
  CacheLevel l({2 * 64, 64, 2});  // exactly 1 set, 2 ways
  EXPECT_EQ(l.sets(), 1u);
  EXPECT_FALSE(l.access_line(1));
  EXPECT_FALSE(l.access_line(2));
  EXPECT_TRUE(l.access_line(1));   // 1 becomes MRU
  EXPECT_FALSE(l.access_line(3));  // evicts 2 (LRU)
  EXPECT_TRUE(l.access_line(1));
  EXPECT_FALSE(l.access_line(2));  // 2 was evicted
}

TEST(CacheLevel, SetIndexingSeparatesConflicts) {
  CacheLevel l({4 * 64, 64, 1});  // 4 sets, direct-mapped
  EXPECT_FALSE(l.access_line(0));
  EXPECT_FALSE(l.access_line(1));  // different set: no conflict
  EXPECT_TRUE(l.access_line(0));
  EXPECT_FALSE(l.access_line(4));  // same set as 0: evicts it
  EXPECT_FALSE(l.access_line(0));
}

TEST(CacheSim, CountsLineGranularity) {
  CacheSim sim({1024, 64, 2}, {4096, 64, 4});
  sim.access(0, 8);  // one line
  EXPECT_EQ(sim.stats().accesses, 1u);
  sim.access(60, 8);  // straddles two lines
  EXPECT_EQ(sim.stats().accesses, 3u);
}

TEST(CacheSim, MissHierarchy) {
  CacheSim sim({128, 64, 2}, {4096, 64, 4});  // tiny L1 (2 lines), bigger L2
  // Touch 4 distinct lines, then re-touch them: L1 (2 lines) thrashes but
  // L2 holds all 4.
  for (int round = 0; round < 2; ++round)
    for (std::uint64_t line = 0; line < 4; ++line) sim.access(line * 64, 8);
  EXPECT_EQ(sim.stats().accesses, 8u);
  EXPECT_EQ(sim.stats().l1_misses, 8u);  // 2-line L1 cannot hold 4 lines
  EXPECT_EQ(sim.stats().l2_misses, 4u);  // only compulsory misses
}

TEST(CacheSim, SequentialScanMissesOncePerLine) {
  CacheSim sim;  // default 32KiB/1MiB
  const std::size_t n = 1000;
  for (std::size_t i = 0; i < n; ++i)
    sim.access(static_cast<std::uint64_t>(i * sizeof(double)), sizeof(double));
  // 1000 doubles = 125 lines.
  EXPECT_EQ(sim.stats().accesses, n);
  EXPECT_EQ(sim.stats().l1_misses, 125u);
  EXPECT_EQ(sim.stats().l2_misses, 125u);
}

TEST(CacheSim, WorkingSetFittingInL1NeverMissesAgain) {
  CacheSim sim;
  // 2 KiB working set « 32 KiB L1.
  for (int round = 0; round < 10; ++round)
    for (std::uint64_t a = 0; a < 2048; a += 8) sim.access(a, 8);
  EXPECT_EQ(sim.stats().l1_misses, 32u);  // 2048/64 compulsory only
}

TEST(SimVec, TracksRealAddresses) {
  CacheSim sim;
  SimVec<double> v(sim, 64, 0.0);
  v[0] = 1.0;
  const auto after_first = sim.stats();
  EXPECT_EQ(after_first.accesses, 1u);
  EXPECT_EQ(after_first.l1_misses, 1u);
  (void)v[1];  // same line (adjacent double, 64B line): hit
  EXPECT_EQ(sim.stats().l1_misses, 1u);
  EXPECT_EQ(sim.stats().accesses, 2u);
  (void)v[8];  // next line: miss
  EXPECT_EQ(sim.stats().l1_misses, 2u);
}

TEST(SimVec, RawAccessIsUntracked) {
  CacheSim sim;
  SimVec<double> v(sim, 8, 0.0);
  v.raw(3) = 7.0;
  EXPECT_EQ(sim.stats().accesses, 0u);
  EXPECT_DOUBLE_EQ(v[3], 7.0);
}

TEST(CacheSim, ClearResetsTags) {
  CacheSim sim;
  sim.access(0, 8);
  sim.access(0, 8);
  EXPECT_EQ(sim.stats().l1_misses, 1u);
  sim.clear();
  sim.access(0, 8);
  EXPECT_EQ(sim.stats().l1_misses, 2u);  // compulsory miss again
}

}  // namespace
