// BOPM pricing tests: the FFT pricer must reproduce the Θ(T^2) oracle to
// rounding error across a parameter grid, the European special case must
// converge to Black-Scholes, and the put extensions must be consistent.

#include <gtest/gtest.h>

#include <cmath>

#include "amopt/pricing/black_scholes.hpp"
#include "amopt/pricing/bopm.hpp"

namespace {

using namespace amopt;
using namespace amopt::pricing;

struct GridCase {
  double S, K, R, V, Y;
  std::int64_t T;
};

void PrintTo(const GridCase& c, std::ostream* os) {
  *os << "S=" << c.S << " K=" << c.K << " R=" << c.R << " V=" << c.V
      << " Y=" << c.Y << " T=" << c.T;
}

OptionSpec to_spec(const GridCase& c) {
  OptionSpec s;
  s.S = c.S;
  s.K = c.K;
  s.R = c.R;
  s.V = c.V;
  s.Y = c.Y;
  return s;
}

class BopmGrid : public ::testing::TestWithParam<GridCase> {};

TEST_P(BopmGrid, FftCallMatchesVanilla) {
  const GridCase c = GetParam();
  const OptionSpec spec = to_spec(c);
  const double v = bopm::american_call_vanilla(spec, c.T);
  const double f = bopm::american_call_fft(spec, c.T);
  EXPECT_NEAR(f, v, 1e-8 * std::max(1.0, std::abs(v)));
}

TEST_P(BopmGrid, FftPutDirectMatchesVanilla) {
  const GridCase c = GetParam();
  const OptionSpec spec = to_spec(c);
  const double v = bopm::american_put_vanilla(spec, c.T);
  const double f = bopm::american_put_fft_direct(spec, c.T);
  EXPECT_NEAR(f, v, 1e-8 * std::max(1.0, std::abs(v)));
}

INSTANTIATE_TEST_SUITE_P(
    ParameterGrid, BopmGrid,
    ::testing::Values(
        // the paper's benchmark option at several sizes
        GridCase{127.62, 130, 0.00163, 0.2, 0.0163, 1},
        GridCase{127.62, 130, 0.00163, 0.2, 0.0163, 2},
        GridCase{127.62, 130, 0.00163, 0.2, 0.0163, 13},
        GridCase{127.62, 130, 0.00163, 0.2, 0.0163, 64},
        GridCase{127.62, 130, 0.00163, 0.2, 0.0163, 257},
        GridCase{127.62, 130, 0.00163, 0.2, 0.0163, 1000},
        GridCase{127.62, 130, 0.00163, 0.2, 0.0163, 2048},
        // deep in the money
        GridCase{200, 100, 0.03, 0.25, 0.05, 512},
        // deep out of the money
        GridCase{50, 100, 0.03, 0.25, 0.05, 512},
        // at the money, high vol
        GridCase{100, 100, 0.02, 0.8, 0.03, 512},
        // low vol
        GridCase{100, 100, 0.02, 0.05, 0.03, 512},
        // rate above yield and yield above rate
        GridCase{100, 110, 0.08, 0.3, 0.01, 777},
        GridCase{100, 110, 0.01, 0.3, 0.08, 777},
        // zero rate
        GridCase{100, 95, 0.0, 0.3, 0.04, 300},
        // short expiry lattice, odd T
        GridCase{100, 100, 0.05, 0.4, 0.02, 511}));

TEST(BopmEuropean, FftMatchesVanillaRollback) {
  const OptionSpec spec = paper_spec();
  for (std::int64_t T : {1L, 2L, 50L, 333L, 1024L}) {
    EXPECT_NEAR(bopm::european_call_fft(spec, T),
                bopm::european_call_vanilla(spec, T), 1e-9)
        << "T=" << T;
    EXPECT_NEAR(bopm::european_put_fft(spec, T),
                bopm::european_put_vanilla(spec, T), 1e-9)
        << "T=" << T;
  }
}

TEST(BopmEuropean, ConvergesToBlackScholes) {
  const OptionSpec spec = paper_spec();
  const double exact = bs::european_call(spec);
  double prev_err = 1e9;
  for (std::int64_t T : {256L, 1024L, 4096L, 16384L}) {
    const double err = std::abs(bopm::european_call_fft(spec, T) - exact);
    EXPECT_LT(err, prev_err * 0.7) << "T=" << T;  // ~O(1/T) convergence
    prev_err = err;
  }
  EXPECT_LT(prev_err, 5e-4);
}

TEST(BopmAmerican, ZeroYieldCallEqualsEuropean) {
  // With Y = 0 early exercise of a call is never optimal (R >= 0).
  OptionSpec spec = paper_spec();
  spec.Y = 0.0;
  for (std::int64_t T : {64L, 500L}) {
    EXPECT_NEAR(bopm::american_call_vanilla(spec, T),
                bopm::european_call_vanilla(spec, T), 1e-10);
    EXPECT_NEAR(bopm::american_call_fft(spec, T),
                bopm::european_call_fft(spec, T), 1e-12);
  }
}

TEST(BopmAmerican, ZeroRatePutEqualsEuropean) {
  OptionSpec spec = paper_spec();
  spec.R = 0.0;
  EXPECT_NEAR(bopm::american_put_vanilla(spec, 400),
              bopm::european_put_vanilla(spec, 400), 1e-10);
  EXPECT_NEAR(bopm::american_put_fft_direct(spec, 400),
              bopm::european_put_fft(spec, 400), 1e-12);
}

TEST(BopmAmerican, DominatesEuropeanAndIntrinsic) {
  const OptionSpec spec = paper_spec();
  const std::int64_t T = 1000;
  const double amer = bopm::american_call_fft(spec, T);
  EXPECT_GE(amer, bopm::european_call_fft(spec, T) - 1e-10);
  EXPECT_GE(amer, std::max(0.0, spec.S - spec.K));
  EXPECT_LE(amer, spec.S);
}

TEST(BopmAmerican, PutCallSymmetryIsExactOnTheLattice) {
  // P(S,K,R,Y) = C(K,S,Y,R) holds EXACTLY on the CRR lattice (numeraire
  // change maps path weights one-to-one), so the symmetry put must match
  // the direct rollback to rounding at every T.
  const OptionSpec spec = paper_spec();
  for (std::int64_t T : {250L, 1000L, 4000L}) {
    const double gap = std::abs(bopm::american_put_fft(spec, T) -
                                bopm::american_put_vanilla(spec, T));
    EXPECT_LT(gap, 1e-6) << "T=" << T;
  }
}

TEST(BopmAmerican, MonotoneInSpot) {
  OptionSpec spec = paper_spec();
  double prev = -1.0;
  for (double S : {80.0, 100.0, 120.0, 140.0, 180.0}) {
    spec.S = S;
    const double c = bopm::american_call_fft(spec, 512);
    EXPECT_GT(c, prev) << "S=" << S;
    prev = c;
  }
}

TEST(BopmAmerican, MonotoneInVolatility) {
  OptionSpec spec = paper_spec();
  double prev = -1.0;
  for (double V : {0.05, 0.15, 0.3, 0.6}) {
    spec.V = V;
    const double c = bopm::american_call_fft(spec, 512);
    EXPECT_GT(c, prev) << "V=" << V;
    prev = c;
  }
}

TEST(BopmEdge, TZeroIsIntrinsic) {
  OptionSpec spec = paper_spec();
  EXPECT_DOUBLE_EQ(bopm::american_call_fft(spec, 0),
                   std::max(0.0, spec.S - spec.K));
  spec.S = 150.0;
  EXPECT_DOUBLE_EQ(bopm::american_call_fft(spec, 0), 150.0 - spec.K);
}

TEST(BopmEdge, DeepItmWithHugeYieldIsImmediateExercise) {
  OptionSpec spec = paper_spec();
  spec.S = 500.0;
  spec.Y = 0.9;
  const std::int64_t T = 128;
  EXPECT_NEAR(bopm::american_call_fft(spec, T),
              bopm::american_call_vanilla(spec, T), 1e-8);
  // Exercising immediately dominates: price equals intrinsic value.
  EXPECT_NEAR(bopm::american_call_fft(spec, T), spec.S - spec.K, 1e-8);
}

TEST(BopmNodes, LowNodesMatchVanillaGrid) {
  const OptionSpec spec = paper_spec();
  const std::int64_t T = 64;
  const auto nodes = bopm::american_call_nodes_fft(spec, T);
  // Reference: full-grid rollback keeping rows 0..2.
  const auto prm = derive_bopm(spec, T);
  const PowerTable up(prm.log_u, T);
  std::vector<double> row(static_cast<std::size_t>(T + 1));
  for (std::int64_t j = 0; j <= T; ++j)
    row[static_cast<std::size_t>(j)] =
        std::max(0.0, spec.S * up(2 * j - T) - spec.K);
  std::vector<double> r2, r1, r0;
  for (std::int64_t i = T - 1; i >= 0; --i) {
    for (std::int64_t j = 0; j <= i; ++j) {
      const double lin = prm.s0 * row[static_cast<std::size_t>(j)] +
                         prm.s1 * row[static_cast<std::size_t>(j + 1)];
      row[static_cast<std::size_t>(j)] =
          std::max(lin, spec.S * up(2 * j - i) - spec.K);
    }
    if (i == 2) r2 = {row[0], row[1], row[2]};
    if (i == 1) r1 = {row[0], row[1]};
    if (i == 0) r0 = {row[0]};
  }
  EXPECT_NEAR(nodes.g00, r0[0], 1e-9);
  EXPECT_NEAR(nodes.g10, r1[0], 1e-9);
  EXPECT_NEAR(nodes.g11, r1[1], 1e-9);
  EXPECT_NEAR(nodes.g20, r2[0], 1e-9);
  EXPECT_NEAR(nodes.g21, r2[1], 1e-9);
  EXPECT_NEAR(nodes.g22, r2[2], 1e-9);
}

TEST(BopmNodes, EuropeanFastPathSpectralBatchMatchesDirectDots) {
  // Y <= 0 makes the call European everywhere and the low nodes are three
  // kernel-row correlations against one payoff row. Pinning the FFT policy
  // routes them through the convolve_many spectral overload (one shared
  // payoff spectrum); the default policy keeps the direct dot products.
  // Same numbers up to FFT round-off.
  pricing::OptionSpec spec = pricing::paper_spec();
  spec.Y = 0.0;
  for (const std::int64_t T : {64LL, 1024LL, 4096LL}) {
    const auto direct = pricing::bopm::american_call_nodes_fft(spec, T);
    core::SolverConfig cfg;
    cfg.conv_policy.path = conv::Policy::Path::fft;
    const auto spectral = pricing::bopm::american_call_nodes_fft(spec, T, cfg);
    // FFT round-off scales with the LARGEST payoff cell entering the
    // correlation (~S e^{V sqrt(expiry T)}), not with the node values.
    const double maxpay =
        spec.S * std::exp(spec.V * std::sqrt(spec.expiry_years *
                                             static_cast<double>(T)));
    const double tol = 1e-13 * maxpay + 1e-10;
    EXPECT_NEAR(spectral.g00, direct.g00, tol) << "T=" << T;
    EXPECT_NEAR(spectral.g10, direct.g10, tol);
    EXPECT_NEAR(spectral.g11, direct.g11, tol);
    EXPECT_NEAR(spectral.g20, direct.g20, tol);
    EXPECT_NEAR(spectral.g21, direct.g21, tol);
    EXPECT_NEAR(spectral.g22, direct.g22, tol);
    // The fast path must agree with the one-shot pricer too.
    EXPECT_NEAR(direct.g00, pricing::bopm::american_call_fft(spec, T),
                1e-9 * std::max(1.0, direct.g00));
  }
}

}  // namespace
