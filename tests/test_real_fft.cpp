// Tests for the real-input transform layer (RealPlan): round trips,
// equivalence with the complex FFT, Nyquist-bin handling, and the
// thread-safety of the lock-free plan caches.

#include <gtest/gtest.h>

#include <cmath>
#include <complex>
#include <numbers>
#include <random>
#include <thread>
#include <vector>

#include "amopt/fft/fft.hpp"

namespace {

using amopt::fft::cplx;

std::vector<double> random_real(std::size_t n, unsigned seed) {
  std::mt19937 rng(seed);
  std::uniform_real_distribution<double> dist(-1.0, 1.0);
  std::vector<double> v(n);
  for (auto& x : v) x = dist(rng);
  return v;
}

class RealFftSizes : public ::testing::TestWithParam<std::size_t> {};

TEST_P(RealFftSizes, RoundTripRecoversInput) {
  const std::size_t n = GetParam();
  const std::vector<double> x = random_real(n, 100 + static_cast<unsigned>(n));
  const amopt::fft::RealPlan& plan = amopt::fft::real_plan_for(n);
  ASSERT_EQ(plan.size(), n);
  ASSERT_EQ(plan.spectrum_size(), n / 2 + 1);
  std::vector<cplx> spec(plan.spectrum_size());
  plan.forward(x.data(), spec.data());
  std::vector<double> back(n);
  plan.inverse(spec.data(), back.data());
  for (std::size_t i = 0; i < n; ++i)
    EXPECT_NEAR(back[i], x[i], 1e-11) << "i=" << i;
}

TEST_P(RealFftSizes, MatchesComplexFft) {
  const std::size_t n = GetParam();
  const std::vector<double> x = random_real(n, 7 + static_cast<unsigned>(n));
  const amopt::fft::RealPlan& plan = amopt::fft::real_plan_for(n);
  std::vector<cplx> spec(plan.spectrum_size());
  plan.forward(x.data(), spec.data());

  std::vector<cplx> z(n);
  for (std::size_t i = 0; i < n; ++i) z[i] = cplx{x[i], 0.0};
  amopt::fft::forward(z);

  const double tol = 1e-11 * static_cast<double>(std::max<std::size_t>(n, 8));
  for (std::size_t k = 0; k <= n / 2; ++k) {
    EXPECT_NEAR(spec[k].real(), z[k].real(), tol) << "k=" << k;
    EXPECT_NEAR(spec[k].imag(), z[k].imag(), tol) << "k=" << k;
  }
  // DC and Nyquist bins of a real signal are purely real.
  EXPECT_DOUBLE_EQ(spec[0].imag(), 0.0);
  if (n >= 2) {
    EXPECT_DOUBLE_EQ(spec[n / 2].imag(), 0.0);
  }
}

INSTANTIATE_TEST_SUITE_P(PowersOfTwo, RealFftSizes,
                         ::testing::Values(1, 2, 4, 8, 16, 32, 64, 256, 1024,
                                           4096, 1u << 14, 1u << 16));

TEST(RealFft, PureNyquistSignal) {
  // x[i] = (-1)^i concentrates all energy in the Nyquist bin X[n/2] = n.
  const std::size_t n = 256;
  std::vector<double> x(n);
  for (std::size_t i = 0; i < n; ++i) x[i] = (i % 2 == 0) ? 1.0 : -1.0;
  const amopt::fft::RealPlan& plan = amopt::fft::real_plan_for(n);
  std::vector<cplx> spec(plan.spectrum_size());
  plan.forward(x.data(), spec.data());
  EXPECT_NEAR(spec[n / 2].real(), static_cast<double>(n), 1e-9);
  for (std::size_t k = 0; k < n / 2; ++k)
    EXPECT_NEAR(std::abs(spec[k]), 0.0, 1e-9) << "k=" << k;
  std::vector<double> back(n);
  plan.inverse(spec.data(), back.data());
  for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(back[i], x[i], 1e-11);
}

TEST(RealFft, NyquistPlusDcMix) {
  // A signal with non-trivial DC, Nyquist, AND mid bins exercises all three
  // branches of the untangling pass at once.
  const std::size_t n = 64;
  std::vector<double> x(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double t = 2.0 * std::numbers::pi * static_cast<double>(i) /
                     static_cast<double>(n);
    x[i] = 3.0 + ((i % 2 == 0) ? 2.0 : -2.0) + std::cos(5.0 * t) -
           0.5 * std::sin(13.0 * t);
  }
  const amopt::fft::RealPlan& plan = amopt::fft::real_plan_for(n);
  std::vector<cplx> spec(plan.spectrum_size());
  plan.forward(x.data(), spec.data());
  const double nd = static_cast<double>(n);
  EXPECT_NEAR(spec[0].real(), 3.0 * nd, 1e-9);
  EXPECT_NEAR(spec[n / 2].real(), 2.0 * nd, 1e-9);
  EXPECT_NEAR(spec[5].real(), 0.5 * nd, 1e-9);
  EXPECT_NEAR(spec[13].imag(), 0.25 * nd, 1e-9);  // -0.5 sin -> +i n/4
  std::vector<double> back(n);
  plan.inverse(spec.data(), back.data());
  for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(back[i], x[i], 1e-11);
}

TEST(RealFft, InverseIgnoresImaginaryPartsOfRealBins) {
  // C2R is documented to ignore the imaginary parts of bins 0 and n/2.
  const std::size_t n = 32;
  const std::vector<double> x = random_real(n, 33);
  const amopt::fft::RealPlan& plan = amopt::fft::real_plan_for(n);
  std::vector<cplx> spec(plan.spectrum_size());
  plan.forward(x.data(), spec.data());
  spec[0] += cplx{0.0, 123.0};
  spec[n / 2] += cplx{0.0, -7.0};
  std::vector<double> back(n);
  plan.inverse(spec.data(), back.data());
  for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(back[i], x[i], 1e-11);
}

TEST(RealFft, PlanCacheReturnsSameInstance) {
  const auto& p1 = amopt::fft::real_plan_for(512);
  const auto& p2 = amopt::fft::real_plan_for(512);
  EXPECT_EQ(&p1, &p2);
}

TEST(PlanCache, ConcurrentLookupsAgreeAndSurvive) {
  // Hammer plan_for/real_plan_for from many threads over a mix of cold and
  // warm sizes; every thread must observe the same plan instance per size
  // and every transform must stay correct.
  const std::vector<std::size_t> sizes{8, 16, 32, 64, 128,
                                       256, 512, 1024, 2048, 4096};
  constexpr int kThreads = 8;
  constexpr int kRounds = 50;
  std::vector<std::vector<const void*>> seen(
      kThreads, std::vector<const void*>(sizes.size(), nullptr));
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int r = 0; r < kRounds; ++r) {
        for (std::size_t s = 0; s < sizes.size(); ++s) {
          // Interleave orders across threads so cold misses race.
          const std::size_t idx = (s + static_cast<std::size_t>(t)) % sizes.size();
          const auto& p = amopt::fft::plan_for(sizes[idx]);
          const auto& rp = amopt::fft::real_plan_for(sizes[idx]);
          EXPECT_EQ(p.size(), sizes[idx]);
          EXPECT_EQ(rp.size(), sizes[idx]);
          if (seen[static_cast<std::size_t>(t)][idx] == nullptr) {
            seen[static_cast<std::size_t>(t)][idx] = &p;
          } else {
            EXPECT_EQ(seen[static_cast<std::size_t>(t)][idx], &p);
          }
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  // Cross-thread agreement.
  for (int t = 1; t < kThreads; ++t)
    for (std::size_t s = 0; s < sizes.size(); ++s)
      EXPECT_EQ(seen[0][s], seen[static_cast<std::size_t>(t)][s]);
}

}  // namespace
