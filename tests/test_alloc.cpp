// Steady-state allocation guarantees of the PR 5 memory plane. Like
// test_workspace, this binary replaces global operator new/delete with
// counting versions (its own executable so the counter stays isolated):
// after warm-up, a trapezoid descent must not touch the heap at all, and a
// warm Pricer batch must allocate O(1) per request independent of T.

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "amopt/core/lattice_solver.hpp"
#include "amopt/core/scratch.hpp"
#include "amopt/pricing/bopm.hpp"
#include "amopt/pricing/bsm_fdm.hpp"
#include "amopt/pricing/topm.hpp"
#include "amopt/pricing/params.hpp"
#include "amopt/pricing/pricer.hpp"
#include "amopt/stencil/kernel_cache.hpp"

#include "counting_new.hpp"

namespace {

using namespace amopt;

[[nodiscard]] std::uint64_t allocs() { return counting_new::count(); }

TEST(ScratchStack, SpansAreCacheLineAlignedAndDistinct) {
  core::ScratchStack st;
  core::ScratchStack::Frame frame(st);
  const auto a = frame.alloc(3);
  const auto b = frame.alloc(100);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(a.data()) % 64, 0u);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(b.data()) % 64, 0u);
  EXPECT_NE(a.data(), b.data());
  // Rounded to whole cache lines: no overlap even for tiny spans.
  EXPECT_GE(reinterpret_cast<std::uintptr_t>(b.data()),
            reinterpret_cast<std::uintptr_t>(a.data() + 8));
}

TEST(ScratchStack, LifoFramesReuseStorage) {
  core::ScratchStack st;
  double* first = nullptr;
  {
    core::ScratchStack::Frame frame(st);
    first = frame.alloc(64).data();
  }
  {
    core::ScratchStack::Frame frame(st);
    EXPECT_EQ(frame.alloc(64).data(), first);  // popped and re-bumped
  }
}

TEST(ScratchStack, GrowthKeepsOutstandingSpansValid) {
  core::ScratchStack st;
  core::ScratchStack::Frame frame(st);
  const auto small = frame.alloc(16);
  small[0] = 42.0;
  // Force block growth well past the first block.
  const auto big = frame.alloc(1u << 16);
  big[0] = 1.0;
  EXPECT_EQ(small[0], 42.0);  // earlier span untouched by growth
}

TEST(ScratchStack, WarmFramesAllocateNothing) {
  core::ScratchStack st;
  {
    core::ScratchStack::Frame frame(st);
    (void)frame.alloc(5000);
    (void)frame.alloc(300);
  }
  const std::uint64_t before = allocs();
  for (int r = 0; r < 100; ++r) {
    core::ScratchStack::Frame frame(st);
    auto a = frame.alloc(5000);
    auto b = frame.alloc(300);
    a[0] = b[0] = static_cast<double>(r);
  }
  EXPECT_EQ(allocs() - before, 0u);
}

TEST(ScratchStack, TrimIsIgnoredWhileFramesAreLive) {
  // The grow-only guarantee inside a descent: a trim that fires while any
  // frame is outstanding must refuse, so no live span is ever torn down.
  core::ScratchStack st;
  core::ScratchStack::Frame frame(st);
  const auto span = frame.alloc(1u << 14);
  span[0] = 7.0;
  const std::size_t cap = st.capacity();
  EXPECT_FALSE(st.trim(0));
  EXPECT_EQ(st.capacity(), cap);
  EXPECT_EQ(span[0], 7.0);
}

TEST(ScratchStack, TrimShrinksBlocksBetweenBatches) {
  core::ScratchStack st;
  {
    // "Huge-T batch": force growth through several blocks.
    core::ScratchStack::Frame frame(st);
    (void)frame.alloc(100);
    (void)frame.alloc(1u << 14);
    (void)frame.alloc(1u << 17);
  }
  const std::size_t high_water = st.capacity();
  ASSERT_GT(high_water * sizeof(double), std::size_t{1} << 16);
  // Between batches (no live frames) trim releases down to the budget.
  const std::size_t budget_bytes = std::size_t{1} << 16;
  EXPECT_TRUE(st.trim(budget_bytes));
  EXPECT_LE(st.capacity() * sizeof(double), budget_bytes);
  EXPECT_LT(st.capacity(), high_water);
  {
    // "Tiny-T batch" after the decay: the stack serves and re-grows as
    // needed — trim never leaves it in a state alloc can't recover from.
    core::ScratchStack::Frame frame(st);
    auto a = frame.alloc(512);
    a[0] = 1.0;
    EXPECT_EQ(a[0], 1.0);
  }
  // trim(0) releases everything once no frame is live.
  EXPECT_TRUE(st.trim(0));
  EXPECT_EQ(st.capacity(), 0u);
}

TEST(PricerAlloc, ScratchTrimBytesDecaysTheArenaBetweenBatches) {
  // Session-level opt-in: a serial Pricer with scratch_trim_bytes set trims
  // the serving thread's arena after each batch, so a huge-T quote doesn't
  // pin its high-water mark for the rest of the session.
  pricing::PricerConfig pc;
  pc.parallel = false;
  pc.scratch_trim_bytes = std::size_t{1} << 13;
  pricing::Pricer session(pc);
  pricing::PricingRequest req;
  req.spec = pricing::paper_spec();
  req.T = 4096;
  req.model = pricing::Model::bopm;
  req.right = pricing::Right::call;
  req.style = pricing::Style::american;
  req.engine = pricing::Engine::fft;
  const auto res = session.price_many({&req, 1});
  ASSERT_EQ(res[0].status, pricing::Status::ok);
  EXPECT_LE(core::thread_scratch().capacity() * sizeof(double),
            pc.scratch_trim_bytes);
}

TEST(Descend, SteadyStateDescendPerformsZeroAllocations) {
  const auto spec = pricing::paper_spec();
  const std::int64_t T = 4096;
  const auto prm = pricing::derive_bopm(spec, T);
  const pricing::bopm::CallGreen green(spec, prm);
  core::SolverConfig cfg;
  cfg.parallel = false;  // deterministic thread placement for the counter
  stencil::KernelCache cache({{prm.s0, prm.s1}, 0});
  core::LatticeSolver solver(&cache, {{prm.s0, prm.s1}, 0}, green, cfg);

  core::LatticeRow row = pricing::bopm::expiry_row(prm, green);
  while (row.i > T - 2) row = solver.step_naive(row, /*unbounded_scan=*/true);
  const core::LatticeRow top = row;

  const core::LatticeRow ref = solver.descend(std::move(row), 0);  // warm-up
  core::LatticeRow again = top;  // copy allocates OUTSIDE the counter
  const std::uint64_t before = allocs();
  const core::LatticeRow out = solver.descend(std::move(again), 0);
  EXPECT_EQ(allocs() - before, 0u)
      << "steady-state descend touched the heap";
  ASSERT_EQ(out.q, ref.q);
  for (std::size_t j = 0; j < out.red.size(); ++j)
    ASSERT_EQ(out.red[j], ref.red[j]) << "j=" << j;
}

TEST(Descend, HeapMemoryPlaneIsBitIdentical) {
  const auto spec = pricing::paper_spec();
  for (const std::int64_t T : {500LL, 2048LL}) {
    core::SolverConfig heap_cfg;
    heap_cfg.memory = core::MemoryPlane::heap;
    const double arena = pricing::bopm::american_call_fft(spec, T);
    const double heap = pricing::bopm::american_call_fft(spec, T, heap_cfg);
    EXPECT_EQ(arena, heap) << "bopm T=" << T;
    const double arena_put =
        pricing::bopm::american_put_fft_direct(spec, T, {});
    const double heap_put =
        pricing::bopm::american_put_fft_direct(spec, T, heap_cfg);
    EXPECT_EQ(arena_put, heap_put) << "bopm put (growing) T=" << T;
    const double arena_bsm = pricing::bsm::american_put_fft(spec, T);
    const double heap_bsm = pricing::bsm::american_put_fft(spec, T, heap_cfg);
    EXPECT_EQ(arena_bsm, heap_bsm) << "bsm T=" << T;
  }
  // TOPM (g = 2) is the family whose leaf interiors actually reach the
  // fused two-row sweep, so it pins the partition-identity property on FMA
  // dispatch levels; sweep more T to cover many interior widths.
  core::SolverConfig heap_cfg;
  heap_cfg.memory = core::MemoryPlane::heap;
  for (std::int64_t T = 64; T <= 8192; T *= 2) {
    const double arena_topm = pricing::topm::american_call_fft(spec, T, {});
    const double heap_topm =
        pricing::topm::american_call_fft(spec, T, heap_cfg);
    EXPECT_EQ(arena_topm, heap_topm) << "topm T=" << T;
  }
}

TEST(PricerAlloc, WarmBatchAllocationsAreIndependentOfT) {
  // A warm session batch still allocates (results vector, request copies,
  // row buffers of brand-new solver objects are arena-backed but the
  // LatticeRow tops are not) — the guarantee is that the count is O(1) per
  // request and does NOT scale with the discretization, i.e. the O(T)
  // per-level allocations of the old memory plane are gone.
  using namespace amopt::pricing;
  PricerConfig pc;
  pc.parallel = false;  // deterministic item->thread placement for counting
  Pricer session(pc);
  const auto count_batch = [&](std::int64_t T) {
    std::vector<PricingRequest> reqs(4);
    for (std::size_t i = 0; i < reqs.size(); ++i) {
      reqs[i].spec = paper_spec();
      reqs[i].spec.K = 95.0 + 5.0 * static_cast<double>(i);
      reqs[i].T = T;
      core::SolverConfig cfg;
      cfg.parallel = false;
      reqs[i].solver = cfg;
    }
    (void)session.price_many(reqs);  // warm this T's caches
    const std::uint64_t before = allocs();
    const auto out = session.price_many(reqs);
    const std::uint64_t spent = allocs() - before;
    for (const auto& r : out) EXPECT_EQ(r.status, Status::ok);
    return spent;
  };
  const std::uint64_t small = count_batch(1024);
  const std::uint64_t big = count_batch(8192);
  // Old memory plane: thousands of allocations per pricing, strongly
  // increasing in T. New plane: a fixed session/batch overhead.
  EXPECT_LE(big, small + 64) << "warm batch allocations scale with T";
  EXPECT_LE(big, 512u);
}

}  // namespace
