// Steady-state allocation guarantee of the boundary engine (DESIGN.md §6):
// with a prebuilt NodeTable and a warm thread ScratchStack, a quote is
// pure evaluation — Clenshaw recurrences and simd kernel sweeps over
// arena spans — and must not touch the heap at all. Like test_alloc and
// test_workspace this binary replaces global operator new/delete with
// counting versions, so it must stay its own executable.

#include <gtest/gtest.h>

#include <cstdint>

#include "amopt/core/lattice_solver.hpp"
#include "amopt/core/scratch.hpp"
#include "amopt/pricing/alo/alo_engine.hpp"
#include "amopt/pricing/params.hpp"

#include "counting_new.hpp"

namespace {

using namespace amopt;
using namespace amopt::pricing;

[[nodiscard]] std::uint64_t allocs() { return counting_new::count(); }

TEST(AloAlloc, WarmQuoteWithPrebuiltTableIsAllocationFree) {
  const core::SolverConfig cfg;  // default preset: 13 nodes / 25 quad
  const auto table = alo::build_node_table(cfg.alo_nodes, cfg.alo_quad);
  const OptionSpec put{100.0, 100.0, 0.05, 0.25, 0.02, 1.0};
  const OptionSpec call{100.0, 100.0, 0.03, 0.25, 0.06, 0.5};

  // Warm-up: grows the thread arena to this preset's high-water mark.
  const double p0 = alo::american_price(put, Right::put, cfg, table.get());
  const double c0 = alo::american_price(call, Right::call, cfg, table.get());

  const std::uint64_t before = allocs();
  int mismatches = 0;  // same inputs must give the same bits every rep
  for (int rep = 0; rep < 32; ++rep) {
    if (alo::american_price(put, Right::put, cfg, table.get()) != p0)
      ++mismatches;
    if (alo::american_price(call, Right::call, cfg, table.get()) != c0)
      ++mismatches;
  }
  const std::uint64_t after = allocs();
  EXPECT_EQ(after - before, 0u) << "steady-state quotes must not allocate";
  EXPECT_EQ(mismatches, 0);
}

TEST(AloAlloc, VaryingTheContractStaysAllocationFree) {
  // Different strikes/vols/expiries reuse the same spans: the arena
  // footprint depends only on (nodes, quad), never on the contract.
  const core::SolverConfig cfg;
  const auto table = alo::build_node_table(cfg.alo_nodes, cfg.alo_quad);
  OptionSpec spec{100.0, 100.0, 0.05, 0.25, 0.0, 1.0};
  (void)alo::american_price(spec, Right::put, cfg, table.get());

  const std::uint64_t before = allocs();
  double acc = 0.0;
  for (int i = 0; i < 24; ++i) {
    spec.K = 80.0 + 2.0 * static_cast<double>(i);
    spec.V = 0.15 + 0.01 * static_cast<double>(i);
    spec.expiry_years = 0.25 + 0.125 * static_cast<double>(i);
    acc += alo::american_price(spec, Right::put, cfg, table.get());
  }
  EXPECT_EQ(allocs() - before, 0u);
  EXPECT_GT(acc, 0.0);
}

TEST(AloAlloc, LargerPresetGrowsOnceThenStaysFlat) {
  const auto table = alo::build_node_table(25, 65);
  core::SolverConfig cfg;
  cfg.alo_nodes = 25;
  cfg.alo_quad = 65;
  cfg.alo_iterations = 32;
  const OptionSpec spec{100.0, 100.0, 0.05, 0.25, 0.0, 1.0};
  (void)alo::american_price(spec, Right::put, cfg, table.get());

  const std::uint64_t before = allocs();
  for (int rep = 0; rep < 8; ++rep)
    (void)alo::american_price(spec, Right::put, cfg, table.get());
  EXPECT_EQ(allocs() - before, 0u);
}

}  // namespace
