// Unit tests for the common utilities (aligned storage, pow2 helpers, env
// parsing, timers, OpenMP helpers).

#include <gtest/gtest.h>

#include <cstdlib>
#include <thread>

#include "amopt/common/aligned.hpp"
#include "amopt/common/env.hpp"
#include "amopt/common/parallel.hpp"
#include "amopt/common/timer.hpp"

namespace {

using namespace amopt;

TEST(Aligned, VectorIsCacheLineAligned) {
  for (std::size_t n : {1u, 7u, 64u, 1000u}) {
    aligned_vector<double> v(n, 0.0);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(v.data()) % kCacheLine, 0u)
        << "n=" << n;
  }
}

TEST(Aligned, AllocatorEquality) {
  AlignedAllocator<double> a, b;
  EXPECT_TRUE(a == b);
}

TEST(Pow2, NextPow2) {
  EXPECT_EQ(next_pow2(1), 1u);
  EXPECT_EQ(next_pow2(2), 2u);
  EXPECT_EQ(next_pow2(3), 4u);
  EXPECT_EQ(next_pow2(4), 4u);
  EXPECT_EQ(next_pow2(5), 8u);
  EXPECT_EQ(next_pow2(1023), 1024u);
  EXPECT_EQ(next_pow2(1025), 2048u);
}

TEST(Pow2, IsPow2) {
  EXPECT_FALSE(is_pow2(0));
  EXPECT_TRUE(is_pow2(1));
  EXPECT_TRUE(is_pow2(2));
  EXPECT_FALSE(is_pow2(3));
  EXPECT_TRUE(is_pow2(1u << 20));
  EXPECT_FALSE(is_pow2((1u << 20) + 1));
}

TEST(Env, LongParsesAndFallsBack) {
  ::setenv("AMOPT_TEST_L", "42", 1);
  EXPECT_EQ(env_long("AMOPT_TEST_L", 7), 42);
  ::setenv("AMOPT_TEST_L", "not-a-number", 1);
  EXPECT_EQ(env_long("AMOPT_TEST_L", 7), 7);
  ::unsetenv("AMOPT_TEST_L");
  EXPECT_EQ(env_long("AMOPT_TEST_L", 7), 7);
}

TEST(Env, DoubleParsesAndFallsBack) {
  ::setenv("AMOPT_TEST_D", "2.5", 1);
  EXPECT_DOUBLE_EQ(env_double("AMOPT_TEST_D", 1.0), 2.5);
  ::unsetenv("AMOPT_TEST_D");
  EXPECT_DOUBLE_EQ(env_double("AMOPT_TEST_D", 1.0), 1.0);
}

TEST(Env, StringFallsBack) {
  ::setenv("AMOPT_TEST_S", "hello", 1);
  EXPECT_EQ(env_string("AMOPT_TEST_S", "x"), "hello");
  ::unsetenv("AMOPT_TEST_S");
  EXPECT_EQ(env_string("AMOPT_TEST_S", "x"), "x");
}

TEST(Timer, MonotoneAndResets) {
  WallTimer t;
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  const double a = t.seconds();
  EXPECT_GT(a, 0.0);
  t.reset();
  EXPECT_LT(t.seconds(), a);
}

TEST(Parallel, ThreadScopeRestores) {
  const int before = hardware_threads();
  {
    ThreadScope scope(1);
    EXPECT_EQ(hardware_threads(), 1);
  }
  EXPECT_EQ(hardware_threads(), before);
}

TEST(Parallel, NotInParallelRegionAtTopLevel) {
  EXPECT_FALSE(in_parallel_region());
}

}  // namespace
