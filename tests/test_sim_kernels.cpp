// Cache-simulation integration tests: the simulated miss counts must show
// the qualitative ordering Fig. 7 reports — the FFT algorithms touch
// asymptotically less memory than the quadratic loops once T is out of
// cache, and zb-bopm's tiling beats ql-bopm's row streaming in L1.

#include <gtest/gtest.h>

#include <vector>

#include "amopt/fft/convolution.hpp"
#include "amopt/metrics/counters.hpp"
#include "amopt/metrics/sim_kernels.hpp"
#include "amopt/pricing/params.hpp"

namespace {

using namespace amopt;
using namespace amopt::metrics;

TEST(SimKernels, FftBeatsRowStreamingInL1MissesAtScale) {
  // The paper's headline Fig. 7(a) separation: at T where the rows no
  // longer fit in L1, the Θ(T^2) row-streaming ql-bopm misses ~T^2/8 times
  // while fft-bopm touches O(T log^2 T) data. (An *ideally tiled* zb-bopm
  // stays L1-resident per band and can undercut fft at simulator-feasible
  // T — see EXPERIMENTS.md; at the paper's 2^19 scale the T^2 band count
  // overtakes fft. L2 separations likewise need T beyond 2^17 and are
  // exercised by bench/fig7_cache_misses, not here.)
  const auto spec = pricing::paper_spec();
  const std::int64_t T = 4096;  // 32 KiB row == L1 size
  const CacheStats fft = simulate_kernel(SimAlg::bopm_fft, spec, T);
  const CacheStats ql = simulate_kernel(SimAlg::bopm_quantlib, spec, T);
  EXPECT_LT(fft.l1_misses, ql.l1_misses / 4);
}

TEST(SimKernels, TilingReducesL1MissesVersusRowStreaming) {
  const auto spec = pricing::paper_spec();
  const std::int64_t T = 4096;
  const CacheStats ql = simulate_kernel(SimAlg::bopm_quantlib, spec, T);
  const CacheStats zb = simulate_kernel(SimAlg::bopm_zubair, spec, T);
  EXPECT_LT(zb.l1_misses, ql.l1_misses);
}

TEST(SimKernels, TopmFftBeatsVanillaInL1) {
  const auto spec = pricing::paper_spec();
  const std::int64_t T = 4096;  // 2T+1 row = 64 KiB > L1
  const CacheStats fft = simulate_kernel(SimAlg::topm_fft, spec, T);
  const CacheStats van = simulate_kernel(SimAlg::topm_vanilla, spec, T);
  EXPECT_LT(fft.l1_misses, van.l1_misses / 2);
}

TEST(SimKernels, BsmFftCompetitiveAtSmallTAndScalesBetter) {
  // The paper's own Fig. 7(c)/(f) note that BSM shows "no clear winner" in
  // raw miss counts at moderate T; the separation is asymptotic. Assert
  // fft is not worse at 4096 and grows sub-quadratically while vanilla is
  // quadratic.
  const auto spec = pricing::paper_spec();
  const CacheStats f1 = simulate_kernel(SimAlg::bsm_fft, spec, 2048);
  const CacheStats f2 = simulate_kernel(SimAlg::bsm_fft, spec, 4096);
  const CacheStats v2 = simulate_kernel(SimAlg::bsm_vanilla, spec, 4096);
  EXPECT_LT(f2.l1_misses, v2.l1_misses);
  const double growth = static_cast<double>(f2.accesses) /
                        static_cast<double>(std::max<std::uint64_t>(f1.accesses, 1));
  EXPECT_LT(growth, 3.0);
}

TEST(SimKernels, QuadraticLoopsScaleQuadratically) {
  const auto spec = pricing::paper_spec();
  const CacheStats small = simulate_kernel(SimAlg::bopm_vanilla, spec, 2048);
  const CacheStats big = simulate_kernel(SimAlg::bopm_vanilla, spec, 4096);
  const double ratio = static_cast<double>(big.accesses) /
                       static_cast<double>(small.accesses);
  EXPECT_GT(ratio, 3.0);
  EXPECT_LT(ratio, 5.0);
}

TEST(SimKernels, FftAccessesScaleSubQuadratically) {
  const auto spec = pricing::paper_spec();
  const CacheStats small = simulate_kernel(SimAlg::bopm_fft, spec, 2048);
  const CacheStats big = simulate_kernel(SimAlg::bopm_fft, spec, 4096);
  const double ratio = static_cast<double>(big.accesses) /
                       static_cast<double>(small.accesses);
  EXPECT_LT(ratio, 3.0);  // T log^2 T doubles-ish, far from 4x
}

TEST(SimKernels, R2CConvolutionModelTouchesLessThanPackedModel) {
  // The production pipeline runs three half-size complex transforms where
  // the packed-complex trick ran two full-size ones; the retuned replay
  // must reflect that saving instead of replaying the legacy upper bound.
  const std::size_t n = 4096;
  const CacheStats r2c = simulate_fft_convolution(n, n, 2 * n - 1);
  const CacheStats packed =
      simulate_fft_convolution(n, n, 2 * n - 1, /*packed=*/true);
  EXPECT_LT(r2c.accesses, packed.accesses);
  // 3 transforms of size m = n vs 2 of size 2n: butterfly traffic ratio
  // 3*m*log m / (2*2m*(log m + 1)) ~ 0.7; padding/untangle overheads keep
  // the total inside a generous band around it.
  const double ratio = static_cast<double>(r2c.accesses) /
                       static_cast<double>(packed.accesses);
  EXPECT_GT(ratio, 0.45);
  EXPECT_LT(ratio, 0.95);
}

TEST(SimKernels, R2CConvolutionModelParityWithMeasuredTraffic) {
  // Hold the replay against the real pipeline's own traffic accounting
  // (metrics::add_bytes in conv::real_convolve_into): the replay counts
  // every element touch of every sweep while the counter streams each
  // transform once, so exact equality is not expected — but the two must
  // agree on the order of magnitude, which is what Fig. 7 rests on.
  const std::size_t n = 4096;
  const std::vector<double> in(2 * n, 1.0);
  const std::vector<double> kernel(n, 0.5);
  std::vector<double> out(n + 1);
  const metrics::OpSnapshot before = metrics::snapshot();
  conv::correlate_valid(in, kernel, out, {conv::Policy::Path::fft});
  const metrics::OpSnapshot after = metrics::snapshot();
  const std::uint64_t measured = metrics::delta(before, after).bytes;
  ASSERT_GT(measured, 0u);

  const CacheStats sim = simulate_fft_convolution(out.size() + kernel.size() - 1,
                                                  kernel.size(), out.size());
  const double modeled_bytes =
      static_cast<double>(sim.accesses) * sizeof(double) * 2.0;  // avg elem
  const double ratio = modeled_bytes / static_cast<double>(measured);
  EXPECT_GT(ratio, 0.25);
  EXPECT_LT(ratio, 8.0);
}

TEST(SimKernels, NamesAreStable) {
  EXPECT_STREQ(to_string(SimAlg::bopm_fft), "fft-bopm");
  EXPECT_STREQ(to_string(SimAlg::bopm_quantlib), "ql-bopm");
  EXPECT_STREQ(to_string(SimAlg::bsm_vanilla), "vanilla-bsm");
}

}  // namespace
