// Greek computation tests: lattice-node Greeks must match finite
// differences of the price function, and European-limit Greeks must match
// the Black-Scholes closed forms.

#include <gtest/gtest.h>

#include <cmath>

#include "amopt/pricing/black_scholes.hpp"
#include "amopt/pricing/bopm.hpp"
#include "amopt/pricing/greeks.hpp"

namespace {

using namespace amopt;
using namespace amopt::pricing;

TEST(CallGreeks, DeltaMatchesBumpedPrice) {
  const OptionSpec spec = paper_spec();
  const std::int64_t T = 4096;
  const Greeks g = american_call_greeks_bopm(spec, T);
  OptionSpec up = spec, dn = spec;
  up.S = spec.S * 1.001;
  dn.S = spec.S * 0.999;
  const double fd = (bopm::american_call_fft(up, T) -
                     bopm::american_call_fft(dn, T)) /
                    (0.002 * spec.S);
  EXPECT_NEAR(g.delta, fd, 5e-3);
}

TEST(CallGreeks, RangeChecks) {
  const OptionSpec spec = paper_spec();
  const Greeks g = american_call_greeks_bopm(spec, 2048);
  EXPECT_GT(g.delta, 0.0);
  EXPECT_LT(g.delta, 1.0);
  EXPECT_GT(g.gamma, 0.0);
  EXPECT_LT(g.theta, 0.0);  // time decay
  EXPECT_GT(g.vega, 0.0);
  EXPECT_GT(g.rho, 0.0);  // calls gain from higher rates
}

TEST(CallGreeks, EuropeanLimitMatchesBlackScholes) {
  OptionSpec spec = paper_spec();
  spec.Y = 0.0;  // no early exercise: the call IS European
  const std::int64_t T = 8192;
  const Greeks g = american_call_greeks_bopm(spec, T);
  const double tau = spec.expiry_years;
  const double vs = spec.V * std::sqrt(tau);
  const double d1 =
      (std::log(spec.S / spec.K) + (spec.R + 0.5 * spec.V * spec.V) * tau) /
      vs;
  const double bs_delta = bs::norm_cdf(d1);
  const double pdf_d1 =
      std::exp(-0.5 * d1 * d1) / std::sqrt(2.0 * 3.14159265358979323846);
  const double bs_gamma = pdf_d1 / (spec.S * vs);
  const double bs_vega = spec.S * pdf_d1 * std::sqrt(tau);
  EXPECT_NEAR(g.delta, bs_delta, 3e-3);
  EXPECT_NEAR(g.gamma, bs_gamma, 2e-3);
  EXPECT_NEAR(g.vega, bs_vega, 0.5);
}

TEST(PutGreeks, RangeChecks) {
  const OptionSpec spec = paper_spec();
  const Greeks g = american_put_greeks_bopm(spec, 2048);
  EXPECT_LT(g.delta, 0.0);
  EXPECT_GT(g.delta, -1.0);
  EXPECT_GT(g.gamma, 0.0);
  EXPECT_GT(g.vega, 0.0);
  EXPECT_LT(g.rho, 0.0);  // puts lose from higher rates
}

TEST(PutGreeks, PriceMatchesPricer) {
  const OptionSpec spec = paper_spec();
  const std::int64_t T = 1024;
  const Greeks g = american_put_greeks_bopm(spec, T);
  EXPECT_NEAR(g.price, bopm::american_put_fft(spec, T), 1e-10);
}

TEST(CallGreeks, ThetaConsistentWithShorterExpiry) {
  const OptionSpec spec = paper_spec();
  const std::int64_t T = 2048;
  const Greeks g = american_call_greeks_bopm(spec, T);
  OptionSpec shorter = spec;
  shorter.expiry_years = spec.expiry_years * 0.99;
  const double fd = (bopm::american_call_fft(shorter, T) -
                     bopm::american_call_fft(spec, T)) /
                    (0.01 * spec.expiry_years);
  EXPECT_NEAR(g.theta, fd, std::abs(fd) * 0.15 + 0.05);
}

}  // namespace
