// The pricing daemon end to end (service/server.hpp): routed submission
// with per-item Status fan-back, result bit-identity against a direct
// Pricer session, request coalescing, shard affinity, admission control
// (Status::overloaded with a retry hint), graceful drain on stop, and the
// framed wire protocol over the in-process loopback transport — including
// chunked delivery and malformed-frame handling.

#include <gtest/gtest.h>

#include <bit>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <set>
#include <thread>
#include <vector>

#include "amopt/pricing/pricer.hpp"
#include "amopt/service/server.hpp"
#include "amopt/service/transport.hpp"
#include "amopt/service/wire.hpp"

namespace {

using namespace amopt;
using namespace amopt::pricing;
using namespace amopt::service;

[[nodiscard]] std::uint64_t bits(double v) {
  return std::bit_cast<std::uint64_t>(v);
}

/// A small heterogeneous batch: lattice FFT items across models plus a
/// boundary-engine quote and one unsupported combination.
[[nodiscard]] std::vector<PricingRequest> mixed_batch() {
  std::vector<PricingRequest> reqs;
  PricingRequest q;
  q.spec = paper_spec();
  q.T = 128;
  for (Model m : {Model::bopm, Model::topm}) {
    q.model = m;
    q.engine = Engine::fft;
    for (double k : {120.0, 130.0, 140.0}) {
      q.spec.K = k;
      reqs.push_back(q);
    }
  }
  PricingRequest alo;
  alo.spec = paper_spec();
  alo.model = Model::bsm;
  alo.right = Right::put;
  alo.engine = Engine::boundary;
  reqs.push_back(alo);
  PricingRequest bad;  // tiled engine is a BOPM-call specialist
  bad.spec = paper_spec();
  bad.T = 128;
  bad.model = Model::topm;
  bad.engine = Engine::tiled;
  reqs.push_back(bad);
  return reqs;
}

TEST(Server, ResultsMatchADirectSessionBitForBit) {
  const std::vector<PricingRequest> reqs = mixed_batch();
  Pricer direct;  // same default config as the server's shards

  ServerConfig cfg;
  cfg.shards = 2;
  Server server(cfg);
  const std::vector<PricingResult> got = server.price(reqs);
  const std::vector<PricingResult> want = direct.price_many(reqs);

  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].status, want[i].status) << "item " << i;
    EXPECT_EQ(bits(got[i].price), bits(want[i].price)) << "item " << i;
  }
  EXPECT_EQ(got.back().status, Status::unsupported);  // fan-back, no throw

  const Server::Stats st = server.stats();
  EXPECT_EQ(st.submitted, reqs.size());
  EXPECT_EQ(st.completed, reqs.size());
  EXPECT_EQ(st.rejected, 0u);
  EXPECT_EQ(st.shard.size(), 2u);
}

TEST(Server, CoalescingMergesSingleQuoteSubmissionsIntoFewBatches) {
  // Eight async single-item submissions inside one coalescing window must
  // merge into fewer price_many calls than items — and produce exactly the
  // results of a direct session pricing the items one by one.
  std::vector<PricingRequest> reqs;
  PricingRequest q;
  q.spec = paper_spec();
  q.T = 96;
  for (int i = 0; i < 8; ++i) {
    q.spec.K = 118.0 + 3.0 * i;
    reqs.push_back(q);
  }

  ServerConfig cfg;
  cfg.coalesce_window_us = 50000;  // generous: the test box may be slow
  Server server(cfg);
  std::vector<PricingResult> out(reqs.size());
  Server::Batch done;
  for (std::size_t i = 0; i < reqs.size(); ++i)
    server.submit({&reqs[i], 1}, &out[i], done);
  done.wait();

  Pricer direct;
  for (std::size_t i = 0; i < reqs.size(); ++i) {
    const PricingResult want = direct.price_one(reqs[i]);
    EXPECT_EQ(out[i].status, Status::ok);
    EXPECT_EQ(bits(out[i].price), bits(want.price)) << "item " << i;
  }

  const Server::Stats st = server.stats();
  EXPECT_EQ(st.completed, 8u);
  EXPECT_LT(st.batches, 8u) << "no submissions were coalesced";
}

TEST(Server, ShardRoutingIsStableAndChainAffine) {
  ServerConfig cfg;
  cfg.shards = 4;
  Server server(cfg);

  // A chain over expiries (same model/right/style/engine and R, V, Y)
  // must land on ONE shard — that is what makes cross-expiry kernel
  // sharing reachable through the daemon.
  PricingRequest q;
  q.spec = paper_spec();
  const std::size_t home = server.shard_of(q);
  for (double e : {0.25, 0.5, 1.0, 2.0}) {
    q.spec.expiry_years = e;
    q.spec.K = 100.0 + e;  // strike/expiry must not affect routing
    q.T = static_cast<std::int64_t>(256 * e);
    EXPECT_EQ(server.shard_of(q), home);
  }

  // Distinct vols spread across shards (not all on one).
  std::set<std::size_t> seen;
  for (int i = 0; i < 32; ++i) {
    q.spec.V = 0.10 + 0.01 * i;
    seen.insert(server.shard_of(q));
  }
  EXPECT_GT(seen.size(), 1u);
}

TEST(Server, AdmissionControlRejectsWithRetryHintInsteadOfQueueing) {
  ServerConfig cfg;
  cfg.admit_scratch_bytes = 1;  // any real pricing overshoots this ceiling
  Server server(cfg);

  PricingRequest q;
  q.spec = paper_spec();
  q.T = 256;  // fft descent: the thread arena grows well past 1 byte

  // First batch is admitted (the ceiling is checked against the LAST
  // published snapshot, which starts at zero).
  const std::vector<PricingResult> first = server.price({&q, 1});
  ASSERT_EQ(first.at(0).status, Status::ok);

  // By completion the shard has published its scratch high-water mark, so
  // the next submission must bounce with a retry hint — deterministically,
  // because stats are published before completion is signalled.
  const std::vector<PricingResult> second = server.price({&q, 1});
  ASSERT_EQ(second.at(0).status, Status::overloaded);
  EXPECT_NE(second.at(0).message.find("retry"), std::string::npos);
  EXPECT_NE(second.at(0).message.find("scratch"), std::string::npos);

  const Server::Stats st = server.stats();
  EXPECT_EQ(st.submitted, 1u);
  EXPECT_EQ(st.rejected, 1u);
  ASSERT_EQ(st.shard.size(), 1u);
  EXPECT_GT(st.shard[0].scratch_high_water_bytes, 1u);
}

TEST(Server, QueueBoundRejectsWhenDepthCapIsZeroedDown) {
  ServerConfig cfg;
  cfg.queue_capacity = 1;
  cfg.coalesce_window_us = 0;
  Server server(cfg);
  // With capacity 1 a burst larger than the queue either prices or
  // bounces every item — none may vanish or block forever.
  std::vector<PricingRequest> reqs(64);
  for (auto& r : reqs) {
    r.spec = paper_spec();
    r.T = 64;
  }
  std::vector<PricingResult> out;
  server.price_into(reqs, out);
  std::size_t ok = 0, overloaded = 0;
  for (const PricingResult& r : out) {
    if (r.status == Status::ok) ++ok;
    if (r.status == Status::overloaded) ++overloaded;
  }
  EXPECT_EQ(ok + overloaded, reqs.size());
  EXPECT_GT(ok, 0u);  // the worker drains, so at least one item lands
}

TEST(Server, StopDrainsEveryQueuedItem) {
  ServerConfig cfg;
  cfg.coalesce_window_us = 200000;  // long linger: items sit queued
  Server server(cfg);
  std::vector<PricingRequest> reqs(6);
  for (auto& r : reqs) {
    r.spec = paper_spec();
    r.T = 64;
  }
  std::vector<PricingResult> out(reqs.size());
  Server::Batch done;
  server.submit(reqs, out.data(), done);
  server.stop();  // must cut the linger short AND drain everything queued
  EXPECT_TRUE(done.done());
  for (const PricingResult& r : out) EXPECT_EQ(r.status, Status::ok);

  // Submissions after stop bounce rather than hang.
  const std::vector<PricingResult> late = server.price({&reqs[0], 1});
  EXPECT_EQ(late.at(0).status, Status::overloaded);
}

// ------------------------------------------------------------- wire plane

/// Read frames from `t` until one result batch decodes (or EOF).
[[nodiscard]] wire::DecodeError read_result_frame(
    Transport& t, std::vector<PricingResult>& results) {
  std::vector<std::byte> buf;
  std::size_t have = 0;
  for (;;) {
    std::size_t consumed = 0;
    const wire::DecodeError e =
        wire::decode_result_batch({buf.data(), have}, results, consumed);
    if (e != wire::DecodeError::need_more) return e;
    if (buf.size() < have + 4096) buf.resize(have + 4096);
    const std::size_t n = t.read_some({buf.data() + have, buf.size() - have});
    if (n == 0) return wire::DecodeError::need_more;  // EOF mid-frame
    have += n;
  }
}

TEST(Server, ServesTheFramedProtocolOverLoopback) {
  Server server;
  auto [client, daemon] = loopback_pair();
  std::thread conn([&server, t = daemon.get()] { server.serve(*t); });

  const std::vector<PricingRequest> reqs = mixed_batch();
  Pricer direct;
  const std::vector<PricingResult> want = direct.price_many(reqs);

  // Two round trips on one connection; the second frame is delivered in
  // two chunks to exercise stream reassembly.
  for (int round = 0; round < 2; ++round) {
    std::vector<std::byte> frame;
    wire::encode_request_batch(reqs, frame);
    if (round == 0) {
      ASSERT_TRUE(client->write_all(frame));
    } else {
      const std::size_t cut = wire::kHeaderBytes + 7;
      ASSERT_TRUE(client->write_all({frame.data(), cut}));
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
      ASSERT_TRUE(
          client->write_all({frame.data() + cut, frame.size() - cut}));
    }
    std::vector<PricingResult> got;
    ASSERT_EQ(read_result_frame(*client, got), wire::DecodeError::ok);
    ASSERT_EQ(got.size(), want.size());
    for (std::size_t i = 0; i < got.size(); ++i) {
      EXPECT_EQ(got[i].status, want[i].status);
      EXPECT_EQ(bits(got[i].price), bits(want[i].price));
    }
  }

  client->close();
  conn.join();
}

TEST(Server, MalformedFrameGetsADiagnosticReplyThenClose) {
  Server server;
  auto [client, daemon] = loopback_pair();
  std::thread conn([&server, t = daemon.get()] { server.serve(*t); });

  const char junk[] = "GET / HTTP/1.1\r\n\r\n";  // not our magic
  ASSERT_TRUE(client->write_all(
      std::as_bytes(std::span<const char>{junk, sizeof(junk)})));

  std::vector<PricingResult> reply;
  ASSERT_EQ(read_result_frame(*client, reply), wire::DecodeError::ok);
  ASSERT_EQ(reply.size(), 1u);
  EXPECT_EQ(reply[0].status, Status::error);
  EXPECT_NE(reply[0].message.find("bad-magic"), std::string::npos);

  // The daemon hung up: the next read is EOF.
  std::byte b;
  EXPECT_EQ(client->read_some({&b, 1}), 0u);
  conn.join();
}

// ---------------------------------------------------------- failure plane

TEST(Server, DeadlineShedHappensBeforePricingNotAfter) {
  // Items sit in a long coalescing linger; the ones whose deadline passes
  // while queued must be shed with deadline_exceeded BEFORE pricing, the
  // unbounded ones priced normally.
  ServerConfig cfg;
  cfg.coalesce_window_us = 20000;  // 20 ms linger: deadlines expire in queue
  Server server(cfg);

  std::vector<PricingRequest> reqs(4);
  for (auto& r : reqs) {
    r.spec = paper_spec();
    r.T = 64;
  }
  const auto now = std::chrono::steady_clock::now();
  const std::chrono::steady_clock::time_point deadlines[] = {
      now + std::chrono::microseconds(1),  // expires during the linger
      std::chrono::steady_clock::time_point::max(),
      now + std::chrono::microseconds(1),
      std::chrono::steady_clock::time_point::max(),
  };
  std::vector<PricingResult> out(reqs.size());
  Server::Batch done;
  server.submit(reqs, deadlines, out.data(), done);
  done.wait();

  EXPECT_EQ(out[0].status, Status::deadline_exceeded);
  EXPECT_EQ(out[2].status, Status::deadline_exceeded);
  EXPECT_NE(out[0].message.find("stale"), std::string::npos);
  EXPECT_TRUE(std::isnan(out[0].price));  // nothing was computed
  EXPECT_EQ(out[1].status, Status::ok);
  EXPECT_EQ(out[3].status, Status::ok);

  const Server::Stats st = server.stats();
  EXPECT_EQ(st.deadline_shed, 2u);
  EXPECT_EQ(st.completed, 2u);  // only the live items were priced
  // Per-shard counters fold up to the totals.
  std::uint64_t shard_sum = 0;
  for (const Server::ShardCounters& c : st.shard_counters)
    shard_sum += c.deadline_shed;
  EXPECT_EQ(shard_sum, st.deadline_shed);
}

TEST(Server, StopWithGraceShedsQueuedItemsInsteadOfPricingThem) {
  ServerConfig cfg;
  cfg.coalesce_window_us = 0;
  cfg.max_coalesced_items = 1;  // one slow item per drain iteration
  Server server(cfg);

  std::vector<PricingRequest> reqs(6);
  for (auto& r : reqs) {
    r.spec = paper_spec();
    r.T = 16384;  // slow enough that the queue outlives the grace
  }
  std::vector<PricingResult> out(reqs.size());
  Server::Batch done;
  server.submit(reqs, out.data(), done);
  server.stop(std::chrono::microseconds(100));

  // Every item reached exactly one terminal status before stop returned:
  // whatever was already pricing completed, the rest shed as overloaded.
  EXPECT_TRUE(done.done());
  std::uint64_t n_ok = 0, n_shed = 0;
  for (const PricingResult& r : out) {
    ASSERT_TRUE(r.status == Status::ok || r.status == Status::overloaded)
        << to_string(r.status);
    if (r.status == Status::ok)
      ++n_ok;
    else {
      ++n_shed;
      EXPECT_NE(r.message.find("draining"), std::string::npos);
    }
  }
  EXPECT_EQ(n_ok + n_shed, reqs.size());
  const Server::Stats st = server.stats();
  EXPECT_EQ(st.drain_shed, n_shed);
  // At most one item can have been mid-price when the grace expired.
  EXPECT_GE(st.drain_shed, reqs.size() - 1);
}

TEST(Server, ServeSpeaksV2DeadlinesAndCountsRetriesAndDecodeErrors) {
  ServerConfig cfg;
  cfg.coalesce_window_us = 20000;  // linger past the 1 us budgets below
  Server server(cfg);
  auto [client, daemon] = loopback_pair();
  std::thread conn([&server, t = daemon.get()] { server.serve(*t); });

  std::vector<PricingRequest> reqs(2);
  for (auto& r : reqs) {
    r.spec = paper_spec();
    r.T = 64;
  }
  // A v2 frame with already-hopeless budgets and a retry marker.
  const std::uint64_t budgets[] = {1, 1};
  std::vector<std::byte> frame;
  wire::encode_request_batch_v2(reqs, budgets, /*attempt=*/1, frame);
  ASSERT_TRUE(client->write_all(frame));
  std::vector<PricingResult> got;
  ASSERT_EQ(read_result_frame(*client, got), wire::DecodeError::ok);
  ASSERT_EQ(got.size(), 2u);
  EXPECT_EQ(got[0].status, Status::deadline_exceeded);
  EXPECT_EQ(got[1].status, Status::deadline_exceeded);

  // The same connection keeps serving v1 afterwards — replies mirror the
  // request's version, so this result frame is plain v1.
  frame.clear();
  wire::encode_request_batch({&reqs[0], 1}, frame);
  ASSERT_TRUE(client->write_all(frame));
  ASSERT_EQ(read_result_frame(*client, got), wire::DecodeError::ok);
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0].status, Status::ok);
  client->close();
  conn.join();

  // A second connection feeding junk bumps decode_errors.
  auto [client2, daemon2] = loopback_pair();
  std::thread conn2([&server, t = daemon2.get()] { server.serve(*t); });
  const char junk[] = "\x01\x02\x03 definitely not a frame";
  ASSERT_TRUE(client2->write_all(
      std::as_bytes(std::span<const char>{junk, sizeof(junk)})));
  std::vector<PricingResult> diag;
  ASSERT_EQ(read_result_frame(*client2, diag), wire::DecodeError::ok);
  conn2.join();

  const Server::Stats st = server.stats();
  EXPECT_EQ(st.deadline_shed, 2u);
  EXPECT_EQ(st.retries_observed, 1u);
  EXPECT_EQ(st.decode_errors, 1u);
}

TEST(Server, TcpHardCloseMidFrameLeavesServerServingNextConnection) {
  // A client dying mid-frame must cost exactly its own connection: the
  // serve() call returns cleanly (no SIGPIPE, no wedged shard) and the
  // daemon accepts and serves the next connection as if nothing happened.
  Server server;
  TcpListener listener(0);
  ASSERT_NE(listener.port(), 0);
  std::thread acceptor([&] {
    for (int i = 0; i < 2; ++i)
      if (auto t = listener.accept()) server.serve(*t);
  });

  {
    auto dying = tcp_connect("127.0.0.1", listener.port());
    ASSERT_NE(dying, nullptr);
    PricingRequest q;
    q.spec = paper_spec();
    std::vector<std::byte> frame;
    wire::encode_request_batch({&q, 1}, frame);
    // Header plus a few record bytes, then a hard close mid-frame.
    ASSERT_TRUE(dying->write_all({frame.data(), wire::kHeaderBytes + 5}));
    dying->close();
  }

  auto client = tcp_connect("127.0.0.1", listener.port());
  ASSERT_NE(client, nullptr);
  PricingRequest q;
  q.spec = paper_spec();
  q.T = 96;
  std::vector<std::byte> frame;
  wire::encode_request_batch({&q, 1}, frame);
  ASSERT_TRUE(client->write_all(frame));
  std::vector<PricingResult> got;
  ASSERT_EQ(read_result_frame(*client, got), wire::DecodeError::ok);
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0].status, Status::ok);

  client->close();
  acceptor.join();
  listener.close();
}

TEST(Server, TcpTransportCarriesTheSameProtocol) {
  Server server;
  TcpListener listener(0);  // ephemeral port
  ASSERT_NE(listener.port(), 0);
  std::thread acceptor([&] {
    if (auto t = listener.accept()) server.serve(*t);
  });

  auto client = tcp_connect("127.0.0.1", listener.port());
  ASSERT_NE(client, nullptr);
  PricingRequest q;
  q.spec = paper_spec();
  q.T = 96;
  std::vector<std::byte> frame;
  wire::encode_request_batch({&q, 1}, frame);
  ASSERT_TRUE(client->write_all(frame));
  std::vector<PricingResult> got;
  ASSERT_EQ(read_result_frame(*client, got), wire::DecodeError::ok);
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0].status, Status::ok);
  Pricer direct;
  EXPECT_EQ(bits(got[0].price), bits(direct.price_one(q).price));

  client->close();
  acceptor.join();
  listener.close();
}

}  // namespace
