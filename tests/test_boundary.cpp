// Empirical validation of the red/green boundary lemmas the fast solver
// rests on: Corollary 2.7 (BOPM), Corollary A.6 (TOPM), and the expiry-row
// anomalies documented in DESIGN.md.

#include <gtest/gtest.h>

#include <cmath>

#include "amopt/pricing/boundary.hpp"
#include "amopt/pricing/params.hpp"

namespace {

using namespace amopt;
using namespace amopt::pricing;

TEST(BopmBoundary, Corollary27HoldsBelowExpiry) {
  // For i <= T-3 the two-sided bound q_{i+1}-1 <= q_i <= q_{i+1} is proved;
  // we check it for every pair below the expiry row.
  for (double Y : {0.0163, 0.05}) {
    OptionSpec spec = paper_spec();
    spec.Y = Y;
    const std::int64_t T = 800;
    const auto q = bopm_call_boundary_vanilla(spec, T);
    for (std::int64_t i = 0; i + 1 <= T - 1; ++i) {
      const auto qi = q[static_cast<std::size_t>(i)];
      const auto qn = q[static_cast<std::size_t>(i + 1)];
      if (qi < 0) {
        // all-green rows may only appear below an all-green or q=0 row
        EXPECT_LE(qn, 0) << "i=" << i;
        continue;
      }
      EXPECT_LE(qi, qn) << "i=" << i << " Y=" << Y;
      EXPECT_GE(qi, qn - 1) << "i=" << i << " Y=" << Y;
    }
  }
}

TEST(BopmBoundary, RedPrefixStructure) {
  // Every row must be a red prefix followed by a green suffix; the oracle
  // returns the last red index, so just sanity-check ranges.
  const OptionSpec spec = paper_spec();
  const std::int64_t T = 300;
  const auto q = bopm_call_boundary_vanilla(spec, T);
  ASSERT_EQ(q.size(), static_cast<std::size_t>(T + 1));
  for (std::int64_t i = 0; i <= T; ++i) {
    EXPECT_GE(q[static_cast<std::size_t>(i)], -1);
    EXPECT_LE(q[static_cast<std::size_t>(i)], i);
  }
}

TEST(BopmBoundary, ExpiryRowIsPayoffBoundary) {
  const OptionSpec spec = paper_spec();
  const std::int64_t T = 500;
  const auto q = bopm_call_boundary_vanilla(spec, T);
  const std::int64_t qT = q[static_cast<std::size_t>(T)];
  // S*u^(2qT - T) <= K < S*u^(2(qT+1) - T)
  EXPECT_LE(bopm_cell_price(spec, T, T, qT), spec.K * (1.0 + 1e-12));
  EXPECT_GT(bopm_cell_price(spec, T, T, qT + 1), spec.K);
}

TEST(BopmBoundary, BoundaryPriceApproachesStrikeNearExpiry) {
  // The exercise boundary in *price* terms sits near K at the row right
  // below expiry when Y > R keeps it finite.
  const OptionSpec spec = paper_spec();
  const std::int64_t T = 2000;
  const auto q = bopm_call_boundary_vanilla(spec, T);
  const double p =
      bopm_cell_price(spec, T, T - 1, q[static_cast<std::size_t>(T - 1)]);
  EXPECT_GT(p, 0.5 * spec.K);
  EXPECT_LT(p, 1.5 * spec.K);
}

TEST(BopmBoundary, ZeroYieldHasNoInteriorGreenCells) {
  OptionSpec spec = paper_spec();
  spec.Y = 0.0;
  const std::int64_t T = 200;
  const auto q = bopm_call_boundary_vanilla(spec, T);
  // Every interior row is entirely red: q_i == i (whole row continuation).
  for (std::int64_t i = 0; i < T; ++i)
    EXPECT_EQ(q[static_cast<std::size_t>(i)], i) << "i=" << i;
}

TEST(TopmBoundary, CorollaryA6HoldsAwayFromTheDiagonal) {
  const OptionSpec spec = paper_spec();
  const std::int64_t T = 500;
  const auto q = topm_call_boundary_vanilla(spec, T);
  for (std::int64_t i = 0; i + 1 <= T - 1; ++i) {
    const auto qi = q[static_cast<std::size_t>(i)];
    const auto qn = q[static_cast<std::size_t>(i + 1)];
    if (qi < 0) continue;
    EXPECT_LE(qi, qn) << "i=" << i;
    // Rows clipped by the lattice diagonal (entirely red, q == 2i) shrink
    // by 2 cells/step — a domain effect Corollary A.6 does not cover and
    // the solver does not rely on (clipped rows are fully red).
    if (qi == 2 * i) continue;
    EXPECT_GE(qi, qn - 1) << "i=" << i;
  }
}

TEST(TopmBoundary, WithinRowRange) {
  const OptionSpec spec = paper_spec();
  const std::int64_t T = 200;
  const auto q = topm_call_boundary_vanilla(spec, T);
  for (std::int64_t i = 0; i <= T; ++i) {
    EXPECT_GE(q[static_cast<std::size_t>(i)], -1);
    EXPECT_LE(q[static_cast<std::size_t>(i)], 2 * i);
  }
}

TEST(BopmBoundary, MovesWithMoneyness) {
  // Raising the strike pushes the (index-space) boundary right at expiry.
  OptionSpec lo = paper_spec();
  OptionSpec hi = paper_spec();
  hi.K = lo.K * 1.3;
  const std::int64_t T = 400;
  const auto qlo = bopm_call_boundary_vanilla(lo, T);
  const auto qhi = bopm_call_boundary_vanilla(hi, T);
  EXPECT_GT(qhi[static_cast<std::size_t>(T)], qlo[static_cast<std::size_t>(T)]);
}

}  // namespace
