// The per-worker zero-steady-state-allocation guarantee under the
// task-parallel trapezoid descent: once every pool worker's scratch arena
// (and thread-local convolution workspace) has been warmed to one item's
// serial footprint, a parallel descend leases every frame from warm
// blocks — the counted phase must not touch the heap from ANY thread.
// This is the deterministic consequence of the pool's scheduling rules
// (a worker blocked in a join only helps with strictly nested descendants,
// so its footprint never exceeds one serial solve) plus the arena's
// best-fit block leasing. The parallel result is also asserted bit-equal
// to the serial solver's.

#include "counting_new.hpp"
//
#include <gtest/gtest.h>

#include <cstdint>

#include "amopt/common/parallel.hpp"
#include "amopt/core/lattice_solver.hpp"
#include "amopt/core/scratch.hpp"
#include "amopt/core/task_pool.hpp"
#include "amopt/pricing/bopm.hpp"
#include "amopt/stencil/kernel_cache.hpp"

namespace {

using namespace amopt;

std::uint64_t allocs() { return counting_new::count(); }

constexpr std::int64_t kT = 4096;
constexpr int kWidth = 4;

struct WarmupCtx {
  pricing::OptionSpec spec;
  pricing::BopmParams prm;
};

// Runs one full SERIAL descend on the calling thread, warming its
// thread-local scratch arena and convolution workspace to the exact
// footprint a stolen subtree of the parallel descend can require (a
// subtree's level heights are a suffix of the serial chain's, so its
// frames best-fit into the serially warmed blocks).
void warm_this_thread(void* p) {
  const auto& ctx = *static_cast<const WarmupCtx*>(p);
  const pricing::bopm::CallGreen green(ctx.spec, ctx.prm);
  core::SolverConfig cfg;
  cfg.parallel = false;
  stencil::KernelCache cache({{ctx.prm.s0, ctx.prm.s1}, 0});
  core::LatticeSolver solver(&cache, {{ctx.prm.s0, ctx.prm.s1}, 0}, green,
                             cfg);
  core::LatticeRow row = pricing::bopm::expiry_row(ctx.prm, green);
  while (row.i > kT - 2)
    row = solver.step_naive(row, /*unbounded_scan=*/true);
  (void)solver.descend(std::move(row), 0);
}

TEST(PoolAlloc, WarmParallelDescendPerformsZeroAllocations) {
  ThreadScope width(kWidth);
  auto& pool = core::TaskPool::instance();
  ASSERT_EQ(pool.concurrency(), kWidth);

  WarmupCtx ctx{pricing::paper_spec(), {}};
  ctx.prm = pricing::derive_bopm(ctx.spec, kT);

  // Serial reference (and main-thread warm-up in one go).
  const pricing::bopm::CallGreen green(ctx.spec, ctx.prm);
  core::SolverConfig serial_cfg;
  serial_cfg.parallel = false;
  stencil::KernelCache cache({{ctx.prm.s0, ctx.prm.s1}, 0});
  core::LatticeSolver serial(&cache, {{ctx.prm.s0, ctx.prm.s1}, 0}, green,
                             serial_cfg);
  core::LatticeRow row = pricing::bopm::expiry_row(ctx.prm, green);
  while (row.i > kT - 2)
    row = serial.step_naive(row, /*unbounded_scan=*/true);
  const core::LatticeRow top = row;
  const core::LatticeRow ref = serial.descend(std::move(row), 0);

  // Warm every worker's arena to the serial footprint, deterministically
  // (each worker runs the whole serial solve once, on its own thread).
  pool.run_on_workers(&warm_this_thread, &ctx);

  // The parallel solver shares the warmed kernel cache; its first descend
  // (uncounted) converges any per-solver buffers.
  core::SolverConfig par_cfg;  // parallel = true by default
  core::LatticeSolver parallel(&cache, {{ctx.prm.s0, ctx.prm.s1}, 0}, green,
                               par_cfg);
  {
    core::LatticeRow warm = top;
    (void)parallel.descend(std::move(warm), 0);
  }

  for (int rep = 0; rep < 3; ++rep) {
    core::LatticeRow again = top;  // the copy allocates OUTSIDE the counter
    const std::uint64_t before = allocs();
    const core::LatticeRow out = parallel.descend(std::move(again), 0);
    EXPECT_EQ(allocs() - before, 0u)
        << "rep " << rep << ": warm parallel descend touched the heap";
    ASSERT_EQ(out.q, ref.q) << "rep " << rep;
    ASSERT_EQ(out.red.size(), ref.red.size());
    for (std::size_t j = 0; j < out.red.size(); ++j)
      ASSERT_EQ(out.red[j], ref.red[j]) << "rep " << rep << " j=" << j;
  }

  // The warmed pool is visible to the process-wide aggregate: one arena
  // per warmed thread, and the total dominates any single arena.
  const core::ScratchAggregate agg = core::aggregate_scratch();
  EXPECT_GE(agg.arenas, static_cast<std::size_t>(kWidth));
  EXPECT_GT(agg.max_bytes, 0u);
  EXPECT_GE(agg.total_bytes, agg.max_bytes);
}

}  // namespace
