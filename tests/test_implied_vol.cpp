// Implied-volatility inversion tests: round-trip through the pricer,
// bracket failures, and monotonicity of the recovered smile.

#include <gtest/gtest.h>

#include <cmath>

#include "amopt/pricing/bopm.hpp"
#include "amopt/pricing/implied_vol.hpp"

namespace {

using namespace amopt;
using namespace amopt::pricing;

class RoundTrip : public ::testing::TestWithParam<double> {};

TEST_P(RoundTrip, CallRecoversTrueVolatility) {
  const double true_vol = GetParam();
  OptionSpec spec = paper_spec();
  spec.V = true_vol;
  ImpliedVolConfig cfg;
  cfg.T = 2048;
  const double target = bopm::american_call_fft(spec, cfg.T);
  const auto res = american_call_implied_vol(spec, target, cfg);
  ASSERT_TRUE(res.converged) << "vol=" << true_vol;
  EXPECT_NEAR(res.vol, true_vol, 1e-5);
  EXPECT_LT(res.iterations, 40);
}

TEST_P(RoundTrip, PutRecoversTrueVolatility) {
  const double true_vol = GetParam();
  OptionSpec spec = paper_spec();
  spec.V = true_vol;
  ImpliedVolConfig cfg;
  cfg.T = 2048;
  const double target = bopm::american_put_fft_direct(spec, cfg.T);
  const auto res = american_put_implied_vol(spec, target, cfg);
  ASSERT_TRUE(res.converged) << "vol=" << true_vol;
  EXPECT_NEAR(res.vol, true_vol, 1e-5);
}

INSTANTIATE_TEST_SUITE_P(Vols, RoundTrip,
                         ::testing::Values(0.08, 0.2, 0.45, 1.2));

TEST(ImpliedVol, RejectsUnattainableTargets) {
  OptionSpec spec = paper_spec();
  spec.S = 150.0;
  spec.K = 100.0;  // deep ITM: price >= intrinsic = 50 at any volatility
  ImpliedVolConfig cfg;
  cfg.T = 512;
  const auto low = american_call_implied_vol(spec, 1.0, cfg);
  EXPECT_FALSE(low.converged);
  // Above the spot: impossible for a call.
  const auto high = american_call_implied_vol(spec, spec.S * 1.5, cfg);
  EXPECT_FALSE(high.converged);
}

TEST(ImpliedVol, MonotoneInTargetPrice) {
  const OptionSpec spec = paper_spec();
  ImpliedVolConfig cfg;
  cfg.T = 1024;
  double prev = 0.0;
  for (double target : {6.0, 8.0, 12.0, 20.0}) {
    const auto res = american_call_implied_vol(spec, target, cfg);
    ASSERT_TRUE(res.converged) << "target=" << target;
    EXPECT_GT(res.vol, prev);
    prev = res.vol;
  }
}

TEST(ImpliedVol, ConsistentAcrossLatticeResolutions) {
  OptionSpec spec = paper_spec();
  spec.V = 0.3;
  ImpliedVolConfig coarse, fine;
  coarse.T = 512;
  fine.T = 4096;
  const double target = bopm::american_call_fft(spec, 8192);
  const auto a = american_call_implied_vol(spec, target, coarse);
  const auto b = american_call_implied_vol(spec, target, fine);
  ASSERT_TRUE(a.converged && b.converged);
  EXPECT_NEAR(a.vol, b.vol, 5e-3);  // discretization-level agreement
  EXPECT_NEAR(b.vol, 0.3, 1e-3);
}

}  // namespace
