// Tests for the operation counters and the energy meter (S9a). The model
// fallback must track counted work; hardware RAPL, when present, is only
// smoke-tested (values are machine-dependent).

#include <gtest/gtest.h>

#include <cmath>

#include "amopt/metrics/counters.hpp"
#include "amopt/metrics/energy.hpp"
#include "amopt/pricing/bopm.hpp"
#include "amopt/pricing/params.hpp"

namespace {

using namespace amopt;
using namespace amopt::metrics;

TEST(Counters, AccumulateAndReset) {
  reset_counters();
  add_flops(100);
  add_bytes(50);
  add_flops(1);
  const OpSnapshot s = snapshot();
  EXPECT_EQ(s.flops, 101u);
  EXPECT_EQ(s.bytes, 50u);
  reset_counters();
  EXPECT_EQ(snapshot().flops, 0u);
}

TEST(Counters, DeltaArithmetic) {
  reset_counters();
  add_flops(10);
  const OpSnapshot a = snapshot();
  add_flops(32);
  add_bytes(8);
  const OpSnapshot d = delta(a, snapshot());
  EXPECT_EQ(d.flops, 32u);
  EXPECT_EQ(d.bytes, 8u);
}

TEST(Counters, PricersCountWork) {
  reset_counters();
  const auto spec = pricing::paper_spec();
  (void)pricing::bopm::american_call_vanilla(spec, 512);
  const OpSnapshot after_vanilla = snapshot();
  // Figure-1 loop does ~3*T^2/2 flops.
  EXPECT_NEAR(static_cast<double>(after_vanilla.flops), 1.5 * 512.0 * 512.0,
              0.5 * 512.0 * 512.0);
}

TEST(EnergyModel, ModeledEnergyTracksCountedWork) {
  EnergyMeter meter;  // uses model when RAPL is unreachable (typical in CI)
  if (meter.hardware_available()) GTEST_SKIP() << "hardware RAPL active";
  reset_counters();
  meter.start();
  add_flops(1'000'000'000);  // 1 Gflop at 0.5 nJ => 0.5 J (plus static*dt)
  const EnergySample s = meter.stop();
  EXPECT_FALSE(s.hardware);
  EXPECT_GT(s.pkg_joules, 0.45);
  EXPECT_LT(s.pkg_joules, 1.5);  // static term over microseconds is tiny
}

TEST(EnergyModel, RamTermTracksBytes) {
  EnergyMeter meter;
  if (meter.hardware_available()) GTEST_SKIP();
  reset_counters();
  meter.start();
  add_bytes(100'000'000'000ull);  // 100 GB at 30 pJ/B => 3 J
  const EnergySample s = meter.stop();
  EXPECT_NEAR(s.ram_joules, 3.0, 0.5);
}

TEST(EnergyModel, MoreWorkMoreEnergy) {
  EnergyMeter meter;
  if (meter.hardware_available()) GTEST_SKIP();
  const auto spec = pricing::paper_spec();

  reset_counters();
  meter.start();
  (void)pricing::bopm::american_call_fft(spec, 4096);
  const double e_fft = meter.stop().total();

  reset_counters();
  meter.start();
  (void)pricing::bopm::american_call_vanilla(spec, 4096);
  const double e_vanilla = meter.stop().total();

  // The Θ(T^2) loop must cost more modeled energy than the O(T log^2 T)
  // algorithm at T=4096 — the core claim of the paper's Fig. 6.
  EXPECT_GT(e_vanilla, e_fft);
}

TEST(EnergySample, TotalIsSum) {
  EnergySample s;
  s.pkg_joules = 2.0;
  s.ram_joules = 0.5;
  EXPECT_DOUBLE_EQ(s.total(), 2.5);
}

}  // namespace
