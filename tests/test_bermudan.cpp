// Bermudan extension tests: the FFT gap-collapse pricer must match the
// rollback oracle for arbitrary exercise schedules and interpolate between
// the European (no dates) and American (all dates) endpoints.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <random>
#include <vector>

#include "amopt/pricing/bermudan.hpp"
#include "amopt/pricing/bopm.hpp"

namespace {

using namespace amopt;
using namespace amopt::pricing;
using bermudan::Right;

std::vector<std::int64_t> random_schedule(std::int64_t T, std::size_t count,
                                          unsigned seed) {
  std::mt19937 rng(seed);
  std::uniform_int_distribution<std::int64_t> dist(0, T - 1);
  std::vector<std::int64_t> steps;
  while (steps.size() < count) {
    const std::int64_t s = dist(rng);
    bool dup = false;
    for (const auto x : steps) dup |= (x == s);
    if (!dup) steps.push_back(s);
  }
  std::sort(steps.begin(), steps.end());
  return steps;
}

class BermudanSchedules
    : public ::testing::TestWithParam<std::pair<std::size_t, unsigned>> {};

TEST_P(BermudanSchedules, FftMatchesVanillaRollback) {
  const auto [count, seed] = GetParam();
  const OptionSpec spec = paper_spec();
  const std::int64_t T = 600;
  const auto steps = random_schedule(T, count, seed);
  for (const Right r : {Right::call, Right::put}) {
    const double f = bermudan::price_fft(spec, T, steps, r);
    const double v = bermudan::price_vanilla(spec, T, steps, r);
    // FFT path noise scales with the largest expiry payoff (~S*u^T).
    EXPECT_NEAR(f, v, 2e-6 * std::max(1.0, std::abs(v)))
        << "right=" << (r == Right::call ? "C" : "P");
  }
}

INSTANTIATE_TEST_SUITE_P(
    Schedules, BermudanSchedules,
    ::testing::Values(std::pair<std::size_t, unsigned>{1, 11},
                      std::pair<std::size_t, unsigned>{4, 12},
                      std::pair<std::size_t, unsigned>{12, 13},
                      std::pair<std::size_t, unsigned>{40, 14},
                      std::pair<std::size_t, unsigned>{100, 15}));

TEST(Bermudan, NoDatesIsEuropean) {
  const OptionSpec spec = paper_spec();
  const std::int64_t T = 512;
  EXPECT_NEAR(bermudan::price_fft(spec, T, {}, Right::call),
              bopm::european_call_fft(spec, T), 2e-6);
  EXPECT_NEAR(bermudan::price_fft(spec, T, {}, Right::put),
              bopm::european_put_fft(spec, T), 2e-6);
}

TEST(Bermudan, AllDatesIsAmerican) {
  const OptionSpec spec = paper_spec();
  const std::int64_t T = 512;
  std::vector<std::int64_t> all;
  for (std::int64_t i = 0; i < T; ++i) all.push_back(i);
  EXPECT_NEAR(bermudan::price_fft(spec, T, all, Right::call),
              bopm::american_call_vanilla(spec, T), 2e-6);
  EXPECT_NEAR(bermudan::price_fft(spec, T, all, Right::put),
              bopm::american_put_vanilla(spec, T), 2e-6);
}

TEST(Bermudan, MoreDatesNeverHurt) {
  // Value is monotone in the exercise schedule (superset => >=).
  const OptionSpec spec = paper_spec();
  const std::int64_t T = 400;
  std::vector<std::int64_t> quarterly, monthly;
  for (std::int64_t i = 100; i < T; i += 100) quarterly.push_back(i);
  for (std::int64_t i = 25; i < T; i += 25) monthly.push_back(i);
  for (const Right r : {Right::call, Right::put}) {
    const double none = bermudan::price_fft(spec, T, {}, r);
    const double q = bermudan::price_fft(spec, T, quarterly, r);
    const double m = bermudan::price_fft(spec, T, monthly, r);
    EXPECT_GE(q, none - 1e-6);
    EXPECT_GE(m, q - 1e-6);
  }
}

TEST(Bermudan, SandwichedBetweenEuropeanAndAmerican) {
  const OptionSpec spec = paper_spec();
  const std::int64_t T = 300;
  const auto steps = random_schedule(T, 10, 99);
  const double berm = bermudan::price_fft(spec, T, steps, Right::put);
  EXPECT_GE(berm, bopm::european_put_fft(spec, T) - 1e-6);
  EXPECT_LE(berm, bopm::american_put_vanilla(spec, T) + 1e-6);
}

TEST(Bermudan, TZero) {
  OptionSpec spec = paper_spec();
  spec.S = 150.0;
  EXPECT_DOUBLE_EQ(bermudan::price_fft(spec, 0, {}, Right::call),
                   150.0 - spec.K);
}

}  // namespace
